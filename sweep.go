package mobilecongest

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
	"time"

	"mobilecongest/internal/algorithms"
	"mobilecongest/internal/congest"
)

// Record is the JSON-serializable outcome of one sweep cell: the cell's
// coordinates in the grid plus the run's statistics. Failed cells carry the
// error instead of aborting the whole sweep. K is the requested topology
// parameter as passed to the registry — 0 means the family's default (e.g.
// chord distance 2 for circulants), which the builder resolves internally.
type Record struct {
	Name                string  `json:"name"`
	Topology            string  `json:"topology"`
	N                   int     `json:"n"`
	K                   int     `json:"k"`
	Adversary           string  `json:"adversary"`
	F                   int     `json:"f"`
	Engine              string  `json:"engine"`
	Rep                 int     `json:"rep"`
	Seed                int64   `json:"seed"`
	Rounds              int     `json:"rounds"`
	Messages            int     `json:"messages"`
	Bytes               int     `json:"bytes"`
	MaxMsgBytes         int     `json:"max_msg_bytes"`
	MaxEdgeCongestion   int     `json:"max_edge_congestion"`
	CorruptedEdgeRounds int     `json:"corrupted_edge_rounds"`
	ElapsedMS           float64 `json:"elapsed_ms"`
	Error               string  `json:"error,omitempty"`
	// Trace is the cell's full per-round delivered-traffic trace, captured
	// only when Grid.CaptureTrace is set (payloads base64 in JSON).
	Trace []RoundTrace `json:"trace,omitempty"`
}

// Grid is a parameter grid: the cross product of its axes defines one
// scenario per cell. Empty axes default to a single sensible value, so a
// zero-ish Grid still sweeps something.
type Grid struct {
	// Topologies are registry names (default ["clique"]).
	Topologies []string
	// Ns are node counts (default [16]).
	Ns []int
	// Ks are topology secondary parameters (default [0] = family default).
	Ks []int
	// Adversaries are registry names (default ["none"]).
	Adversaries []string
	// Fs are adversary strengths (default [1]).
	Fs []int
	// Engines are engine registry names (default ["step"]).
	Engines []string
	// Reps runs each cell this many times with distinct derived seeds
	// (default 1).
	Reps int
	// BaseSeed feeds the per-cell seed derivation.
	BaseSeed int64
	// MaxRounds bounds each run (0 = engine default).
	MaxRounds int
	// Protocol builds the per-cell workload from the resolved graph. It is
	// called once per cell, so closure-captured state is private to that
	// cell's run; the returned Protocol must still be safe for concurrent
	// per-node invocation, as always. Nil defaults to flooding the maximum ID
	// for diameter+1 rounds.
	Protocol func(g *Graph) Protocol
	// CaptureTrace attaches a TraceObserver to every cell and stores the
	// captured rounds in the cell's Record.Trace. Traces hold full payloads;
	// budget accordingly on large grids.
	CaptureTrace bool
	// Observers, when non-nil, builds extra per-cell observers; it is called
	// once per cell with the cell's Record.Name. Cells run concurrently, so
	// anything the returned observers share (e.g. a writer) must tolerate
	// that — see NewJSONLTrace.
	Observers func(cellName string) []Observer
}

func defaulted[T any](s []T, def ...T) []T {
	if len(s) == 0 {
		return def
	}
	return s
}

// CellSeed derives the deterministic seed for a grid cell: a hash of the
// cell's label mixed with the base seed and repetition index. It depends only
// on the cell's coordinates, never on grid order or worker scheduling, so
// reshaping a sweep does not reshuffle the randomness of surviving cells.
func CellSeed(base int64, label string, rep int) int64 {
	h := fnv.New64a()
	h.Write([]byte(label))
	return int64(uint64(base) ^ h.Sum64() ^ (uint64(rep) * 0x9e3779b97f4a7c15))
}

// cell is one expanded grid point.
type cell struct {
	rec      Record
	scenario *Scenario
	trace    *TraceObserver // non-nil when the grid captures traces
}

// cells expands the grid, validating every registry name up front.
func (gr Grid) cells() ([]cell, error) {
	topos := defaulted(gr.Topologies, "clique")
	ns := defaulted(gr.Ns, 16)
	ks := defaulted(gr.Ks, 0)
	advs := defaulted(gr.Adversaries, "none")
	fs := defaulted(gr.Fs, 1)
	engines := defaulted(gr.Engines, EngineStep.Name())
	reps := gr.Reps
	if reps <= 0 {
		reps = 1
	}

	// Validate every registry name once, up front, so a bad grid fails before
	// any cell is built.
	for _, advName := range advs {
		if !HasAdversary(advName) {
			return nil, fmt.Errorf("mobilecongest: unknown adversary %q (have %v)", advName, Adversaries())
		}
	}
	for _, engName := range engines {
		if _, err := NewEngine(engName); err != nil {
			return nil, err
		}
	}

	var out []cell
	for _, topo := range topos {
		for _, n := range ns {
			for _, k := range ks {
				g, err := BuildTopology(topo, n, k)
				if err != nil {
					return nil, err
				}
				// protoForCell is invoked once per cell so closure-captured
				// state stays cell-private; the default workload hoists its
				// all-pairs-BFS diameter computation to once per graph.
				protoForCell := func() Protocol { return gr.Protocol(g) }
				if gr.Protocol == nil {
					rounds := g.Diameter() + 1
					protoForCell = func() Protocol { return algorithms.FloodMax(rounds) }
				}
				for _, advName := range advs {
					for _, f := range fs {
						for _, engName := range engines {
							for rep := 0; rep < reps; rep++ {
								// The engine is an execution detail: it is
								// part of the record, but deliberately NOT of
								// the seed derivation, so the same simulation
								// cell gets the same randomness on every
								// engine.
								simLabel := fmt.Sprintf("topo=%s,n=%d,k=%d,adv=%s,f=%d",
									topo, n, k, advName, f)
								label := fmt.Sprintf("%s,engine=%s", simLabel, engName)
								seed := CellSeed(gr.BaseSeed, simLabel, rep)
								name := fmt.Sprintf("%s,rep=%d", label, rep)
								// Observers are per-run state, so every cell
								// gets its own instances.
								var obs []Observer
								if gr.Observers != nil {
									obs = gr.Observers(name)
								}
								var tr *TraceObserver
								if gr.CaptureTrace {
									tr = NewTraceObserver()
									obs = append(obs, tr)
								}
								out = append(out, cell{
									rec: Record{
										Name:      name,
										Topology:  topo,
										N:         n,
										K:         k,
										Adversary: advName,
										F:         f,
										Engine:    engName,
										Rep:       rep,
										Seed:      seed,
									},
									scenario: NewScenario(
										WithName(label),
										WithGraph(g),
										WithProtocol(protoForCell()),
										WithAdversaryName(advName, f),
										WithEngineName(engName),
										WithSeed(seed),
										WithMaxRounds(gr.MaxRounds),
										WithObserver(obs...),
									),
									trace: tr,
								})
							}
						}
					}
				}
			}
		}
	}
	return out, nil
}

// Sweep expands the grid and runs every cell, fanning the work out across
// GOMAXPROCS workers. Every worker owns one reusable congest.RunContext, so
// consecutive cells on the same topology share the run's layout, buffers,
// and RNG allocations instead of rebuilding them per cell. The full record
// set is returned once the sweep completes, in grid order regardless of
// worker scheduling; per-cell failures are recorded rather than fatal, and
// only grid configuration errors (unknown registry names, unbuildable
// topologies) return an error.
func Sweep(grid Grid) ([]Record, error) {
	cells, err := grid.cells()
	if err != nil {
		return nil, err
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(cells) {
		workers = len(cells)
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rc := congest.NewRunContext()
			for i := range jobs {
				c := &cells[i]
				start := time.Now()
				res, err := c.scenario.runIn(rc)
				c.rec.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
				if err != nil {
					c.rec.Error = err.Error()
					continue
				}
				c.rec.Rounds = res.Stats.Rounds
				c.rec.Messages = res.Stats.Messages
				c.rec.Bytes = res.Stats.Bytes
				c.rec.MaxMsgBytes = res.Stats.MaxMsgBytes
				c.rec.MaxEdgeCongestion = res.Stats.MaxEdgeCongestion
				c.rec.CorruptedEdgeRounds = res.Stats.CorruptedEdgeRounds
				if c.trace != nil {
					c.rec.Trace = c.trace.Rounds()
				}
			}
		}()
	}
	for i := range cells {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	records := make([]Record, len(cells))
	for i, c := range cells {
		records[i] = c.rec
	}
	return records, nil
}
