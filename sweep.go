package mobilecongest

import (
	"context"
	"hash/fnv"
)

// Record is the JSON-serializable outcome of one sweep cell: the cell's
// coordinates in the grid plus the run's statistics. Failed cells carry the
// error instead of aborting the whole sweep. K is the requested topology
// parameter as passed to the registry — 0 means the family's default (e.g.
// chord distance 2 for circulants), which the builder resolves internally;
// P is likewise the requested protocol parameter (0 = family default).
// Protocol is the protocol registry name of the cell's workload, empty for
// the default workload and for Grid sweeps with a Protocol closure.
type Record struct {
	Name                string  `json:"name"`
	Topology            string  `json:"topology"`
	N                   int     `json:"n"`
	K                   int     `json:"k"`
	Protocol            string  `json:"protocol,omitempty"`
	P                   int     `json:"p,omitempty"`
	Adversary           string  `json:"adversary"`
	F                   int     `json:"f"`
	Engine              string  `json:"engine"`
	Bandwidth           int     `json:"bandwidth,omitempty"`
	Rep                 int     `json:"rep"`
	Seed                int64   `json:"seed"`
	Rounds              int     `json:"rounds"`
	Messages            int     `json:"messages"`
	Bytes               int     `json:"bytes"`
	MaxMsgBytes         int     `json:"max_msg_bytes"`
	MaxEdgeCongestion   int     `json:"max_edge_congestion"`
	CorruptedEdgeRounds int     `json:"corrupted_edge_rounds"`
	ElapsedMS           float64 `json:"elapsed_ms"`
	Error               string  `json:"error,omitempty"`
	// Trace is the cell's full per-round delivered-traffic trace, captured
	// only when the plan (or Grid) captures traces (payloads base64 in
	// JSON).
	Trace []RoundTrace `json:"trace,omitempty"`
}

// Grid is the legacy fixed-axis parameter grid: the cross product of its
// six hardcoded axes defines one scenario per cell. Empty axes default to a
// single sensible value, so a zero-ish Grid still sweeps something.
//
// Grid survives as a compat wrapper: Sweep lowers it onto a Plan whose axes
// are the grid's, in the grid's canonical order, producing byte-identical
// records to the pre-Plan implementation (same labels, seeds, and cell
// order). New code should build a Plan directly — it adds the protocol
// axis, user-defined axes, streaming, cancellation, and worker control.
type Grid struct {
	// Topologies are registry names (default ["clique"]).
	Topologies []string
	// Ns are node counts (default [16]).
	Ns []int
	// Ks are topology secondary parameters (default [0] = family default).
	Ks []int
	// Adversaries are registry names (default ["none"]).
	Adversaries []string
	// Fs are adversary strengths (default [1]).
	Fs []int
	// Engines are engine registry names (default ["step"]).
	Engines []string
	// Reps runs each cell this many times with distinct derived seeds
	// (default 1).
	Reps int
	// BaseSeed feeds the per-cell seed derivation.
	BaseSeed int64
	// MaxRounds bounds each run (0 = engine default).
	MaxRounds int
	// Protocol builds the per-cell workload from the resolved graph. It is
	// called once per cell, so closure-captured state is private to that
	// cell's run; the returned Protocol must still be safe for concurrent
	// per-node invocation, as always. Nil defaults to flooding the maximum ID
	// for diameter+1 rounds.
	Protocol func(g *Graph) Protocol
	// CaptureTrace attaches a TraceObserver to every cell and stores the
	// captured rounds in the cell's Record.Trace. Traces hold full payloads;
	// budget accordingly on large grids.
	CaptureTrace bool
	// Observers, when non-nil, builds extra per-cell observers; it is called
	// once per cell with the cell's Record.Name. Cells run concurrently, so
	// anything the returned observers share (e.g. a writer) must tolerate
	// that — see NewJSONLTrace.
	Observers func(cellName string) []Observer
}

func defaulted[T any](s []T, def ...T) []T {
	if len(s) == 0 {
		return def
	}
	return s
}

// CellSeed derives the deterministic seed for a plan (or grid) cell: a hash
// of the cell's seed-relevant label mixed with the base seed and repetition
// index. It depends only on the cell's coordinates, never on plan order or
// worker scheduling, so reshaping a sweep does not reshuffle the randomness
// of surviving cells; axes a plan does not use contribute nothing to the
// label, so extending the axis vocabulary (e.g. the protocol axis) leaves
// every pre-existing cell's seed intact.
func CellSeed(base int64, label string, rep int) int64 {
	h := fnv.New64a()
	h.Write([]byte(label))
	return int64(uint64(base) ^ h.Sum64() ^ (uint64(rep) * 0x9e3779b97f4a7c15))
}

// plan lowers the grid onto the equivalent Plan: the six fixed axes in the
// grid's canonical order (topology, n, k, adversary, f, engine, reps), which
// reproduces the pre-Plan labels — "topo=T,n=N,k=K,adv=A,f=F,engine=E" —
// and therefore the exact per-cell seeds, names, and record order.
func (gr Grid) plan() Plan {
	reps := gr.Reps
	if reps <= 0 {
		reps = 1
	}
	return Plan{
		Axes: []Axis{
			TopologyAxis(defaulted(gr.Topologies, "clique")...),
			NAxis(defaulted(gr.Ns, 16)...),
			KAxis(defaulted(gr.Ks, 0)...),
			AdversaryAxis(defaulted(gr.Adversaries, "none")...),
			FAxis(defaulted(gr.Fs, 1)...),
			EngineAxis(defaulted(gr.Engines, EngineStep.Name())...),
			RepsAxis(reps),
		},
		BaseSeed:        gr.BaseSeed,
		MaxRounds:       gr.MaxRounds,
		CaptureTrace:    gr.CaptureTrace,
		Observers:       gr.Observers,
		DefaultProtocol: gr.Protocol,
	}
}

// Sweep expands the grid and runs every cell, fanning the work out across
// GOMAXPROCS workers (each reusing one congest.RunContext across its cells).
// The full record set is returned once the sweep completes, in grid order
// regardless of worker scheduling; per-cell failures are recorded rather
// than fatal, and only grid configuration errors (unknown registry names,
// unbuildable topologies) return an error.
//
// Sweep is the compat wrapper over the Plan API: it lowers the Grid onto the
// equivalent Plan and Runs it, byte-identically to the pre-Plan
// implementation. Use a Plan directly for streaming results, cancellation,
// protocol and user-defined axes, and worker control.
func Sweep(grid Grid) ([]Record, error) {
	return grid.plan().Run(context.Background())
}
