package mobilecongest

import (
	"errors"
	"fmt"

	"mobilecongest/internal/congest"
)

// Engine is the pluggable execution substrate; see congest.Engine.
type Engine = congest.Engine

// The three built-in engines. EngineStep is the default for scenarios: it
// runs nodes as resumable coroutine steps on one scheduler goroutine, which
// is measurably faster than the goroutine-per-node engine. EngineShard runs
// the same coroutines as a parallel-for over contiguous CSR node shards
// (GOMAXPROCS shards by default; see NewShardEngine for the knob) — the
// engine for large graphs on multi-core hosts. All engines produce identical
// Results (enforced by the cross-engine equivalence tests).
var (
	EngineGoroutine Engine = congest.GoroutineEngine{}
	EngineStep      Engine = congest.StepEngine{}
	EngineShard     Engine = congest.ShardEngine{}
)

// NewEngine resolves an engine by registry name ("goroutine", "step",
// "shard"). An empty name is an error; leave the engine unset on a Scenario
// to get the step-engine default.
func NewEngine(name string) (Engine, error) { return congest.EngineByName(name) }

// NewShardEngine returns a shard engine with a fixed shard (worker) count;
// shards <= 0 keeps the automatic default (GOMAXPROCS, divided down by
// Plan.Stream across its workers). Use WithEngine to install it on a
// scenario, or RegisterEngine to make the fixed count the registry's "shard".
func NewShardEngine(shards int) Engine { return congest.ShardEngine{Shards: shards} }

// RegisterEngine adds (or replaces) an engine in the name-keyed registry
// used by WithEngineName, sweeps, and the CLI — the engine counterpart of
// RegisterTopology and RegisterAdversary.
func RegisterEngine(e Engine) { congest.RegisterEngine(e) }

// EngineNames lists the registered engine names.
func EngineNames() []string { return congest.EngineNames() }

// advSeedMix decorrelates registry-built adversary randomness from the node
// randomness derived from the same scenario seed.
const advSeedMix = 0x6d6f62696c65 // "mobile"

// protoSeedMix likewise decorrelates registry-built protocol inputs (edge
// weights, payload values) from both the node and the adversary randomness.
const protoSeedMix = 0x70726f746f // "proto"

// Scenario is one fully-described simulation: topology, protocol, adversary,
// engine, and run parameters. Build it with NewScenario and functional
// options; zero-value defaults are fault-free, seed 0, the step engine, and
// the engine's generous round limit.
//
// A Scenario is the single entry point for running simulations — it replaces
// hand-rolled congest.Config literals — and is the unit a Sweep fans out.
// Repeated Run calls on one Scenario reuse a congest.RunContext, amortizing
// the per-run state (edge layout, round buffers, node cores, RNGs) across
// runs; a Scenario is therefore not safe for concurrent Run calls (it never
// was — the topology cache already mutated the value). To fan one scenario
// out across goroutines, give each its own Clone.
type Scenario struct {
	name      string
	g         *Graph
	topoName  string
	topoN     int
	topoK     int
	proto     Protocol
	protoName string
	protoP    int
	adv       Adversary
	advName   string
	advF      int
	engine    Engine
	seed      int64
	maxRounds int
	bandwidth int
	shared    any
	inputs    [][]byte
	observers []Observer
	runCtx    *congest.RunContext // reused across repeated Run calls
	err       error               // first configuration error, surfaced at Run
}

// ScenarioOption configures a Scenario.
type ScenarioOption func(*Scenario)

// NewScenario assembles a scenario from options. Configuration errors
// (unknown registry names, missing graph or protocol) are deferred and
// returned by Run, so call sites stay a single expression. Options that
// configure the same thing two ways — WithGraph vs WithTopology, WithAdversary
// vs WithAdversaryName — are last-one-wins.
func NewScenario(opts ...ScenarioOption) *Scenario {
	s := &Scenario{}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

func (s *Scenario) fail(err error) {
	if s.err == nil {
		s.err = err
	}
}

// WithName labels the scenario (sweep records and error messages).
func WithName(name string) ScenarioOption {
	return func(s *Scenario) { s.name = name }
}

// WithGraph sets the communication topology directly, displacing any earlier
// WithTopology.
func WithGraph(g *Graph) ScenarioOption {
	return func(s *Scenario) { s.g = g; s.topoName = "" }
}

// WithTopology sets the topology by registry name, displacing any earlier
// WithGraph; k is the family's secondary parameter (0 for the family
// default).
func WithTopology(name string, n, k int) ScenarioOption {
	return func(s *Scenario) {
		s.topoName, s.topoN, s.topoK = name, n, k
		s.g = nil
	}
}

// WithProtocol sets the per-node protocol directly, displacing any earlier
// WithProtocolName.
func WithProtocol(p Protocol) ScenarioOption {
	return func(s *Scenario) { s.proto = p; s.protoName = "" }
}

// WithProtocolName sets the protocol by registry name, displacing any
// earlier WithProtocol. The protocol is built at Run time against the
// resolved graph with ProtoParams derived canonically from the scenario:
// Seed is the scenario seed (decorrelated by a fixed mix), F is the f of
// WithAdversaryName (1 otherwise), Rounds is WithProtocolParam's value, and
// Root is node 0. A shared artifact returned by the registry entry (the
// compiled protocols) is installed unless WithShared set one explicitly.
// Registry protocols that need per-node inputs (mstclique, sumtoroot,
// secure-broadcast) generate their own canonical inputs from the seed;
// WithInputs does not reach them.
func WithProtocolName(name string) ScenarioOption {
	return func(s *Scenario) { s.protoName = name; s.proto = nil }
}

// WithProtocolParam sets the registered protocol's schedule parameter
// (rounds, radius, or iterations — family-dependent; 0 keeps the family
// default). It only affects protocols configured with WithProtocolName.
func WithProtocolParam(p int) ScenarioOption {
	return func(s *Scenario) { s.protoP = p }
}

// WithAdversary sets the adversary instance; nil means fault-free.
func WithAdversary(a Adversary) ScenarioOption {
	return func(s *Scenario) { s.adv = a; s.advName = "" }
}

// WithAdversaryName sets the adversary by registry name with per-round edge
// strength f. The instance is built at Run time against the resolved graph,
// seeded deterministically from the scenario seed.
func WithAdversaryName(name string, f int) ScenarioOption {
	return func(s *Scenario) { s.advName, s.advF = name, f; s.adv = nil }
}

// WithEngine selects the execution engine.
func WithEngine(e Engine) ScenarioOption {
	return func(s *Scenario) { s.engine = e }
}

// WithEngineName selects the execution engine by registry name.
func WithEngineName(name string) ScenarioOption {
	return func(s *Scenario) {
		e, err := NewEngine(name)
		if err != nil {
			s.fail(err)
			return
		}
		s.engine = e
	}
}

// WithSeed sets the master seed; runs are deterministic given it.
func WithSeed(seed int64) ScenarioOption {
	return func(s *Scenario) { s.seed = seed }
}

// WithShared distributes a trusted preprocessing artifact to all nodes.
func WithShared(shared any) ScenarioOption {
	return func(s *Scenario) { s.shared = shared }
}

// WithMaxRounds bounds the run (0 keeps the engine default).
func WithMaxRounds(r int) ScenarioOption {
	return func(s *Scenario) { s.maxRounds = r }
}

// WithBandwidth enforces the CONGEST per-edge-per-round budget: a node
// sending a message larger than bits bits over one edge in one round aborts
// the run with a deterministic smallest-offender error wrapping
// congest.ErrBandwidthExceeded, identical across engines. The budget binds
// the protocol only — adversary corruptions are not size-checked. 0 (the
// default) leaves message sizes unrestricted. For the paper's B = O(log n)
// model, pass e.g. 2*bits.Len(uint(n)) worth of budget explicitly.
func WithBandwidth(bits int) ScenarioOption {
	return func(s *Scenario) { s.bandwidth = bits }
}

// WithInputs sets per-node protocol inputs (nil or length N).
func WithInputs(inputs [][]byte) ScenarioOption {
	return func(s *Scenario) { s.inputs = inputs }
}

// WithObserver attaches observers to the run; they receive the round
// lifecycle events of the Observer pipeline (RoundStart, RoundDelivered,
// RunDone). Repeated options accumulate. Observers are per-run state: build
// fresh ones for every scenario rather than sharing them across runs.
func WithObserver(obs ...Observer) ScenarioOption {
	return func(s *Scenario) { s.observers = append(s.observers, obs...) }
}

// Name returns the scenario's label ("" if unnamed).
func (s *Scenario) Name() string { return s.name }

// Graph resolves and returns the scenario's topology (building and caching it
// from the registry if configured by name).
func (s *Scenario) Graph() (*Graph, error) {
	if s.err != nil {
		return nil, s.err
	}
	if s.g == nil {
		if s.topoName == "" {
			return nil, errors.New("mobilecongest: scenario has no graph (use WithGraph or WithTopology)")
		}
		g, err := BuildTopology(s.topoName, s.topoN, s.topoK)
		if err != nil {
			return nil, err
		}
		s.g = g
	}
	return s.g, nil
}

// Seed returns the scenario's master seed.
func (s *Scenario) Seed() int64 { return s.seed }

// Engine returns the scenario's engine (the step engine if unset).
func (s *Scenario) Engine() Engine {
	if s.engine == nil {
		return EngineStep
	}
	return s.engine
}

// Clone returns an independent copy of the scenario for concurrent use: the
// clone shares the immutable configuration (graph, options, inputs) but gets
// its own RunContext, so parallel goroutines can each Run their own clone of
// one scenario — the concurrent-reuse pattern a single Scenario value cannot
// support (see the type doc). Per-run state configured by *instance* rather
// than by name is still shared: a WithAdversary instance and WithObserver
// observers are not cloned, so scenarios meant for fan-out should configure
// the adversary with WithAdversaryName (built fresh per run) and attach
// observers per clone. If the topology was configured by name and not yet
// resolved, each clone builds its own (identical) graph; call Graph() once
// before cloning to share one instance.
func (s *Scenario) Clone() *Scenario {
	c := *s
	c.runCtx = nil
	// Snapshot the observer list so a later WithObserver-style append on one
	// copy can never alias the other's backing array.
	c.observers = append([]Observer(nil), s.observers...)
	return &c
}

// Run resolves the scenario and executes it.
func (s *Scenario) Run() (*Result, error) {
	if s.runCtx == nil {
		s.runCtx = congest.NewRunContext()
	}
	return s.runIn(s.runCtx)
}

// runIn executes the scenario inside the given run context, which a caller
// making many runs over the same graph (Sweep workers, the Scenario's own
// repeated Run calls) reuses to amortize per-run allocations.
func (s *Scenario) runIn(rc *congest.RunContext) (*Result, error) {
	if s.err != nil {
		return nil, s.err
	}
	if s.proto == nil && s.protoName == "" {
		return nil, errors.New("mobilecongest: scenario has no protocol (use WithProtocol or WithProtocolName)")
	}
	g, err := s.Graph()
	if err != nil {
		return nil, err
	}
	proto, shared := s.proto, s.shared
	if proto == nil {
		f := s.advF
		if f < 1 {
			f = 1
		}
		p, sh, err := BuildProtocol(s.protoName, g, ProtoParams{
			Rounds: s.protoP,
			Seed:   s.seed ^ protoSeedMix,
			F:      f,
		})
		if err != nil {
			return nil, err
		}
		proto = p
		if shared == nil {
			shared = sh
		}
	}
	adv := s.adv
	if adv == nil && s.advName != "" {
		adv, err = BuildAdversary(s.advName, g, s.advF, s.seed^advSeedMix)
		if err != nil {
			return nil, err
		}
	}
	cfg := congest.Config{
		Graph:     g,
		Seed:      s.seed,
		MaxRounds: s.maxRounds,
		Adversary: adv,
		Inputs:    s.inputs,
		Shared:    shared,
		Bandwidth: s.bandwidth,
		Observers: s.observers,
	}
	var res *Result
	var runErr error
	if cr, ok := s.Engine().(congest.ContextRunner); ok {
		res, runErr = cr.RunIn(rc, cfg, proto)
	} else {
		// Externally registered engines may predate RunContext; they still
		// work, just without cross-run reuse.
		res, runErr = s.Engine().Run(cfg, proto)
	}
	if runErr != nil && s.name != "" {
		return nil, fmt.Errorf("scenario %s: %w", s.name, runErr)
	}
	return res, runErr
}
