// Package prime provides arithmetic modulo the Mersenne primes 2^61-1 and
// 2^31-1, plus the CRT combination used by the one-sparse recovery triples in
// the sketching toolkit (Tool 3 of the paper). Both moduli admit fast
// reduction; their product exceeds 2^91, enough to encode a directed-edge
// identifier together with a 64-bit message payload.
package prime

import "math/bits"

// P61 is the Mersenne prime 2^61 - 1.
const P61 uint64 = (1 << 61) - 1

// P31 is the Mersenne prime 2^31 - 1.
const P31 uint64 = (1 << 31) - 1

// Mod61 reduces x modulo 2^61-1.
func Mod61(x uint64) uint64 {
	x = (x >> 61) + (x & P61)
	if x >= P61 {
		x -= P61
	}
	return x
}

// Add61 returns (a+b) mod 2^61-1 for a, b already reduced.
func Add61(a, b uint64) uint64 {
	s := a + b
	if s >= P61 {
		s -= P61
	}
	return s
}

// Sub61 returns (a-b) mod 2^61-1 for a, b already reduced.
func Sub61(a, b uint64) uint64 {
	if a >= b {
		return a - b
	}
	return a + P61 - b
}

// Mul61 returns (a*b) mod 2^61-1 using 128-bit intermediate arithmetic.
func Mul61(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	// a*b = hi*2^64 + lo = hi*8*2^61 + lo; 2^61 === 1 (mod p).
	r := Mod61(lo&P61) + Mod61((lo>>61)|(hi<<3))
	if r >= P61 {
		r -= P61
	}
	return r
}

// Pow61 returns base^e mod 2^61-1.
func Pow61(base, e uint64) uint64 {
	base = Mod61(base)
	result := uint64(1)
	for e > 0 {
		if e&1 == 1 {
			result = Mul61(result, base)
		}
		base = Mul61(base, base)
		e >>= 1
	}
	return result
}

// Inv61 returns the multiplicative inverse mod 2^61-1 (p is prime, so
// a^(p-2) works). Inv61(0) returns 0.
func Inv61(a uint64) uint64 {
	if a == 0 {
		return 0
	}
	return Pow61(a, P61-2)
}

// Mod31 reduces x modulo 2^31-1.
func Mod31(x uint64) uint64 {
	for x >= P31 {
		x = (x >> 31) + (x & P31)
	}
	return x
}

// Add31 returns (a+b) mod 2^31-1 for reduced inputs.
func Add31(a, b uint64) uint64 {
	s := a + b
	if s >= P31 {
		s -= P31
	}
	return s
}

// Sub31 returns (a-b) mod 2^31-1 for reduced inputs.
func Sub31(a, b uint64) uint64 {
	if a >= b {
		return a - b
	}
	return a + P31 - b
}

// Mul31 returns (a*b) mod 2^31-1 for reduced inputs.
func Mul31(a, b uint64) uint64 { return Mod31(a * b) }

// Inv31 returns the multiplicative inverse mod 2^31-1; Inv31(0) returns 0.
func Inv31(a uint64) uint64 {
	if a == 0 {
		return 0
	}
	result := uint64(1)
	base := Mod31(a)
	e := P31 - 2
	for e > 0 {
		if e&1 == 1 {
			result = Mul31(result, base)
		}
		base = Mul31(base, base)
		e >>= 1
	}
	return result
}

// CRT reconstructs the unique x in [0, P61*P31) with x === r61 (mod P61) and
// x === r31 (mod P31), returning it as (hi, lo) 128-bit pair collapsed into
// hi*2^64+lo. Since P61*P31 < 2^92 the result fits comfortably.
func CRT(r61, r31 uint64) (hi, lo uint64) {
	// x = r61 + P61 * t where t = (r31 - r61) * P61^{-1} mod P31.
	inv := Inv31(Mod31(P61)) // P61^{-1} mod P31
	diff := Sub31(Mod31(r31), Mod31(r61))
	t := Mul31(diff, inv)
	hi, lo = bits.Mul64(P61, t)
	var carry uint64
	lo, carry = bits.Add64(lo, r61, 0)
	hi += carry
	return hi, lo
}
