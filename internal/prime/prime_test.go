package prime

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMul61AgainstBig(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := new(big.Int).SetUint64(P61)
	for i := 0; i < 2000; i++ {
		a := rng.Uint64() % P61
		b := rng.Uint64() % P61
		got := Mul61(a, b)
		want := new(big.Int).Mul(new(big.Int).SetUint64(a), new(big.Int).SetUint64(b))
		want.Mod(want, p)
		if got != want.Uint64() {
			t.Fatalf("Mul61(%d,%d) = %d, want %d", a, b, got, want.Uint64())
		}
	}
}

func TestMod61Quick(t *testing.T) {
	f := func(x uint64) bool {
		return Mod61(x) == x%P61
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMod31Quick(t *testing.T) {
	f := func(x uint64) bool {
		return Mod31(x) == x%P31
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInv61(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		a := rng.Uint64()%(P61-1) + 1
		if Mul61(a, Inv61(a)) != 1 {
			t.Fatalf("Inv61(%d) wrong", a)
		}
	}
	if Inv61(0) != 0 {
		t.Fatal("Inv61(0) should be 0")
	}
}

func TestInv31(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		a := rng.Uint64()%(P31-1) + 1
		if Mul31(a, Inv31(a)) != 1 {
			t.Fatalf("Inv31(%d) wrong", a)
		}
	}
}

func TestPow61(t *testing.T) {
	// Fermat: a^(p-1) = 1.
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 50; i++ {
		a := rng.Uint64()%(P61-1) + 1
		if Pow61(a, P61-1) != 1 {
			t.Fatalf("Fermat fails for %d", a)
		}
	}
}

func TestAddSub(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 1000; i++ {
		a, b := rng.Uint64()%P61, rng.Uint64()%P61
		if Sub61(Add61(a, b), b) != a {
			t.Fatalf("Add61/Sub61 not inverse for %d, %d", a, b)
		}
		a31, b31 := rng.Uint64()%P31, rng.Uint64()%P31
		if Sub31(Add31(a31, b31), b31) != a31 {
			t.Fatalf("Add31/Sub31 not inverse for %d, %d", a31, b31)
		}
	}
}

func TestCRTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	p61 := new(big.Int).SetUint64(P61)
	p31 := new(big.Int).SetUint64(P31)
	for i := 0; i < 500; i++ {
		// Pick a random x < 2^90 and verify CRT reconstructs it from its
		// residues.
		x := new(big.Int).Rand(rng, new(big.Int).Lsh(big.NewInt(1), 90))
		r61 := new(big.Int).Mod(x, p61).Uint64()
		r31 := new(big.Int).Mod(x, p31).Uint64()
		hi, lo := CRT(r61, r31)
		got := new(big.Int).Lsh(new(big.Int).SetUint64(hi), 64)
		got.Add(got, new(big.Int).SetUint64(lo))
		if got.Cmp(x) != 0 {
			t.Fatalf("CRT round trip failed: got %s want %s", got, x)
		}
	}
}
