package sketch

import (
	"mobilecongest/internal/hashfam"
	"mobilecongest/internal/prime"
)

// L0Sampler is the ℓ0-sampling sketch of Theorem 3.4: Query returns a
// (near-)uniform element of the non-zero-frequency support, and Merge
// combines sketches built with the same randomness. The construction is the
// standard level-sampling one: level l subsamples the universe at rate 2^-l
// and keeps a one-sparse triple; Query decodes the lowest level that is
// exactly one-sparse.
type L0Sampler struct {
	seed   uint64
	levels []*OneSparse
	lkey   uint64 // level-assignment PRF key
}

// l0Levels covers supports up to 2^40 elements — far beyond any stream here.
const l0Levels = 40

// NewL0Sampler creates an empty sampler from the given randomness seed.
// Samplers merge only when created from equal seeds.
func NewL0Sampler(seed uint64) *L0Sampler {
	s := &L0Sampler{seed: seed, lkey: mix64(seed ^ 0x9e3779b97f4a7c15)}
	s.levels = make([]*OneSparse, l0Levels)
	for i := range s.levels {
		s.levels[i] = NewOneSparse(seed + uint64(i)*0x2545f4914f6cdd1d)
	}
	return s
}

// level returns the deepest level element e participates in: e is in levels
// 0..level(e).
func (s *L0Sampler) level(e Elem) int {
	h := prf64(s.lkey, e)
	l := 0
	for l < l0Levels-1 && h&1 == 1 {
		l++
		h >>= 1
	}
	return l
}

// Update adds element e with frequency freq.
func (s *L0Sampler) Update(e Elem, freq int64) {
	top := s.level(e)
	for l := 0; l <= top; l++ {
		s.levels[l].Update(e, freq)
	}
}

// Merge folds another sampler (same seed) into s.
func (s *L0Sampler) Merge(other *L0Sampler) {
	for i := range s.levels {
		s.levels[i].Merge(other.levels[i])
	}
}

// Query returns a sample from the support, scanning from the sparsest
// (deepest) level down. ok=false when the support appears empty or no level
// is one-sparse (constant failure probability; callers run Theta(log n)
// independent samplers).
func (s *L0Sampler) Query() (Elem, int64, bool) {
	for l := l0Levels - 1; l >= 0; l-- {
		if s.levels[l].IsEmpty() {
			continue
		}
		if e, f, ok := s.levels[l].Decode(); ok {
			return e, f, true
		}
	}
	return Elem{}, 0, false
}

// Empty reports whether every level is consistent with an empty support.
func (s *L0Sampler) Empty() bool {
	for _, l := range s.levels {
		if !l.IsEmpty() {
			return false
		}
	}
	return true
}

// Encode serializes the sampler (32 bytes per level).
func (s *L0Sampler) Encode() []byte {
	out := make([]byte, 0, 32*len(s.levels))
	for _, l := range s.levels {
		out = append(out, l.Encode()...)
	}
	return out
}

// DecodeL0Sampler parses a sampler wire image produced with the same seed.
// Corrupted bytes yield a garbage (but well-formed) sampler.
func DecodeL0Sampler(seed uint64, data []byte) *L0Sampler {
	s := NewL0Sampler(seed)
	for i := range s.levels {
		off := 32 * i
		var chunk []byte
		if off < len(data) {
			end := off + 32
			if end > len(data) {
				end = len(data)
			}
			chunk = data[off:end]
		}
		s.levels[i] = DecodeOneSparse(seed+uint64(i)*0x2545f4914f6cdd1d, chunk)
	}
	return s
}

// EncodedL0Size is the wire size of an encoded sampler.
const EncodedL0Size = 32 * l0Levels

// XorFold derives auxiliary seeds; exported for the compilers that must
// derive per-(tree, iteration, sampler) seeds from one broadcast seed.
func XorFold(seed uint64, parts ...uint64) uint64 {
	h := hashfam.NewFingerprint(seed)
	return prime.Mod61(h.Hash64(parts))
}
