package sketch

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOneSparseSingleElement(t *testing.T) {
	o := NewOneSparse(7)
	e := Pack(12345, 0xdeadbeefcafe)
	o.Update(e, 1)
	got, f, ok := o.Decode()
	if !ok || got != e || f != 1 {
		t.Fatalf("decode = (%v,%d,%v), want (%v,1,true)", got, f, ok, e)
	}
}

func TestOneSparseNegativeFrequency(t *testing.T) {
	o := NewOneSparse(8)
	e := Pack(3, 999)
	o.Update(e, -1)
	got, f, ok := o.Decode()
	if !ok || got != e || f != -1 {
		t.Fatalf("decode = (%v,%d,%v), want (%v,-1,true)", got, f, ok, e)
	}
}

func TestOneSparseCancellation(t *testing.T) {
	o := NewOneSparse(9)
	e1, e2 := Pack(1, 100), Pack(2, 200)
	o.Update(e1, 1)
	o.Update(e2, 1)
	o.Update(e1, -1)
	got, f, ok := o.Decode()
	if !ok || got != e2 || f != 1 {
		t.Fatalf("after cancellation decode = (%v,%d,%v), want (%v,1,true)", got, f, ok, e2)
	}
	o.Update(e2, -1)
	if !o.IsEmpty() {
		t.Fatal("fully cancelled sketch not empty")
	}
}

func TestOneSparseRejectsTwoSparse(t *testing.T) {
	rejected := 0
	const trials = 200
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < trials; i++ {
		o := NewOneSparse(rng.Uint64())
		o.Update(Pack(uint32(rng.Intn(1000)), rng.Uint64()), 1)
		o.Update(Pack(uint32(1000+rng.Intn(1000)), rng.Uint64()), 1)
		if _, _, ok := o.Decode(); !ok {
			rejected++
		}
	}
	if rejected < trials-1 {
		t.Fatalf("two-sparse accepted %d/%d times", trials-rejected, trials)
	}
}

func TestOneSparseMergeEqualsUnion(t *testing.T) {
	a := NewOneSparse(5)
	b := NewOneSparse(5)
	e := Pack(77, 42)
	a.Update(Pack(1, 1), 1)
	b.Update(Pack(1, 1), -1)
	b.Update(e, 1)
	a.Merge(b)
	got, f, ok := a.Decode()
	if !ok || got != e || f != 1 {
		t.Fatalf("merged decode = (%v,%d,%v), want (%v,1,true)", got, f, ok, e)
	}
}

func TestOneSparseWire(t *testing.T) {
	o := NewOneSparse(11)
	e := Pack(500, 123456789)
	o.Update(e, 1)
	o2 := DecodeOneSparse(11, o.Encode())
	got, f, ok := o2.Decode()
	if !ok || got != e || f != 1 {
		t.Fatal("wire round-trip lost the element")
	}
}

func TestPackUnpack(t *testing.T) {
	f := func(idx uint32, payload uint64) bool {
		idx %= MaxEdgeIndex
		e := Pack(idx, payload)
		gi, gp := e.Unpack()
		return gi == idx && gp == payload
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestL0SamplerUniformity(t *testing.T) {
	// Insert 8 elements; across many seeds the sample distribution should
	// be roughly uniform (Theorem 3.4's near-uniformity).
	elems := make([]Elem, 8)
	for i := range elems {
		elems[i] = Pack(uint32(i+1), uint64(1000+i))
	}
	counts := make(map[Elem]int)
	rng := rand.New(rand.NewSource(2))
	const trials = 4000
	fails := 0
	for trial := 0; trial < trials; trial++ {
		s := NewL0Sampler(rng.Uint64())
		for _, e := range elems {
			s.Update(e, 1)
		}
		e, f, ok := s.Query()
		if !ok {
			fails++
			continue
		}
		if f != 1 {
			t.Fatalf("sampled frequency %d, want 1", f)
		}
		counts[e]++
	}
	if fails > trials/3 {
		t.Fatalf("sampler failed %d/%d times", fails, trials)
	}
	succeeded := trials - fails
	want := float64(succeeded) / 8
	for _, e := range elems {
		c := counts[e]
		if float64(c) < want*0.5 || float64(c) > want*1.6 {
			t.Errorf("element %v sampled %d times, expected about %f", e, c, want)
		}
	}
	// Only inserted elements may ever be returned.
	for e := range counts {
		found := false
		for _, x := range elems {
			if x == e {
				found = true
			}
		}
		if !found {
			t.Fatalf("sampler fabricated element %v", e)
		}
	}
}

func TestL0SamplerEmpty(t *testing.T) {
	s := NewL0Sampler(3)
	if !s.Empty() {
		t.Fatal("fresh sampler not empty")
	}
	if _, _, ok := s.Query(); ok {
		t.Fatal("query on empty support succeeded")
	}
	e := Pack(1, 2)
	s.Update(e, 1)
	s.Update(e, -1)
	if !s.Empty() {
		t.Fatal("cancelled sampler not empty")
	}
}

func TestL0SamplerMergeAcrossParts(t *testing.T) {
	// Simulate the distributed aggregation: the stream is split across 10
	// "nodes", sketches merged pairwise; the sample must still come from
	// the joint support.
	seed := uint64(44)
	parts := make([]*L0Sampler, 10)
	for i := range parts {
		parts[i] = NewL0Sampler(seed)
	}
	// Element i inserted at node i with +1 and at node (i+1)%10 with -1
	// except element 0 which survives.
	for i := 1; i < 10; i++ {
		e := Pack(uint32(i), uint64(i))
		parts[i].Update(e, 1)
		parts[(i+1)%10].Update(e, -1)
	}
	survivor := Pack(42, 4242)
	parts[3].Update(survivor, 1)
	root := NewL0Sampler(seed)
	for _, p := range parts {
		root.Merge(p)
	}
	e, f, ok := root.Query()
	if !ok || e != survivor || f != 1 {
		t.Fatalf("merged query = (%v,%d,%v), want survivor", e, f, ok)
	}
}

func TestL0Wire(t *testing.T) {
	s := NewL0Sampler(77)
	e := Pack(9, 9)
	s.Update(e, 1)
	enc := s.Encode()
	if len(enc) != EncodedL0Size {
		t.Fatalf("encoded size %d, want %d", len(enc), EncodedL0Size)
	}
	s2 := DecodeL0Sampler(77, enc)
	got, _, ok := s2.Query()
	if !ok || got != e {
		t.Fatal("wire round-trip lost the sample")
	}
}

func TestRecoveryExact(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 30; trial++ {
		s := 1 + rng.Intn(12)
		r := NewRecovery(rng.Uint64(), s)
		want := make(map[Elem]int64)
		for i := 0; i < s; i++ {
			e := Pack(uint32(rng.Intn(10000)), rng.Uint64())
			f := int64(1)
			if rng.Intn(2) == 0 {
				f = -1
			}
			if _, dup := want[e]; dup {
				continue
			}
			want[e] = f
			r.Update(e, f)
		}
		items, ok := r.Decode()
		if !ok {
			t.Fatalf("trial %d: decode failed with support %d <= s=%d", trial, len(want), s)
		}
		if len(items) != len(want) {
			t.Fatalf("trial %d: got %d items, want %d", trial, len(items), len(want))
		}
		for _, it := range items {
			if want[it.E] != it.Freq {
				t.Fatalf("trial %d: item %v freq %d, want %d", trial, it.E, it.Freq, want[it.E])
			}
		}
	}
}

func TestRecoveryOverflowDetected(t *testing.T) {
	// Support 4x the sparsity: decode must report failure, not fabricate.
	r := NewRecovery(5, 2)
	rng := rand.New(rand.NewSource(5))
	inserted := make(map[Elem]bool)
	for i := 0; i < 8; i++ {
		e := Pack(uint32(i+1), rng.Uint64())
		inserted[e] = true
		r.Update(e, 1)
	}
	items, ok := r.Decode()
	if ok && len(items) < 8 {
		t.Fatal("overfull sketch claimed complete decode with missing items")
	}
	for _, it := range items {
		if !inserted[it.E] {
			t.Fatalf("fabricated element %v", it.E)
		}
	}
}

func TestRecoveryMergeAndWire(t *testing.T) {
	seed := uint64(99)
	a := NewRecovery(seed, 4)
	b := NewRecovery(seed, 4)
	e1, e2 := Pack(1, 11), Pack(2, 22)
	a.Update(e1, 1)
	b.Update(e2, -1)
	b.Update(e1, 0) // no-op
	c := DecodeRecovery(seed, 4, a.Encode())
	c.Merge(b)
	items, ok := c.Decode()
	if !ok || len(items) != 2 {
		t.Fatalf("merged wire decode: ok=%v items=%v", ok, items)
	}
}

func TestRecoveryDecodeNonDestructive(t *testing.T) {
	r := NewRecovery(1, 3)
	e := Pack(5, 55)
	r.Update(e, 1)
	if _, ok := r.Decode(); !ok {
		t.Fatal("first decode failed")
	}
	items, ok := r.Decode()
	if !ok || len(items) != 1 || items[0].E != e {
		t.Fatal("second decode differs — Decode is destructive")
	}
}

func BenchmarkL0Update(b *testing.B) {
	s := NewL0Sampler(1)
	for i := 0; i < b.N; i++ {
		s.Update(Pack(uint32(i%1000), uint64(i)), 1)
	}
}

func BenchmarkRecoveryDecode(b *testing.B) {
	r := NewRecovery(1, 8)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 8; i++ {
		r.Update(Pack(uint32(i+1), rng.Uint64()), 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := r.Decode(); !ok {
			b.Fatal("decode failed")
		}
	}
}
