// Package sketch implements the linear sketching toolkit of the paper's
// Tool 3 (Section 3.1): mergeable ℓ0-sampling sketches and s-sparse recovery
// sketches over a turnstile stream of (element, ±1 frequency) updates. The
// compilers stream every sent message with frequency +1 and every received
// message with frequency -1, so the non-zero-frequency support is exactly
// the set of corrupted ("mismatched") messages and their corrections.
//
// Elements are 128-bit values packing a directed-edge index with a 64-bit
// payload; arithmetic runs over the CRT pair (2^61-1, 2^31-1), whose product
// exceeds the element range, so one-sparse recovery is exact.
package sketch

import "mobilecongest/internal/prime"

// Elem is a stream element: the integer Hi*2^64 + Lo, which must stay below
// P61*P31 (~2^92). Pack enforces the range.
type Elem struct {
	Hi, Lo uint64
}

// MaxEdgeIndex bounds the directed-edge index packable into an element.
const MaxEdgeIndex = 1 << 26

// Pack builds an element from a directed-edge index and a 64-bit payload.
// It panics if edgeIdx is out of range (a programming error: graphs in this
// simulator are far smaller).
func Pack(edgeIdx uint32, payload uint64) Elem {
	if edgeIdx >= MaxEdgeIndex {
		panic("sketch: edge index too large to pack")
	}
	return Elem{Hi: uint64(edgeIdx), Lo: payload}
}

// Unpack splits an element back into edge index and payload.
func (e Elem) Unpack() (edgeIdx uint32, payload uint64) {
	return uint32(e.Hi), e.Lo
}

// IsZero reports whether e is the zero element.
func (e Elem) IsZero() bool { return e.Hi == 0 && e.Lo == 0 }

// mod61 returns the element value mod 2^61-1. Since 2^64 === 8 (mod P61),
// e = hi*2^64 + lo === 8*hi + lo.
func (e Elem) mod61() uint64 {
	return prime.Add61(prime.Mul61(prime.Mod61(e.Hi), 8), prime.Mod61(e.Lo))
}

// mod31 returns the element value mod 2^31-1. Since 2^64 === 4 (mod P31).
func (e Elem) mod31() uint64 {
	return prime.Add31(prime.Mul31(prime.Mod31(e.Hi), 4), prime.Mod31(e.Lo))
}

// zValue is the pseudo-random verification tag of an element. It must be a
// *non-linear* function of the element: a linear tag satisfies the same
// linear relations as the sums themselves and would systematically accept
// multi-sparse buckets. We use the splitmix64 finalizer as a keyed PRF
// (the standard r^e tag has the same role; a strong mixer is cheaper).
func zValue(key uint64, e Elem) uint64 {
	x := mix64(e.Hi ^ key)
	x = mix64(x + e.Lo + 0x9e3779b97f4a7c15)
	x = mix64(x ^ key)
	return prime.Mod61(x)
}

// prf64 is a keyed non-linear PRF over elements, used wherever a hash of an
// element must not preserve linear structure (bucket assignment, sampling
// levels): a linear hash sends element pairs whose difference divides the
// range into the same bucket in every row.
func prf64(key uint64, e Elem) uint64 {
	x := mix64(e.Hi + key*0x9e3779b97f4a7c15)
	x = mix64(x ^ (e.Lo + 0x6a09e667f3bcc909))
	return mix64(x + key)
}

// mix64 is the splitmix64 finalizer — a bijective, highly non-linear mixer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// OneSparse is the classic one-sparse recovery triple extended with a
// fingerprint: it maintains sum of frequencies, frequency-weighted element
// sums modulo both primes, and a frequency-weighted random tag. It decodes
// exactly when the underlying stream has support size one, and the
// fingerprint rejects larger supports with high probability.
type OneSparse struct {
	key   uint64
	count int64
	s61   uint64
	s31   uint64
	tag   uint64
}

// NewOneSparse creates an empty triple using fingerprint randomness seed.
// Sketches can only be merged when built from the same seed.
func NewOneSparse(seed uint64) *OneSparse {
	return &OneSparse{key: mix64(seed ^ 0xa0761d6478bd642f)}
}

// Update adds element e with frequency freq (typically ±1).
func (o *OneSparse) Update(e Elem, freq int64) {
	o.count += freq
	f61 := prime.Mod61(uint64(freq & 0x7fffffffffffffff))
	neg := freq < 0
	if neg {
		f61 = prime.Mod61(uint64(-freq))
	}
	m61 := prime.Mul61(f61, e.mod61())
	m31 := prime.Mul31(prime.Mod31(f61), e.mod31())
	mt := prime.Mul61(f61, zValue(o.key, e))
	if neg {
		o.s61 = prime.Sub61(o.s61, m61)
		o.s31 = prime.Sub31(o.s31, m31)
		o.tag = prime.Sub61(o.tag, mt)
	} else {
		o.s61 = prime.Add61(o.s61, m61)
		o.s31 = prime.Add31(o.s31, m31)
		o.tag = prime.Add61(o.tag, mt)
	}
}

// Merge folds other into o (both must share the seed).
func (o *OneSparse) Merge(other *OneSparse) {
	o.count += other.count
	o.s61 = prime.Add61(o.s61, other.s61)
	o.s31 = prime.Add31(o.s31, other.s31)
	o.tag = prime.Add61(o.tag, other.tag)
}

// IsEmpty reports whether the sketch is consistent with the empty support.
func (o *OneSparse) IsEmpty() bool {
	return o.count == 0 && o.s61 == 0 && o.s31 == 0 && o.tag == 0
}

// Decode returns (element, frequency, true) if the sketch is consistent with
// a single-element support, else ok=false. Correct whenever the support is
// truly one-sparse; false positives require a fingerprint collision
// (probability ~2^-61 per decode).
func (o *OneSparse) Decode() (Elem, int64, bool) {
	if o.count == 0 {
		return Elem{}, 0, false
	}
	c := o.count
	neg := c < 0
	abs := uint64(c)
	if neg {
		abs = uint64(-c)
	}
	c61 := prime.Mod61(abs)
	c31 := prime.Mod31(abs)
	s61, s31 := o.s61, o.s31
	if neg {
		s61 = prime.Sub61(0, s61)
		s31 = prime.Sub31(0, s31)
	}
	e61 := prime.Mul61(s61, prime.Inv61(c61))
	e31 := prime.Mul31(s31, prime.Inv31(c31))
	hi, lo := prime.CRT(e61, e31)
	e := Elem{Hi: hi, Lo: lo}
	// Verify the tag: tag must equal count * z(e).
	want := prime.Mul61(c61, zValue(o.key, e))
	if neg {
		want = prime.Sub61(0, want)
	}
	if o.tag != want {
		return Elem{}, 0, false
	}
	return e, o.count, true
}

// Encode serializes the triple to a fixed 32-byte wire format (seedless —
// both endpoints already share the seed).
func (o *OneSparse) Encode() []byte {
	buf := make([]byte, 0, 32)
	buf = appendU64(buf, uint64(o.count))
	buf = appendU64(buf, o.s61)
	buf = appendU64(buf, o.s31)
	buf = appendU64(buf, o.tag)
	return buf
}

// DecodeOneSparse parses a wire triple created with the same seed. Short or
// corrupted buffers produce *some* triple (garbage in, garbage out) — the
// resilient protocols vote across trees rather than trusting any single
// sketch.
func DecodeOneSparse(seed uint64, data []byte) *OneSparse {
	o := NewOneSparse(seed)
	o.count = int64(readU64(data, 0))
	o.s61 = prime.Mod61(readU64(data, 8))
	o.s31 = prime.Mod31(readU64(data, 16))
	o.tag = prime.Mod61(readU64(data, 24))
	return o
}

func appendU64(b []byte, v uint64) []byte {
	for i := 7; i >= 0; i-- {
		b = append(b, byte(v>>(8*i)))
	}
	return b
}

func readU64(b []byte, off int) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v <<= 8
		if off+i < len(b) {
			v |= uint64(b[off+i])
		}
	}
	return v
}
