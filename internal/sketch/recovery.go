package sketch

// Recovery is an s-sparse recovery sketch: if the stream's support has at
// most s non-zero-frequency elements, Decode returns all of them exactly
// (w.h.p.). It hashes elements into rows x width one-sparse buckets and
// decodes by peeling. This powers the Õ(D_TP + f) variant of the byzantine
// compiler (Section 1.2.2) and the message-correction procedure of
// Lemma 4.2, both of which need the *full* mismatch list at the root.
type Recovery struct {
	seed    uint64
	rows    int
	width   int
	buckets [][]*OneSparse
	rowKey  []uint64
}

// NewRecovery creates a sketch for supports up to s elements. It uses
// 2s-wide rows and a logarithmic number of rows, the standard parameters
// under which peeling succeeds w.h.p.
func NewRecovery(seed uint64, s int) *Recovery {
	if s < 1 {
		s = 1
	}
	rows := 6
	width := 2 * s
	r := &Recovery{seed: seed, rows: rows, width: width}
	r.buckets = make([][]*OneSparse, rows)
	r.rowKey = make([]uint64, rows)
	for i := 0; i < rows; i++ {
		r.buckets[i] = make([]*OneSparse, width)
		for j := 0; j < width; j++ {
			r.buckets[i][j] = NewOneSparse(seed ^ (uint64(i*width+j+1) * 0x9e3779b97f4a7c15))
		}
		r.rowKey[i] = mix64(seed ^ (uint64(i+1) * 0xc2b2ae3d27d4eb4f))
	}
	return r
}

// S returns the sparsity parameter (width/2).
func (r *Recovery) S() int { return r.width / 2 }

func (r *Recovery) bucketOf(row int, e Elem) int {
	return int(prf64(r.rowKey[row], e) % uint64(r.width))
}

// Update adds element e with frequency freq.
func (r *Recovery) Update(e Elem, freq int64) {
	for i := 0; i < r.rows; i++ {
		r.buckets[i][r.bucketOf(i, e)].Update(e, freq)
	}
}

// Merge folds another sketch (same seed and sparsity) into r.
func (r *Recovery) Merge(other *Recovery) {
	for i := 0; i < r.rows; i++ {
		for j := 0; j < r.width; j++ {
			r.buckets[i][j].Merge(other.buckets[i][j])
		}
	}
}

// Item is one recovered (element, net frequency) pair.
type Item struct {
	E    Elem
	Freq int64
}

// Decode peels the sketch and returns the recovered support. ok=false when
// peeling stalls before emptying the sketch (support larger than s, or a
// corrupted sketch).
func (r *Recovery) Decode() (items []Item, ok bool) {
	// Work on a copy so Decode is non-destructive.
	work := NewRecovery(r.seed, r.S())
	work.Merge(r)
	for iter := 0; iter <= 4*r.width*r.rows; iter++ {
		progressed := false
		for i := 0; i < work.rows && !progressed; i++ {
			for j := 0; j < work.width && !progressed; j++ {
				b := work.buckets[i][j]
				if b.IsEmpty() {
					continue
				}
				e, f, decOK := b.Decode()
				if !decOK {
					continue
				}
				items = append(items, Item{E: e, Freq: f})
				work.Update(e, -f)
				progressed = true
			}
		}
		if !progressed {
			break
		}
	}
	for i := 0; i < work.rows; i++ {
		for j := 0; j < work.width; j++ {
			if !work.buckets[i][j].IsEmpty() {
				return items, false
			}
		}
	}
	return items, true
}

// ResidualBuckets returns how many buckets stay non-empty after peeling —
// diagnostic for distinguishing "support slightly over s" from structural
// aggregation loss.
func (r *Recovery) ResidualBuckets() int {
	work := NewRecovery(r.seed, r.S())
	work.Merge(r)
	if items, _ := work.Decode(); items != nil {
		for _, it := range items {
			work.Update(it.E, -it.Freq)
		}
	}
	n := 0
	for i := 0; i < work.rows; i++ {
		for j := 0; j < work.width; j++ {
			if !work.buckets[i][j].IsEmpty() {
				n++
			}
		}
	}
	return n
}

// Encode serializes the sketch: rows*width one-sparse triples of 32 bytes.
func (r *Recovery) Encode() []byte {
	out := make([]byte, 0, 32*r.rows*r.width)
	for i := 0; i < r.rows; i++ {
		for j := 0; j < r.width; j++ {
			out = append(out, r.buckets[i][j].Encode()...)
		}
	}
	return out
}

// EncodedSize returns the wire size for sparsity s.
func EncodedSize(s int) int {
	if s < 1 {
		s = 1
	}
	return 32 * 6 * 2 * s
}

// DecodeRecovery parses a wire image produced with the same seed and
// sparsity. Corrupted bytes yield a garbage (but well-formed) sketch.
func DecodeRecovery(seed uint64, s int, data []byte) *Recovery {
	r := NewRecovery(seed, s)
	idx := 0
	for i := 0; i < r.rows; i++ {
		for j := 0; j < r.width; j++ {
			off := 32 * idx
			var chunk []byte
			if off < len(data) {
				end := off + 32
				if end > len(data) {
					end = len(data)
				}
				chunk = data[off:end]
			}
			r.buckets[i][j] = DecodeOneSparse(r.seed^(uint64(i*r.width+j+1)*0x9e3779b97f4a7c15), chunk)
			idx++
		}
	}
	return r
}
