package treepack

import (
	"math"

	"mobilecongest/internal/graph"
)

// Greedy low-depth tree packing (Appendix C). The paper packs k trees by
// repeatedly computing an approximately min-cost depth-bounded spanning tree
// under exponentially load-weighted edge costs (Theorem C.2 bounds the final
// load by O(eta * alpha * log n) against any existential (k, d, eta)
// packing). The distributed min-cost shallow-tree subroutine of Ghaffari
// (Lemma C.1) is substituted by a centralized depth-bounded lightest-path
// tree (hop-limited Bellman-Ford), which is its own O(1)-approximation on
// the instances here; DESIGN.md records the substitution.

// GreedyLowDepth packs k trees of depth at most depthBound rooted at root,
// greedily minimizing exponential load costs. etaGuess calibrates the cost
// exponent (use the load of the existential packing if known, else 1).
func GreedyLowDepth(g *graph.Graph, root graph.NodeID, k, depthBound, etaGuess int) *Packing {
	if etaGuess < 1 {
		etaGuess = 1
	}
	load := make(map[graph.Edge]int, g.M())
	// Cost base 3 makes one reuse of an edge (cost a^h(a-1) = 6) strictly
	// worse than a two-hop detour over fresh edges (cost 4), so the greedy
	// actually spreads; base 2 ties and degenerates. A tiny per-tree jitter
	// breaks the remaining ties differently in every iteration.
	const a = 3.0
	p := &Packing{Root: root}
	for i := 0; i < k; i++ {
		tree := i
		w := func(e graph.Edge) float64 {
			h := float64(load[e]) / float64(etaGuess)
			base := math.Pow(a, h+1) - math.Pow(a, h)
			j := float64((uint64(e.U)*2654435761+uint64(e.V)*40503+uint64(tree)*97)%1024) / 1024.0
			return base * (1 + 1e-6*j)
		}
		t := shallowLightTree(g, root, depthBound, w)
		if t == nil {
			break
		}
		for _, e := range t.Edges() {
			load[e]++
		}
		p.Trees = append(p.Trees, t)
	}
	return p
}

// shallowLightTree builds an approximately min-cost spanning tree of depth
// at most depthBound rooted at root via depth-capped Prim: repeatedly attach
// the non-tree node with the cheapest edge into the current tree whose
// parent sits strictly below the depth cap. Minimizing *tree* cost (not
// per-node path cost) is what lets later iterations route around loaded
// edges — a lightest-path tree would re-use every root edge in every
// iteration. Returns nil when the bound is infeasible for the greedy order.
func shallowLightTree(g *graph.Graph, root graph.NodeID, depthBound int, w func(graph.Edge) float64) *Tree {
	n := g.N()
	depth := make([]int, n)
	parent := make([]graph.NodeID, n)
	inTree := make([]bool, n)
	for i := range parent {
		parent[i] = -1
		depth[i] = -1
	}
	parent[root] = root
	depth[root] = 0
	inTree[root] = true
	for added := 1; added < n; added++ {
		bestCost := math.Inf(1)
		bestV, bestP := graph.NodeID(-1), graph.NodeID(-1)
		for v := 0; v < n; v++ {
			if !inTree[v] || depth[v] >= depthBound {
				continue
			}
			for _, u := range g.Neighbors(graph.NodeID(v)) {
				if inTree[u] {
					continue
				}
				if c := w(graph.NewEdge(graph.NodeID(v), u)); c < bestCost {
					bestCost = c
					bestV = u
					bestP = graph.NodeID(v)
				}
			}
		}
		if bestV < 0 {
			return nil // depth cap exhausted before spanning
		}
		inTree[bestV] = true
		parent[bestV] = bestP
		depth[bestV] = depth[bestP] + 1
	}
	return &Tree{Root: root, Parent: parent}
}
