package treepack

import (
	"fmt"
	"testing"

	"mobilecongest/internal/congest"
	"mobilecongest/internal/graph"
)

func runDistPacking(t *testing.T, g *graph.Graph, k int) *Packing {
	t.Helper()
	n := g.N()
	res, err := congest.Run(congest.Config{Graph: g, Seed: 3, MaxRounds: 1 << 22},
		DistributedGreedyPacking(k, n))
	if err != nil {
		t.Fatal(err)
	}
	if want := DistPackingRounds(n, k, n); res.Stats.Rounds != want {
		t.Fatalf("rounds = %d, want %d", res.Stats.Rounds, want)
	}
	return AssembleDistPacking(n, k, res.Outputs)
}

func TestDistributedPackingSpanningTrees(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
		k    int
	}{
		{"circulant(12,3)", graph.Circulant(12, 3), 4},
		{"clique(9)", graph.Clique(9), 4},
		{"hypercube(3)", graph.Hypercube(3), 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p := runDistPacking(t, tc.g, tc.k)
			s := p.Validate(tc.g, 0)
			if s.GoodTrees != tc.k {
				for j, tr := range p.Trees {
					fmt.Printf("tree %d: spanning=%v depth=%d\n", j, tr.IsSpanning(tc.g), tr.Depth())
				}
				t.Fatalf("%d/%d good spanning trees", s.GoodTrees, tc.k)
			}
		})
	}
}

func TestDistributedPackingLoadSpread(t *testing.T) {
	// The exponential weights must spread load: on a 6-edge-connected
	// circulant, 4 trees should overlap on few edges — far from the
	// degenerate load=k that unweighted repetition gives.
	g := graph.Circulant(14, 3)
	p := runDistPacking(t, g, 4)
	if load := p.Load(); load > 3 {
		t.Fatalf("distributed packing load = %d, want <= 3", load)
	}
}

func TestDistributedMatchesCentralizedQuality(t *testing.T) {
	g := graph.Circulant(12, 3)
	dist := runDistPacking(t, g, 3)
	cent := GreedyLowDepth(g, graph.NodeID(11), 3, 8, 1)
	ds := dist.Validate(g, 0)
	cs := cent.Validate(g, 0)
	if ds.GoodTrees != cs.GoodTrees {
		t.Fatalf("distributed %d good trees vs centralized %d", ds.GoodTrees, cs.GoodTrees)
	}
	// Loads should be in the same ballpark (within 2x).
	if ds.Load > 2*cs.Load+1 {
		t.Fatalf("distributed load %d much worse than centralized %d", ds.Load, cs.Load)
	}
}

// TestDistributedPackingIntoCompilerPipeline: the distributed packing's
// output plugs directly into the byzantine compiler's preprocessing shape.
func TestDistributedPackingIntoCompilerPipeline(t *testing.T) {
	g := graph.Circulant(12, 3)
	p := runDistPacking(t, g, 6)
	if !p.IsWeak(g, 2*g.N(), 6) {
		t.Fatalf("distributed packing does not satisfy the weak-packing predicate: %v", p.Validate(g, 0))
	}
}
