package treepack

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mobilecongest/internal/graph"
)

// TestGreedyPackingInvariantsQuick: for random circulant parameters, every
// tree the greedy packer emits is a spanning tree rooted at the requested
// root with depth within the (relaxed) bound, and the load never exceeds k.
func TestGreedyPackingInvariantsQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(8)
		c := 2 + rng.Intn(2)
		if n <= 2*c {
			return true
		}
		g := graph.Circulant(n, c)
		k := 2 + rng.Intn(4)
		depthBound := 4 + rng.Intn(6)
		root := graph.NodeID(n - 1)
		p := GreedyLowDepth(g, root, k, depthBound, 1)
		for _, tr := range p.Trees {
			if tr.Root != root || !tr.IsSpanning(g) {
				return false
			}
			d := tr.Depth()
			if d < 0 || d > depthBound {
				return false
			}
		}
		return p.Load() <= maxIntP(1, p.K())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestCliqueStarsInvariantQuick: star packings are exact for every n.
func TestCliqueStarsInvariantQuick(t *testing.T) {
	f := func(raw uint8) bool {
		n := 3 + int(raw)%14
		p := CliqueStars(n)
		s := p.Validate(graph.Clique(n), 2)
		return s.GoodTrees == n && s.Load == 2 && s.MaxDepth <= 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestValidateRejectsForeignRoot: trees rooted elsewhere are not "good".
func TestValidateRejectsForeignRoot(t *testing.T) {
	g := graph.Path(3)
	p := &Packing{Root: 0}
	tr := NewTree(3, 2) // rooted at 2, packing claims root 0
	tr.Parent[1] = 2
	tr.Parent[0] = 1
	p.Trees = append(p.Trees, tr)
	if s := p.Validate(g, 5); s.GoodTrees != 0 {
		t.Fatalf("foreign-rooted tree counted as good")
	}
}

func maxIntP(a, b int) int {
	if a > b {
		return a
	}
	return b
}
