package treepack

import (
	"testing"

	"mobilecongest/internal/adversary"
	"mobilecongest/internal/congest"
	"mobilecongest/internal/graph"
)

func TestCliqueStarsShape(t *testing.T) {
	n := 8
	g := graph.Clique(n)
	p := CliqueStars(n)
	if p.K() != n {
		t.Fatalf("k = %d, want %d", p.K(), n)
	}
	s := p.Validate(g, 2)
	if s.GoodTrees != n {
		t.Fatalf("good trees = %d, want %d", s.GoodTrees, n)
	}
	if s.Load != 2 {
		t.Fatalf("load = %d, want 2", s.Load)
	}
	if !p.IsWeak(g, 2, 2) {
		t.Fatal("clique stars fail the weak-packing predicate")
	}
}

func TestTreeDepthAndSpanning(t *testing.T) {
	g := graph.Path(4)
	tr := NewTree(4, 0)
	tr.Parent[1] = 0
	tr.Parent[2] = 1
	tr.Parent[3] = 2
	if !tr.IsSpanning(g) {
		t.Fatal("path tree should span")
	}
	if d := tr.Depth(); d != 3 {
		t.Fatalf("depth = %d, want 3", d)
	}
	// Break it: parent pointer over a non-edge.
	tr.Parent[3] = 0
	if tr.IsSpanning(g) {
		t.Fatal("non-edge parent accepted as spanning")
	}
	// Cycle detection.
	tr2 := NewTree(3, 0)
	tr2.Parent[1] = 2
	tr2.Parent[2] = 1
	if tr2.Depth() != -1 {
		t.Fatal("cycle not detected")
	}
}

func TestChildrenConsistent(t *testing.T) {
	tr := NewTree(5, 0)
	tr.Parent[1] = 0
	tr.Parent[2] = 0
	tr.Parent[3] = 1
	tr.Parent[4] = 1
	ch := tr.Children()
	if len(ch[0]) != 2 || len(ch[1]) != 2 || len(ch[3]) != 0 {
		t.Fatalf("children lists wrong: %v", ch)
	}
}

func TestGreedyLowDepthCirculant(t *testing.T) {
	// Circulant(16,3) is 6-edge-connected; pack 3 trees of small depth and
	// check the load bound of Theorem C.2 empirically (load = O(log n) per
	// the multiplicative-weights analysis; assert a generous envelope).
	g := graph.Circulant(16, 3)
	p := GreedyLowDepth(g, graph.NodeID(15), 3, 8, 1)
	if p.K() != 3 {
		t.Fatalf("packed %d trees, want 3", p.K())
	}
	s := p.Validate(g, 16)
	if s.GoodTrees != 3 {
		t.Fatalf("good trees = %d, want 3", s.GoodTrees)
	}
	if s.Load > 3 {
		t.Fatalf("load = %d, want <= 3 on a 6-connected graph", s.Load)
	}
}

func TestGreedyLowDepthHypercube(t *testing.T) {
	g := graph.Hypercube(4) // 16 nodes, 4-edge-connected, diameter 4
	p := GreedyLowDepth(g, 15, 4, 8, 1)
	s := p.Validate(g, 16)
	if s.GoodTrees < 3 {
		t.Fatalf("good trees = %d, want >= 3", s.GoodTrees)
	}
	if s.Load > 4 {
		t.Fatalf("load = %d too high", s.Load)
	}
}

func TestGreedyInfeasibleDepth(t *testing.T) {
	// Depth 1 spanning tree of a path is impossible from any root on n>=3.
	g := graph.Path(5)
	p := GreedyLowDepth(g, 0, 2, 1, 1)
	if p.K() != 0 {
		t.Fatalf("packed %d trees with infeasible depth bound", p.K())
	}
}

func TestExpanderPackingFaultFree(t *testing.T) {
	g := graph.RandomRegularForTest(t, 30, 16, 7)
	k := 3
	z := 10
	res, err := congest.Run(congest.Config{Graph: g, Seed: 3}, ExpanderPacking(k, z))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Rounds != ExpanderRounds(z, 1) {
		t.Fatalf("rounds = %d, want %d", res.Stats.Rounds, ExpanderRounds(z, 1))
	}
	p := AssemblePacking(g.N(), k, res.Outputs)
	s := p.Validate(g, z)
	if s.GoodTrees < 2 {
		t.Fatalf("only %d/%d trees are good spanning trees", s.GoodTrees, k)
	}
	if s.Load > 2 {
		t.Fatalf("load = %d, want <= 2 (each edge has one colour)", s.Load)
	}
}

func TestExpanderPackingUnderByzantine(t *testing.T) {
	g := graph.RandomRegularForTest(t, 40, 20, 11)
	k := 4
	z := 12
	pad := 7
	adv := adversary.NewMobileByzantine(g, 1, 5, adversary.SelectRandom, adversary.CorruptFlip)
	res, err := congest.Run(congest.Config{Graph: g, Seed: 4, Adversary: adv}, ExpanderPackingPadded(k, z, pad))
	if err != nil {
		t.Fatal(err)
	}
	p := AssemblePacking(g.N(), k, res.Outputs)
	s := p.Validate(g, z)
	// With f=1 and padding, most colours stay clean: expect >= half good.
	if s.GoodTrees < k/2 {
		t.Fatalf("only %d/%d trees survived a 1-mobile adversary", s.GoodTrees, k)
	}
}

func TestFromParentMaps(t *testing.T) {
	maps := [][]graph.NodeID{{1, 1, 1}, {-1, -1, -1}}
	p := FromParentMaps(1, maps)
	if p.K() != 2 {
		t.Fatalf("k = %d", p.K())
	}
	if p.Trees[0].Parent[1] != 1 {
		t.Fatal("root parent not normalized")
	}
}

func TestPackingString(t *testing.T) {
	p := CliqueStars(4)
	if p.String() == "" {
		t.Fatal("empty string")
	}
}

// TestExpanderPackingBarbellNegativeControl: on a low-conductance barbell,
// the random-colour BFS packing must fail to produce good trees within the
// O(log n / phi) depth budget sized for expanders — the conductance
// dependency of Lemma 3.13 is real.
func TestExpanderPackingBarbellNegativeControl(t *testing.T) {
	g := graph.Barbell(10) // phi tiny: one bridge between two K10s
	k, z := 4, 6
	res, err := congest.Run(congest.Config{Graph: g, Seed: 9}, ExpanderPacking(k, z))
	if err != nil {
		t.Fatal(err)
	}
	p := AssemblePacking(g.N(), k, res.Outputs)
	s := p.Validate(g, z)
	// Each colour class holds the single bridge edge with probability 1/k,
	// and classes without it cannot span: expect at most 1-2 good trees.
	if s.GoodTrees > k/2 {
		t.Fatalf("barbell yielded %d/%d good trees; expander analysis should not transfer", s.GoodTrees, k)
	}
}
