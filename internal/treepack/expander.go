package treepack

import (
	"mobilecongest/internal/congest"
	"mobilecongest/internal/graph"
	"mobilecongest/internal/vote"
)

// Distributed expander tree packing (Lemma 3.10 and its padded-round
// byzantine-resilient variant, Section 4.3). Every edge picks a uniform
// colour in [k] (chosen by the higher-ID endpoint and announced to the
// other); each colour class G_i then runs a BFS toward the maximum ID for z
// rounds, orienting parent pointers toward the eventual root n-1. Colours
// whose edges the adversary never touched form spanning trees of depth
// O(log n / phi) w.h.p. (Lemma 3.13/3.14); the output is a weak packing.

// ExpanderResult is the per-node output: parent per colour (-1 = none).
type ExpanderResult struct {
	Parent []graph.NodeID
}

// ExpanderPacking returns the fault-free distributed packing protocol with
// k colours and z BFS rounds. Total rounds: 1 + z + 1.
func ExpanderPacking(k, z int) congest.Protocol {
	return expanderProtocol(k, z, 1)
}

// ExpanderPackingPadded is the byzantine-tolerant variant: every logical
// round is repeated pad times and receivers take per-neighbour majority —
// the padded-round scheme of Theorem 4.12's first phase. Total rounds:
// (1 + z + 1) * pad.
func ExpanderPackingPadded(k, z, pad int) congest.Protocol {
	return expanderProtocol(k, z, pad)
}

func expanderProtocol(k, z, pad int) congest.Protocol {
	return func(rt congest.Runtime) {
		pr := congest.Ports(rt)
		deg := pr.Degree()
		// Logical round 1: higher-ID endpoint picks each edge's colour.
		myColor := make([]uint64, deg) // proposals for edges I own, by port
		mine := make([]bool, deg)
		for p := 0; p < deg; p++ {
			if v := pr.Neighbor(p); rt.ID() > v {
				myColor[p] = uint64(rt.Rand().Intn(k))
				mine[p] = true
			}
		}
		buildOut := func(out []congest.Msg) {
			for p := 0; p < deg; p++ {
				if mine[p] {
					out[p] = congest.U64Msg(myColor[p])
				} else {
					out[p] = congest.U64Msg(0) // keep traffic volume symmetric
				}
			}
		}
		colorIn := paddedExchange(pr, buildOut, pad)
		color := make([]int, deg) // final colour per incident edge, by port
		for p := 0; p < deg; p++ {
			switch {
			case mine[p]:
				color[p] = int(myColor[p] % uint64(k))
			case colorIn[p] != nil:
				color[p] = int(congest.U64(colorIn[p]) % uint64(k))
			default:
				color[p] = -1 // no colour heard; edge unusable
			}
		}
		// BFS-to-max-ID per colour. I track best ID seen and parent per
		// colour; each logical round sends my best per colour to the
		// neighbours sharing that colour. Wire format packs one u64 per
		// incident edge: the best ID for that edge's colour.
		best := make([]uint64, k)
		parent := make([]graph.NodeID, k)
		for i := 0; i < k; i++ {
			best[i] = uint64(rt.ID()) + 1 // +1 so 0 means "nothing"
			parent[i] = -1
		}
		for round := 0; round < z; round++ {
			buildBFS := func(out []congest.Msg) {
				for p := 0; p < deg; p++ {
					c := color[p]
					if c < 0 {
						out[p] = congest.U64Msg(0)
						continue
					}
					out[p] = congest.U64Msg(best[c])
				}
			}
			in := paddedExchange(pr, buildBFS, pad)
			for p := 0; p < deg; p++ {
				c := color[p]
				if c < 0 || in[p] == nil {
					continue
				}
				val := congest.U64(in[p])
				if val > best[c] && val <= uint64(rt.N()) {
					best[c] = val
					parent[c] = pr.Neighbor(p)
				}
			}
		}
		// Final logical round: notify parents so orientations are mutual
		// (per the paper); the parent array itself is the result we keep.
		buildNotify := func(out []congest.Msg) {
			for p := 0; p < deg; p++ {
				var mask uint64
				for c := 0; c < k && c < 64; c++ {
					if parent[c] == pr.Neighbor(p) {
						mask |= 1 << uint(c)
					}
				}
				out[p] = congest.U64Msg(mask)
			}
		}
		paddedExchange(pr, buildNotify, pad)
		rt.SetOutput(ExpanderResult{Parent: parent})
	}
}

// paddedExchange builds and sends the same port outbox pad times and returns
// the per-port majority message (nil when no majority).
func paddedExchange(pr congest.PortRuntime, build func(out []congest.Msg), pad int) []congest.Msg {
	if pad <= 1 {
		out := pr.OutBuf()
		build(out)
		return pr.ExchangePorts(out)
	}
	counts := make([]map[string]int, pr.Degree())
	for r := 0; r < pad; r++ {
		out := pr.OutBuf()
		build(out)
		in := pr.ExchangePorts(out)
		for p, m := range in {
			if m == nil {
				continue
			}
			if counts[p] == nil {
				counts[p] = make(map[string]int)
			}
			counts[p][string(m)]++
		}
	}
	res := make([]congest.Msg, pr.Degree())
	for p, cs := range counts {
		bestMsg, bestCnt := vote.Winner(cs)
		if bestCnt*2 > pad {
			res[p] = congest.Msg(bestMsg)
		}
	}
	return res
}

// AssemblePacking collects the per-node ExpanderResult outputs of a run into
// a weak packing rooted at n-1.
func AssemblePacking(n, k int, outputs []any) *Packing {
	maps := make([][]graph.NodeID, k)
	for j := 0; j < k; j++ {
		maps[j] = make([]graph.NodeID, n)
		for v := 0; v < n; v++ {
			maps[j][v] = -1
		}
	}
	for v, o := range outputs {
		res, ok := o.(ExpanderResult)
		if !ok {
			continue
		}
		for j := 0; j < k && j < len(res.Parent); j++ {
			maps[j][v] = res.Parent[j]
		}
	}
	return FromParentMaps(graph.NodeID(n-1), maps)
}

// ExpanderRounds returns the round count of the (padded) packing protocol.
func ExpanderRounds(z, pad int) int { return (1 + z + 1) * pad }
