package treepack

import (
	"mobilecongest/internal/congest"
	"mobilecongest/internal/graph"
)

// Distributed expander tree packing (Lemma 3.10 and its padded-round
// byzantine-resilient variant, Section 4.3). Every edge picks a uniform
// colour in [k] (chosen by the higher-ID endpoint and announced to the
// other); each colour class G_i then runs a BFS toward the maximum ID for z
// rounds, orienting parent pointers toward the eventual root n-1. Colours
// whose edges the adversary never touched form spanning trees of depth
// O(log n / phi) w.h.p. (Lemma 3.13/3.14); the output is a weak packing.

// ExpanderResult is the per-node output: parent per colour (-1 = none).
type ExpanderResult struct {
	Parent []graph.NodeID
}

// ExpanderPacking returns the fault-free distributed packing protocol with
// k colours and z BFS rounds. Total rounds: 1 + z + 1.
func ExpanderPacking(k, z int) congest.Protocol {
	return expanderProtocol(k, z, 1)
}

// ExpanderPackingPadded is the byzantine-tolerant variant: every logical
// round is repeated pad times and receivers take per-neighbour majority —
// the padded-round scheme of Theorem 4.12's first phase. Total rounds:
// (1 + z + 1) * pad.
func ExpanderPackingPadded(k, z, pad int) congest.Protocol {
	return expanderProtocol(k, z, pad)
}

func expanderProtocol(k, z, pad int) congest.Protocol {
	return func(rt congest.Runtime) {
		nbs := rt.Neighbors()
		// Logical round 1: higher-ID endpoint picks each edge's colour.
		myColor := make(map[graph.NodeID]uint64, len(nbs)) // proposals for edges I own
		for _, v := range nbs {
			if rt.ID() > v {
				myColor[v] = uint64(rt.Rand().Intn(k))
			}
		}
		buildOut := func() map[graph.NodeID]congest.Msg {
			out := make(map[graph.NodeID]congest.Msg, len(nbs))
			for _, v := range nbs {
				if c, mine := myColor[v]; mine {
					out[v] = congest.U64Msg(c)
				} else {
					out[v] = congest.U64Msg(0) // keep traffic volume symmetric
				}
			}
			return out
		}
		colorIn := paddedExchange(rt, buildOut, pad)
		color := make(map[graph.NodeID]int, len(nbs)) // final colour per incident edge
		for _, v := range nbs {
			if c, mine := myColor[v]; mine {
				color[v] = int(c % uint64(k))
			} else if m, ok := colorIn[v]; ok {
				color[v] = int(congest.U64(m) % uint64(k))
			} else {
				color[v] = -1 // no colour heard; edge unusable
			}
		}
		// BFS-to-max-ID per colour. I track best ID seen and parent per
		// colour; each logical round sends my best per colour to the
		// neighbours sharing that colour. Wire format packs one u64 per
		// incident edge: the best ID for that edge's colour.
		best := make([]uint64, k)
		parent := make([]graph.NodeID, k)
		for i := 0; i < k; i++ {
			best[i] = uint64(rt.ID()) + 1 // +1 so 0 means "nothing"
			parent[i] = -1
		}
		for round := 0; round < z; round++ {
			buildBFS := func() map[graph.NodeID]congest.Msg {
				out := make(map[graph.NodeID]congest.Msg, len(nbs))
				for _, v := range nbs {
					c := color[v]
					if c < 0 {
						out[v] = congest.U64Msg(0)
						continue
					}
					out[v] = congest.U64Msg(best[c])
				}
				return out
			}
			in := paddedExchange(rt, buildBFS, pad)
			for _, v := range nbs {
				c := color[v]
				if c < 0 {
					continue
				}
				m, ok := in[v]
				if !ok {
					continue
				}
				val := congest.U64(m)
				if val > best[c] && val <= uint64(rt.N()) {
					best[c] = val
					parent[c] = v
				}
			}
		}
		// Final logical round: notify parents so orientations are mutual
		// (per the paper); the parent array itself is the result we keep.
		buildNotify := func() map[graph.NodeID]congest.Msg {
			out := make(map[graph.NodeID]congest.Msg, len(nbs))
			for _, v := range nbs {
				var mask uint64
				for c := 0; c < k && c < 64; c++ {
					if parent[c] == v {
						mask |= 1 << uint(c)
					}
				}
				out[v] = congest.U64Msg(mask)
			}
			return out
		}
		paddedExchange(rt, buildNotify, pad)
		rt.SetOutput(ExpanderResult{Parent: parent})
	}
}

// paddedExchange sends the same outbox pad times and returns the
// per-neighbour majority message (nil when no majority).
func paddedExchange(rt congest.Runtime, build func() map[graph.NodeID]congest.Msg, pad int) map[graph.NodeID]congest.Msg {
	if pad <= 1 {
		return rt.Exchange(build())
	}
	counts := make(map[graph.NodeID]map[string]int)
	for r := 0; r < pad; r++ {
		in := rt.Exchange(build())
		for from, m := range in {
			if counts[from] == nil {
				counts[from] = make(map[string]int)
			}
			counts[from][string(m)]++
		}
	}
	out := make(map[graph.NodeID]congest.Msg)
	for from, cs := range counts {
		bestCnt := 0
		var bestMsg string
		for m, c := range cs {
			if c > bestCnt {
				bestCnt = c
				bestMsg = m
			}
		}
		if bestCnt*2 > pad {
			out[from] = congest.Msg(bestMsg)
		}
	}
	return out
}

// AssemblePacking collects the per-node ExpanderResult outputs of a run into
// a weak packing rooted at n-1.
func AssemblePacking(n, k int, outputs []any) *Packing {
	maps := make([][]graph.NodeID, k)
	for j := 0; j < k; j++ {
		maps[j] = make([]graph.NodeID, n)
		for v := 0; v < n; v++ {
			maps[j][v] = -1
		}
	}
	for v, o := range outputs {
		res, ok := o.(ExpanderResult)
		if !ok {
			continue
		}
		for j := 0; j < k && j < len(res.Parent); j++ {
			maps[j][v] = res.Parent[j]
		}
	}
	return FromParentMaps(graph.NodeID(n-1), maps)
}

// ExpanderRounds returns the round count of the (padded) packing protocol.
func ExpanderRounds(z, pad int) int { return (1 + z + 1) * pad }
