package treepack

import (
	"mobilecongest/internal/congest"
	"mobilecongest/internal/graph"
)

// Distributed low-depth tree packing (Appendix C). The paper iterates a
// distributed min-cost shallow spanning tree subroutine under exponentially
// load-weighted costs. This file implements that loop as a CONGEST
// protocol: each iteration grows one spanning tree by distributed Prim —
// the in-tree fragment floods to agree on its cheapest outgoing edge
// (cost = 3^load, so loaded edges are avoided) and attaches the outside
// endpoint, whose parent is the inside endpoint, so parent pointers are
// correct by construction and no GHS-style re-rooting is needed. Each node
// tracks the load of its incident edges locally (it has seen every tree it
// joined), the distributed analogue of the multiplicative-weights loop of
// Theorem C.2. Round cost O(k * n * flood) — inside the paper's
// Õ(k·D_TP²) budget for the moderate sizes the simulator targets.

// DistPackingResult is the per-node output: parent per packed tree (-1 at
// the root).
type DistPackingResult struct {
	Parent []graph.NodeID
}

// DistributedGreedyPacking packs k spanning trees rooted at node n-1, one
// per outer iteration, each grown by weighted distributed Prim with
// per-node local load counters. flood bounds the intra-fragment flood
// length per join step (>= n always suffices). Fault-free protocol (the
// paper computes general-graph packings in a trusted preprocessing phase).
func DistributedGreedyPacking(k, flood int) congest.Protocol {
	return func(rt congest.Runtime) {
		pr := congest.Ports(rt)
		load := make([]int, pr.Degree()) // per-port local edge load
		parents := make([]graph.NodeID, 0, k)
		for iter := 0; iter < k; iter++ {
			parent := buildTreePrim(pr, load, flood)
			parents = append(parents, parent)
			// Count the tree edge's load on both endpoints.
			out := pr.OutBuf()
			if parent >= 0 {
				pp := pr.Port(parent)
				load[pp]++
				out[pp] = congest.U64Msg(1)
			}
			in := pr.ExchangePorts(out)
			for p, m := range in {
				if m != nil && congest.U64(m) == 1 {
					load[p]++
				}
			}
		}
		rt.SetOutput(DistPackingResult{Parent: parents})
	}
}

// weightOf prices an edge by its current local load (3^load keeps reuse
// strictly worse than detours, mirroring the centralized packer).
func weightOf(load int) uint64 {
	w := uint64(1)
	for i := 0; i < load && i < 20; i++ {
		w *= 3
	}
	return w
}

// noCand is the "no candidate" sentinel weight.
const noCand = ^uint64(0)

// buildTreePrim grows one spanning tree and returns this node's parent
// (-1 for the root, node n-1). Each of the n-1 join steps: (1) exchange
// in-tree flags, (2) flood the fragment's cheapest outgoing edge, (3) the
// winning inside endpoint invites the outside endpoint, which joins.
func buildTreePrim(pr congest.PortRuntime, load []int, flood int) graph.NodeID {
	me := pr.ID()
	deg := pr.Degree()
	root := graph.NodeID(pr.N() - 1)
	inTree := me == root
	parent := graph.NodeID(-1)
	nbIn := make([]bool, deg)

	for step := 0; step < pr.N()-1; step++ {
		// Round 1: share in-tree status.
		flag := uint64(0)
		if inTree {
			flag = 1
		}
		out := pr.OutBuf()
		word := congest.U64Msg(flag)
		for p := range out {
			out[p] = word
		}
		in := pr.ExchangePorts(out)
		for p := range nbIn {
			nbIn[p] = in[p] != nil && congest.U64(in[p]) == 1
		}
		// Local candidate: my cheapest edge to an outside neighbour.
		bestW, bestA, bestB := noCand, graph.NodeID(-1), graph.NodeID(-1)
		if inTree {
			for p := 0; p < deg; p++ {
				if nbIn[p] {
					continue
				}
				w := weightOf(load[p])
				if better(w, me, pr.Neighbor(p), bestW, bestA, bestB) {
					bestW, bestA, bestB = w, me, pr.Neighbor(p)
				}
			}
		}
		// Flood the fragment minimum over inside-inside edges (the inside
		// subgraph is connected: it contains the tree built so far).
		for fr := 0; fr < flood; fr++ {
			out := pr.OutBuf()
			if inTree {
				enc := encodeCand(bestW, bestA, bestB)
				for p := 0; p < deg; p++ {
					if nbIn[p] {
						out[p] = enc
					}
				}
			}
			in := pr.ExchangePorts(out)
			if !inTree {
				continue
			}
			for p := 0; p < deg; p++ {
				if !nbIn[p] || in[p] == nil {
					continue
				}
				w, a, b := decodeCand(in[p])
				if better(w, a, b, bestW, bestA, bestB) {
					bestW, bestA, bestB = w, a, b
				}
			}
		}
		// Round 3: the winning inside endpoint invites; the invited node
		// joins with the inviter as parent.
		out = pr.OutBuf()
		if inTree && bestA == me && bestB >= 0 {
			if bp := pr.Port(bestB); bp >= 0 {
				out[bp] = congest.U64Msg(0x4A4F494E) // "JOIN"
			} else {
				// A corrupted flood candidate can name a non-neighbor; abort
				// with the canonical error, like the map outbox used to (and
				// never fall through desynced if a wrapper tolerates it).
				//lint:ignore portnative deliberate abort path: the map Exchange is the canonical way to trigger the engine's non-neighbor error
				pr.Exchange(map[graph.NodeID]congest.Msg{bestB: congest.U64Msg(0x4A4F494E)})
				panic("treepack: invited join target is not adjacent")
			}
		}
		in = pr.ExchangePorts(out)
		if !inTree {
			for p, m := range in {
				if m != nil && congest.U64(m) == 0x4A4F494E {
					inTree = true
					parent = pr.Neighbor(p)
					break
				}
			}
		}
	}
	return parent
}

// better orders candidates by (weight, canonical edge) with -1 meaning "no
// candidate".
func better(w uint64, a, b graph.NodeID, curW uint64, curA, curB graph.NodeID) bool {
	if a < 0 || b < 0 {
		return false
	}
	if curA < 0 || curB < 0 {
		return true
	}
	if w != curW {
		return w < curW
	}
	xa, xb := canonPair(a, b)
	ya, yb := canonPair(curA, curB)
	if xa != ya {
		return xa < ya
	}
	return xb < yb
}

func canonPair(a, b graph.NodeID) (graph.NodeID, graph.NodeID) {
	if a > b {
		return b, a
	}
	return a, b
}

func encodeCand(w uint64, a, b graph.NodeID) congest.Msg {
	m := congest.PutU64(nil, w)
	m = congest.PutU32(m, uint32(a))
	m = congest.PutU32(m, uint32(b))
	return m
}

func decodeCand(m congest.Msg) (uint64, graph.NodeID, graph.NodeID) {
	if len(m) < 16 {
		return noCand, -1, -1
	}
	return congest.U64(m), graph.NodeID(int32(congest.U32(m[8:]))), graph.NodeID(int32(congest.U32(m[12:])))
}

// DistPackingRounds returns the protocol's fixed round count for an n-node
// graph.
func DistPackingRounds(n, k, flood int) int {
	perStep := 1 + flood + 1
	return k * ((n-1)*perStep + 1)
}

// AssembleDistPacking collects DistPackingResult outputs into a Packing
// rooted at n-1.
func AssembleDistPacking(n, k int, outputs []any) *Packing {
	maps := make([][]graph.NodeID, k)
	for j := 0; j < k; j++ {
		maps[j] = make([]graph.NodeID, n)
		for v := range maps[j] {
			maps[j][v] = -1
		}
	}
	for v, o := range outputs {
		res, ok := o.(DistPackingResult)
		if !ok {
			continue
		}
		for j := 0; j < k && j < len(res.Parent); j++ {
			maps[j][v] = res.Parent[j]
		}
	}
	return FromParentMaps(graph.NodeID(n-1), maps)
}
