// Package treepack implements the low-diameter tree packings of Tool 1
// (Definitions 6 and 7): the clique star packing behind Theorem 1.6, the
// randomized expander packing of Lemma 3.10 (with its byzantine-resilient
// distributed variant from Section 4.3), and the greedy multiplicative-
// weights packing of Appendix C for general (k, D_TP)-connected graphs.
package treepack

import (
	"fmt"

	"mobilecongest/internal/graph"
)

// Tree is a rooted spanning (or partial, for weak packings) tree given by
// parent pointers. Parent[Root] = Root; Parent[v] = -1 marks v outside the
// tree.
type Tree struct {
	Root   graph.NodeID
	Parent []graph.NodeID
}

// NewTree allocates an n-node tree with only the root placed.
func NewTree(n int, root graph.NodeID) *Tree {
	t := &Tree{Root: root, Parent: make([]graph.NodeID, n)}
	for i := range t.Parent {
		t.Parent[i] = -1
	}
	t.Parent[root] = root
	return t
}

// Depth returns the maximum root distance over nodes in the tree, or -1 if
// the parent pointers are broken (cycle or dangling parent).
func (t *Tree) Depth() int {
	n := len(t.Parent)
	depth := 0
	for v := range t.Parent {
		if t.Parent[v] < 0 {
			continue
		}
		d := 0
		u := graph.NodeID(v)
		for u != t.Root {
			u = t.Parent[u]
			d++
			if d > n || u < 0 || int(u) >= n {
				return -1
			}
		}
		if d > depth {
			depth = d
		}
	}
	return depth
}

// IsSpanning reports whether every node reaches the root through parent
// pointers that are all edges of g.
func (t *Tree) IsSpanning(g *graph.Graph) bool {
	if g.N() != len(t.Parent) {
		return false
	}
	for v := range t.Parent {
		u := graph.NodeID(v)
		if t.Parent[u] < 0 {
			return false
		}
		steps := 0
		for u != t.Root {
			p := t.Parent[u]
			if p < 0 || int(p) >= g.N() || !g.HasEdge(u, p) {
				return false
			}
			u = p
			steps++
			if steps > g.N() {
				return false
			}
		}
	}
	return true
}

// Children returns, for each node, its child list — the structure
// convergecast protocols need.
func (t *Tree) Children() [][]graph.NodeID {
	ch := make([][]graph.NodeID, len(t.Parent))
	for v := range t.Parent {
		p := t.Parent[v]
		if p >= 0 && graph.NodeID(v) != t.Root {
			ch[p] = append(ch[p], graph.NodeID(v))
		}
	}
	return ch
}

// Edges returns the set of tree edges.
func (t *Tree) Edges() []graph.Edge {
	var out []graph.Edge
	for v := range t.Parent {
		p := t.Parent[v]
		if p >= 0 && graph.NodeID(v) != t.Root {
			out = append(out, graph.NewEdge(graph.NodeID(v), p))
		}
	}
	return out
}

// Packing is a (k, D_TP, eta) tree packing: k subgraphs, nominally spanning
// trees of bounded diameter rooted at a common root, where each graph edge
// appears in at most eta trees. A *weak* packing (Definition 7) allows up to
// a 0.1 fraction of the subgraphs to be arbitrary.
type Packing struct {
	Root  graph.NodeID
	Trees []*Tree
}

// K returns the number of trees.
func (p *Packing) K() int { return len(p.Trees) }

// Load returns the maximum number of trees any single graph edge appears in.
func (p *Packing) Load() int {
	load := make(map[graph.Edge]int)
	for _, t := range p.Trees {
		for _, e := range t.Edges() {
			load[e]++
		}
	}
	max := 0
	for _, c := range load {
		if c > max {
			max = c
		}
	}
	return max
}

// Stats summarizes packing quality against Definition 7.
type Stats struct {
	K         int
	GoodTrees int // spanning, depth <= MaxDepth, correctly rooted
	MaxDepth  int // deepest good tree
	Load      int
}

// Validate computes packing statistics: a tree is good if it spans g, is
// rooted at p.Root, and has depth at most maxDepth (0 = unbounded).
func (p *Packing) Validate(g *graph.Graph, maxDepth int) Stats {
	s := Stats{K: p.K(), Load: p.Load()}
	for _, t := range p.Trees {
		if t.Root != p.Root || !t.IsSpanning(g) {
			continue
		}
		d := t.Depth()
		if d < 0 || (maxDepth > 0 && d > maxDepth) {
			continue
		}
		s.GoodTrees++
		if d > s.MaxDepth {
			s.MaxDepth = d
		}
	}
	return s
}

// IsWeak reports whether p satisfies Definition 7 for the given depth and
// load bounds: at least 90% of trees good and load at most maxLoad.
func (p *Packing) IsWeak(g *graph.Graph, maxDepth, maxLoad int) bool {
	s := p.Validate(g, maxDepth)
	return s.GoodTrees*10 >= 9*s.K && s.Load <= maxLoad
}

// CliqueStars returns the star packing of the n-clique used by Theorem 1.6:
// tree i is the star centered at node i, re-rooted at the common root n-1.
// It has k = n, depth 2, and load 2.
func CliqueStars(n int) *Packing {
	root := graph.NodeID(n - 1)
	p := &Packing{Root: root}
	for c := 0; c < n; c++ {
		t := NewTree(n, root)
		center := graph.NodeID(c)
		if center != root {
			t.Parent[center] = root
		}
		for v := 0; v < n; v++ {
			u := graph.NodeID(v)
			if u == root || u == center {
				continue
			}
			t.Parent[u] = center
		}
		p.Trees = append(p.Trees, t)
	}
	return p
}

// FromParentMaps assembles a packing from per-tree parent arrays (the output
// shape of the distributed expander protocol): maps[j][v] is v's parent in
// tree j (-1 if none).
func FromParentMaps(root graph.NodeID, maps [][]graph.NodeID) *Packing {
	p := &Packing{Root: root}
	for _, m := range maps {
		t := &Tree{Root: root, Parent: make([]graph.NodeID, len(m))}
		copy(t.Parent, m)
		t.Parent[root] = root
		p.Trees = append(p.Trees, t)
	}
	return p
}

// String renders a compact description.
func (p *Packing) String() string {
	return fmt.Sprintf("packing{k=%d root=%d load=%d}", p.K(), p.Root, p.Load())
}
