package vote

import "testing"

// TestWinnerTieDeterminism pins the regression behind the rewind initial
// phase: an argmax that adopts the first maximum map iteration happens to
// meet returns different winners on tied counts run to run. Go randomizes
// map order per range statement, so folding a two-way tie repeatedly makes
// a nondeterministic implementation fail with overwhelming probability.
func TestWinnerTieDeterminism(t *testing.T) {
	counts := map[uint64]int{7: 3, 42: 3, 5: 1}
	for i := 0; i < 200; i++ {
		k, c := Winner(counts)
		if k != 7 || c != 3 {
			t.Fatalf("iteration %d: Winner = (%d, %d), want the smallest tied key (7, 3)", i, k, c)
		}
	}
}

func TestWinnerBasics(t *testing.T) {
	if k, c := Winner(map[string]int{}); k != "" || c != 0 {
		t.Fatalf("empty map: got (%q, %d), want zero values", k, c)
	}
	if k, c := Winner(map[string]int{"b": 2, "a": 1}); k != "b" || c != 2 {
		t.Fatalf("unique max: got (%q, %d), want (b, 2)", k, c)
	}
}

func TestWinnerFuncTieDeterminism(t *testing.T) {
	less := func(a, b [2]uint64) bool {
		return a[0] < b[0] || (a[0] == b[0] && a[1] < b[1])
	}
	counts := map[[2]uint64]int{{9, 1}: 2, {3, 8}: 2, {3, 2}: 2}
	for i := 0; i < 200; i++ {
		k, c := WinnerFunc(counts, less)
		if k != ([2]uint64{3, 2}) || c != 2 {
			t.Fatalf("iteration %d: WinnerFunc = (%v, %d), want the least tied key ([3 2], 2)", i, k, c)
		}
	}
}
