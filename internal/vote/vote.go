// Package vote provides deterministic folds over vote-count maps. Majority
// voting over repeated deliveries is the simulator's standard decoder at
// every resilience layer (initial-state agreement, sketch recovery, padded
// exchange), and every one of those folds ranges over a Go map — whose
// iteration order is randomized per statement. A fold that adopts the first
// maximum it meets therefore returns different winners on tied counts run
// to run and across engines. The helpers here break count ties toward the
// smallest key, making the winner a pure function of the map's contents.
package vote

import "cmp"

// Winner returns the key with the highest count and that count, breaking
// count ties toward the smallest key. The result depends only on the map's
// contents, never on iteration order. An empty map yields the zero key and
// a zero count.
func Winner[K cmp.Ordered](counts map[K]int) (K, int) {
	var best K
	bestCnt := 0
	for k, c := range counts {
		if c > bestCnt || (c == bestCnt && k < best) {
			best, bestCnt = k, c
		}
	}
	return best, bestCnt
}

// WinnerFunc is Winner for key types without a natural order; less must be
// a strict total order over the keys.
func WinnerFunc[K comparable](counts map[K]int, less func(a, b K) bool) (K, int) {
	var best K
	bestCnt := 0
	for k, c := range counts {
		if c > bestCnt || (c == bestCnt && less(k, best)) {
			//lint:ignore maprange less is a strict total order over the unique keys, so this adoption is a deterministic argmax the analyzer cannot see through the predicate call
			best, bestCnt = k, c
		}
	}
	return best, bestCnt
}
