// Package hashfam implements families of bounded-independence hash functions
// (Definition 4 / Lemma 1.11 of the paper) via random polynomials of degree
// c-1 over GF(2^16), plus the pairwise-independent transcript fingerprints
// used by the rewind-if-error compiler (Section 4).
package hashfam

import (
	"math/rand"

	"mobilecongest/internal/gf"
	"mobilecongest/internal/prime"
)

// Hash is a function drawn from a c-wise independent family
// h: GF(2^16) -> GF(2^16). For distinct inputs x1..xc, the values h(xi) are
// independent and uniform when h is drawn uniformly from the family.
type Hash struct {
	f      *gf.Field
	coeffs []gf.Elem
}

// New draws a c-wise independent hash function using randomness from rng.
// The classical construction: a uniformly random polynomial of degree c-1
// over the field is c-wise independent.
func New(f *gf.Field, c int, rng *rand.Rand) *Hash {
	coeffs := make([]gf.Elem, c)
	for i := range coeffs {
		coeffs[i] = gf.Elem(rng.Intn(f.Order()))
	}
	return &Hash{f: f, coeffs: coeffs}
}

// FromSeed draws a c-wise independent hash deterministically from a seed;
// the compiled algorithms broadcast a short seed and have every node derive
// the same hash function locally.
func FromSeed(f *gf.Field, c int, seed int64) *Hash {
	return New(f, c, rand.New(rand.NewSource(seed)))
}

// Eval returns h(x).
func (h *Hash) Eval(x gf.Elem) gf.Elem { return h.f.EvalPoly(h.coeffs, x) }

// EvalBytes hashes an arbitrary byte string by absorbing it block-wise:
// state = h(state XOR block). This is the "wide input" adapter used when the
// congestion-sensitive compiler hashes padded messages; for c-wise
// independence on the compiled messages only the final Eval matters because
// message identifiers make inputs distinct in their first block.
func (h *Hash) EvalBytes(data []byte) gf.Elem {
	var state gf.Elem
	for i := 0; i < len(data); i += 2 {
		var block gf.Elem
		block = gf.Elem(data[i])
		if i+1 < len(data) {
			block |= gf.Elem(data[i+1]) << 8
		}
		state = h.Eval(state ^ block ^ gf.Elem(i+1))
	}
	return h.Eval(state)
}

// Fingerprint is a pairwise-independent-style hash of arbitrary-length
// transcripts into 61 bits, h(x) = poly-eval of the transcript words at a
// random point plus a random offset, mod 2^61-1. Two fixed distinct
// transcripts collide with probability at most L/2^61 over the draw — the
// guarantee the rewind-if-error phase needs when comparing sent/received
// transcripts (Section 4.1).
type Fingerprint struct {
	point  uint64
	offset uint64
}

// NewFingerprint draws a fingerprint function from a 64-bit seed. Seeds are
// what nodes exchange in the round-initialization phase (R_i(u,v)).
func NewFingerprint(seed uint64) Fingerprint {
	rng := rand.New(rand.NewSource(int64(seed)))
	return Fingerprint{
		point:  rng.Uint64()%(prime.P61-1) + 1,
		offset: rng.Uint64() % prime.P61,
	}
}

// Hash64 fingerprints a slice of 64-bit words.
func (fp Fingerprint) Hash64(words []uint64) uint64 {
	acc := fp.offset
	for _, w := range words {
		acc = prime.Add61(prime.Mul61(acc, fp.point), prime.Mod61(w))
	}
	return acc
}

// HashBytes fingerprints a byte string word-by-word.
func (fp Fingerprint) HashBytes(data []byte) uint64 {
	acc := fp.offset
	var w uint64
	n := 0
	for _, b := range data {
		w = w<<8 | uint64(b)
		n++
		if n == 7 { // keep each word below 2^61
			acc = prime.Add61(prime.Mul61(acc, fp.point), prime.Mod61(w))
			w, n = 0, 0
		}
	}
	acc = prime.Add61(prime.Mul61(acc, fp.point), prime.Mod61(w|uint64(n)<<56))
	return acc
}
