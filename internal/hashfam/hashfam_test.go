package hashfam

import (
	"math"
	"math/rand"
	"testing"

	"mobilecongest/internal/gf"
)

var testField = gf.NewField16()

// TestPairwiseIndependence checks that over many draws of h, the joint
// distribution of (h(x1), h(x2)) for fixed distinct x1, x2 looks uniform on a
// coarse bucketing.
func TestPairwiseIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const trials = 40000
	const buckets = 4
	counts := make([]int, buckets*buckets)
	x1, x2 := gf.Elem(17), gf.Elem(3921)
	for i := 0; i < trials; i++ {
		h := New(testField, 2, rng)
		b1 := int(h.Eval(x1)) * buckets / gf.Order16
		b2 := int(h.Eval(x2)) * buckets / gf.Order16
		counts[b1*buckets+b2]++
	}
	want := float64(trials) / float64(buckets*buckets)
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d count %d deviates from %f", i, c, want)
		}
	}
}

// TestKWiseDistinctness: a c-wise independent hash restricted to c distinct
// points should hit all-distinct values with roughly the birthday
// probability; mainly we check determinism and seed separation here.
func TestFromSeedDeterministic(t *testing.T) {
	h1 := FromSeed(testField, 4, 99)
	h2 := FromSeed(testField, 4, 99)
	h3 := FromSeed(testField, 4, 100)
	same, diff := true, false
	for x := 0; x < 1000; x++ {
		if h1.Eval(gf.Elem(x)) != h2.Eval(gf.Elem(x)) {
			same = false
		}
		if h1.Eval(gf.Elem(x)) != h3.Eval(gf.Elem(x)) {
			diff = true
		}
	}
	if !same {
		t.Error("same seed gave different hashes")
	}
	if !diff {
		t.Error("different seeds gave identical hashes")
	}
}

func TestEvalBytesDistinguishesInputs(t *testing.T) {
	h := FromSeed(testField, 8, 5)
	seen := make(map[gf.Elem][]byte)
	rng := rand.New(rand.NewSource(6))
	collisions := 0
	for i := 0; i < 3000; i++ {
		data := make([]byte, 1+rng.Intn(16))
		rng.Read(data)
		v := h.EvalBytes(data)
		if prev, ok := seen[v]; ok && string(prev) != string(data) {
			collisions++
		}
		seen[v] = data
	}
	// 3000 values into 2^16 buckets: expect ~65 collisions by birthday; a
	// broken hash maps everything to a handful of values.
	if collisions > 400 {
		t.Errorf("too many collisions: %d", collisions)
	}
}

func TestFingerprintCollisionResistance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	collisions := 0
	const trials = 5000
	for i := 0; i < trials; i++ {
		fp := NewFingerprint(rng.Uint64())
		a := []uint64{rng.Uint64(), rng.Uint64(), rng.Uint64()}
		b := []uint64{rng.Uint64(), rng.Uint64(), rng.Uint64()}
		if a[0] == b[0] && a[1] == b[1] && a[2] == b[2] {
			continue
		}
		if fp.Hash64(a) == fp.Hash64(b) {
			collisions++
		}
	}
	if collisions > 0 {
		t.Errorf("fingerprint collided %d/%d times on random distinct inputs", collisions, trials)
	}
}

func TestFingerprintPrefixSensitivity(t *testing.T) {
	fp := NewFingerprint(12345)
	a := []byte("hello world")
	b := []byte("hello worlds")
	if fp.HashBytes(a) == fp.HashBytes(b) {
		t.Error("fingerprint ignores suffix")
	}
	c := []byte{0, 0, 0}
	d := []byte{0, 0}
	if fp.HashBytes(c) == fp.HashBytes(d) {
		t.Error("fingerprint ignores trailing-zero length difference")
	}
}

func BenchmarkFingerprint(b *testing.B) {
	fp := NewFingerprint(1)
	data := make([]uint64, 64)
	for i := 0; i < b.N; i++ {
		_ = fp.Hash64(data)
	}
}
