package ecc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mobilecongest/internal/gf"
)

var testField = gf.NewField16()

func TestEncodeDecodeClean(t *testing.T) {
	c, err := NewCode(testField, 12, 4)
	if err != nil {
		t.Fatal(err)
	}
	msg := []gf.Elem{7, 0, 65535, 1234}
	cw, err := c.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decode(cw)
	if err != nil {
		t.Fatal(err)
	}
	for i := range msg {
		if got[i] != msg[i] {
			t.Fatalf("clean decode mismatch at %d: got %d want %d", i, got[i], msg[i])
		}
	}
}

func TestDecodeWithErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		n := 8 + rng.Intn(40)
		k := 1 + rng.Intn(n/2)
		c, err := NewCode(testField, n, k)
		if err != nil {
			t.Fatal(err)
		}
		msg := make([]gf.Elem, k)
		for i := range msg {
			msg[i] = gf.Elem(rng.Intn(gf.Order16))
		}
		cw, err := c.Encode(msg)
		if err != nil {
			t.Fatal(err)
		}
		// Corrupt up to MaxErrors positions.
		nerr := rng.Intn(c.MaxErrors() + 1)
		positions := rng.Perm(n)[:nerr]
		recv := make([]gf.Elem, n)
		copy(recv, cw)
		for _, p := range positions {
			recv[p] ^= gf.Elem(1 + rng.Intn(gf.Order16-1))
		}
		got, err := c.Decode(recv)
		if err != nil {
			t.Fatalf("trial %d (n=%d k=%d errs=%d): decode failed: %v", trial, n, k, nerr, err)
		}
		for i := range msg {
			if got[i] != msg[i] {
				t.Fatalf("trial %d: decode wrong at %d", trial, i)
			}
		}
	}
}

func TestDecodeBeyondCapacityDetected(t *testing.T) {
	c, err := NewCode(testField, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	msg := []gf.Elem{1, 2, 3, 4}
	cw, _ := c.Encode(msg)
	// Corrupt far more than MaxErrors=3: 8 positions with random values.
	// Decoding must either fail or return *some* message — but it must never
	// silently return a wrong message while claiming a valid nearby
	// codeword; we check the distance promise instead.
	recv := make([]gf.Elem, len(cw))
	copy(recv, cw)
	for _, p := range rng.Perm(10)[:8] {
		recv[p] ^= gf.Elem(1 + rng.Intn(gf.Order16-1))
	}
	got, err := c.Decode(recv)
	if err == nil {
		// If it decoded, the result must be within MaxErrors of recv.
		cw2, _ := c.Encode(got)
		if Hamming(cw2, recv) > c.MaxErrors() {
			t.Fatal("decoder returned codeword outside its distance promise")
		}
	}
}

func TestHamming(t *testing.T) {
	a := []gf.Elem{1, 2, 3}
	b := []gf.Elem{1, 0, 3}
	if Hamming(a, b) != 1 {
		t.Fatalf("Hamming = %d, want 1", Hamming(a, b))
	}
	if Hamming(a, a) != 0 {
		t.Fatal("Hamming(a,a) != 0")
	}
}

func TestInvalidParams(t *testing.T) {
	if _, err := NewCode(testField, 4, 5); err == nil {
		t.Fatal("k > n accepted")
	}
	if _, err := NewCode(testField, 70000, 4); err == nil {
		t.Fatal("n >= field order accepted")
	}
	if _, err := NewCode(testField, 4, 0); err == nil {
		t.Fatal("k = 0 accepted")
	}
}

func TestEncodeWrongLength(t *testing.T) {
	c, _ := NewCode(testField, 8, 3)
	if _, err := c.Encode([]gf.Elem{1}); err == nil {
		t.Fatal("wrong message length accepted")
	}
	if _, err := c.Decode([]gf.Elem{1}); err == nil {
		t.Fatal("wrong received length accepted")
	}
}

func TestRoundTripQuick(t *testing.T) {
	c, _ := NewCode(testField, 16, 5)
	f := func(a, b, cc, d, e gf.Elem, seed int64) bool {
		msg := []gf.Elem{a, b, cc, d, e}
		cw, err := c.Encode(msg)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		nerr := rng.Intn(c.MaxErrors() + 1)
		for _, p := range rng.Perm(16)[:nerr] {
			cw[p] ^= gf.Elem(1 + rng.Intn(gf.Order16-1))
		}
		got, err := c.Decode(cw)
		if err != nil {
			return false
		}
		for i := range msg {
			if got[i] != msg[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkDecodeWithErrors(b *testing.B) {
	c, _ := NewCode(testField, 64, 16)
	rng := rand.New(rand.NewSource(1))
	msg := make([]gf.Elem, 16)
	for i := range msg {
		msg[i] = gf.Elem(rng.Intn(gf.Order16))
	}
	cw, _ := c.Encode(msg)
	recv := make([]gf.Elem, len(cw))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(recv, cw)
		for _, p := range rng.Perm(64)[:c.MaxErrors()] {
			recv[p] ^= gf.Elem(1 + rng.Intn(gf.Order16-1))
		}
		if _, err := c.Decode(recv); err != nil {
			b.Fatal(err)
		}
	}
}
