// Package ecc implements Reed-Solomon error-correcting codes over GF(2^16)
// (Theorem 1.8 of the paper) with Berlekamp-Welch decoding from corrupted
// codewords. ECCSafeBroadcast (Section 3.2.1) encodes the dominating-mismatch
// list into one share per spanning tree and decodes the closest codeword at
// every node; the code here provides exactly that interface.
package ecc

import (
	"errors"
	"fmt"

	"mobilecongest/internal/gf"
)

// Code is an [n, k] Reed-Solomon code over GF(2^16): messages are k field
// symbols, codewords are n symbols obtained by evaluating the degree-(k-1)
// message polynomial at the points g^1 ... g^n. Its relative distance is
// (n-k+1)/n and Berlekamp-Welch corrects up to (n-k)/2 symbol errors.
type Code struct {
	f *gf.Field
	n int
	k int
	// points[i] is the evaluation point of codeword position i.
	points []gf.Elem
}

// ErrDecodeFailure is returned when the received word is too corrupted to
// identify a unique codeword.
var ErrDecodeFailure = errors.New("ecc: too many errors to decode")

// NewCode constructs an [n, k] Reed-Solomon code. It requires
// 1 <= k <= n < 2^16.
func NewCode(f *gf.Field, n, k int) (*Code, error) {
	if k < 1 || k > n || n >= f.Order() {
		return nil, fmt.Errorf("ecc: invalid parameters n=%d k=%d for field order %d", n, k, f.Order())
	}
	pts := make([]gf.Elem, n)
	for i := range pts {
		pts[i] = f.Exp(i + 1)
	}
	return &Code{f: f, n: n, k: k, points: pts}, nil
}

// N returns the block length.
func (c *Code) N() int { return c.n }

// K returns the message length.
func (c *Code) K() int { return c.k }

// MaxErrors returns the number of symbol errors the decoder corrects,
// floor((n-k)/2).
func (c *Code) MaxErrors() int { return (c.n - c.k) / 2 }

// Encode maps a k-symbol message to its n-symbol codeword.
func (c *Code) Encode(msg []gf.Elem) ([]gf.Elem, error) {
	if len(msg) != c.k {
		return nil, fmt.Errorf("ecc: message length %d, want %d", len(msg), c.k)
	}
	out := make([]gf.Elem, c.n)
	for i, pt := range c.points {
		out[i] = c.f.EvalPoly(msg, pt)
	}
	return out, nil
}

// Decode recovers the k-symbol message from a received word with at most
// MaxErrors corrupted symbols, using the Berlekamp-Welch algorithm. The
// received word must have length n; erasures are not modelled (a missing
// share should be filled with 0 and counted as a possible error).
func (c *Code) Decode(recv []gf.Elem) ([]gf.Elem, error) {
	if len(recv) != c.n {
		return nil, fmt.Errorf("ecc: received length %d, want %d", len(recv), c.n)
	}
	// Fast path: received word may already be a codeword.
	if msg, err := c.interpolateExact(recv); err == nil {
		return msg, nil
	}
	e := c.MaxErrors()
	// Berlekamp-Welch: find E(x) of degree e (monic) and Q(x) of degree
	// < k+e with Q(x_i) = y_i * E(x_i) for all i. Then message poly is Q/E.
	// Unknowns: e coefficients of E (low-order; leading coeff fixed to 1)
	// plus k+e coefficients of Q -> k+2e unknowns, n >= k+2e equations.
	nUnknowns := c.k + 2*e
	a := gf.NewMatrix(c.f, c.n, nUnknowns)
	b := make([]gf.Elem, c.n)
	for i := 0; i < c.n; i++ {
		x := c.points[i]
		y := recv[i]
		// Q coefficients: q_0 ... q_{k+e-1}, columns 0..k+e-1.
		pw := gf.Elem(1)
		for j := 0; j < c.k+e; j++ {
			a.Set(i, j, pw)
			pw = c.f.Mul(pw, x)
		}
		// E coefficients: e_0 ... e_{e-1}, columns k+e .. k+2e-1; the
		// equation is Q(x) - y*E(x) = 0 with E monic of degree e, i.e.
		// Q(x) = y*(x^e + sum e_j x^j)  =>
		// Q(x) + y*sum e_j x^j = y*x^e  (char 2: minus is plus).
		pw = 1
		for j := 0; j < e; j++ {
			a.Set(i, c.k+e+j, c.f.Mul(y, pw))
			pw = c.f.Mul(pw, x)
		}
		b[i] = c.f.Mul(y, c.f.Pow(x, e))
	}
	sol, err := solveLeastOverdetermined(c.f, a, b)
	if err != nil {
		return nil, ErrDecodeFailure
	}
	q := sol[:c.k+e]
	eCoeffs := make([]gf.Elem, e+1)
	copy(eCoeffs, sol[c.k+e:])
	eCoeffs[e] = 1 // monic
	quot, err := polyDiv(c.f, q, eCoeffs)
	if err != nil {
		return nil, ErrDecodeFailure
	}
	if len(quot) > c.k {
		return nil, ErrDecodeFailure
	}
	msg := make([]gf.Elem, c.k)
	copy(msg, quot)
	// Verify: the decoded message must be within MaxErrors of recv.
	cw, err := c.Encode(msg)
	if err != nil {
		return nil, err
	}
	if Hamming(cw, recv) > e {
		return nil, ErrDecodeFailure
	}
	return msg, nil
}

// interpolateExact treats recv as error-free, interpolates the message from
// the first k positions, and succeeds only if the re-encoding matches recv
// exactly.
func (c *Code) interpolateExact(recv []gf.Elem) ([]gf.Elem, error) {
	a := gf.NewMatrix(c.f, c.k, c.k)
	b := make([]gf.Elem, c.k)
	for i := 0; i < c.k; i++ {
		x := c.points[i]
		pw := gf.Elem(1)
		for j := 0; j < c.k; j++ {
			a.Set(i, j, pw)
			pw = c.f.Mul(pw, x)
		}
		b[i] = recv[i]
	}
	msg, err := gf.SolveLinear(a, b)
	if err != nil {
		return nil, err
	}
	cw, err := c.Encode(msg)
	if err != nil {
		return nil, err
	}
	if Hamming(cw, recv) != 0 {
		return nil, ErrDecodeFailure
	}
	return msg, nil
}

// Hamming returns the Hamming distance between two equal-length words
// (Definition 2 of the paper).
func Hamming(a, b []gf.Elem) int {
	d := 0
	for i := range a {
		if a[i] != b[i] {
			d++
		}
	}
	return d
}

// solveLeastOverdetermined solves the overdetermined consistent system
// A x = b by Gaussian elimination, returning any solution (free variables set
// to zero). It errors if the system is inconsistent.
func solveLeastOverdetermined(f *gf.Field, a *gf.Matrix, b []gf.Elem) ([]gf.Elem, error) {
	rows, cols := a.Rows(), a.Cols()
	w := a.Clone()
	rhs := make([]gf.Elem, rows)
	copy(rhs, b)
	pivotCol := make([]int, 0, cols)
	r := 0
	for col := 0; col < cols && r < rows; col++ {
		pivot := -1
		for i := r; i < rows; i++ {
			if w.At(i, col) != 0 {
				pivot = i
				break
			}
		}
		if pivot < 0 {
			continue
		}
		swapRowsWithRHS(w, rhs, pivot, r)
		inv := f.Inv(w.At(r, col))
		for j := 0; j < cols; j++ {
			w.Set(r, j, f.Mul(w.At(r, j), inv))
		}
		rhs[r] = f.Mul(rhs[r], inv)
		for i := 0; i < rows; i++ {
			if i != r && w.At(i, col) != 0 {
				factor := w.At(i, col)
				for j := 0; j < cols; j++ {
					w.Set(i, j, f.Add(w.At(i, j), f.Mul(factor, w.At(r, j))))
				}
				rhs[i] = f.Add(rhs[i], f.Mul(factor, rhs[r]))
			}
		}
		pivotCol = append(pivotCol, col)
		r++
	}
	// Inconsistency check: zero rows with non-zero RHS.
	for i := r; i < rows; i++ {
		if rhs[i] != 0 {
			return nil, errors.New("ecc: inconsistent system")
		}
	}
	x := make([]gf.Elem, cols)
	for i, col := range pivotCol {
		x[col] = rhs[i]
	}
	return x, nil
}

func swapRowsWithRHS(m *gf.Matrix, rhs []gf.Elem, i, j int) {
	if i == j {
		return
	}
	for c := 0; c < m.Cols(); c++ {
		vi, vj := m.At(i, c), m.At(j, c)
		m.Set(i, c, vj)
		m.Set(j, c, vi)
	}
	rhs[i], rhs[j] = rhs[j], rhs[i]
}

// polyDiv divides polynomial num by den, returning the quotient. It errors
// if the division leaves a non-zero remainder (which signals a decoding
// failure in Berlekamp-Welch).
func polyDiv(f *gf.Field, num, den []gf.Elem) ([]gf.Elem, error) {
	num = trimPoly(num)
	den = trimPoly(den)
	if len(den) == 0 {
		return nil, errors.New("ecc: division by zero polynomial")
	}
	if len(num) < len(den) {
		if len(num) == 0 {
			return []gf.Elem{0}, nil
		}
		return nil, errors.New("ecc: degree underflow")
	}
	rem := make([]gf.Elem, len(num))
	copy(rem, num)
	quot := make([]gf.Elem, len(num)-len(den)+1)
	dLead := den[len(den)-1]
	for i := len(rem) - 1; i >= len(den)-1; i-- {
		if rem[i] == 0 {
			continue
		}
		coef := f.Div(rem[i], dLead)
		quot[i-(len(den)-1)] = coef
		for j := 0; j < len(den); j++ {
			rem[i-(len(den)-1)+j] ^= f.Mul(coef, den[j])
		}
	}
	for _, r := range rem {
		if r != 0 {
			return nil, errors.New("ecc: non-zero remainder")
		}
	}
	return quot, nil
}

func trimPoly(p []gf.Elem) []gf.Elem {
	i := len(p)
	for i > 0 && p[i-1] == 0 {
		i--
	}
	return p[:i]
}
