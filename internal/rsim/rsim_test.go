package rsim

import (
	"bytes"
	"testing"

	"mobilecongest/internal/adversary"
	"mobilecongest/internal/congest"
	"mobilecongest/internal/graph"
	"mobilecongest/internal/treepack"
)

// mergeXor is a simple commutative aggregate for tests.
func mergeXor(_ int, a, b []byte) []byte {
	out := make([]byte, 8)
	copy(out, a)
	for i := 0; i < 8 && i < len(b); i++ {
		out[i] ^= b[i]
	}
	return out
}

func TestViewsCliqueStars(t *testing.T) {
	n := 6
	p := treepack.CliqueStars(n)
	views := Views(p)
	if len(views) != n {
		t.Fatalf("views for %d nodes", len(views))
	}
	if d := MaxDepth(views); d != 2 {
		t.Fatalf("max depth %d, want 2", d)
	}
	// Root's view: depth 0 in every tree.
	for j := range p.Trees {
		if views[n-1][j].Depth != 0 {
			t.Fatalf("root depth in tree %d = %d", j, views[n-1][j].Depth)
		}
	}
}

func TestViewsBrokenTreeAbsent(t *testing.T) {
	p := &treepack.Packing{Root: 0}
	tr := treepack.NewTree(3, 0)
	tr.Parent[1] = 2 // 2 has no parent -> 1 dangles
	p.Trees = append(p.Trees, tr)
	views := Views(p)
	if views[1][0].Depth != -1 {
		t.Fatalf("dangling node depth = %d, want -1", views[1][0].Depth)
	}
	if views[2][0].Depth != -1 {
		t.Fatalf("absent node depth = %d, want -1", views[2][0].Depth)
	}
}

func runPacking(t *testing.T, g *graph.Graph, p *treepack.Packing, adv congest.Adversary, proto congest.Protocol) *congest.Result {
	t.Helper()
	res, err := congest.Run(congest.Config{Graph: g, Seed: 5, Adversary: adv, Shared: Views(p)}, proto)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestBroadcastDownFaultFree(t *testing.T) {
	n := 8
	g := graph.Clique(n)
	p := treepack.CliqueStars(n)
	payload := []byte("hello-tree")
	proto := func(rt congest.Runtime) {
		views := rt.Shared().([][]TreeView)[rt.ID()]
		payloads := make([][]byte, len(views))
		for j := range views {
			if views[j].Depth == 0 {
				payloads[j] = payload
			}
		}
		got := BroadcastDown(rt, views, payloads, 2, 3)
		okAll := true
		for j := range got {
			if !bytes.Equal(got[j], payload) {
				okAll = false
			}
		}
		rt.SetOutput(okAll)
	}
	res := runPacking(t, g, p, nil, proto)
	for i, o := range res.Outputs {
		if o != true {
			t.Fatalf("node %d missed a broadcast", i)
		}
	}
	if want := Rounds(2, 3); res.Stats.Rounds != want {
		t.Fatalf("rounds = %d, want %d", res.Stats.Rounds, want)
	}
}

func TestBroadcastDownUnderMobileAdversary(t *testing.T) {
	n := 12
	g := graph.Clique(n)
	p := treepack.CliqueStars(n)
	payload := []byte{0xAA, 0xBB, 0xCC}
	rep := 7
	adv := adversary.NewMobileByzantine(g, 2, 3, adversary.SelectRandom, adversary.CorruptRandomize)
	proto := func(rt congest.Runtime) {
		views := rt.Shared().([][]TreeView)[rt.ID()]
		payloads := make([][]byte, len(views))
		for j := range views {
			if views[j].Depth == 0 {
				payloads[j] = payload
			}
		}
		got := BroadcastDown(rt, views, payloads, 2, rep)
		good := 0
		for j := range got {
			if bytes.Equal(got[j], payload) {
				good++
			}
		}
		rt.SetOutput(good)
	}
	res := runPacking(t, g, p, adv, proto)
	// Lemma 3.3 shape: all but O(f*eta*(D+1)) trees deliver to every node.
	// f=2, eta=2, D=2 -> at most ~12 failures is the crude bound; demand a
	// clear majority of the 12 trees at every node.
	for i, o := range res.Outputs {
		if o.(int) < 9 {
			t.Fatalf("node %d: only %d/12 trees delivered", i, o)
		}
	}
}

func TestConvergecastUpFaultFree(t *testing.T) {
	n := 8
	g := graph.Clique(n)
	p := treepack.CliqueStars(n)
	// Every node contributes its ID+1 (8-byte); xor-aggregate at the root.
	var want [8]byte
	for v := 0; v < n; v++ {
		w := congest.U64Msg(uint64(v) + 1)
		for i := range want {
			want[i] ^= w[i]
		}
	}
	proto := func(rt congest.Runtime) {
		views := rt.Shared().([][]TreeView)[rt.ID()]
		locals := make([][]byte, len(views))
		for j := range views {
			locals[j] = congest.U64Msg(uint64(rt.ID()) + 1)
		}
		got := ConvergecastUp(rt, views, locals, mergeXor, 2, 3)
		if rt.ID() == graph.NodeID(n-1) {
			good := 0
			for j := range got {
				if bytes.Equal(got[j], want[:]) {
					good++
				}
			}
			rt.SetOutput(good)
		} else {
			rt.SetOutput(-1)
		}
	}
	res := runPacking(t, g, p, nil, proto)
	if got := res.Outputs[n-1].(int); got != n {
		t.Fatalf("root aggregated correctly on %d/%d trees", got, n)
	}
}

func TestConvergecastUnderMobileAdversary(t *testing.T) {
	n := 12
	g := graph.Clique(n)
	p := treepack.CliqueStars(n)
	rep := 7
	var want [8]byte
	for v := 0; v < n; v++ {
		w := congest.U64Msg(uint64(v) + 1)
		for i := range want {
			want[i] ^= w[i]
		}
	}
	adv := adversary.NewMobileByzantine(g, 2, 9, adversary.SelectRandom, adversary.CorruptRandomize)
	proto := func(rt congest.Runtime) {
		views := rt.Shared().([][]TreeView)[rt.ID()]
		locals := make([][]byte, len(views))
		for j := range views {
			locals[j] = congest.U64Msg(uint64(rt.ID()) + 1)
		}
		got := ConvergecastUp(rt, views, locals, mergeXor, 2, rep)
		if rt.ID() == graph.NodeID(n-1) {
			good := 0
			for j := range got {
				if bytes.Equal(got[j], want[:]) {
					good++
				}
			}
			rt.SetOutput(good)
		}
	}
	res := runPacking(t, g, p, adv, proto)
	if got := res.Outputs[n-1].(int); got < 9 {
		t.Fatalf("only %d/12 trees aggregated correctly under f=2", got)
	}
}

// TestRSThreshold verifies the Theorem 3.2-style contract on a single path
// tree: a bounded fraction of corrupted rounds on an edge only delays the
// commit and the broadcast succeeds; owning the edge for (nearly) the whole
// window starves the commit and breaks it.
func TestRSThreshold(t *testing.T) {
	n := 6
	g := graph.Path(n)
	tr := treepack.NewTree(n, 0)
	for v := 1; v < n; v++ {
		tr.Parent[v] = graph.NodeID(v - 1)
	}
	p := &treepack.Packing{Root: 0, Trees: []*treepack.Tree{tr}}
	depth := n - 1
	rep := 5
	payload := []byte("x")

	proto := func(rt congest.Runtime) {
		views := rt.Shared().([][]TreeView)[rt.ID()]
		payloads := make([][]byte, 1)
		if rt.ID() == 0 {
			payloads[0] = payload
		}
		got := BroadcastDown(rt, views, payloads, depth, rep)
		rt.SetOutput(bytes.Equal(got[0], payload))
	}

	// Bounded corruption rate: 2 of every 5 rounds on one edge delays the
	// pipeline but the doubled window absorbs it.
	mkAdv := func(corrupt, outOf int) congest.Adversary {
		var sched [][]graph.Edge
		for r := 0; r < Rounds(depth, rep); r++ {
			if r%outOf < corrupt {
				sched = append(sched, []graph.Edge{graph.NewEdge(2, 3)})
			} else {
				sched = append(sched, nil)
			}
		}
		// scheduledCorruptor is map-based on purpose: it keeps the legacy
		// TrafficAdversary path exercised through the compat adapter.
		return congest.AdaptTraffic(&scheduledCorruptor{sched: sched})
	}
	res, err := congest.Run(congest.Config{Graph: g, Seed: 2, Adversary: mkAdv(2, 5), Shared: Views(p)}, proto)
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range res.Outputs {
		if o != true {
			t.Fatalf("below-threshold corruption broke node %d", i)
		}
	}
	// Edge ownership: corrupting (2,3) in every round starves the commit
	// downstream of it.
	res, err = congest.Run(congest.Config{Graph: g, Seed: 2, Adversary: mkAdv(5, 5), Shared: Views(p)}, proto)
	if err != nil {
		t.Fatal(err)
	}
	broken := false
	for i := 3; i < n; i++ {
		if res.Outputs[i] != true {
			broken = true
		}
	}
	if !broken {
		t.Fatal("owned-edge corruption did not break downstream nodes")
	}
}

// scheduledCorruptor randomizes the scheduled edges each round.
type scheduledCorruptor struct {
	sched [][]graph.Edge
}

func (s *scheduledCorruptor) Intercept(round int, tr congest.Traffic) congest.Traffic {
	if round >= len(s.sched) || len(s.sched[round]) == 0 {
		return tr
	}
	out := tr.Clone()
	for _, e := range s.sched[round] {
		for _, de := range []graph.DirEdge{{From: e.U, To: e.V}, {From: e.V, To: e.U}} {
			if m, ok := out[de]; ok {
				c := m.Clone()
				for i := range c {
					c[i] ^= 0xFF
				}
				out[de] = c
			}
		}
	}
	return out
}

func (s *scheduledCorruptor) PerRoundEdges() int { return 1 }
