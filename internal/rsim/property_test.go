package rsim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mobilecongest/internal/graph"
	"mobilecongest/internal/treepack"
)

// TestViewsConsistencyQuick: for random greedy packings, the Views structure
// is internally consistent — parent/child relations are mutual and depths
// increase by one along edges.
func TestViewsConsistencyQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(8)
		c := 2
		if n <= 2*c {
			return true
		}
		g := graph.Circulant(n, c)
		p := treepack.GreedyLowDepth(g, graph.NodeID(n-1), 3, 6, 1)
		views := Views(p)
		for v := 0; v < n; v++ {
			for j, tv := range views[v] {
				if tv.Depth < 0 {
					continue
				}
				// Children must list me as their parent with depth+1.
				for _, ch := range tv.Children {
					cv := views[ch][j]
					if cv.Parent != graph.NodeID(v) || cv.Depth != tv.Depth+1 {
						return false
					}
				}
				// My parent (if any) must list me among its children.
				if tv.Parent >= 0 {
					found := false
					for _, sib := range views[tv.Parent][j].Children {
						if sib == graph.NodeID(v) {
							found = true
						}
					}
					if !found {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestCommitterProperties: a committer commits exactly at the threshold and
// never changes afterwards.
func TestCommitterProperties(t *testing.T) {
	f := func(th uint8, noise []byte) bool {
		threshold := 1 + int(th)%6
		c := newCommitter(threshold)
		// Interleave unique noise values with the repeated real value.
		real := []byte{0xAB, 0xCD}
		commits := 0
		for i := 0; i < threshold; i++ {
			if len(noise) > 0 {
				c.Offer([]byte{noise[i%len(noise)], byte(i)})
			}
			if c.Offer(real) {
				commits++
			}
		}
		if !c.done || string(c.value) != string(real) {
			// Unless the noise happened to repeat to threshold first.
			if c.done {
				return true
			}
			return false
		}
		// Further offers must not change the value.
		c.Offer([]byte{9, 9, 9})
		return string(c.value) == string(real)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestFrameRoundTripQuick: frames survive encode/parse for arbitrary
// sections, and corrupted tails never panic.
func TestFrameRoundTripQuick(t *testing.T) {
	f := func(a, b []byte, cut uint8) bool {
		if len(a) > 1000 || len(b) > 1000 {
			return true
		}
		var frame []byte
		frame = appendSection(frame, 1, a)
		frame = appendSection(frame, 2, b)
		got := parseFrame(frame)
		if string(got[1]) != string(a) || string(got[2]) != string(b) {
			return false
		}
		// Truncated frames parse without panicking.
		if int(cut) < len(frame) {
			_ = parseFrame(frame[:cut])
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
