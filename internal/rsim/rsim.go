// Package rsim realizes the contract of the Rajagopalan-Schulman compilers
// (Theorem 3.2) and the parallel scheduler of Lemma 3.3 for the tree
// protocols the paper actually compiles: pipelined broadcast down a rooted
// tree and merge-convergecast up it.
//
// Substitution (recorded in DESIGN.md): instead of tree codes, values
// propagate under *commit-threshold* forwarding. A node adopts a value for
// a tree only after receiving Rep identical copies of it from the relevant
// neighbour, then retransmits it every remaining round. Corrupting an edge
// therefore either (i) delays the commit by one round per corruption, or
// (ii) requires forging Rep identical copies — i.e. controlling the edge
// outright. With window T = 2*Rep*(depth+1), a tree fails only if the
// adversary spends about T corruptions on it (mirroring Theorem 3.2's
// constant-fraction-of-communication threshold), so an f-mobile adversary
// breaks O(f * eta) of k parallel trees — the Lemma 3.3 guarantee.
//
// All k trees run concurrently: each physical round, every graph edge
// carries one frame containing that edge's message for every tree using it,
// which is exactly the load-eta scheduling of Lemma 3.3 (an adversary
// corrupting the edge corrupts all eta trees on it, as in the paper).
package rsim

import (
	"mobilecongest/internal/congest"
	"mobilecongest/internal/graph"
	"mobilecongest/internal/treepack"
)

// TreeView is one node's local knowledge of one tree in the packing: its
// parent, children, and depth. Absent nodes (weak packings) have Depth < 0.
type TreeView struct {
	// Index identifies the tree within the packing.
	Index int
	// Parent is the tree parent (-1 for the root or absent nodes).
	Parent graph.NodeID
	// Children are the tree children.
	Children []graph.NodeID
	// Depth is this node's distance from the root (-1 if absent).
	Depth int
}

// Views computes every node's TreeView list for a packing — the "distributed
// knowledge" artifact handed to nodes as trusted preprocessing. Broken trees
// (cycles, dangling parents) yield Depth -1 views, which the protocols treat
// as absent; such trees simply fail, which weak packings budget for.
func Views(p *treepack.Packing) [][]TreeView {
	n := 0
	if len(p.Trees) > 0 {
		n = len(p.Trees[0].Parent)
	}
	views := make([][]TreeView, n)
	for v := 0; v < n; v++ {
		views[v] = make([]TreeView, len(p.Trees))
	}
	for j, t := range p.Trees {
		children := t.Children()
		depth := depths(t)
		for v := 0; v < n; v++ {
			views[v][j] = TreeView{
				Index:    j,
				Parent:   t.Parent[v],
				Children: children[v],
				Depth:    depth[v],
			}
			if graph.NodeID(v) == t.Root {
				views[v][j].Parent = -1
			}
		}
	}
	return views
}

// depths returns per-node depth or -1 (absent/broken).
func depths(t *treepack.Tree) []int {
	n := len(t.Parent)
	d := make([]int, n)
	for v := range d {
		d[v] = -1
	}
	for v := 0; v < n; v++ {
		if t.Parent[v] < 0 {
			continue
		}
		steps := 0
		u := graph.NodeID(v)
		for u != t.Root && steps <= n {
			p := t.Parent[u]
			if p < 0 || int(p) >= n {
				steps = n + 1
				break
			}
			u = p
			steps++
		}
		if steps <= n && u == t.Root {
			d[v] = steps
		}
	}
	return d
}

// MaxDepth returns the largest depth over all views (absent views ignored),
// which all nodes can compute from the shared packing.
func MaxDepth(views [][]TreeView) int {
	max := 0
	for _, nodeViews := range views {
		for _, v := range nodeViews {
			if v.Depth > max {
				max = v.Depth
			}
		}
	}
	return max
}

// Rounds returns the physical round count used by BroadcastDown and
// ConvergecastUp with the given depth bound and repetition: the pipeline
// needs rep*(depth+1) rounds to commit level by level, doubled for delay
// slack against corruption.
func Rounds(depthBound, rep int) int { return 2 * rep * (depthBound + 1) }

// frame encoding: [treeID u16][len u16][payload]... per physical edge.

func appendSection(dst []byte, treeID int, payload []byte) []byte {
	dst = append(dst, byte(treeID>>8), byte(treeID))
	dst = append(dst, byte(len(payload)>>8), byte(len(payload)))
	return append(dst, payload...)
}

func parseFrame(m congest.Msg) map[int][]byte {
	out := make(map[int][]byte)
	i := 0
	for i+4 <= len(m) {
		treeID := int(m[i])<<8 | int(m[i+1])
		l := int(m[i+2])<<8 | int(m[i+3])
		i += 4
		if i+l > len(m) {
			break // truncated/corrupted tail
		}
		out[treeID] = m[i : i+l]
		i += l
	}
	return out
}

// committer tracks copies of candidate values on one (tree, neighbour)
// stream and commits at the threshold.
type committer struct {
	counts    map[string]int
	threshold int
	value     []byte
	done      bool
}

func newCommitter(threshold int) *committer {
	return &committer{counts: make(map[string]int), threshold: threshold}
}

// Offer records one received copy and reports whether the stream has
// committed.
func (c *committer) Offer(v []byte) bool {
	if c.done {
		return true
	}
	s := string(v)
	c.counts[s]++
	if c.counts[s] >= c.threshold {
		c.value = []byte(s)
		c.done = true
	}
	return c.done
}

// BroadcastDown floods a per-tree payload from each tree's root to all its
// nodes: payloads[j] must be set at the root of tree j (nil elsewhere).
// Runs Rounds(depthBound, rep) physical rounds and returns this node's
// received payload per tree (nil when the tree never committed — a failed
// tree). Every participating node must call it at the same round with the
// same depthBound and rep.
func BroadcastDown(rt congest.Runtime, trees []TreeView, payloads [][]byte, depthBound, rep int) [][]byte {
	pr := congest.Ports(rt)
	have := make([][]byte, len(trees))
	commits := make([]*committer, len(trees))
	for j := range trees {
		if trees[j].Depth == 0 { // root
			have[j] = payloads[j]
		}
		commits[j] = newCommitter(rep)
	}
	total := Rounds(depthBound, rep)
	for r := 0; r < total; r++ {
		out := pr.OutBuf()
		for j, tv := range trees {
			if tv.Depth < 0 || have[j] == nil {
				continue
			}
			for _, c := range tv.Children {
				if p := pr.Port(c); p >= 0 {
					out[p] = appendSection(out[p], j, have[j])
				}
			}
		}
		in := pr.ExchangePorts(out)
		for j, tv := range trees {
			if tv.Depth <= 0 || tv.Parent < 0 || have[j] != nil {
				continue
			}
			if p := pr.Port(tv.Parent); p >= 0 && in[p] != nil {
				if sec, ok2 := parseFrame(in[p])[j]; ok2 {
					if commits[j].Offer(sec) {
						have[j] = commits[j].value
					}
				}
			}
		}
	}
	return have
}

// MergeFn combines two encoded aggregates for one tree.
type MergeFn func(treeIdx int, a, b []byte) []byte

// ConvergecastUp aggregates per-tree local values to each tree's root:
// locals[j] is this node's contribution to tree j. A node transmits its
// subtree aggregate — its local folded with every child's committed
// aggregate — only once all children have committed, so retransmissions are
// identical and the parent's commit threshold applies. Returns, at each
// tree's root, the tree aggregate (nil elsewhere or on failure). Must be
// called in lock-step by all nodes with equal depthBound and rep.
func ConvergecastUp(rt congest.Runtime, trees []TreeView, locals [][]byte, merge MergeFn, depthBound, rep int) [][]byte {
	pr := congest.Ports(rt)
	type key struct {
		j     int
		child graph.NodeID
	}
	commits := make(map[key]*committer)
	ready := make([][]byte, len(trees)) // my complete subtree aggregate
	for j, tv := range trees {
		if tv.Depth < 0 {
			continue
		}
		if len(tv.Children) == 0 {
			ready[j] = locals[j]
		}
		for _, c := range tv.Children {
			commits[key{j: j, child: c}] = newCommitter(rep)
		}
	}
	total := Rounds(depthBound, rep)
	for r := 0; r < total; r++ {
		out := pr.OutBuf()
		for j, tv := range trees {
			if tv.Depth <= 0 || tv.Parent < 0 || ready[j] == nil {
				continue
			}
			if p := pr.Port(tv.Parent); p >= 0 {
				out[p] = appendSection(out[p], j, ready[j])
			}
		}
		in := pr.ExchangePorts(out)
		for j, tv := range trees {
			if tv.Depth < 0 || ready[j] != nil {
				continue
			}
			allDone := true
			for _, c := range tv.Children {
				k := key{j: j, child: c}
				cm := commits[k]
				if cm.done {
					continue
				}
				if p := pr.Port(c); p >= 0 && in[p] != nil {
					if sec, ok2 := parseFrame(in[p])[j]; ok2 {
						cm.Offer(sec)
					}
				}
				if !cm.done {
					allDone = false
				}
			}
			if allDone {
				acc := locals[j]
				for _, c := range tv.Children {
					acc = merge(j, acc, commits[key{j: j, child: c}].value)
				}
				ready[j] = acc
			}
		}
	}
	res := make([][]byte, len(trees))
	for j, tv := range trees {
		if tv.Depth == 0 {
			res[j] = ready[j]
		}
	}
	return res
}
