package portnative_test

import (
	"testing"

	"mobilecongest/internal/lint/analysis/analysistest"
	"mobilecongest/internal/lint/portnative"
)

func TestPortnative(t *testing.T) {
	analysistest.Run(t, "testdata/src", portnative.Analyzer, "flagged", "clean")
}
