// Fixture: internal code reaching for the legacy map compat wrappers.
package flagged

import (
	"mobilecongest/internal/congest"
	"mobilecongest/internal/graph"
)

func mapExchange(rt congest.Runtime, to graph.NodeID, m congest.Msg) congest.Msg {
	in := rt.Exchange(map[graph.NodeID]congest.Msg{to: m}) // want `legacy map Exchange compat wrapper`
	return in[to]
}

func materialize(view *congest.RoundView) int {
	return len(view.Traffic()) // want `legacy Traffic map materialization`
}
