// Fixture: slot/port-native code, plus a reasoned suppression on the one
// deliberate compat call.
package clean

import (
	"mobilecongest/internal/congest"
	"mobilecongest/internal/graph"
)

func portExchange(pr congest.PortRuntime, m congest.Msg) congest.Msg {
	out := pr.OutBuf()
	for p := 0; p < pr.Degree(); p++ {
		out[p] = m
	}
	in := pr.ExchangePorts(out)
	return in[0]
}

func deliberateAbort(rt congest.Runtime, to graph.NodeID) {
	//lint:ignore portnative abort path: the map Exchange is the canonical way to trigger the engine's non-neighbor error
	rt.Exchange(map[graph.NodeID]congest.Msg{to: nil})
	panic("unreachable")
}
