// Package portnative defines an analyzer rejecting the legacy map-based
// compat wrappers — Runtime.Exchange and the RoundTraffic/RoundView Traffic
// materializations — inside the simulator's internal packages. The map
// surfaces survive purely for foreign code (third-party protocols and
// adversaries); internal hot-path code must stay slot/port-native, both for
// the zero-alloc guarantees (each Exchange call materializes per-round
// maps) and because the compat fold re-derives state the port layer already
// holds.
package portnative

import (
	"go/ast"

	"mobilecongest/internal/lint/analysis"
	"mobilecongest/internal/lint/lintutil"
)

// Analyzer flags calls to the legacy map compat wrappers from internal
// packages.
var Analyzer = &analysis.Analyzer{
	Name: "portnative",
	Doc: "flags legacy map Exchange/Traffic compat calls in internal packages; " +
		"internal protocol and adversary code must use the slot/port-native surfaces " +
		"(PortRuntime.ExchangePorts, RoundTraffic slot access)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	path := pass.Pkg.Path()
	if !lintutil.IsInternal(path) || lintutil.IsCongest(path) {
		// The congest core owns the wrappers; everything outside internal/
		// is exactly the foreign-code audience they exist for.
		return nil
	}
	for _, file := range pass.Files {
		if lintutil.IsTestFile(pass.Fset, file.Pos()) {
			continue // tests pin the compat wrappers byte-identical on purpose
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch {
			case lintutil.IsCongestMethod(pass.TypesInfo, call, "Exchange"):
				pass.Reportf(call.Pos(), "call to legacy map Exchange compat wrapper; internal code must use PortRuntime.ExchangePorts")
			case lintutil.IsCongestMethod(pass.TypesInfo, call, "Traffic"):
				pass.Reportf(call.Pos(), "call to legacy Traffic map materialization; internal code must use slot-native access (All/Get/Set)")
			}
			return true
		})
	}
	return nil
}
