// Package lint assembles the mobilevet analyzer suite: eight analyzers
// encoding the simulator's correctness invariants as machine-checked rules.
// Each analyzer guards a contract that ordinary tests cannot see violated —
// slab reuse and cross-round parity, seed-determinism, map-order folds, the
// port-native boundary, the observer read-only discipline, shard-worker
// write isolation, and hot-path allocation freedom (propagated across
// package boundaries via exported facts). cmd/mobilevet runs the suite
// standalone or as a `go vet -vettool`.
package lint

import (
	"mobilecongest/internal/lint/analysis"
	"mobilecongest/internal/lint/arenaparity"
	"mobilecongest/internal/lint/detrand"
	"mobilecongest/internal/lint/hotalloc"
	"mobilecongest/internal/lint/maprange"
	"mobilecongest/internal/lint/obsreadonly"
	"mobilecongest/internal/lint/portnative"
	"mobilecongest/internal/lint/shardsafe"
	"mobilecongest/internal/lint/slabretain"
)

// Suite returns the full mobilevet analyzer set in stable order.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		arenaparity.Analyzer,
		detrand.Analyzer,
		hotalloc.Analyzer,
		maprange.Analyzer,
		obsreadonly.Analyzer,
		portnative.Analyzer,
		shardsafe.Analyzer,
		slabretain.Analyzer,
	}
}
