// Package lint assembles the mobilevet analyzer suite: five analyzers
// encoding the simulator's correctness invariants as machine-checked rules.
// Each analyzer guards a contract that ordinary tests cannot see violated —
// slab reuse, seed-determinism, map-order folds, the port-native boundary,
// and the observer read-only discipline. cmd/mobilevet runs the suite
// standalone or as a `go vet -vettool`.
package lint

import (
	"mobilecongest/internal/lint/analysis"
	"mobilecongest/internal/lint/detrand"
	"mobilecongest/internal/lint/maprange"
	"mobilecongest/internal/lint/obsreadonly"
	"mobilecongest/internal/lint/portnative"
	"mobilecongest/internal/lint/slabretain"
)

// Suite returns the full mobilevet analyzer set in stable order.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		detrand.Analyzer,
		maprange.Analyzer,
		obsreadonly.Analyzer,
		portnative.Analyzer,
		slabretain.Analyzer,
	}
}
