package shardsafe_test

import (
	"testing"

	"mobilecongest/internal/lint/analysis/analysistest"
	"mobilecongest/internal/lint/shardsafe"
)

func TestShardsafe(t *testing.T) {
	analysistest.Run(t, "testdata/src", shardsafe.Analyzer, "flagged", "clean")
}
