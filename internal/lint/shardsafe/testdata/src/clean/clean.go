// Fixture: the sanctioned shard-worker write patterns — locals, parameters,
// shard-indexed slots of captured slices and receiver fields, pointer
// locals into shard-owned ranges — plus a reasoned suppression for the
// coordinator-only branch.
package clean

type shardPool struct{ size int }

func (p *shardPool) run(fn func(k int)) {
	for i := 0; i < p.size; i++ {
		fn(i)
	}
}

type node struct{ acc int32 }

type engine struct {
	touched [][]int32
	active  []int32
	bounds  []int32
	nodes   []node
	pool    *shardPool
}

func (e *engine) round() {
	touched, active, bounds, nodes := e.touched, e.active, e.bounds, e.nodes
	e.pool.run(func(k int) {
		tl := touched[k][:0]
		lo, hi := bounds[k], bounds[k+1]
		for u := lo; u < hi; u++ {
			s := &nodes[u]
			s.acc++
			tl = append(tl, u)
			active[k]--
		}
		touched[k] = tl
	})
	e.pool.run(e.settle)
}

// settle writes receiver state only through shard-derived indices.
func (e *engine) settle(k int) {
	lo, hi := e.bounds[k], e.bounds[k+1]
	for u := lo; u < hi; u++ {
		e.nodes[u].acc = 0
	}
}

var rounds int

// kickCounted: the coordinator shard k==0 is the designated single writer
// of the round counter; the suppression documents the protocol.
func (e *engine) kickCounted() {
	e.pool.run(func(k int) {
		if k == 0 {
			//lint:ignore shardsafe coordinator shard runs alone after the barrier; single writer
			rounds++
		}
	})
}
