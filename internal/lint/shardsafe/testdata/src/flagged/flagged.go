// Fixture: shard-pool worker bodies writing state they do not own — a
// package-level counter, captured coordinator locals, and receiver fields
// without a shard-derived index — through literal entries, method-value
// entries resolved one variable step deep, and statically reached callees.
package flagged

type shardPool struct{ size int }

func (p *shardPool) run(fn func(k int)) {
	for i := 0; i < p.size; i++ {
		fn(i)
	}
}

var hits int

type engine struct {
	touched [][]int32
	errs    []error
	total   int
	pool    *shardPool
	nodes   []int
}

func (e *engine) round() {
	counter := 0
	e.pool.run(func(k int) {
		hits++      // want `package-level variable hits`
		e.total = k // want `captured variable e without a shard-derived index`
		counter++   // want `captured variable counter without a shard-derived index`
		e.touched[k] = nil
		lo := k * 2
		e.errs[lo] = nil
	})
	_ = counter
}

// compute enters the pool as a method value bound to a local first.
func (e *engine) compute(k int) {
	e.total += len(e.nodes) // want `receiver state e without a shard-derived index`
	e.touched[k] = e.touched[k][:0]
}

func (e *engine) kick() {
	compute := e.compute
	e.pool.run(compute)
}

// helper is not handed to the pool itself but is reached from gather, so it
// runs under the same isolation contract.
func (e *engine) gather(k int) {
	e.helper(k)
}

func (e *engine) helper(j int) {
	e.total = j // want `receiver state e without a shard-derived index`
	e.errs[j] = nil
}

func (e *engine) kickGather() {
	e.pool.run(e.gather)
}
