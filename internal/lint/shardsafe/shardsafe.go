// Package shardsafe defines an analyzer guarding the shard engine's
// write-isolation discipline: the functions a shardPool runs concurrently
// (the parallel-for bodies of the compute and gather phases, and the settle
// chunking) may only write through their own locals, their parameters —
// which the kick protocol hands them as shard-local views — and slots of
// shared slices indexed by a value derived from the shard parameter. A
// write to a package-level variable, or to captured/receiver state with no
// shard-derived index on the path, is a data race between workers that the
// race detector only catches when two shards actually collide in a test
// run; this analyzer rejects it statically.
//
// Worker entry points are recognized syntactically: any argument handed to
// the run method of a type named shardPool, resolved one local-variable
// step deep (`compute := func(k int) {...}; pool.run(compute)`), plus every
// same-package function statically reachable from those bodies.
package shardsafe

import (
	"go/ast"
	"go/token"
	"go/types"

	"mobilecongest/internal/lint/analysis"
	"mobilecongest/internal/lint/lintutil"
)

// Analyzer flags shard-pool worker code writing shared state without a
// shard-derived index.
var Analyzer = &analysis.Analyzer{
	Name: "shardsafe",
	Doc: "flags writes from shardPool worker functions to package-level variables or to " +
		"captured/receiver state not indexed by a shard-derived value; workers own only their " +
		"locals, parameters, and shard slots",
	Run: run,
}

func run(pass *analysis.Pass) error {
	g := lintutil.NewCallGraph(pass.Fset, pass.Files, pass.TypesInfo)
	info := pass.TypesInfo

	// Find worker entries: arguments of (_ shardPool).run(...) calls.
	type litEntry struct {
		lit  *ast.FuncLit
		host *ast.FuncDecl // function whose body declares the literal
	}
	var lits []litEntry
	var named []*types.Func
	for _, file := range pass.Files {
		if lintutil.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			varInit := make(map[types.Object]ast.Expr)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				s, ok := n.(*ast.AssignStmt)
				if !ok || len(s.Lhs) != len(s.Rhs) {
					return true
				}
				for i, lhs := range s.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						if obj := lintutil.ObjOf(info, id); obj != nil {
							varInit[obj] = s.Rhs[i]
						}
					}
				}
				return true
			})
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isShardPoolRun(info, call) || len(call.Args) == 0 {
					return true
				}
				lit, fn := resolveEntry(info, varInit, call.Args[0], true)
				if lit != nil {
					lits = append(lits, litEntry{lit: lit, host: fd})
				}
				if fn != nil {
					named = append(named, fn)
				}
				return true
			})
		}
	}
	if len(lits) == 0 && len(named) == 0 {
		return nil
	}

	// Close over static calls: everything a worker body invokes runs under
	// the same isolation contract.
	var seeds []*types.Func
	seeds = append(seeds, named...)
	for _, e := range lits {
		ast.Inspect(e.lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if fn := lintutil.CalleeFunc(info, call); fn != nil {
					seeds = append(seeds, fn)
				}
			}
			return true
		})
	}
	workers := g.Reachable(seeds, nil)

	for _, e := range lits {
		checkWorker(pass, e.lit, e.lit.Type.Params, nil)
	}
	for fn := range workers {
		if fn.Pkg() != pass.Pkg {
			continue
		}
		decl := g.Decl(fn)
		if decl == nil {
			continue
		}
		var recv *ast.FieldList
		if decl.Recv != nil {
			recv = decl.Recv
		}
		checkWorker(pass, decl, decl.Type.Params, recv)
	}
	return nil
}

// isShardPoolRun reports whether call invokes the run method of a type
// named shardPool (matched by name so fixtures can declare their own).
func isShardPoolRun(info *types.Info, call *ast.CallExpr) bool {
	fn := lintutil.CalleeFunc(info, call)
	if fn == nil || fn.Name() != "run" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	n, ok := recv.(*types.Named)
	return ok && n.Obj().Name() == "shardPool"
}

// resolveEntry resolves a pool.run argument to a function literal or a
// named function, following one local-variable indirection.
func resolveEntry(info *types.Info, varInit map[types.Object]ast.Expr, e ast.Expr, followVar bool) (*ast.FuncLit, *types.Func) {
	switch x := ast.Unparen(e).(type) {
	case *ast.FuncLit:
		return x, nil
	case *ast.Ident:
		switch obj := lintutil.ObjOf(info, x).(type) {
		case *types.Func:
			return nil, obj
		case *types.Var:
			if followVar {
				if init, ok := varInit[obj]; ok {
					return resolveEntry(info, varInit, init, false)
				}
			}
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[x.Sel].(*types.Func); ok {
			return nil, fn
		}
	}
	return nil, nil
}

// checkWorker verifies one worker function's writes. node is the literal or
// declaration whose span defines "local"; params are the shard-local
// parameters (taint sources); recv, when non-nil, is the receiver — shared
// coordinator state, deliberately NOT a taint source.
func checkWorker(pass *analysis.Pass, node ast.Node, params *ast.FieldList, recv *ast.FieldList) {
	info := pass.TypesInfo
	var body *ast.BlockStmt
	switch n := node.(type) {
	case *ast.FuncLit:
		body = n.Body
	case *ast.FuncDecl:
		body = n.Body
	}
	if body == nil {
		return
	}

	receiver := make(map[types.Object]bool)
	if recv != nil {
		for _, f := range recv.List {
			for _, name := range f.Names {
				if obj := info.Defs[name]; obj != nil {
					receiver[obj] = true
				}
			}
		}
	}

	// Taint: the shard-local parameters and everything derived from them.
	taint := make(map[types.Object]bool)
	if params != nil {
		for _, f := range params.List {
			for _, name := range f.Names {
				if obj := info.Defs[name]; obj != nil {
					taint[obj] = true
				}
			}
		}
	}
	for {
		before := len(taint)
		ast.Inspect(body, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range s.Lhs {
					var rhs ast.Expr
					if len(s.Lhs) == len(s.Rhs) {
						rhs = s.Rhs[i]
					} else if len(s.Rhs) == 1 {
						rhs = s.Rhs[0]
					}
					if rhs == nil || !lintutil.Mentions(info, rhs, taint) {
						continue
					}
					if id, ok := lhs.(*ast.Ident); ok {
						if obj := lintutil.ObjOf(info, id); obj != nil && lintutil.DeclaredWithin(obj, node) {
							taint[obj] = true
						}
					}
				}
			case *ast.RangeStmt:
				if !lintutil.Mentions(info, s.X, taint) {
					return true
				}
				for _, e := range []ast.Expr{s.Key, s.Value} {
					if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
						if obj := lintutil.ObjOf(info, id); obj != nil {
							taint[obj] = true
						}
					}
				}
			}
			return true
		})
		if len(taint) == before {
			break
		}
	}

	check := func(lhs ast.Expr) {
		base, indices := splitPath(lhs)
		if base == nil {
			return
		}
		obj := lintutil.ObjOf(info, base)
		if obj == nil {
			return
		}
		if lintutil.IsPkgLevel(obj, pass.Pkg) || (obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope()) {
			pass.Reportf(lhs.Pos(), "shard worker writes package-level variable %s; workers own only locals, parameters, and shard slots", base.Name)
			return
		}
		if !receiver[obj] {
			if taint[obj] || lintutil.DeclaredWithin(obj, node) {
				return // a local, a parameter, or derived from the shard index
			}
		}
		for _, idx := range indices {
			if lintutil.Mentions(info, idx, taint) {
				return // writing this shard's slot of a shared slice
			}
		}
		what := "captured variable"
		if receiver[obj] {
			what = "receiver state"
		}
		pass.Reportf(lhs.Pos(), "shard worker writes %s %s without a shard-derived index; workers may only write their own shard's slots", what, base.Name)
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if s.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range s.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
					continue
				}
				check(lhs)
			}
		case *ast.IncDecStmt:
			check(s.X)
		}
		return true
	})
}

// splitPath unwraps an lvalue to its base identifier, collecting the index
// expressions crossed on the way ("a.b[i][j].c" -> a, [i j]).
func splitPath(e ast.Expr) (*ast.Ident, []ast.Expr) {
	var indices []ast.Expr
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x, indices
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			indices = append(indices, x.Index)
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil, indices
		}
	}
}
