package obsreadonly_test

import (
	"testing"

	"mobilecongest/internal/lint/analysis/analysistest"
	"mobilecongest/internal/lint/obsreadonly"
)

func TestObsreadonly(t *testing.T) {
	analysistest.Run(t, "testdata/src", obsreadonly.Analyzer, "flagged", "clean")
}
