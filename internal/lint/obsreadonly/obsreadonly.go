// Package obsreadonly defines an analyzer enforcing the Observer pipeline's
// read-only contract: RoundDelivered hands every observer the same
// *RoundView over the engine's delivered round buffer, and the engine
// invokes observers in attachment order on both engines. An observer that
// mutates the view's slices or the Msg payloads it yields corrupts what
// every later observer — and the delivery fan-out — sees, breaking the
// byte-identical cross-engine trace guarantee. The analyzer inspects
// Observer implementations and flags writes through the view or anything
// derived from it.
package obsreadonly

import (
	"go/ast"
	"go/types"

	"mobilecongest/internal/lint/analysis"
	"mobilecongest/internal/lint/lintutil"
)

// Analyzer flags Observer implementations mutating the RoundView or Msg
// payloads they receive.
var Analyzer = &analysis.Analyzer{
	Name: "obsreadonly",
	Doc: "flags Observer implementations that mutate RoundView slices or Msg payloads " +
		"handed to them; observers must treat the delivered round as read-only and " +
		"retain copies, not views",
	Run: run,
}

func run(pass *analysis.Pass) error {
	obsIface := observerInterface(pass.Pkg)
	if obsIface == nil {
		return nil // congest not reachable: no Observer implementations possible
	}
	for _, file := range pass.Files {
		if lintutil.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || len(fd.Recv.List) == 0 {
				continue
			}
			recvType := pass.TypesInfo.TypeOf(fd.Recv.List[0].Type)
			if recvType == nil || !implementsObserver(recvType, obsIface) {
				continue
			}
			checkMethod(pass, fd)
		}
	}
	return nil
}

// observerInterface finds congest.Observer from this package or its
// imports.
func observerInterface(pkg *types.Package) *types.Interface {
	lookupIn := func(p *types.Package) *types.Interface {
		if obj, ok := p.Scope().Lookup("Observer").(*types.TypeName); ok {
			if iface, ok := obj.Type().Underlying().(*types.Interface); ok {
				return iface
			}
		}
		return nil
	}
	if lintutil.BasePkgPath(pkg.Path()) == lintutil.CongestPath {
		return lookupIn(pkg)
	}
	for _, imp := range pkg.Imports() {
		if lintutil.BasePkgPath(imp.Path()) == lintutil.CongestPath {
			return lookupIn(imp)
		}
	}
	return nil
}

func implementsObserver(t types.Type, iface *types.Interface) bool {
	if types.Implements(t, iface) {
		return true
	}
	if _, ok := t.(*types.Pointer); !ok {
		return types.Implements(types.NewPointer(t), iface)
	}
	return false
}

// checkMethod taints the method's *RoundView parameters (and everything
// derived from them) and flags writes through tainted values.
func checkMethod(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	taint := make(map[types.Object]bool)
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				if obj := info.Defs[name]; obj != nil && isRoundView(obj.Type()) {
					taint[obj] = true
				}
			}
		}
	}
	if len(taint) == 0 {
		return
	}

	taintedExpr := func(e ast.Expr) bool {
		if root := lintutil.RootIdent(e); root != nil {
			if obj := lintutil.ObjOf(info, root); obj != nil {
				return taint[obj]
			}
		}
		return false
	}

	// Propagate: aliases of the view, its Traffic() map, and the payloads
	// its All() iterator yields are all windows onto the same buffer.
	for {
		n := len(taint)
		ast.Inspect(fd.Body, func(node ast.Node) bool {
			switch s := node.(type) {
			case *ast.AssignStmt:
				if len(s.Lhs) != len(s.Rhs) {
					return true
				}
				for i, rhs := range s.Rhs {
					if derivesFromTaint(info, rhs, taint) {
						if id, ok := s.Lhs[i].(*ast.Ident); ok {
							if obj := lintutil.ObjOf(info, id); obj != nil {
								taint[obj] = true
							}
						}
					}
				}
			case *ast.RangeStmt:
				if derivesFromTaint(info, s.X, taint) {
					for _, v := range []ast.Expr{s.Key, s.Value} {
						if id, ok := v.(*ast.Ident); ok && id.Name != "_" {
							if obj := lintutil.ObjOf(info, id); obj != nil {
								taint[obj] = true
							}
						}
					}
				}
			}
			return true
		})
		if len(taint) == n {
			break
		}
	}

	ast.Inspect(fd.Body, func(node ast.Node) bool {
		switch s := node.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				// A write is a mutation only through an index, field, or
				// pointer of a tainted value; rebinding a local alias is fine.
				switch ast.Unparen(lhs).(type) {
				case *ast.IndexExpr, *ast.SelectorExpr, *ast.StarExpr:
					if taintedExpr(lhs) {
						pass.Reportf(lhs.Pos(), "observer mutates delivered round data; RoundView and Msg payloads are read-only (retain copies, not views)")
					}
				}
			}
		case *ast.IncDecStmt:
			switch ast.Unparen(s.X).(type) {
			case *ast.IndexExpr, *ast.SelectorExpr, *ast.StarExpr:
				if taintedExpr(s.X) {
					pass.Reportf(s.X.Pos(), "observer mutates delivered round data; RoundView and Msg payloads are read-only")
				}
			}
		case *ast.CallExpr:
			checkMutatingCall(pass, s, taintedExpr)
		}
		return true
	})
}

// derivesFromTaint reports whether e yields a view onto tainted data:
// the tainted value itself (or a sub-slice/field/element of it), or a
// Traffic()/All()/Corrupted() call on it.
func derivesFromTaint(info *types.Info, e ast.Expr, taint map[types.Object]bool) bool {
	switch x := e.(type) {
	case *ast.CallExpr:
		if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
			switch sel.Sel.Name {
			case "Traffic", "All", "Corrupted":
				return derivesFromTaint(info, sel.X, taint)
			}
		}
		return false
	case *ast.ParenExpr:
		return derivesFromTaint(info, x.X, taint)
	case *ast.SliceExpr:
		return derivesFromTaint(info, x.X, taint)
	default:
		if root := lintutil.RootIdent(e); root != nil {
			if obj := lintutil.ObjOf(info, root); obj != nil {
				return taint[obj]
			}
		}
		return false
	}
}

// checkMutatingCall flags stdlib calls that write through a tainted
// argument: in-place sorts, copy with a tainted destination, and append to
// a tainted slice (which scribbles into the shared backing array when
// capacity allows).
func checkMutatingCall(pass *analysis.Pass, call *ast.CallExpr, taintedExpr func(ast.Expr) bool) {
	if fn := lintutil.CalleeFunc(pass.TypesInfo, call); fn != nil && fn.Pkg() != nil {
		switch fn.Pkg().Path() {
		case "sort":
			switch fn.Name() {
			case "Slice", "SliceStable", "Sort", "Stable", "Strings", "Ints", "Float64s":
				if len(call.Args) > 0 && taintedExpr(call.Args[0]) {
					pass.Reportf(call.Pos(), "observer sorts delivered round data in place; RoundView slices are read-only — sort a copy")
				}
			}
		case "slices":
			switch fn.Name() {
			case "Sort", "SortFunc", "SortStableFunc", "Reverse", "Delete", "Insert":
				if len(call.Args) > 0 && taintedExpr(call.Args[0]) {
					pass.Reportf(call.Pos(), "observer mutates delivered round data in place; RoundView slices are read-only — operate on a copy")
				}
			}
		}
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		switch id.Name {
		case "copy":
			if len(call.Args) == 2 && taintedExpr(call.Args[0]) {
				pass.Reportf(call.Pos(), "observer copies into delivered round data; RoundView slices and Msg payloads are read-only")
			}
		case "append":
			if len(call.Args) > 0 && taintedExpr(call.Args[0]) {
				pass.Reportf(call.Pos(), "observer appends to a delivered round slice; when capacity allows this writes into the shared backing array — append to a fresh slice")
			}
		case "clear":
			if len(call.Args) == 1 && taintedExpr(call.Args[0]) {
				pass.Reportf(call.Pos(), "observer clears delivered round data; RoundView slices and maps are read-only")
			}
		}
	}
}

// isRoundView reports whether t is *congest.RoundView (or the value form).
func isRoundView(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == lintutil.CongestPath && obj.Name() == "RoundView"
}
