// Fixture: observers treating the delivered round as read-only — retaining
// copies and sorting only their own slices — plus a reasoned suppression.
package clean

import (
	"sort"

	"mobilecongest/internal/congest"
	"mobilecongest/internal/graph"
)

type archiver struct {
	rounds [][]graph.Edge
	bytes  int
}

func (a *archiver) RoundStart(round int)                   {}
func (a *archiver) RunDone(stats congest.Stats, err error) {}

func (a *archiver) RoundDelivered(round int, view *congest.RoundView) {
	for _, m := range view.All() {
		a.bytes += len(m)
	}
	cor := append([]graph.Edge(nil), view.Corrupted()...)
	sort.Slice(cor, func(i, j int) bool {
		if cor[i].U != cor[j].U {
			return cor[i].U < cor[j].U
		}
		return cor[i].V < cor[j].V
	})
	a.rounds = append(a.rounds, cor)
}

type redactor struct{}

func (redactor) RoundStart(round int)                   {}
func (redactor) RunDone(stats congest.Stats, err error) {}

func (redactor) RoundDelivered(round int, view *congest.RoundView) {
	for _, m := range view.All() {
		if len(m) > 0 {
			//lint:ignore obsreadonly this fixture observer runs last and owns teardown of the round buffer
			m[0] = 0
		}
	}
}
