// Fixture: observers mutating the delivered round view they were handed.
package flagged

import (
	"sort"

	"mobilecongest/internal/congest"
)

type scrubber struct{}

func (scrubber) RoundStart(round int)                   {}
func (scrubber) RunDone(stats congest.Stats, err error) {}

func (scrubber) RoundDelivered(round int, view *congest.RoundView) {
	for _, m := range view.All() {
		if len(m) > 0 {
			m[0] = 0 // want `observer mutates delivered round data`
		}
	}
}

type reorderer struct{}

func (reorderer) RoundStart(round int)                   {}
func (reorderer) RunDone(stats congest.Stats, err error) {}

func (reorderer) RoundDelivered(round int, view *congest.RoundView) {
	cor := view.Corrupted()
	sort.Slice(cor, func(i, j int) bool { return cor[i].U < cor[j].U }) // want `sorts delivered round data in place`
}

type injector struct{}

func (injector) RoundStart(round int)                   {}
func (injector) RunDone(stats congest.Stats, err error) {}

func (injector) RoundDelivered(round int, view *congest.RoundView) {
	for _, m := range view.All() {
		if len(m) > 2 {
			copy(m, []byte{1, 2}) // want `copies into delivered round data`
		}
	}
}
