// Package maprange defines an analyzer rejecting iteration-order-dependent
// writes inside `range` loops over maps. Go randomizes map iteration order
// per range statement, so any fold over a map that is not commutative — a
// majority vote adopting the first max it meets, a panic naming whichever
// offender came up first, an append consumed unsorted — yields different
// results run to run and across engines, breaking the simulator's
// bit-determinism contract. This is exactly the bug class behind the
// original algorithms.Broadcast divergence: parent adoption followed map
// order instead of a min-fold.
//
// The analyzer recognizes the deterministic fold shapes the codebase uses
// and flags everything else:
//
//   - commutative compound assignments (+=, -=, *=, |=, &=, ^=, &^=) and
//     ++/--;
//   - writes keyed by the loop key (map keys are unique, so each iteration
//     touches its own element), including indices derived from the key via
//     the port layer's injective Port/Neighbor mappings;
//   - writes whose value does not depend on the loop variables (idempotent
//     per target);
//   - delete from a map (each key deleted at most once);
//   - folds guarded by a strict ordering comparison: either the loop key is
//     compared against an adopted variable (unique keys make the full
//     multi-assign a deterministic argmin/argmax), or every adopted
//     variable has its own strict comparison against the value it adopts;
//   - statements under a guard equating the loop key with a loop-independent
//     value (at most one iteration can match);
//   - appends of loop-dependent values that are sorted after the loop.
package maprange

import (
	"go/ast"
	"go/token"
	"go/types"

	"mobilecongest/internal/lint/analysis"
	"mobilecongest/internal/lint/lintutil"
)

// Analyzer flags order-dependent writes inside range-over-map loops.
var Analyzer = &analysis.Analyzer{
	Name: "maprange",
	Doc: "flags range-over-map bodies that write to outboxes, ports, or outer state " +
		"in an iteration-order-dependent way; map order is randomized, so folds must " +
		"be commutative, keyed by the loop key, or guarded by strict ordering comparisons",
	Run: run,
}

// commutativeTok are the compound-assignment operators whose repeated
// application is order-independent.
var commutativeTok = map[token.Token]bool{
	token.ADD_ASSIGN:     true,
	token.SUB_ASSIGN:     true,
	token.MUL_ASSIGN:     true,
	token.OR_ASSIGN:      true,
	token.AND_ASSIGN:     true,
	token.XOR_ASSIGN:     true,
	token.AND_NOT_ASSIGN: true,
}

// injectiveMethods are port-layer mappings that send distinct node or edge
// keys to distinct results, so an index derived from the loop key through
// them still addresses a unique element per iteration.
var injectiveMethods = map[string]bool{
	"Port": true, "Neighbor": true, "Slot": true,
	"portIndex": true, "slot": true,
}

func run(pass *analysis.Pass) error {
	if !lintutil.IsInternal(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		if lintutil.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				if tv, ok := pass.TypesInfo.Types[rs.X]; ok && tv.Type != nil {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						newRangeChecker(pass, fd, rs).check()
					}
				}
				return true
			})
		}
	}
	return nil
}

type rangeChecker struct {
	pass   *analysis.Pass
	fd     *ast.FuncDecl
	rs     *ast.RangeStmt
	keyObj types.Object
	dep    map[types.Object]bool // loop-dependent values
	inj    map[types.Object]bool // injective-in-the-key index values
}

func newRangeChecker(pass *analysis.Pass, fd *ast.FuncDecl, rs *ast.RangeStmt) *rangeChecker {
	c := &rangeChecker{pass: pass, fd: fd, rs: rs,
		dep: make(map[types.Object]bool), inj: make(map[types.Object]bool)}
	for i, e := range []ast.Expr{rs.Key, rs.Value} {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		if obj := lintutil.ObjOf(pass.TypesInfo, id); obj != nil {
			c.dep[obj] = true
			if i == 0 {
				c.keyObj = obj
				c.inj[obj] = true
			}
		}
	}
	c.propagate()
	return c
}

// propagate grows the loop-dependent set through assignments in the body
// until stable, and alongside it the injective set: locals bound to
// Port/Neighbor of an injective value remain unique per iteration.
func (c *rangeChecker) propagate() {
	info := c.pass.TypesInfo
	for {
		before := len(c.dep) + len(c.inj)
		ast.Inspect(c.rs.Body, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range s.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok {
						continue
					}
					obj := lintutil.ObjOf(info, id)
					if obj == nil {
						continue
					}
					var rhs ast.Expr
					if len(s.Rhs) == len(s.Lhs) {
						rhs = s.Rhs[i]
					} else if len(s.Rhs) == 1 {
						rhs = s.Rhs[0]
					}
					if rhs != nil && lintutil.Mentions(info, rhs, c.dep) {
						c.dep[obj] = true
					}
					if rhs != nil && len(s.Rhs) == len(s.Lhs) && c.injectiveExpr(rhs) {
						c.inj[obj] = true
					}
				}
			case *ast.RangeStmt:
				if s != c.rs && lintutil.Mentions(info, s.X, c.dep) {
					for _, e := range []ast.Expr{s.Key, s.Value} {
						if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
							if obj := lintutil.ObjOf(info, id); obj != nil {
								c.dep[obj] = true
							}
						}
					}
				}
			}
			return true
		})
		if len(c.dep)+len(c.inj) == before {
			break
		}
	}
}

func (c *rangeChecker) check() {
	c.walk(c.rs.Body, nil)
}

// walk visits body statements carrying the stack of enclosing if/switch
// conditions, which the guard rules consult.
func (c *rangeChecker) walk(stmt ast.Stmt, conds []ast.Expr) {
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		for _, st := range s.List {
			c.walk(st, conds)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			c.walk(s.Init, conds)
		}
		c.walk(s.Body, append(conds, s.Cond))
		if s.Else != nil {
			c.walk(s.Else, conds)
		}
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.walk(s.Init, conds)
		}
		for _, cl := range s.Body.List {
			cc := cl.(*ast.CaseClause)
			clauseConds := conds
			if s.Tag != nil {
				// `switch key { case x: }` is an equality guard on key.
				for _, e := range cc.List {
					clauseConds = append(clauseConds, &ast.BinaryExpr{X: s.Tag, Op: token.EQL, Y: e})
				}
			} else {
				clauseConds = append(clauseConds, cc.List...)
			}
			for _, st := range cc.Body {
				c.walk(st, clauseConds)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, cl := range s.Body.List {
			for _, st := range cl.(*ast.CaseClause).Body {
				c.walk(st, conds)
			}
		}
	case *ast.SelectStmt:
		for _, cl := range s.Body.List {
			for _, st := range cl.(*ast.CommClause).Body {
				c.walk(st, conds)
			}
		}
	case *ast.ForStmt:
		if s.Init != nil {
			c.walk(s.Init, conds)
		}
		if s.Post != nil {
			c.walk(s.Post, conds)
		}
		c.walk(s.Body, conds)
	case *ast.RangeStmt:
		// A nested map range is analyzed on its own; its writes are still
		// checked here against the outer loop's dependence set.
		c.walk(s.Body, conds)
	case *ast.LabeledStmt:
		c.walk(s.Stmt, conds)
	case *ast.AssignStmt:
		c.checkAssign(s, conds)
	case *ast.ReturnStmt:
		c.checkReturn(s, conds)
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			c.checkCall(call, conds)
		}
	}
}

func (c *rangeChecker) checkAssign(as *ast.AssignStmt, conds []ast.Expr) {
	if commutativeTok[as.Tok] || as.Tok == token.DEFINE {
		return
	}
	cmps := comparisons(conds)
	if c.eqGuarded(cmps) {
		return // at most one iteration reaches this statement
	}
	keyRule := c.keyRuleHolds(cmps, as)
	for i, lhs := range as.Lhs {
		var rhs ast.Expr
		if len(as.Rhs) == len(as.Lhs) {
			rhs = as.Rhs[i]
		} else {
			rhs = as.Rhs[0]
		}
		c.checkWrite(lhs, rhs, cmps, keyRule)
	}
}

// checkWrite applies the safe-form taxonomy to one lvalue/value pair and
// reports when none sanctions it.
func (c *rangeChecker) checkWrite(lhs, rhs ast.Expr, cmps []*ast.BinaryExpr, keyRule bool) {
	info := c.pass.TypesInfo
	root := lintutil.RootIdent(lhs)
	if root != nil && root.Name == "_" {
		return
	}
	var rootObj types.Object
	if root != nil {
		rootObj = lintutil.ObjOf(info, root)
	}
	// Writes to loop-local state cannot leak iteration order.
	if rootObj != nil && lintutil.DeclaredWithin(rootObj, c.rs.Body) {
		return
	}
	// Writes keyed (injectively) by the loop key touch a unique element.
	if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && c.injectiveExpr(idx.Index) {
		return
	}
	// A value independent of the loop variables makes every iteration's
	// write identical, so order cannot matter.
	if rhs == nil || !lintutil.Mentions(info, rhs, c.dep) {
		return
	}
	// append-to-outer is fine when the result is sorted after the loop.
	if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
			if c.sortedAfterLoop(rootObj) {
				return
			}
			c.pass.Reportf(lhs.Pos(), "append of loop-dependent value inside map range accumulates in random order; sort the slice after the loop or collect keys and iterate sorted")
			return
		}
	}
	if keyRule {
		return
	}
	// Pairwise rule: the adopted variable itself is compared with a strict
	// ordering against loop-dependent data (deterministic max/min fold).
	if rootObj != nil && c.pairwiseGuard(cmps, rootObj) {
		return
	}
	c.pass.Reportf(lhs.Pos(), "order-dependent write inside map range: map iteration order is randomized, so which value wins here is nondeterministic; key the write by the loop key, fold commutatively, or guard the adoption with a strict ordering comparison (break ties on the key)")
}

func (c *rangeChecker) checkReturn(rt *ast.ReturnStmt, conds []ast.Expr) {
	info := c.pass.TypesInfo
	cmps := comparisons(conds)
	if c.eqGuarded(cmps) {
		return
	}
	for _, res := range rt.Results {
		if lintutil.Mentions(info, res, c.dep) {
			c.pass.Reportf(rt.Pos(), "return of loop-dependent value from inside map range; which iteration returns first is nondeterministic — fold to a deterministic representative, or guard with an equality on the loop key")
			return
		}
	}
}

func (c *rangeChecker) checkCall(call *ast.CallExpr, conds []ast.Expr) {
	info := c.pass.TypesInfo
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		switch id.Name {
		case "delete":
			return // each key is deleted at most once; order irrelevant
		case "panic":
			if len(call.Args) == 1 && lintutil.Mentions(info, call.Args[0], c.dep) && !c.eqGuarded(comparisons(conds)) {
				c.pass.Reportf(call.Pos(), "panic naming a loop-dependent offender inside map range; which offender panics first is nondeterministic — pick a deterministic representative (e.g. the smallest key) before panicking")
			}
			return
		}
	}
	// Slot writes into ports/outboxes: deterministic only when the slot is
	// derived injectively from the loop key.
	if lintutil.IsCongestMethod(info, call, "Set") {
		for _, arg := range call.Args {
			if c.injectiveExpr(arg) {
				return
			}
		}
		if anyMentions(info, call.Args, c.dep) && !c.eqGuarded(comparisons(conds)) {
			c.pass.Reportf(call.Pos(), "slot Set inside map range with a loop-dependent slot that is not derived from the loop key; colliding slots resolve in random order")
		}
	}
}

// injectiveExpr reports whether e addresses a unique element per loop
// iteration: the loop key (or an alias), a Port/Neighbor mapping of one, or
// a composite key embedding one.
func (c *rangeChecker) injectiveExpr(e ast.Expr) bool {
	info := c.pass.TypesInfo
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := lintutil.ObjOf(info, x)
		return obj != nil && c.inj[obj]
	case *ast.CallExpr:
		fn := lintutil.CalleeFunc(info, x)
		if fn == nil || !injectiveMethods[fn.Name()] {
			return false
		}
		// The mapping is injective in its key argument, which may reach it
		// through field selection (Slot(de.From, de.To) is injective in de).
		for _, arg := range x.Args {
			if c.injectiveExpr(arg) || lintutil.Mentions(info, arg, c.inj) {
				return true
			}
		}
		return false
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if c.injectiveExpr(el) {
				return true
			}
		}
		return false
	default:
		return false
	}
}

// eqGuarded reports whether some enclosing condition equates the loop key
// with a loop-independent value, so at most one iteration passes the guard.
func (c *rangeChecker) eqGuarded(cmps []*ast.BinaryExpr) bool {
	info := c.pass.TypesInfo
	if c.keyObj == nil {
		return false
	}
	for _, cmp := range cmps {
		if cmp.Op != token.EQL {
			continue
		}
		for _, pair := range [2][2]ast.Expr{{cmp.X, cmp.Y}, {cmp.Y, cmp.X}} {
			if lintutil.MentionsObj(info, pair[0], c.keyObj) && !lintutil.Mentions(info, pair[1], c.dep) {
				return true
			}
		}
	}
	return false
}

// keyRuleHolds reports whether some enclosing condition strictly compares
// the loop key against one of the assignment's targets. Map keys are
// unique, so a strict key comparison never ties, making the whole
// multi-assign a deterministic argmin/argmax regardless of what else it
// adopts.
func (c *rangeChecker) keyRuleHolds(cmps []*ast.BinaryExpr, as *ast.AssignStmt) bool {
	info := c.pass.TypesInfo
	if c.keyObj == nil {
		return false
	}
	for _, cmp := range cmps {
		if cmp.Op != token.LSS && cmp.Op != token.GTR {
			continue
		}
		for _, lhs := range as.Lhs {
			root := lintutil.RootIdent(lhs)
			if root == nil {
				continue
			}
			obj := lintutil.ObjOf(info, root)
			if obj == nil {
				continue
			}
			for _, pair := range [2][2]ast.Expr{{cmp.X, cmp.Y}, {cmp.Y, cmp.X}} {
				if lintutil.MentionsObj(info, pair[0], c.keyObj) && lintutil.MentionsObj(info, pair[1], obj) {
					return true
				}
			}
		}
	}
	return false
}

// pairwiseGuard reports whether some enclosing condition strictly compares
// the adopted variable against loop-dependent data — the classic
// `if v > best { best = v }` max fold, deterministic because equal values
// are indistinguishable.
func (c *rangeChecker) pairwiseGuard(cmps []*ast.BinaryExpr, adopted types.Object) bool {
	info := c.pass.TypesInfo
	for _, cmp := range cmps {
		if cmp.Op != token.LSS && cmp.Op != token.GTR {
			continue
		}
		for _, pair := range [2][2]ast.Expr{{cmp.X, cmp.Y}, {cmp.Y, cmp.X}} {
			if lintutil.MentionsObj(info, pair[0], adopted) && lintutil.Mentions(info, pair[1], c.dep) {
				return true
			}
		}
	}
	return false
}

// sortedAfterLoop reports whether the enclosing function sorts the slice
// held by obj somewhere after the range loop ends.
func (c *rangeChecker) sortedAfterLoop(obj types.Object) bool {
	if obj == nil {
		return false
	}
	info := c.pass.TypesInfo
	sorted := false
	ast.Inspect(c.fd.Body, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < c.rs.End() || len(call.Args) == 0 {
			return true
		}
		fn := lintutil.CalleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		isSort := false
		switch fn.Pkg().Path() {
		case "sort":
			switch fn.Name() {
			case "Slice", "SliceStable", "Sort", "Stable", "Strings", "Ints", "Float64s":
				isSort = true
			}
		case "slices":
			switch fn.Name() {
			case "Sort", "SortFunc", "SortStableFunc":
				isSort = true
			}
		}
		if isSort && lintutil.MentionsObj(info, call.Args[0], obj) {
			sorted = true
		}
		return true
	})
	return sorted
}

// comparisons collects every comparison operator reachable in the given
// condition expressions (through &&, ||, !, and parentheses).
func comparisons(conds []ast.Expr) []*ast.BinaryExpr {
	var out []*ast.BinaryExpr
	for _, cond := range conds {
		ast.Inspect(cond, func(n ast.Node) bool {
			if b, ok := n.(*ast.BinaryExpr); ok {
				switch b.Op {
				case token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
					out = append(out, b)
				}
			}
			return true
		})
	}
	return out
}

func anyMentions(info *types.Info, exprs []ast.Expr, set map[types.Object]bool) bool {
	for _, e := range exprs {
		if lintutil.Mentions(info, e, set) {
			return true
		}
	}
	return false
}
