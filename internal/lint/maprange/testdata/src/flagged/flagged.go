// Fixture: iteration-order-dependent folds over maps — the Broadcast bug
// class in each of its guises.
package flagged

import "fmt"

func firstMaxWins(votes map[uint64]int) uint64 {
	var best uint64
	bestCnt := 0
	for v, c := range votes {
		if c > bestCnt {
			best, bestCnt = v, c // want `order-dependent write inside map range`
		}
	}
	return best
}

func lastWriteWins(m map[int]string) string {
	var s string
	for _, v := range m {
		s = v // want `order-dependent write inside map range`
	}
	return s
}

func earlyReturn(m map[int]string) string {
	for _, v := range m {
		if len(v) > 3 {
			return v // want `return of loop-dependent value`
		}
	}
	return ""
}

func randomOffender(sizes map[int]int, max int) {
	for node, n := range sizes {
		if n > max {
			panic(fmt.Sprintf("node %d oversized: %d", node, n)) // want `panic naming a loop-dependent offender`
		}
	}
}

func unsortedGather(m map[int]int) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k) // want `append of loop-dependent value`
	}
	return keys
}
