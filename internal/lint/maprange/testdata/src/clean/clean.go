// Fixture: the deterministic fold shapes the analyzer must accept, plus a
// reasoned suppression.
package clean

import "sort"

func commutative(m map[int]int) int {
	total := 0
	for _, c := range m {
		total += c
	}
	return total
}

func counters(events map[string]int, hist map[int]int) {
	for _, c := range events {
		hist[c]++
	}
}

func keyedCopy(in map[string]int) map[string]int {
	out := make(map[string]int, len(in))
	for k, v := range in {
		out[k] = 2 * v
	}
	return out
}

func tieBrokenArgmax(votes map[uint64]int) uint64 {
	var best uint64
	bestCnt := 0
	for v, c := range votes {
		if c > bestCnt || (c == bestCnt && v < best) {
			best, bestCnt = v, c
		}
	}
	return best
}

func valueMax(m map[string]int) int {
	best := 0
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}

func sortedKeys(m map[int]string) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

func uniqueLookup(m map[int]string, want int) string {
	for k, v := range m {
		if k == want {
			return v
		}
	}
	return ""
}

func prune(m map[int]int, limit int) {
	for k, v := range m {
		if v > limit {
			delete(m, k)
		}
	}
}

func flagFound(m map[int]int, needle int) bool {
	found := false
	for _, v := range m {
		if v == needle {
			found = true
		}
	}
	return found
}

func suppressed(m map[int]int) int {
	last := 0
	for _, v := range m {
		//lint:ignore maprange the caller guarantees a single-entry map here
		last = v
	}
	return last
}
