package maprange_test

import (
	"testing"

	"mobilecongest/internal/lint/analysis/analysistest"
	"mobilecongest/internal/lint/maprange"
)

func TestMaprange(t *testing.T) {
	analysistest.Run(t, "testdata/src", maprange.Analyzer, "flagged", "clean")
}
