// Package lintutil holds the small type- and path-query helpers the
// mobilevet analyzers share: where a method was declared, whether a package
// is part of the simulator's internal hot path, and syntactic object
// mention checks used by the data-flow heuristics.
package lintutil

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// CongestPath is the import path of the simulator core that owns the slab
// buffers and the legacy compat wrappers.
const CongestPath = "mobilecongest/internal/congest"

// InternalPrefix is the import-path prefix of the simulator's internal
// packages — the scope most invariants apply to.
const InternalPrefix = "mobilecongest/internal/"

// BasePkgPath strips the test-variant suffix the go command appends to
// import paths of packages rebuilt for a test binary
// ("p [p.test]" -> "p", "p.test" -> "p").
func BasePkgPath(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		path = path[:i]
	}
	return strings.TrimSuffix(path, ".test")
}

// IsInternal reports whether the (base) package path is one of the
// simulator's internal packages.
func IsInternal(path string) bool {
	return strings.HasPrefix(BasePkgPath(path), InternalPrefix)
}

// IsCongest reports whether the (base) package path is the congest core
// itself.
func IsCongest(path string) bool {
	base := BasePkgPath(path)
	return base == CongestPath || strings.HasPrefix(base, CongestPath+"/")
}

// IsTestFile reports whether pos sits in a _test.go file.
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// CalleeFunc resolves the function or method a call expression invokes,
// through selector or plain identifier syntax. Returns nil for calls
// through function-typed values, type conversions, and builtins.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsCongestMethod reports whether call invokes a method that congest
// declares (directly or via one of its interfaces) with one of the given
// names.
func IsCongestMethod(info *types.Info, call *ast.CallExpr, names ...string) bool {
	fn := CalleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != CongestPath {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() == nil {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// RootIdent unwraps parens, stars, indexes, slices, and field selectors to
// the base identifier of an lvalue-ish expression ("s.f[i].g" -> "s").
// Returns nil when the base is not a plain identifier (e.g. a call result).
func RootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// ObjOf resolves an identifier to its object through either Uses or Defs.
func ObjOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// Mentions reports whether any identifier inside e resolves to an object in
// set.
func Mentions(info *types.Info, e ast.Node, set map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if o := ObjOf(info, id); o != nil && set[o] {
				found = true
			}
		}
		return true
	})
	return found
}

// MentionsObj reports whether any identifier inside e resolves to obj.
func MentionsObj(info *types.Info, e ast.Node, obj types.Object) bool {
	if obj == nil {
		return false
	}
	return Mentions(info, e, map[types.Object]bool{obj: true})
}

// DeclaredWithin reports whether obj's declaration lies inside the span of
// node n.
func DeclaredWithin(obj types.Object, n ast.Node) bool {
	return obj != nil && obj.Pos() != token.NoPos && n.Pos() <= obj.Pos() && obj.Pos() < n.End()
}

// IsPkgLevel reports whether obj is a package-level object of pkg.
func IsPkgLevel(obj types.Object, pkg *types.Package) bool {
	return obj != nil && pkg != nil && obj.Parent() == pkg.Scope()
}
