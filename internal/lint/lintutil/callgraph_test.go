package lintutil_test

import (
	"go/types"
	"os/exec"
	"strings"
	"testing"

	"mobilecongest/internal/lint/analysis"
	"mobilecongest/internal/lint/lintutil"
)

// loadCongest type-checks the congest package from source once per test
// binary and builds its call graph.
func loadCongest(t *testing.T) (*analysis.Package, *lintutil.CallGraph) {
	t.Helper()
	out, err := exec.Command("go", "list", "-m", "-f", "{{.Dir}}").Output()
	if err != nil {
		t.Fatalf("resolving module root: %v", err)
	}
	root := strings.TrimSpace(string(out))
	pkgs, err := analysis.Load(root, "./internal/congest")
	if err != nil {
		t.Fatalf("loading congest: %v", err)
	}
	for _, p := range pkgs {
		if p.ImportPath == lintutil.CongestPath {
			return p, lintutil.NewCallGraph(p.Fset, p.Files, p.TypesInfo)
		}
	}
	t.Fatal("congest not in load result")
	return nil, nil
}

// method resolves T.name (or Iface.name) in pkg's scope.
func method(t *testing.T, pkg *types.Package, typeName, name string) *types.Func {
	t.Helper()
	obj := pkg.Scope().Lookup(typeName)
	if obj == nil {
		t.Fatalf("%s not found in %s", typeName, pkg.Path())
	}
	if iface, ok := obj.Type().Underlying().(*types.Interface); ok {
		for i := 0; i < iface.NumMethods(); i++ {
			if m := iface.Method(i); m.Name() == name {
				return m
			}
		}
		t.Fatalf("%s.%s not found", typeName, name)
	}
	m, _, _ := types.LookupFieldOrMethod(types.NewPointer(obj.Type()), true, pkg, name)
	fn, ok := m.(*types.Func)
	if !ok {
		t.Fatalf("%s.%s not found", typeName, name)
	}
	return fn
}

// TestInterfaceDispatchEdges checks that a dynamic call through the
// Observer interface shows up as an edge to the interface method object.
func TestInterfaceDispatchEdges(t *testing.T) {
	pkg, g := loadCongest(t)
	beginRound := method(t, pkg.Types, "runCore", "beginRound")
	roundStart := method(t, pkg.Types, "Observer", "RoundStart")
	if !lintutil.IsInterfaceMethod(roundStart) {
		t.Fatal("Observer.RoundStart not recognized as an interface method")
	}
	found := false
	for _, callee := range g.Callees(beginRound) {
		if callee == roundStart {
			found = true
		}
	}
	if !found {
		t.Errorf("beginRound callees %v lack Observer.RoundStart", g.Callees(beginRound))
	}
}

// TestImplementationsMethodSets checks CHA resolution over the Engine and
// Observer method sets.
func TestImplementationsMethodSets(t *testing.T) {
	pkg, _ := loadCongest(t)

	runIface := method(t, pkg.Types, "Engine", "Run")
	var engines []string
	for _, impl := range lintutil.Implementations(pkg.Types, runIface) {
		sig := impl.Type().(*types.Signature)
		recv := sig.Recv().Type()
		if p, ok := recv.(*types.Pointer); ok {
			recv = p.Elem()
		}
		engines = append(engines, recv.(*types.Named).Obj().Name())
	}
	for _, want := range []string{"StepEngine", "GoroutineEngine", "ShardEngine"} {
		ok := false
		for _, got := range engines {
			if got == want {
				ok = true
			}
		}
		if !ok {
			t.Errorf("Implementations(Engine.Run) = %v; missing %s", engines, want)
		}
	}

	delivered := method(t, pkg.Types, "Observer", "RoundDelivered")
	impls := lintutil.Implementations(pkg.Types, delivered)
	foundStats := false
	for _, impl := range impls {
		if impl == method(t, pkg.Types, "StatsObserver", "RoundDelivered") {
			foundStats = true
		}
	}
	if !foundStats {
		t.Errorf("Implementations(Observer.RoundDelivered) missing StatsObserver's")
	}
}

// TestReachability checks BFS over static edges with an interface-expand
// hook: the step engine's run loop reaches the round bookkeeping and, once
// dynamic edges resolve, the concrete observers.
func TestReachability(t *testing.T) {
	pkg, g := loadCongest(t)
	runIn := method(t, pkg.Types, "StepEngine", "RunIn")
	expand := func(fn *types.Func) []*types.Func {
		var out []*types.Func
		for _, callee := range g.Callees(fn) {
			if lintutil.IsInterfaceMethod(callee) {
				out = append(out, lintutil.Implementations(pkg.Types, callee)...)
			}
		}
		return out
	}
	reach := g.Reachable([]*types.Func{runIn}, expand)
	for _, want := range []struct{ typ, name string }{
		{"runCore", "beginRound"},
		{"runCore", "collectOutbox"},
		{"runCore", "endRound"},
		{"StatsObserver", "RoundDelivered"}, // only via the interface expand
	} {
		if !reach[method(t, pkg.Types, want.typ, want.name)] {
			t.Errorf("StepEngine.RunIn does not reach %s.%s", want.typ, want.name)
		}
	}
}
