package lintutil

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// A CallGraph is a CHA-style (class-hierarchy) view of one package's
// declared functions: static call edges resolved through go/types,
// interface calls kept symbolic as edges to the interface's method object
// (resolve to concrete methods with Implementations), and the named
// functions whose values are taken without being called (handed to worker
// pools, stored in structs) — conservative extra edges for reachability.
// Function literal bodies are attributed to the enclosing declared
// function: a closure runs on whatever path invokes the function that
// built it, which is exactly how the whole-path analyzers reason.
type CallGraph struct {
	decls  map[*types.Func]*ast.FuncDecl
	calls  map[*types.Func][]*types.Func
	values map[*types.Func][]*types.Func
	funcs  []*types.Func // declaration order
}

// NewCallGraph builds the graph over the package's non-test files.
func NewCallGraph(fset *token.FileSet, files []*ast.File, info *types.Info) *CallGraph {
	g := &CallGraph{
		decls:  make(map[*types.Func]*ast.FuncDecl),
		calls:  make(map[*types.Func][]*types.Func),
		values: make(map[*types.Func][]*types.Func),
	}
	for _, file := range files {
		if IsTestFile(fset, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			g.decls[fn] = fd
			g.funcs = append(g.funcs, fn)
			g.scanBody(info, fn, fd.Body)
		}
	}
	return g
}

// scanBody records the call and value-taken edges of one function body.
func (g *CallGraph) scanBody(info *types.Info, fn *types.Func, body *ast.BlockStmt) {
	// Identifiers appearing as the operator of a call: these are call
	// edges, every other function-valued identifier is a value taken.
	callIdents := make(map[*ast.Ident]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			callIdents[fun] = true
		case *ast.SelectorExpr:
			callIdents[fun.Sel] = true
		}
		if callee := CalleeFunc(info, call); callee != nil {
			g.calls[fn] = append(g.calls[fn], callee)
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || callIdents[id] {
			return true
		}
		if f, ok := info.Uses[id].(*types.Func); ok {
			g.values[fn] = append(g.values[fn], f)
		}
		return true
	})
}

// Funcs returns the functions declared in the scanned files, in
// declaration order.
func (g *CallGraph) Funcs() []*types.Func { return g.funcs }

// Decl returns the declaration of fn, or nil when fn is not declared in the
// scanned files (imported, or an interface method).
func (g *CallGraph) Decl(fn *types.Func) *ast.FuncDecl { return g.decls[fn] }

// Callees returns the functions fn calls: package-level functions and
// concrete methods for static calls, interface method objects for dynamic
// ones.
func (g *CallGraph) Callees(fn *types.Func) []*types.Func { return g.calls[fn] }

// ValuesTaken returns the named functions referenced as values (not
// called) inside fn — candidates to run wherever fn hands them.
func (g *CallGraph) ValuesTaken(fn *types.Func) []*types.Func { return g.values[fn] }

// Reachable walks call and value-taken edges breadth-first from roots and
// returns the set of functions reached, roots included. The optional
// expand hook contributes extra successors per function — e.g. resolving
// interface method edges to their local implementations.
func (g *CallGraph) Reachable(roots []*types.Func, expand func(*types.Func) []*types.Func) map[*types.Func]bool {
	seen := make(map[*types.Func]bool)
	queue := append([]*types.Func(nil), roots...)
	for _, r := range queue {
		seen[r] = true
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		next := append(append([]*types.Func(nil), g.calls[fn]...), g.values[fn]...)
		if expand != nil {
			next = append(next, expand(fn)...)
		}
		for _, s := range next {
			if !seen[s] {
				seen[s] = true
				queue = append(queue, s)
			}
		}
	}
	return seen
}

// IsInterfaceMethod reports whether fn is declared by an interface type
// (its calls dispatch dynamically).
func IsInterfaceMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return types.IsInterface(sig.Recv().Type())
}

// Implementations returns, for an interface method, the corresponding
// concrete methods of pkg's package-level named types that satisfy the
// interface (through value or pointer receiver).
func Implementations(pkg *types.Package, ifaceFn *types.Func) []*types.Func {
	sig, ok := ifaceFn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	iface, ok := sig.Recv().Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var impls []*types.Func
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		T := tn.Type()
		if types.IsInterface(T) {
			continue
		}
		recv := T
		if !types.Implements(T, iface) {
			ptr := types.NewPointer(T)
			if !types.Implements(ptr, iface) {
				continue
			}
			recv = ptr
		}
		obj, _, _ := types.LookupFieldOrMethod(recv, true, pkg, ifaceFn.Name())
		if m, ok := obj.(*types.Func); ok {
			impls = append(impls, m)
		}
	}
	return impls
}

// directiveMarker prefixes the analyzer control comments mobilevet owns.
const directiveMarker = "//mobilevet:"

// FuncDirective scans a function declaration's doc comment for a
// //mobilevet:<name> directive and returns its trailing argument text
// (trimmed, possibly empty) and whether the directive is present.
func FuncDirective(fd *ast.FuncDecl, name string) (string, bool) {
	if fd == nil || fd.Doc == nil {
		return "", false
	}
	for _, c := range fd.Doc.List {
		rest, ok := strings.CutPrefix(c.Text, directiveMarker+name)
		if !ok {
			continue
		}
		if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
			continue // e.g. //mobilevet:hotpathXYZ — a different word
		}
		return strings.TrimSpace(rest), true
	}
	return "", false
}
