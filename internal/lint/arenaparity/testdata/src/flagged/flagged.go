// Fixture: arena-backed views escaping their round loop body — carried in a
// loop-external variable, accumulated into a container, and stashed into
// pre-sized slots — through direct binding, derivation, and header-copying
// append.
package flagged

import "mobilecongest/internal/congest"

func carryAcross(pr congest.PortRuntime, rounds int) congest.Msg {
	out := make([]congest.Msg, 4)
	var prev congest.Msg
	for r := 0; r < rounds; r++ {
		in := pr.ExchangePorts(out)
		m := in[0]
		if len(m) > len(prev) {
			prev = m // want `carried across rounds in prev`
		}
	}
	return prev
}

func accumulate(pr congest.PortRuntime, rounds int) []congest.Msg {
	out := make([]congest.Msg, 4)
	history := make([]congest.Msg, 0, rounds)
	for r := 0; r < rounds; r++ {
		in := pr.ExchangePorts(out)
		history = append(history, in[0]) // want `carried across rounds in history`
	}
	return history
}

func stashSlots(pr congest.PortRuntime, rounds int) {
	out := make([]congest.Msg, 4)
	slots := make([]congest.Msg, rounds)
	for r := 0; r < rounds; r++ {
		in := pr.ExchangePorts(out)
		slots[r] = in[1] // want `stored across rounds in slots`
	}
	_ = slots
}

// sniffTraffic retains a RoundTraffic payload view across the round boundary;
// the Get result lives in the same parity arena as the inboxes.
func sniffTraffic(pr congest.PortRuntime, tr *congest.RoundTraffic, rounds int) {
	out := make([]congest.Msg, 2)
	var heaviest congest.Msg
	for r := 0; r < rounds; r++ {
		pr.ExchangePorts(out)
		m := tr.Get(int32(r))
		if len(m) > len(heaviest) {
			heaviest = m // want `carried across rounds in heaviest`
		}
	}
	_ = heaviest
}
