// Fixture: the sanctioned view lifetimes — inbox reuse via direct
// acquisition assignment, same-round forwarding into the outbox, byte-copy
// retention via ellipsis append, accumulation confined to a round-body
// local, and a reasoned suppression for a harness that copies in time.
package clean

import "mobilecongest/internal/congest"

func relay(pr congest.PortRuntime, rounds, deg int) {
	out := make([]congest.Msg, deg)
	keep := make(congest.Msg, 0, 64)
	var in []congest.Msg
	for r := 0; r < rounds; r++ {
		in = pr.ExchangePorts(out) // canonical reuse: overwritten every round
		for p := range in {
			out[p] = in[(p+1)%len(in)] // forwarding: parity keeps views valid through collection
		}
		keep = append(keep[:0], in[0]...) // ellipsis spread copies the bytes out of the arena
		// Accumulation across a non-round inner loop stays inside the round body.
		var longest congest.Msg
		for _, m := range in {
			if len(m) > len(longest) {
				longest = m
			}
		}
		_ = longest
	}
	_ = keep
}

// probe samples the final round's view; the harness copies it before the
// next Run reuses the arena, so the carry is suppressed with the reason.
func probe(pr congest.PortRuntime, rounds int) congest.Msg {
	out := make([]congest.Msg, 1)
	var last congest.Msg
	for r := 0; r < rounds; r++ {
		in := pr.ExchangePorts(out)
		//lint:ignore arenaparity harness copies the view before the engine advances
		last = in[0]
	}
	return last
}
