// Package arenaparity defines an analyzer extending slabretain's taint to
// loop-carried flow. The inbox ExchangePorts returns (and the payloads
// RoundTraffic.Get exposes) are views into a parity double-buffered arena:
// the bytes stay valid through the NEXT round's collection — which is what
// makes same-round forwarding into the outbox safe — and are rewritten two
// rounds later. A view that survives the enclosing round body therefore
// reads rewritten bytes: a variable declared outside the round loop and
// assigned a view inside it, or a container accumulated across iterations,
// is a diagnostic. Struct-field and package-level retention is slabretain's
// half of the contract.
//
// A loop is a round loop when its body calls ExchangePorts — that is the
// call that advances rounds. Two patterns are exempt: assigning the
// acquisition call's own result to an outer variable (`in =
// pr.ExchangePorts(out)`, the canonical reuse), and writing views into the
// outbox slice passed to ExchangePorts (the engine copies payloads out of
// it at collection, within the parity window).
package arenaparity

import (
	"go/ast"
	"go/token"
	"go/types"

	"mobilecongest/internal/lint/analysis"
	"mobilecongest/internal/lint/lintutil"
)

// Analyzer flags arena-backed views that outlive their round loop body.
var Analyzer = &analysis.Analyzer{
	Name: "arenaparity",
	Doc: "flags arena-backed views (ExchangePorts inboxes, Get payloads) stored into variables or " +
		"containers that survive the enclosing round loop body; parity double-buffering rewrites " +
		"the bytes two rounds later — copy the payload instead",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if lintutil.IsCongest(pass.Pkg.Path()) {
		return nil // the engine owns the arenas; parity is its invariant to keep
	}
	for _, file := range pass.Files {
		if lintutil.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo

	// The outbox objects: slices this function hands to ExchangePorts.
	// Writes into them are same-round sends the engine copies out.
	outbox := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !lintutil.IsCongestMethod(info, call, "ExchangePorts") || len(call.Args) == 0 {
			return true
		}
		if id := lintutil.RootIdent(call.Args[0]); id != nil {
			if obj := lintutil.ObjOf(info, id); obj != nil {
				outbox[obj] = true
			}
		}
		return true
	})

	// Analyze every round loop. Loops are visited outermost-first by
	// Inspect; each is analyzed independently against its own body, so a
	// view bound inside a nested round loop and stored between the two
	// loops is the inner loop's finding.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch l := n.(type) {
		case *ast.ForStmt:
			body = l.Body
		case *ast.RangeStmt:
			body = l.Body
		default:
			return true
		}
		if !containsExchange(info, body) {
			return true
		}
		checkLoop(pass, n, body, outbox)
		return true
	})
}

// containsExchange reports whether the block calls ExchangePorts — the
// round-advancing call.
func containsExchange(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && lintutil.IsCongestMethod(info, call, "ExchangePorts") {
			found = true
		}
		return true
	})
	return found
}

// checkLoop taints the views acquired inside one round loop and flags
// stores that let them survive the loop body.
func checkLoop(pass *analysis.Pass, loop ast.Node, body *ast.BlockStmt, outbox map[types.Object]bool) {
	info := pass.TypesInfo
	c := &checker{pass: pass, taint: make(map[types.Object]bool)}

	// Fixpoint: seed from acquisition calls, propagate through locals and
	// range bindings anywhere in the loop body.
	for {
		before := len(c.taint)
		ast.Inspect(body, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				if len(s.Lhs) != len(s.Rhs) {
					return true
				}
				for i, rhs := range s.Rhs {
					if !isAcquisition(info, rhs) && !c.tainted(rhs) {
						continue
					}
					if id, ok := s.Lhs[i].(*ast.Ident); ok {
						if obj := lintutil.ObjOf(info, id); obj != nil {
							c.taint[obj] = true
						}
					}
				}
			case *ast.RangeStmt:
				if !c.tainted(s.X) {
					return true
				}
				for _, e := range []ast.Expr{s.Key, s.Value} {
					if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
						if obj := lintutil.ObjOf(info, id); obj != nil {
							c.taint[obj] = true
						}
					}
				}
			}
			return true
		})
		if len(c.taint) == before {
			break
		}
	}

	// Flag pass.
	ast.Inspect(body, func(n ast.Node) bool {
		s, ok := n.(*ast.AssignStmt)
		if !ok || len(s.Lhs) != len(s.Rhs) {
			return true
		}
		for i, rhs := range s.Rhs {
			if isAcquisition(info, rhs) {
				continue // `in = pr.ExchangePorts(out)`: the canonical reuse
			}
			if !c.tainted(rhs) {
				continue
			}
			c.checkStore(s.Lhs[i], rhs, loop, outbox)
		}
		return true
	})
}

// isAcquisition reports whether e is itself an arena-view-producing call.
func isAcquisition(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	return ok && lintutil.IsCongestMethod(info, call, "ExchangePorts", "Get")
}

type checker struct {
	pass  *analysis.Pass
	taint map[types.Object]bool
}

// tainted reports whether e evaluates to (or aliases) an arena-backed view
// acquired in this round loop.
func (c *checker) tainted(e ast.Expr) bool {
	info := c.pass.TypesInfo
	switch x := e.(type) {
	case *ast.ParenExpr:
		return c.tainted(x.X)
	case *ast.SliceExpr:
		return c.tainted(x.X)
	case *ast.UnaryExpr:
		return c.tainted(x.X)
	case *ast.CallExpr:
		if isAcquisition(info, e) {
			return true
		}
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "append" && len(x.Args) > 0 {
			if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
				// The result aliases the first argument's backing array;
				// later arguments copy IN — but without ... the copies are
				// slice headers that still point at the arena.
				if c.tainted(x.Args[0]) {
					return true
				}
				if x.Ellipsis == token.NoPos {
					for _, a := range x.Args[1:] {
						if c.tainted(a) {
							return true
						}
					}
				}
			}
		}
		return false
	default:
		if root := lintutil.RootIdent(e); root != nil {
			if obj := lintutil.ObjOf(info, root); obj != nil {
				return c.taint[obj]
			}
		}
		return false
	}
}

// checkStore flags a tainted store whose destination outlives the loop.
func (c *checker) checkStore(lhs, rhs ast.Expr, loop ast.Node, outbox map[types.Object]bool) {
	info := c.pass.TypesInfo
	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		obj := lintutil.ObjOf(info, l)
		if obj == nil || lintutil.DeclaredWithin(obj, loop) {
			return
		}
		if lintutil.IsPkgLevel(obj, c.pass.Pkg) {
			return // slabretain's finding
		}
		c.pass.Reportf(rhs.Pos(), "arena-backed view carried across rounds in %s; parity double-buffering rewrites its bytes two rounds later — copy the payload (append(dst[:0], m...))", l.Name)
	case *ast.IndexExpr, *ast.StarExpr:
		root := lintutil.RootIdent(lhs)
		if root == nil {
			return
		}
		obj := lintutil.ObjOf(info, root)
		if obj == nil || outbox[obj] || lintutil.DeclaredWithin(obj, loop) {
			return
		}
		if lintutil.IsPkgLevel(obj, c.pass.Pkg) {
			return // slabretain's finding
		}
		c.pass.Reportf(rhs.Pos(), "arena-backed view stored across rounds in %s; parity double-buffering rewrites its bytes two rounds later — copy the payload", root.Name)
	}
	// Field stores (SelectorExpr) are slabretain's finding.
}
