package arenaparity_test

import (
	"testing"

	"mobilecongest/internal/lint/analysis/analysistest"
	"mobilecongest/internal/lint/arenaparity"
)

func TestArenaparity(t *testing.T) {
	analysistest.Run(t, "testdata/src", arenaparity.Analyzer, "flagged", "clean")
}
