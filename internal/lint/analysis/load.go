package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// The loader: a stdlib-only stand-in for golang.org/x/tools/go/packages.
// `go list -export -json -deps <patterns>` yields, for every package in the
// dependency closure, its source files plus a compiled export-data file; the
// target packages are then parsed and type-checked from source with their
// imports satisfied through go/importer's gc reader over those export
// files. This is exactly the go/packages LoadAllSyntax contract restricted
// to the target packages themselves, which is all a per-package analyzer
// needs.

// A Package is one type-checked target package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info

	// FactsOnly marks an in-module dependency loaded solely so
	// fact-exporting analyzers can run over it before its dependents;
	// diagnostics from such packages are discarded.
	FactsOnly bool
}

// listPackage is the subset of `go list -json` output the loader reads.
type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	CgoFiles   []string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// Load resolves patterns (import paths, ./... wildcards, or absolute
// directories) relative to dir — any directory inside the module — and
// returns the matched packages, parsed and type-checked. Test files are not
// loaded: the suite's invariants target production code, and tests
// deliberately exercise the legacy compat surfaces the analyzers reject
// (use `go vet -vettool` for test-inclusive runs).
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-export", "-json", "-deps", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	// go list -deps emits every package after its dependencies, so keeping
	// its order gives analyzers their fact-propagation order for free.
	dec := json.NewDecoder(&stdout)
	exports := make(map[string]string)
	var listed []*listPackage
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		q := p
		listed = append(listed, &q)
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, p := range listed {
		if p.DepOnly && p.Standard {
			continue // stdlib: export data suffices, no facts to compute
		}
		var paths []string
		for _, gf := range append(p.GoFiles, p.CgoFiles...) {
			if filepath.IsAbs(gf) {
				paths = append(paths, gf)
			} else {
				paths = append(paths, filepath.Join(p.Dir, gf))
			}
		}
		pkg, err := checkPackage(fset, imp, p.ImportPath, p.Dir, paths, "")
		if err != nil {
			return nil, err
		}
		pkg.FactsOnly = p.DepOnly
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// CheckFiles type-checks an explicit file list as one package — the
// unitchecker entry point, where the go command has already planned the
// build and supplies per-import export files through lookup.
func CheckFiles(importPath string, goFiles []string, goVersion string, lookup func(path string) (io.ReadCloser, error)) (*Package, error) {
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", lookup)
	var dir string
	if len(goFiles) > 0 {
		dir = filepath.Dir(goFiles[0])
	}
	return checkPackage(fset, imp, importPath, dir, goFiles, goVersion)
}

// checkPackage parses and type-checks one package's files (absolute paths).
func checkPackage(fset *token.FileSet, imp types.Importer, importPath, dir string, goFiles []string, goVersion string) (*Package, error) {
	var files []*ast.File
	for _, gf := range goFiles {
		f, err := parser.ParseFile(fset, gf, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", gf, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp, GoVersion: goVersion}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		TypesInfo:  info,
	}, nil
}
