package analysis

import (
	"go/types"
	"os/exec"
	"strings"
	"testing"
)

// testFact is a minimal serializable fact carrying a payload so the
// round-trip can verify more than presence.
type testFact struct {
	Tag string `json:"tag"`
}

func (*testFact) AFact() {}

func moduleRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "list", "-m", "-f", "{{.Dir}}").Output()
	if err != nil {
		t.Fatalf("resolving module root: %v", err)
	}
	return strings.TrimSpace(string(out))
}

// findPkg returns the loaded package with the given import path.
func findPkg(t *testing.T, pkgs []*Package, path string) *Package {
	t.Helper()
	for _, p := range pkgs {
		if p.ImportPath == path {
			return p
		}
	}
	t.Fatalf("package %s not in load result", path)
	return nil
}

const congestPath = "mobilecongest/internal/congest"

// TestObjectKeyRoundTrip checks that ObjectKey/ResolveKey agree for every
// addressable object shape: package-level funcs and types, concrete
// methods, and interface methods.
func TestObjectKeyRoundTrip(t *testing.T) {
	pkgs, err := Load(moduleRoot(t), "./internal/congest")
	if err != nil {
		t.Fatalf("loading congest: %v", err)
	}
	congest := findPkg(t, pkgs, congestPath)
	scope := congest.Types.Scope()

	var objs []types.Object
	// Package-level declarations.
	for _, name := range []string{"NewRunContext", "Observer", "RoundView"} {
		obj := scope.Lookup(name)
		if obj == nil {
			t.Fatalf("congest.%s not found", name)
		}
		objs = append(objs, obj)
	}
	// Interface methods of Observer.
	obs := scope.Lookup("Observer").Type().Underlying().(*types.Interface)
	for i := 0; i < obs.NumMethods(); i++ {
		objs = append(objs, obs.Method(i))
	}
	// A concrete method.
	rv := scope.Lookup("RoundView").Type().(*types.Named)
	for i := 0; i < rv.NumMethods(); i++ {
		objs = append(objs, rv.Method(i))
	}

	for _, obj := range objs {
		key := ObjectKey(obj)
		if key == "" {
			t.Errorf("ObjectKey(%v) = \"\"; want addressable", obj)
			continue
		}
		got := ResolveKey(congest.Types, key)
		if got == nil {
			t.Errorf("ResolveKey(%q) = nil", key)
			continue
		}
		if got.Name() != obj.Name() || ObjectKey(got) != key {
			t.Errorf("ResolveKey(%q) = %v; want %v", key, got, obj)
		}
	}
}

// TestFactExportImportRoundTrip drives the full contract: an analyzer
// exports facts on congest objects, the set serializes, a fresh load
// through the go list -deps loader decodes it, and the facts resolve to the
// same objects — including from a dependent package's pass, where congest
// is only visible through export data.
func TestFactExportImportRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks congest and a dependent")
	}
	root := moduleRoot(t)

	exporter := &Analyzer{
		Name:      "factexport",
		Doc:       "test: export facts on congest objects",
		FactTypes: []Fact{new(testFact)},
		Run: func(pass *Pass) error {
			if pass.Pkg.Path() != congestPath {
				return nil
			}
			scope := pass.Pkg.Scope()
			pass.ExportObjectFact(scope.Lookup("NewRunContext"), &testFact{Tag: "func"})
			obs := scope.Lookup("Observer").Type().Underlying().(*types.Interface)
			for i := 0; i < obs.NumMethods(); i++ {
				if m := obs.Method(i); m.Name() == "RoundStart" {
					pass.ExportObjectFact(m, &testFact{Tag: "ifacemethod"})
				}
			}
			return nil
		},
	}

	// Export pass over congest loaded from source.
	pkgs, err := Load(root, "./internal/congest")
	if err != nil {
		t.Fatalf("loading congest: %v", err)
	}
	store := NewFactStore()
	for _, p := range pkgs {
		if _, err := RunPackage(p, []*Analyzer{exporter}, store); err != nil {
			t.Fatalf("export pass: %v", err)
		}
	}
	set := store.Get(congestPath)
	if set == nil || set.Len() != 2 {
		t.Fatalf("exported facts = %v; want 2", set.Len())
	}

	// Serialize and decode — the vetx wire format.
	data, err := set.Encode()
	if err != nil {
		t.Fatalf("encoding: %v", err)
	}
	decoded, err := DecodeFactSet(data, FactRegistry([]*Analyzer{exporter}))
	if err != nil {
		t.Fatalf("decoding: %v", err)
	}
	if decoded.Len() != set.Len() {
		t.Fatalf("decoded %d facts; want %d", decoded.Len(), set.Len())
	}

	// Fresh load of a dependent: congest now comes in through export data,
	// so object identities differ from the export pass. The decoded facts
	// must still resolve.
	pkgs2, err := Load(root, "./internal/algorithms")
	if err != nil {
		t.Fatalf("loading algorithms: %v", err)
	}
	algs := findPkg(t, pkgs2, "mobilecongest/internal/algorithms")
	store2 := NewFactStore()
	store2.Set(congestPath, decoded)

	checked := false
	importer := &Analyzer{
		Name:      "factimport",
		Doc:       "test: import facts across the export-data boundary",
		FactTypes: []Fact{new(testFact)},
		Run: func(pass *Pass) error {
			if pass.Pkg.Path() != "mobilecongest/internal/algorithms" {
				return nil
			}
			var congestTypes *types.Package
			for _, imp := range pass.Pkg.Imports() {
				if imp.Path() == congestPath {
					congestTypes = imp
				}
			}
			if congestTypes == nil {
				t.Error("algorithms does not import congest through export data")
				return nil
			}
			var f testFact
			if !pass.ImportObjectFact(congestTypes.Scope().Lookup("NewRunContext"), &f) || f.Tag != "func" {
				t.Errorf("NewRunContext fact = %+v; want tag \"func\"", f)
			}
			obs := congestTypes.Scope().Lookup("Observer").Type().Underlying().(*types.Interface)
			found := false
			for i := 0; i < obs.NumMethods(); i++ {
				m := obs.Method(i)
				var g testFact
				if pass.ImportObjectFact(m, &g) {
					if m.Name() != "RoundStart" || g.Tag != "ifacemethod" {
						t.Errorf("unexpected fact %+v on %s", g, m.Name())
					}
					found = true
				}
			}
			if !found {
				t.Error("no fact resolved on Observer.RoundStart through export data")
			}
			if n := len(pass.AllObjectFacts()); n != 2 {
				t.Errorf("AllObjectFacts returned %d facts; want 2", n)
			}
			checked = true
			return nil
		},
	}
	if _, err := RunPackage(algs, []*Analyzer{importer}, store2); err != nil {
		t.Fatalf("import pass: %v", err)
	}
	if !checked {
		t.Fatal("import pass never ran over algorithms")
	}
}
