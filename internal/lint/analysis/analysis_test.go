package analysis_test

import (
	"strings"
	"testing"

	"mobilecongest/internal/lint/analysis"
)

// TestDirectiveHygiene pins the suppression contract: a directive without
// an analyzer list and reason is malformed, a directive whose analyzer runs
// but matches no diagnostic is stale, and a directive naming an analyzer
// outside the running set is left alone (it may be disabled by flag).
func TestDirectiveHygiene(t *testing.T) {
	pkgs, err := analysis.Load("testdata/src/directives", ".")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	noop := &analysis.Analyzer{
		Name: "noop",
		Doc:  "reports nothing",
		Run:  func(*analysis.Pass) error { return nil },
	}
	findings, err := analysis.RunAnalyzers(pkgs, []*analysis.Analyzer{noop})
	if err != nil {
		t.Fatalf("running: %v", err)
	}
	if len(findings) != 2 {
		t.Fatalf("got %d findings, want 2 (malformed + stale):\n%v", len(findings), findings)
	}
	if !strings.Contains(findings[0].Message, "malformed //lint:ignore") {
		t.Errorf("first finding = %v, want the malformed directive", findings[0])
	}
	if !strings.Contains(findings[1].Message, "unused //lint:ignore directive for noop") {
		t.Errorf("second finding = %v, want the stale directive", findings[1])
	}
	for _, f := range findings {
		if f.Analyzer != "lintdirective" {
			t.Errorf("finding %v attributed to %q, want lintdirective", f, f.Analyzer)
		}
	}
}
