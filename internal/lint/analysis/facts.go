package analysis

import (
	"encoding/json"
	"fmt"
	"go/types"
	"reflect"
	"sort"
	"strings"
)

// Facts: the cross-package half of the x/tools analysis contract, mirrored
// on stdlib. An analyzer that declares FactTypes may attach serializable
// facts to package-level objects of the package it is analyzing; when a
// dependent package is analyzed later (the loader yields packages in
// dependency order), the same analyzer can import those facts by object.
//
// x/tools keys facts by objectpath; this mirror uses a simpler name path
// that covers exactly the objects the mobilevet suite exports facts on:
// package-level functions, variables, types, methods of package-level named
// types ("T.M"), and interface methods ("Iface.M"). Object identity is
// deliberately not used as the key — a dependency seen through export data
// and the same dependency type-checked from source yield distinct
// *types.Package values, and the vetx round-trip under `go vet -vettool`
// crosses processes entirely — so facts are stored per import path under a
// stable textual key and re-resolved against whatever types.Package the
// consumer holds.

// A Fact is an observation about a package-level object, exported by one
// pass over the object's package and importable by passes over dependent
// packages. Implementations must be JSON-serializable (exported fields) and
// implement the marker method.
type Fact interface {
	AFact() // marker: only fact types implement this
}

// ObjectFact is one (object, fact) pair, as returned by AllObjectFacts.
type ObjectFact struct {
	Obj  types.Object
	Fact Fact
}

// ObjectKey returns the stable textual key facts are stored under for obj,
// or "" when the object is not fact-addressable (locals, closures,
// non-package-level declarations). Keys are "Name" for package-level
// objects and "Type.Method" for methods of package-level named types,
// including interface methods.
func ObjectKey(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	if obj.Parent() == obj.Pkg().Scope() {
		return obj.Name()
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	recv := sig.Recv().Type()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	switch t := recv.(type) {
	case *types.Named:
		tn := t.Obj()
		if tn.Pkg() == nil || tn.Parent() != tn.Pkg().Scope() {
			return ""
		}
		return tn.Name() + "." + fn.Name()
	case *types.Interface:
		// Explicit interface method whose receiver is the bare interface
		// type: recover the named owner by scanning the package scope for
		// the type that declares this exact method.
		scope := fn.Pkg().Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok {
				continue
			}
			iface, ok := tn.Type().Underlying().(*types.Interface)
			if !ok {
				continue
			}
			for i := 0; i < iface.NumExplicitMethods(); i++ {
				if iface.ExplicitMethod(i) == fn {
					return tn.Name() + "." + fn.Name()
				}
			}
		}
		return ""
	}
	return ""
}

// ResolveKey finds the object key names inside pkg: a package-level object,
// or a method (concrete or interface) of a package-level named type.
func ResolveKey(pkg *types.Package, key string) types.Object {
	if pkg == nil || key == "" {
		return nil
	}
	name, method, isMethod := strings.Cut(key, ".")
	obj := pkg.Scope().Lookup(name)
	if obj == nil {
		return nil
	}
	if !isMethod {
		return obj
	}
	tn, ok := obj.(*types.TypeName)
	if !ok {
		return nil
	}
	if iface, ok := tn.Type().Underlying().(*types.Interface); ok {
		for i := 0; i < iface.NumMethods(); i++ {
			if m := iface.Method(i); m.Name() == method {
				return m
			}
		}
		return nil
	}
	named, ok := tn.Type().(*types.Named)
	if !ok {
		return nil
	}
	for i := 0; i < named.NumMethods(); i++ {
		if m := named.Method(i); m.Name() == method {
			return m
		}
	}
	return nil
}

// factName is the registry name of a fact type: its bare struct name.
// Distinct analyzers must therefore use distinct fact type names, which the
// suite does (HotPathFact etc.).
func factName(f Fact) string {
	t := reflect.TypeOf(f)
	if t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	return t.Name()
}

// A FactSet holds the facts exported on one package's objects, keyed by
// ObjectKey then fact type name.
type FactSet struct {
	m map[string]map[string]Fact
}

// NewFactSet returns an empty fact set.
func NewFactSet() *FactSet { return &FactSet{m: make(map[string]map[string]Fact)} }

// put records fact under key, replacing any prior fact of the same type.
func (s *FactSet) put(key string, fact Fact) {
	if s.m[key] == nil {
		s.m[key] = make(map[string]Fact)
	}
	s.m[key][factName(fact)] = fact
}

// get copies the stored fact of ptr's type at key into ptr, reporting
// whether one was found.
func (s *FactSet) get(key string, ptr Fact) bool {
	if s == nil || key == "" {
		return false
	}
	f, ok := s.m[key][factName(ptr)]
	if !ok {
		return false
	}
	// Copy the stored value into the caller's pointer, x/tools-style.
	dst := reflect.ValueOf(ptr).Elem()
	src := reflect.ValueOf(f)
	if src.Kind() == reflect.Pointer {
		src = src.Elem()
	}
	dst.Set(src)
	return true
}

// Len reports the number of (object, fact) pairs in the set.
func (s *FactSet) Len() int {
	n := 0
	for _, byType := range s.m {
		n += len(byType)
	}
	return n
}

// wireFact is the serialized form of one fact.
type wireFact struct {
	Obj  string          `json:"obj"`
	Type string          `json:"type"`
	Data json.RawMessage `json:"data"`
}

// Encode serializes the set deterministically (sorted by object key, then
// fact type) — the payload of a vetx file.
func (s *FactSet) Encode() ([]byte, error) {
	keys := make([]string, 0, len(s.m))
	for key := range s.m {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	var wire []wireFact
	for _, key := range keys {
		byType := s.m[key]
		names := make([]string, 0, len(byType))
		for name := range byType {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			data, err := json.Marshal(byType[name])
			if err != nil {
				return nil, fmt.Errorf("encoding fact %s on %q: %v", name, key, err)
			}
			wire = append(wire, wireFact{Obj: key, Type: name, Data: data})
		}
	}
	return json.Marshal(wire)
}

// DecodeFactSet reconstructs a fact set from Encode output. Fact types are
// resolved through the registry built from the running analyzers'
// FactTypes; facts of unknown types are skipped (an analyzer disabled this
// run cannot consume them anyway).
func DecodeFactSet(data []byte, registry map[string]reflect.Type) (*FactSet, error) {
	s := NewFactSet()
	if len(data) == 0 {
		return s, nil
	}
	var wire []wireFact
	if err := json.Unmarshal(data, &wire); err != nil {
		return nil, fmt.Errorf("decoding fact set: %v", err)
	}
	for _, w := range wire {
		rt, ok := registry[w.Type]
		if !ok {
			continue
		}
		ptr := reflect.New(rt)
		if err := json.Unmarshal(w.Data, ptr.Interface()); err != nil {
			return nil, fmt.Errorf("decoding fact %s on %q: %v", w.Type, w.Obj, err)
		}
		s.put(w.Obj, ptr.Interface().(Fact))
	}
	return s, nil
}

// FactRegistry maps fact type names to their reflect types for the given
// analyzers — the decode side of the wire format.
func FactRegistry(analyzers []*Analyzer) map[string]reflect.Type {
	reg := make(map[string]reflect.Type)
	for _, a := range analyzers {
		for _, f := range a.FactTypes {
			t := reflect.TypeOf(f)
			if t.Kind() == reflect.Pointer {
				t = t.Elem()
			}
			reg[t.Name()] = t
		}
	}
	return reg
}

// FactStore accumulates per-package fact sets across an analysis run,
// keyed by import path (identity-free: see the package comment).
type FactStore struct {
	byPath map[string]*FactSet
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore { return &FactStore{byPath: make(map[string]*FactSet)} }

// Set installs the fact set for an import path (e.g. decoded from a vetx
// file, or produced by analyzing the package earlier in dependency order).
func (st *FactStore) Set(path string, s *FactSet) { st.byPath[path] = s }

// Get returns the fact set for an import path, or nil.
func (st *FactStore) Get(path string) *FactSet { return st.byPath[path] }

// ensure returns the fact set for path, creating it if absent.
func (st *FactStore) ensure(path string) *FactSet {
	s := st.byPath[path]
	if s == nil {
		s = NewFactSet()
		st.byPath[path] = s
	}
	return s
}
