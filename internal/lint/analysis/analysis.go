// Package analysis is a self-contained, stdlib-only skeleton of the
// golang.org/x/tools/go/analysis API: an Analyzer inspects one type-checked
// package through a Pass and reports Diagnostics. The build environment for
// this repository vendors no third-party modules, so the x/tools framework
// is mirrored here at the small surface the mobilevet suite needs — the
// Analyzer/Pass shape is kept intentionally identical so the analyzers read
// (and could be ported) as ordinary x/tools analyzers.
//
// Suppression: a diagnostic is dropped when the offending line, or the line
// directly above it, carries a directive comment
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// naming the analyzer. The reason is mandatory; a directive without one is
// itself reported. This is the same contract staticcheck uses, so editors
// already highlight it.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one analysis pass: a named invariant checked over a
// single type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, disable flags, and
	// //lint:ignore directives. It must be a valid Go identifier.
	Name string

	// Doc is the help text: first line is a one-sentence summary.
	Doc string

	// Run applies the analyzer to one package and reports findings through
	// pass.Report / pass.Reportf.
	Run func(pass *Pass) error
}

// A Pass presents one package to an Analyzer.Run and collects its
// diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report adds a diagnostic. Analyzers normally call Reportf.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding: a position plus a message.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// A Finding is a diagnostic resolved against its analyzer and position —
// what drivers print and tests match.
type Finding struct {
	Analyzer string
	Posn     token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Posn, f.Message, f.Analyzer)
}

// IgnoreDirective is one parsed //lint:ignore comment.
type IgnoreDirective struct {
	Analyzers []string // analyzer names the directive silences
	Reason    string   // mandatory justification
	Line      int      // line the comment sits on
	File      string
	Pos       token.Pos
	Used      bool // set when a diagnostic matched it
}

// directivePrefix is what an ignore comment starts with.
const directivePrefix = "//lint:ignore"

// ParseDirectives extracts the //lint:ignore directives of a file.
// Malformed directives (no analyzer list or no reason) are returned as
// errors positioned at the comment.
func ParseDirectives(fset *token.FileSet, file *ast.File) ([]*IgnoreDirective, []Finding) {
	var dirs []*IgnoreDirective
	var bad []Finding
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, directivePrefix) {
				continue
			}
			rest := strings.TrimPrefix(c.Text, directivePrefix)
			if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
				continue // e.g. //lint:ignoreXYZ — not ours
			}
			posn := fset.Position(c.Pos())
			fields := strings.Fields(rest)
			if len(fields) < 2 {
				bad = append(bad, Finding{
					Analyzer: "lintdirective",
					Posn:     posn,
					Message:  "malformed //lint:ignore directive: want \"//lint:ignore <analyzer>[,...] <reason>\"",
				})
				continue
			}
			dirs = append(dirs, &IgnoreDirective{
				Analyzers: strings.Split(fields[0], ","),
				Reason:    strings.Join(fields[1:], " "),
				Line:      posn.Line,
				File:      posn.Filename,
				Pos:       c.Pos(),
			})
		}
	}
	return dirs, bad
}

// matches reports whether the directive silences analyzer a for a
// diagnostic in file at line.
func (d *IgnoreDirective) matches(a, file string, line int) bool {
	if d.File != file || (d.Line != line && d.Line != line-1) {
		return false
	}
	for _, name := range d.Analyzers {
		if name == a {
			return true
		}
	}
	return false
}

// RunAnalyzers applies analyzers to pkgs and returns the surviving findings
// in file/line order. Suppressed diagnostics are dropped; malformed or
// unused //lint:ignore directives are themselves reported (an unused
// directive is stale and would otherwise rot silently).
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		var dirs []*IgnoreDirective
		for _, f := range pkg.Files {
			fd, bad := ParseDirectives(pkg.Fset, f)
			dirs = append(dirs, fd...)
			findings = append(findings, bad...)
		}
		for _, a := range analyzers {
			var diags []Diagnostic
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Report:    func(d Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %v", pkg.ImportPath, a.Name, err)
			}
		diag:
			for _, d := range diags {
				posn := pkg.Fset.Position(d.Pos)
				for _, dir := range dirs {
					if dir.matches(a.Name, posn.Filename, posn.Line) {
						dir.Used = true
						continue diag
					}
				}
				findings = append(findings, Finding{Analyzer: a.Name, Posn: posn, Message: d.Message})
			}
		}
		running := make(map[string]bool, len(analyzers))
		for _, a := range analyzers {
			running[a.Name] = true
		}
		for _, dir := range dirs {
			// A directive naming an analyzer that is not running this
			// invocation (disabled by flag) cannot be proven stale.
			allRunning := true
			for _, name := range dir.Analyzers {
				if !running[name] {
					allRunning = false
					break
				}
			}
			if allRunning && !dir.Used {
				findings = append(findings, Finding{
					Analyzer: "lintdirective",
					Posn:     pkg.Fset.Position(dir.Pos),
					Message:  fmt.Sprintf("unused //lint:ignore directive for %s", strings.Join(dir.Analyzers, ",")),
				})
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Posn.Filename != b.Posn.Filename {
			return a.Posn.Filename < b.Posn.Filename
		}
		if a.Posn.Line != b.Posn.Line {
			return a.Posn.Line < b.Posn.Line
		}
		if a.Posn.Column != b.Posn.Column {
			return a.Posn.Column < b.Posn.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}
