// Package analysis is a self-contained, stdlib-only skeleton of the
// golang.org/x/tools/go/analysis API: an Analyzer inspects one type-checked
// package through a Pass and reports Diagnostics. The build environment for
// this repository vendors no third-party modules, so the x/tools framework
// is mirrored here at the small surface the mobilevet suite needs — the
// Analyzer/Pass shape is kept intentionally identical so the analyzers read
// (and could be ported) as ordinary x/tools analyzers.
//
// Suppression: a diagnostic is dropped when the offending line, or the line
// directly above it, carries a directive comment
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// naming the analyzer. The reason is mandatory; a directive without one is
// itself reported. This is the same contract staticcheck uses, so editors
// already highlight it.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one analysis pass: a named invariant checked over a
// single type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, disable flags, and
	// //lint:ignore directives. It must be a valid Go identifier.
	Name string

	// Doc is the help text: first line is a one-sentence summary.
	Doc string

	// Run applies the analyzer to one package and reports findings through
	// pass.Report / pass.Reportf.
	Run func(pass *Pass) error

	// FactTypes lists prototype values of the Fact types this analyzer
	// exports or imports. An analyzer with FactTypes also runs, diagnostics
	// discarded, over in-module dependency packages so its facts reach the
	// packages under analysis.
	FactTypes []Fact
}

// A Pass presents one package to an Analyzer.Run and collects its
// diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report adds a diagnostic. Analyzers normally call Reportf.
	Report func(Diagnostic)

	// facts is the run-wide store: dependency packages' sets are already
	// populated when this pass runs (dependency-ordered execution), and
	// exports land in this package's set.
	facts *FactStore
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// ExportObjectFact attaches fact to obj, which must be a fact-addressable
// (package-level, or method of a package-level type) object of the package
// under analysis. The fact becomes visible to later passes over dependent
// packages and is serialized into the vetx file under `go vet -vettool`.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if obj == nil || obj.Pkg() != p.Pkg {
		panic(fmt.Sprintf("%s: ExportObjectFact: object %v not in package %s", p.Analyzer.Name, obj, p.Pkg.Path()))
	}
	key := ObjectKey(obj)
	if key == "" {
		panic(fmt.Sprintf("%s: ExportObjectFact: object %v is not fact-addressable", p.Analyzer.Name, obj))
	}
	p.facts.ensure(p.Pkg.Path()).put(key, fact)
}

// ImportObjectFact copies the fact of ptr's type attached to obj (in this
// package or any dependency) into ptr, reporting whether one exists.
func (p *Pass) ImportObjectFact(obj types.Object, ptr Fact) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return p.facts.Get(obj.Pkg().Path()).get(ObjectKey(obj), ptr)
}

// AllObjectFacts returns every (object, fact) pair visible to this pass:
// facts on this package's objects plus facts on objects of directly
// imported packages, in deterministic (package path, object key) order.
func (p *Pass) AllObjectFacts() []ObjectFact {
	pkgs := append([]*types.Package{p.Pkg}, p.Pkg.Imports()...)
	sort.Slice(pkgs[1:], func(i, j int) bool { return pkgs[i+1].Path() < pkgs[j+1].Path() })
	var out []ObjectFact
	for _, pkg := range pkgs {
		set := p.facts.Get(pkg.Path())
		if set == nil {
			continue
		}
		keys := make([]string, 0, len(set.m))
		for key := range set.m {
			keys = append(keys, key)
		}
		sort.Strings(keys)
		for _, key := range keys {
			obj := ResolveKey(pkg, key)
			if obj == nil {
				continue
			}
			names := make([]string, 0, len(set.m[key]))
			for name := range set.m[key] {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				out = append(out, ObjectFact{Obj: obj, Fact: set.m[key][name]})
			}
		}
	}
	return out
}

// A Diagnostic is one finding: a position plus a message.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// A Finding is a diagnostic resolved against its analyzer and position —
// what drivers print and tests match. Suppressed findings (matched by a
// reasoned //lint:ignore) are retained for machine-readable output; text
// drivers and gates must filter them with Active.
type Finding struct {
	Analyzer   string
	Posn       token.Position
	Message    string
	Suppressed bool
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Posn, f.Message, f.Analyzer)
}

// Active filters findings down to the unsuppressed ones — what fails a
// build.
func Active(findings []Finding) []Finding {
	var out []Finding
	for _, f := range findings {
		if !f.Suppressed {
			out = append(out, f)
		}
	}
	return out
}

// IgnoreDirective is one parsed //lint:ignore comment.
type IgnoreDirective struct {
	Analyzers []string // analyzer names the directive silences
	Reason    string   // mandatory justification
	Line      int      // line the comment sits on
	File      string
	Pos       token.Pos
	Used      bool // set when a diagnostic matched it
}

// directivePrefix is what an ignore comment starts with.
const directivePrefix = "//lint:ignore"

// ParseDirectives extracts the //lint:ignore directives of a file.
// Malformed directives (no analyzer list or no reason) are returned as
// errors positioned at the comment.
func ParseDirectives(fset *token.FileSet, file *ast.File) ([]*IgnoreDirective, []Finding) {
	var dirs []*IgnoreDirective
	var bad []Finding
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, directivePrefix) {
				continue
			}
			rest := strings.TrimPrefix(c.Text, directivePrefix)
			if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
				continue // e.g. //lint:ignoreXYZ — not ours
			}
			posn := fset.Position(c.Pos())
			fields := strings.Fields(rest)
			if len(fields) < 2 {
				bad = append(bad, Finding{
					Analyzer: "lintdirective",
					Posn:     posn,
					Message:  "malformed //lint:ignore directive: want \"//lint:ignore <analyzer>[,...] <reason>\"",
				})
				continue
			}
			dirs = append(dirs, &IgnoreDirective{
				Analyzers: strings.Split(fields[0], ","),
				Reason:    strings.Join(fields[1:], " "),
				Line:      posn.Line,
				File:      posn.Filename,
				Pos:       c.Pos(),
			})
		}
	}
	return dirs, bad
}

// matches reports whether the directive silences analyzer a for a
// diagnostic in file at line.
func (d *IgnoreDirective) matches(a, file string, line int) bool {
	if d.File != file || (d.Line != line && d.Line != line-1) {
		return false
	}
	for _, name := range d.Analyzers {
		if name == a {
			return true
		}
	}
	return false
}

// RunAnalyzers applies analyzers to pkgs — which the loader yields in
// dependency order, dependencies first — and returns the findings in
// file/line order. Packages marked FactsOnly (in-module dependencies of the
// requested patterns) get fact-exporting analyzers only, diagnostics
// discarded: their job is to populate the fact store the real targets read.
// Diagnostics matched by a reasoned //lint:ignore are kept but marked
// Suppressed; malformed or unused //lint:ignore directives are themselves
// reported (an unused directive is stale and would otherwise rot silently).
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	store := NewFactStore()
	var findings []Finding
	for _, pkg := range pkgs {
		fs, err := RunPackage(pkg, analyzers, store)
		if err != nil {
			return nil, err
		}
		findings = append(findings, fs...)
	}
	SortFindings(findings)
	return findings, nil
}

// RunPackage applies analyzers to one package against a shared fact store
// whose dependency sets are already populated. Unitchecker drivers call
// this directly with a store decoded from vetx files.
func RunPackage(pkg *Package, analyzers []*Analyzer, store *FactStore) ([]Finding, error) {
	var findings []Finding
	var dirs []*IgnoreDirective
	if !pkg.FactsOnly {
		for _, f := range pkg.Files {
			fd, bad := ParseDirectives(pkg.Fset, f)
			dirs = append(dirs, fd...)
			findings = append(findings, bad...)
		}
	}
	for _, a := range analyzers {
		if pkg.FactsOnly && len(a.FactTypes) == 0 {
			continue
		}
		var diags []Diagnostic
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			Report:    func(d Diagnostic) { diags = append(diags, d) },
			facts:     store,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %v", pkg.ImportPath, a.Name, err)
		}
		if pkg.FactsOnly {
			continue // facts recorded; the diagnostics belong to target runs
		}
		for _, d := range diags {
			posn := pkg.Fset.Position(d.Pos)
			f := Finding{Analyzer: a.Name, Posn: posn, Message: d.Message}
			for _, dir := range dirs {
				if dir.matches(a.Name, posn.Filename, posn.Line) {
					dir.Used = true
					f.Suppressed = true
					break
				}
			}
			findings = append(findings, f)
		}
	}
	if pkg.FactsOnly {
		return nil, nil
	}
	running := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		running[a.Name] = true
	}
	for _, dir := range dirs {
		// A directive naming an analyzer that is not running this
		// invocation (disabled by flag) cannot be proven stale.
		allRunning := true
		for _, name := range dir.Analyzers {
			if !running[name] {
				allRunning = false
				break
			}
		}
		if allRunning && !dir.Used {
			findings = append(findings, Finding{
				Analyzer: "lintdirective",
				Posn:     pkg.Fset.Position(dir.Pos),
				Message:  fmt.Sprintf("unused //lint:ignore directive for %s", strings.Join(dir.Analyzers, ",")),
			})
		}
	}
	return findings, nil
}

// SortFindings orders findings by file, line, column, then analyzer.
func SortFindings(findings []Finding) {
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Posn.Filename != b.Posn.Filename {
			return a.Posn.Filename < b.Posn.Filename
		}
		if a.Posn.Line != b.Posn.Line {
			return a.Posn.Line < b.Posn.Line
		}
		if a.Posn.Column != b.Posn.Column {
			return a.Posn.Column < b.Posn.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// PackageFacts exposes the facts exported on one package by a RunPackage
// call — what a unitchecker driver writes to its vetx output.
func PackageFacts(store *FactStore, path string) *FactSet {
	return store.Get(path)
}
