// Package analysistest runs an analyzer over fixture packages and checks
// its diagnostics against `// want` expectations, mirroring
// golang.org/x/tools/go/analysis/analysistest at the surface the mobilevet
// suite uses. A fixture line carries
//
//	code() // want `regexp` `another`
//
// and the test fails on any diagnostic without a matching expectation on
// its line, and on any expectation no diagnostic fulfilled.
package analysistest

import (
	"go/ast"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"mobilecongest/internal/lint/analysis"
)

var wantRe = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// Run loads each case directory under srcDir as one package, applies the
// analyzer through the same driver the mobilevet binary uses (so
// //lint:ignore suppression is part of what fixtures exercise), and
// verifies the findings against the // want comments.
func Run(t *testing.T, srcDir string, a *analysis.Analyzer, cases ...string) {
	t.Helper()
	for _, c := range cases {
		t.Run(c, func(t *testing.T) {
			runCase(t, filepath.Join(srcDir, c), a)
		})
	}
}

func runCase(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	pkgs, err := analysis.Load(dir, ".")
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}

	var wants []*expectation
	for _, pkg := range pkgs {
		if pkg.FactsOnly {
			continue // dependency loaded for facts; its files carry no wants
		}
		for _, f := range pkg.Files {
			wants = append(wants, parseWants(t, pkg, f)...)
		}
	}

	all, err := analysis.RunAnalyzers(pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}
	findings := analysis.Active(all)

finding:
	for _, f := range findings {
		for _, w := range wants {
			if w.matched || w.file != f.Posn.Filename || w.line != f.Posn.Line {
				continue
			}
			if w.re.MatchString(f.Message) {
				w.matched = true
				continue finding
			}
		}
		t.Errorf("unexpected diagnostic: %s", f)
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched `%s`", w.file, w.line, w.re)
		}
	}
}

// parseWants extracts the // want expectations of one file.
func parseWants(t *testing.T, pkg *analysis.Package, f *ast.File) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "// want ")
			if !ok {
				continue
			}
			posn := pkg.Fset.Position(c.Pos())
			for _, q := range wantRe.FindAllString(text, -1) {
				var pat string
				if q[0] == '`' {
					pat = q[1 : len(q)-1]
				} else {
					var err error
					if pat, err = strconv.Unquote(q); err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", posn, q, err)
					}
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s: bad want regexp %s: %v", posn, pat, err)
				}
				wants = append(wants, &expectation{file: posn.Filename, line: posn.Line, re: re})
			}
		}
	}
	return wants
}
