// Fixture for directive parsing: one malformed directive, one stale one,
// and one naming an analyzer that is not running (tolerated).
package directives

//lint:ignore
func malformed() {}

func stale() {
	//lint:ignore noop this suppression matches no diagnostic and must be reported stale
	_ = 1
}

func disabled() {
	//lint:ignore someother a directive for a non-running analyzer cannot be proven stale
	_ = 2
}
