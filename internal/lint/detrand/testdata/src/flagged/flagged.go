// Fixture: ambient randomness and wall-clock reads inside an internal
// package.
package flagged

import (
	crand "crypto/rand" // want `OS randomness is never deterministic`
	"math/rand"
	"time"
)

func globalSource() int {
	return rand.Intn(10) // want `ambient global source`
}

func wallClock() int64 {
	return time.Now().UnixNano() // want `reads the wall clock`
}

func osEntropy(buf []byte) {
	crand.Read(buf)
}
