// Fixture: randomness flowing from an explicit seed, and a reasoned
// suppression for a harness-level wall-clock read.
package clean

import (
	"math/rand"
	"time"
)

func seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

func wallClockTimer() time.Time {
	//lint:ignore detrand wall-clock timing of the whole run never feeds protocol state
	return time.Now()
}
