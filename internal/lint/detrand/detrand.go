// Package detrand defines an analyzer enforcing the repository's
// bit-determinism contract inside the simulator's internal packages: every
// run is a pure function of its cell seed, so protocol, adversary, and
// compiler code must draw randomness only from the seeded RNGs the runtime
// hands out (Runtime.Rand, SelectorState, cell-seeded rand.New sources) and
// must never read the wall clock. Ambient randomness — the math/rand
// top-level functions backed by the global source, crypto/rand, time.Now —
// silently breaks reproducibility and the 120-trial cross-engine
// equivalence suite.
package detrand

import (
	"go/ast"
	"go/types"
	"strconv"

	"mobilecongest/internal/lint/analysis"
	"mobilecongest/internal/lint/lintutil"
)

// Analyzer flags ambient (non-seeded) randomness and wall-clock reads in
// internal packages.
var Analyzer = &analysis.Analyzer{
	Name: "detrand",
	Doc: "flags math/rand top-level functions, time.Now, and crypto/rand in internal " +
		"packages, where all randomness must flow from the cell-seeded RNGs",
	Run: run,
}

// seededConstructors are the math/rand entry points that take an explicit
// source or seed — the only sanctioned way into the package.
var seededConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
	// math/rand/v2
	"NewPCG":     true,
	"NewChaCha8": true,
}

func run(pass *analysis.Pass) error {
	if !lintutil.IsInternal(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		if lintutil.IsTestFile(pass.Fset, file.Pos()) {
			continue // test code may time itself
		}
		for _, imp := range file.Imports {
			if p, err := strconv.Unquote(imp.Path.Value); err == nil && p == "crypto/rand" {
				pass.Reportf(imp.Pos(), "import of crypto/rand: OS randomness is never deterministic; derive bytes from the run's seeded RNG")
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // methods (e.g. (*rand.Rand).Intn) are fine: the receiver carries the seed
			}
			switch fn.Pkg().Path() {
			case "math/rand", "math/rand/v2":
				if !seededConstructors[fn.Name()] {
					pass.Reportf(id.Pos(), "call to %s.%s uses the ambient global source; use the runtime's seeded *rand.Rand", fn.Pkg().Path(), fn.Name())
				}
			case "time":
				switch fn.Name() {
				case "Now", "Since", "Until":
					pass.Reportf(id.Pos(), "call to time.%s reads the wall clock; simulated time must be a function of rounds and the cell seed", fn.Name())
				}
			}
			return true
		})
	}
	return nil
}
