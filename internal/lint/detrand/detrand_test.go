package detrand_test

import (
	"testing"

	"mobilecongest/internal/lint/analysis/analysistest"
	"mobilecongest/internal/lint/detrand"
)

func TestDetrand(t *testing.T) {
	analysistest.Run(t, "testdata/src", detrand.Analyzer, "flagged", "clean")
}
