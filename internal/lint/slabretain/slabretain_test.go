package slabretain_test

import (
	"testing"

	"mobilecongest/internal/lint/analysis/analysistest"
	"mobilecongest/internal/lint/slabretain"
)

func TestSlabretain(t *testing.T) {
	analysistest.Run(t, "testdata/src", slabretain.Analyzer, "flagged", "clean")
}
