// Package slabretain defines an analyzer guarding the zero-alloc slab
// pipeline's ownership contract: the slices handed out by
// PortRuntime.ExchangePorts and OutBuf, and the Traffic/RoundView
// materializations at the adversary boundary, all alias per-run buffers on
// RunContext that the engine reuses every round. Storing such a view past
// the round — in a struct field, a package-level variable, or a closure
// that escapes — is a silent-corruption bug: the data under the alias is
// overwritten by the next round with no fault the race detector or tests
// can see. The analyzer tracks these slab views through local assignments
// and flags stores that outlive the round.
package slabretain

import (
	"go/ast"
	"go/types"

	"mobilecongest/internal/lint/analysis"
	"mobilecongest/internal/lint/lintutil"
)

// Analyzer flags slab-backed views retained past the round that produced
// them.
var Analyzer = &analysis.Analyzer{
	Name: "slabretain",
	Doc: "flags storing a slice obtained from ExchangePorts/OutBuf/Get or a Traffic/RoundView " +
		"view into a struct field, package-level variable, or escaping closure; the slabs " +
		"are reused every round, so retention silently corrupts",
	Run: run,
}

// slabMethods are the congest methods whose results alias reused round
// buffers (All yields the buffer's Msg payloads through its iterator, and
// Get's payloads are views into the round's packed arena).
var slabMethods = []string{"ExchangePorts", "OutBuf", "Traffic", "All", "Get"}

// viewTypes are congest types whose values are themselves round-scoped
// views (observer and adversary callback parameters).
var viewTypes = map[string]bool{"RoundView": true, "RoundTraffic": true}

func run(pass *analysis.Pass) error {
	if lintutil.IsCongest(pass.Pkg.Path()) {
		return nil // the engine owns the slabs; retention there is its business
	}
	for _, file := range pass.Files {
		if lintutil.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// checkFunc runs the per-function taint pass: seed round-scoped values,
// propagate through local assignments to a fixpoint, then flag escaping
// stores. Nested function literals share the taint environment, so a
// closure capturing a slab view is analyzed with it visible.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	c := &checker{pass: pass, taint: make(map[types.Object]bool)}

	// Parameters of round-view type are round-scoped on arrival.
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				if obj := pass.TypesInfo.Defs[name]; obj != nil && isViewType(obj.Type()) {
					c.taint[obj] = true
				}
			}
		}
	}

	// Propagate taint through simple assignments and range bindings (the
	// payloads an inbox or view yields alias the same slab) until stable.
	for {
		before := len(c.taint)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				if len(s.Lhs) != len(s.Rhs) {
					return true
				}
				for i, rhs := range s.Rhs {
					if !c.tainted(rhs) {
						continue
					}
					if id, ok := s.Lhs[i].(*ast.Ident); ok {
						if obj := lintutil.ObjOf(pass.TypesInfo, id); obj != nil && lintutil.DeclaredWithin(obj, fd) {
							c.taint[obj] = true
						}
					}
				}
			case *ast.RangeStmt:
				if !c.tainted(s.X) {
					return true
				}
				for _, e := range []ast.Expr{s.Key, s.Value} {
					if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
						if obj := lintutil.ObjOf(pass.TypesInfo, id); obj != nil {
							c.taint[obj] = true
						}
					}
				}
			}
			return true
		})
		if len(c.taint) == before {
			break
		}
	}

	// Flag escapes.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) != len(s.Rhs) {
				return true
			}
			for i, rhs := range s.Rhs {
				if !c.tainted(rhs) {
					continue
				}
				c.checkStore(s.Lhs[i], rhs)
			}
		case *ast.ReturnStmt:
			for _, res := range s.Results {
				if c.tainted(res) && isFuncValue(pass.TypesInfo, res) {
					pass.Reportf(res.Pos(), "closure capturing a reused slab view escapes via return; copy the data instead (the slab is rewritten next round)")
				}
			}
		}
		return true
	})
}

type checker struct {
	pass  *analysis.Pass
	taint map[types.Object]bool
}

// tainted reports whether e evaluates to (or aliases) a round-scoped slab
// view.
func (c *checker) tainted(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.ParenExpr:
		return c.tainted(x.X)
	case *ast.SliceExpr:
		return c.tainted(x.X)
	case *ast.UnaryExpr:
		return c.tainted(x.X)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if c.tainted(el) {
				return true
			}
		}
		return false
	case *ast.CallExpr:
		if lintutil.IsCongestMethod(c.pass.TypesInfo, x, slabMethods...) {
			return true
		}
		// append(slabView, ...) still aliases the slab when capacity allows.
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "append" && len(x.Args) > 0 {
			return c.tainted(x.Args[0])
		}
		return false
	case *ast.FuncLit:
		// A closure referencing a slab view carries it wherever it goes.
		captures := false
		ast.Inspect(x.Body, func(n ast.Node) bool {
			if captures {
				return false
			}
			if id, ok := n.(*ast.Ident); ok {
				if obj := lintutil.ObjOf(c.pass.TypesInfo, id); obj != nil && c.taint[obj] && !lintutil.DeclaredWithin(obj, x) {
					captures = true
				}
			}
			return true
		})
		return captures
	default:
		if root := lintutil.RootIdent(e); root != nil {
			if obj := lintutil.ObjOf(c.pass.TypesInfo, root); obj != nil {
				return c.taint[obj]
			}
		}
		return false
	}
}

// checkStore flags stores of a tainted value into locations that outlive
// the round: struct fields and package-level variables.
func (c *checker) checkStore(lhs, rhs ast.Expr) {
	info := c.pass.TypesInfo
	switch l := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		if v, ok := info.Uses[l.Sel].(*types.Var); ok && v.IsField() {
			c.pass.Reportf(rhs.Pos(), "reused slab view stored in struct field %s; the backing buffer is rewritten next round — store a copy", l.Sel.Name)
			return
		}
		// Selector resolving to a package-level var of another package.
		if v, ok := info.Uses[l.Sel].(*types.Var); ok && v.Parent() != nil && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			c.pass.Reportf(rhs.Pos(), "reused slab view stored in package-level variable %s; store a copy", l.Sel.Name)
		}
	case *ast.Ident:
		if obj := lintutil.ObjOf(info, l); lintutil.IsPkgLevel(obj, c.pass.Pkg) {
			c.pass.Reportf(rhs.Pos(), "reused slab view stored in package-level variable %s; store a copy", l.Name)
		}
	case *ast.IndexExpr, *ast.StarExpr:
		if root := lintutil.RootIdent(lhs); root != nil {
			if obj := lintutil.ObjOf(info, root); lintutil.IsPkgLevel(obj, c.pass.Pkg) {
				c.pass.Reportf(rhs.Pos(), "reused slab view stored through package-level variable %s; store a copy", root.Name)
			}
		}
	}
}

// isViewType reports whether t is (a pointer to) a congest round-view type.
func isViewType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == lintutil.CongestPath && viewTypes[obj.Name()]
}

// isFuncValue reports whether e has function type (a closure, not a data
// slice).
func isFuncValue(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isSig := tv.Type.Underlying().(*types.Signature)
	return isSig
}
