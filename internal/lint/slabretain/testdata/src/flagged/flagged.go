// Fixture: slab-backed views retained past the round that produced them.
package flagged

import "mobilecongest/internal/congest"

var lastInbox []congest.Msg

type sniffer struct {
	inbox []congest.Msg
	view  *congest.RoundView
}

func (s *sniffer) retainInbox(pr congest.PortRuntime, out []congest.Msg) {
	in := pr.ExchangePorts(out)
	s.inbox = in // want `stored in struct field`
}

func retainGlobal(pr congest.PortRuntime) {
	lastInbox = pr.OutBuf() // want `package-level variable`
}

func (s *sniffer) RoundStart(round int) {}

func (s *sniffer) RoundDelivered(round int, view *congest.RoundView) {
	s.view = view // want `stored in struct field`
}

func (s *sniffer) RunDone(stats congest.Stats, err error) {}

func leakClosure(pr congest.PortRuntime, out []congest.Msg) func() congest.Msg {
	in := pr.ExchangePorts(out)
	return func() congest.Msg { return in[0] } // want `escapes via return`
}

type sampler struct {
	sample congest.Msg
}

func (s *sampler) retainGet(tr *congest.RoundTraffic, slot int32) {
	m := tr.Get(slot) // an arena-backed view, rewritten two rounds later
	s.sample = m      // want `stored in struct field`
}

var lastMsg congest.Msg

func retainGetGlobal(tr *congest.RoundTraffic, slot int32) {
	lastMsg = tr.Get(slot) // want `package-level variable`
}
