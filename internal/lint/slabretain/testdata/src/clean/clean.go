// Fixture: the sanctioned ways to use slab views — consume within the
// round or retain a copy — plus a reasoned suppression.
package clean

import "mobilecongest/internal/congest"

type collector struct {
	copies [][]byte
	sizes  []int
}

func (c *collector) consumeWithinRound(pr congest.PortRuntime, out []congest.Msg) {
	in := pr.ExchangePorts(out)
	for _, m := range in {
		c.sizes = append(c.sizes, len(m))
	}
}

func (c *collector) retainCopies(pr congest.PortRuntime, out []congest.Msg) {
	in := pr.ExchangePorts(out)
	for _, m := range in {
		if m != nil {
			c.copies = append(c.copies, append([]byte(nil), m...))
		}
	}
}

type stager struct {
	scratch []congest.Msg
}

func (s *stager) stage(pr congest.PortRuntime, out []congest.Msg) {
	in := pr.ExchangePorts(out)
	//lint:ignore slabretain scratch is consumed before this round's handler returns
	s.scratch = in
}

type getSampler struct {
	sample congest.Msg
}

func (g *getSampler) copyGet(tr *congest.RoundTraffic, slot int32) {
	if m := tr.Get(slot); m != nil {
		g.sample = m.Clone() // arena view copied before retention
	}
}
