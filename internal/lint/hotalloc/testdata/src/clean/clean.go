// Fixture: the sanctioned hot-path idioms — warm-capacity appends, plain
// struct values, pointer-shaped interface passing, coldpath barriers for
// deliberately allocating branches, and a reasoned suppression.
package clean

import "strconv"

type ring struct {
	buf     []int
	scratch []byte
	lazy    []int
	out     writer
}

type writer interface {
	write(p *ring)
}

// round: everything here is alloc-free or explicitly sanctioned.
//
//mobilevet:hotpath
func (r *ring) round(vals []int) {
	// Self-append reuses warm capacity.
	r.buf = r.buf[:0]
	for _, v := range vals {
		r.buf = append(r.buf, v)
	}
	// One aliasing step: still a self-append.
	c := r.buf
	r.buf = append(c, len(vals))
	// Plain struct values and arrays stay on the stack.
	p := pair{1, 2}
	var window [4]int
	window[0] = p.a
	// Append-style strconv writes into the caller's buffer.
	r.scratch = strconv.AppendInt(r.scratch[:0], int64(p.b), 10)
	// Pointer-shaped values box for free.
	r.out.write(r)
	r.trace(vals)
	if r.lazy == nil {
		//lint:ignore hotalloc one-time lazy init, amortized over the run
		r.lazy = make([]int, 16)
	}
}

type pair struct{ a, b int }

// write implements writer; hot through the dispatch in round.
func (r *ring) write(p *ring) {
	p.buf = append(p.buf, 0)
}

// trace allocates by design and declares itself off the fault-free path.
//
//mobilevet:coldpath diagnostics branch, runs only when tracing is enabled
func (r *ring) trace(vals []int) {
	dump := make([]int, len(vals))
	copy(dump, vals)
}

// idle is not reachable from any hotpath root: its allocations are fine.
func idle() []string {
	m := map[string]int{"a": 1}
	s := []string{"x"}
	for k := range m {
		s = append(s, k)
	}
	return s
}
