// Fixture: alloc-inducing constructs on the hot path — reached directly
// from a //mobilevet:hotpath root, through static call propagation, through
// a taken function value, and through interface dispatch.
package flagged

import "fmt"

type sink struct {
	buf   []int
	stash []int
	name  string
}

// round is a per-round entry point.
//
//mobilevet:hotpath
func (s *sink) round(vals []int) {
	m := make([]int, 8) // want `make allocates`
	_ = m
	p := new(sink) // want `new allocates`
	_ = p
	s.helper(vals)
	s.dispatch(s)
	h := taken
	h(len(vals))
}

// helper is hot by static propagation from round.
func (s *sink) helper(vals []int) {
	s.stash = append(s.buf, vals...) // want `append into a different slice may grow`
	tmp := []int{1, 2}               // want `slice literal allocates`
	_ = tmp
	fmt.Sprintf("%d", len(vals)) // want `fmt\.Sprintf formats and allocates`
	n := len(vals)
	f := func() int { return n } // want `capturing closure allocates`
	_ = f()
	g := s.helper // want `method value allocates a closure`
	_ = g
	s.name = s.name + "!" // want `string concatenation allocates`
	go s.dispatch(s)      // want `go statement allocates`
}

// taken is hot because round takes its value and hands it around.
func taken(n int) {
	var box interface{}
	box = n // want `int boxes into interface\{\}`
	_ = box
}

// stepper's step goes hot when dispatch (hot) calls through the interface;
// the concrete implementation below inherits it.
type stepper interface {
	step(n int)
}

func (s *sink) dispatch(st stepper) {
	st.step(1)
}

// step implements stepper, so it is hot via CHA resolution.
func (s *sink) step(n int) {
	lookup := map[int]int{n: n} // want `map literal allocates`
	_ = lookup
	esc := &sink{} // want `address-taken composite literal escapes`
	_ = esc
}

// badCold has a coldpath directive with no reason — the reason is the
// documentation trail, so its absence is itself a finding.
//
//mobilevet:coldpath
func badCold() { // want `coldpath directive: a reason is required`
	_ = make([]int, 1)
}
