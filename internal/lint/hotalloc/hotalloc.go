// Package hotalloc defines an analyzer that turns the runtime AllocsPerRun
// pins into a repo-wide static gate: every function transitively reachable
// from a //mobilevet:hotpath root (the engines' per-round fault-free loops)
// must be free of alloc-inducing constructs — make, growing append, map
// and slice literals, interface boxing, fmt and friends, capturing
// closures.
//
// Reachability crosses package boundaries through an exported HotPathFact:
// when a hot function dispatches through an interface, the interface's
// method object is marked hot and the fact travels with the interface's
// package, so any later-analyzed package implementing it gets its
// implementation pulled into the hot set. A //mobilevet:coldpath <reason>
// directive is the explicit barrier for paths that are reachable but
// deliberately allocate (the adversary boundary, trace observers); the
// reason is mandatory.
package hotalloc

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"mobilecongest/internal/lint/analysis"
	"mobilecongest/internal/lint/lintutil"
)

// HotPathFact marks a function (or interface method) as reachable from a
// //mobilevet:hotpath root; dependent packages import it to extend the
// reachability closure across package boundaries.
type HotPathFact struct{}

func (*HotPathFact) AFact() {}

// Analyzer flags alloc-inducing constructs in functions reachable from
// //mobilevet:hotpath roots.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "flags make/append-grow/map-literal/interface-boxing/fmt/capturing-closure constructs in " +
		"functions transitively reachable from a //mobilevet:hotpath root; the fault-free round " +
		"path must not allocate (see the AllocsPerRun pins)",
	Run:       run,
	FactTypes: []analysis.Fact{new(HotPathFact)},
}

// modulePrefix scopes the fact-completeness check: calls from hot code into
// other packages of this module must target functions the fact store
// already covers.
const modulePrefix = "mobilecongest"

func inModule(path string) bool {
	base := lintutil.BasePkgPath(path)
	return base == modulePrefix || strings.HasPrefix(base, modulePrefix+"/")
}

func run(pass *analysis.Pass) error {
	g := lintutil.NewCallGraph(pass.Fset, pass.Files, pass.TypesInfo)

	// Directive scan: hotpath roots and coldpath barriers.
	roots := make([]*types.Func, 0, 4)
	cold := make(map[*types.Func]bool)
	for _, fn := range g.Funcs() {
		decl := g.Decl(fn)
		if _, ok := lintutil.FuncDirective(decl, "hotpath"); ok {
			roots = append(roots, fn)
		}
		if reason, ok := lintutil.FuncDirective(decl, "coldpath"); ok {
			if reason == "" {
				pass.Reportf(decl.Pos(), "malformed //mobilevet:coldpath directive: a reason is required")
			}
			cold[fn] = true
		}
	}

	// Facts from dependencies seed further roots: implementations of hot
	// interface methods, declared here, run on the hot path of whoever
	// holds the interface value.
	for _, of := range pass.AllObjectFacts() {
		fn, ok := of.Obj.(*types.Func)
		if !ok {
			continue
		}
		if _, ok := of.Fact.(*HotPathFact); !ok {
			continue
		}
		if fn.Pkg() == pass.Pkg {
			continue // our own exports from a prior analyzer run; none yet
		}
		if lintutil.IsInterfaceMethod(fn) {
			roots = append(roots, lintutil.Implementations(pass.Pkg, fn)...)
		}
	}

	// Reachability closure over static calls, taken function values, and
	// same-package interface dispatch. Cold functions absorb: they are
	// reachable but stop propagation and are not checked.
	hasFact := func(fn *types.Func) bool {
		var f HotPathFact
		return pass.ImportObjectFact(fn, &f)
	}
	expand := func(fn *types.Func) []*types.Func {
		var out []*types.Func
		for _, callee := range g.Callees(fn) {
			if !lintutil.IsInterfaceMethod(callee) {
				continue
			}
			if callee.Pkg() == pass.Pkg || hasFact(callee) {
				out = append(out, callee)
				out = append(out, lintutil.Implementations(pass.Pkg, callee)...)
			}
		}
		return out
	}
	liveRoots := roots[:0]
	for _, r := range roots {
		if !cold[r] {
			liveRoots = append(liveRoots, r)
		}
	}
	hot := make(map[*types.Func]bool)
	frontier := append([]*types.Func(nil), liveRoots...)
	for len(frontier) > 0 {
		fn := frontier[0]
		frontier = frontier[1:]
		if hot[fn] || cold[fn] {
			continue
		}
		if fn.Pkg() != pass.Pkg {
			continue // dependency functions answer to their own package's run
		}
		hot[fn] = true
		if g.Decl(fn) == nil {
			continue // no body here (interface method, test-file decl)
		}
		frontier = append(frontier, g.Callees(fn)...)
		frontier = append(frontier, g.ValuesTaken(fn)...)
		frontier = append(frontier, expand(fn)...)
	}

	// Export facts on every hot package-level function and method so
	// dependents inherit the closure.
	for fn := range hot {
		if analysis.ObjectKey(fn) != "" {
			pass.ExportObjectFact(fn, &HotPathFact{})
		}
	}

	// Check bodies, and enforce fact completeness on cross-package calls.
	for _, fn := range g.Funcs() {
		if !hot[fn] {
			continue
		}
		checkBody(pass, g, fn, cold, hasFact)
	}
	return nil
}

// checkBody flags the alloc-inducing constructs in one hot function.
func checkBody(pass *analysis.Pass, g *lintutil.CallGraph, fn *types.Func, cold map[*types.Func]bool, hasFact func(*types.Func) bool) {
	info := pass.TypesInfo
	body := g.Decl(fn).Body

	// Appends writing back over their own first argument reuse warm
	// capacity — the repo's slab idiom — and are exempt. The comparison is
	// by access path (object, then fields/derefs, index positions erased),
	// with one local-aliasing step resolved so
	// `c := a.chunks[k]; a.chunks[k] = append(c, m...)` stays exempt.
	var rawPath func(e ast.Expr) string
	rawPath = func(e ast.Expr) string {
		switch x := e.(type) {
		case *ast.Ident:
			obj := lintutil.ObjOf(info, x)
			if obj == nil {
				return ""
			}
			return fmt.Sprintf("o%d", obj.Pos())
		case *ast.ParenExpr:
			return rawPath(x.X)
		case *ast.SelectorExpr:
			if b := rawPath(x.X); b != "" {
				return b + "." + x.Sel.Name
			}
		case *ast.IndexExpr:
			if b := rawPath(x.X); b != "" {
				return b + "[]"
			}
		case *ast.SliceExpr:
			return rawPath(x.X)
		case *ast.StarExpr:
			if b := rawPath(x.X); b != "" {
				return b + "*"
			}
		}
		return ""
	}
	alias := make(map[string]string)
	ast.Inspect(body, func(n ast.Node) bool {
		s, ok := n.(*ast.AssignStmt)
		if !ok || s.Tok != token.DEFINE || len(s.Lhs) != len(s.Rhs) {
			return true
		}
		for i, lhs := range s.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				if p := rawPath(s.Rhs[i]); p != "" {
					if obj := info.Defs[id]; obj != nil {
						alias[fmt.Sprintf("o%d", obj.Pos())] = p
					}
				}
			}
		}
		return true
	})
	path := func(e ast.Expr) string {
		// Resolve a leading local alias one step: when the path's base
		// identifier was defined from another path, substitute it.
		p := rawPath(e)
		if p == "" {
			return ""
		}
		base, rest, hasRest := strings.Cut(p, ".")
		if target, ok := alias[base]; ok {
			if hasRest {
				return target + "." + rest
			}
			return target
		}
		return p
	}
	selfAppend := make(map[*ast.CallExpr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		s, ok := n.(*ast.AssignStmt)
		if !ok || len(s.Lhs) != len(s.Rhs) {
			return true
		}
		for i, rhs := range s.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || !isBuiltin(info, call, "append") || len(call.Args) == 0 {
				continue
			}
			dst, src := path(s.Lhs[i]), path(call.Args[0])
			if dst != "" && dst == src {
				selfAppend[call] = true
			}
		}
		return true
	})

	// Identifiers in call-operator position (calls, not values).
	callIdents := make(map[*ast.Ident]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			switch fun := ast.Unparen(call.Fun).(type) {
			case *ast.Ident:
				callIdents[fun] = true
			case *ast.SelectorExpr:
				callIdents[fun.Sel] = true
			}
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, g, x, selfAppend, cold, hasFact)
		case *ast.CompositeLit:
			switch info.Types[x].Type.Underlying().(type) {
			case *types.Map:
				pass.Reportf(x.Pos(), "hot path: map literal allocates; preallocate in setup and reuse")
			case *types.Slice:
				pass.Reportf(x.Pos(), "hot path: slice literal allocates; preallocate in setup and reuse")
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					pass.Reportf(x.Pos(), "hot path: address-taken composite literal escapes to the heap")
				}
			}
		case *ast.FuncLit:
			if capturesOutside(info, x) {
				pass.Reportf(x.Pos(), "hot path: capturing closure allocates; bind it once in setup and reuse the value")
			}
		case *ast.SelectorExpr:
			if callIdents[x.Sel] {
				return true
			}
			if sel, ok := info.Selections[x]; ok && sel.Kind() == types.MethodVal {
				pass.Reportf(x.Pos(), "hot path: method value allocates a closure; bind it once in setup")
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD {
				if t := info.Types[x].Type; t != nil && isString(t) {
					pass.Reportf(x.Pos(), "hot path: string concatenation allocates")
				}
			}
		case *ast.GoStmt:
			pass.Reportf(x.Pos(), "hot path: go statement allocates a goroutine per round; use a persistent worker")
		case *ast.AssignStmt:
			if len(x.Lhs) != len(x.Rhs) {
				return true
			}
			for i, rhs := range x.Rhs {
				lt := info.Types[x.Lhs[i]].Type
				if lt == nil {
					if id, ok := x.Lhs[i].(*ast.Ident); ok {
						if obj := info.Defs[id]; obj != nil {
							lt = obj.Type()
						}
					}
				}
				checkBoxing(pass, info, lt, rhs)
			}
		}
		return true
	})
}

// checkCall flags allocating calls: make/new, growing appends, allocating
// stdlib entry points, conversions that copy, boxing arguments, and — the
// fact-completeness rule — calls into module packages the hotpath closure
// has not covered.
func checkCall(pass *analysis.Pass, g *lintutil.CallGraph, call *ast.CallExpr, selfAppend map[*ast.CallExpr]bool, cold map[*types.Func]bool, hasFact func(*types.Func) bool) {
	info := pass.TypesInfo
	switch {
	case isBuiltin(info, call, "make"):
		pass.Reportf(call.Pos(), "hot path: make allocates; preallocate in setup and reuse")
		return
	case isBuiltin(info, call, "new"):
		pass.Reportf(call.Pos(), "hot path: new allocates; preallocate in setup and reuse")
		return
	case isBuiltin(info, call, "append"):
		if !selfAppend[call] {
			pass.Reportf(call.Pos(), "hot path: append into a different slice may grow; write back over the source (x = append(x, ...)) or preallocate")
		}
		return
	}

	// Conversions: T(x) where the operator is a type.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst := tv.Type
		src := info.Types[call.Args[0]].Type
		if src != nil {
			switch {
			case isString(dst) && isByteOrRuneSlice(src):
				pass.Reportf(call.Pos(), "hot path: string conversion copies and allocates")
			case isByteOrRuneSlice(dst) && isString(src):
				pass.Reportf(call.Pos(), "hot path: byte-slice conversion copies and allocates")
			default:
				checkBoxing(pass, info, dst, call.Args[0])
			}
		}
		return
	}

	fn := lintutil.CalleeFunc(info, call)
	if fn == nil {
		return // call through a function value; covered where the value was built
	}
	if path, why := allocCallee(fn); why != "" {
		pass.Reportf(call.Pos(), "hot path: %s.%s %s", path, fn.Name(), why)
		return
	}

	// Boxing at the call boundary: concrete non-pointer values passed to
	// interface parameters.
	if sig, ok := fn.Type().(*types.Signature); ok && !sig.Variadic() {
		for i := 0; i < sig.Params().Len() && i < len(call.Args); i++ {
			checkBoxing(pass, info, sig.Params().At(i).Type(), call.Args[i])
		}
	}

	// Fact completeness: hot execution entering a module package must land
	// on functions that package's analysis knew were hot.
	if fn.Pkg() != nil && fn.Pkg() != pass.Pkg && inModule(fn.Pkg().Path()) {
		if !lintutil.IsInterfaceMethod(fn) && !hasFact(fn) {
			pass.Reportf(call.Pos(), "hot path: call into %s.%s, which carries no hotpath fact; annotate it //mobilevet:hotpath (or a caller with //mobilevet:coldpath) so its body is checked", fn.Pkg().Path(), fn.Name())
		}
	}
}

// checkBoxing flags a concrete, non-pointer-shaped value converted or
// assigned to an interface type — the conversion heap-allocates the value.
func checkBoxing(pass *analysis.Pass, info *types.Info, dst types.Type, src ast.Expr) {
	if dst == nil || !types.IsInterface(dst) {
		return
	}
	if _, ok := dst.(*types.TypeParam); ok {
		return // a type parameter's underlying is its constraint; instantiation does not box
	}
	tv, ok := info.Types[src]
	if !ok || tv.Type == nil || tv.IsNil() {
		return
	}
	st := tv.Type
	if types.IsInterface(st) || isPointerShaped(st) {
		return
	}
	pass.Reportf(src.Pos(), "hot path: %s boxes into %s and allocates; pass a pointer or restructure", st, dst)
}

// allocCallee reports stdlib callees that allocate by contract. The list is
// deliberately tight: entries are functions the engine hot path must never
// call, not a general escape analysis.
func allocCallee(fn *types.Func) (path, why string) {
	if fn.Pkg() == nil {
		return "", ""
	}
	path = fn.Pkg().Path()
	switch path {
	case "fmt":
		return path, "formats and allocates"
	case "encoding/json":
		return path, "reflects and allocates"
	case "errors":
		if fn.Name() == "New" {
			return path, "allocates an error value"
		}
	case "sort":
		switch fn.Name() {
		case "Slice", "SliceStable", "Sort", "Stable":
			return path, "boxes its argument and allocates"
		}
	case "slices":
		if fn.Name() == "Clone" {
			return path, "clones and allocates"
		}
	case "maps":
		if fn.Name() == "Clone" {
			return path, "clones and allocates"
		}
	case "strconv":
		if strings.HasPrefix(fn.Name(), "Format") || strings.HasPrefix(fn.Name(), "Quote") || strings.HasPrefix(fn.Name(), "Append") || fn.Name() == "Itoa" {
			if strings.HasPrefix(fn.Name(), "Append") {
				return "", "" // append-style writes into a caller buffer
			}
			return path, "builds a string and allocates"
		}
	}
	return "", ""
}

// isBuiltin reports whether call invokes the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// capturesOutside reports whether the function literal references a
// variable declared outside itself but inside some enclosing function —
// the captures that force a heap-allocated closure.
func capturesOutside(info *types.Info, fl *ast.FuncLit) bool {
	captures := false
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if captures {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if lintutil.IsPkgLevel(v, v.Pkg()) {
			return true // package vars need no capture slot
		}
		if !lintutil.DeclaredWithin(v, fl) {
			captures = true
		}
		return true
	})
	return captures
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune)
}

// isPointerShaped reports whether values of t fit in a pointer word and box
// into interfaces without allocating.
func isPointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	}
	if b, ok := t.Underlying().(*types.Basic); ok && b.Kind() == types.UnsafePointer {
		return true
	}
	return false
}
