package hotalloc_test

import (
	"testing"

	"mobilecongest/internal/lint/analysis/analysistest"
	"mobilecongest/internal/lint/hotalloc"
)

func TestHotalloc(t *testing.T) {
	analysistest.Run(t, "testdata/src", hotalloc.Analyzer, "flagged", "clean")
}
