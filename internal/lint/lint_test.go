package lint_test

import (
	"os/exec"
	"strings"
	"testing"

	"mobilecongest/internal/lint"
	"mobilecongest/internal/lint/analysis"
)

// TestRepoIsClean runs the full suite over every package in the module —
// the same gate CI enforces. A failure here means a new invariant violation
// landed (or an analyzer grew a false positive; tune the analyzer or add a
// reasoned //lint:ignore, never delete the gate).
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks the whole module")
	}
	out, err := exec.Command("go", "list", "-m", "-f", "{{.Dir}}").Output()
	if err != nil {
		t.Fatalf("resolving module root: %v", err)
	}
	root := strings.TrimSpace(string(out))
	pkgs, err := analysis.Load(root, "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	findings, err := analysis.RunAnalyzers(pkgs, lint.Suite())
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, f := range analysis.Active(findings) {
		t.Errorf("%s", f)
	}
}
