package secure

import (
	"mobilecongest/internal/congest"
	"mobilecongest/internal/graph"
)

// Mobile-secure multicast (the second half of Lemma A.3): R unicast
// instances (s_j, t_j, m_j) run in parallel in O(D + R) rounds. The key
// phase spends R rounds exchanging one fresh key per edge per instance;
// instance j's static unicast then runs with its own key layer, staggered by
// one round (each instance sends at most one message per edge, so the
// stagger keeps per-round edge traffic at one message per instance slot —
// the role the random-delay scheduler plays in the paper).

// MulticastInstance is one (source, target) pair; the source's secret is
// read from its Input at offset 8*j.
type MulticastInstance struct {
	Source graph.NodeID
	Target graph.NodeID
}

// MulticastShared is the preprocessing: one BFS tree per instance target.
type MulticastShared struct {
	G         *graph.Graph
	Instances []MulticastInstance
	Trees     []*UnicastShared
}

// NewMulticastShared builds the artifact.
func NewMulticastShared(g *graph.Graph, instances []MulticastInstance) *MulticastShared {
	sh := &MulticastShared{G: g, Instances: instances}
	for _, inst := range instances {
		sh.Trees = append(sh.Trees, NewUnicastShared(g, inst.Target))
	}
	return sh
}

// MaxDepth is the deepest instance tree.
func (m *MulticastShared) MaxDepth() int {
	d := 0
	for _, t := range m.Trees {
		if td := t.MaxDepth(); td > d {
			d = td
		}
	}
	return d
}

// MulticastResult collects the secrets recovered at this node (indexed by
// instance; zero where this node is not the target).
type MulticastResult struct {
	Secrets []uint64
}

// MobileSecureMulticast solves all R instances in R + (D+1) + R-1 rounds.
// Security per instance j holds provided the adversary's key-round-j edges
// do not disconnect s_j from t_j (Lemma A.3's condition).
func MobileSecureMulticast() congest.Protocol {
	return func(rt congest.Runtime) {
		sh, ok := rt.Shared().(*MulticastShared)
		if !ok {
			panic("secure: run Config.Shared must be *secure.MulticastShared")
		}
		pr := congest.Ports(rt)
		me := rt.ID()
		deg := pr.Degree()
		r := len(sh.Instances)

		// Key phase: one key per edge per instance, chosen by the higher-ID
		// endpoint in round j. keys[j][p] is instance j's key on port p.
		keys := make([][][]byte, r)
		for j := 0; j < r; j++ {
			keys[j] = make([][]byte, deg)
			out := pr.OutBuf()
			for p := 0; p < deg; p++ {
				if v := pr.Neighbor(p); me > v {
					k := make([]byte, 8)
					rt.Rand().Read(k)
					keys[j][p] = k
					out[p] = congest.Msg(k).Clone()
				}
			}
			in := pr.ExchangePorts(out)
			for p, m := range in {
				if m != nil && me < pr.Neighbor(p) {
					keys[j][p] = m.Clone()
				}
			}
		}

		// Simulation phase: instance j's static unicast round x runs in
		// physical round j+x (stagger). Each instance's per-edge message
		// schedule mirrors runStaticUnicast.
		type instState struct {
			edgeVal []uint64
			secret  uint64
		}
		states := make([]*instState, r)
		for j := range states {
			states[j] = &instState{edgeVal: make([]uint64, deg)}
			if sh.Instances[j].Source == me {
				off := 8 * j
				input := rt.Input()
				if off+8 <= len(input) {
					states[j].secret = congest.U64(input[off:])
				}
			}
		}
		depthMax := sh.MaxDepth()
		totalRounds := r + depthMax // staggered windows
		for phys := 0; phys < totalRounds; phys++ {
			out := pr.OutBuf()
			appendMsg := func(p int, j int, val uint64) {
				m := congest.PutU64(congest.Msg{byte(j)}, val)
				out[p] = append(out[p], xorTail(m, keys[j][p])...)
			}
			for j := 0; j < r; j++ {
				x := phys - j // instance-local round
				if x < 0 || x > depthMax {
					continue
				}
				tree := sh.Trees[j]
				st := states[j]
				if x == 0 {
					// Non-tree edges: higher endpoint draws.
					for p := 0; p < deg; p++ {
						if v := pr.Neighbor(p); isTreeEdgeOf(tree, me, v) || me < v {
							continue
						}
						val := rt.Rand().Uint64()
						st.edgeVal[p] = val
						appendMsg(p, j, val)
					}
					continue
				}
				// Depth slot: node at depth d sends at x = depthMax-d+1.
				if me != tree.Target && tree.Depth[me] == depthMax-x+1 {
					var acc uint64
					parentPort := pr.Port(tree.Parent[me])
					for p := 0; p < deg; p++ {
						if p != parentPort {
							acc ^= st.edgeVal[p]
						}
					}
					if sh.Instances[j].Source == me {
						acc ^= st.secret
					}
					if parentPort >= 0 {
						st.edgeVal[parentPort] = acc
						appendMsg(parentPort, j, acc)
					}
				}
			}
			in := pr.ExchangePorts(out)
			for p, m := range in {
				if m == nil {
					continue
				}
				for off := 0; off+9 <= len(m); off += 9 {
					j := int(m[off])
					if j < 0 || j >= r {
						continue
					}
					dec := xorTail(append(congest.Msg{m[off]}, m[off+1:off+9]...), keys[j][p])
					states[j].edgeVal[p] = congest.U64(dec[1:])
				}
			}
		}
		res := MulticastResult{Secrets: make([]uint64, r)}
		for j := 0; j < r; j++ {
			if sh.Instances[j].Target != me {
				continue
			}
			var acc uint64
			for p := 0; p < deg; p++ {
				acc ^= states[j].edgeVal[p]
			}
			if sh.Instances[j].Source == me {
				acc ^= states[j].secret
			}
			res.Secrets[j] = acc
		}
		rt.SetOutput(res)
	}
}

func isTreeEdgeOf(t *UnicastShared, a, b graph.NodeID) bool {
	return t.Parent[a] == b || t.Parent[b] == a
}

// xorTail XORs the key into the 8 payload bytes after the 1-byte header.
func xorTail(m congest.Msg, key []byte) congest.Msg {
	out := m.Clone()
	for i := 0; i < 8 && i < len(key) && 1+i < len(out); i++ {
		out[1+i] ^= key[i]
	}
	return out
}

// MulticastRounds returns the protocol's fixed round count.
func MulticastRounds(sh *MulticastShared) int {
	return len(sh.Instances) + len(sh.Instances) + sh.MaxDepth()
}
