// Package secure implements the eavesdropper side of the paper: the
// static-to-mobile security compiler of Theorem 1.2 (Section 2), Jain-style
// secure unicast and its mobile variant (Appendix A.1, Lemma A.3), the
// mobile-secure broadcast (Appendix A.2, Theorem A.4 in the share-per-tree
// variant recorded in DESIGN.md), and the congestion-sensitive compiler with
// perfect mobile security (Appendix A.3, Theorem 1.3).
//
// All constructions share one mechanism: Phase-1 rounds exchange fresh
// uniform field elements over every edge, the Vandermonde extractor of
// Theorem 2.1 condenses them into keys the adversary knows nothing about
// (unless it watched the edge more than t rounds), and Phase 2 one-time-pads
// the underlying algorithm's messages with those keys.
package secure

import (
	"fmt"

	"mobilecongest/internal/congest"
	"mobilecongest/internal/extract"
	"mobilecongest/internal/gf"
)

// field is the shared GF(2^16) instance.
var field = gf.NewField16()

// wordSymbols is how many GF(2^16) symbols make one 8-byte key word.
const wordSymbols = 4

// MobileParams reports the (r', f') guarantee of Theorem 1.2 for compiling
// an r-round f-static-secure algorithm with key-phase slack t: r' = 2r+t,
// and f' is the largest mobile budget whose bad-edge count
// floor(f'*(r+t)/(t+1)) stays within f — the exact integrality argument of
// the proof (which also shows t >= 2fr gives f' = f; the theorem's printed
// floor(f*(t+1)/(r+t)) is a lower bound on this value).
func MobileParams(r, t, f int) (rPrime, fPrime int) {
	ell := r + t
	// Largest f' with floor(f'*ell/(t+1)) <= f.
	fPrime = ((f+1)*(t+1) - 1) / ell
	return 2*r + t, fPrime
}

// SlackFor returns the canonical key-phase slack t = 2fr for compiling an
// r-round payload against an f-mobile eavesdropper: the smallest choice of
// the Theorem 1.2 proof's t >= 2fr regime, which keeps the compiled mobile
// budget at f' = f (see MobileParams). The harness, the examples, and the
// root protocol registry all pick their slack through this one function.
func SlackFor(r, f int) int { return 2 * f * r }

// KeyPool is one edge-direction's Phase-2 key material: r words of 8 bytes.
type KeyPool struct {
	keys [][wordSymbols]gf.Elem
}

// Key returns the i-th 8-byte key as raw bytes.
func (p *KeyPool) Key(i int) []byte {
	out := make([]byte, 8)
	if i < 0 || i >= len(p.keys) {
		return out
	}
	for j, s := range p.keys[i] {
		out[2*j] = byte(s >> 8)
		out[2*j+1] = byte(s)
	}
	return out
}

// Len returns the number of keys.
func (p *KeyPool) Len() int { return len(p.keys) }

// xorBytes XORs key into msg (up to len(msg)); OTP over GF(2^16) addition.
func xorBytes(msg congest.Msg, key []byte) congest.Msg {
	out := msg.Clone()
	for i := 0; i < len(out) && i < len(key); i++ {
		out[i] ^= key[i]
	}
	return out
}

// exchangeSecrets runs ell rounds in which every node sends 8 fresh random
// bytes to every neighbour, and returns port-indexed symbol streams:
// fwd[p][j] = j-th symbol I sent on port p; bwd[p][j] = j-th symbol I
// received on port p. Both endpoints of an edge end with identical views of
// both streams — the shared randomness pool of Theorem 1.2's first phase.
// Randomness is drawn in ascending port (== neighbour) order, matching the
// pre-port map implementation byte for byte.
func exchangeSecrets(pr congest.PortRuntime, ell int) (sentStream, recvStream [][]gf.Elem) {
	deg := pr.Degree()
	sentStream = make([][]gf.Elem, deg)
	recvStream = make([][]gf.Elem, deg)
	for r := 0; r < ell; r++ {
		out := pr.OutBuf()
		for p := 0; p < deg; p++ {
			m := make(congest.Msg, 8)
			for i := 0; i < wordSymbols; i++ {
				s := gf.Elem(pr.Rand().Intn(field.Order()))
				m[2*i] = byte(s >> 8)
				m[2*i+1] = byte(s)
				sentStream[p] = append(sentStream[p], s)
			}
			out[p] = m
		}
		in := pr.ExchangePorts(out)
		for p := 0; p < deg; p++ {
			m := in[p] // eavesdroppers never drop messages
			for i := 0; i < wordSymbols; i++ {
				var s gf.Elem
				if 2*i+1 < len(m) {
					s = gf.Elem(m[2*i])<<8 | gf.Elem(m[2*i+1])
				}
				recvStream[p] = append(recvStream[p], s)
			}
		}
	}
	return sentStream, recvStream
}

// deriveKeyPools condenses port-indexed symbol streams into one KeyPool per
// port, panicking on extractor failure with the given context tag.
func deriveKeyPools(streams [][]gf.Elem, ell, r int, tag string) []*KeyPool {
	pools := make([]*KeyPool, len(streams))
	for p, stream := range streams {
		pool, err := deriveKeys(stream, ell, r)
		if err != nil {
			panic(fmt.Sprintf("secure: %s key derivation: %v", tag, err))
		}
		pools[p] = pool
	}
	return pools
}

// deriveKeys condenses an ell-round symbol stream into r 8-byte keys with a
// (n=ell, m=r) extractor applied to each of the wordSymbols interleaved
// sub-streams.
func deriveKeys(stream []gf.Elem, ell, r int) (*KeyPool, error) {
	ex, err := extract.New(field, ell, r)
	if err != nil {
		return nil, err
	}
	pool := &KeyPool{keys: make([][wordSymbols]gf.Elem, r)}
	sub := make([]gf.Elem, ell)
	for j := 0; j < wordSymbols; j++ {
		for i := 0; i < ell; i++ {
			sub[i] = stream[i*wordSymbols+j]
		}
		ys, err := ex.Extract(sub)
		if err != nil {
			return nil, err
		}
		for i := 0; i < r; i++ {
			pool.keys[i][j] = ys[i]
		}
	}
	return pool, nil
}

// StaticToMobile compiles an r-round f-static-secure payload into an
// f'-mobile-secure protocol per Theorem 1.2: Phase 1 spends ell = r+t rounds
// building key pools; Phase 2 simulates the payload round-by-round with
// every message one-time-padded. Payload messages must be at most 8 bytes.
// The payload must exchange at most r times. The compiler is port-native:
// both phases and the per-round pad run on the slot boundary, and map
// payloads still work through WrappedRuntime's compat adaptation.
func StaticToMobile(payload congest.Protocol, r, t int) congest.Protocol {
	ell := r + t
	return func(rt congest.Runtime) {
		pr := congest.Ports(rt)
		sent, recv := exchangeSecrets(pr, ell)
		sendKeys := deriveKeyPools(sent, ell, r, "static-to-mobile")
		recvKeys := deriveKeyPools(recv, ell, r, "static-to-mobile")
		round := 0
		dec := make([]congest.Msg, pr.Degree())
		w := &congest.WrappedRuntime{Base: rt}
		w.ExchangePortsFn = func(out []congest.Msg) []congest.Msg {
			if round >= r {
				panic(fmt.Sprintf("secure: payload exceeded its declared %d rounds", r))
			}
			penc := pr.OutBuf()
			for p, m := range out {
				if m == nil {
					continue
				}
				if len(m) > 8 {
					panic("secure: payload message exceeds 8 bytes")
				}
				penc[p] = xorBytes(m, sendKeys[p].Key(round))
			}
			in := pr.ExchangePorts(penc)
			for p, m := range in {
				if m == nil {
					dec[p] = nil
					continue
				}
				dec[p] = xorBytes(m, recvKeys[p].Key(round))
			}
			round++
			return dec
		}
		payload(w)
	}
}
