package secure

import (
	"mobilecongest/internal/congest"
	"mobilecongest/internal/graph"
	"mobilecongest/internal/rsim"
	"mobilecongest/internal/treepack"
)

// Mobile-secure broadcast (Appendix A.2 / Theorem A.4, share-per-tree
// variant; see the substitution note in DESIGN.md). The source XOR-shares
// its 8-byte secret into k shares, one per tree of a (k, D_TP, eta) packing
// rooted at the source; Phase 1 equips every edge with enough extracted keys
// to one-time-pad the downcast of its <= eta shares. An f-mobile
// eavesdropper learns the key pools of at most f edges (Lemma A.1), hence at
// most f*eta shares; with k > f*eta at least one share stays hidden and the
// secret is perfectly protected.

// BroadcastShared is the preprocessing artifact: a tree packing rooted at
// the broadcast source.
type BroadcastShared struct {
	G       *graph.Graph
	Packing *treepack.Packing
	Views   [][]rsim.TreeView
}

// NewBroadcastShared packs k greedy low-depth trees rooted at source.
func NewBroadcastShared(g *graph.Graph, source graph.NodeID, k, depthBound int) *BroadcastShared {
	p := treepack.GreedyLowDepth(g, source, k, depthBound, 1)
	return &BroadcastShared{G: g, Packing: p, Views: rsim.Views(p)}
}

// MinSharesFor reports the smallest k guaranteeing secrecy against an
// f-mobile eavesdropper for a packing of load eta: k > f*eta.
func MinSharesFor(f, eta int) int { return f*eta + 1 }

// MobileSecureBroadcast floods the source's 8-byte Input secret to every
// node with perfect security against f-mobile eavesdroppers (for
// k > f*load). Every node outputs the recovered uint64. keySlack is the t
// of Lemma A.1 for the key phase (t >= 2*f*keysPerEdge gives f'=f; pass
// f and the protocol derives it).
func MobileSecureBroadcast(f int) congest.Protocol {
	return func(rt congest.Runtime) {
		sh, ok := rt.Shared().(*BroadcastShared)
		if !ok {
			panic("secure: run Config.Shared must be *secure.BroadcastShared")
		}
		pr := congest.Ports(rt)
		views := sh.Views[rt.ID()]
		k := len(views)
		depth := rsim.MaxDepth(sh.Views)
		// Each tree edge carries one share per tree it belongs to, and the
		// downcast pipelines over depth rounds: a share crosses each of its
		// tree's edges exactly once, so keysPerEdge = eta suffices; we round
		// up to the packing load bound k (safe upper bound: an edge is in at
		// most k trees).
		keysPerEdge := 0
		for range views {
			keysPerEdge++
		}
		// Phase 1: local secret exchange sized for f' = f (t >= 2*f*r).
		ell := keysPerEdge + 2*f*keysPerEdge
		if ell < keysPerEdge+1 {
			ell = keysPerEdge + 1
		}
		sent, recv := exchangeSecrets(pr, ell)
		sendKeys := deriveKeyPools(sent, ell, keysPerEdge, "broadcast")
		recvKeys := deriveKeyPools(recv, ell, keysPerEdge, "broadcast")
		usedSend := make([]int, pr.Degree())
		usedRecv := make([]int, pr.Degree())

		// Source: XOR-share the secret.
		isSource := false
		for _, tv := range views {
			if tv.Depth == 0 {
				isSource = true
			}
		}
		shares := make([][]byte, k)
		if isSource {
			secret := congest.U64(rt.Input())
			var acc uint64
			for j := 0; j < k-1; j++ {
				s := rt.Rand().Uint64()
				acc ^= s
				shares[j] = congest.PutU64(nil, s)
			}
			shares[k-1] = congest.PutU64(nil, acc^secret)
		}

		// Phase 2: pipelined downcast, one slot per depth level; every
		// message is one-time-padded with the next key of its edge.
		have := make([][]byte, k)
		for j, tv := range views {
			if tv.Depth == 0 {
				have[j] = shares[j]
			}
		}
		for slot := 0; slot <= depth; slot++ {
			out := pr.OutBuf()
			type sendRec struct {
				port int
				tree int
			}
			var sends []sendRec
			for j, tv := range views {
				if tv.Depth < 0 || have[j] == nil || slot != tv.Depth {
					continue
				}
				for _, c := range tv.Children {
					sends = append(sends, sendRec{port: pr.Port(c), tree: j})
				}
			}
			for _, sr := range sends {
				key := sendKeys[sr.port].Key(usedSend[sr.port])
				usedSend[sr.port]++
				m := append(congest.Msg{byte(sr.tree)}, xorBytes(have[sr.tree], key)...)
				// One message per edge per round in this scheme: tree edges
				// are packing edges, and a (child, slot) pair receives from
				// one parent in one tree at a time under load eta <= slots.
				if prev := out[sr.port]; prev != nil {
					// Two trees share this edge and slot: concatenate; keys
					// advance per share so secrecy is preserved.
					out[sr.port] = append(prev, m...)
					continue
				}
				out[sr.port] = m
			}
			in := pr.ExchangePorts(out)
			for p, m := range in {
				if m == nil {
					continue
				}
				from := pr.Neighbor(p)
				for off := 0; off+9 <= len(m); off += 9 {
					tree := int(m[off])
					if tree < 0 || tree >= k {
						continue
					}
					key := recvKeys[p].Key(usedRecv[p])
					usedRecv[p]++
					if views[tree].Parent == from && have[tree] == nil {
						have[tree] = xorBytes(m[off+1:off+9], key)
					}
				}
			}
		}
		var secret uint64
		for j := 0; j < k; j++ {
			secret ^= congest.U64(have[j])
		}
		rt.SetOutput(secret)
	}
}
