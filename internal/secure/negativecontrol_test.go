package secure

import (
	"testing"

	"mobilecongest/internal/adversary"
	"mobilecongest/internal/algorithms"
	"mobilecongest/internal/congest"
	"mobilecongest/internal/gf"
	"mobilecongest/internal/graph"
)

// TestNegativeControlKeyRecoveryAttack proves the security tests are not
// vacuous: an adversary that watches one edge during the *entire* key phase
// (violating the R(e) <= t condition) can derive that edge's keys itself and
// decrypt every phase-2 message on it, recovering input-dependent plaintext.
// This is exactly the attack the (t,k)-resilience threshold rules out for
// compliant schedules.
func TestNegativeControlKeyRecoveryAttack(t *testing.T) {
	g := graph.Path(3) // 0-1-2; watch edge (0,1)
	r := 3
	tSlack := 2
	ell := r + tSlack
	watch := graph.NewEdge(0, 1)
	eve := adversary.NewScheduledEavesdropper(g, [][]graph.Edge{{watch}})
	secret := uint64(0xABCD)
	inputs := make([][]byte, 3)
	inputs[0] = congest.PutU64(nil, secret)
	_, err := congest.Run(congest.Config{Graph: g, Seed: 11, Inputs: inputs, Adversary: eve},
		StaticToMobile(algorithms.BroadcastInput(0, r), r, tSlack))
	if err != nil {
		t.Fatal(err)
	}

	// Adversary-side reconstruction: collect the phase-1 stream 0->1, run
	// the same extractor, and decrypt the phase-2 messages 0->1.
	var streamFwd []gf.Elem
	var phase2Fwd []congest.Msg
	for _, o := range eve.View() {
		if o.Edge.From != 0 || o.Edge.To != 1 {
			continue
		}
		if o.Round < ell {
			for i := 0; i < wordSymbols; i++ {
				streamFwd = append(streamFwd, gf.Elem(o.Data[2*i])<<8|gf.Elem(o.Data[2*i+1]))
			}
		} else {
			phase2Fwd = append(phase2Fwd, o.Data)
		}
	}
	if len(streamFwd) != ell*wordSymbols || len(phase2Fwd) == 0 {
		t.Fatalf("view incomplete: %d key symbols, %d phase-2 messages", len(streamFwd), len(phase2Fwd))
	}
	pool, err := deriveKeys(streamFwd, ell, r)
	if err != nil {
		t.Fatal(err)
	}
	// Decrypt round-0's message 0->1: BroadcastInput sends the secret.
	plain := xorBytes(phase2Fwd[0], pool.Key(0))
	if congest.U64(plain) != secret {
		t.Fatalf("attack failed: decrypted %x, want %x — the negative control must leak", congest.U64(plain), secret)
	}
}

// TestColorRingThroughSecureCompiler: integration of a nontrivial payload
// (Cole-Vishkin 3-coloring) with the Theorem 1.2 compiler under a compliant
// mobile eavesdropper — output must stay a proper colouring.
func TestColorRingThroughSecureCompiler(t *testing.T) {
	n := 12
	g := graph.Cycle(n)
	r := algorithms.ColorRingRounds(n)
	eve := adversary.NewMobileEavesdropper(g, 1, 13)
	res, err := congest.Run(congest.Config{Graph: g, Seed: 12, Adversary: eve},
		StaticToMobile(algorithms.ColorRing(algorithms.ColorRingIterations(n)), r, 2*r))
	if err != nil {
		t.Fatal(err)
	}
	if !algorithms.VerifyRingColoring(g, res.Outputs) {
		t.Fatal("compiled Cole-Vishkin produced an improper colouring")
	}
}
