package secure

import (
	"mobilecongest/internal/congest"
	"mobilecongest/internal/graph"
)

// Secure unicast (Appendix A.1). The static scheme realizes Jain's
// guarantees via a random flow: fix a spanning tree rooted at the target t.
// Every non-tree edge carries one fresh uniform field element (chosen by the
// higher-ID endpoint); every node then balances the XOR of its incident edge
// values on its parent edge, with the source offsetting by the secret. The
// target's incident XOR equals the secret; exactly one message crosses each
// edge; and the view on any edge set F is independent of the secret as long
// as F does not disconnect s and t (a unit s-t flow supported on E\F shifts
// the randomness coset without touching F).

// UnicastShared is the preprocessing for unicast runs: the graph plus a BFS
// spanning tree rooted at the target (computable in O(D) fault-free rounds;
// it is input-independent, so distributing it leaks nothing).
type UnicastShared struct {
	G      *graph.Graph
	Target graph.NodeID
	Parent []graph.NodeID // BFS parent toward Target
	Depth  []int          // BFS depth
}

// NewUnicastShared builds the artifact for target t.
func NewUnicastShared(g *graph.Graph, target graph.NodeID) *UnicastShared {
	dist, parent := g.BFS(target)
	return &UnicastShared{G: g, Target: target, Parent: parent, Depth: dist}
}

// MaxDepth returns the BFS tree depth.
func (u *UnicastShared) MaxDepth() int {
	d := 0
	for _, x := range u.Depth {
		if x > d {
			d = x
		}
	}
	return d
}

// UnicastResult is the target's output.
type UnicastResult struct {
	Secret uint64
}

// StaticSecureUnicast returns the one-message-per-edge secure unicast
// protocol: source s sends the 8-byte secret from its Input to the shared
// target. Every node outputs nothing except the target, which outputs
// UnicastResult. Round complexity: MaxDepth+1. Security holds against a
// static eavesdropper on F whenever s and t stay connected in G\F.
func StaticSecureUnicast(s graph.NodeID) congest.Protocol {
	return func(rt congest.Runtime) {
		sh, ok := rt.Shared().(*UnicastShared)
		if !ok {
			panic("secure: run Config.Shared must be *secure.UnicastShared")
		}
		runStaticUnicast(rt, sh, s, nil)
	}
}

// runStaticUnicast executes the random-flow scheme; keyFor, when non-nil,
// supplies a one-time-pad key per outgoing port (the mobile variant). It
// returns the value at the target (0 elsewhere). The scheme is port-native:
// per-edge values live in a port-indexed slice and every round moves through
// the runtime's reusable port buffers.
func runStaticUnicast(rt congest.Runtime, sh *UnicastShared, s graph.NodeID, keyFor func(port int) []byte) {
	pr := congest.Ports(rt)
	me := rt.ID()
	depthMax := sh.MaxDepth()
	var secret uint64
	if me == s {
		secret = congest.U64(rt.Input())
	}

	// edgeVal[p] is the value of the edge on port p once known.
	edgeVal := make([]uint64, pr.Degree())
	parent := sh.Parent[me]
	parentPort := -1
	if parent >= 0 {
		parentPort = pr.Port(parent)
	}
	isTreeEdge := func(a, b graph.NodeID) bool {
		return sh.Parent[a] == b || sh.Parent[b] == a
	}
	encrypt := func(p int, m congest.Msg) congest.Msg {
		if keyFor == nil {
			return m
		}
		return xorBytes(m, keyFor(p))
	}
	decrypt := encrypt

	// Round 1: non-tree edges — the higher-ID endpoint draws the value.
	out := pr.OutBuf()
	for p := 0; p < pr.Degree(); p++ {
		v := pr.Neighbor(p)
		if isTreeEdge(me, v) || me < v {
			continue
		}
		val := rt.Rand().Uint64()
		edgeVal[p] = val
		out[p] = encrypt(p, congest.U64Msg(val))
	}
	in := pr.ExchangePorts(out)
	for p, m := range in {
		if m != nil {
			edgeVal[p] = congest.U64(decrypt(p, m))
		}
	}

	// Rounds 2..depthMax+1: nodes at depth d send their balanced parent
	// value in round (depthMax - d + 2); shallower nodes have all child
	// values by then.
	for r := 0; r < depthMax; r++ {
		out = pr.OutBuf()
		if me != sh.Target && sh.Depth[me] == depthMax-r && parentPort >= 0 {
			var acc uint64
			for p := range edgeVal {
				if p == parentPort {
					continue
				}
				acc ^= edgeVal[p] // zero if the edge has no value (leaf side)
			}
			if me == s {
				acc ^= secret
			}
			edgeVal[parentPort] = acc
			out[parentPort] = encrypt(parentPort, congest.U64Msg(acc))
		}
		in = pr.ExchangePorts(out)
		for p, m := range in {
			if m != nil {
				edgeVal[p] = congest.U64(decrypt(p, m))
			}
		}
	}

	if me == sh.Target {
		var acc uint64
		for _, v := range edgeVal {
			acc ^= v
		}
		if me == s {
			acc ^= secret // degenerate s == t case
		}
		rt.SetOutput(UnicastResult{Secret: acc})
		return
	}
	rt.SetOutput(UnicastResult{})
}

// MobileSecureUnicast is Lemma A.3: one preliminary round exchanges fresh
// OTP keys on every edge, then the static scheme runs with every message
// encrypted. The adversary learns nothing provided F_1 (its round-1 edges)
// does not disconnect s and t — even if it controls every edge afterwards.
// Round complexity: MaxDepth+2; congestion 2.
func MobileSecureUnicast(s graph.NodeID) congest.Protocol {
	return func(rt congest.Runtime) {
		sh, ok := rt.Shared().(*UnicastShared)
		if !ok {
			panic("secure: run Config.Shared must be *secure.UnicastShared")
		}
		// Preliminary round: K(u,v) chosen by the higher-ID endpoint.
		pr := congest.Ports(rt)
		keys := make([][]byte, pr.Degree())
		out := pr.OutBuf()
		for p := 0; p < pr.Degree(); p++ {
			if v := pr.Neighbor(p); rt.ID() > v {
				k := make([]byte, 8)
				rt.Rand().Read(k)
				keys[p] = k
				out[p] = congest.Msg(k).Clone()
			}
		}
		in := pr.ExchangePorts(out)
		for p, m := range in {
			if m != nil && rt.ID() < pr.Neighbor(p) {
				keys[p] = m.Clone()
			}
		}
		runStaticUnicast(rt, sh, s, func(port int) []byte { return keys[port] })
	}
}

// UnicastRounds returns the fixed round count of the static (mobile)
// variants for a given shared tree.
func UnicastRounds(sh *UnicastShared, mobile bool) int {
	r := sh.MaxDepth() + 1
	if mobile {
		r++
	}
	return r
}
