package secure

import (
	"testing"

	"mobilecongest/internal/adversary"
	"mobilecongest/internal/congest"
	"mobilecongest/internal/graph"
)

func TestMulticastCorrectness(t *testing.T) {
	g := graph.Grid(4, 4)
	instances := []MulticastInstance{
		{Source: 0, Target: 15},
		{Source: 3, Target: 12},
		{Source: 5, Target: 10},
	}
	sh := NewMulticastShared(g, instances)
	inputs := make([][]byte, g.N())
	secrets := []uint64{0x1111, 0x2222, 0x3333}
	for j, inst := range instances {
		buf := inputs[inst.Source]
		if buf == nil {
			buf = make([]byte, 8*len(instances))
		}
		copy(buf[8*j:], congest.PutU64(nil, secrets[j]))
		inputs[inst.Source] = buf
	}
	eve := adversary.NewMobileEavesdropper(g, 2, 5)
	res, err := congest.Run(congest.Config{Graph: g, Seed: 3, Inputs: inputs, Shared: sh, Adversary: eve},
		MobileSecureMulticast())
	if err != nil {
		t.Fatal(err)
	}
	for j, inst := range instances {
		got := res.Outputs[inst.Target].(MulticastResult).Secrets[j]
		if got != secrets[j] {
			t.Fatalf("instance %d: target recovered %x, want %x", j, got, secrets[j])
		}
	}
	if res.Stats.Rounds != MulticastRounds(sh) {
		t.Fatalf("rounds = %d, want %d (= 2R + D)", res.Stats.Rounds, MulticastRounds(sh))
	}
}

func TestMulticastSharedSources(t *testing.T) {
	// One node sources two instances with different secrets.
	g := graph.Circulant(10, 2)
	instances := []MulticastInstance{
		{Source: 2, Target: 7},
		{Source: 2, Target: 9},
	}
	sh := NewMulticastShared(g, instances)
	inputs := make([][]byte, g.N())
	buf := congest.PutU64(nil, 0xAAAA)
	buf = congest.PutU64(buf, 0xBBBB)
	inputs[2] = buf
	res, err := congest.Run(congest.Config{Graph: g, Seed: 4, Inputs: inputs, Shared: sh}, MobileSecureMulticast())
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Outputs[7].(MulticastResult).Secrets[0]; got != 0xAAAA {
		t.Fatalf("instance 0 got %x", got)
	}
	if got := res.Outputs[9].(MulticastResult).Secrets[1]; got != 0xBBBB {
		t.Fatalf("instance 1 got %x", got)
	}
}

func TestMulticastCongestionBound(t *testing.T) {
	// Each instance adds at most one message per edge: per-edge congestion
	// is bounded by R (keys) + R (payload sections share rounds).
	g := graph.Cycle(8)
	instances := []MulticastInstance{{Source: 0, Target: 4}, {Source: 1, Target: 5}}
	sh := NewMulticastShared(g, instances)
	inputs := make([][]byte, g.N())
	inputs[0] = make([]byte, 16)
	inputs[1] = make([]byte, 16)
	copy(inputs[0][0:], congest.PutU64(nil, 7))
	copy(inputs[1][8:], congest.PutU64(nil, 9))
	res, err := congest.Run(congest.Config{Graph: g, Seed: 5, Inputs: inputs, Shared: sh}, MobileSecureMulticast())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.MaxEdgeCongestion > 2*len(instances)+sh.MaxDepth() {
		t.Fatalf("congestion %d too high", res.Stats.MaxEdgeCongestion)
	}
}
