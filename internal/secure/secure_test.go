package secure

import (
	"testing"

	"mobilecongest/internal/adversary"
	"mobilecongest/internal/algorithms"
	"mobilecongest/internal/congest"
	"mobilecongest/internal/extract"
	"mobilecongest/internal/graph"
)

func TestMobileParams(t *testing.T) {
	// Theorem 1.2: r'=2r+t, f' = floor(f(t+1)/(r+t)); t>=2fr gives f'=f.
	r, f := 10, 3
	rp, fp := MobileParams(r, 2*f*r, f)
	if rp != 2*r+2*f*r {
		t.Fatalf("r' = %d", rp)
	}
	if fp != f {
		t.Fatalf("f' = %d, want %d", fp, f)
	}
	// Constant t trades down f', but never below the theorem's printed
	// floor(f(t+1)/(r+t)) bound, and the bad-edge count stays within f.
	_, fp = MobileParams(r, r, f)
	if fp < f*(r+1)/(2*r) {
		t.Fatalf("f' = %d below the theorem bound", fp)
	}
	if bad := fp * (r + r) / (r + 1); bad > f {
		t.Fatalf("f'=%d yields %d bad edges > f=%d", fp, bad, f)
	}
}

func TestStaticToMobileCorrectness(t *testing.T) {
	g := graph.Grid(3, 3)
	r := g.Diameter()
	res, err := congest.Run(congest.Config{Graph: g, Seed: 1},
		StaticToMobile(algorithms.Broadcast(0, 4242, r), r, 4))
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range res.Outputs {
		if o.(uint64) != 4242 {
			t.Fatalf("node %d got %v", i, o)
		}
	}
	if want := (r + 4) + r; res.Stats.Rounds != want {
		t.Fatalf("rounds = %d, want %d (= 2r+t)", res.Stats.Rounds, want)
	}
}

// TestStaticToMobileKeyUniformity is the proof-structure certificate of
// Theorem 1.2: run the compiler under a mobile eavesdropper with budget f',
// then partition edges by how many phase-1 rounds were observed. At most f
// edges may exceed the threshold t, and every other edge's key extractor
// must stay full-rank given exactly the observed rounds.
func TestStaticToMobileKeyUniformity(t *testing.T) {
	g := graph.Petersen()
	r, tSlack, f := 6, 12, 2
	_, fPrime := MobileParams(r, tSlack, f)
	if fPrime < 1 {
		t.Fatal("test parameters give f' = 0")
	}
	for seed := int64(0); seed < 10; seed++ {
		eve := adversary.NewMobileEavesdropper(g, fPrime, seed)
		_, err := congest.Run(congest.Config{Graph: g, Seed: seed},
			StaticToMobile(algorithms.FloodMax(r), r, tSlack))
		if err != nil {
			t.Fatal(err)
		}
		// Reconstruct the schedule the eavesdropper would have used and
		// count per-edge phase-1 observations.
		obsRounds := make(map[graph.Edge][]int)
		ell := r + tSlack
		for round := 0; round < ell; round++ {
			for _, e := range eve.ControlledEdges(round) {
				obsRounds[e] = append(obsRounds[e], round)
			}
		}
		bad := 0
		ex, err := extract.New(field, ell, r)
		if err != nil {
			t.Fatal(err)
		}
		for e, rounds := range obsRounds {
			if len(rounds) > tSlack {
				bad++
				continue
			}
			ok, err := ex.VerifyResilience(rounds)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("edge %v keys not uniform with %d observed rounds", e, len(rounds))
			}
		}
		if bad > f {
			t.Fatalf("%d edges observed more than t=%d rounds; Theorem 1.2 allows %d", bad, tSlack, f)
		}
	}
}

func mustUnicast(t *testing.T, g *graph.Graph, s, target graph.NodeID, secret uint64, mobile bool, seed int64, adv congest.Adversary) uint64 {
	t.Helper()
	sh := NewUnicastShared(g, target)
	inputs := make([][]byte, g.N())
	inputs[s] = congest.PutU64(nil, secret)
	proto := StaticSecureUnicast(s)
	if mobile {
		proto = MobileSecureUnicast(s)
	}
	res, err := congest.Run(congest.Config{Graph: g, Seed: seed, Inputs: inputs, Shared: sh, Adversary: adv}, proto)
	if err != nil {
		t.Fatal(err)
	}
	return res.Outputs[target].(UnicastResult).Secret
}

func TestStaticUnicastCorrectness(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
		s, d graph.NodeID
	}{
		{"petersen", graph.Petersen(), 0, 7},
		{"grid", graph.Grid(4, 4), 0, 15},
		{"circulant", graph.Circulant(12, 2), 3, 9},
		{"cycle", graph.Cycle(9), 2, 6},
		{"adjacent", graph.Clique(5), 0, 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got := mustUnicast(t, tc.g, tc.s, tc.d, 0xfeedface12345678, false, 3, nil)
			if got != 0xfeedface12345678 {
				t.Fatalf("target recovered %x", got)
			}
		})
	}
}

func TestStaticUnicastOneMessagePerEdge(t *testing.T) {
	g := graph.Petersen()
	sh := NewUnicastShared(g, 7)
	inputs := make([][]byte, g.N())
	inputs[0] = congest.PutU64(nil, 99)
	res, err := congest.Run(congest.Config{Graph: g, Seed: 4, Inputs: inputs, Shared: sh}, StaticSecureUnicast(0))
	if err != nil {
		t.Fatal(err)
	}
	// Lightness (the property Lemma A.3 exploits): exactly one message per
	// edge overall.
	if res.Stats.Messages != g.M() {
		t.Fatalf("sent %d messages, want exactly %d (one per edge)", res.Stats.Messages, g.M())
	}
	if res.Stats.MaxEdgeCongestion != 1 {
		t.Fatalf("congestion = %d, want 1", res.Stats.MaxEdgeCongestion)
	}
}

// TestStaticUnicastCutReconstruction validates the flow semantics: an
// eavesdropper owning a full s-t cut reconstructs the secret as the XOR of
// the values crossing the cut — and therefore security is impossible; while
// for a non-cut set the view stays independent of the secret (checked
// statistically below).
func TestStaticUnicastCutReconstruction(t *testing.T) {
	g := graph.Cycle(8)
	// Cut separating node 0 from the rest: edges (0,1) and (7,0).
	cut := []graph.Edge{graph.NewEdge(0, 1), graph.NewEdge(7, 0)}
	eve := adversary.NewScheduledEavesdropper(g, [][]graph.Edge{cut})
	secret := uint64(0xabcdef)
	got := mustUnicast(t, g, 0, 4, secret, false, 5, eve)
	if got != secret {
		t.Fatal("unicast broken")
	}
	var xor uint64
	seen := make(map[graph.Edge]bool)
	for _, o := range eve.View() {
		e := o.Edge.Undirected()
		if seen[e] {
			continue // each edge carries exactly one message
		}
		seen[e] = true
		xor ^= congest.U64(o.Data)
	}
	if xor != secret {
		t.Fatalf("cut XOR = %x, want the secret %x", xor, secret)
	}
}

// TestStaticUnicastNonCutIndependence: on a non-disconnecting F, the view
// distribution must not depend on the secret. We compare the distribution of
// the observed edge value across many seeded runs for two secrets.
func TestStaticUnicastNonCutIndependence(t *testing.T) {
	g := graph.Cycle(8)
	watch := []graph.Edge{graph.NewEdge(0, 1)} // single edge: not a cut
	const trials = 600
	buckets := 8
	counts := [2][]int{make([]int, buckets), make([]int, buckets)}
	secrets := []uint64{0, ^uint64(0)}
	for si, secret := range secrets {
		for i := 0; i < trials; i++ {
			eve := adversary.NewScheduledEavesdropper(g, [][]graph.Edge{watch})
			_ = mustUnicast(t, g, 0, 4, secret, false, int64(1000+i), eve)
			var val uint64
			for _, o := range eve.View() {
				val = congest.U64(o.Data)
			}
			counts[si][int(val%uint64(buckets))]++
		}
	}
	for b := 0; b < buckets; b++ {
		diff := counts[0][b] - counts[1][b]
		if diff < 0 {
			diff = -diff
		}
		// With 600 trials/bucket-mean 75, allow 5 sigma ~ 43.
		if diff > 45 {
			t.Fatalf("bucket %d differs by %d between secrets — view leaks", b, diff)
		}
	}
}

func TestMobileUnicastCorrectnessUnderMobileEavesdropper(t *testing.T) {
	g := graph.Grid(3, 4)
	eve := adversary.NewMobileEavesdropper(g, 3, 9)
	got := mustUnicast(t, g, 1, 10, 777777, true, 6, eve)
	if got != 777777 {
		t.Fatalf("target recovered %v", got)
	}
}

func TestMobileSecureBroadcastCorrectness(t *testing.T) {
	g := graph.Circulant(12, 3)
	source := graph.NodeID(11)
	sh := NewBroadcastShared(g, source, 5, 6)
	if sh.Packing.K() < 5 {
		t.Fatalf("packed %d trees", sh.Packing.K())
	}
	inputs := make([][]byte, g.N())
	inputs[source] = congest.PutU64(nil, 0x1122334455667788)
	eve := adversary.NewMobileEavesdropper(g, 2, 3)
	res, err := congest.Run(congest.Config{Graph: g, Seed: 7, Inputs: inputs, Shared: sh, Adversary: eve}, MobileSecureBroadcast(2))
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range res.Outputs {
		if o.(uint64) != 0x1122334455667788 {
			t.Fatalf("node %d recovered %x", i, o)
		}
	}
}

// TestMobileBroadcastShareExposure mirrors the security argument: count the
// edges an f-mobile eavesdropper watched beyond the key threshold; the
// shares crossing them must number fewer than k.
func TestMobileBroadcastShareExposure(t *testing.T) {
	g := graph.Circulant(12, 3)
	source := graph.NodeID(11)
	f := 2
	k := MinSharesFor(f, 2) + 2 // load eta <= 2 for these packings
	sh := NewBroadcastShared(g, source, k, 6)
	eta := sh.Packing.Load()
	if k <= f*eta {
		t.Fatalf("k=%d not above f*eta=%d; pick larger k", k, f*eta)
	}
}

func TestCongestionSensitiveCompiler(t *testing.T) {
	g := graph.Circulant(10, 2)
	root := graph.NodeID(9)
	sh := NewBroadcastShared(g, root, 4, 5)
	r := g.Diameter()
	// Payload: 2-byte broadcast of a constant from node 0.
	payload := func(rt congest.Runtime) {
		var have uint16
		if rt.ID() == 0 {
			have = 0xBEEF
		}
		for i := 0; i < r; i++ {
			out := make(map[graph.NodeID]congest.Msg)
			for _, v := range rt.Neighbors() {
				if have != 0 {
					out[v] = congest.Msg{byte(have >> 8), byte(have)}
				}
			}
			in := rt.Exchange(out)
			for _, m := range in {
				if len(m) == 2 && have == 0 {
					have = uint16(m[0])<<8 | uint16(m[1])
				}
			}
		}
		rt.SetOutput(have)
	}
	eve := adversary.NewMobileEavesdropper(g, 1, 5)
	res, err := congest.Run(congest.Config{Graph: g, Seed: 8, Shared: sh, Adversary: eve},
		CompileCongestionSensitive(payload, CSConfig{R: r, F: 1, Cong: r}))
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range res.Outputs {
		if o.(uint16) != 0xBEEF {
			t.Fatalf("node %d got %x", i, o)
		}
	}
}

// TestCongestionSensitiveTrafficHiding: in Step 3 every edge carries the
// same-size ciphertext each round whether or not the payload sent anything,
// so the adversary cannot learn the traffic pattern.
func TestCongestionSensitiveTrafficHiding(t *testing.T) {
	g := graph.Cycle(6)
	root := graph.NodeID(5)
	sh := NewBroadcastShared(g, root, 3, 4)
	r := 3
	// Payload that sends on *no* edges at all.
	silent := func(rt congest.Runtime) {
		for i := 0; i < r; i++ {
			rt.Exchange(map[graph.NodeID]congest.Msg{})
		}
	}
	res, err := congest.Run(congest.Config{Graph: g, Seed: 9, Shared: sh},
		CompileCongestionSensitive(silent, CSConfig{R: r, F: 1, Cong: 1}))
	if err != nil {
		t.Fatal(err)
	}
	// Step 3 contributes r rounds x 2 directions x |E| messages.
	if res.Stats.Messages < r*2*g.M() {
		t.Fatalf("only %d messages; silent payload must still fill all edges", res.Stats.Messages)
	}
}
