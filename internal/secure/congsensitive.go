package secure

import (
	"mobilecongest/internal/congest"
	"mobilecongest/internal/gf"
	"mobilecongest/internal/hashfam"
)

// Congestion-sensitive compiler with perfect mobile security (Appendix A.3,
// Theorem 1.3). Payload messages are at most 2 bytes (one GF(2^16) symbol);
// the compiled algorithm sends a fixed-size ciphertext on *every* edge in
// *every* round, hiding both content and traffic pattern:
//
//	Step 1: local secret exchange -> r one-time-pad keys per edge-direction;
//	Step 2: global secret exchange -> a c-wise independent hash h* shared by
//	        all nodes but hidden from the adversary (c = 4*f*cong), via the
//	        mobile-secure broadcast;
//	Step 3: round i sends h*(m ◦ round-tag) + K_i for a real message m, or a
//	        uniform random string for an empty slot. Receivers invert h*
//	        by table lookup and recognize empties by the padding check.

// csCipherBytes is the ciphertext size: 3 GF(2^16) symbols (48 bits), so a
// random string collides with a valid padded image w.p. 2^16/2^48 = 2^-32.
const csCipherBytes = 6

// CSConfig parameterizes the congestion-sensitive compiler.
type CSConfig struct {
	// R is the payload's exact round count.
	R int
	// F is the mobile eavesdropper bound.
	F int
	// Cong is the payload's congestion bound (messages per edge over the
	// whole run) — sets the hash independence c = 4*F*Cong.
	Cong int
	// KeySlack is the t of Theorem 1.2's first phase (defaults to 2*F*R,
	// which yields f' = F exactly).
	KeySlack int
}

// csHash derives the shared hash triple from a 16-byte seed: three c-wise
// independent polynomials over GF(2^16), one per output symbol.
func csHash(seed []byte, c int) [3]*hashfam.Hash {
	s := int64(congest.U64(seed))
	var out [3]*hashfam.Hash
	for i := range out {
		out[i] = hashfam.FromSeed(field, c, s+int64(i)*0x1f123bb5)
	}
	return out
}

// csEncrypt computes h*(m ◦ tag) for a 2-byte message symbol.
func csEncrypt(h [3]*hashfam.Hash, m gf.Elem) [3]gf.Elem {
	// Domain separation: symbol position folded into the input so the
	// three outputs are independent images of the same padded message.
	var out [3]gf.Elem
	for i := range out {
		out[i] = h[i].Eval(m)
	}
	return out
}

// CompileCongestionSensitive wraps a payload whose messages are at most
// 2 bytes. The run's Shared must be a *BroadcastShared rooted anywhere (it
// carries the packing for the global secret broadcast); the source of the
// global secret is the packing root.
func CompileCongestionSensitive(payload congest.Protocol, cfg CSConfig) congest.Protocol {
	if cfg.KeySlack <= 0 {
		cfg.KeySlack = 2 * cfg.F * cfg.R
	}
	return func(rt congest.Runtime) {
		sh, ok := rt.Shared().(*BroadcastShared)
		if !ok {
			panic("secure: run Config.Shared must be *secure.BroadcastShared")
		}
		// Step 1: r keys of 6 bytes per edge-direction. Reuse the 8-byte
		// pool machinery (we use the first 6 bytes of each key).
		pr := congest.Ports(rt)
		ell := cfg.R + cfg.KeySlack
		sent, recv := exchangeSecrets(pr, ell)
		sendKeys := deriveKeyPools(sent, ell, cfg.R, "congestion-sensitive")
		recvKeys := deriveKeyPools(recv, ell, cfg.R, "congestion-sensitive")

		// Step 2: the packing root broadcasts the hash seed; we reuse the
		// mobile-secure broadcast inline. The root's "input" here is drawn
		// from its private randomness, not rt.Input (which belongs to the
		// payload), so we inline the call with a shadow input.
		isRoot := false
		for _, tv := range sh.Views[rt.ID()] {
			if tv.Depth == 0 {
				isRoot = true
			}
		}
		var seedInput []byte
		if isRoot {
			seedInput = congest.PutU64(nil, rt.Rand().Uint64())
		}
		inner := &congest.WrappedRuntime{Base: rt, ShadowShared: sh}
		inner.ExchangeFn = rt.Exchange
		seedRt := &inputOverride{Runtime: inner, input: seedInput}
		var seedOut uint64
		capture := &outputCapture{Runtime: seedRt, sink: &seedOut}
		MobileSecureBroadcast(cfg.F)(capture)
		c := 4 * cfg.F * cfg.Cong
		if c < 2 {
			c = 2
		}
		h := csHash(congest.PutU64(nil, seedOut), c)

		// Step 3: build the inverse table once (2^16 entries).
		type img [3]gf.Elem
		table := make(map[img]gf.Elem, field.Order())
		for m := 0; m < field.Order(); m++ {
			table[img(csEncrypt(h, gf.Elem(m)))] = gf.Elem(m)
		}

		round := 0
		dec := make([]congest.Msg, pr.Degree())
		w := &congest.WrappedRuntime{Base: rt, ShadowShared: nil}
		w.ExchangePortsFn = func(out []congest.Msg) []congest.Msg {
			if round >= cfg.R {
				panic("secure: payload exceeded its declared rounds")
			}
			enc := pr.OutBuf()
			for p := 0; p < pr.Degree(); p++ {
				var cipher [csCipherBytes]byte
				if m := out[p]; m != nil {
					var sym gf.Elem
					if len(m) > 2 {
						panic("secure: congestion-sensitive payload message exceeds 2 bytes")
					}
					if len(m) > 0 {
						sym = gf.Elem(m[0]) << 8
					}
					if len(m) > 1 {
						sym |= gf.Elem(m[1])
					}
					ci := csEncrypt(h, sym)
					for i, s := range ci {
						cipher[2*i] = byte(s >> 8)
						cipher[2*i+1] = byte(s)
					}
				} else {
					// Empty slot: uniform random ciphertext.
					rt.Rand().Read(cipher[:])
				}
				enc[p] = xorBytes(cipher[:], sendKeys[p].Key(round))
			}
			in := pr.ExchangePorts(enc)
			for p, m := range in {
				dec[p] = nil
				if m == nil {
					continue
				}
				plain := xorBytes(m, recvKeys[p].Key(round))
				var ci img
				for i := 0; i < 3; i++ {
					if 2*i+1 < len(plain) {
						ci[i] = gf.Elem(plain[2*i])<<8 | gf.Elem(plain[2*i+1])
					}
				}
				if sym, okDec := table[ci]; okDec {
					dec[p] = congest.Msg{byte(sym >> 8), byte(sym)}
				}
			}
			round++
			return dec
		}
		payload(w)
	}
}

// inputOverride substitutes a protocol input.
type inputOverride struct {
	congest.Runtime
	input []byte
}

// Input returns the overridden input.
func (o *inputOverride) Input() []byte { return o.input }

// outputCapture intercepts SetOutput.
type outputCapture struct {
	congest.Runtime
	sink *uint64
}

// SetOutput stores uint64 outputs into the sink instead of the node output.
func (o *outputCapture) SetOutput(v any) {
	if u, ok := v.(uint64); ok {
		*o.sink = u
	}
}
