package congest

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"

	"mobilecongest/internal/graph"
)

// portFlood is the port-native floodMax twin: zero per-round allocation on
// the node side (the outbox is the reusable OutBuf, one payload buffer is
// shared across all ports, and payload buffers double-buffer across rounds
// so a delivered message stays immutable while receivers read it).
func portFlood(rounds int) Protocol {
	return func(rt Runtime) {
		pr := Ports(rt)
		best := uint64(rt.ID())
		var words [2][8]byte
		for r := 0; r < rounds; r++ {
			w := words[r&1][:]
			binary.BigEndian.PutUint64(w, best)
			m := Msg(w)
			out := pr.OutBuf()
			for i := range out {
				out[i] = m
			}
			in := pr.ExchangePorts(out)
			for _, mm := range in {
				if mm != nil {
					if v := U64(mm); v > best {
						best = v
					}
				}
			}
		}
		rt.SetOutput(best)
	}
}

// portTestGraphs are the topology families the port <-> slot <-> neighbour
// agreement is pinned on, including degree-0 nodes.
func portTestGraphs(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	withIsolated := graph.New(7) // edges only among {1,3,5}; 0,2,4,6 isolated
	for _, e := range [][2]graph.NodeID{{1, 3}, {3, 5}, {1, 5}} {
		if err := withIsolated.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return map[string]*graph.Graph{
		"clique9":     graph.Clique(9),
		"circulant12": graph.Circulant(12, 3),
		"expander24":  graph.RandomRegular(24, 4, rng),
		"tree-path10": graph.Path(10),
		"tree-star6":  graph.CompleteBipartite(1, 5),
		"isolated":    withIsolated,
	}
}

// TestPortSlotNeighborAgreement pins the three-way identity the port runtime
// is built on: port i of node u is Neighbors(u)[i] is edgeLayout slot
// rowStart[u]+i, with revSlot linking each direction to its reverse —
// across clique, circulant, expander, and tree topologies, including
// degree-0 nodes (empty port ranges).
func TestPortSlotNeighborAgreement(t *testing.T) {
	for name, g := range portTestGraphs(t) {
		t.Run(name, func(t *testing.T) {
			l := newEdgeLayout(g)
			for u := 0; u < g.N(); u++ {
				from := graph.NodeID(u)
				nbs := g.Neighbors(from)
				if int(l.degree(from)) != len(nbs) {
					t.Fatalf("node %d: layout degree %d, Neighbors %d", u, l.degree(from), len(nbs))
				}
				base := l.rowStart[u]
				for i, v := range nbs {
					s := base + int32(i)
					if de := (graph.DirEdge{From: from, To: v}); l.dirEdges[s] != de {
						t.Fatalf("node %d port %d: slot %d holds %v, want %v", u, i, s, l.dirEdges[s], de)
					}
					if got := l.slot(from, v); got != s {
						t.Fatalf("node %d port %d: slot(%d,%d) = %d, want %d", u, i, from, v, got, s)
					}
					rs := l.revSlot[s]
					if rs != l.slot(v, from) {
						t.Fatalf("node %d port %d: revSlot %d != slot(%d,%d) %d", u, i, rs, v, from, l.slot(v, from))
					}
					if de := (graph.DirEdge{From: v, To: from}); l.dirEdges[rs] != de {
						t.Fatalf("node %d port %d: reverse slot holds %v, want %v", u, i, l.dirEdges[rs], de)
					}
				}
			}
		})
	}
}

// TestPortRuntimeWiring checks the same identity end to end through running
// engines: every node sends its ID tagged with the port it sends on; the
// receiver verifies in[p] came from Neighbor(p) and was sent on the
// reciprocal port. Degree-0 nodes exchange empty rounds without incident.
func TestPortRuntimeWiring(t *testing.T) {
	for name, g := range portTestGraphs(t) {
		forEngine(t, func(t *testing.T, e Engine) {
			proto := func(rt Runtime) {
				pr := Ports(rt)
				if pr.Degree() != len(rt.Neighbors()) {
					rt.SetOutput(fmt.Sprintf("degree %d != neighbors %d", pr.Degree(), len(rt.Neighbors())))
					return
				}
				out := pr.OutBuf()
				if len(out) != pr.Degree() {
					rt.SetOutput("OutBuf length != Degree")
					return
				}
				for p := range out {
					v := pr.Neighbor(p)
					if rt.Neighbors()[p] != v || pr.Port(v) != p {
						rt.SetOutput(fmt.Sprintf("port %d inconsistent with neighbor %d", p, v))
						return
					}
					m := make(Msg, 0, 16)
					m = PutU64(m, uint64(rt.ID()))
					out[p] = PutU64(m, uint64(p))
				}
				in := pr.ExchangePorts(out)
				recv := make([][2]uint64, len(in)) // per port: (sender ID, sender's port)
				for p, m := range in {
					if m == nil {
						rt.SetOutput(fmt.Sprintf("port %d silent, expected a message", p))
						return
					}
					from, sentPort := U64(m), U64(m[8:])
					if graph.NodeID(from) != pr.Neighbor(p) {
						rt.SetOutput(fmt.Sprintf("port %d delivered from %d, want %d", p, from, pr.Neighbor(p)))
						return
					}
					recv[p] = [2]uint64{from, sentPort}
				}
				rt.SetOutput(recv)
			}
			res, err := e.Run(Config{Graph: g, Seed: 1}, proto)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			for u, o := range res.Outputs {
				recv, ok := o.([][2]uint64)
				if !ok {
					t.Fatalf("%s node %d: %v", name, u, o)
				}
				nbs := g.Neighbors(graph.NodeID(u))
				if len(recv) != len(nbs) {
					t.Fatalf("%s node %d: %d inbox ports, degree %d", name, u, len(recv), len(nbs))
				}
				for p, r := range recv {
					sender := nbs[p]
					// The port the sender used must be the index of u in the
					// sender's ascending neighbour list — verified graph-side.
					wantPort := -1
					for i, v := range g.Neighbors(sender) {
						if v == graph.NodeID(u) {
							wantPort = i
						}
					}
					if int(r[1]) != wantPort {
						t.Fatalf("%s: %d->%d used sender port %d, want %d", name, sender, u, r[1], wantPort)
					}
				}
			}
		})
	}
}

// TestPortNativeFaultFreeMaterializesNoMaps is the port twin of
// TestSlotNativeAdversaryMaterializesNoMaps: a fault-free run of a
// port-native protocol materializes no Traffic map in any round (the
// lazily-cached view on the round buffer stays nil through collection,
// delivery, and observer construction) on both engines.
func TestPortNativeFaultFreeMaterializesNoMaps(t *testing.T) {
	forEngine(t, func(t *testing.T, e Engine) {
		guard := &materializeGuard{t: t}
		res, err := e.Run(Config{
			Graph: graph.Circulant(24, 3), Seed: 5,
			Observers: []Observer{guard},
		}, portFlood(6))
		if err != nil {
			t.Fatal(err)
		}
		if guard.rounds != res.Stats.Rounds {
			t.Fatalf("guard saw %d rounds, stats say %d", guard.rounds, res.Stats.Rounds)
		}
		if res.Stats.Messages == 0 {
			t.Fatal("port flood sent nothing — the guard guarded an empty path")
		}
		for i, o := range res.Outputs {
			if o.(uint64) != 23 {
				t.Fatalf("node %d output %v, want 23", i, o)
			}
		}
	})
}

// TestPortNativeFaultFreeZeroAllocPerRound pins the tentpole claim: on the
// fault-free port-native path, a reused RunContext executes extra rounds
// with ZERO additional allocations — no per-round maps, no per-round
// slices, nothing. Measured as the allocation delta between an R-round and
// a 2R-round run of the same protocol in the same context, on both engines.
func TestPortNativeFaultFreeZeroAllocPerRound(t *testing.T) {
	g := graph.Circulant(24, 3)
	forEngine(t, func(t *testing.T, e Engine) {
		cr, ok := e.(ContextRunner)
		if !ok {
			t.Fatalf("engine %s does not implement ContextRunner", e.Name())
		}
		rc := NewRunContext()
		measure := func(rounds int) float64 {
			proto := portFlood(rounds)
			// Warm the context so slab/touched capacities reach steady state.
			if _, err := cr.RunIn(rc, Config{Graph: g, Seed: 3}, proto); err != nil {
				t.Fatal(err)
			}
			return testing.AllocsPerRun(10, func() {
				if _, err := cr.RunIn(rc, Config{Graph: g, Seed: 3}, proto); err != nil {
					t.Fatal(err)
				}
			})
		}
		base := measure(4)
		double := measure(8)
		if double > base {
			t.Fatalf("per-round allocation on the fault-free port path: %.1f allocs at 4 rounds, %.1f at 8", base, double)
		}
	})
}

// TestExchangeCompatOverPorts locks the compat wrapper's semantics: map and
// port forms of the same protocol produce identical Results, a nil-map
// Exchange works, the inbox map of a silent round is the shared canonical
// empty map (never nil), and mixing both forms within one protocol works.
func TestExchangeCompatOverPorts(t *testing.T) {
	g := graph.Circulant(16, 2)
	forEngine(t, func(t *testing.T, e Engine) {
		want, err := e.Run(Config{Graph: g, Seed: 9}, floodMax(5))
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.Run(Config{Graph: g, Seed: 9}, portFlood(5))
		if err != nil {
			t.Fatal(err)
		}
		if want.Stats != got.Stats {
			t.Fatalf("stats differ map vs port:\n map  %+v\n port %+v", want.Stats, got.Stats)
		}
		for i := range want.Outputs {
			if want.Outputs[i] != got.Outputs[i] {
				t.Fatalf("node %d: map %v port %v", i, want.Outputs[i], got.Outputs[i])
			}
		}

		mixed := func(rt Runtime) {
			pr := Ports(rt)
			in := rt.Exchange(nil) // nil map: silent round
			if in == nil {
				panic("silent inbox must not be nil")
			}
			if len(in) != 0 {
				panic("expected empty inbox")
			}
			out := pr.OutBuf()
			for p := range out {
				out[p] = U64Msg(uint64(rt.ID()))
			}
			pin := pr.ExchangePorts(out)
			sum := uint64(0)
			for _, m := range pin {
				sum += U64(m)
			}
			min := rt.Exchange(map[graph.NodeID]Msg{rt.Neighbors()[0]: U64Msg(sum)})
			_ = min
			rt.SetOutput(sum)
		}
		if _, err := e.Run(Config{Graph: g, Seed: 2}, mixed); err != nil {
			t.Fatal(err)
		}
	})
}

// TestPortOutboxTooLongRejected: an outbox longer than the node's degree
// aborts the run with a descriptive error instead of corrupting slots.
func TestPortOutboxTooLongRejected(t *testing.T) {
	forEngine(t, func(t *testing.T, e Engine) {
		bad := func(rt Runtime) {
			pr := Ports(rt)
			out := make([]Msg, pr.Degree()+1)
			out[len(out)-1] = U64Msg(1)
			pr.ExchangePorts(out)
		}
		if _, err := e.Run(Config{Graph: graph.Path(3), Seed: 1}, bad); err == nil {
			t.Fatal("oversized port outbox accepted")
		}
	})
}

// TestMapExchangeIgnoresAbandonedOutBuf: a map Exchange sends exactly the
// map's entries — port writes a protocol abandoned in OutBuf before
// switching forms are cleared, not leaked onto the wire.
func TestMapExchangeIgnoresAbandonedOutBuf(t *testing.T) {
	forEngine(t, func(t *testing.T, e Engine) {
		proto := func(rt Runtime) {
			pr := Ports(rt)
			out := pr.OutBuf()
			for p := range out {
				out[p] = U64Msg(42) // abandoned: the round exchanges via the map form
			}
			in := rt.Exchange(nil)
			rt.SetOutput(len(in))
		}
		res, err := e.Run(Config{Graph: graph.Path(2), Seed: 1}, proto)
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.Messages != 0 {
			t.Fatalf("abandoned OutBuf entries leaked: %d messages sent", res.Stats.Messages)
		}
		for i, o := range res.Outputs {
			if o.(int) != 0 {
				t.Fatalf("node %d received %d messages, want 0", i, o)
			}
		}
	})
}
