package congest

import (
	"testing"

	"mobilecongest/internal/graph"
)

// slotFlipper is a minimal slot-native byzantine: each round it XORs the
// first byte of the first f occupied slots.
type slotFlipper struct{ f int }

func (a slotFlipper) PerRoundEdges() int { return a.f }

func (a slotFlipper) Intercept(_ int, tr *RoundTraffic) {
	n := 0
	for s, m := range tr.All() {
		if n == a.f {
			break
		}
		if len(m) == 0 {
			continue
		}
		c := m.Clone()
		c[0] ^= 0xFF
		tr.Set(s, c)
		n++
	}
}

// materializeGuard fails the test if any round's buffer ever holds a cached
// map view — the witness that something on the adversarial path called
// materialize().
type materializeGuard struct {
	t      *testing.T
	rounds int
}

func (g *materializeGuard) RoundStart(int) {}
func (g *materializeGuard) RoundDelivered(round int, view *RoundView) {
	g.rounds++
	if view.buf.view != nil {
		g.t.Errorf("round %d: traffic map was materialized on a slot-native adversarial path", round)
	}
}
func (g *materializeGuard) RunDone(Stats, error) {}

// TestSlotNativeAdversaryMaterializesNoMaps is the acceptance gate for the
// slot-native boundary: with a slot-native adversary installed (and no
// observer asking for the map view), no round of the run materializes a
// map[DirEdge]Msg — the lazily-cached view on the round buffer stays nil
// through the entire adversarial path (intercept, budget diff, delivery,
// observer construction).
func TestSlotNativeAdversaryMaterializesNoMaps(t *testing.T) {
	forEngine(t, func(t *testing.T, e Engine) {
		guard := &materializeGuard{t: t}
		res, err := e.Run(Config{
			Graph: graph.Circulant(24, 3), Seed: 5,
			Adversary: slotFlipper{f: 2},
			Observers: []Observer{guard},
		}, floodMax(6))
		if err != nil {
			t.Fatal(err)
		}
		if guard.rounds != res.Stats.Rounds {
			t.Fatalf("guard saw %d rounds, stats say %d", guard.rounds, res.Stats.Rounds)
		}
		if res.Stats.CorruptedEdgeRounds == 0 {
			t.Fatal("slot flipper corrupted nothing — the guard guarded an empty path")
		}
	})
}

// TestAdapterPathStillMaterializes is the control for the guard itself: the
// map-compat adapter necessarily materializes the view, so the guard must
// trip on it (checked via the cached-view field, not by failing the test).
func TestAdapterPathStillMaterializes(t *testing.T) {
	seen := false
	probe := observerFunc(func(_ int, view *RoundView) {
		if view.buf.view != nil {
			seen = true
		}
	})
	_, err := (StepEngine{}).Run(Config{
		Graph: graph.Circulant(12, 2), Seed: 5,
		Adversary: AdaptTraffic(trafficIdentity2{}),
		Observers: []Observer{probe},
	}, floodMax(3))
	if err != nil {
		t.Fatal(err)
	}
	if !seen {
		t.Fatal("adapter path never materialized a map — the no-materialize guard would be vacuous")
	}
}

type observerFunc func(round int, view *RoundView)

func (observerFunc) RoundStart(int)                       {}
func (f observerFunc) RoundDelivered(r int, v *RoundView) { f(r, v) }
func (observerFunc) RunDone(Stats, error)                 {}

type trafficIdentity2 struct{}

func (trafficIdentity2) Intercept(_ int, tr Traffic) Traffic { return tr }

// TestRunContextReuseDeterministic: repeated runs inside one RunContext are
// byte-identical to fresh-context runs — reused RNGs re-seed exactly, reused
// buffers leak nothing between runs, and stats reset fully.
func TestRunContextReuseDeterministic(t *testing.T) {
	forEngine(t, func(t *testing.T, e Engine) {
		cr, ok := e.(ContextRunner)
		if !ok {
			t.Fatalf("engine %s does not implement ContextRunner", e.Name())
		}
		g := graph.Circulant(14, 2)
		cfg := Config{Graph: g, Seed: 9}
		proto := randProto(4)

		fresh, err := e.Run(cfg, proto)
		if err != nil {
			t.Fatal(err)
		}
		rc := NewRunContext()
		for rep := 0; rep < 3; rep++ {
			got, err := cr.RunIn(rc, cfg, proto)
			if err != nil {
				t.Fatal(err)
			}
			if got.Stats != fresh.Stats {
				t.Fatalf("rep %d: reused-context stats %+v != fresh %+v", rep, got.Stats, fresh.Stats)
			}
			for i := range got.Outputs {
				if got.Outputs[i] != fresh.Outputs[i] {
					t.Fatalf("rep %d: node %d output %v != fresh %v", rep, i, got.Outputs[i], fresh.Outputs[i])
				}
			}
		}
		// Different seeds through the same context still diverge.
		other, err := cr.RunIn(rc, Config{Graph: g, Seed: 10}, proto)
		if err != nil {
			t.Fatal(err)
		}
		same := true
		for i := range other.Outputs {
			if other.Outputs[i] != fresh.Outputs[i] {
				same = false
			}
		}
		if same {
			t.Fatal("different seeds produced identical outputs through a reused context")
		}
	})
}

// TestRunContextRebindsAcrossGraphs: one context serving runs on different
// graphs (the sweep-worker pattern) rebinds cleanly, including back-to-back
// alternation.
func TestRunContextRebindsAcrossGraphs(t *testing.T) {
	g1 := graph.Clique(6)
	g2 := graph.Cycle(9)
	rc := NewRunContext()
	e := StepEngine{}
	for rep := 0; rep < 2; rep++ {
		for _, g := range []*graph.Graph{g1, g2} {
			want, err := e.Run(Config{Graph: g, Seed: 4}, floodMax(3))
			if err != nil {
				t.Fatal(err)
			}
			got, err := e.RunIn(rc, Config{Graph: g, Seed: 4}, floodMax(3))
			if err != nil {
				t.Fatal(err)
			}
			if got.Stats != want.Stats {
				t.Fatalf("rebind n=%d: stats %+v != %+v", g.N(), got.Stats, want.Stats)
			}
		}
	}
}

// TestRunContextReuseWithAdversary: a stateful adversary instance reused
// across runs in one context resets per run (RunResetter), so every run
// corrupts identically — and identically to a fresh-context run.
func TestRunContextReuseWithAdversary(t *testing.T) {
	forEngine(t, func(t *testing.T, e Engine) {
		cr := e.(ContextRunner)
		g := graph.Circulant(12, 2)
		adv := slotFlipper{f: 1}
		cfg := func() Config { return Config{Graph: g, Seed: 6, Adversary: adv} }
		want, err := e.Run(cfg(), floodMax(5))
		if err != nil {
			t.Fatal(err)
		}
		rc := NewRunContext()
		for rep := 0; rep < 2; rep++ {
			got, err := cr.RunIn(rc, cfg(), floodMax(5))
			if err != nil {
				t.Fatal(err)
			}
			if got.Stats != want.Stats {
				t.Fatalf("rep %d: stats %+v != %+v", rep, got.Stats, want.Stats)
			}
		}
	})
}
