package congest

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"mobilecongest/internal/graph"
)

// flipAllAdv is a slot-native adversary that flips a byte of every collected
// message — it dirties the whole touched set, which on any non-trivial graph
// exceeds parallelSettleMin and drives settle through the pool-chunked path.
type flipAllAdv struct{}

func (flipAllAdv) Intercept(_ int, rt *RoundTraffic) {
	for s, m := range rt.All() {
		mm := append(Msg(nil), m...)
		mm[0] ^= 0xff
		rt.Set(s, mm)
	}
}

// shardCorpus is the topology set the shard-count sweep runs over: shard
// boundaries inside rows, degree-0 nodes, a hub-heavy star, and graphs
// smaller than the largest shard count.
func shardCorpus(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	gs := portTestGraphs(t)
	gs["path3"] = graph.Path(3)
	return gs
}

// TestShardEngineMatchesStepAcrossShardCounts pins the determinism contract
// where it is sharpest: for every topology (including degree-0 nodes), shard
// counts 1, 2, 3, 5, and one larger than any n (clamped), fault-free and
// under an everything-dirty adversary, the shard engine's Stats and Outputs
// are identical to the step engine's.
func TestShardEngineMatchesStepAcrossShardCounts(t *testing.T) {
	protos := map[string]func() Protocol{
		"floodmax":  func() Protocol { return floodMax(6) },
		"portflood": func() Protocol { return portFlood(6) },
	}
	advs := map[string]func() Adversary{
		"fault-free": func() Adversary { return nil },
		"flip-all":   func() Adversary { return flipAllAdv{} },
	}
	for gname, g := range shardCorpus(t) {
		for pname, mkProto := range protos {
			for aname, mkAdv := range advs {
				cfg := Config{Graph: g, Seed: 11, Adversary: mkAdv()}
				want, err := StepEngine{}.Run(cfg, mkProto())
				if err != nil {
					t.Fatalf("%s/%s/%s: step: %v", gname, pname, aname, err)
				}
				for _, shards := range []int{1, 2, 3, 5, 64} {
					got, err := ShardEngine{Shards: shards}.Run(cfg, mkProto())
					if err != nil {
						t.Fatalf("%s/%s/%s shards=%d: %v", gname, pname, aname, shards, err)
					}
					if want.Stats != got.Stats {
						t.Fatalf("%s/%s/%s shards=%d: stats differ\n step  %+v\n shard %+v",
							gname, pname, aname, shards, want.Stats, got.Stats)
					}
					w := fmt.Sprintf("%#v", want.Outputs)
					o := fmt.Sprintf("%#v", got.Outputs)
					if w != o {
						t.Fatalf("%s/%s/%s shards=%d: outputs differ\n step  %s\n shard %s",
							gname, pname, aname, shards, w, o)
					}
				}
			}
		}
	}
}

// TestShardBounds pins the CSR partition invariants: boundaries are monotone,
// cover [0, n], never split below an earlier boundary, and balance by slots —
// on a star, the hub's heavy row may not leave every other shard empty of
// work while also splitting the hub row (rows are atomic).
func TestShardBounds(t *testing.T) {
	rc := NewRunContext()
	star := graph.CompleteBipartite(1, 5) // node 0 has degree 5, leaves degree 1
	rc.bind(star)
	for _, shards := range []int{1, 2, 3, 6, 9} {
		b := rc.shardBounds(shards)
		if len(b) != shards+1 || b[0] != 0 || b[shards] != int32(star.N()) {
			t.Fatalf("shards=%d: bad bounds %v", shards, b)
		}
		for k := 0; k < shards; k++ {
			if b[k] > b[k+1] {
				t.Fatalf("shards=%d: non-monotone bounds %v", shards, b)
			}
		}
	}
	// Caching: same shard count returns the identical slice; a rebind
	// invalidates it.
	b1 := rc.shardBounds(3)
	b2 := rc.shardBounds(3)
	if &b1[0] != &b2[0] {
		t.Fatal("shardBounds(3) not cached")
	}
	rc.bind(graph.Circulant(12, 2))
	b3 := rc.shardBounds(3)
	if b3[3] != 12 {
		t.Fatalf("bounds not recomputed after rebind: %v", b3)
	}
}

// badSender sends a message to a non-neighbor from each node in bad, via the
// map-compat Exchange, in the protocol's first round.
func badSender(bad map[graph.NodeID]bool) Protocol {
	return func(rt Runtime) {
		out := map[graph.NodeID]Msg{}
		if bad[rt.ID()] {
			out[rt.ID()] = U64Msg(1) // self is never a neighbor
		}
		rt.Exchange(out)
	}
}

// TestShardEngineErrorMatchesStep pins abort determinism: when nodes in
// different shards mis-send in the same round, every engine reports the
// lowest offending node — the shard engine surfaces the lowest shard's
// error, never whichever worker lost the race.
func TestShardEngineErrorMatchesStep(t *testing.T) {
	g := graph.Circulant(24, 3)
	bad := map[graph.NodeID]bool{2: true, 20: true} // distinct shards at Shards=3
	_, wantErr := StepEngine{}.Run(Config{Graph: g, Seed: 5}, badSender(bad))
	if wantErr == nil {
		t.Fatal("step engine accepted a non-neighbor send")
	}
	for _, shards := range []int{1, 2, 3, 8} {
		_, err := ShardEngine{Shards: shards}.Run(Config{Graph: g, Seed: 5}, badSender(bad))
		if err == nil || err.Error() != wantErr.Error() {
			t.Fatalf("shards=%d: error %q, step engine said %q", shards, err, wantErr)
		}
	}
}

// TestShardEnginePanicPropagates pins that a protocol panic on a pool worker
// unwinds the coordinating goroutine (the engine caller), not the worker.
func TestShardEnginePanicPropagates(t *testing.T) {
	g := graph.Circulant(24, 3)
	boom := func(rt Runtime) {
		if rt.ID() == 4 { // inside shard 0 of 3: a pool worker's shard
			panic("shard-test-boom")
		}
		rt.Exchange(nil)
	}
	defer func() {
		if r := recover(); r != "shard-test-boom" {
			t.Fatalf("recovered %v, want the protocol's panic value", r)
		}
	}()
	ShardEngine{Shards: 3}.Run(Config{Graph: g, Seed: 1}, boom)
	t.Fatal("protocol panic did not propagate")
}

// waitGoroutines polls until the goroutine count drops back to at most want.
func waitGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > want {
		if time.Now().After(deadline) {
			t.Fatalf("goroutine count stuck at %d, want <= %d", runtime.NumGoroutine(), want)
		}
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
}

// TestShardEnginePoolReuseAndClose pins the pool lifecycle: repeated runs in
// one context park and reuse the same workers (goroutine count flat), and
// Close releases them.
func TestShardEnginePoolReuseAndClose(t *testing.T) {
	g := graph.Circulant(24, 3)
	base := runtime.NumGoroutine()
	rc := NewRunContext()
	e := ShardEngine{Shards: 4}
	if _, err := e.RunIn(rc, Config{Graph: g, Seed: 1}, portFlood(3)); err != nil {
		t.Fatal(err)
	}
	withPool := runtime.NumGoroutine()
	if withPool < base+3 {
		t.Fatalf("expected 3 parked workers: %d goroutines before, %d after", base, withPool)
	}
	for i := 0; i < 5; i++ {
		if _, err := e.RunIn(rc, Config{Graph: g, Seed: 1}, portFlood(3)); err != nil {
			t.Fatal(err)
		}
	}
	if got := runtime.NumGoroutine(); got > withPool {
		t.Fatalf("pool not reused: %d goroutines after first run, %d after five more", withPool, got)
	}
	rc.Close()
	waitGoroutines(t, base)
	// The context stays usable after Close: the next run rebuilds the pool.
	if _, err := e.RunIn(rc, Config{Graph: g, Seed: 1}, portFlood(3)); err != nil {
		t.Fatal(err)
	}
	rc.Close()
	waitGoroutines(t, base)
}

// TestShardEngineZeroAllocExplicitCounts is the shard-engine zero-alloc pin
// at explicit multi-shard counts (forEngine covers Shards:3 via the shared
// TestPortNativeFaultFreeZeroAllocPerRound): extra fault-free rounds in a
// warm reused context cost zero allocations per round, pool dispatch
// included.
func TestShardEngineZeroAllocExplicitCounts(t *testing.T) {
	g := graph.Circulant(24, 3)
	for _, shards := range []int{2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			e := ShardEngine{Shards: shards}
			rc := NewRunContext()
			defer rc.Close()
			measure := func(rounds int) float64 {
				proto := portFlood(rounds)
				if _, err := e.RunIn(rc, Config{Graph: g, Seed: 3}, proto); err != nil {
					t.Fatal(err)
				}
				return testing.AllocsPerRun(10, func() {
					if _, err := e.RunIn(rc, Config{Graph: g, Seed: 3}, proto); err != nil {
						t.Fatal(err)
					}
				})
			}
			base := measure(4)
			double := measure(8)
			if double > base {
				t.Fatalf("per-round allocation on the shard fault-free path: %.1f allocs at 4 rounds, %.1f at 8", base, double)
			}
		})
	}
}

// TestShardEngineLimitShards pins the oversubscription knob: a context cap
// below GOMAXPROCS bounds the default-count engine's pool, an explicit
// Shards overrides the cap, and cap removal restores the default.
func TestShardEngineLimitShards(t *testing.T) {
	rc := NewRunContext()
	defer rc.Close()
	rc.LimitShards(1)
	if got := (ShardEngine{}).shardCount(rc, 24); got != 1 {
		t.Fatalf("capped default shard count = %d, want 1", got)
	}
	if got := (ShardEngine{Shards: 3}).shardCount(rc, 24); got != 3 {
		t.Fatalf("explicit shard count = %d under cap, want 3", got)
	}
	rc.LimitShards(0)
	if got := (ShardEngine{}).shardCount(rc, 24); got != min(runtime.GOMAXPROCS(0), 24) {
		t.Fatalf("uncapped default shard count = %d, want min(GOMAXPROCS, n)", got)
	}
	if got := (ShardEngine{Shards: 64}).shardCount(rc, 24); got != 24 {
		t.Fatalf("shard count not clamped to n: %d", got)
	}
}

// TestParallelSettleMatchesSequential drives settle through the pool-chunked
// diff and checks it against the sequential verdict on the same overlay: the
// touched-edge set, the changed list, and the delivered traffic must be
// byte-identical. An overlay that sets some slots back to their original
// bytes makes the diff non-trivial.
func TestParallelSettleMatchesSequential(t *testing.T) {
	g := graph.Circulant(24, 3) // 144 slots >= parallelSettleMin
	mkOverlay := func(rt *RoundTraffic) {
		for s, m := range rt.All() {
			if s%3 == 0 {
				rt.Set(s, append(Msg(nil), m...)) // identical bytes: no budget
			} else {
				rt.Set(s, U64Msg(uint64(s)))
			}
		}
	}
	run := func(pool *shardPool) ([]graph.Edge, []int32) {
		rc := NewRunContext()
		rc.bind(g)
		for u := 0; u < g.N(); u++ {
			base := rc.layout.rowStart[u]
			for p := 0; p < int(rc.layout.degree(graph.NodeID(u))); p++ {
				rc.cur.put(base+int32(p), U64Msg(uint64(u)))
			}
		}
		rt := rc.rt
		rt.begin(rc.cur)
		mkOverlay(rt)
		edges, err := rt.settle(pool)
		if err != nil {
			t.Fatal(err)
		}
		return append([]graph.Edge(nil), edges...), append([]int32(nil), rt.changed...)
	}
	wantEdges, wantChanged := run(nil)
	pool := newShardPool(3)
	defer pool.close()
	gotEdges, gotChanged := run(pool)
	if fmt.Sprint(wantEdges) != fmt.Sprint(gotEdges) {
		t.Fatalf("touched edges differ:\n sequential %v\n parallel   %v", wantEdges, gotEdges)
	}
	if fmt.Sprint(wantChanged) != fmt.Sprint(gotChanged) {
		t.Fatalf("changed slots differ:\n sequential %v\n parallel   %v", wantChanged, gotChanged)
	}
	if len(wantEdges) == 0 || len(wantChanged) == 0 {
		t.Fatal("overlay produced no changes; the test is vacuous")
	}
}
