package congest

import (
	"mobilecongest/internal/graph"
)

// abortSignal unwinds node goroutines (or coroutines) when the engine aborts
// a run.
type abortSignal struct{}

// GoroutineEngine runs each node's protocol as straight-line Go code in its
// own goroutine; ExchangePorts blocks on channels and acts as the
// end-of-round barrier. This is the original engine: maximally faithful to
// the "each node is an independent processor" reading of the model, at the
// price of two channel handoffs plus scheduler wakeups per node per round.
//
// Port I/O stays race-free without copying because the slabs partition by
// node: a node only ever writes its own CSR range of the out slab and only
// reads its own range of the in slab, and the channel barrier orders those
// accesses against the coordinator's collection and delivery.
type GoroutineEngine struct{}

// Name implements Engine.
func (GoroutineEngine) Name() string { return "goroutine" }

// goroutineNode is the per-node runtime of the goroutine engine. It points
// into the run's shared nodeCore slice so the run core can gather outputs.
type goroutineNode struct {
	*nodeCore

	parkCh chan struct{} // node -> coordinator: outbox pending
	inCh   chan struct{} // coordinator -> node: inbox delivered
	doneCh chan struct{}
	abort  chan struct{}
}

var _ PortRuntime = (*goroutineNode)(nil)

// ExchangePorts implements the round barrier over the park/deliver channels.
//
//mobilevet:hotpath
func (s *goroutineNode) ExchangePorts(out []Msg) []Msg {
	s.outPending = out
	select {
	case s.parkCh <- struct{}{}:
	case <-s.abort:
		panic(abortSignal{})
	}
	select {
	case <-s.inCh:
		s.round++
		return s.inBuf
	case <-s.abort:
		panic(abortSignal{})
	}
}

// Exchange is the legacy map barrier, a compat wrapper over the port path
// (see stepNode.Exchange).
func (s *goroutineNode) Exchange(out map[graph.NodeID]Msg) map[graph.NodeID]Msg {
	return s.portsToMapIn(s.ExchangePorts(s.mapOutToPorts(out)))
}

// Run implements Engine.
func (e GoroutineEngine) Run(cfg Config, proto Protocol) (*Result, error) {
	return e.RunIn(nil, cfg, proto)
}

// RunIn implements ContextRunner: it executes the run inside rc, reusing the
// context's layout, buffers, node cores, and RNGs (nil rc runs in a fresh
// throwaway context). All node goroutines are joined before RunIn returns,
// so nothing references the context's state afterwards.
func (GoroutineEngine) RunIn(rc *RunContext, cfg Config, proto Protocol) (res *Result, err error) {
	core, err := newRunCore(rc, cfg)
	if err != nil {
		return nil, err
	}
	defer func() { core.runDone(err) }()
	g := core.g
	abort := make(chan struct{})
	cores := core.newNodeCores()
	nodes := make([]*goroutineNode, g.N())
	for i := range nodes {
		nodes[i] = &goroutineNode{
			nodeCore: &cores[i],
			parkCh:   make(chan struct{}),
			inCh:     make(chan struct{}),
			doneCh:   make(chan struct{}),
			abort:    abort,
		}
	}
	for _, s := range nodes {
		go func(s *goroutineNode) {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(abortSignal); !ok {
						panic(r)
					}
				}
				close(s.doneCh)
			}()
			proto(s)
		}(s)
	}

	active := make([]bool, g.N())
	nActive := g.N()
	for i := range active {
		active[i] = true
	}

	abortAll := func() {
		close(abort)
		for _, s := range nodes {
			<-s.doneCh
		}
	}

	for nActive > 0 {
		if err := core.beginRound(); err != nil {
			abortAll()
			return nil, err
		}
		nActive, err = core.goroutineRound(nodes, active, nActive)
		if err != nil {
			abortAll()
			return nil, err
		}
		if nActive == 0 {
			break
		}
		if err := core.endRound(); err != nil {
			abortAll()
			return nil, err
		}
		for i, s := range nodes {
			if !active[i] {
				continue
			}
			s.inCh <- struct{}{}
		}
	}

	return core.finish(outputs(cores)), nil
}

// goroutineRound is the goroutine engine's collection phase: receive each
// live node's park (collecting its outbox) or its termination. Returns the
// updated live-node count; on error the caller aborts the remaining nodes.
//
//mobilevet:hotpath
func (c *runCore) goroutineRound(nodes []*goroutineNode, active []bool, nActive int) (int, error) {
	for i, s := range nodes {
		if !active[i] {
			continue
		}
		select {
		case <-s.parkCh:
			if err := c.collectOutbox(s.nodeCore); err != nil {
				return nActive, err
			}
		case <-s.doneCh:
			active[i] = false
			nActive--
		}
	}
	return nActive, nil
}
