package congest

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mobilecongest/internal/graph"
)

// TestEngineDeterminismQuick: arbitrary random-messaging protocols produce
// identical outputs for identical seeds on random graphs.
func TestEngineDeterminismQuick(t *testing.T) {
	f := func(seed int64, roundsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(6)
		g := graph.Circulant(maxI(n, 5), 2)
		rounds := 1 + int(roundsRaw)%4
		proto := func(rt Runtime) {
			acc := uint64(0)
			for r := 0; r < rounds; r++ {
				out := make(map[graph.NodeID]Msg)
				for _, v := range rt.Neighbors() {
					if rt.Rand().Intn(2) == 0 {
						out[v] = U64Msg(rt.Rand().Uint64())
					}
				}
				in := rt.Exchange(out)
				for _, m := range in {
					acc ^= U64(m)
				}
			}
			rt.SetOutput(acc)
		}
		r1, err1 := Run(Config{Graph: g, Seed: seed}, proto)
		r2, err2 := Run(Config{Graph: g, Seed: seed}, proto)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range r1.Outputs {
			if r1.Outputs[i] != r2.Outputs[i] {
				return false
			}
		}
		return r1.Stats == r2.Stats
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TestTrafficCloneIndependent: mutating a clone never touches the original.
func TestTrafficCloneIndependent(t *testing.T) {
	f := func(payload []byte) bool {
		if len(payload) == 0 {
			payload = []byte{1}
		}
		tr := Traffic{{From: 0, To: 1}: Msg(payload).Clone()}
		c := tr.Clone()
		c[graph.DirEdge{From: 0, To: 1}][0] ^= 0xFF
		return tr[graph.DirEdge{From: 0, To: 1}][0] == payload[0]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestSortedEdgesDeterministic: SortedEdges is a stable canonical order.
func TestSortedEdgesDeterministic(t *testing.T) {
	tr := Traffic{
		{From: 2, To: 1}: U64Msg(1),
		{From: 0, To: 1}: U64Msg(2),
		{From: 2, To: 0}: U64Msg(3),
	}
	a := tr.SortedEdges()
	b := tr.SortedEdges()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("order unstable")
		}
	}
	for i := 1; i < len(a); i++ {
		if a[i-1].From > a[i].From || (a[i-1].From == a[i].From && a[i-1].To >= a[i].To) {
			t.Fatalf("not sorted: %v", a)
		}
	}
}
