package congest

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// Fuzz coverage for the wire codec: the round-trip laws PutU64/U64 and
// PutU32/U32, the zero-padding contract on short/corrupt buffers (decoders
// must never panic — adversaries hand protocols arbitrary bytes), and
// Words64's exact split/pad behaviour.

func FuzzU64RoundTrip(f *testing.F) {
	f.Add(uint64(0))
	f.Add(uint64(1))
	f.Add(uint64(0x1122334455667788))
	f.Add(^uint64(0))
	f.Fuzz(func(t *testing.T, v uint64) {
		b := PutU64(nil, v)
		if len(b) != 8 {
			t.Fatalf("PutU64 wrote %d bytes", len(b))
		}
		if got := U64(b); got != v {
			t.Fatalf("U64(PutU64(%#x)) = %#x", v, got)
		}
		// Appending must not disturb the prefix, and decoding ignores bytes
		// past the word.
		pre := PutU64([]byte{0xAB, 0xCD}, v)
		if got := U64(pre[2:]); got != v {
			t.Fatalf("append-position round trip: %#x != %#x", got, v)
		}
		if got := U64(append(b, 0xFF, 0xFF)); got != v {
			t.Fatalf("trailing bytes changed the decode: %#x != %#x", got, v)
		}
	})
}

func FuzzU32RoundTrip(f *testing.F) {
	f.Add(uint32(0))
	f.Add(uint32(0xdeadbeef))
	f.Add(^uint32(0))
	f.Fuzz(func(t *testing.T, v uint32) {
		b := PutU32(nil, v)
		if len(b) != 4 {
			t.Fatalf("PutU32 wrote %d bytes", len(b))
		}
		if got := U32(b); got != v {
			t.Fatalf("U32(PutU32(%#x)) = %#x", v, got)
		}
		pre := PutU32([]byte{0x01}, v)
		if got := U32(pre[1:]); got != v {
			t.Fatalf("append-position round trip: %#x != %#x", got, v)
		}
	})
}

// FuzzUintShortRead: arbitrary (short, corrupt, oversized) buffers decode
// without panicking, and short reads behave exactly like the buffer
// zero-padded to word length.
func FuzzUintShortRead(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x11})
	f.Add([]byte{0x11, 0x22, 0x33})
	f.Add(bytes.Repeat([]byte{0xFF}, 16))
	f.Fuzz(func(t *testing.T, raw []byte) {
		var pad8 [8]byte
		copy(pad8[:], raw)
		if got, want := U64(raw), binary.BigEndian.Uint64(pad8[:]); got != want {
			t.Fatalf("U64(%x) = %#x, want zero-padded %#x", raw, got, want)
		}
		var pad4 [4]byte
		copy(pad4[:], raw)
		if got, want := U32(raw), binary.BigEndian.Uint32(pad4[:]); got != want {
			t.Fatalf("U32(%x) = %#x, want zero-padded %#x", raw, got, want)
		}
	})
}

// FuzzWords64RoundTrip: the word split covers the message exactly, the tail
// word is zero-padded, and re-encoding the words reproduces the original
// bytes (plus zero padding).
func FuzzWords64RoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add(bytes.Repeat([]byte{0xA5}, 24))
	f.Fuzz(func(t *testing.T, raw []byte) {
		words := Words64(Msg(raw))
		if want := (len(raw) + 7) / 8; len(words) != want {
			t.Fatalf("Words64 split %d bytes into %d words, want %d", len(raw), len(words), want)
		}
		var back []byte
		for _, w := range words {
			back = PutU64(back, w)
		}
		if !bytes.Equal(back[:len(raw)], raw) {
			t.Fatalf("re-encoded words differ from input:\n %x\n %x", back[:len(raw)], raw)
		}
		for i, b := range back[len(raw):] {
			if b != 0 {
				t.Fatalf("padding byte %d is %#x, want 0", i, b)
			}
		}
	})
}
