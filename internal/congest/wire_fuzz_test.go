package congest

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// Fuzz coverage for the wire codec: the round-trip laws PutU64/U64 and
// PutU32/U32, the zero-padding contract on short/corrupt buffers (decoders
// must never panic — adversaries hand protocols arbitrary bytes),
// Words64/AppendWords64's exact split/pad behaviour, and the packed-slot
// codec (msgRef + msgArena) the round buffers store every payload through.

func FuzzU64RoundTrip(f *testing.F) {
	f.Add(uint64(0))
	f.Add(uint64(1))
	f.Add(uint64(0x1122334455667788))
	f.Add(^uint64(0))
	f.Fuzz(func(t *testing.T, v uint64) {
		b := PutU64(nil, v)
		if len(b) != 8 {
			t.Fatalf("PutU64 wrote %d bytes", len(b))
		}
		if got := U64(b); got != v {
			t.Fatalf("U64(PutU64(%#x)) = %#x", v, got)
		}
		// Appending must not disturb the prefix, and decoding ignores bytes
		// past the word.
		pre := PutU64([]byte{0xAB, 0xCD}, v)
		if got := U64(pre[2:]); got != v {
			t.Fatalf("append-position round trip: %#x != %#x", got, v)
		}
		if got := U64(append(b, 0xFF, 0xFF)); got != v {
			t.Fatalf("trailing bytes changed the decode: %#x != %#x", got, v)
		}
	})
}

func FuzzU32RoundTrip(f *testing.F) {
	f.Add(uint32(0))
	f.Add(uint32(0xdeadbeef))
	f.Add(^uint32(0))
	f.Fuzz(func(t *testing.T, v uint32) {
		b := PutU32(nil, v)
		if len(b) != 4 {
			t.Fatalf("PutU32 wrote %d bytes", len(b))
		}
		if got := U32(b); got != v {
			t.Fatalf("U32(PutU32(%#x)) = %#x", v, got)
		}
		pre := PutU32([]byte{0x01}, v)
		if got := U32(pre[1:]); got != v {
			t.Fatalf("append-position round trip: %#x != %#x", got, v)
		}
	})
}

// FuzzUintShortRead: arbitrary (short, corrupt, oversized) buffers decode
// without panicking, and short reads behave exactly like the buffer
// zero-padded to word length.
func FuzzUintShortRead(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x11})
	f.Add([]byte{0x11, 0x22, 0x33})
	f.Add(bytes.Repeat([]byte{0xFF}, 16))
	f.Fuzz(func(t *testing.T, raw []byte) {
		var pad8 [8]byte
		copy(pad8[:], raw)
		if got, want := U64(raw), binary.BigEndian.Uint64(pad8[:]); got != want {
			t.Fatalf("U64(%x) = %#x, want zero-padded %#x", raw, got, want)
		}
		var pad4 [4]byte
		copy(pad4[:], raw)
		if got, want := U32(raw), binary.BigEndian.Uint32(pad4[:]); got != want {
			t.Fatalf("U32(%x) = %#x, want zero-padded %#x", raw, got, want)
		}
	})
}

// FuzzWords64RoundTrip: the word split covers the message exactly, the tail
// word is zero-padded, and re-encoding the words reproduces the original
// bytes (plus zero padding).
func FuzzWords64RoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add(bytes.Repeat([]byte{0xA5}, 24))
	f.Fuzz(func(t *testing.T, raw []byte) {
		words := Words64(Msg(raw))
		if want := (len(raw) + 7) / 8; len(words) != want {
			t.Fatalf("Words64 split %d bytes into %d words, want %d", len(raw), len(words), want)
		}
		var back []byte
		for _, w := range words {
			back = PutU64(back, w)
		}
		if !bytes.Equal(back[:len(raw)], raw) {
			t.Fatalf("re-encoded words differ from input:\n %x\n %x", back[:len(raw)], raw)
		}
		for i, b := range back[len(raw):] {
			if b != 0 {
				t.Fatalf("padding byte %d is %#x, want 0", i, b)
			}
		}
		// AppendWords64 is the same decode: identical words, dst prefix kept,
		// and a reused buffer round is byte-identical to the fresh one.
		prefix := []uint64{0xdead, 0xbeef}
		app := AppendWords64(prefix, Msg(raw))
		if len(app) != len(prefix)+len(words) {
			t.Fatalf("AppendWords64 appended %d words, want %d", len(app)-len(prefix), len(words))
		}
		if app[0] != 0xdead || app[1] != 0xbeef {
			t.Fatalf("AppendWords64 disturbed dst prefix: %#x", app[:2])
		}
		for i, w := range words {
			if app[len(prefix)+i] != w {
				t.Fatalf("word %d: AppendWords64 %#x != Words64 %#x", i, app[len(prefix)+i], w)
			}
		}
		reused := AppendWords64(app[:0], Msg(raw))
		for i, w := range words {
			if reused[i] != w {
				t.Fatalf("reused-buffer word %d: %#x != %#x", i, reused[i], w)
			}
		}
	})
}

// FuzzMsgRefCodec: the packed (chunk, offset, length) slot reference
// round-trips every field within its bit budget, stays disjoint from the
// silent (zero) and spill encodings, and the widths cover the arena's
// documented limits.
func FuzzMsgRefCodec(f *testing.F) {
	f.Add(uint16(0), uint32(0), uint32(0))
	f.Add(uint16(1), uint32(9), uint32(12))
	f.Add(uint16(refChunkMask), uint32(refMaxOff), uint32(refMaxLen))
	f.Fuzz(func(t *testing.T, chunk uint16, off, length uint32) {
		c := int(chunk) & refChunkMask
		o := int(off) & refMaxOff
		n := int(length) & refMaxLen
		r := packRef(c, o, n)
		if r == 0 {
			t.Fatal("packed ref collides with the silent encoding (0)")
		}
		if r&refPresent == 0 {
			t.Fatalf("packed ref %#x missing the present bit", uint64(r))
		}
		if r&refSpill != 0 {
			t.Fatalf("packed ref %#x collides with the spill encoding", uint64(r))
		}
		if r.chunk() != c || r.offset() != o || r.length() != n {
			t.Fatalf("round trip (%d,%d,%d) -> (%d,%d,%d)", c, o, n, r.chunk(), r.offset(), r.length())
		}
	})
}

// FuzzMsgArenaRoundTrip: putting arbitrary payloads through the arena gives
// back byte-identical views, nil and empty stay distinguishable, and views
// resolved before later puts survive arena growth.
func FuzzMsgArenaRoundTrip(f *testing.F) {
	f.Add([]byte{}, []byte{1}, []byte{2, 3, 4, 5, 6, 7, 8, 9})
	f.Add([]byte{0xFF}, []byte{}, bytes.Repeat([]byte{0xA5}, 300))
	f.Fuzz(func(t *testing.T, a, b, c []byte) {
		var arena msgArena
		arena.ensure(1)
		payloads := [][]byte{a, b, c}
		refs := make([]msgRef, len(payloads))
		views := make([]Msg, len(payloads))
		for i, p := range payloads {
			refs[i] = arena.put(0, Msg(p))
			views[i] = arena.get(refs[i])
			// Views resolved now must survive every later put (growth copies).
			for j := 0; j <= i; j++ {
				if !bytes.Equal(views[j], payloads[j]) {
					t.Fatalf("payload %d corrupted after put %d: %x != %x", j, i, views[j], payloads[j])
				}
			}
		}
		for i, p := range payloads {
			got := arena.get(refs[i])
			if !bytes.Equal(got, p) {
				t.Fatalf("payload %d: got %x want %x", i, got, p)
			}
			if got == nil {
				t.Fatalf("payload %d decoded as silent (nil), want non-nil of len %d", i, len(p))
			}
		}
		if got := arena.get(0); got != nil {
			t.Fatalf("silent ref decoded to %x, want nil", got)
		}
		arena.reset()
		if got := arena.get(arena.put(0, Msg(c))); !bytes.Equal(got, c) {
			t.Fatalf("post-reset round trip: %x != %x", got, c)
		}
	})
}
