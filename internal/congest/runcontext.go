package congest

import (
	"math/rand"
	"runtime"
	"sort"

	"mobilecongest/internal/graph"
)

// RunContext holds the per-graph simulation state a run builds before its
// first round: the CSR edge layout, the reusable round buffer and the
// adversary-boundary scratch, the node-core slab with its per-node RNGs, the
// inbox fan-out slice, and the internal statistics observer. Rebuilding all
// of that per run dominates the setup cost of short runs; a RunContext lets
// repeated runs — a Scenario executed in a loop, a sweep worker grinding
// through cells on the same topology — reuse the allocations instead.
//
// A context binds lazily to the graph of the first run executed in it and
// rebinds (rebuilding its state) whenever a run arrives with a different
// *graph.Graph. Binding is by pointer identity: reuse pays off only when the
// caller also reuses the Graph value, which Scenario and Sweep do.
//
// A RunContext serves one run at a time; sharing one between concurrent runs
// is a data race. Concurrent callers use one context each (Sweep gives every
// worker its own).
type RunContext struct {
	g      *graph.Graph
	layout *edgeLayout
	cur    *roundBuffer
	rt     *RoundTraffic
	cores  []nodeCore
	stats  *StatsObserver
	seeder *rand.Rand
	rngs   []*rand.Rand

	// Port slabs: every node's reusable outbox and inbox are CSR sub-slices
	// of these slot-indexed slabs (node u owns rowStart[u]:rowStart[u+1] of
	// each), so per-round node I/O allocates nothing. inClear lists the
	// in-slab slots the previous delivery occupied, for O(delivered) reuse.
	outSlab []Msg
	inSlab  []Msg
	inClear []int32

	// Shard-engine state: the parked worker pool (persists across runs so
	// repeated runs reuse goroutines) and the per-shard scratch.
	pool         *shardPool
	shardCap     int       // LimitShards cap on the default shard count
	bounds       []int32   // cached shard node boundaries for boundsShards
	boundsShards int       // shard count bounds was computed for; 0 = stale
	shardTouched [][]int32 // per-shard collected-slot lists
	shardErrs    []error   // per-shard first collection error
	shardActive  []int     // per-shard live-node counts
}

// NewRunContext returns an empty context; it binds to a graph on first use.
func NewRunContext() *RunContext { return &RunContext{} }

// ContextRunner is implemented by engines that can execute a run inside a
// reusable RunContext. Both built-in engines implement it; Engine.Run is
// equivalent to RunIn with a fresh context.
type ContextRunner interface {
	// RunIn executes proto on every node of cfg.Graph, reusing rc's state
	// (rebinding it if cfg.Graph differs from the context's current graph).
	RunIn(rc *RunContext, cfg Config, proto Protocol) (*Result, error)
}

// bind points the context at g, rebuilding the graph-shaped state unless the
// context is already bound to the very same graph.
func (rc *RunContext) bind(g *graph.Graph) {
	if rc.g == g {
		return
	}
	rc.g = g
	rc.layout = newEdgeLayout(g)
	rc.cur = newRoundBuffer(rc.layout)
	rc.rt = newRoundTraffic(rc.layout)
	rc.cores = make([]nodeCore, g.N())
	rc.outSlab = make([]Msg, rc.layout.slots())
	rc.inSlab = make([]Msg, rc.layout.slots())
	rc.inClear = rc.inClear[:0]
	rc.stats = NewStatsObserver()
	rc.boundsShards = 0 // shard boundaries are layout-shaped
	// rc.rngs is deliberately kept: per-node RNGs are graph-independent and
	// re-seeded per run, so they survive rebinding. The shard pool and the
	// shard scratch capacities likewise survive: neither depends on the graph.
}

// Close releases the context's parked shard-pool goroutines, if any. The
// context stays usable — a later shard-engine run simply re-creates the pool
// — so Close is about reclaiming goroutines promptly when a worker (a
// Plan.Stream worker, a finished sweep) retires its context. Contexts
// abandoned without Close are covered by a GC cleanup, eventually.
func (rc *RunContext) Close() {
	rc.pool.close()
	rc.pool = nil
}

// LimitShards caps the shard count a ShardEngine with the default (automatic,
// GOMAXPROCS) shard count resolves inside this context; n <= 0 removes the
// cap. An explicit ShardEngine.Shards is never capped. Plan.Stream sets this
// on each of its P workers' contexts to GOMAXPROCS/P, so concurrent cells
// divide the machine instead of oversubscribing it P-fold.
func (rc *RunContext) LimitShards(n int) { rc.shardCap = n }

// ensurePool returns the context's pool with exactly `workers` parked
// goroutines, building or resizing it as needed. Zero workers (a
// single-shard run) returns nil — the degenerate pool that runs phases
// inline — and deliberately leaves any existing pool parked for the next
// parallel run.
func (rc *RunContext) ensurePool(workers int) *shardPool {
	if workers <= 0 {
		return nil
	}
	if rc.pool == nil || rc.pool.size != workers {
		rc.pool.close()
		rc.pool = newShardPool(workers)
		// Safety net for contexts dropped without Close: when the context
		// becomes unreachable, release the pool's goroutines. The cleanup
		// holds the pool, not the context, so it never pins the context live.
		runtime.AddCleanup(rc, func(p *shardPool) { p.close() }, rc.pool)
	}
	return rc.pool
}

// shardBounds partitions the context's nodes into `shards` contiguous ranges
// of roughly equal slot (directed-edge) count, returning shards+1 node
// boundaries. Balancing by slots rather than nodes keeps a skewed graph (a
// star, a hub-heavy expander) from loading one shard with most of the edge
// work. The boundaries are cached per (layout, shards).
func (rc *RunContext) shardBounds(shards int) []int32 {
	if rc.boundsShards == shards {
		return rc.bounds
	}
	n := rc.g.N()
	total := rc.layout.slots()
	b := rc.bounds[:0]
	b = append(b, 0)
	for k := 1; k < shards; k++ {
		target := int32(total * k / shards)
		u := int32(sort.Search(n, func(u int) bool { return rc.layout.rowStart[u] >= target }))
		if u < b[k-1] {
			u = b[k-1]
		}
		b = append(b, u)
	}
	b = append(b, int32(n))
	rc.bounds, rc.boundsShards = b, shards
	return b
}

// shardScratch sizes and resets the per-shard scratch for a run: the
// collected-slot lists keep their capacities across runs (that is what makes
// shard rounds zero-alloc in a warm context), the error slots clear, and the
// active counts are (re)derived from the current bounds by the caller.
func (rc *RunContext) shardScratch(shards int) (touched [][]int32, errs []error, active []int) {
	for len(rc.shardTouched) < shards {
		rc.shardTouched = append(rc.shardTouched, nil)
	}
	for len(rc.shardErrs) < shards {
		rc.shardErrs = append(rc.shardErrs, nil)
	}
	for len(rc.shardActive) < shards {
		rc.shardActive = append(rc.shardActive, 0)
	}
	touched = rc.shardTouched[:shards]
	errs = rc.shardErrs[:shards]
	active = rc.shardActive[:shards]
	for k := range errs {
		errs[k] = nil
	}
	return touched, errs, active
}

// resetSlabs releases any payload references a previous (possibly aborted)
// run left in the port slabs, so reused contexts leak nothing between runs.
func (rc *RunContext) resetSlabs() {
	clear(rc.outSlab)
	clear(rc.inSlab)
	rc.inClear = rc.inClear[:0]
}

// nodeCores (re)derives the per-node state for a run. Node randomness is
// seeded from seed in node-index order, so every engine — and every run
// reusing this context — hands node i the same RNG stream for the same seed.
// The per-node seeds are drawn eagerly (the seeder stream must not depend on
// which nodes use randomness) but the RNG values themselves are built
// lazily, on the node's first Rand call: a protocol that never draws
// randomness pays nothing for the ~5KB rand source per node — the dominant
// setup allocation at large n. Constructed RNGs are cached in rc.rngs across
// runs (re-seeding on next use resets their state, including the Read
// position).
func (rc *RunContext) nodeCores(cfg Config) []nodeCore {
	if rc.seeder == nil {
		rc.seeder = rand.New(rand.NewSource(cfg.Seed))
	} else {
		rc.seeder.Seed(cfg.Seed)
	}
	for len(rc.rngs) < rc.g.N() {
		rc.rngs = append(rc.rngs, nil)
	}
	for i := range rc.cores {
		var input []byte
		if cfg.Inputs != nil {
			input = cfg.Inputs[i]
		}
		base, end := rc.layout.rowStart[i], rc.layout.rowStart[i+1]
		rc.cores[i] = nodeCore{
			id:        graph.NodeID(i),
			neighbors: rc.g.Neighbors(graph.NodeID(i)),
			rngSeed:   rc.seeder.Int63(),
			rngStore:  rc.rngs,
			input:     input,
			n:         rc.g.N(),
			shared:    cfg.Shared,
			outBuf:    rc.outSlab[base:end:end],
			inBuf:     rc.inSlab[base:end:end],
		}
	}
	return rc.cores
}
