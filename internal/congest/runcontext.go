package congest

import (
	"math/rand"

	"mobilecongest/internal/graph"
)

// RunContext holds the per-graph simulation state a run builds before its
// first round: the CSR edge layout, the reusable round buffer and the
// adversary-boundary scratch, the node-core slab with its per-node RNGs, the
// inbox fan-out slice, and the internal statistics observer. Rebuilding all
// of that per run dominates the setup cost of short runs; a RunContext lets
// repeated runs — a Scenario executed in a loop, a sweep worker grinding
// through cells on the same topology — reuse the allocations instead.
//
// A context binds lazily to the graph of the first run executed in it and
// rebinds (rebuilding its state) whenever a run arrives with a different
// *graph.Graph. Binding is by pointer identity: reuse pays off only when the
// caller also reuses the Graph value, which Scenario and Sweep do.
//
// A RunContext serves one run at a time; sharing one between concurrent runs
// is a data race. Concurrent callers use one context each (Sweep gives every
// worker its own).
type RunContext struct {
	g      *graph.Graph
	layout *edgeLayout
	cur    *roundBuffer
	rt     *RoundTraffic
	cores  []nodeCore
	stats  *StatsObserver
	seeder *rand.Rand
	rngs   []*rand.Rand

	// Port slabs: every node's reusable outbox and inbox are CSR sub-slices
	// of these slot-indexed slabs (node u owns rowStart[u]:rowStart[u+1] of
	// each), so per-round node I/O allocates nothing. inClear lists the
	// in-slab slots the previous delivery occupied, for O(delivered) reuse.
	outSlab []Msg
	inSlab  []Msg
	inClear []int32
}

// NewRunContext returns an empty context; it binds to a graph on first use.
func NewRunContext() *RunContext { return &RunContext{} }

// ContextRunner is implemented by engines that can execute a run inside a
// reusable RunContext. Both built-in engines implement it; Engine.Run is
// equivalent to RunIn with a fresh context.
type ContextRunner interface {
	// RunIn executes proto on every node of cfg.Graph, reusing rc's state
	// (rebinding it if cfg.Graph differs from the context's current graph).
	RunIn(rc *RunContext, cfg Config, proto Protocol) (*Result, error)
}

// bind points the context at g, rebuilding the graph-shaped state unless the
// context is already bound to the very same graph.
func (rc *RunContext) bind(g *graph.Graph) {
	if rc.g == g {
		return
	}
	rc.g = g
	rc.layout = newEdgeLayout(g)
	rc.cur = newRoundBuffer(rc.layout)
	rc.rt = newRoundTraffic(rc.layout)
	rc.cores = make([]nodeCore, g.N())
	rc.outSlab = make([]Msg, rc.layout.slots())
	rc.inSlab = make([]Msg, rc.layout.slots())
	rc.inClear = rc.inClear[:0]
	rc.stats = NewStatsObserver()
	// rc.rngs is deliberately kept: per-node RNGs are graph-independent and
	// re-seeded per run, so they survive rebinding.
}

// resetSlabs releases any payload references a previous (possibly aborted)
// run left in the port slabs, so reused contexts leak nothing between runs.
func (rc *RunContext) resetSlabs() {
	clear(rc.outSlab)
	clear(rc.inSlab)
	rc.inClear = rc.inClear[:0]
}

// nodeCores (re)derives the per-node state for a run. Node randomness is
// seeded from seed in node-index order, so every engine — and every run
// reusing this context — hands node i the same RNG stream for the same seed.
// The RNG values themselves are reused across runs (re-seeding resets their
// state, including the Read position), which saves the dominant per-run
// allocation: one ~5KB rand source per node.
func (rc *RunContext) nodeCores(cfg Config) []nodeCore {
	if rc.seeder == nil {
		rc.seeder = rand.New(rand.NewSource(cfg.Seed))
	} else {
		rc.seeder.Seed(cfg.Seed)
	}
	for len(rc.rngs) < rc.g.N() {
		rc.rngs = append(rc.rngs, nil)
	}
	for i := range rc.cores {
		var input []byte
		if cfg.Inputs != nil {
			input = cfg.Inputs[i]
		}
		s := rc.seeder.Int63()
		if rc.rngs[i] == nil {
			rc.rngs[i] = rand.New(rand.NewSource(s))
		} else {
			rc.rngs[i].Seed(s)
		}
		base, end := rc.layout.rowStart[i], rc.layout.rowStart[i+1]
		rc.cores[i] = nodeCore{
			id:        graph.NodeID(i),
			neighbors: rc.g.Neighbors(graph.NodeID(i)),
			rng:       rc.rngs[i],
			input:     input,
			n:         rc.g.N(),
			shared:    cfg.Shared,
			outBuf:    rc.outSlab[base:end:end],
			inBuf:     rc.inSlab[base:end:end],
		}
	}
	return rc.cores
}
