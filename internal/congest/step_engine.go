package congest

import (
	"iter"

	"mobilecongest/internal/graph"
)

// StepEngine runs every node as a resumable step function driven by a single
// scheduler goroutine. Each protocol is wrapped in a coroutine (iter.Pull):
// ExchangePorts parks the node by yielding its pending outbox and resumes
// with the node's port inbox filled in. Compared to GoroutineEngine this
// removes the two channel handoffs and the scheduler wakeup per node per
// round — the coroutine switch is a direct handoff. Semantics are identical:
// nodes still interact only at the exchange barrier, so any protocol that is
// deterministic under GoroutineEngine produces a byte-identical Result here.
type StepEngine struct{}

// Name implements Engine.
func (StepEngine) Name() string { return "step" }

// stepNode is the per-node runtime of the step engine. It points into the
// run's shared nodeCore slice; the pending outbox and the port inbox live on
// the core, so the scheduler reads and writes them between resumptions.
type stepNode struct {
	*nodeCore

	yield func(struct{}) bool
	next  func() (struct{}, bool)
	stop  func()
	done  bool
}

var _ PortRuntime = (*stepNode)(nil)

// ExchangePorts implements the round barrier by parking the coroutine.
//
//mobilevet:hotpath
func (s *stepNode) ExchangePorts(out []Msg) []Msg {
	s.outPending = out
	// yield returns false when the scheduler stopped the coroutine (abort or
	// early engine exit): unwind the protocol exactly like the goroutine
	// engine does.
	if !s.yield(struct{}{}) {
		panic(abortSignal{})
	}
	s.round++
	return s.inBuf
}

// Exchange is the legacy map barrier, a compat wrapper over the port path:
// the outbox folds into the port outbox up front and the inbox map is
// materialized lazily, only for the nodes and rounds that use this form.
func (s *stepNode) Exchange(out map[graph.NodeID]Msg) map[graph.NodeID]Msg {
	return s.portsToMapIn(s.ExchangePorts(s.mapOutToPorts(out)))
}

// Run implements Engine.
func (e StepEngine) Run(cfg Config, proto Protocol) (*Result, error) {
	return e.RunIn(nil, cfg, proto)
}

// RunIn implements ContextRunner: it executes the run inside rc, reusing the
// context's layout, buffers, node cores, and RNGs (nil rc runs in a fresh
// throwaway context).
func (StepEngine) RunIn(rc *RunContext, cfg Config, proto Protocol) (res *Result, err error) {
	core, err := newRunCore(rc, cfg)
	if err != nil {
		return nil, err
	}
	defer func() { core.runDone(err) }()
	g := core.g
	cores := core.newNodeCores()
	nodes := make([]*stepNode, g.N())
	for i := range nodes {
		s := &stepNode{nodeCore: &cores[i]}
		s.next, s.stop = iter.Pull(func(yield func(struct{}) bool) {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(abortSignal); !ok {
						panic(r)
					}
				}
			}()
			s.yield = yield
			proto(s)
		})
		nodes[i] = s
	}
	// Unwind every still-parked coroutine on any exit path; stop is a no-op
	// on finished ones.
	defer func() {
		for _, s := range nodes {
			s.stop()
		}
	}()

	nActive := g.N()

	for nActive > 0 {
		if err := core.beginRound(); err != nil {
			return nil, err
		}
		nActive, err = core.stepRound(nodes, nActive)
		if err != nil {
			return nil, err
		}
		if nActive == 0 {
			break
		}
		if err := core.endRound(); err != nil {
			return nil, err
		}
	}

	return core.finish(outputs(cores)), nil
}

// stepRound is the step engine's compute+collect phase: step each node to its
// next exchange (parking its outbox) or to termination — same node order as
// the goroutine engine's collection loop, so the collection buffer fills in
// ascending slot order. Returns the updated live-node count.
//
//mobilevet:hotpath
func (c *runCore) stepRound(nodes []*stepNode, nActive int) (int, error) {
	for _, s := range nodes {
		if s.done {
			continue
		}
		if _, alive := s.next(); !alive {
			s.done = true
			nActive--
			continue
		}
		if err := c.collectOutbox(s.nodeCore); err != nil {
			return nActive, err
		}
	}
	return nActive, nil
}
