package congest

import "sync"

// shardPool is the persistent worker pool behind ShardEngine's parallel-for
// phases. It parks `size` goroutines between phases; a phase hands every
// worker one shard index over the kick channel and runs the last shard on the
// coordinating goroutine itself, so a pool for S shards costs S-1 goroutines.
// The pool lives on a RunContext across runs — sweep cells and repeated
// Scenario.Run calls reuse the parked goroutines, and a phase dispatch is
// channel sends plus a WaitGroup join: zero allocations per round.
//
// Memory model: the coordinator writes p.fn before any kick send, so workers
// observe it through the channel receive; workers finish their shard before
// wg.Done, so the coordinator observes all shard writes after wg.Wait. A pool
// serves one phase at a time (the RunContext it lives on already serves one
// run at a time).
type shardPool struct {
	size   int
	fn     func(shard int) // current phase body; set by run, nil between phases
	kick   chan int        // shard indices for the parked workers
	quit   chan struct{}
	once   sync.Once // close() idempotence
	wg     sync.WaitGroup
	panics []any // per-worker recovered panic, re-raised by the coordinator
}

func newShardPool(size int) *shardPool {
	p := &shardPool{
		size:   size,
		kick:   make(chan int, size),
		quit:   make(chan struct{}),
		panics: make([]any, size),
	}
	for i := 0; i < size; i++ {
		go p.work()
	}
	return p
}

func (p *shardPool) work() {
	for {
		select {
		case <-p.quit:
			return
		case k := <-p.kick:
			p.invoke(k)
			p.wg.Done()
		}
	}
}

// invoke runs the phase body for one shard, capturing a panic (a panicking
// protocol) so it unwinds the coordinating goroutine instead of killing the
// process from a pool worker.
func (p *shardPool) invoke(k int) {
	defer func() { p.panics[k] = recover() }()
	p.fn(k)
}

// shards returns the shard count a phase body is invoked with: one shard per
// parked worker plus the coordinator's own.
func (p *shardPool) shards() int {
	if p == nil {
		return 1
	}
	return p.size + 1
}

// run executes fn(k) for every shard k in [0, shards()) — workers take shards
// 0..size-1, the coordinator takes the last — and returns when all of them
// completed. A nil pool (single-shard run) degenerates to a plain call. If
// any shard panicked, run re-panics on the coordinator after the barrier,
// preferring the lowest shard's panic for determinism.
func (p *shardPool) run(fn func(shard int)) {
	if p == nil || p.size == 0 {
		fn(0)
		return
	}
	p.fn = fn
	p.wg.Add(p.size)
	for k := 0; k < p.size; k++ {
		p.kick <- k
	}
	// The deferred barrier keeps a coordinator-shard panic from unwinding
	// past workers still touching shared state.
	defer p.finish()
	fn(p.size)
}

// finish joins the phase's workers and surfaces the lowest-shard worker
// panic, clearing the rest so a reused pool never replays a stale panic.
func (p *shardPool) finish() {
	p.wg.Wait()
	p.fn = nil
	var first any
	for i, r := range p.panics {
		if r != nil {
			if first == nil {
				first = r
			}
			p.panics[i] = nil
		}
	}
	if first != nil {
		panic(first)
	}
}

// close releases the parked workers. Idempotent; safe on a nil pool. Must not
// overlap a phase (the owning RunContext serves one run at a time).
func (p *shardPool) close() {
	if p == nil {
		return
	}
	p.once.Do(func() { close(p.quit) })
}
