package congest

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"mobilecongest/internal/graph"
)

// TestStatsObserverMatchesResult: an externally attached StatsObserver must
// accumulate exactly the Stats the Result carries — the internal collector
// is literally the same observer type on the same pipeline.
func TestStatsObserverMatchesResult(t *testing.T) {
	forEngine(t, func(t *testing.T, e Engine) {
		st := NewStatsObserver()
		res, err := e.Run(Config{
			Graph: graph.Circulant(12, 2), Seed: 3,
			Adversary: AdaptTraffic(injector{edge: graph.DirEdge{From: 0, To: 1}}),
			Observers: []Observer{st},
		}, floodMax(4))
		if err != nil {
			t.Fatal(err)
		}
		if st.Stats() != res.Stats {
			t.Fatalf("observer stats %+v != result stats %+v", st.Stats(), res.Stats)
		}
		if res.Stats.CorruptedEdgeRounds == 0 {
			t.Fatal("injector should have corrupted edge-rounds")
		}
	})
}

// TestTraceObserverRecords: the trace holds every delivered round in
// canonical (sender, receiver) order with the exact payloads.
func TestTraceObserverRecords(t *testing.T) {
	forEngine(t, func(t *testing.T, e Engine) {
		tr := NewTraceObserver()
		g := graph.Path(3)
		proto := func(rt Runtime) {
			for r := 0; r < 2; r++ {
				out := make(map[graph.NodeID]Msg)
				for _, v := range rt.Neighbors() {
					out[v] = PutU32(nil, uint32(rt.ID())<<8|uint32(r))
				}
				rt.Exchange(out)
			}
		}
		res, err := e.Run(Config{Graph: g, Seed: 1, Observers: []Observer{tr}}, proto)
		if err != nil {
			t.Fatal(err)
		}
		rounds := tr.Rounds()
		if len(rounds) != res.Stats.Rounds {
			t.Fatalf("trace has %d rounds, stats say %d", len(rounds), res.Stats.Rounds)
		}
		for r, rt := range rounds {
			if rt.Round != r {
				t.Fatalf("round %d recorded as %d", r, rt.Round)
			}
			// Path 0-1-2: directed messages in canonical order.
			wantEdges := []graph.DirEdge{{From: 0, To: 1}, {From: 1, To: 0}, {From: 1, To: 2}, {From: 2, To: 1}}
			if len(rt.Msgs) != len(wantEdges) {
				t.Fatalf("round %d has %d msgs, want %d", r, len(rt.Msgs), len(wantEdges))
			}
			for i, m := range rt.Msgs {
				if m.From != wantEdges[i].From || m.To != wantEdges[i].To {
					t.Fatalf("round %d msg %d on (%d,%d), want %v", r, i, m.From, m.To, wantEdges[i])
				}
				if got := U32(m.Data); got != uint32(m.From)<<8|uint32(r) {
					t.Fatalf("round %d msg %d payload %x", r, i, got)
				}
			}
			if rt.Corrupted != nil {
				t.Fatalf("fault-free round %d has corrupted edges", r)
			}
		}
	})
}

// TestCongestionObserverHistogram: per-edge counts and their histogram match
// a hand-computable workload.
func TestCongestionObserverHistogram(t *testing.T) {
	g := graph.Path(3) // edges {0,1}, {1,2}
	co := NewCongestionObserver()
	proto := func(rt Runtime) {
		for r := 0; r < 5; r++ {
			out := map[graph.NodeID]Msg{}
			if rt.ID() == 0 {
				out[1] = U64Msg(1)
			}
			rt.Exchange(out)
		}
	}
	if _, err := (StepEngine{}).Run(Config{Graph: g, Seed: 1, Observers: []Observer{co}}, proto); err != nil {
		t.Fatal(err)
	}
	want := map[graph.Edge]int{{U: 0, V: 1}: 5, {U: 1, V: 2}: 0}
	if got := co.PerEdge(); !reflect.DeepEqual(got, want) {
		t.Fatalf("PerEdge() = %v, want %v", got, want)
	}
	wantHist := map[int]int{0: 1, 5: 1}
	if got := co.Histogram(); !reflect.DeepEqual(got, wantHist) {
		t.Fatalf("Histogram() = %v, want %v", got, wantHist)
	}
}

// TestCorruptionLogEvents: the log records exactly the rounds and undirected
// edges the adversary touched, and its total matches the stats.
func TestCorruptionLogEvents(t *testing.T) {
	forEngine(t, func(t *testing.T, e Engine) {
		cl := NewCorruptionLog()
		adv := &spendExactly{total: 2, edge: graph.DirEdge{From: 1, To: 0}}
		res, err := e.Run(Config{
			Graph: graph.Cycle(5), Seed: 2, Adversary: AdaptTraffic(adv),
			Observers: []Observer{cl},
		}, floodMax(4))
		if err != nil {
			t.Fatal(err)
		}
		events := cl.Events()
		if len(events) != 2 {
			t.Fatalf("got %d events, want 2: %+v", len(events), events)
		}
		for i, ev := range events {
			if ev.Round != i {
				t.Fatalf("event %d in round %d", i, ev.Round)
			}
			if len(ev.Edges) != 1 || ev.Edges[0] != (graph.Edge{U: 0, V: 1}) {
				t.Fatalf("event %d edges %v, want [{0 1}]", i, ev.Edges)
			}
		}
		if cl.Total() != res.Stats.CorruptedEdgeRounds {
			t.Fatalf("log total %d != stats %d", cl.Total(), res.Stats.CorruptedEdgeRounds)
		}
	})
}

// TestJSONLTraceStream: every emitted line is valid JSON; rounds carry the
// label and message list, and the final line is the run summary.
func TestJSONLTraceStream(t *testing.T) {
	var buf bytes.Buffer
	jt := NewJSONLTrace(&buf, "unit")
	res, err := (StepEngine{}).Run(Config{
		Graph: graph.Path(2), Seed: 1, Observers: []Observer{jt},
	}, floodMax(3))
	if err != nil {
		t.Fatal(err)
	}
	if jt.Err() != nil {
		t.Fatal(jt.Err())
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != res.Stats.Rounds+1 {
		t.Fatalf("got %d lines, want %d rounds + 1 summary", len(lines), res.Stats.Rounds)
	}
	for i, line := range lines[:len(lines)-1] {
		var row struct {
			Scenario string `json:"scenario"`
			Round    int    `json:"round"`
			Msgs     []struct {
				From int    `json:"from"`
				To   int    `json:"to"`
				Data []byte `json:"data"`
			} `json:"msgs"`
		}
		if err := json.Unmarshal([]byte(line), &row); err != nil {
			t.Fatalf("line %d not JSON: %v\n%s", i, err, line)
		}
		if row.Scenario != "unit" || row.Round != i || len(row.Msgs) != 2 {
			t.Fatalf("line %d wrong: %s", i, line)
		}
		if len(row.Msgs[0].Data) != 8 {
			t.Fatalf("line %d payload not 8 bytes after base64: %s", i, line)
		}
	}
	var done struct {
		Done   bool `json:"done"`
		Rounds int  `json:"rounds"`
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &done); err != nil || !done.Done || done.Rounds != res.Stats.Rounds {
		t.Fatalf("bad summary line: %s (err %v)", lines[len(lines)-1], err)
	}
}

// TestRunDoneFiresOnError: observers must see RunDone exactly once with the
// run error even when the engine aborts (budget violation here).
func TestRunDoneFiresOnError(t *testing.T) {
	forEngine(t, func(t *testing.T, e Engine) {
		rec := &lifecycleRecorder{}
		_, err := e.Run(Config{
			Graph: graph.Clique(4), Seed: 1, Adversary: AdaptTraffic(corruptAll{}),
			Observers: []Observer{rec},
		}, floodMax(2))
		if err == nil {
			t.Fatal("corruptAll should exceed its budget")
		}
		if rec.done != 1 || rec.doneErr == nil {
			t.Fatalf("RunDone fired %d times (err %v), want once with the run error", rec.done, rec.doneErr)
		}
	})
}

// TestObserverLifecycleOrdering: RoundStart precedes its RoundDelivered; a
// run's final RoundStart may be unmatched (the round every node terminated
// in); RunDone is last.
func TestObserverLifecycleOrdering(t *testing.T) {
	forEngine(t, func(t *testing.T, e Engine) {
		rec := &lifecycleRecorder{}
		res, err := e.Run(Config{
			Graph: graph.Cycle(4), Seed: 1, Observers: []Observer{rec},
		}, floodMax(3))
		if err != nil {
			t.Fatal(err)
		}
		if rec.done != 1 {
			t.Fatalf("RunDone fired %d times", rec.done)
		}
		if len(rec.delivered) != res.Stats.Rounds {
			t.Fatalf("%d RoundDelivered, stats say %d", len(rec.delivered), res.Stats.Rounds)
		}
		// floodMax(3) runs 3 full rounds; the 4th RoundStart sees every node
		// terminate, so starts = delivered + 1 on both engines.
		if len(rec.starts) != len(rec.delivered)+1 {
			t.Fatalf("%d RoundStart for %d RoundDelivered", len(rec.starts), len(rec.delivered))
		}
		for i, r := range rec.delivered {
			if rec.starts[i] != r || r != i {
				t.Fatalf("lifecycle misordered: starts %v delivered %v", rec.starts, rec.delivered)
			}
		}
	})
}

// lifecycleRecorder records the raw observer event sequence.
type lifecycleRecorder struct {
	starts    []int
	delivered []int
	done      int
	doneErr   error
}

func (r *lifecycleRecorder) RoundStart(round int) { r.starts = append(r.starts, round) }
func (r *lifecycleRecorder) RoundDelivered(round int, _ *RoundView) {
	r.delivered = append(r.delivered, round)
}
func (r *lifecycleRecorder) RunDone(_ Stats, err error) { r.done++; r.doneErr = err }

// TestRoundViewLazyTraffic: the map view is materialized once per round and
// shared between the adversary and observers asking for it.
func TestRoundViewLazyTraffic(t *testing.T) {
	var views []Traffic
	obs := &trafficGrabber{views: &views}
	adv := &trafficIdentity{}
	_, err := (StepEngine{}).Run(Config{
		Graph: graph.Path(2), Seed: 1, Adversary: AdaptTraffic(adv), Observers: []Observer{obs},
	}, floodMax(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(views) != 2 || len(adv.seen) != 2 {
		t.Fatalf("views %d, adversary rounds %d; want 2 and 2", len(views), len(adv.seen))
	}
	for r := range views {
		// The adversary returned its input unchanged, so the delivered buffer
		// is the collection buffer and the observer's materialization must be
		// the very map the adversary saw (same round → same cache).
		if !reflect.DeepEqual(views[r], adv.seen[r]) {
			t.Fatalf("round %d: observer traffic %v != adversary traffic %v", r, views[r], adv.seen[r])
		}
		if len(views[r]) != 2 {
			t.Fatalf("round %d traffic has %d entries", r, len(views[r]))
		}
	}
}

type trafficGrabber struct{ views *[]Traffic }

func (g *trafficGrabber) RoundStart(int) {}
func (g *trafficGrabber) RoundDelivered(_ int, view *RoundView) {
	*g.views = append(*g.views, view.Traffic().Clone())
}
func (g *trafficGrabber) RunDone(Stats, error) {}

// trafficIdentity records what it was shown and delivers it unchanged.
type trafficIdentity struct{ seen []Traffic }

func (a *trafficIdentity) Intercept(_ int, tr Traffic) Traffic {
	a.seen = append(a.seen, tr.Clone())
	return tr
}
