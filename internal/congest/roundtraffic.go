package congest

import (
	"fmt"
	"iter"
	"reflect"
	"sort"

	"mobilecongest/internal/graph"
)

// RoundTraffic is the slot-native view of one round's traffic handed to the
// Adversary. It exposes the run's flat edge layout directly: every directed
// edge of the graph has a fixed slot (ascending sender, then receiver — the
// same canonical order observers see), and the adversary reads the collected
// messages and writes its corruptions by slot. Writes go to a reusable
// overlay, never to the collection buffer itself, so the engine can diff the
// overlay against the pristine round for exact budget accounting before
// folding it into the delivered traffic.
//
// A RoundTraffic is only valid during the Intercept call it is handed to;
// the engine reuses it (and everything it hands out) on the next round.
type RoundTraffic struct {
	buf *roundBuffer // pristine collection buffer for the round

	// The adversary's write overlay: mod[s] is the override for slot s when
	// its dirtyBits bit is set; dirty lists the overridden slots.
	mod       []Msg
	dirtyBits []uint64
	dirty     []int32

	// invalid records non-edge injections from the map-compat adapter; they
	// count against the budget and then abort the round, exactly like the
	// legacy map path.
	invalid []graph.DirEdge

	// settle/apply scratch, reused across rounds.
	changed   []int32      // dirty slots whose override actually differs
	undirMark []bool       // per undirected edge: already counted this round
	undirList []int32      // touched undirected edge indices, insertion order
	edgesOut  []graph.Edge // sorted touched edges handed to the round view
	keep      []bool       // parallel-settle verdict per dirty index
}

func newRoundTraffic(l *edgeLayout) *RoundTraffic {
	return &RoundTraffic{
		mod:       make([]Msg, l.slots()),
		dirtyBits: make([]uint64, (l.slots()+63)/64),
		undirMark: make([]bool, l.g.M()),
	}
}

// NewRoundTraffic builds a free-standing slot view holding the given traffic
// over g — the harness for exercising an Adversary outside an engine (unit
// tests, micro-benchmarks). Inside a run the engine provides the view; this
// constructor is never on the hot path. It rejects traffic on non-edges.
func NewRoundTraffic(g *graph.Graph, tr Traffic) (*RoundTraffic, error) {
	l := newEdgeLayout(g)
	b := newRoundBuffer(l)
	if err := b.loadFrom(tr); err != nil {
		return nil, err
	}
	rt := newRoundTraffic(l)
	rt.begin(b)
	return rt, nil
}

// Delivered returns the view's current traffic — the collected round with
// the adversary's Set overrides applied — as a fresh map. It is a test
// helper for free-standing views (NewRoundTraffic); inside a run the engine
// folds overrides into the delivered round itself.
func (t *RoundTraffic) Delivered() Traffic {
	out := make(Traffic, t.buf.len())
	for s := 0; s < t.Slots(); s++ {
		if m := t.Get(int32(s)); m != nil {
			out[t.DirEdge(int32(s))] = m
		}
	}
	return out
}

// begin attaches the view to the round's collection buffer and clears the
// previous round's overlay.
func (t *RoundTraffic) begin(b *roundBuffer) {
	t.buf = b
	for _, s := range t.dirty {
		t.mod[s] = nil
		t.dirtyBits[s>>6] &^= 1 << uint(s&63)
	}
	t.dirty = t.dirty[:0]
	t.invalid = t.invalid[:0]
}

// Graph returns the run's topology.
func (t *RoundTraffic) Graph() *graph.Graph { return t.buf.layout.g }

// Slots returns the number of directed-edge slots (2M).
func (t *RoundTraffic) Slots() int { return len(t.mod) }

// Len returns the number of directed messages the nodes sent this round.
func (t *RoundTraffic) Len() int { return t.buf.len() }

// Slot returns the slot of the directed edge from->to, or -1 when the pair
// is not an edge of the graph.
func (t *RoundTraffic) Slot(from, to graph.NodeID) int32 {
	return t.buf.layout.slot(from, to)
}

// EdgeSlots returns the two slots of an undirected edge: U->V, then V->U.
// Both are -1 when e is not an edge of the graph.
func (t *RoundTraffic) EdgeSlots(e graph.Edge) (fwd, bwd int32) {
	l := t.buf.layout
	return l.slot(e.U, e.V), l.slot(e.V, e.U)
}

// DirEdge returns the directed edge occupying slot s.
func (t *RoundTraffic) DirEdge(s int32) graph.DirEdge { return t.buf.layout.dirEdges[s] }

// UndirIndex returns the index of slot s's undirected edge in Graph().Edges()
// — the key for per-edge accumulators (see adversary.SelectBusiest).
func (t *RoundTraffic) UndirIndex(s int32) int32 { return t.buf.layout.undir[s] }

// Get returns the message currently on slot s: the adversary's own override
// if it has Set the slot this round, otherwise the message the sender
// emitted. nil means the edge is silent; a non-nil empty Msg is a present,
// empty message. Out-of-range slots (including -1 from Slot on a non-edge)
// read as silent. The returned bytes are shared — do not mutate them.
func (t *RoundTraffic) Get(s int32) Msg {
	if s < 0 || int(s) >= len(t.mod) {
		return nil
	}
	if t.dirtyBits[s>>6]&(1<<uint(s&63)) != 0 {
		return t.mod[s]
	}
	return t.buf.get(s)
}

// Set overrides the message delivered on slot s this round: a corruption
// (non-nil m), an injection on a silent edge, or a drop (nil m). Setting a
// slot back to a value byte-identical with the sender's message costs no
// budget — the engine diffs overrides against the collected round, so only
// real differences count as touched edges. Set panics on an invalid slot;
// slots come from Slot, EdgeSlots, or All.
func (t *RoundTraffic) Set(s int32, m Msg) {
	if s < 0 || int(s) >= len(t.mod) {
		panic(fmt.Sprintf("congest: RoundTraffic.Set on invalid slot %d", s))
	}
	if t.dirtyBits[s>>6]&(1<<uint(s&63)) == 0 {
		t.dirtyBits[s>>6] |= 1 << uint(s&63)
		t.dirty = append(t.dirty, s)
	}
	t.mod[s] = m
}

// SetEdge is Set addressed by directed edge instead of slot. When de is not
// an edge of the graph, a non-nil m is recorded as a non-edge injection —
// it counts against the round's budget and then aborts the run with the
// same "injected on non-edge" error the legacy map path produced (a nil m
// on a non-edge is a no-op, also as before). Adversaries that resolve slots
// themselves use Set; SetEdge is for edge-addressed writes whose edges may
// not be validated (e.g. user-supplied schedules).
func (t *RoundTraffic) SetEdge(de graph.DirEdge, m Msg) {
	if s := t.buf.layout.slot(de.From, de.To); s >= 0 {
		t.Set(s, m)
		return
	}
	if m != nil {
		t.injectInvalid(de)
	}
}

// All iterates the slots carrying a message in the round's collected
// (pre-adversary) traffic, in canonical ascending (sender, receiver) order.
// The adversary's own Set overrides are not reflected here — read them back
// with Get.
func (t *RoundTraffic) All() iter.Seq2[int32, Msg] {
	t.buf.sortTouched()
	return func(yield func(int32, Msg) bool) {
		for _, s := range t.buf.touched {
			if !yield(s, t.buf.get(s)) {
				return
			}
		}
	}
}

// Traffic returns the round's collected traffic as the legacy map view,
// materialized lazily and cached for the round. It exists for map-based
// TrafficAdversary code behind AdaptTraffic; slot-native adversaries should
// never call it (the whole point of the slot interface is that fault rounds
// allocate no maps). The map and its messages are read-only.
func (t *RoundTraffic) Traffic() Traffic { return t.buf.materialize() }

// injectInvalid records a non-edge injection from the compat adapter. It is
// budget-accounted like any touched edge and then aborts the round after the
// budget verdict, matching the legacy map path.
func (t *RoundTraffic) injectInvalid(de graph.DirEdge) {
	t.invalid = append(t.invalid, de)
}

// parallelSettleMin is the dirty-set size below which the chunked overlay
// diff is not worth the pool barrier.
const parallelSettleMin = 32

// settle diffs the adversary's overlay against the collected round. It
// returns the touched undirected edges in sorted order (the budget unit and
// the observers' Corrupted view) and, when the adversary injected on a
// non-edge, the error to abort the round with — after the caller's budget
// verdict, exactly like the legacy map path. The returned slice is scratch,
// valid until the next round.
//
// When the shard engine hands in its pool and the dirty set is large, the
// per-slot byte comparisons — the O(dirty · |msg|) part — run chunked over
// the pool into a verdict array; the fold below consumes the verdicts in the
// same dirty order the sequential path walks, so the result is byte-identical
// regardless of pool (a nil pool always takes the sequential path).
func (t *RoundTraffic) settle(pool *shardPool) ([]graph.Edge, error) {
	t.changed = t.changed[:0]
	t.undirList = t.undirList[:0]
	if pool != nil && pool.size > 0 && len(t.dirty) >= parallelSettleMin {
		if cap(t.keep) < len(t.dirty) {
			t.keep = make([]bool, len(t.dirty))
		}
		keep, dirty, nd := t.keep[:len(t.dirty)], t.dirty, len(t.dirty)
		shards := pool.shards()
		pool.run(func(k int) {
			for i := nd * k / shards; i < nd*(k+1)/shards; i++ {
				s := dirty[i]
				keep[i] = !msgSame(t.buf.get(s), t.mod[s])
			}
		})
		for i, s := range t.dirty {
			if !keep[i] {
				continue
			}
			t.changed = append(t.changed, s)
			u := t.buf.layout.undir[s]
			if !t.undirMark[u] {
				t.undirMark[u] = true
				t.undirList = append(t.undirList, u)
			}
		}
	} else {
		for _, s := range t.dirty {
			if msgSame(t.buf.get(s), t.mod[s]) {
				continue
			}
			t.changed = append(t.changed, s)
			u := t.buf.layout.undir[s]
			if !t.undirMark[u] {
				t.undirMark[u] = true
				t.undirList = append(t.undirList, u)
			}
		}
	}
	edges := t.edgesOut[:0]
	allEdges := t.buf.layout.g.Edges()
	for _, u := range t.undirList {
		edges = append(edges, allEdges[u])
		t.undirMark[u] = false
	}
	var err error
	if len(t.invalid) > 0 {
		// Non-edges can never collide with graph edges, so deduplication is
		// only among the (few) invalid injections themselves. The reported
		// offender is the smallest, keeping the error deterministic (the
		// legacy path reported whichever map iteration found first).
		report := t.invalid[0]
		for _, de := range t.invalid {
			if de.From < report.From || (de.From == report.From && de.To < report.To) {
				report = de
			}
			e := de.Undirected()
			dup := false
			for _, have := range edges[len(t.undirList):] {
				if have == e {
					dup = true
					break
				}
			}
			if !dup {
				edges = append(edges, e)
			}
		}
		err = fmt.Errorf("congest: adversary injected on non-edge (%d,%d)", report.From, report.To)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].V < edges[j].V
	})
	t.edgesOut = edges
	if len(edges) == 0 {
		return nil, err
	}
	return edges, err
}

// apply folds the settled overlay into the round buffer, which becomes the
// delivered round. Override payloads are copied into the round arena — the
// adversary keeps ownership of the slices it Set. Must follow settle (it
// consumes the changed list).
func (t *RoundTraffic) apply() {
	if len(t.changed) == 0 {
		return
	}
	b := t.buf
	b.view = nil // the cached map (if any) showed pre-adversary traffic
	dropped := false
	for _, s := range t.changed {
		if m := t.mod[s]; m == nil {
			b.refs[s] = 0
			dropped = true
		} else {
			b.putChunk(0, s, m)
		}
	}
	if dropped {
		// Compact the occupancy list in place; filtering preserves order, so
		// the sorted flag stays valid.
		kept := b.touched[:0]
		for _, s := range b.touched {
			if b.refs[s] != 0 {
				kept = append(kept, s)
			}
		}
		b.touched = kept
	}
}

// msgSame reports whether two messages are identical including presence:
// nil (silent edge) differs from a present empty message.
func msgSame(a, b Msg) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	return msgEqual(a, b)
}

// trafficAdapter bridges a legacy map-based TrafficAdversary onto the
// slot-native boundary: it materializes the round's map view, runs the
// wrapped adversary, and diffs the returned map back into slot overrides.
type trafficAdapter struct {
	a TrafficAdversary
}

// AdaptTraffic wraps a legacy map-based adversary for use as the engine's
// Adversary. The wrapped adversary keeps its exact legacy semantics —
// budget interfaces (PerRoundBudget, TotalBudget) and RunResetter declared
// on it are honoured through the adapter, returning the very map received
// costs nothing, and injecting on a non-edge aborts the run — at the price
// of one map materialization per round. Port hot adversaries to the
// slot-native interface instead.
func AdaptTraffic(a TrafficAdversary) Adversary { return trafficAdapter{a: a} }

// Unwrap exposes the wrapped adversary so the engine can find its budget and
// run-reset declarations (and callers their concrete type).
func (ad trafficAdapter) Unwrap() any { return ad.a }

// Intercept implements Adversary.
func (ad trafficAdapter) Intercept(round int, rt *RoundTraffic) {
	in := rt.Traffic()
	out := ad.a.Intercept(round, in)
	if sameMap(out, in) {
		return
	}
	// Slots present in the collected round: modified or dropped.
	for s, m := range rt.All() {
		d, ok := out[rt.DirEdge(s)]
		switch {
		case !ok:
			rt.Set(s, nil)
		case d == nil:
			// Explicit nil values normalize to present-empty, as the legacy
			// loadFrom did.
			if len(m) != 0 {
				rt.Set(s, Msg{})
			}
		case !msgEqual(m, d):
			rt.Set(s, d)
		}
	}
	// Entries beyond the collected round: injections (possibly on non-edges).
	for de, d := range out {
		s := rt.Slot(de.From, de.To)
		if s < 0 {
			rt.injectInvalid(de)
			continue
		}
		if rt.buf.refs[s] == 0 {
			if d == nil {
				d = Msg{}
			}
			rt.Set(s, d)
		}
	}
}

// sameMap reports whether two traffic maps are the very same map value —
// the adapter's fast path for adversaries returning their input unchanged.
func sameMap(a, b Traffic) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return reflect.ValueOf(a).Pointer() == reflect.ValueOf(b).Pointer()
}

// unwrapAdversary returns the adversary the budget and run-reset interfaces
// should be looked up on: the wrapped legacy adversary for compat adapters,
// the adversary itself otherwise.
func unwrapAdversary(a Adversary) any {
	if u, ok := a.(interface{ Unwrap() any }); ok {
		return u.Unwrap()
	}
	return a
}
