package congest

import (
	"fmt"
	"slices"
	"sort"

	"mobilecongest/internal/graph"
)

// The flat traffic representation: instead of allocating a fresh
// map[graph.DirEdge]Msg per round, a run precomputes a dense DirEdge -> slot
// layout from the graph once and moves every round's traffic through
// reusable slot-indexed slabs. The map form survives only as the stable
// adversary- and observer-facing view, materialized lazily from a buffer
// when something actually asks for it.

// edgeLayout is the per-run dense indexing of a graph's directed edges, in
// CSR form: the slots of messages leaving node u are the contiguous range
// rowStart[u]..rowStart[u+1], ordered by destination ID (adjacency lists are
// sorted). Slot order is therefore ascending (From, To) — the canonical
// deterministic traffic order shared by both engines and every observer.
type edgeLayout struct {
	g        *graph.Graph
	rowStart []int32         // len n+1; CSR offsets into the slot space
	dirEdges []graph.DirEdge // slot -> directed edge
	undir    []int32         // slot -> index of the undirected edge in g.Edges()
	revSlot  []int32         // slot of (u,v) -> slot of (v,u); delivery fan-in
}

func newEdgeLayout(g *graph.Graph) *edgeLayout {
	n := g.N()
	l := &edgeLayout{g: g, rowStart: make([]int32, n+1)}
	for u := 0; u < n; u++ {
		l.rowStart[u+1] = l.rowStart[u] + int32(g.Degree(graph.NodeID(u)))
	}
	slots := int(l.rowStart[n])
	l.dirEdges = make([]graph.DirEdge, slots)
	l.undir = make([]int32, slots)
	l.revSlot = make([]int32, slots)
	for u := 0; u < n; u++ {
		from := graph.NodeID(u)
		base := l.rowStart[u]
		for j, to := range g.Neighbors(from) {
			s := base + int32(j)
			l.dirEdges[s] = graph.DirEdge{From: from, To: to}
			l.undir[s] = int32(g.EdgeIndex(from, to))
		}
	}
	for s, de := range l.dirEdges {
		l.revSlot[s] = l.slot(de.To, de.From)
	}
	return l
}

// degree returns the out-degree (== in-degree) of u in slots.
func (l *edgeLayout) degree(u graph.NodeID) int32 {
	return l.rowStart[u+1] - l.rowStart[u]
}

// slots returns the number of directed-edge slots (2M).
func (l *edgeLayout) slots() int { return len(l.dirEdges) }

// slot returns the dense index of the directed edge from->to, or -1 when the
// pair is not an edge of the graph (including out-of-range endpoints, which
// adversaries are free to inject).
func (l *edgeLayout) slot(from, to graph.NodeID) int32 {
	if int(from) < 0 || int(from) >= l.g.N() {
		return -1
	}
	nbs := l.g.Neighbors(from)
	i := sort.Search(len(nbs), func(i int) bool { return nbs[i] >= to })
	if i == len(nbs) || nbs[i] != to {
		return -1
	}
	return l.rowStart[from] + int32(i)
}

// roundBuffer holds one round's directed traffic as a slot-indexed Msg slab.
// A run reuses its buffers across rounds (the engine double-buffers: one for
// collection, one for the post-adversary delivered traffic), so the per-round
// cost is clearing the touched slots, not reallocating the round.
type roundBuffer struct {
	layout  *edgeLayout
	msgs    []Msg   // slot-indexed; nil means the edge is silent this round
	touched []int32 // occupied slots, insertion-ordered until sortTouched
	sorted  bool
	view    Traffic // cached lazy map materialization for this round
}

func newRoundBuffer(l *edgeLayout) *roundBuffer {
	return &roundBuffer{layout: l, msgs: make([]Msg, l.slots()), sorted: true}
}

// reset clears the buffer for reuse. Occupied slots are nilled individually
// (cheaper than wiping the slab, and it releases the protocol-allocated
// payloads so they do not outlive their round on the engine side). The
// cached map view is dropped, never reused: the adversary may retain it.
func (b *roundBuffer) reset() {
	for _, s := range b.touched {
		b.msgs[s] = nil
	}
	b.touched = b.touched[:0]
	b.sorted = true
	b.view = nil
}

// put records the non-nil message m on slot s. The engine writes each slot at
// most once per round (outboxes are maps, and per-sender slot ranges are
// disjoint), but double writes stay correct: the slot is tracked once.
func (b *roundBuffer) put(s int32, m Msg) {
	if b.msgs[s] == nil {
		b.touched = append(b.touched, s)
		b.sorted = false
	}
	b.msgs[s] = m
}

// len returns the number of messages in the buffer.
func (b *roundBuffer) len() int { return len(b.touched) }

// sortTouched brings the occupied slots into canonical ascending order.
func (b *roundBuffer) sortTouched() {
	if !b.sorted {
		slices.Sort(b.touched)
		b.sorted = true
	}
}

// materialize returns (and caches) the Traffic map view of the buffer — the
// stable adversary-facing representation. Messages are shared, not copied;
// callers must treat the map as read-only (adversaries return a modified
// clone instead, per the Adversary contract).
func (b *roundBuffer) materialize() Traffic {
	if b.view == nil {
		tr := make(Traffic, len(b.touched))
		for _, s := range b.touched {
			tr[b.layout.dirEdges[s]] = b.msgs[s]
		}
		b.view = tr
	}
	return b.view
}

// loadFrom refills the buffer from a traffic map (the adversary's delivered
// view), validating every entry against the layout. Explicit nil entries are
// normalized to empty messages so slot occupancy mirrors map presence.
func (b *roundBuffer) loadFrom(tr Traffic) error {
	b.reset()
	// The offending edge named in the error must not depend on map order:
	// fold to the smallest invalid edge instead of erroring mid-iteration.
	var badDE graph.DirEdge
	hasBad := false
	for de, m := range tr {
		s := b.layout.slot(de.From, de.To)
		if s < 0 {
			if !hasBad || de.From < badDE.From || (de.From == badDE.From && de.To < badDE.To) {
				badDE, hasBad = de, true
			}
			continue
		}
		if m == nil {
			m = Msg{}
		}
		b.put(s, m)
	}
	if hasBad {
		return fmt.Errorf("congest: adversary injected on non-edge (%d,%d)", badDE.From, badDE.To)
	}
	return nil
}
