package congest

import (
	"fmt"
	"slices"
	"sort"

	"mobilecongest/internal/graph"
)

// The flat traffic representation: instead of allocating a fresh
// map[graph.DirEdge]Msg per round, a run precomputes a dense DirEdge -> slot
// layout from the graph once and moves every round's traffic through
// reusable slot-indexed slabs. The map form survives only as the stable
// adversary- and observer-facing view, materialized lazily from a buffer
// when something actually asks for it.

// edgeLayout is the per-run dense indexing of a graph's directed edges, in
// CSR form: the slots of messages leaving node u are the contiguous range
// rowStart[u]..rowStart[u+1], ordered by destination ID (adjacency lists are
// sorted). Slot order is therefore ascending (From, To) — the canonical
// deterministic traffic order shared by both engines and every observer.
type edgeLayout struct {
	g        *graph.Graph
	rowStart []int32         // len n+1; CSR offsets into the slot space
	dirEdges []graph.DirEdge // slot -> directed edge
	undir    []int32         // slot -> index of the undirected edge in g.Edges()
	revSlot  []int32         // slot of (u,v) -> slot of (v,u); delivery fan-in
}

func newEdgeLayout(g *graph.Graph) *edgeLayout {
	n := g.N()
	l := &edgeLayout{g: g, rowStart: make([]int32, n+1)}
	for u := 0; u < n; u++ {
		l.rowStart[u+1] = l.rowStart[u] + int32(g.Degree(graph.NodeID(u)))
	}
	slots := int(l.rowStart[n])
	l.dirEdges = make([]graph.DirEdge, slots)
	l.undir = make([]int32, slots)
	l.revSlot = make([]int32, slots)
	for u := 0; u < n; u++ {
		from := graph.NodeID(u)
		base := l.rowStart[u]
		for j, to := range g.Neighbors(from) {
			s := base + int32(j)
			l.dirEdges[s] = graph.DirEdge{From: from, To: to}
			l.undir[s] = int32(g.EdgeIndex(from, to))
		}
	}
	for s, de := range l.dirEdges {
		l.revSlot[s] = l.slot(de.To, de.From)
	}
	return l
}

// degree returns the out-degree (== in-degree) of u in slots.
func (l *edgeLayout) degree(u graph.NodeID) int32 {
	return l.rowStart[u+1] - l.rowStart[u]
}

// slots returns the number of directed-edge slots (2M).
func (l *edgeLayout) slots() int { return len(l.dirEdges) }

// slot returns the dense index of the directed edge from->to, or -1 when the
// pair is not an edge of the graph (including out-of-range endpoints, which
// adversaries are free to inject).
func (l *edgeLayout) slot(from, to graph.NodeID) int32 {
	if int(from) < 0 || int(from) >= l.g.N() {
		return -1
	}
	nbs := l.g.Neighbors(from)
	i := sort.Search(len(nbs), func(i int) bool { return nbs[i] >= to })
	if i == len(nbs) || nbs[i] != to {
		return -1
	}
	return l.rowStart[from] + int32(i)
}

// roundBuffer holds one round's directed traffic as a packed slot-indexed
// slab: refs[s] is the (chunk, offset, length) view of slot s's payload into
// the round's byte arena (see arena.go), zero when the edge is silent. A run
// reuses the buffer across rounds; reset truncates rather than frees, so the
// per-round cost is clearing the touched refs, not reallocating the round.
//
// Two arenas alternate by round parity: delivered inbox slices resolved in
// round r must survive while round r+1 collects (the PortRuntime contract —
// an inbox is valid until the node's next exchange), so round r+1 appends
// into the other arena and only round r+2 truncates round r's bytes.
type roundBuffer struct {
	layout  *edgeLayout
	refs    []msgRef // slot-indexed packed payload views; 0 = silent
	arenas  [2]msgArena
	parity  int     // index of the arena the current round's refs resolve in
	touched []int32 // occupied slots, insertion-ordered until sortTouched
	sorted  bool
	view    Traffic // cached lazy map materialization for this round
}

func newRoundBuffer(l *edgeLayout) *roundBuffer {
	b := &roundBuffer{layout: l, refs: make([]msgRef, l.slots()), sorted: true}
	b.ensureChunks(1)
	return b
}

// reset clears the buffer for reuse: the touched refs are zeroed
// individually (cheaper than wiping the slab), parity flips, and the now
// current arena is truncated — the previous round's arena stays intact for
// inboxes still being read. The cached map view is dropped, never reused:
// the adversary may retain it (materialize copies payloads for the same
// reason).
func (b *roundBuffer) reset() {
	for _, s := range b.touched {
		b.refs[s] = 0
	}
	b.touched = b.touched[:0]
	b.sorted = true
	b.view = nil
	b.parity ^= 1
	b.arenas[b.parity].reset()
}

// ensureChunks sizes both arenas for n concurrent writers (the shard
// engine's shard count; sequential engines use chunk 0).
func (b *roundBuffer) ensureChunks(n int) {
	b.arenas[0].ensure(n)
	b.arenas[1].ensure(n)
}

// get resolves slot s's payload out of the current round's arena: nil when
// the slot is silent. The bytes are arena-backed and valid until the slot's
// receiver next exchanges; callers must not retain or mutate them.
func (b *roundBuffer) get(s int32) Msg {
	return b.arenas[b.parity].get(b.refs[s])
}

// put records the message m on slot s, copying its bytes into the round
// arena's chunk 0 — the sequential-writer form of putChunk. The engine
// writes each slot at most once per round (outboxes are maps, and per-sender
// slot ranges are disjoint), but double writes stay correct: the slot is
// tracked once.
func (b *roundBuffer) put(s int32, m Msg) { b.putChunk(0, s, m) }

// putChunk is put appending into chunk k; distinct chunks may be written
// concurrently (each shard collects into its own).
func (b *roundBuffer) putChunk(k int, s int32, m Msg) {
	if b.refs[s] == 0 {
		b.touched = append(b.touched, s)
		b.sorted = false
	}
	b.refs[s] = b.arenas[b.parity].put(k, m)
}

// len returns the number of messages in the buffer.
func (b *roundBuffer) len() int { return len(b.touched) }

// sortTouched brings the occupied slots into canonical ascending order.
func (b *roundBuffer) sortTouched() {
	if !b.sorted {
		slices.Sort(b.touched)
		b.sorted = true
	}
}

// materialize returns (and caches) the Traffic map view of the buffer — the
// stable adversary-facing representation. Payloads are copied out of the
// round arena into one backing slab: legacy map adversaries may retain the
// map past the round, and arena bytes are rewritten two rounds later.
// Callers must still treat the map as read-only (adversaries return a
// modified clone instead, per the Adversary contract). Off the hot path by
// design — only the map-compat adapter and map observers call it.
func (b *roundBuffer) materialize() Traffic {
	if b.view == nil {
		total := 0
		for _, s := range b.touched {
			total += len(b.get(s))
		}
		slab := make([]byte, 0, total)
		tr := make(Traffic, len(b.touched))
		for _, s := range b.touched {
			m := b.get(s)
			if len(m) == 0 {
				tr[b.layout.dirEdges[s]] = Msg{}
				continue
			}
			start := len(slab)
			slab = append(slab, m...)
			tr[b.layout.dirEdges[s]] = Msg(slab[start:len(slab):len(slab)])
		}
		b.view = tr
	}
	return b.view
}

// loadFrom refills the buffer from a traffic map (the adversary's delivered
// view), validating every entry against the layout. Explicit nil entries are
// normalized to empty messages so slot occupancy mirrors map presence.
func (b *roundBuffer) loadFrom(tr Traffic) error {
	b.reset()
	// The offending edge named in the error must not depend on map order:
	// fold to the smallest invalid edge instead of erroring mid-iteration.
	var badDE graph.DirEdge
	hasBad := false
	for de, m := range tr {
		s := b.layout.slot(de.From, de.To)
		if s < 0 {
			if !hasBad || de.From < badDE.From || (de.From == badDE.From && de.To < badDE.To) {
				badDE, hasBad = de, true
			}
			continue
		}
		if m == nil {
			m = Msg{}
		}
		b.put(s, m)
	}
	if hasBad {
		return fmt.Errorf("congest: adversary injected on non-edge (%d,%d)", badDE.From, badDE.To)
	}
	return nil
}
