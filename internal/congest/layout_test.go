package congest

import (
	"math/rand"
	"reflect"
	"testing"

	"mobilecongest/internal/graph"
)

// TestEdgeLayoutSlots: every directed edge gets a unique slot consistent
// with the CSR invariants, and non-edges (including out-of-range endpoints)
// resolve to -1.
func TestEdgeLayoutSlots(t *testing.T) {
	graphs := []*graph.Graph{
		graph.Path(2), graph.Cycle(7), graph.Clique(9),
		graph.Circulant(12, 3), graph.Grid(3, 4), graph.Petersen(),
	}
	for _, g := range graphs {
		l := newEdgeLayout(g)
		if l.slots() != 2*g.M() {
			t.Fatalf("%d slots for %d edges", l.slots(), g.M())
		}
		seen := make(map[int32]bool)
		for u := 0; u < g.N(); u++ {
			from := graph.NodeID(u)
			for _, to := range g.Neighbors(from) {
				s := l.slot(from, to)
				if s < 0 || seen[s] {
					t.Fatalf("slot(%d,%d) = %d (dup=%v)", from, to, s, seen[s])
				}
				seen[s] = true
				if l.dirEdges[s] != (graph.DirEdge{From: from, To: to}) {
					t.Fatalf("dirEdges[%d] = %v, want (%d,%d)", s, l.dirEdges[s], from, to)
				}
				if int(l.undir[s]) != g.EdgeIndex(from, to) {
					t.Fatalf("undir[%d] = %d, want %d", s, l.undir[s], g.EdgeIndex(from, to))
				}
			}
		}
		if len(seen) != l.slots() {
			t.Fatalf("covered %d slots of %d", len(seen), l.slots())
		}
		// Non-edges and wild endpoints.
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 50; i++ {
			u := graph.NodeID(rng.Intn(g.N()*2) - g.N()/2)
			v := graph.NodeID(rng.Intn(g.N()*2) - g.N()/2)
			if int(u) >= 0 && int(u) < g.N() && g.HasEdge(u, v) {
				continue
			}
			if s := l.slot(u, v); s != -1 {
				t.Fatalf("slot(%d,%d) = %d for non-edge", u, v, s)
			}
		}
	}
}

// TestRoundBufferRoundTrip: put/materialize/loadFrom/reset preserve the
// map semantics the engines rely on.
func TestRoundBufferRoundTrip(t *testing.T) {
	g := graph.Clique(5)
	l := newEdgeLayout(g)
	b := newRoundBuffer(l)

	tr := Traffic{
		{From: 3, To: 1}: U64Msg(7),
		{From: 0, To: 4}: U64Msg(9),
		{From: 1, To: 3}: {}, // empty-but-present message
	}
	if err := b.loadFrom(tr); err != nil {
		t.Fatal(err)
	}
	if b.len() != 3 {
		t.Fatalf("len = %d, want 3", b.len())
	}
	got := b.materialize()
	if len(got) != 3 {
		t.Fatalf("materialized %d entries", len(got))
	}
	for de, m := range tr {
		if string(got[de]) != string(m) {
			t.Fatalf("edge %v: got %x want %x", de, got[de], m)
		}
	}
	if reflect.ValueOf(b.materialize()).Pointer() != reflect.ValueOf(got).Pointer() {
		t.Fatal("materialize must cache and reuse the round's map view")
	}

	// Injection on a non-edge is rejected.
	if err := b.loadFrom(Traffic{{From: 0, To: 9}: U64Msg(1)}); err == nil {
		t.Fatal("non-edge load accepted")
	}

	b.reset()
	if b.len() != 0 {
		t.Fatalf("len after reset = %d", b.len())
	}
	for s := range b.refs {
		if b.refs[s] != 0 {
			t.Fatalf("slot %d not cleared", s)
		}
	}
}

// TestRoundBufferCanonicalOrder: touched slots come out in ascending
// (sender, receiver) order regardless of insertion order.
func TestRoundBufferCanonicalOrder(t *testing.T) {
	g := graph.Cycle(6)
	l := newEdgeLayout(g)
	b := newRoundBuffer(l)
	edges := []graph.DirEdge{{From: 5, To: 0}, {From: 2, To: 1}, {From: 0, To: 1}, {From: 3, To: 4}}
	for _, de := range edges {
		b.put(l.slot(de.From, de.To), U64Msg(1))
	}
	b.sortTouched()
	prev := graph.DirEdge{From: -1, To: -1}
	for _, s := range b.touched {
		de := l.dirEdges[s]
		if de.From < prev.From || (de.From == prev.From && de.To <= prev.To) {
			t.Fatalf("order violated: %v after %v", de, prev)
		}
		prev = de
	}
}
