package congest

// Packed round slabs: instead of carrying each slot's payload as an
// independently heap-allocated []byte behind a slab of 24-byte slice
// headers, a round buffer stores one 8-byte msgRef per slot — a packed
// (chunk, offset, length) view into a per-round byte arena — and the payload
// bytes themselves live contiguously in the arena. Collection copies each
// outbox payload into the arena (so the engine never aliases
// protocol-owned buffers), and every downstream reader — the adversary's
// RoundTraffic Get path, the delivery gather, the observers — resolves the
// view back to a []byte subslice without allocating. The arena is truncated,
// not freed, each round, so a warm run's rounds allocate nothing.
//
// Chunks exist for the shard engine: each shard appends into its own chunk
// during the parallel collection phase, so writers never contend; the phase
// barrier publishes every chunk to every reader. Sequential engines use
// chunk 0 only.

// msgRef is the packed per-slot payload reference. The zero value means the
// slot is silent (no message). Layout, high to low:
//
//	bit  63     present — set on every non-zero ref, so ref != 0 ⇔ occupied
//	bit  62     spill — payload lives in the arena's spill list, not a chunk
//	bits 48..61 chunk index (14 bits)
//	bits 27..47 payload length in bytes (21 bits, ≤ 2 MiB inline)
//	bits 0..26  byte offset into the chunk (27 bits), or the spill index
//
// Oversized payloads and chunk-offset overflows take the spill path: the
// payload is cloned into the chunk's spill list and the offset field holds
// the spill index (the length field is unused there — spilled payloads carry
// their own length). The budget check converts lengths to bits (8·len).
type msgRef uint64

const (
	refPresent    msgRef = 1 << 63
	refSpill      msgRef = 1 << 62
	refChunkBits         = 14
	refLenBits           = 21
	refOffBits           = 27
	refChunkShift        = refOffBits + refLenBits
	refLenShift          = refOffBits
	refChunkMask         = 1<<refChunkBits - 1
	refMaxLen            = 1<<refLenBits - 1
	refMaxOff            = 1<<refOffBits - 1
)

// packRef builds an inline (non-spill) reference. Callers guarantee the
// ranges; see msgArena.put for the spill fallback.
func packRef(chunk, off, length int) msgRef {
	return refPresent | msgRef(chunk)<<refChunkShift | msgRef(length)<<refLenShift | msgRef(off)
}

func (r msgRef) chunk() int  { return int(r>>refChunkShift) & refChunkMask }
func (r msgRef) length() int { return int(r>>refLenShift) & refMaxLen }
func (r msgRef) offset() int { return int(r & refMaxOff) }

// emptyMsg is the canonical present-but-empty payload: Get must distinguish
// a silent slot (nil) from a delivered zero-byte message (non-nil, empty),
// and resolving every empty ref to one shared value keeps that distinction
// allocation-free.
var emptyMsg = Msg{}

// msgArena owns one round's payload bytes: one append-only chunk per
// concurrent writer plus a per-chunk spill list for payloads the packed
// encoding cannot address inline. reset truncates in place, keeping the
// grown capacity, so arenas reach a sticky high-water mark after warmup and
// later rounds append without allocating.
type msgArena struct {
	chunks [][]byte
	spill  [][]Msg
}

// ensure grows the writer count to at least n chunks.
func (a *msgArena) ensure(n int) {
	for len(a.chunks) < n {
		a.chunks = append(a.chunks, nil)
	}
	for len(a.spill) < n {
		a.spill = append(a.spill, nil)
	}
}

// reserve pre-grows chunk 0 to the given byte capacity — the slots×budget
// sizing hint applied when a run declares a bandwidth budget. Only useful
// between rounds (the chunk must be empty).
func (a *msgArena) reserve(bytes int) {
	if len(a.chunks[0]) == 0 && cap(a.chunks[0]) < bytes {
		a.chunks[0] = make([]byte, 0, bytes)
	}
}

// reset truncates every chunk and releases every spilled payload, keeping
// capacities for the next round.
func (a *msgArena) reset() {
	for k := range a.chunks {
		a.chunks[k] = a.chunks[k][:0]
	}
	for k := range a.spill {
		sp := a.spill[k]
		for i := range sp {
			sp[i] = nil
		}
		a.spill[k] = sp[:0]
	}
}

// put copies m's bytes into chunk k and returns the packed reference.
// Distinct k values may be written concurrently (the shard engine's
// collection phase); a single k is single-writer.
func (a *msgArena) put(k int, m Msg) msgRef {
	if len(m) == 0 {
		return refPresent | msgRef(k)<<refChunkShift
	}
	c := a.chunks[k]
	if len(m) > refMaxLen || len(c) > refMaxOff {
		idx := len(a.spill[k])
		a.spill[k] = append(a.spill[k], m.Clone())
		return refPresent | refSpill | msgRef(k)<<refChunkShift | msgRef(idx)
	}
	off := len(c)
	a.chunks[k] = append(c, m...)
	return packRef(k, off, len(m))
}

// get resolves a reference to its payload bytes: nil for a silent slot, a
// shared canonical empty Msg for a present zero-byte one, otherwise a
// capacity-clipped subslice of the owning chunk (or the spilled clone).
// Growing a chunk with later puts is safe for already-resolved slices —
// append copies the prefix, and the superseded backing array stays valid and
// is never rewritten.
func (a *msgArena) get(r msgRef) Msg {
	if r&refPresent == 0 {
		return nil
	}
	if r&refSpill != 0 {
		return a.spill[r.chunk()][r.offset()]
	}
	n := r.length()
	if n == 0 {
		return emptyMsg
	}
	off := r.offset()
	return Msg(a.chunks[r.chunk()][off : off+n : off+n])
}
