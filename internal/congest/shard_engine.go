package congest

import (
	"iter"
	"runtime"
)

// ShardEngine executes every phase of a round as a parallel-for over
// contiguous CSR node shards. Nodes are the same iter.Pull coroutines the
// step engine drives, but instead of one scheduler goroutine resuming all of
// them, each shard's nodes are stepped by one worker of a persistent pool
// parked on the RunContext, with a barrier between phases:
//
//	compute+collect  — per shard: resume each live node to its exchange
//	                   barrier and fold its outbox into the shard's private
//	                   slice of the collection buffer (disjoint CSR slot
//	                   ranges, so shards never contend)
//	adversary        — sequential on the coordinating goroutine (Intercept,
//	                   budget verdicts, apply), with the settle diff itself
//	                   chunked over the pool when the dirty set is large
//	delivery gather  — per shard: refill the receivers' port inboxes from
//	                   the delivered buffer through revSlot
//
// The phase structure changes scheduling only: shard merge order is shard
// order (== node order), the adversary boundary is untouched, and observers
// run sequentially on the coordinator, so Results, traces, and eavesdropper
// views are byte-identical with the other engines — enforced by the
// cross-engine equivalence suites at several shard counts.
//
// The pool persists on the RunContext across runs (sweep cells, repeated
// Scenario.Run), so the fault-free steady state stays zero-alloc per round.
// Pick this engine for large graphs (n ≳ 10⁴) on multi-core hosts; for small
// graphs the per-phase barriers cost more than the parallelism returns and
// the step engine wins.
type ShardEngine struct {
	// Shards is the number of contiguous node shards, which is also the
	// worker parallelism of every phase. 0 (the default) uses GOMAXPROCS,
	// bounded by the RunContext's LimitShards cap; either way the count is
	// clamped to [1, n]. 1 runs the whole round on the coordinator — no pool,
	// no barriers — and is the apples-to-apples baseline for the other
	// engines.
	Shards int
}

// Name implements Engine.
func (ShardEngine) Name() string { return "shard" }

// Run implements Engine.
func (e ShardEngine) Run(cfg Config, proto Protocol) (*Result, error) {
	return e.RunIn(nil, cfg, proto)
}

// shardCount resolves the effective shard count for a run of n nodes.
func (e ShardEngine) shardCount(rc *RunContext, n int) int {
	s := e.Shards
	if s <= 0 {
		s = runtime.GOMAXPROCS(0)
		if rc.shardCap > 0 && s > rc.shardCap {
			s = rc.shardCap
		}
	}
	if s > n {
		s = n
	}
	if s < 1 {
		s = 1
	}
	return s
}

// RunIn implements ContextRunner.
func (e ShardEngine) RunIn(rc *RunContext, cfg Config, proto Protocol) (res *Result, err error) {
	core, err := newRunCore(rc, cfg)
	if err != nil {
		return nil, err
	}
	defer func() { core.runDone(err) }()
	rc = core.rc
	n := core.g.N()

	shards := e.shardCount(rc, n)
	pool := rc.ensurePool(shards - 1)
	core.pool = pool
	bounds := rc.shardBounds(shards)
	// Each shard appends collected payloads into its own arena chunk, so the
	// parallel collection phase never contends on the round arena.
	core.cur.ensureChunks(shards)
	touched, errs, active := rc.shardScratch(shards)
	for k := 0; k < shards; k++ {
		active[k] = int(bounds[k+1] - bounds[k])
	}

	cores := core.newNodeCores()
	nodes := make([]stepNode, n)
	// Build the per-node coroutines shard-parallel: at 10⁵–10⁶ nodes the
	// iter.Pull setup is itself a visible slice of short-run wall time.
	pool.run(func(k int) {
		for u := bounds[k]; u < bounds[k+1]; u++ {
			s := &nodes[u]
			s.nodeCore = &cores[u]
			s.next, s.stop = iter.Pull(func(yield func(struct{}) bool) {
				defer func() {
					if r := recover(); r != nil {
						if _, ok := r.(abortSignal); !ok {
							panic(r)
						}
					}
				}()
				s.yield = yield
				proto(s)
			})
		}
	})
	// Unwind every still-parked coroutine on any exit path; stop is a no-op
	// on finished ones. Sequential: the run is already over.
	defer func() {
		for i := range nodes {
			nodes[i].stop()
		}
	}()

	sr := &shardRun{
		core:    core,
		nodes:   nodes,
		bounds:  bounds,
		touched: touched,
		errs:    errs,
		active:  active,
		inSlab:  rc.inSlab,
	}
	// Bind the phase method values once: a method value allocates its
	// closure, so binding inside the loop would cost two allocs per round.
	computePhase := sr.computePhase
	gatherPhase := sr.gatherPhase

	nActive := n
	for nActive > 0 {
		if err := core.beginRound(); err != nil {
			return nil, err
		}
		pool.run(computePhase)
		nActive = 0
		buf := core.cur
		for k := 0; k < shards; k++ {
			if errs[k] != nil {
				return nil, errs[k]
			}
			nActive += active[k]
		}
		for k := 0; k < shards; k++ {
			buf.touched = append(buf.touched, touched[k]...)
		}
		if nActive == 0 {
			// Every node terminated without exchanging: the round is
			// abandoned before delivery, exactly like the other engines.
			break
		}
		delivered, corrupted, err := core.intercept()
		if err != nil {
			return nil, err
		}
		delivered.sortTouched()
		pool.run(gatherPhase)
		core.deliverRound(delivered, corrupted)
	}

	return core.finish(outputs(cores)), nil
}

// shardRun carries one shard-engine run's phase state so the phase bodies
// are named methods — entry points the shardsafe and hotalloc analyzers see
// — rather than anonymous closures. All slices are shard-indexed or
// CSR-partitioned; each worker k touches only its own slots.
type shardRun struct {
	core    *runCore
	nodes   []stepNode
	bounds  []int32
	touched [][]int32
	errs    []error
	active  []int
	inSlab  []Msg
}

// computePhase steps shard k's live nodes to their next exchange (or to
// termination) and collects their outboxes. Within a shard, node order is
// ascending and ports are ascending, so the shard's slot list comes out
// sorted; shard slot ranges are themselves ascending, so the coordinator's
// merge in shard order rebuilds the canonical global order without a sort.
// The first collection error aborts the shard, leaving its remaining
// nodes un-stepped — the same nodes the step engine would not have
// reached; the coordinator surfaces the lowest shard's error, which is
// the lowest node's, matching the sequential engines.
//
//mobilevet:hotpath
func (sr *shardRun) computePhase(k int) {
	tl := sr.touched[k][:0]
	stepped := sr.active[k]
	for u := sr.bounds[k]; u < sr.bounds[k+1]; u++ {
		s := &sr.nodes[u]
		if s.done {
			continue
		}
		if _, alive := s.next(); !alive {
			s.done = true
			stepped--
			continue
		}
		if err := sr.core.collectShard(s.nodeCore, k, &tl); err != nil {
			sr.errs[k] = err
			break
		}
	}
	sr.touched[k] = tl
	sr.active[k] = stepped
}

// gatherPhase is the delivery fan-in for shard k's receivers: for every
// in-slot of the shard's node range, mirror the delivered buffer through
// revSlot. Unlike the sequential engines' O(delivered) inClear walk this
// rewrites the whole range — silent edges are re-nilled rather than
// remembered — trading O(slots/shards) writes for having no shared
// clear-list to contend on. inClear stays empty for the whole run.
//
//mobilevet:hotpath
func (sr *shardRun) gatherPhase(k int) {
	layout, buf := sr.core.layout, sr.core.cur
	lo, hi := layout.rowStart[sr.bounds[k]], layout.rowStart[sr.bounds[k+1]]
	rev := layout.revSlot
	for rs := lo; rs < hi; rs++ {
		// Resolving a packed ref may read another shard's chunk — safe:
		// collection finished at the phase barrier, nothing writes now.
		sr.inSlab[rs] = buf.get(rev[rs])
	}
}

// collectShard is collectOutbox for the shard engine: identical validation
// and slot math, but slot occupancy is recorded in the shard's private list
// instead of the shared buffer's, and payloads are copied into the shard's
// own arena chunk, so shards collect concurrently into their disjoint CSR
// slot ranges without contending on the arena. The caller merges the
// per-shard lists in shard order, which keeps the buffer's canonical
// ascending slot order without a sort.
func (c *runCore) collectShard(nc *nodeCore, k int, touched *[]int32) error {
	out := nc.outPending
	nc.outPending = nil
	if nc.badSend {
		return badSendError(nc)
	}
	base := c.layout.rowStart[nc.id]
	if len(out) > int(c.layout.degree(nc.id)) {
		return badDegreeError(c, nc, out)
	}
	refs, arena := c.cur.refs, &c.cur.arenas[c.cur.parity]
	for p, m := range out {
		if m == nil {
			continue
		}
		if c.bwBits > 0 && len(m)*8 > c.bwBits {
			return badBandwidthError(c, nc, p, m)
		}
		s := base + int32(p)
		if refs[s] == 0 {
			*touched = append(*touched, s)
		}
		refs[s] = arena.put(k, m)
		out[p] = nil
	}
	return nil
}
