package congest

import (
	"math/rand"
	"sort"

	"mobilecongest/internal/graph"
)

// The port-indexed node runtime: a node's ports are its neighbours in
// ascending ID order, matching both Neighbors() and the CSR edgeLayout, so
// port i of node u addresses the directed-edge slot rowStart[u]+i. Protocols
// programmed against PortRuntime move their round through reusable []Msg
// slices backed by the run's packed round arenas — the fault-free hot path
// allocates no per-round maps at all. The map Exchange survives as a compat
// wrapper over ports (see Runtime), mirroring how the map Traffic view
// survives over the slot-native adversary boundary.

// PortRuntime is the slot-native interface protocol code programs against.
// Both engines' node runtimes implement it; Ports upgrades any Runtime to
// it (natively when the underlying runtime is port-aware, via a map-backed
// shim otherwise), so port-native protocols run unchanged under legacy
// compiler wrappers.
type PortRuntime interface {
	Runtime
	// Degree returns the number of ports (== len(Neighbors())).
	Degree() int
	// Neighbor returns the neighbour on port p (== Neighbors()[p]).
	Neighbor(p int) graph.NodeID
	// Port returns the port of neighbour v, or -1 when v is not adjacent.
	Port(v graph.NodeID) int
	// OutBuf returns the node's reusable port-indexed outbox. The engine
	// hands back the same slice every round, cleared: ExchangePorts consumes
	// its entries as it collects them, so a protocol refills it each round
	// without worrying about stale leftovers.
	OutBuf() []Msg
	// ExchangePorts sends out[p] to the neighbour on port p (nil entries
	// send nothing; out shorter than Degree leaves the tail silent) and
	// returns the round's inbox, in[p] holding the message received from
	// port p (nil means silent). It is the synchronous round barrier, and
	// the port-native twin of Exchange.
	//
	// Ownership: the engine consumes out (entries are cleared during
	// collection, and each payload's bytes are copied into the round's
	// packed arena) and owns the returned inbox, which is only valid until
	// the next exchange — delivered payloads are arena-backed views the
	// engine rewrites two rounds later. A protocol must not retain or mutate
	// received messages in place (copy what it keeps), and must not mutate a
	// sent Msg before the exchange returns. Sending one Msg on several ports
	// is fine.
	ExchangePorts(out []Msg) []Msg
}

// Ports returns rt's port-native interface: rt itself when it is already a
// PortRuntime (both engines' runtimes and WrappedRuntime are), otherwise a
// shim that adapts the map Exchange — correct for any Runtime, at the price
// of the map materializations the native path avoids. Protocols should call
// it once, up front.
func Ports(rt Runtime) PortRuntime {
	if pr, ok := rt.(PortRuntime); ok {
		return pr
	}
	return &portShim{rt: rt}
}

// portIndex finds v in the ascending neighbour list (shared by every
// PortRuntime implementation).
func portIndex(neighbors []graph.NodeID, v graph.NodeID) int {
	i := sort.Search(len(neighbors), func(i int) bool { return neighbors[i] >= v })
	if i == len(neighbors) || neighbors[i] != v {
		return -1
	}
	return i
}

// portShim adapts a plain map-based Runtime to PortRuntime for runtimes the
// engines did not build (third-party Runtime wrappers that predate ports).
type portShim struct {
	rt  Runtime
	out []Msg
	in  []Msg
}

var _ PortRuntime = (*portShim)(nil)

func (p *portShim) ID() graph.NodeID          { return p.rt.ID() }
func (p *portShim) N() int                    { return p.rt.N() }
func (p *portShim) Neighbors() []graph.NodeID { return p.rt.Neighbors() }
func (p *portShim) Round() int                { return p.rt.Round() }
func (p *portShim) Rand() *rand.Rand          { return p.rt.Rand() }
func (p *portShim) Input() []byte             { return p.rt.Input() }
func (p *portShim) SetOutput(v any)           { p.rt.SetOutput(v) }
func (p *portShim) Shared() any               { return p.rt.Shared() }

func (p *portShim) Exchange(out map[graph.NodeID]Msg) map[graph.NodeID]Msg {
	return p.rt.Exchange(out)
}

func (p *portShim) Degree() int { return len(p.rt.Neighbors()) }

func (p *portShim) Neighbor(port int) graph.NodeID { return p.rt.Neighbors()[port] }

func (p *portShim) Port(v graph.NodeID) int { return portIndex(p.rt.Neighbors(), v) }

func (p *portShim) OutBuf() []Msg {
	if p.out == nil {
		p.out = make([]Msg, p.Degree())
	}
	return p.out
}

func (p *portShim) ExchangePorts(out []Msg) []Msg {
	nbs := p.rt.Neighbors()
	m := make(map[graph.NodeID]Msg, len(out))
	for i, msg := range out {
		if msg != nil {
			m[nbs[i]] = msg
			out[i] = nil
		}
	}
	inm := p.rt.Exchange(m)
	if p.in == nil {
		p.in = make([]Msg, len(nbs))
	}
	for i, v := range nbs {
		p.in[i] = inm[v]
	}
	return p.in
}
