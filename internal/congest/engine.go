package congest

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"mobilecongest/internal/graph"
)

// Engine executes a protocol on every node of a configured network. The
// implementations trade scheduling strategies while sharing all simulation
// semantics (round structure, adversary budget accounting, statistics):
//
//   - GoroutineEngine runs each node in its own goroutine with channel
//     barriers — the original engine, and the one that tolerates protocols
//     doing their own blocking.
//   - StepEngine resumes each node as a coroutine step function on a single
//     scheduler goroutine — no channel handoffs, much less scheduler churn,
//     and measurably faster on simulation-heavy workloads.
//   - ShardEngine runs the step engine's coroutines as a parallel-for over
//     contiguous CSR node shards on a persistent worker pool — the engine
//     for large graphs on multi-core hosts.
//
// All engines are deterministic given Config.Seed and MUST produce identical
// Results for identical Configs; the cross-engine equivalence tests enforce
// this.
type Engine interface {
	// Name is the registry key ("goroutine", "step", "shard").
	Name() string
	// Run executes proto on every node of cfg.Graph.
	Run(cfg Config, proto Protocol) (*Result, error)
}

// engines is the name-keyed engine registry; RegisterEngine extends it.
var (
	enginesMu sync.RWMutex
	engines   = map[string]Engine{
		GoroutineEngine{}.Name(): GoroutineEngine{},
		StepEngine{}.Name():      StepEngine{},
		ShardEngine{}.Name():     ShardEngine{},
	}
)

// RegisterEngine adds (or replaces) an engine under its Name, making it
// resolvable by EngineByName — and therefore usable from the root package's
// WithEngineName, sweeps, and the CLI, like the topology and adversary
// registries.
func RegisterEngine(e Engine) {
	enginesMu.Lock()
	defer enginesMu.Unlock()
	engines[e.Name()] = e
}

// EngineByName returns the registered engine with the given name. The empty
// name is an error rather than a silent default: callers that want a default
// engine pick one explicitly (congest.Run uses GoroutineEngine, the root
// Scenario API defaults to StepEngine).
func EngineByName(name string) (Engine, error) {
	enginesMu.RLock()
	e, ok := engines[name]
	enginesMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("congest: unknown engine %q (have %v)", name, EngineNames())
	}
	return e, nil
}

// EngineNames lists the registered engine names in sorted order.
func EngineNames() []string {
	enginesMu.RLock()
	defer enginesMu.RUnlock()
	names := make([]string, 0, len(engines))
	for n := range engines {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// nodeCore is the engine-independent per-node state backing PortRuntime.
// Engines embed it and supply only the barrier (ExchangePorts and the map
// compat Exchange over it).
type nodeCore struct {
	id        graph.NodeID
	neighbors []graph.NodeID
	rng       *rand.Rand // nil until the protocol's first Rand call (see Rand)
	rngSeed   int64
	rngStore  []*rand.Rand // the context's per-node RNG cache (rc.rngs)
	input     []byte
	output    any
	round     int
	n         int
	shared    any

	outBuf     []Msg // reusable port-indexed outbox (CSR sub-slice of the run's out slab)
	inBuf      []Msg // port-indexed inbox (CSR sub-slice of the run's in slab)
	outPending []Msg // slice handed to ExchangePorts, consumed at collection
	badTo      graph.NodeID
	badSend    bool // map compat Exchange addressed a non-neighbor; abort at collection
}

func (s *nodeCore) ID() graph.NodeID          { return s.id }
func (s *nodeCore) N() int                    { return s.n }
func (s *nodeCore) Neighbors() []graph.NodeID { return s.neighbors }
func (s *nodeCore) Round() int                { return s.round }
func (s *nodeCore) Input() []byte             { return s.input }
func (s *nodeCore) SetOutput(v any)           { s.output = v }
func (s *nodeCore) Shared() any               { return s.shared }

// Rand materializes the node's RNG on first use. The seed was drawn in node
// order at run start (nodeCores), so the stream is identical to an eagerly
// built RNG — but protocols that never draw randomness (most of the
// fault-free hot path) skip the ~5KB rand source per node entirely, the
// dominant setup allocation at large n. The constructed value is cached on
// the context and re-seeded on the next run that uses it. Safe under the
// concurrent engines: each node touches only its own rngStore slot, and run
// boundaries order cross-run access.
func (s *nodeCore) Rand() *rand.Rand {
	if s.rng == nil {
		r := s.rngStore[s.id]
		if r == nil {
			r = rand.New(rand.NewSource(s.rngSeed))
			s.rngStore[s.id] = r
		} else {
			r.Seed(s.rngSeed)
		}
		s.rng = r
	}
	return s.rng
}

func (s *nodeCore) Degree() int                 { return len(s.neighbors) }
func (s *nodeCore) Neighbor(p int) graph.NodeID { return s.neighbors[p] }
func (s *nodeCore) Port(v graph.NodeID) int     { return portIndex(s.neighbors, v) }
func (s *nodeCore) OutBuf() []Msg               { return s.outBuf }

// mapOutToPorts folds a legacy map outbox into the port outbox. A send to a
// non-neighbor is recorded (smallest offender, for a deterministic error)
// and aborts the run at collection, exactly like the legacy map path. The
// buffer is cleared first: a map Exchange sends exactly the map's entries,
// never entries a protocol abandoned in OutBuf before switching forms.
func (s *nodeCore) mapOutToPorts(out map[graph.NodeID]Msg) []Msg {
	buf := s.outBuf
	clear(buf)
	for to, m := range out {
		if m == nil {
			continue
		}
		p := portIndex(s.neighbors, to)
		if p < 0 {
			if !s.badSend || to < s.badTo {
				s.badSend, s.badTo = true, to
			}
			continue
		}
		buf[p] = m
	}
	return buf
}

// emptyInbox is the canonical inbox of a silent round on the map compat
// path. It is shared by every node of every run — inbox maps are read-only
// (their payloads already alias the engine's round buffer), so handing out
// one immutable empty map instead of allocating a fresh one per silent node
// per round is safe.
var emptyInbox = map[graph.NodeID]Msg{}

// portsToMap materializes the map view of a port inbox — the lazy half of
// every compat Exchange (engine runtimes and WrappedRuntime alike): the map
// exists only for the nodes and rounds that ask for it. The map is
// read-only; silent rounds share emptyInbox.
func portsToMap(neighbors []graph.NodeID, in []Msg) map[graph.NodeID]Msg {
	cnt := 0
	for _, m := range in {
		if m != nil {
			cnt++
		}
	}
	if cnt == 0 {
		return emptyInbox
	}
	mm := make(map[graph.NodeID]Msg, cnt)
	for p, m := range in {
		if m != nil {
			mm[neighbors[p]] = m
		}
	}
	return mm
}

func (s *nodeCore) portsToMapIn(in []Msg) map[graph.NodeID]Msg {
	return portsToMap(s.neighbors, in)
}

// runCore holds the engine-independent run state: validated config, the
// context carrying the flat edge layout with its reusable round buffer and
// adversary boundary scratch, the observer pipeline, and the adversary
// budget accounting. Keeping this logic in one place is what guarantees both
// engines count rounds, messages, and corrupted edge-rounds identically —
// and fire observers at identical points with identical views.
type runCore struct {
	cfg       Config
	rc        *RunContext
	g         *graph.Graph
	maxRounds int
	layout    *edgeLayout
	cur       *roundBuffer // collection buffer for the in-flight round
	observers []Observer   // internal stats observer first, then cfg.Observers
	stats     *StatsObserver
	perRound  PerRoundBudget // non-nil when the adversary declares one
	total     TotalBudget    // non-nil when the adversary declares one
	bwBits    int            // enforced bits/edge/round budget; 0 = unlimited
	round     int            // completed-round counter (the engine's round clock)
	corrupted int            // total corrupted edge-rounds, for TotalBudget enforcement
	view      RoundView      // reusable observer view (valid only during RoundDelivered)
	pool      *shardPool     // shard engine's worker pool; nil on the sequential engines
}

func newRunCore(rc *RunContext, cfg Config) (*runCore, error) {
	g := cfg.Graph
	if g == nil || g.N() == 0 {
		return nil, errors.New("congest: nil or empty graph")
	}
	if cfg.Inputs != nil && len(cfg.Inputs) != g.N() {
		return nil, fmt.Errorf("congest: %d inputs for %d nodes", len(cfg.Inputs), g.N())
	}
	maxRounds := cfg.MaxRounds
	if maxRounds <= 0 {
		maxRounds = defaultMaxRounds
	}
	if rc == nil {
		rc = NewRunContext()
	}
	rc.bind(g)
	rc.stats.Reset()
	rc.cur.reset()
	rc.resetSlabs()
	c := &runCore{
		cfg:       cfg,
		rc:        rc,
		g:         g,
		maxRounds: maxRounds,
		layout:    rc.layout,
		cur:       rc.cur,
		observers: append([]Observer{rc.stats}, cfg.Observers...),
		stats:     rc.stats,
	}
	if cfg.Bandwidth > 0 {
		c.bwBits = cfg.Bandwidth
		// Size the round arenas from slots × budget up front (capped — a
		// budgeted run rarely fills every slot every round).
		hint := min(rc.layout.slots()*((cfg.Bandwidth+7)/8), 1<<26)
		rc.cur.arenas[0].reserve(hint)
		rc.cur.arenas[1].reserve(hint)
	}
	if adv := cfg.Adversary; adv != nil {
		// Budget and run-reset declarations live on the wrapped adversary
		// when a compat adapter is installed.
		owner := unwrapAdversary(adv)
		c.perRound, _ = owner.(PerRoundBudget)
		c.total, _ = owner.(TotalBudget)
		if r, ok := owner.(RunResetter); ok {
			r.ResetRun()
		}
	}
	return c, nil
}

// newNodeCores derives the per-node state; see RunContext.nodeCores.
func (c *runCore) newNodeCores() []nodeCore {
	return c.rc.nodeCores(c.cfg)
}

// beginRound gates the round on the limit, resets the collection buffer, and
// fires RoundStart. When every node terminates during the subsequent
// collection the round is abandoned, so a run's final RoundStart may have no
// matching RoundDelivered — identically in both engines.
//
//mobilevet:hotpath
func (c *runCore) beginRound() error {
	if c.round >= c.maxRounds {
		//lint:ignore hotalloc round-limit abort; allocates only as the run ends
		return fmt.Errorf("%w (limit %d)", ErrRoundLimit, c.maxRounds)
	}
	c.cur.reset()
	for _, o := range c.observers {
		o.RoundStart(c.round)
	}
	return nil
}

// collectOutbox folds one parked node's pending port outbox into the round's
// collection buffer (copying each payload into the round arena), consuming
// (clearing) it so the node's reusable OutBuf comes back empty. Port p of
// node u is slot rowStart[u]+p by construction. It also surfaces the
// per-node validation errors: a map compat Exchange that addressed a
// non-neighbor, a port outbox longer than the degree, and — when the run
// declares a bandwidth budget — a message exceeding it. Ports are walked in
// ascending order and nodes are collected in ascending order on every
// engine, so the offender any of these errors names is deterministic: the
// smallest (node, port) that violates.
func (c *runCore) collectOutbox(nc *nodeCore) error {
	out := nc.outPending
	nc.outPending = nil
	if nc.badSend {
		return badSendError(nc)
	}
	base := c.layout.rowStart[nc.id]
	if len(out) > int(c.layout.degree(nc.id)) {
		return badDegreeError(c, nc, out)
	}
	for p, m := range out {
		if m == nil {
			continue
		}
		if c.bwBits > 0 && len(m)*8 > c.bwBits {
			return badBandwidthError(c, nc, p, m)
		}
		c.cur.put(base+int32(p), m)
		out[p] = nil
	}
	return nil
}

// The collection validation errors, shared verbatim by collectOutbox and the
// shard engine's collectShard so every engine aborts with identical text.
//
//mobilevet:coldpath abort path; a run allocates here at most once, while failing
func badSendError(nc *nodeCore) error {
	return fmt.Errorf("congest: node %d sent to non-neighbor %d", nc.id, nc.badTo)
}

//mobilevet:coldpath abort path; a run allocates here at most once, while failing
func badDegreeError(c *runCore, nc *nodeCore, out []Msg) error {
	return fmt.Errorf("congest: node %d sent on %d ports, degree %d", nc.id, len(out), c.layout.degree(nc.id))
}

//mobilevet:coldpath abort path; a run allocates here at most once, while failing
func badBandwidthError(c *runCore, nc *nodeCore, p int, m Msg) error {
	return fmt.Errorf("%w: node %d sent %d bits to neighbor %d, budget %d",
		ErrBandwidthExceeded, nc.id, len(m)*8, nc.neighbors[p], c.bwBits)
}

// outputs gathers the per-node protocol outputs in node order.
func outputs(cores []nodeCore) []any {
	out := make([]any, len(cores))
	for i := range cores {
		out[i] = cores[i].output
	}
	return out
}

// intercept runs the adversary boundary for the round: fault-free runs pass
// the collection buffer straight through; runs with an adversary take the
// interceptAdversary path. Split so the fault-free head stays on the
// hot-path allocation gate while the adversarial tail — whose budget-verdict
// errors allocate by design — sits behind the coldpath barrier.
func (c *runCore) intercept() (*roundBuffer, []graph.Edge, error) {
	if c.cfg.Adversary == nil {
		return c.cur, nil, nil
	}
	return c.interceptAdversary()
}

// interceptAdversary runs the adversary over the round's traffic and enforces
// its declared budgets, returning the buffer holding the delivered traffic.
// The adversary sees the slot-native RoundTraffic view over the flat
// collection buffer and writes its corruptions into the view's reusable
// overlay; settle then diffs the overlay against the buffer — the buffer IS
// the pre-intercept snapshot — so the adversarial path allocates neither a
// per-round map nor a deep clone, and an adversary Setting a slot back to its
// original bytes is accounted exactly like one that never touched it.
// Ordering matters here: the per-round budget is checked on this round's
// touched set BEFORE it is folded into the total edge-round count, and both
// checks abort only on strictly exceeding the budget — an adversary landing
// exactly on its TotalBudget is within its rights and must complete the run
// with CorruptedEdgeRounds equal to the budget. A non-edge injection
// (possible only through the map-compat adapter) aborts after the budget
// verdict, as the legacy map path did.
//
//mobilevet:coldpath adversarial boundary; fault-free rounds return before it
func (c *runCore) interceptAdversary() (*roundBuffer, []graph.Edge, error) {
	rt := c.rc.rt
	rt.begin(c.cur)
	c.cfg.Adversary.Intercept(c.round, rt)
	touched, badInject := rt.settle(c.pool)
	if c.perRound != nil && len(touched) > c.perRound.PerRoundEdges() {
		return nil, nil, fmt.Errorf("%w: %d edges touched in round %d, budget %d",
			ErrBudgetExceeded, len(touched), c.round, c.perRound.PerRoundEdges())
	}
	c.corrupted += len(touched)
	if c.total != nil && c.corrupted > c.total.TotalEdgeRounds() {
		return nil, nil, fmt.Errorf("%w: %d total edge-rounds, budget %d",
			ErrBudgetExceeded, c.corrupted, c.total.TotalEdgeRounds())
	}
	if badInject != nil {
		return nil, nil, badInject
	}
	rt.apply()
	return c.cur, touched, nil
}

// endRound runs the round's adversary boundary and delivery: intercept with
// budget enforcement, port fan-in (the delivered message on slot (u,v) lands
// in v's port inbox, which is the reverse slot of the in slab — no maps, no
// allocation), observer notification, and the round clock tick.
//
//mobilevet:hotpath
func (c *runCore) endRound() error {
	buf, corrupted, err := c.intercept()
	if err != nil {
		return err
	}
	buf.sortTouched()
	rc := c.rc
	for _, s := range rc.inClear {
		rc.inSlab[s] = nil
	}
	rc.inClear = rc.inClear[:0]
	for _, s := range buf.touched {
		rs := c.layout.revSlot[s]
		rc.inSlab[rs] = buf.get(s)
		rc.inClear = append(rc.inClear, rs)
	}
	c.deliverRound(buf, corrupted)
	return nil
}

// deliverRound fires RoundDelivered on the delivered buffer and ticks the
// round clock — the tail every engine shares, whether the port fan-in above
// it ran sequentially (endRound) or shard-parallel (ShardEngine's gather).
func (c *runCore) deliverRound(buf *roundBuffer, corrupted []graph.Edge) {
	// The view is reused across rounds — observers may not retain it (see
	// Observer.RoundDelivered), so one per run suffices.
	c.view = RoundView{buf: buf, corrupted: corrupted}
	for _, o := range c.observers {
		o.RoundDelivered(c.round, &c.view)
	}
	c.round++
}

// finish assembles the Result from the internal stats observer.
func (c *runCore) finish(outputs []any) *Result {
	return &Result{Stats: c.stats.Stats(), Outputs: outputs}
}

// runDone notifies every observer that the run ended, successfully or not.
// Engines call it on every exit path, exactly once per run.
func (c *runCore) runDone(err error) {
	st := c.stats.Stats()
	for _, o := range c.observers {
		o.RunDone(st, err)
	}
}

func msgEqual(a, b Msg) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
