package congest

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"mobilecongest/internal/graph"
)

// Engine executes a protocol on every node of a configured network. The two
// implementations trade scheduling strategies while sharing all simulation
// semantics (round structure, adversary budget accounting, statistics):
//
//   - GoroutineEngine runs each node in its own goroutine with channel
//     barriers — the original engine, and the one that tolerates protocols
//     doing their own blocking.
//   - StepEngine resumes each node as a coroutine step function on a single
//     scheduler goroutine — no channel handoffs, much less scheduler churn,
//     and measurably faster on simulation-heavy workloads.
//
// Both engines are deterministic given Config.Seed and MUST produce identical
// Results for identical Configs; the cross-engine equivalence tests enforce
// this.
type Engine interface {
	// Name is the registry key ("goroutine", "step").
	Name() string
	// Run executes proto on every node of cfg.Graph.
	Run(cfg Config, proto Protocol) (*Result, error)
}

// engines is the name-keyed engine registry; RegisterEngine extends it.
var (
	enginesMu sync.RWMutex
	engines   = map[string]Engine{
		GoroutineEngine{}.Name(): GoroutineEngine{},
		StepEngine{}.Name():      StepEngine{},
	}
)

// RegisterEngine adds (or replaces) an engine under its Name, making it
// resolvable by EngineByName — and therefore usable from the root package's
// WithEngineName, sweeps, and the CLI, like the topology and adversary
// registries.
func RegisterEngine(e Engine) {
	enginesMu.Lock()
	defer enginesMu.Unlock()
	engines[e.Name()] = e
}

// EngineByName returns the registered engine with the given name. The empty
// name is an error rather than a silent default: callers that want a default
// engine pick one explicitly (congest.Run uses GoroutineEngine, the root
// Scenario API defaults to StepEngine).
func EngineByName(name string) (Engine, error) {
	enginesMu.RLock()
	e, ok := engines[name]
	enginesMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("congest: unknown engine %q (have %v)", name, EngineNames())
	}
	return e, nil
}

// EngineNames lists the registered engine names in sorted order.
func EngineNames() []string {
	enginesMu.RLock()
	defer enginesMu.RUnlock()
	names := make([]string, 0, len(engines))
	for n := range engines {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// nodeCore is the engine-independent per-node state backing Runtime. Engines
// embed it and supply only Exchange.
type nodeCore struct {
	id        graph.NodeID
	neighbors []graph.NodeID
	rng       *rand.Rand
	input     []byte
	output    any
	round     int
	n         int
	shared    any
}

func (s *nodeCore) ID() graph.NodeID          { return s.id }
func (s *nodeCore) N() int                    { return s.n }
func (s *nodeCore) Neighbors() []graph.NodeID { return s.neighbors }
func (s *nodeCore) Round() int                { return s.round }
func (s *nodeCore) Rand() *rand.Rand          { return s.rng }
func (s *nodeCore) Input() []byte             { return s.input }
func (s *nodeCore) SetOutput(v any)           { s.output = v }
func (s *nodeCore) Shared() any               { return s.shared }

// runCore holds the engine-independent run state: validated config, the
// context carrying the flat edge layout with its reusable round buffer and
// adversary boundary scratch, the observer pipeline, and the adversary
// budget accounting. Keeping this logic in one place is what guarantees both
// engines count rounds, messages, and corrupted edge-rounds identically —
// and fire observers at identical points with identical views.
type runCore struct {
	cfg       Config
	rc        *RunContext
	g         *graph.Graph
	maxRounds int
	layout    *edgeLayout
	cur       *roundBuffer // collection buffer for the in-flight round
	observers []Observer   // internal stats observer first, then cfg.Observers
	stats     *StatsObserver
	perRound  PerRoundBudget // non-nil when the adversary declares one
	total     TotalBudget    // non-nil when the adversary declares one
	round     int            // completed-round counter (the engine's round clock)
	corrupted int            // total corrupted edge-rounds, for TotalBudget enforcement
}

func newRunCore(rc *RunContext, cfg Config) (*runCore, error) {
	g := cfg.Graph
	if g == nil || g.N() == 0 {
		return nil, errors.New("congest: nil or empty graph")
	}
	if cfg.Inputs != nil && len(cfg.Inputs) != g.N() {
		return nil, fmt.Errorf("congest: %d inputs for %d nodes", len(cfg.Inputs), g.N())
	}
	maxRounds := cfg.MaxRounds
	if maxRounds <= 0 {
		maxRounds = defaultMaxRounds
	}
	if rc == nil {
		rc = NewRunContext()
	}
	rc.bind(g)
	rc.stats.Reset()
	rc.cur.reset()
	c := &runCore{
		cfg:       cfg,
		rc:        rc,
		g:         g,
		maxRounds: maxRounds,
		layout:    rc.layout,
		cur:       rc.cur,
		observers: append([]Observer{rc.stats}, cfg.Observers...),
		stats:     rc.stats,
	}
	if adv := cfg.Adversary; adv != nil {
		// Budget and run-reset declarations live on the wrapped adversary
		// when a compat adapter is installed.
		owner := unwrapAdversary(adv)
		c.perRound, _ = owner.(PerRoundBudget)
		c.total, _ = owner.(TotalBudget)
		if r, ok := owner.(RunResetter); ok {
			r.ResetRun()
		}
	}
	return c, nil
}

// newNodeCores derives the per-node state; see RunContext.nodeCores.
func (c *runCore) newNodeCores() []nodeCore {
	return c.rc.nodeCores(c.cfg)
}

// beginRound gates the round on the limit, resets the collection buffer, and
// fires RoundStart. When every node terminates during the subsequent
// collection the round is abandoned, so a run's final RoundStart may have no
// matching RoundDelivered — identically in both engines.
func (c *runCore) beginRound() error {
	if c.round >= c.maxRounds {
		return fmt.Errorf("%w (limit %d)", ErrRoundLimit, c.maxRounds)
	}
	c.cur.reset()
	for _, o := range c.observers {
		o.RoundStart(c.round)
	}
	return nil
}

// collectOutbox validates one node's round outbox and folds it into the
// round's collection buffer (nil messages send nothing).
func (c *runCore) collectOutbox(from graph.NodeID, out map[graph.NodeID]Msg) error {
	for to, m := range out {
		if m == nil {
			continue
		}
		s := c.layout.slot(from, to)
		if s < 0 {
			return fmt.Errorf("congest: node %d sent to non-neighbor %d", from, to)
		}
		c.cur.put(s, m)
	}
	return nil
}

// inboxOrEmpty substitutes a fresh empty map for a round with no incoming
// messages, so protocols never see a nil inbox.
func inboxOrEmpty(in map[graph.NodeID]Msg) map[graph.NodeID]Msg {
	if in == nil {
		return map[graph.NodeID]Msg{}
	}
	return in
}

// outputs gathers the per-node protocol outputs in node order.
func outputs(cores []nodeCore) []any {
	out := make([]any, len(cores))
	for i := range cores {
		out[i] = cores[i].output
	}
	return out
}

// intercept runs the adversary over the round's traffic and enforces its
// declared budgets, returning the buffer holding the delivered traffic. The
// adversary sees the slot-native RoundTraffic view over the flat collection
// buffer and writes its corruptions into the view's reusable overlay; settle
// then diffs the overlay against the buffer — the buffer IS the pre-intercept
// snapshot — so the adversarial path allocates neither a per-round map nor a
// deep clone, and an adversary Setting a slot back to its original bytes is
// accounted exactly like one that never touched it. Ordering matters here:
// the per-round budget is checked on this round's touched set BEFORE it is
// folded into the total edge-round count, and both checks abort only on
// strictly exceeding the budget — an adversary landing exactly on its
// TotalBudget is within its rights and must complete the run with
// CorruptedEdgeRounds equal to the budget. A non-edge injection (possible
// only through the map-compat adapter) aborts after the budget verdict, as
// the legacy map path did.
func (c *runCore) intercept() (*roundBuffer, []graph.Edge, error) {
	if c.cfg.Adversary == nil {
		return c.cur, nil, nil
	}
	rt := c.rc.rt
	rt.begin(c.cur)
	c.cfg.Adversary.Intercept(c.round, rt)
	touched, badInject := rt.settle()
	if c.perRound != nil && len(touched) > c.perRound.PerRoundEdges() {
		return nil, nil, fmt.Errorf("%w: %d edges touched in round %d, budget %d",
			ErrBudgetExceeded, len(touched), c.round, c.perRound.PerRoundEdges())
	}
	c.corrupted += len(touched)
	if c.total != nil && c.corrupted > c.total.TotalEdgeRounds() {
		return nil, nil, fmt.Errorf("%w: %d total edge-rounds, budget %d",
			ErrBudgetExceeded, c.corrupted, c.total.TotalEdgeRounds())
	}
	if badInject != nil {
		return nil, nil, badInject
	}
	rt.apply()
	return c.cur, touched, nil
}

// endRound runs the round's adversary boundary and delivery: intercept with
// budget enforcement, inbox fan-out (allocated lazily into the caller's
// slice, which must arrive nil-filled), observer notification, and the round
// clock tick.
func (c *runCore) endRound(inboxes []map[graph.NodeID]Msg) error {
	buf, corrupted, err := c.intercept()
	if err != nil {
		return err
	}
	buf.sortTouched()
	for _, s := range buf.touched {
		de := buf.layout.dirEdges[s]
		if inboxes[de.To] == nil {
			inboxes[de.To] = make(map[graph.NodeID]Msg)
		}
		inboxes[de.To][de.From] = buf.msgs[s]
	}
	view := &RoundView{buf: buf, corrupted: corrupted}
	for _, o := range c.observers {
		o.RoundDelivered(c.round, view)
	}
	c.round++
	return nil
}

// finish assembles the Result from the internal stats observer.
func (c *runCore) finish(outputs []any) *Result {
	return &Result{Stats: c.stats.Stats(), Outputs: outputs}
}

// runDone notifies every observer that the run ended, successfully or not.
// Engines call it on every exit path, exactly once per run.
func (c *runCore) runDone(err error) {
	st := c.stats.Stats()
	for _, o := range c.observers {
		o.RunDone(st, err)
	}
}

func msgEqual(a, b Msg) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
