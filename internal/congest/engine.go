package congest

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"mobilecongest/internal/graph"
)

// Engine executes a protocol on every node of a configured network. The two
// implementations trade scheduling strategies while sharing all simulation
// semantics (round structure, adversary budget accounting, statistics):
//
//   - GoroutineEngine runs each node in its own goroutine with channel
//     barriers — the original engine, and the one that tolerates protocols
//     doing their own blocking.
//   - StepEngine resumes each node as a coroutine step function on a single
//     scheduler goroutine — no channel handoffs, much less scheduler churn,
//     and measurably faster on simulation-heavy workloads.
//
// Both engines are deterministic given Config.Seed and MUST produce identical
// Results for identical Configs; the cross-engine equivalence tests enforce
// this.
type Engine interface {
	// Name is the registry key ("goroutine", "step").
	Name() string
	// Run executes proto on every node of cfg.Graph.
	Run(cfg Config, proto Protocol) (*Result, error)
}

// engines is the name-keyed engine registry; RegisterEngine extends it.
var (
	enginesMu sync.RWMutex
	engines   = map[string]Engine{
		GoroutineEngine{}.Name(): GoroutineEngine{},
		StepEngine{}.Name():      StepEngine{},
	}
)

// RegisterEngine adds (or replaces) an engine under its Name, making it
// resolvable by EngineByName — and therefore usable from the root package's
// WithEngineName, sweeps, and the CLI, like the topology and adversary
// registries.
func RegisterEngine(e Engine) {
	enginesMu.Lock()
	defer enginesMu.Unlock()
	engines[e.Name()] = e
}

// EngineByName returns the registered engine with the given name. The empty
// name is an error rather than a silent default: callers that want a default
// engine pick one explicitly (congest.Run uses GoroutineEngine, the root
// Scenario API defaults to StepEngine).
func EngineByName(name string) (Engine, error) {
	enginesMu.RLock()
	e, ok := engines[name]
	enginesMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("congest: unknown engine %q (have %v)", name, EngineNames())
	}
	return e, nil
}

// EngineNames lists the registered engine names in sorted order.
func EngineNames() []string {
	enginesMu.RLock()
	defer enginesMu.RUnlock()
	names := make([]string, 0, len(engines))
	for n := range engines {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// nodeCore is the engine-independent per-node state backing Runtime. Engines
// embed it and supply only Exchange.
type nodeCore struct {
	id        graph.NodeID
	neighbors []graph.NodeID
	rng       *rand.Rand
	input     []byte
	output    any
	round     int
	n         int
	shared    any
}

func (s *nodeCore) ID() graph.NodeID          { return s.id }
func (s *nodeCore) N() int                    { return s.n }
func (s *nodeCore) Neighbors() []graph.NodeID { return s.neighbors }
func (s *nodeCore) Round() int                { return s.round }
func (s *nodeCore) Rand() *rand.Rand          { return s.rng }
func (s *nodeCore) Input() []byte             { return s.input }
func (s *nodeCore) SetOutput(v any)           { s.output = v }
func (s *nodeCore) Shared() any               { return s.shared }

// runCore holds the engine-independent run state: validated config, round
// statistics, and the adversary budget accounting. Keeping this logic in one
// place is what guarantees both engines count rounds, messages, and corrupted
// edge-rounds identically.
type runCore struct {
	cfg       Config
	g         *graph.Graph
	maxRounds int
	stats     Stats
	edgeCong  map[graph.Edge]int
}

func newRunCore(cfg Config) (*runCore, error) {
	g := cfg.Graph
	if g == nil || g.N() == 0 {
		return nil, errors.New("congest: nil or empty graph")
	}
	if cfg.Inputs != nil && len(cfg.Inputs) != g.N() {
		return nil, fmt.Errorf("congest: %d inputs for %d nodes", len(cfg.Inputs), g.N())
	}
	maxRounds := cfg.MaxRounds
	if maxRounds <= 0 {
		maxRounds = defaultMaxRounds
	}
	return &runCore{cfg: cfg, g: g, maxRounds: maxRounds, edgeCong: make(map[graph.Edge]int)}, nil
}

// newNodeCores derives the per-node state. Node randomness is seeded from
// cfg.Seed in node-index order, so every engine hands node i the same RNG
// stream.
func (c *runCore) newNodeCores() []nodeCore {
	seeder := rand.New(rand.NewSource(c.cfg.Seed))
	cores := make([]nodeCore, c.g.N())
	for i := range cores {
		var input []byte
		if c.cfg.Inputs != nil {
			input = c.cfg.Inputs[i]
		}
		cores[i] = nodeCore{
			id:        graph.NodeID(i),
			neighbors: c.g.Neighbors(graph.NodeID(i)),
			rng:       rand.New(rand.NewSource(seeder.Int63())),
			input:     input,
			n:         c.g.N(),
			shared:    c.cfg.Shared,
		}
	}
	return cores
}

// collectOutbox validates one node's round outbox and folds it into the
// round's traffic (nil messages send nothing).
func (c *runCore) collectOutbox(from graph.NodeID, out map[graph.NodeID]Msg, traffic Traffic) error {
	for to, m := range out {
		if m == nil {
			continue
		}
		if !c.g.HasEdge(from, to) {
			return fmt.Errorf("congest: node %d sent to non-neighbor %d", from, to)
		}
		traffic[graph.DirEdge{From: from, To: to}] = m
	}
	return nil
}

// inboxOrEmpty substitutes a fresh empty map for a round with no incoming
// messages, so protocols never see a nil inbox.
func inboxOrEmpty(in map[graph.NodeID]Msg) map[graph.NodeID]Msg {
	if in == nil {
		return map[graph.NodeID]Msg{}
	}
	return in
}

// outputs gathers the per-node protocol outputs in node order.
func outputs(cores []nodeCore) []any {
	out := make([]any, len(cores))
	for i := range cores {
		out[i] = cores[i].output
	}
	return out
}

// intercept runs the adversary over the round's traffic and enforces its
// declared budgets. The touched set is diffed against a snapshot taken before
// Intercept, so an adversary returning the very map it was given is accounted
// exactly like one returning a fresh clone. Ordering matters here: the
// per-round budget is checked on this round's touched set BEFORE it is folded
// into Stats.CorruptedEdgeRounds, and both checks abort only on strictly
// exceeding the budget — an adversary landing exactly on its TotalBudget is
// within its rights and must complete the run with CorruptedEdgeRounds equal
// to the budget.
func (c *runCore) intercept(traffic Traffic) (Traffic, error) {
	if c.cfg.Adversary == nil {
		return traffic, nil
	}
	original := traffic.Clone()
	delivered := c.cfg.Adversary.Intercept(c.stats.Rounds, traffic)
	touched := touchedEdges(original, delivered)
	if b, ok := c.cfg.Adversary.(PerRoundBudget); ok && len(touched) > b.PerRoundEdges() {
		return nil, fmt.Errorf("%w: %d edges touched in round %d, budget %d",
			ErrBudgetExceeded, len(touched), c.stats.Rounds, b.PerRoundEdges())
	}
	c.stats.CorruptedEdgeRounds += len(touched)
	if b, ok := c.cfg.Adversary.(TotalBudget); ok && c.stats.CorruptedEdgeRounds > b.TotalEdgeRounds() {
		return nil, fmt.Errorf("%w: %d total edge-rounds, budget %d",
			ErrBudgetExceeded, c.stats.CorruptedEdgeRounds, b.TotalEdgeRounds())
	}
	return delivered, nil
}

// deliver validates the post-adversary traffic, accumulates the round's
// statistics, and sorts messages into per-node inboxes (allocated lazily into
// the caller's slice, which must arrive nil-filled).
func (c *runCore) deliver(delivered Traffic, inboxes []map[graph.NodeID]Msg) error {
	for de, m := range delivered {
		if !c.g.HasEdge(de.From, de.To) {
			return fmt.Errorf("congest: adversary injected on non-edge (%d,%d)", de.From, de.To)
		}
		c.stats.Messages++
		c.stats.Bytes += len(m)
		if len(m) > c.stats.MaxMsgBytes {
			c.stats.MaxMsgBytes = len(m)
		}
		c.edgeCong[de.Undirected()]++
		if inboxes[de.To] == nil {
			inboxes[de.To] = make(map[graph.NodeID]Msg)
		}
		inboxes[de.To][de.From] = m
	}
	return nil
}

// finish folds the congestion map into the stats and assembles the Result.
func (c *runCore) finish(outputs []any) *Result {
	for _, cong := range c.edgeCong {
		if cong > c.stats.MaxEdgeCongestion {
			c.stats.MaxEdgeCongestion = cong
		}
	}
	return &Result{Stats: c.stats, Outputs: outputs}
}

// touchedEdges returns the undirected edges whose traffic differs between
// the original and delivered maps (modified, dropped, or injected).
func touchedEdges(original, delivered Traffic) map[graph.Edge]bool {
	touched := make(map[graph.Edge]bool)
	for de, m := range original {
		d, ok := delivered[de]
		if !ok || !msgEqual(m, d) {
			touched[de.Undirected()] = true
		}
	}
	for de, d := range delivered {
		o, ok := original[de]
		if !ok || !msgEqual(o, d) {
			touched[de.Undirected()] = true
		}
	}
	return touched
}

func msgEqual(a, b Msg) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
