package congest

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"mobilecongest/internal/graph"
)

// The shard engine runs with an explicit multi-shard count so every forEngine
// test exercises real shard boundaries (and the pool) even on one core.
var allEngines = []Engine{GoroutineEngine{}, StepEngine{}, ShardEngine{Shards: 3}}

// forEngine runs a subtest under every registered engine.
func forEngine(t *testing.T, fn func(t *testing.T, e Engine)) {
	t.Helper()
	for _, e := range allEngines {
		t.Run(e.Name(), func(t *testing.T) { fn(t, e) })
	}
}

func TestEngineByName(t *testing.T) {
	for _, name := range []string{"goroutine", "step", "shard"} {
		e, err := EngineByName(name)
		if err != nil || e.Name() != name {
			t.Fatalf("EngineByName(%q) = %v, %v", name, e, err)
		}
	}
	if _, err := EngineByName(""); err == nil {
		t.Fatal("empty engine name accepted; it must error rather than pick a silent default")
	}
	if _, err := EngineByName("warp"); err == nil {
		t.Fatal("unknown engine name accepted")
	}
	if got := EngineNames(); !reflect.DeepEqual(got, []string{"goroutine", "shard", "step"}) {
		t.Fatalf("EngineNames() = %v", got)
	}
}

// renamedEngine is a trivial custom engine for registry tests.
type renamedEngine struct{ GoroutineEngine }

func (renamedEngine) Name() string { return "custom-test" }

func TestRegisterEngine(t *testing.T) {
	RegisterEngine(renamedEngine{})
	t.Cleanup(func() {
		enginesMu.Lock()
		delete(engines, "custom-test")
		enginesMu.Unlock()
	})
	e, err := EngineByName("custom-test")
	if err != nil || e.Name() != "custom-test" {
		t.Fatalf("registered engine not resolvable: %v, %v", e, err)
	}
	res, err := e.Run(Config{Graph: graph.Path(2), Seed: 1}, floodMax(1))
	if err != nil || res.Stats.Rounds != 1 {
		t.Fatalf("custom engine run: %v, %v", res, err)
	}
}

func TestEnginesFloodMaxConverges(t *testing.T) {
	forEngine(t, func(t *testing.T, e Engine) {
		g := graph.Cycle(10)
		res, err := e.Run(Config{Graph: g, Seed: 1}, floodMax(5))
		if err != nil {
			t.Fatal(err)
		}
		for i, o := range res.Outputs {
			if o.(uint64) != 9 {
				t.Fatalf("node %d output %v, want 9", i, o)
			}
		}
		if res.Stats.Rounds != 5 || res.Stats.Messages != 100 {
			t.Fatalf("stats = %+v, want 5 rounds / 100 messages", res.Stats)
		}
	})
}

func TestEnginesRoundLimit(t *testing.T) {
	forEngine(t, func(t *testing.T, e Engine) {
		g := graph.Path(2)
		forever := func(rt Runtime) {
			for {
				rt.Exchange(map[graph.NodeID]Msg{})
			}
		}
		_, err := e.Run(Config{Graph: g, Seed: 1, MaxRounds: 10}, forever)
		if !errors.Is(err, ErrRoundLimit) {
			t.Fatalf("err = %v, want ErrRoundLimit", err)
		}
	})
}

func TestEnginesNonNeighborRejected(t *testing.T) {
	forEngine(t, func(t *testing.T, e Engine) {
		g := graph.Path(3)
		bad := func(rt Runtime) {
			if rt.ID() == 0 {
				rt.Exchange(map[graph.NodeID]Msg{2: U64Msg(1)})
			} else {
				rt.Exchange(map[graph.NodeID]Msg{})
			}
		}
		if _, err := e.Run(Config{Graph: g, Seed: 1}, bad); err == nil {
			t.Fatal("sending to non-neighbor accepted")
		}
	})
}

func TestEnginesEarlyTermination(t *testing.T) {
	forEngine(t, func(t *testing.T, e Engine) {
		g := graph.Clique(3)
		proto := func(rt Runtime) {
			rounds := 3
			if rt.ID() == 0 {
				rounds = 1
			}
			for r := 0; r < rounds; r++ {
				out := make(map[graph.NodeID]Msg)
				for _, v := range rt.Neighbors() {
					out[v] = U64Msg(uint64(rt.ID()))
				}
				rt.Exchange(out)
			}
			rt.SetOutput(true)
		}
		res, err := e.Run(Config{Graph: g, Seed: 1}, proto)
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.Rounds != 3 {
			t.Fatalf("rounds = %d, want 3", res.Stats.Rounds)
		}
	})
}

func TestEnginesBudgetEnforced(t *testing.T) {
	forEngine(t, func(t *testing.T, e Engine) {
		g := graph.Clique(4)
		_, err := e.Run(Config{Graph: g, Seed: 1, Adversary: AdaptTraffic(corruptAll{})}, floodMax(2))
		if !errors.Is(err, ErrBudgetExceeded) {
			t.Fatalf("err = %v, want ErrBudgetExceeded", err)
		}
	})
}

// randProto exercises private node randomness: nodes gossip random words and
// fold everything they hear into an accumulator.
func randProto(rounds int) Protocol {
	return func(rt Runtime) {
		acc := uint64(0)
		for r := 0; r < rounds; r++ {
			out := make(map[graph.NodeID]Msg)
			for _, v := range rt.Neighbors() {
				out[v] = U64Msg(rt.Rand().Uint64())
			}
			in := rt.Exchange(out)
			for _, m := range in {
				acc ^= U64(m)
			}
		}
		rt.SetOutput(acc)
	}
}

// TestEnginesEquivalence checks that both engines produce identical Results
// (stats and outputs) for identical Configs across the in-package protocols.
// The root package carries the larger randomized corpus over real
// adversaries; this is the fast smoke version with stateless adversaries.
func TestEnginesEquivalence(t *testing.T) {
	protos := map[string]Protocol{
		"floodMax": floodMax(6),
		"rand":     randProto(4),
	}
	graphs := map[string]*graph.Graph{
		"cycle10":   graph.Cycle(10),
		"clique7":   graph.Clique(7),
		"petersen":  graph.Petersen(),
		"circulant": graph.Circulant(12, 2),
	}
	advs := map[string]Adversary{
		"none":     nil,
		"injector": AdaptTraffic(injector{edge: graph.DirEdge{From: 0, To: 1}}),
	}
	for pname, proto := range protos {
		for gname, g := range graphs {
			for aname, adv := range advs {
				for seed := int64(0); seed < 3; seed++ {
					cfg := Config{Graph: g, Seed: seed, Adversary: adv}
					want, err1 := (GoroutineEngine{}).Run(cfg, proto)
					got, err2 := (StepEngine{}).Run(cfg, proto)
					if (err1 == nil) != (err2 == nil) {
						t.Fatalf("%s/%s/%s seed %d: errors differ: %v vs %v", pname, gname, aname, seed, err1, err2)
					}
					if err1 != nil {
						continue
					}
					if want.Stats != got.Stats {
						t.Fatalf("%s/%s/%s seed %d: stats differ:\n goroutine %+v\n step      %+v",
							pname, gname, aname, seed, want.Stats, got.Stats)
					}
					if !reflect.DeepEqual(want.Outputs, got.Outputs) {
						t.Fatalf("%s/%s/%s seed %d: outputs differ", pname, gname, aname, seed)
					}
				}
			}
		}
	}
}

// spendExactly is a total-budget adversary that corrupts exactly one fixed
// edge per round for its first `total` rounds and afterwards returns the very
// traffic map it was given, unchanged — the regression shape for the budget
// accounting: landing exactly on TotalEdgeRounds is within budget, and the
// post-exhaustion identity rounds must not be counted as touches.
type spendExactly struct {
	total int
	edge  graph.DirEdge
	spent int
}

func (a *spendExactly) Intercept(round int, tr Traffic) Traffic {
	if a.spent >= a.total {
		return tr
	}
	out := tr.Clone()
	out[a.edge] = U64Msg(uint64(0xBAD0BAD0) + uint64(round))
	a.spent++
	return out
}

func (a *spendExactly) TotalEdgeRounds() int { return a.total }

func TestTotalBudgetExactLandingAllowed(t *testing.T) {
	forEngine(t, func(t *testing.T, e Engine) {
		g := graph.Cycle(6)
		adv := &spendExactly{total: 3, edge: graph.DirEdge{From: 0, To: 1}}
		res, err := e.Run(Config{Graph: g, Seed: 1, Adversary: AdaptTraffic(adv)}, floodMax(8))
		if err != nil {
			t.Fatalf("adversary landing exactly on its budget was aborted: %v", err)
		}
		if res.Stats.CorruptedEdgeRounds != 3 {
			t.Fatalf("CorruptedEdgeRounds = %d, want exactly the budget 3", res.Stats.CorruptedEdgeRounds)
		}
	})
}

func TestTotalBudgetStrictlyExceededAborts(t *testing.T) {
	forEngine(t, func(t *testing.T, e Engine) {
		g := graph.Cycle(6)
		// Declares 2 but spends 3: must abort in the third corrupted round.
		adv := &spendExactly{total: 3}
		adv.edge = graph.DirEdge{From: 0, To: 1}
		declared := &declaredBudget{inner: adv, total: 2}
		_, err := e.Run(Config{Graph: g, Seed: 1, Adversary: AdaptTraffic(declared)}, floodMax(8))
		if !errors.Is(err, ErrBudgetExceeded) {
			t.Fatalf("err = %v, want ErrBudgetExceeded", err)
		}
	})
}

// declaredBudget wraps a map-based adversary, overriding its declared total
// budget.
type declaredBudget struct {
	inner TrafficAdversary
	total int
}

func (d *declaredBudget) Intercept(round int, tr Traffic) Traffic {
	return d.inner.Intercept(round, tr)
}

func (d *declaredBudget) TotalEdgeRounds() int { return d.total }

// TestPerRoundBudgetCheckedBeforeStats pins the accounting order: when a
// per-round violation aborts the run, the violating round's touches must not
// have leaked into a TotalBudget verdict first (an adversary within its total
// budget but over its per-round budget reports the per-round error).
func TestPerRoundBudgetCheckedBeforeStats(t *testing.T) {
	forEngine(t, func(t *testing.T, e Engine) {
		g := graph.Clique(4)
		_, err := e.Run(Config{Graph: g, Seed: 1, Adversary: AdaptTraffic(overPerRound{})}, floodMax(2))
		if !errors.Is(err, ErrBudgetExceeded) {
			t.Fatalf("err = %v, want ErrBudgetExceeded", err)
		}
		if err == nil || !strings.Contains(err.Error(), "touched in round") {
			t.Fatalf("expected the per-round violation to be reported, got %v", err)
		}
	})
}

// overPerRound touches 2 edges per round, declares per-round budget 1 and a
// generous total budget.
type overPerRound struct{}

func (overPerRound) Intercept(_ int, tr Traffic) Traffic {
	out := tr.Clone()
	out[graph.DirEdge{From: 0, To: 1}] = U64Msg(0xAA)
	out[graph.DirEdge{From: 2, To: 3}] = U64Msg(0xBB)
	return out
}
func (overPerRound) PerRoundEdges() int   { return 1 }
func (overPerRound) TotalEdgeRounds() int { return 1000 }

// TestStepEngineWrappedRuntime mirrors TestWrappedRuntime under the step
// engine: compiler-style Runtime wrapping must be engine-agnostic.
func TestStepEngineWrappedRuntime(t *testing.T) {
	g := graph.Path(2)
	proto := func(rt Runtime) {
		w := &WrappedRuntime{Base: rt}
		w.ExchangeFn = func(out map[graph.NodeID]Msg) map[graph.NodeID]Msg {
			in := rt.Exchange(out)
			rt.Exchange(map[graph.NodeID]Msg{})
			return in
		}
		payload := func(v Runtime) {
			out := map[graph.NodeID]Msg{}
			for _, nb := range v.Neighbors() {
				out[nb] = U64Msg(uint64(v.ID()) + 100)
			}
			in := v.Exchange(out)
			var got uint64
			for _, m := range in {
				got = U64(m)
			}
			v.SetOutput(got)
		}
		payload(w)
	}
	res, err := (StepEngine{}).Run(Config{Graph: g, Seed: 1}, proto)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Rounds != 2 {
		t.Fatalf("physical rounds = %d, want 2", res.Stats.Rounds)
	}
	if res.Outputs[0].(uint64) != 101 || res.Outputs[1].(uint64) != 100 {
		t.Fatalf("outputs wrong: %v", res.Outputs)
	}
}
