package congest

import (
	"encoding/binary"
	"math/rand"

	"mobilecongest/internal/graph"
)

// Wire helpers: compact encodings for the word-sized values the compilers
// exchange, plus the Runtime-wrapping shim compilers use to interpose their
// machinery between a payload protocol and the physical network.

// PutU64 appends a uint64 in big-endian order.
func PutU64(dst []byte, v uint64) []byte {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], v)
	return append(dst, buf[:]...)
}

// U64 reads a big-endian uint64 from the front of b; short buffers read as
// zero-padded (corrupted messages must decode to *something*, never panic).
func U64(b []byte) uint64 {
	var buf [8]byte
	copy(buf[:], b)
	return binary.BigEndian.Uint64(buf[:])
}

// PutU32 appends a uint32 in big-endian order.
func PutU32(dst []byte, v uint32) []byte {
	var buf [4]byte
	binary.BigEndian.PutUint32(buf[:], v)
	return append(dst, buf[:]...)
}

// U32 reads a big-endian uint32, zero-padding short buffers.
func U32(b []byte) uint32 {
	var buf [4]byte
	copy(buf[:], b)
	return binary.BigEndian.Uint32(buf[:])
}

// U64Msg encodes a single word as a message.
func U64Msg(v uint64) Msg { return PutU64(nil, v) }

// Words64 splits a message into 8-byte words (zero-padding the tail).
func Words64(m Msg) []uint64 {
	nw := (len(m) + 7) / 8
	out := make([]uint64, nw)
	for i := 0; i < nw; i++ {
		end := (i + 1) * 8
		if end > len(m) {
			end = len(m)
		}
		var buf [8]byte
		copy(buf[:], m[i*8:end])
		out[i] = binary.BigEndian.Uint64(buf[:])
	}
	return out
}

// WrappedRuntime lets a compiler present a virtual network to a payload
// protocol: every Runtime method is forwarded to Base except Exchange, which
// calls ExchangeFn. Compilers implement ExchangeFn as a multi-round
// subprotocol over Base.
type WrappedRuntime struct {
	Base       Runtime
	ExchangeFn func(out map[graph.NodeID]Msg) map[graph.NodeID]Msg
	// ShadowShared, when non-nil, is what the wrapped protocol sees from
	// Shared() — compilers use it to pass the payload's own preprocessing
	// artifact through while keeping their own in the base runtime.
	ShadowShared any
	rounds       int
}

var _ Runtime = (*WrappedRuntime)(nil)

// ID forwards to the base runtime.
func (w *WrappedRuntime) ID() graph.NodeID { return w.Base.ID() }

// N forwards to the base runtime.
func (w *WrappedRuntime) N() int { return w.Base.N() }

// Neighbors forwards to the base runtime.
func (w *WrappedRuntime) Neighbors() []graph.NodeID { return w.Base.Neighbors() }

// Rand forwards to the base runtime.
func (w *WrappedRuntime) Rand() *rand.Rand { return w.Base.Rand() }

// Input forwards to the base runtime.
func (w *WrappedRuntime) Input() []byte { return w.Base.Input() }

// SetOutput forwards to the base runtime.
func (w *WrappedRuntime) SetOutput(v any) { w.Base.SetOutput(v) }

// Shared returns ShadowShared when set, else forwards to the base runtime.
func (w *WrappedRuntime) Shared() any {
	if w.ShadowShared != nil {
		return w.ShadowShared
	}
	return w.Base.Shared()
}

// Round returns the number of simulated (virtual) rounds completed.
func (w *WrappedRuntime) Round() int { return w.rounds }

// Exchange runs the compiler's simulation of one payload round.
func (w *WrappedRuntime) Exchange(out map[graph.NodeID]Msg) map[graph.NodeID]Msg {
	in := w.ExchangeFn(out)
	w.rounds++
	return in
}

// SilentRound performs an Exchange sending nothing — handy for protocols
// that must stay in lock-step while idle.
func SilentRound(rt Runtime) {
	rt.Exchange(map[graph.NodeID]Msg{})
}
