package congest

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"mobilecongest/internal/graph"
)

// Wire helpers: compact encodings for the word-sized values the compilers
// exchange, plus the Runtime-wrapping shim compilers use to interpose their
// machinery between a payload protocol and the physical network.

// PutU64 appends a uint64 in big-endian order.
func PutU64(dst []byte, v uint64) []byte {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], v)
	return append(dst, buf[:]...)
}

// U64 reads a big-endian uint64 from the front of b; short buffers read as
// zero-padded (corrupted messages must decode to *something*, never panic).
func U64(b []byte) uint64 {
	var buf [8]byte
	copy(buf[:], b)
	return binary.BigEndian.Uint64(buf[:])
}

// PutU32 appends a uint32 in big-endian order.
func PutU32(dst []byte, v uint32) []byte {
	var buf [4]byte
	binary.BigEndian.PutUint32(buf[:], v)
	return append(dst, buf[:]...)
}

// U32 reads a big-endian uint32, zero-padding short buffers.
func U32(b []byte) uint32 {
	var buf [4]byte
	copy(buf[:], b)
	return binary.BigEndian.Uint32(buf[:])
}

// U64Msg encodes a single word as a message.
func U64Msg(v uint64) Msg { return PutU64(nil, v) }

// AppendWords64 appends the message's 8-byte words (zero-padding the tail)
// to dst and returns the extended slice. It is the allocation-free form of
// Words64 for hot loops: pass a reusable buffer as dst[:0] and the decode
// reuses its backing array.
func AppendWords64(dst []uint64, m Msg) []uint64 {
	for len(m) >= 8 {
		dst = append(dst, binary.BigEndian.Uint64(m))
		m = m[8:]
	}
	if len(m) > 0 {
		var buf [8]byte
		copy(buf[:], m)
		dst = append(dst, binary.BigEndian.Uint64(buf[:]))
	}
	return dst
}

// Words64 splits a message into 8-byte words (zero-padding the tail). It
// allocates a fresh slice per call; loops should use AppendWords64.
func Words64(m Msg) []uint64 {
	return AppendWords64(make([]uint64, 0, (len(m)+7)/8), m)
}

// WrappedRuntime lets a compiler present a virtual network to a payload
// protocol: every Runtime method is forwarded to Base except the exchange
// barrier, which runs the compiler's simulation of one payload round.
// Compilers implement the simulation as a multi-round subprotocol over Base,
// in whichever form fits: ExchangeFn (the legacy map boundary) or
// ExchangePortsFn (the port-native boundary). Only one needs to be set —
// WrappedRuntime implements both Exchange and ExchangePorts and adapts each
// onto whichever function the compiler provided, so map payloads run over
// port compilers and vice versa.
type WrappedRuntime struct {
	Base       Runtime
	ExchangeFn func(out map[graph.NodeID]Msg) map[graph.NodeID]Msg
	// ExchangePortsFn simulates one payload round on the port boundary:
	// out[p] is the payload's message for port p (the p-th neighbour in
	// ascending order), and the returned slice is the payload's port inbox.
	// Implementations own the returned slice and may reuse it per round.
	ExchangePortsFn func(out []Msg) []Msg
	// ShadowShared, when non-nil, is what the wrapped protocol sees from
	// Shared() — compilers use it to pass the payload's own preprocessing
	// artifact through while keeping their own in the base runtime.
	ShadowShared any
	// InputFn, when non-nil, overrides what the wrapped protocol sees from
	// Input() — the input-side sibling of ShadowShared, used by wrappers
	// that carry their own canonical per-node inputs (the root package's
	// protocol registry entries).
	InputFn func() []byte
	rounds  int
	outBuf  []Msg
	inBuf   []Msg
}

var _ PortRuntime = (*WrappedRuntime)(nil)

// ID forwards to the base runtime.
func (w *WrappedRuntime) ID() graph.NodeID { return w.Base.ID() }

// N forwards to the base runtime.
func (w *WrappedRuntime) N() int { return w.Base.N() }

// Neighbors forwards to the base runtime.
func (w *WrappedRuntime) Neighbors() []graph.NodeID { return w.Base.Neighbors() }

// Rand forwards to the base runtime.
func (w *WrappedRuntime) Rand() *rand.Rand { return w.Base.Rand() }

// Input returns InputFn's value when set, else forwards to the base runtime.
func (w *WrappedRuntime) Input() []byte {
	if w.InputFn != nil {
		return w.InputFn()
	}
	return w.Base.Input()
}

// SetOutput forwards to the base runtime.
func (w *WrappedRuntime) SetOutput(v any) { w.Base.SetOutput(v) }

// Shared returns ShadowShared when set, else forwards to the base runtime.
func (w *WrappedRuntime) Shared() any {
	if w.ShadowShared != nil {
		return w.ShadowShared
	}
	return w.Base.Shared()
}

// Round returns the number of simulated (virtual) rounds completed.
func (w *WrappedRuntime) Round() int { return w.rounds }

// Degree returns the number of ports (the base runtime's degree).
func (w *WrappedRuntime) Degree() int { return len(w.Base.Neighbors()) }

// Neighbor returns the neighbour on port p.
func (w *WrappedRuntime) Neighbor(p int) graph.NodeID { return w.Base.Neighbors()[p] }

// Port returns the port of neighbour v, or -1.
func (w *WrappedRuntime) Port(v graph.NodeID) int {
	return portIndex(w.Base.Neighbors(), v)
}

// OutBuf returns the wrapper's reusable port-indexed outbox.
func (w *WrappedRuntime) OutBuf() []Msg {
	if w.outBuf == nil {
		w.outBuf = make([]Msg, w.Degree())
	}
	return w.outBuf
}

// Exchange runs the compiler's simulation of one payload round on the map
// boundary, adapting onto ExchangePortsFn when only that is set.
func (w *WrappedRuntime) Exchange(out map[graph.NodeID]Msg) map[graph.NodeID]Msg {
	if w.ExchangeFn != nil {
		in := w.ExchangeFn(out)
		w.rounds++
		return in
	}
	buf := w.OutBuf()
	clear(buf) // a map Exchange sends exactly the map's entries
	badTo, hasBad := graph.NodeID(0), false
	for to, m := range out {
		if m == nil {
			continue
		}
		p := w.Port(to)
		if p < 0 {
			// Fold to the smallest bad recipient so the failure below names
			// the same node regardless of map iteration order.
			if !hasBad || to < badTo {
				badTo, hasBad = to, true
			}
			continue
		}
		buf[p] = m
	}
	if hasBad {
		// Preserve the legacy failure mode: forwarding the bad outbox to
		// the base runtime aborts the run with the canonical
		// "sent to non-neighbor" error (it never returns on the engines'
		// runtimes; panic as a last resort for exotic bases).
		clear(buf)
		w.Base.Exchange(out)
		panic(fmt.Sprintf("congest: wrapped exchange to non-neighbor %d", badTo))
	}
	return portsToMap(w.Base.Neighbors(), w.ExchangePorts(buf))
}

// ExchangePorts runs the compiler's simulation of one payload round on the
// port boundary, adapting onto the map ExchangeFn when only that is set.
func (w *WrappedRuntime) ExchangePorts(out []Msg) []Msg {
	if w.ExchangePortsFn != nil {
		in := w.ExchangePortsFn(out)
		clear(out) // uphold the consumed-outbox contract for reusable bufs
		w.rounds++
		return in
	}
	nbs := w.Base.Neighbors()
	m := make(map[graph.NodeID]Msg, len(out))
	for p, msg := range out {
		if msg != nil {
			m[nbs[p]] = msg
			out[p] = nil
		}
	}
	inm := w.ExchangeFn(m)
	w.rounds++
	if w.inBuf == nil {
		w.inBuf = make([]Msg, len(nbs))
	}
	for p, v := range nbs {
		w.inBuf[p] = inm[v]
	}
	return w.inBuf
}

// SilentRound performs an Exchange sending nothing — handy for protocols
// that must stay in lock-step while idle.
func SilentRound(rt Runtime) {
	rt.Exchange(map[graph.NodeID]Msg{})
}
