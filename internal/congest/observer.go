package congest

import (
	"encoding/json"
	"io"
	"iter"

	"mobilecongest/internal/graph"
)

// The observer pipeline: run-level measurement is no longer a hard-coded
// fold inside the engine. Anything that wants to watch a run — statistics,
// traffic traces, congestion histograms, corruption logs, streaming JSONL —
// implements Observer and is attached through Config.Observers (or the root
// package's WithObserver). The engine's own Stats is itself just a
// StatsObserver it installs internally.

// Observer receives a run's round lifecycle events. Implementations must not
// mutate anything they are handed; both engines invoke observers at the same
// points with identical views, so observer output is engine-independent (the
// cross-engine equivalence tests assert this for traces).
type Observer interface {
	// RoundStart fires before the engine collects outboxes for the round.
	// When every node terminates during that collection the round is
	// abandoned, so a run's final RoundStart may have no matching
	// RoundDelivered.
	RoundStart(round int)
	// RoundDelivered fires after the adversary boundary and inbox fan-out,
	// with the round's delivered (post-adversary) traffic. The view is only
	// valid during the call; retain copies, not the view.
	RoundDelivered(round int, view *RoundView)
	// RunDone fires exactly once per started run with the final statistics
	// and the run's error (nil on success). A run that fails config
	// validation never starts, so its observers see no events at all.
	RunDone(stats Stats, err error)
}

// RoundView is the read-only view of one round's delivered traffic handed to
// observers. Iteration is in canonical slot order (ascending sender, then
// receiver), identical across engines.
type RoundView struct {
	buf       *roundBuffer
	corrupted []graph.Edge // sorted undirected edges the adversary touched
}

// Graph returns the run's topology.
func (v *RoundView) Graph() *graph.Graph { return v.buf.layout.g }

// Len returns the number of delivered directed messages this round.
func (v *RoundView) Len() int { return v.buf.len() }

// Corrupted returns the undirected edges the adversary touched this round
// (modified, dropped, or injected), sorted; empty on fault-free rounds.
func (v *RoundView) Corrupted() []graph.Edge { return v.corrupted }

// All iterates the delivered messages in canonical order.
func (v *RoundView) All() iter.Seq2[graph.DirEdge, Msg] {
	v.buf.sortTouched()
	return func(yield func(graph.DirEdge, Msg) bool) {
		for _, s := range v.buf.touched {
			if !yield(v.buf.layout.dirEdges[s], v.buf.get(s)) {
				return
			}
		}
	}
}

// Traffic returns the round's delivered traffic as the stable map view,
// materialized lazily and cached for the round (so several observers share
// one materialization). Callers must not mutate it.
func (v *RoundView) Traffic() Traffic { return v.buf.materialize() }

// StatsObserver accumulates the run's communication statistics — the Stats a
// Result carries. Every run installs one internally (stats collection is
// always on); attach another only if you want an independent copy.
type StatsObserver struct {
	stats    Stats
	edgeCong []int32 // per undirected edge: delivered directed messages
}

// NewStatsObserver returns an empty statistics accumulator.
func NewStatsObserver() *StatsObserver { return &StatsObserver{} }

// Reset clears the accumulated statistics so the observer can serve a new
// run; the per-edge congestion scratch is kept (zeroed in place) since its
// size is bound to the graph, which a reusing RunContext keeps stable.
func (o *StatsObserver) Reset() {
	o.stats = Stats{}
	for i := range o.edgeCong {
		o.edgeCong[i] = 0
	}
}

// RoundStart implements Observer.
func (o *StatsObserver) RoundStart(int) {}

// RoundDelivered implements Observer.
func (o *StatsObserver) RoundDelivered(_ int, view *RoundView) {
	b := view.buf
	if o.edgeCong == nil {
		//lint:ignore hotalloc one-time lazy init, amortized over the run
		o.edgeCong = make([]int32, b.layout.g.M())
	}
	o.stats.Rounds++
	for _, s := range b.touched {
		m := b.get(s)
		o.stats.Messages++
		o.stats.Bytes += len(m)
		if len(m) > o.stats.MaxMsgBytes {
			o.stats.MaxMsgBytes = len(m)
		}
		o.edgeCong[b.layout.undir[s]]++
	}
	o.stats.CorruptedEdgeRounds += len(view.corrupted)
}

// RunDone implements Observer.
func (o *StatsObserver) RunDone(Stats, error) {}

// Stats returns the statistics accumulated so far, with the per-edge
// congestion counts folded into MaxEdgeCongestion.
func (o *StatsObserver) Stats() Stats {
	st := o.stats
	for _, c := range o.edgeCong {
		if int(c) > st.MaxEdgeCongestion {
			st.MaxEdgeCongestion = int(c)
		}
	}
	return st
}

// TraceMsg is one delivered directed message in a captured trace. Data
// marshals as base64 in JSON.
type TraceMsg struct {
	From graph.NodeID `json:"from"`
	To   graph.NodeID `json:"to"`
	Data Msg          `json:"data,omitempty"`
}

// RoundTrace is one round of a captured trace: the delivered messages in
// canonical order plus the undirected edges the adversary touched.
type RoundTrace struct {
	Round     int               `json:"round"`
	Msgs      []TraceMsg        `json:"msgs"`
	Corrupted [][2]graph.NodeID `json:"corrupted,omitempty"`
}

// TraceObserver records every round's delivered traffic. Payload bytes are
// appended to a run-long arena slab instead of cloned per message, so the
// allocation cost is a few amortized slab growths rather than one alloc per
// delivered message. (Subslices handed out before a growth keep pointing
// into the previous slab generation, which stays valid and immutable.)
type TraceObserver struct {
	rounds []RoundTrace
	arena  []byte
}

// NewTraceObserver returns an empty trace recorder.
func NewTraceObserver() *TraceObserver { return &TraceObserver{} }

// RoundStart implements Observer.
func (o *TraceObserver) RoundStart(int) {}

// RoundDelivered implements Observer.
//
//mobilevet:coldpath tracing observer; attaching it opts into per-round capture allocations
func (o *TraceObserver) RoundDelivered(round int, view *RoundView) {
	rt := RoundTrace{
		Round:     round,
		Msgs:      make([]TraceMsg, 0, view.Len()),
		Corrupted: edgePairs(view.corrupted),
	}
	for de, m := range view.All() {
		start := len(o.arena)
		o.arena = append(o.arena, m...)
		// Full slice expression: later arena appends must reallocate rather
		// than scribble past this message's bytes.
		rt.Msgs = append(rt.Msgs, TraceMsg{From: de.From, To: de.To, Data: Msg(o.arena[start:len(o.arena):len(o.arena)])})
	}
	o.rounds = append(o.rounds, rt)
}

// RunDone implements Observer.
func (o *TraceObserver) RunDone(Stats, error) {}

// Rounds returns the captured trace, one entry per delivered round.
func (o *TraceObserver) Rounds() []RoundTrace { return o.rounds }

func edgePairs(edges []graph.Edge) [][2]graph.NodeID {
	if len(edges) == 0 {
		return nil
	}
	out := make([][2]graph.NodeID, len(edges))
	for i, e := range edges {
		out[i] = [2]graph.NodeID{e.U, e.V}
	}
	return out
}

// CongestionObserver builds a per-edge congestion histogram — for every
// undirected edge, how many directed messages were delivered over it during
// the run (the per-edge breakdown behind Stats.MaxEdgeCongestion) — plus a
// per-round bandwidth record: how many bits each delivered message used
// against the CONGEST B bits/edge/round budget (max, mean, and the count
// exceeding BudgetBits).
type CongestionObserver struct {
	// BudgetBits is the bits/edge/round budget the bandwidth records count
	// violations against; 0 counts none. It is observational only — runs
	// that should abort on violation set Config.Bandwidth (the root
	// package's WithBandwidth), which enforces the budget at collection, so
	// an enforcing run never delivers a violating round for this observer to
	// see. Set BudgetBits to measure a hypothetical budget instead.
	BudgetBits int

	g      *graph.Graph
	counts []int
	bw     []BandwidthRound
}

// BandwidthRound is one round's delivered-bandwidth record.
type BandwidthRound struct {
	Round int `json:"round"`
	// Messages is the number of delivered directed messages.
	Messages int `json:"messages"`
	// MaxBits is the largest delivered message in bits (8·bytes).
	MaxBits int `json:"max_bits"`
	// MeanBits is the mean delivered message size in bits; 0 on a silent
	// round.
	MeanBits float64 `json:"mean_bits"`
	// Violations counts delivered messages strictly exceeding BudgetBits
	// (always 0 when BudgetBits is 0).
	Violations int `json:"violations"`
}

// NewCongestionObserver returns an empty congestion histogram.
func NewCongestionObserver() *CongestionObserver { return &CongestionObserver{} }

// RoundStart implements Observer.
func (o *CongestionObserver) RoundStart(int) {}

// RoundDelivered implements Observer.
//
//mobilevet:coldpath diagnostics observer; attaching it opts into per-round record allocations
func (o *CongestionObserver) RoundDelivered(round int, view *RoundView) {
	b := view.buf
	if o.counts == nil {
		o.g = b.layout.g
		o.counts = make([]int, o.g.M())
	}
	rec := BandwidthRound{Round: round, Messages: len(b.touched)}
	sumBits := 0
	for _, s := range b.touched {
		o.counts[b.layout.undir[s]]++
		bits := len(b.get(s)) * 8
		sumBits += bits
		if bits > rec.MaxBits {
			rec.MaxBits = bits
		}
		if o.BudgetBits > 0 && bits > o.BudgetBits {
			rec.Violations++
		}
	}
	if rec.Messages > 0 {
		rec.MeanBits = float64(sumBits) / float64(rec.Messages)
	}
	o.bw = append(o.bw, rec)
}

// RunDone implements Observer.
func (o *CongestionObserver) RunDone(Stats, error) {}

// PerEdge returns the delivered-message count per undirected edge (every
// graph edge is present, silent ones with 0). Nil before any round.
func (o *CongestionObserver) PerEdge() map[graph.Edge]int {
	if o.counts == nil {
		return nil
	}
	out := make(map[graph.Edge]int, len(o.counts))
	for i, e := range o.g.Edges() {
		out[e] = o.counts[i]
	}
	return out
}

// Bandwidth returns the per-round delivered-bandwidth records, in round
// order. Nil before any round.
func (o *CongestionObserver) Bandwidth() []BandwidthRound { return o.bw }

// Histogram returns, for each congestion value, how many edges carried
// exactly that many directed messages. Nil before any round.
func (o *CongestionObserver) Histogram() map[int]int {
	if o.counts == nil {
		return nil
	}
	out := make(map[int]int)
	for _, c := range o.counts {
		out[c]++
	}
	return out
}

// CorruptionEvent records one round's adversary touches.
type CorruptionEvent struct {
	Round int          `json:"round"`
	Edges []graph.Edge `json:"edges"`
}

// CorruptionLog records which undirected edges the adversary touched in each
// round — the run-level corruption transcript the budget accounting is
// summed from. Fault-free rounds produce no event.
type CorruptionLog struct {
	events []CorruptionEvent
	total  int
}

// NewCorruptionLog returns an empty corruption log.
func NewCorruptionLog() *CorruptionLog { return &CorruptionLog{} }

// RoundStart implements Observer.
func (o *CorruptionLog) RoundStart(int) {}

// RoundDelivered implements Observer.
//
//mobilevet:coldpath allocates only on adversarial rounds, which the log exists to record
func (o *CorruptionLog) RoundDelivered(round int, view *RoundView) {
	if len(view.corrupted) == 0 {
		return
	}
	edges := make([]graph.Edge, len(view.corrupted))
	copy(edges, view.corrupted)
	o.events = append(o.events, CorruptionEvent{Round: round, Edges: edges})
	o.total += len(edges)
}

// RunDone implements Observer.
func (o *CorruptionLog) RunDone(Stats, error) {}

// Events returns the per-round corruption events, in round order.
func (o *CorruptionLog) Events() []CorruptionEvent { return o.events }

// Total returns the total corrupted edge-rounds logged — equal to the run's
// Stats.CorruptedEdgeRounds.
func (o *CorruptionLog) Total() int { return o.total }

// JSONLTrace streams one JSON line per delivered round to a writer as the
// run executes, plus a final summary line on RunDone — the cmd/mobilesim
// -trace format. Each line is emitted in a single Write, so concurrent runs
// (e.g. sweep cells) may share a writer that serializes Write calls.
type JSONLTrace struct {
	enc   *json.Encoder
	label string
	err   error
}

// NewJSONLTrace returns an observer streaming to w; label (optional) tags
// every line with the run it belongs to.
func NewJSONLTrace(w io.Writer, label string) *JSONLTrace {
	return &JSONLTrace{enc: json.NewEncoder(w), label: label}
}

type jsonlRound struct {
	Scenario string `json:"scenario,omitempty"`
	RoundTrace
}

type jsonlDone struct {
	Scenario            string `json:"scenario,omitempty"`
	Done                bool   `json:"done"`
	Rounds              int    `json:"rounds"`
	Messages            int    `json:"messages"`
	Bytes               int    `json:"bytes"`
	CorruptedEdgeRounds int    `json:"corrupted_edge_rounds"`
	Error               string `json:"error,omitempty"`
}

// RoundStart implements Observer.
func (o *JSONLTrace) RoundStart(int) {}

// RoundDelivered implements Observer.
//
//mobilevet:coldpath streaming trace observer; JSON encoding allocates by nature
func (o *JSONLTrace) RoundDelivered(round int, view *RoundView) {
	line := jsonlRound{Scenario: o.label, RoundTrace: RoundTrace{
		Round:     round,
		Msgs:      make([]TraceMsg, 0, view.Len()),
		Corrupted: edgePairs(view.corrupted),
	}}
	for de, m := range view.All() {
		// No copy: the message is encoded before the buffer slot is reused.
		line.Msgs = append(line.Msgs, TraceMsg{From: de.From, To: de.To, Data: m})
	}
	o.encode(line)
}

// RunDone implements Observer.
func (o *JSONLTrace) RunDone(stats Stats, err error) {
	line := jsonlDone{
		Scenario:            o.label,
		Done:                true,
		Rounds:              stats.Rounds,
		Messages:            stats.Messages,
		Bytes:               stats.Bytes,
		CorruptedEdgeRounds: stats.CorruptedEdgeRounds,
	}
	if err != nil {
		line.Error = err.Error()
	}
	o.encode(line)
}

func (o *JSONLTrace) encode(v any) {
	if err := o.enc.Encode(v); err != nil && o.err == nil {
		o.err = err
	}
}

// Err returns the first write/encode error, if any.
func (o *JSONLTrace) Err() error { return o.err }
