// Package congest implements the synchronous CONGEST simulator in the
// adversarial communication model of the paper (Section 1.4). Each node runs
// its protocol as straight-line Go code in its own goroutine and blocks in
// Exchange, which acts as the end-of-round barrier; a coordinator gathers the
// round's directed traffic, lets the adversary intercept it within an
// engine-enforced edge budget, and releases the barrier.
//
// The model is KT1: every node knows n, its own ID, and the IDs of its
// neighbours. Nodes hold private randomness the adversary cannot see.
package congest

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"mobilecongest/internal/graph"
)

// Msg is the payload crossing one directed edge in one round. The engine
// records message sizes so experiments can normalize round counts to
// B = O(log n)-bit units; it does not hard-cap sizes because the adversary
// model corrupts whole edge-rounds regardless of size.
type Msg []byte

// Clone returns a copy of the message (nil stays nil).
func (m Msg) Clone() Msg {
	if m == nil {
		return nil
	}
	c := make(Msg, len(m))
	copy(c, m)
	return c
}

// Traffic is the set of directed messages exchanged in a single round.
type Traffic map[graph.DirEdge]Msg

// Clone deep-copies a traffic map.
func (t Traffic) Clone() Traffic {
	c := make(Traffic, len(t))
	for k, v := range t {
		c[k] = v.Clone()
	}
	return c
}

// SortedEdges returns the directed edges of t in deterministic order, so
// adversaries and tests can iterate reproducibly.
func (t Traffic) SortedEdges() []graph.DirEdge {
	edges := make([]graph.DirEdge, 0, len(t))
	for e := range t {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		return edges[i].To < edges[j].To
	})
	return edges
}

// Adversary intercepts each round's traffic. Implementations may observe
// (eavesdroppers) or modify/inject (byzantine). The engine enforces the edge
// budget declared through PerRoundBudget or TotalBudget.
type Adversary interface {
	// Intercept receives the round number and the round's traffic and
	// returns the traffic to deliver. The input map must not be mutated;
	// return a modified clone (or the same map if unchanged).
	Intercept(round int, tr Traffic) Traffic
}

// PerRoundBudget is implemented by f-mobile (and f-static) adversaries: at
// most f undirected edges may differ between intercepted and original
// traffic in any round.
type PerRoundBudget interface {
	PerRoundEdges() int
}

// TotalBudget is implemented by round-error-rate adversaries (Section 4):
// the total number of corrupted undirected edge-rounds across the whole run
// is bounded.
type TotalBudget interface {
	TotalEdgeRounds() int
}

// Protocol is the per-node code. It runs in the node's goroutine and
// communicates only through rt.Exchange.
type Protocol func(rt Runtime)

// Runtime is the interface protocol code programs against. Compilers wrap a
// Runtime to interpose their simulation machinery between the payload
// protocol and the physical network.
type Runtime interface {
	// ID returns this node's identifier.
	ID() graph.NodeID
	// N returns the number of nodes in the network.
	N() int
	// Neighbors returns this node's neighbour IDs in ascending order (KT1).
	Neighbors() []graph.NodeID
	// Exchange sends out[v] to each neighbour v (missing keys send nothing)
	// and returns the messages received this round keyed by sender. It is
	// the synchronous round barrier.
	Exchange(out map[graph.NodeID]Msg) map[graph.NodeID]Msg
	// Round returns the number of completed Exchange calls.
	Round() int
	// Rand returns this node's private randomness (hidden from the
	// adversary).
	Rand() *rand.Rand
	// Input returns this node's protocol input (may be nil).
	Input() []byte
	// SetOutput records this node's protocol output.
	SetOutput(v any)
	// Shared returns the trusted preprocessing artifact distributed to all
	// nodes before the run (tree packings, cycle covers); nil when the run
	// has none. Protocols honouring pure KT1 must not use it.
	Shared() any
}

// Config parameterizes a simulation run.
type Config struct {
	// Graph is the communication topology.
	Graph *graph.Graph
	// Seed derives all node randomness; runs are deterministic given Seed.
	Seed int64
	// MaxRounds aborts the run when exceeded (0 means a generous default).
	MaxRounds int
	// Adversary intercepts traffic; nil means fault-free.
	Adversary Adversary
	// Inputs holds per-node protocol inputs (nil or length N).
	Inputs [][]byte
	// Shared is the trusted preprocessing artifact visible to all nodes.
	Shared any
}

// Stats aggregates the run's communication measures.
type Stats struct {
	// Rounds is the number of executed rounds.
	Rounds int
	// Messages is the total number of directed messages delivered.
	Messages int
	// Bytes is the total payload volume.
	Bytes int
	// MaxMsgBytes is the largest single message.
	MaxMsgBytes int
	// MaxEdgeCongestion is the maximum number of rounds any undirected edge
	// carried at least one message.
	MaxEdgeCongestion int
	// CorruptedEdgeRounds counts undirected edge-rounds the adversary
	// touched.
	CorruptedEdgeRounds int
}

// Result is the outcome of a run.
type Result struct {
	Stats   Stats
	Outputs []any
}

// ErrRoundLimit is returned when the protocol exceeds MaxRounds.
var ErrRoundLimit = errors.New("congest: round limit exceeded")

// ErrBudgetExceeded is returned when the adversary touches more edges than
// its declared budget permits.
var ErrBudgetExceeded = errors.New("congest: adversary exceeded its edge budget")

const defaultMaxRounds = 1 << 20

// abortSignal unwinds node goroutines when the engine aborts a run.
type abortSignal struct{}

type nodeState struct {
	id        graph.NodeID
	neighbors []graph.NodeID
	rng       *rand.Rand
	input     []byte
	output    any
	round     int
	n         int
	shared    any

	outCh  chan map[graph.NodeID]Msg
	inCh   chan map[graph.NodeID]Msg
	doneCh chan struct{}
	abort  chan struct{}
}

var _ Runtime = (*nodeState)(nil)

func (s *nodeState) ID() graph.NodeID          { return s.id }
func (s *nodeState) N() int                    { return s.n }
func (s *nodeState) Neighbors() []graph.NodeID { return s.neighbors }
func (s *nodeState) Round() int                { return s.round }
func (s *nodeState) Rand() *rand.Rand          { return s.rng }
func (s *nodeState) Input() []byte             { return s.input }
func (s *nodeState) SetOutput(v any)           { s.output = v }
func (s *nodeState) Shared() any               { return s.shared }

func (s *nodeState) Exchange(out map[graph.NodeID]Msg) map[graph.NodeID]Msg {
	select {
	case s.outCh <- out:
	case <-s.abort:
		panic(abortSignal{})
	}
	select {
	case in := <-s.inCh:
		s.round++
		return in
	case <-s.abort:
		panic(abortSignal{})
	}
}

// Run executes proto on every node of cfg.Graph and returns outputs and
// communication statistics.
func Run(cfg Config, proto Protocol) (*Result, error) {
	g := cfg.Graph
	if g == nil || g.N() == 0 {
		return nil, errors.New("congest: nil or empty graph")
	}
	if cfg.Inputs != nil && len(cfg.Inputs) != g.N() {
		return nil, fmt.Errorf("congest: %d inputs for %d nodes", len(cfg.Inputs), g.N())
	}
	maxRounds := cfg.MaxRounds
	if maxRounds <= 0 {
		maxRounds = defaultMaxRounds
	}

	seeder := rand.New(rand.NewSource(cfg.Seed))
	abort := make(chan struct{})
	nodes := make([]*nodeState, g.N())
	for i := range nodes {
		var input []byte
		if cfg.Inputs != nil {
			input = cfg.Inputs[i]
		}
		nodes[i] = &nodeState{
			id:        graph.NodeID(i),
			neighbors: g.Neighbors(graph.NodeID(i)),
			rng:       rand.New(rand.NewSource(seeder.Int63())),
			input:     input,
			n:         g.N(),
			shared:    cfg.Shared,
			outCh:     make(chan map[graph.NodeID]Msg),
			inCh:      make(chan map[graph.NodeID]Msg),
			doneCh:    make(chan struct{}),
			abort:     abort,
		}
	}
	for _, s := range nodes {
		go func(s *nodeState) {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(abortSignal); !ok {
						panic(r)
					}
				}
				close(s.doneCh)
			}()
			proto(s)
		}(s)
	}

	var stats Stats
	edgeCong := make(map[graph.Edge]int)
	active := make([]bool, g.N())
	nActive := g.N()
	for i := range active {
		active[i] = true
	}

	abortAll := func() {
		close(abort)
		for _, s := range nodes {
			<-s.doneCh
		}
	}

	for nActive > 0 {
		if stats.Rounds >= maxRounds {
			abortAll()
			return nil, fmt.Errorf("%w (limit %d)", ErrRoundLimit, maxRounds)
		}
		// Collect the round's outboxes; a node either exchanges or
		// terminates this round.
		traffic := make(Traffic)
		for i, s := range nodes {
			if !active[i] {
				continue
			}
			select {
			case out := <-s.outCh:
				for to, m := range out {
					if m == nil {
						continue
					}
					if !g.HasEdge(s.id, to) {
						abortAll()
						return nil, fmt.Errorf("congest: node %d sent to non-neighbor %d", s.id, to)
					}
					traffic[graph.DirEdge{From: s.id, To: to}] = m
				}
			case <-s.doneCh:
				active[i] = false
				nActive--
			}
		}
		if nActive == 0 {
			break
		}

		delivered := traffic
		if cfg.Adversary != nil {
			original := traffic.Clone()
			delivered = cfg.Adversary.Intercept(stats.Rounds, traffic)
			touched := touchedEdges(original, delivered)
			stats.CorruptedEdgeRounds += len(touched)
			if b, ok := cfg.Adversary.(PerRoundBudget); ok && len(touched) > b.PerRoundEdges() {
				abortAll()
				return nil, fmt.Errorf("%w: %d edges touched in round %d, budget %d",
					ErrBudgetExceeded, len(touched), stats.Rounds, b.PerRoundEdges())
			}
			if b, ok := cfg.Adversary.(TotalBudget); ok && stats.CorruptedEdgeRounds > b.TotalEdgeRounds() {
				abortAll()
				return nil, fmt.Errorf("%w: %d total edge-rounds, budget %d",
					ErrBudgetExceeded, stats.CorruptedEdgeRounds, b.TotalEdgeRounds())
			}
		}

		// Deliver inboxes.
		inboxes := make([]map[graph.NodeID]Msg, g.N())
		for de, m := range delivered {
			if !g.HasEdge(de.From, de.To) {
				abortAll()
				return nil, fmt.Errorf("congest: adversary injected on non-edge (%d,%d)", de.From, de.To)
			}
			stats.Messages++
			stats.Bytes += len(m)
			if len(m) > stats.MaxMsgBytes {
				stats.MaxMsgBytes = len(m)
			}
			edgeCong[de.Undirected()]++
			if inboxes[de.To] == nil {
				inboxes[de.To] = make(map[graph.NodeID]Msg)
			}
			inboxes[de.To][de.From] = m
		}
		for i, s := range nodes {
			if !active[i] {
				continue
			}
			in := inboxes[i]
			if in == nil {
				in = map[graph.NodeID]Msg{}
			}
			s.inCh <- in
		}
		stats.Rounds++
	}

	for _, c := range edgeCong {
		if c > stats.MaxEdgeCongestion {
			stats.MaxEdgeCongestion = c
		}
	}
	outputs := make([]any, g.N())
	for i, s := range nodes {
		outputs[i] = s.output
	}
	return &Result{Stats: stats, Outputs: outputs}, nil
}

// touchedEdges returns the undirected edges whose traffic differs between
// the original and delivered maps (modified, dropped, or injected).
func touchedEdges(original, delivered Traffic) map[graph.Edge]bool {
	touched := make(map[graph.Edge]bool)
	for de, m := range original {
		d, ok := delivered[de]
		if !ok || !msgEqual(m, d) {
			touched[de.Undirected()] = true
		}
	}
	for de, d := range delivered {
		o, ok := original[de]
		if !ok || !msgEqual(o, d) {
			touched[de.Undirected()] = true
		}
	}
	return touched
}

func msgEqual(a, b Msg) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
