// Package congest implements the synchronous CONGEST simulator in the
// adversarial communication model of the paper (Section 1.4). Each node runs
// its protocol as straight-line Go code and blocks in Exchange, which acts as
// the end-of-round barrier; a coordinator gathers the round's directed
// traffic, lets the adversary intercept it within an engine-enforced edge
// budget, and releases the barrier.
//
// Execution is pluggable via the Engine interface: GoroutineEngine runs one
// goroutine per node with channel barriers, StepEngine resumes nodes as
// coroutine step functions on a single scheduler goroutine. Both are
// deterministic given Config.Seed and produce identical Results.
//
// Internally a run moves traffic through a flat, edge-indexed round buffer
// (see edgeLayout) whose payloads live in packed per-round byte arenas: each
// slot carries an 8-byte (chunk, offset, length) reference into the arena
// instead of an independently allocated []byte (see arena.go), so large-n
// rounds cost a handful of amortized arena appends rather than one heap
// object per message. The pipeline is slot-native end to end. On the node
// side, protocols program against PortRuntime: a node's ports are its
// neighbours in ascending order, and ExchangePorts moves the round through
// reusable per-node []Msg slices resolved out of the run's round arenas —
// the fault-free hot path allocates no per-round maps or slices at all. The map
// Exchange survives as a compat wrapper over ports (outbox folded up front,
// inbox map materialized lazily per call). On the adversary side the
// boundary is likewise slot-native: adversaries read and mutate the round
// through a RoundTraffic view indexed by edge slot, and the map form of a
// round's traffic survives only as a legacy view, materialized lazily when
// a map-based TrafficAdversary (via AdaptTraffic) or an observer asks for
// it. Run-level measurement is pluggable via the Observer pipeline
// (Config.Observers); the engine's own statistics are a StatsObserver it
// installs itself. Repeated runs over the same graph can reuse a RunContext
// (see ContextRunner), amortizing the layout, round buffers, port slabs,
// node cores, and RNG state across runs.
//
// The model is KT1: every node knows n, its own ID, and the IDs of its
// neighbours. Nodes hold private randomness the adversary cannot see.
package congest

import (
	"errors"
	"math/rand"
	"sort"

	"mobilecongest/internal/graph"
)

// Msg is the payload crossing one directed edge in one round. The engine
// records message sizes so experiments can normalize round counts to
// B = O(log n)-bit units; sizes are unrestricted by default because the
// adversary model corrupts whole edge-rounds regardless of size, but a run
// can opt into enforcing the CONGEST budget with Config.Bandwidth.
type Msg []byte

// Clone returns a copy of the message (nil stays nil).
//
//mobilevet:coldpath an explicit copy; callers opt into the allocation
func (m Msg) Clone() Msg {
	if m == nil {
		return nil
	}
	c := make(Msg, len(m))
	copy(c, m)
	return c
}

// Traffic is the set of directed messages exchanged in a single round.
type Traffic map[graph.DirEdge]Msg

// Clone deep-copies a traffic map.
func (t Traffic) Clone() Traffic {
	c := make(Traffic, len(t))
	for k, v := range t {
		c[k] = v.Clone()
	}
	return c
}

// SortedEdges returns the directed edges of t in deterministic order, so
// adversaries and tests can iterate reproducibly.
func (t Traffic) SortedEdges() []graph.DirEdge {
	edges := make([]graph.DirEdge, 0, len(t))
	for e := range t {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		return edges[i].To < edges[j].To
	})
	return edges
}

// Adversary intercepts each round's traffic. Implementations may observe
// (eavesdroppers) or modify/inject (byzantine). The engine enforces the edge
// budget declared through PerRoundBudget or TotalBudget.
//
// This is the slot-native interface: the adversary reads and writes the
// round's directed messages by slot through a RoundTraffic view over the
// run's flat edge layout, so the adversarial hot path never materializes a
// map. Adversaries written against the legacy map form (Intercept(round,
// Traffic) Traffic) implement TrafficAdversary instead and are installed via
// the AdaptTraffic compat adapter.
type Adversary interface {
	// Intercept receives the round number and the round's traffic. The view
	// is read/write: Get reads a slot's message, Set overrides it (the
	// engine diffs overrides against the collected traffic for budget
	// accounting, then folds them into the delivered round). Messages read
	// from the view are shared with the engine's round buffer and must not
	// be mutated in place — corrupt by Setting a modified clone.
	Intercept(round int, tr *RoundTraffic)
}

// TrafficAdversary is the legacy map-based adversary interface: Intercept
// receives the round's traffic as a map and returns the traffic to deliver.
// The input is read-only: neither the map nor the Msg payloads it holds may
// be mutated in place — messages are shared with the engine's internal round
// buffer, so in-place edits bypass the delivery diff and corrupt silently,
// outside any budget accounting. Corrupt by returning a modified clone
// (Traffic.Clone deep-copies payloads), or the very map received if
// unchanged. Install one with AdaptTraffic.
type TrafficAdversary interface {
	Intercept(round int, tr Traffic) Traffic
}

// RunResetter is implemented by adversaries that carry per-run mutable state
// (RNG streams, accumulated views, spent budgets, rotation cursors). Engines
// call ResetRun once at the start of every run, before the first round, so a
// single adversary instance is safely reusable across repeated runs and
// sweep cells: two runs from the same instance with the same seed behave
// identically.
type RunResetter interface {
	ResetRun()
}

// PerRoundBudget is implemented by f-mobile (and f-static) adversaries: at
// most f undirected edges may differ between intercepted and original
// traffic in any round.
type PerRoundBudget interface {
	PerRoundEdges() int
}

// TotalBudget is implemented by round-error-rate adversaries (Section 4):
// the total number of corrupted undirected edge-rounds across the whole run
// is bounded.
type TotalBudget interface {
	TotalEdgeRounds() int
}

// Protocol is the per-node code. It runs in the node's goroutine and
// communicates only through rt.Exchange.
type Protocol func(rt Runtime)

// Runtime is the map-level interface protocol code programs against.
// Compilers wrap a Runtime to interpose their simulation machinery between
// the payload protocol and the physical network. Hot protocols should
// program against PortRuntime (via Ports), whose slot-native ExchangePorts
// avoids the per-round map allocations of Exchange.
type Runtime interface {
	// ID returns this node's identifier.
	ID() graph.NodeID
	// N returns the number of nodes in the network.
	N() int
	// Neighbors returns this node's neighbour IDs in ascending order (KT1).
	Neighbors() []graph.NodeID
	// Exchange sends out[v] to each neighbour v (missing keys send nothing)
	// and returns the messages received this round keyed by sender. It is
	// the synchronous round barrier. On the engines' runtimes it is a compat
	// wrapper over ExchangePorts: the inbox map is materialized per call
	// (read-only; silent rounds share one canonical empty map), so code on
	// the hot path should use the port form instead.
	Exchange(out map[graph.NodeID]Msg) map[graph.NodeID]Msg
	// Round returns the number of completed Exchange calls.
	Round() int
	// Rand returns this node's private randomness (hidden from the
	// adversary).
	Rand() *rand.Rand
	// Input returns this node's protocol input (may be nil).
	Input() []byte
	// SetOutput records this node's protocol output.
	SetOutput(v any)
	// Shared returns the trusted preprocessing artifact distributed to all
	// nodes before the run (tree packings, cycle covers); nil when the run
	// has none. Protocols honouring pure KT1 must not use it.
	Shared() any
}

// Config parameterizes a simulation run.
type Config struct {
	// Graph is the communication topology.
	Graph *graph.Graph
	// Seed derives all node randomness; runs are deterministic given Seed.
	Seed int64
	// MaxRounds aborts the run when exceeded (0 means a generous default).
	MaxRounds int
	// Adversary intercepts traffic; nil means fault-free.
	Adversary Adversary
	// Inputs holds per-node protocol inputs (nil or length N).
	Inputs [][]byte
	// Shared is the trusted preprocessing artifact visible to all nodes.
	Shared any
	// Bandwidth, when positive, enforces the CONGEST per-edge-per-round
	// budget: a node sending a message larger than Bandwidth bits aborts the
	// run at collection with an ErrBandwidthExceeded error naming the
	// smallest offending (node, port) — deterministic and identical across
	// engines, like the non-neighbor error. The budget binds the protocol
	// only; adversary injections are not checked (corrupting an edge-round
	// is the adversary's prerogative regardless of size). 0 (the default)
	// leaves sizes unrestricted.
	Bandwidth int
	// Observers receive the run's round lifecycle events (see Observer).
	// Stats are always collected internally; observers add measurement —
	// traces, histograms, corruption logs — without touching the core.
	Observers []Observer
}

// Stats aggregates the run's communication measures.
type Stats struct {
	// Rounds is the number of executed rounds.
	Rounds int
	// Messages is the total number of directed messages delivered.
	Messages int
	// Bytes is the total payload volume.
	Bytes int
	// MaxMsgBytes is the largest single message.
	MaxMsgBytes int
	// MaxEdgeCongestion is the maximum number of rounds any undirected edge
	// carried at least one message.
	MaxEdgeCongestion int
	// CorruptedEdgeRounds counts undirected edge-rounds the adversary
	// touched.
	CorruptedEdgeRounds int
}

// Result is the outcome of a run.
type Result struct {
	Stats   Stats
	Outputs []any
}

// ErrRoundLimit is returned when the protocol exceeds MaxRounds.
var ErrRoundLimit = errors.New("congest: round limit exceeded")

// ErrBudgetExceeded is returned when the adversary touches more edges than
// its declared budget permits.
var ErrBudgetExceeded = errors.New("congest: adversary exceeded its edge budget")

// ErrBandwidthExceeded is returned when a node sends a message larger than
// the run's Config.Bandwidth bits over one edge in one round.
var ErrBandwidthExceeded = errors.New("congest: bandwidth exceeded")

const defaultMaxRounds = 1 << 20

// Run executes proto on every node of cfg.Graph with the default
// (goroutine-per-node) engine and returns outputs and communication
// statistics. New code that wants to pick the execution substrate should use
// an Engine directly (or the root package's Scenario API).
func Run(cfg Config, proto Protocol) (*Result, error) {
	return GoroutineEngine{}.Run(cfg, proto)
}
