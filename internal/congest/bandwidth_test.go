package congest

import (
	"errors"
	"testing"

	"mobilecongest/internal/graph"
)

// The per-edge-per-round bandwidth budget contract: runs with
// Config.Bandwidth abort at collection with ErrBandwidthExceeded naming the
// deterministic smallest offender (lowest node, then lowest port), the
// budget binds exactly at the bit boundary, and CongestionObserver's
// per-round bandwidth records match hand-computable traffic.

// TestBandwidthViolationDeterministic: when every node oversends in the same
// round, every engine reports the identical smallest offender — node 0's
// lowest port — with the exact canonical error text.
func TestBandwidthViolationDeterministic(t *testing.T) {
	forEngine(t, func(t *testing.T, e Engine) {
		_, err := e.Run(Config{
			Graph: graph.Clique(4), Seed: 1, Bandwidth: 8,
		}, floodMax(3)) // U64Msg payloads: 64 bits > 8
		if !errors.Is(err, ErrBandwidthExceeded) {
			t.Fatalf("err = %v, want ErrBandwidthExceeded", err)
		}
		want := "congest: bandwidth exceeded: node 0 sent 64 bits to neighbor 1, budget 8"
		if err.Error() != want {
			t.Fatalf("error text %q, want %q", err, want)
		}
	})
}

// TestBandwidthBoundaryExact: a message of exactly the budget passes; one
// byte more violates. The budget counts payload bits, not messages.
func TestBandwidthBoundaryExact(t *testing.T) {
	send := func(bytes int) Protocol {
		return func(rt Runtime) {
			pr := Ports(rt)
			out := pr.OutBuf()
			for p := range out {
				out[p] = make(Msg, bytes)
			}
			pr.ExchangePorts(out)
		}
	}
	forEngine(t, func(t *testing.T, e Engine) {
		if _, err := e.Run(Config{Graph: graph.Cycle(5), Seed: 1, Bandwidth: 64}, send(8)); err != nil {
			t.Fatalf("exactly-at-budget run failed: %v", err)
		}
		if _, err := e.Run(Config{Graph: graph.Cycle(5), Seed: 1, Bandwidth: 64}, send(9)); !errors.Is(err, ErrBandwidthExceeded) {
			t.Fatalf("one-byte-over run: err = %v, want ErrBandwidthExceeded", err)
		}
	})
}

// TestBandwidthUnlimitedByDefault: the zero Config enforces nothing, however
// large the payloads.
func TestBandwidthUnlimitedByDefault(t *testing.T) {
	proto := func(rt Runtime) {
		pr := Ports(rt)
		out := pr.OutBuf()
		for p := range out {
			out[p] = make(Msg, 4096)
		}
		pr.ExchangePorts(out)
	}
	if _, err := (StepEngine{}).Run(Config{Graph: graph.Path(3), Seed: 1}, proto); err != nil {
		t.Fatalf("unlimited run failed: %v", err)
	}
}

// TestCongestionObserverBandwidthRecords: the observer's per-round records
// match a hand-computed workload — max, mean, message count, and violations
// against its observational BudgetBits.
func TestCongestionObserverBandwidthRecords(t *testing.T) {
	g := graph.Path(3) // edges {0,1}, {1,2}
	co := NewCongestionObserver()
	co.BudgetBits = 64
	// Round r: node 0 sends 8 bytes to 1; node 2 sends 16 bytes to 1 (128
	// bits — over the observer's 64-bit budget). Node 1 stays silent.
	proto := func(rt Runtime) {
		for r := 0; r < 3; r++ {
			out := map[graph.NodeID]Msg{}
			switch rt.ID() {
			case 0:
				out[1] = make(Msg, 8)
			case 2:
				out[1] = make(Msg, 16)
			}
			rt.Exchange(out)
		}
	}
	// Enforcement is off (Config.Bandwidth zero): BudgetBits only counts.
	if _, err := (StepEngine{}).Run(Config{Graph: g, Seed: 1, Observers: []Observer{co}}, proto); err != nil {
		t.Fatal(err)
	}
	bw := co.Bandwidth()
	if len(bw) != 3 {
		t.Fatalf("got %d bandwidth rounds, want 3", len(bw))
	}
	for r, rec := range bw {
		if rec.Round != r {
			t.Fatalf("record %d labeled round %d", r, rec.Round)
		}
		if rec.Messages != 2 {
			t.Fatalf("round %d: %d messages, want 2", r, rec.Messages)
		}
		if rec.MaxBits != 128 {
			t.Fatalf("round %d: MaxBits = %d, want 128", r, rec.MaxBits)
		}
		if rec.MeanBits != 96 { // (64 + 128) / 2
			t.Fatalf("round %d: MeanBits = %v, want 96", r, rec.MeanBits)
		}
		if rec.Violations != 1 {
			t.Fatalf("round %d: %d violations, want 1", r, rec.Violations)
		}
	}
}
