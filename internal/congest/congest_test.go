package congest

import (
	"errors"
	"testing"

	"mobilecongest/internal/graph"
)

// floodMax: every node floods the largest ID seen for diameter rounds; on a
// known-diameter graph all nodes converge to n-1.
func floodMax(rounds int) Protocol {
	return func(rt Runtime) {
		best := uint64(rt.ID())
		for r := 0; r < rounds; r++ {
			out := make(map[graph.NodeID]Msg)
			for _, v := range rt.Neighbors() {
				out[v] = U64Msg(best)
			}
			in := rt.Exchange(out)
			for _, m := range in {
				if v := U64(m); v > best {
					best = v
				}
			}
		}
		rt.SetOutput(best)
	}
}

func TestFloodMaxConverges(t *testing.T) {
	g := graph.Cycle(10)
	res, err := Run(Config{Graph: g, Seed: 1}, floodMax(5))
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range res.Outputs {
		if o.(uint64) != 9 {
			t.Fatalf("node %d output %v, want 9", i, o)
		}
	}
	if res.Stats.Rounds != 5 {
		t.Fatalf("rounds = %d, want 5", res.Stats.Rounds)
	}
	// Each round every node sends to both neighbours: 20 directed messages.
	if res.Stats.Messages != 100 {
		t.Fatalf("messages = %d, want 100", res.Stats.Messages)
	}
}

func TestDeterminism(t *testing.T) {
	g := graph.Petersen()
	proto := func(rt Runtime) {
		acc := uint64(0)
		for r := 0; r < 4; r++ {
			out := make(map[graph.NodeID]Msg)
			for _, v := range rt.Neighbors() {
				out[v] = U64Msg(rt.Rand().Uint64())
			}
			in := rt.Exchange(out)
			for _, m := range in {
				acc ^= U64(m)
			}
		}
		rt.SetOutput(acc)
	}
	r1, err := Run(Config{Graph: g, Seed: 42}, proto)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(Config{Graph: g, Seed: 42}, proto)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Outputs {
		if r1.Outputs[i] != r2.Outputs[i] {
			t.Fatalf("node %d differs across identical seeds", i)
		}
	}
	r3, _ := Run(Config{Graph: g, Seed: 43}, proto)
	same := true
	for i := range r1.Outputs {
		if r1.Outputs[i] != r3.Outputs[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical randomness")
	}
}

func TestRoundLimit(t *testing.T) {
	g := graph.Path(2)
	forever := func(rt Runtime) {
		for {
			rt.Exchange(map[graph.NodeID]Msg{})
		}
	}
	_, err := Run(Config{Graph: g, Seed: 1, MaxRounds: 10}, forever)
	if !errors.Is(err, ErrRoundLimit) {
		t.Fatalf("err = %v, want ErrRoundLimit", err)
	}
}

func TestSendToNonNeighborRejected(t *testing.T) {
	g := graph.Path(3) // 0-1-2; 0 and 2 not adjacent
	bad := func(rt Runtime) {
		if rt.ID() == 0 {
			rt.Exchange(map[graph.NodeID]Msg{2: U64Msg(1)})
		} else {
			rt.Exchange(map[graph.NodeID]Msg{})
		}
	}
	if _, err := Run(Config{Graph: g, Seed: 1}, bad); err == nil {
		t.Fatal("sending to non-neighbor accepted")
	}
}

func TestInputsOutputs(t *testing.T) {
	g := graph.Clique(4)
	inputs := [][]byte{{1}, {2}, {3}, {4}}
	proto := func(rt Runtime) {
		out := make(map[graph.NodeID]Msg)
		for _, v := range rt.Neighbors() {
			out[v] = Msg(rt.Input())
		}
		in := rt.Exchange(out)
		sum := int(rt.Input()[0])
		for _, m := range in {
			sum += int(m[0])
		}
		rt.SetOutput(sum)
	}
	res, err := Run(Config{Graph: g, Seed: 1, Inputs: inputs}, proto)
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range res.Outputs {
		if o.(int) != 10 {
			t.Fatalf("node %d sum = %v, want 10", i, o)
		}
	}
}

// corruptAll is a misbehaving map-based adversary claiming budget 1 but
// touching everything; it runs through the AdaptTraffic compat adapter,
// which must surface its budget declaration to the engine.
type corruptAll struct{}

func (corruptAll) Intercept(_ int, tr Traffic) Traffic {
	out := tr.Clone()
	for e := range out {
		out[e] = U64Msg(0xdeadbeef)
	}
	return out
}
func (corruptAll) PerRoundEdges() int { return 1 }

func TestBudgetEnforced(t *testing.T) {
	g := graph.Clique(4)
	_, err := Run(Config{Graph: g, Seed: 1, Adversary: AdaptTraffic(corruptAll{})}, floodMax(2))
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
}

// injector delivers a forged message on an edge that carried nothing.
type injector struct{ edge graph.DirEdge }

func (a injector) Intercept(_ int, tr Traffic) Traffic {
	out := tr.Clone()
	out[a.edge] = U64Msg(999)
	return out
}
func (a injector) PerRoundEdges() int { return 1 }

func TestInjectionOnSilentEdge(t *testing.T) {
	g := graph.Path(2)
	silent := func(rt Runtime) {
		in := rt.Exchange(map[graph.NodeID]Msg{})
		if rt.ID() == 1 {
			if m, ok := in[0]; ok {
				rt.SetOutput(U64(m))
				return
			}
		}
		rt.SetOutput(uint64(0))
	}
	adv := injector{edge: graph.DirEdge{From: 0, To: 1}}
	res, err := Run(Config{Graph: g, Seed: 1, Adversary: AdaptTraffic(adv)}, silent)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs[1].(uint64) != 999 {
		t.Fatalf("injected message not delivered: %v", res.Outputs[1])
	}
	if res.Stats.CorruptedEdgeRounds != 1 {
		t.Fatalf("CorruptedEdgeRounds = %d, want 1", res.Stats.CorruptedEdgeRounds)
	}
}

func TestEarlyTermination(t *testing.T) {
	// Node 0 stops after 1 round, others run 3; engine must not deadlock.
	g := graph.Clique(3)
	proto := func(rt Runtime) {
		rounds := 3
		if rt.ID() == 0 {
			rounds = 1
		}
		for r := 0; r < rounds; r++ {
			out := make(map[graph.NodeID]Msg)
			for _, v := range rt.Neighbors() {
				out[v] = U64Msg(uint64(rt.ID()))
			}
			rt.Exchange(out)
		}
		rt.SetOutput(true)
	}
	res, err := Run(Config{Graph: g, Seed: 1}, proto)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Rounds != 3 {
		t.Fatalf("rounds = %d, want 3", res.Stats.Rounds)
	}
}

func TestStatsCongestion(t *testing.T) {
	g := graph.Path(2)
	proto := func(rt Runtime) {
		for r := 0; r < 7; r++ {
			out := map[graph.NodeID]Msg{}
			if rt.ID() == 0 {
				out[1] = U64Msg(1)
			}
			rt.Exchange(out)
		}
	}
	res, err := Run(Config{Graph: g, Seed: 1}, proto)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.MaxEdgeCongestion != 7 {
		t.Fatalf("congestion = %d, want 7", res.Stats.MaxEdgeCongestion)
	}
	if res.Stats.MaxMsgBytes != 8 {
		t.Fatalf("MaxMsgBytes = %d, want 8", res.Stats.MaxMsgBytes)
	}
}

func TestWrappedRuntime(t *testing.T) {
	g := graph.Path(2)
	// The wrapper doubles every exchange: payload sees one virtual round
	// per two physical rounds.
	proto := func(rt Runtime) {
		w := &WrappedRuntime{Base: rt}
		w.ExchangeFn = func(out map[graph.NodeID]Msg) map[graph.NodeID]Msg {
			in := rt.Exchange(out)
			rt.Exchange(map[graph.NodeID]Msg{})
			return in
		}
		payload := func(v Runtime) {
			out := map[graph.NodeID]Msg{}
			for _, nb := range v.Neighbors() {
				out[nb] = U64Msg(uint64(v.ID()) + 100)
			}
			in := v.Exchange(out)
			var got uint64
			for _, m := range in {
				got = U64(m)
			}
			v.SetOutput(got)
		}
		payload(w)
		if w.Round() != 1 {
			panic("virtual round count wrong")
		}
	}
	res, err := Run(Config{Graph: g, Seed: 1}, proto)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Rounds != 2 {
		t.Fatalf("physical rounds = %d, want 2", res.Stats.Rounds)
	}
	if res.Outputs[0].(uint64) != 101 || res.Outputs[1].(uint64) != 100 {
		t.Fatalf("outputs wrong: %v", res.Outputs)
	}
}

func TestWireCodec(t *testing.T) {
	if U64(PutU64(nil, 0x1122334455667788)) != 0x1122334455667788 {
		t.Fatal("U64 round trip failed")
	}
	if U64([]byte{0x11}) != 0x1100000000000000 {
		t.Fatal("short read should zero-pad")
	}
	if U32(PutU32(nil, 0xdeadbeef)) != 0xdeadbeef {
		t.Fatal("U32 round trip failed")
	}
	w := Words64(Msg{1, 2, 3, 4, 5, 6, 7, 8, 9})
	if len(w) != 2 {
		t.Fatalf("Words64 length %d, want 2", len(w))
	}
}

func TestSharedPassthrough(t *testing.T) {
	g := graph.Path(2)
	type artifact struct{ tag string }
	proto := func(rt Runtime) {
		a, ok := rt.Shared().(*artifact)
		rt.SetOutput(ok && a.tag == "hello")
	}
	res, err := Run(Config{Graph: g, Seed: 1, Shared: &artifact{tag: "hello"}}, proto)
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range res.Outputs {
		if o != true {
			t.Fatalf("node %d did not see the shared artifact", i)
		}
	}
}

func TestNilGraphRejected(t *testing.T) {
	if _, err := Run(Config{}, func(Runtime) {}); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, err := Run(Config{Graph: graph.Path(2), Inputs: [][]byte{{1}}}, func(Runtime) {}); err == nil {
		t.Fatal("mismatched inputs accepted")
	}
}

func TestSilentRoundHelper(t *testing.T) {
	g := graph.Path(2)
	proto := func(rt Runtime) {
		SilentRound(rt)
		rt.SetOutput(rt.Round())
	}
	res, err := Run(Config{Graph: g, Seed: 1}, proto)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs[0].(int) != 1 {
		t.Fatal("SilentRound did not advance the round counter")
	}
}
