package graph

import (
	"fmt"
	"math/rand"
)

// Clique returns the complete graph K_n — the CONGESTED CLIQUE topology
// (Theorem 1.6).
func Clique(n int) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.mustAddEdge(NodeID(u), NodeID(v))
		}
	}
	return g
}

// Cycle returns the n-cycle (n >= 3), the minimal 2-edge-connected graph.
func Cycle(n int) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		g.mustAddEdge(NodeID(u), NodeID((u+1)%n))
	}
	return g
}

// Path returns the n-path, a tree with diameter n-1.
func Path(n int) *Graph {
	g := New(n)
	for u := 0; u+1 < n; u++ {
		g.mustAddEdge(NodeID(u), NodeID(u+1))
	}
	return g
}

// Circulant returns the circulant graph C_n(1..k): node u adjacent to
// u±1, ..., u±k (mod n). It is 2k-edge-connected with diameter ~n/(2k) —
// the canonical (2f+1)-connected family for the byzantine compilers. It
// requires n > 2k.
func Circulant(n, k int) *Graph {
	if n <= 2*k {
		panic(fmt.Sprintf("graph: circulant needs n > 2k, got n=%d k=%d", n, k))
	}
	g := New(n)
	for u := 0; u < n; u++ {
		for d := 1; d <= k; d++ {
			v := (u + d) % n
			if !g.HasEdge(NodeID(u), NodeID(v)) {
				g.mustAddEdge(NodeID(u), NodeID(v))
			}
		}
	}
	return g
}

// Grid returns the rows x cols grid graph.
func Grid(rows, cols int) *Graph {
	g := New(rows * cols)
	id := func(r, c int) NodeID { return NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.mustAddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				g.mustAddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return g
}

// Torus returns the rows x cols torus (wrap-around grid), 4-edge-connected.
func Torus(rows, cols int) *Graph {
	if rows < 3 || cols < 3 {
		panic("graph: torus needs rows, cols >= 3")
	}
	g := New(rows * cols)
	id := func(r, c int) NodeID { return NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			g.mustAddEdge(id(r, c), id(r, (c+1)%cols))
			g.mustAddEdge(id(r, c), id((r+1)%rows, c))
		}
	}
	return g
}

// Hypercube returns the d-dimensional hypercube on 2^d nodes,
// d-edge-connected with diameter d.
func Hypercube(d int) *Graph {
	n := 1 << d
	g := New(n)
	for u := 0; u < n; u++ {
		for b := 0; b < d; b++ {
			v := u ^ (1 << b)
			if u < v {
				g.mustAddEdge(NodeID(u), NodeID(v))
			}
		}
	}
	return g
}

// RandomRegular returns a random d-regular graph on n nodes via the pairing
// model followed by double-edge-swap repair of self-loops and multi-edges;
// these graphs are expanders w.h.p. (the Theorem 1.7 family). It requires
// n*d even and d < n.
func RandomRegular(n, d int, rng *rand.Rand) *Graph {
	if n*d%2 != 0 || d >= n {
		panic(fmt.Sprintf("graph: invalid regular params n=%d d=%d", n, d))
	}
	for attempt := 0; attempt < 200; attempt++ {
		g, ok := tryPairingWithRepair(n, d, rng)
		if ok && g.IsConnected() {
			return g
		}
	}
	panic("graph: random regular generation failed after 200 attempts")
}

func tryPairingWithRepair(n, d int, rng *rand.Rand) (*Graph, bool) {
	stubs := make([]NodeID, 0, n*d)
	for u := 0; u < n; u++ {
		for i := 0; i < d; i++ {
			stubs = append(stubs, NodeID(u))
		}
	}
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	// Pair stubs into an edge multiset, then swap away loops/duplicates:
	// a double edge swap (u,v),(x,y) -> (u,x),(v,y) preserves all degrees.
	type pair struct{ a, b NodeID }
	pairs := make([]pair, 0, len(stubs)/2)
	for i := 0; i < len(stubs); i += 2 {
		pairs = append(pairs, pair{a: stubs[i], b: stubs[i+1]})
	}
	count := make(map[Edge]int)
	bad := func(p pair) bool {
		return p.a == p.b || count[NewEdge(p.a, p.b)] > 1
	}
	for _, p := range pairs {
		if p.a != p.b {
			count[NewEdge(p.a, p.b)]++
		}
	}
	for iter := 0; iter < 100*len(pairs); iter++ {
		bi := -1
		for i, p := range pairs {
			if bad(p) {
				bi = i
				break
			}
		}
		if bi < 0 {
			g := New(n)
			for _, p := range pairs {
				if g.HasEdge(p.a, p.b) {
					return nil, false // should not happen after repair
				}
				g.mustAddEdge(p.a, p.b)
			}
			return g, true
		}
		oi := rng.Intn(len(pairs))
		if oi == bi {
			continue
		}
		p, q := pairs[bi], pairs[oi]
		// Remove old multiplicities.
		if p.a != p.b {
			count[NewEdge(p.a, p.b)]--
		}
		if q.a != q.b {
			count[NewEdge(q.a, q.b)]--
		}
		np, nq := pair{a: p.a, b: q.a}, pair{a: p.b, b: q.b}
		if rng.Intn(2) == 0 {
			np, nq = pair{a: p.a, b: q.b}, pair{a: p.b, b: q.a}
		}
		if np.a != np.b {
			count[NewEdge(np.a, np.b)]++
		}
		if nq.a != nq.b {
			count[NewEdge(nq.a, nq.b)]++
		}
		pairs[bi], pairs[oi] = np, nq
	}
	return nil, false
}

// GNP returns an Erdos-Renyi G(n,p) graph, retrying until connected (p must
// be comfortably above the connectivity threshold).
func GNP(n int, p float64, rng *rand.Rand) *Graph {
	for attempt := 0; attempt < 200; attempt++ {
		g := New(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < p {
					g.mustAddEdge(NodeID(u), NodeID(v))
				}
			}
		}
		if g.IsConnected() {
			return g
		}
	}
	panic("graph: G(n,p) stayed disconnected after 200 attempts; p too small")
}

// CompleteBipartite returns K_{a,b}: a-edge-connected (for a<=b) with
// diameter 2.
func CompleteBipartite(a, b int) *Graph {
	g := New(a + b)
	for u := 0; u < a; u++ {
		for v := 0; v < b; v++ {
			g.mustAddEdge(NodeID(u), NodeID(a+v))
		}
	}
	return g
}

// Barbell returns two K_m cliques joined by a single bridge edge — the
// canonical low-conductance graph (phi ~ 1/m^2), used as a negative control
// for the expander-only results.
func Barbell(m int) *Graph {
	g := New(2 * m)
	for u := 0; u < m; u++ {
		for v := u + 1; v < m; v++ {
			g.mustAddEdge(NodeID(u), NodeID(v))
			g.mustAddEdge(NodeID(m+u), NodeID(m+v))
		}
	}
	g.mustAddEdge(NodeID(m-1), NodeID(m))
	return g
}

// Petersen returns the Petersen graph (3-regular, 3-edge-connected,
// diameter 2) — a handy fixed test topology.
func Petersen() *Graph {
	g := New(10)
	for u := 0; u < 5; u++ {
		g.mustAddEdge(NodeID(u), NodeID((u+1)%5))     // outer cycle
		g.mustAddEdge(NodeID(5+u), NodeID(5+(u+2)%5)) // inner pentagram
		g.mustAddEdge(NodeID(u), NodeID(5+u))         // spokes
	}
	return g
}
