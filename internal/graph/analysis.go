package graph

import "math"

// EdgeConnectivity returns the exact edge connectivity lambda(G) by Menger's
// theorem: the minimum over v != 0 of the max-flow between node 0 and v with
// unit edge capacities. Cost O(n * m * lambda); intended for the moderate
// sizes the simulator handles.
func (g *Graph) EdgeConnectivity() int {
	if g.n <= 1 {
		return 0
	}
	if !g.IsConnected() {
		return 0
	}
	best := math.MaxInt
	for v := 1; v < g.n; v++ {
		f := g.maxFlowUnit(0, NodeID(v), best)
		if f < best {
			best = f
		}
	}
	return best
}

// maxFlowUnit computes max-flow from s to t with unit capacities on each
// undirected edge (capacity 1 in each direction, standard for edge-disjoint
// paths), stopping early once the flow reaches cap.
func (g *Graph) maxFlowUnit(s, t NodeID, cap int) int {
	// residual[u][v] tracked via map keyed by directed edge.
	res := make(map[DirEdge]int, 2*len(g.edges))
	for _, e := range g.edges {
		res[DirEdge{From: e.U, To: e.V}] = 1
		res[DirEdge{From: e.V, To: e.U}] = 1
	}
	flow := 0
	for flow < cap {
		// BFS for an augmenting path.
		parent := make([]NodeID, g.n)
		for i := range parent {
			parent[i] = -1
		}
		parent[s] = s
		queue := []NodeID{s}
		found := false
		for len(queue) > 0 && !found {
			u := queue[0]
			queue = queue[1:]
			for _, v := range g.adj[u] {
				if parent[v] < 0 && res[DirEdge{From: u, To: v}] > 0 {
					parent[v] = u
					if v == t {
						found = true
						break
					}
					queue = append(queue, v)
				}
			}
		}
		if !found {
			break
		}
		for v := t; v != s; v = parent[v] {
			u := parent[v]
			res[DirEdge{From: u, To: v}]--
			res[DirEdge{From: v, To: u}]++
		}
		flow++
	}
	return flow
}

// EdgeDisjointPaths returns up to k edge-disjoint s-t paths (each a node
// sequence from s to t), found by successive BFS augmentation on the unit-
// capacity residual graph. Shorter paths are preferred because augmentation
// is breadth-first. Used by the FT cycle-cover construction (Section 5).
func (g *Graph) EdgeDisjointPaths(s, t NodeID, k int) [][]NodeID {
	res := make(map[DirEdge]int, 2*len(g.edges))
	for _, e := range g.edges {
		res[DirEdge{From: e.U, To: e.V}] = 1
		res[DirEdge{From: e.V, To: e.U}] = 1
	}
	for i := 0; i < k; i++ {
		parent := make([]NodeID, g.n)
		for j := range parent {
			parent[j] = -1
		}
		parent[s] = s
		queue := []NodeID{s}
		found := false
		for len(queue) > 0 && !found {
			u := queue[0]
			queue = queue[1:]
			for _, v := range g.adj[u] {
				if parent[v] < 0 && res[DirEdge{From: u, To: v}] > 0 {
					parent[v] = u
					if v == t {
						found = true
						break
					}
					queue = append(queue, v)
				}
			}
		}
		if !found {
			break
		}
		for v := t; v != s; v = parent[v] {
			u := parent[v]
			res[DirEdge{From: u, To: v}]--
			res[DirEdge{From: v, To: u}]++
		}
	}
	// Decompose the flow into paths: follow outgoing saturated edges from s.
	used := make(map[DirEdge]bool)
	for _, e := range g.edges {
		if res[DirEdge{From: e.U, To: e.V}] == 0 && res[DirEdge{From: e.V, To: e.U}] == 2 {
			used[DirEdge{From: e.U, To: e.V}] = true
		}
		if res[DirEdge{From: e.V, To: e.U}] == 0 && res[DirEdge{From: e.U, To: e.V}] == 2 {
			used[DirEdge{From: e.V, To: e.U}] = true
		}
	}
	var paths [][]NodeID
	for {
		path := []NodeID{s}
		cur := s
		ok := false
		for steps := 0; steps <= len(g.edges); steps++ {
			var next NodeID = -1
			for _, v := range g.adj[cur] {
				de := DirEdge{From: cur, To: v}
				if used[de] {
					next = v
					delete(used, de)
					break
				}
			}
			if next < 0 {
				break
			}
			path = append(path, next)
			cur = next
			if cur == t {
				ok = true
				break
			}
		}
		if !ok {
			break
		}
		paths = append(paths, path)
	}
	return paths
}

// Conductance returns the exact conductance (the phi of Section 1.3) for
// graphs with n <= 24 by enumerating all cuts; for larger graphs it returns
// a sampled lower-confidence estimate using sweep cuts over randomized BFS
// orders, which upper-bounds phi. The compilers only need a usable phi
// estimate to parameterize the expander packing.
func (g *Graph) Conductance() float64 {
	if g.n <= 1 || len(g.edges) == 0 {
		return 0
	}
	if g.n <= 24 {
		return g.exactConductance()
	}
	return g.sweepConductance()
}

func (g *Graph) exactConductance() float64 {
	best := math.Inf(1)
	for mask := 1; mask < (1<<g.n)-1; mask++ {
		phi := g.cutConductance(func(u NodeID) bool { return mask&(1<<u) != 0 })
		if phi < best {
			best = phi
		}
	}
	return best
}

func (g *Graph) cutConductance(inS func(NodeID) bool) float64 {
	cut, volS, volT := 0, 0, 0
	for _, e := range g.edges {
		su, sv := inS(e.U), inS(e.V)
		if su != sv {
			cut++
		}
	}
	for u := 0; u < g.n; u++ {
		if inS(NodeID(u)) {
			volS += len(g.adj[u])
		} else {
			volT += len(g.adj[u])
		}
	}
	den := volS
	if volT < volS {
		den = volT
	}
	if den == 0 {
		return math.Inf(1)
	}
	return float64(cut) / float64(den)
}

func (g *Graph) sweepConductance() float64 {
	best := math.Inf(1)
	// Sweep cuts along BFS orders from several sources.
	sources := []NodeID{0, NodeID(g.n / 2), NodeID(g.n - 1)}
	for _, s := range sources {
		dist, _ := g.BFS(s)
		order := make([]NodeID, g.n)
		for i := range order {
			order[i] = NodeID(i)
		}
		// Sort by BFS distance (stable enough for a sweep).
		for i := 1; i < len(order); i++ {
			for j := i; j > 0 && dist[order[j]] < dist[order[j-1]]; j-- {
				order[j], order[j-1] = order[j-1], order[j]
			}
		}
		inS := make([]bool, g.n)
		for i := 0; i+1 < len(order); i++ {
			inS[order[i]] = true
			phi := g.cutConductance(func(u NodeID) bool { return inS[u] })
			if phi < best {
				best = phi
			}
		}
	}
	return best
}
