package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasicOps(t *testing.T) {
	g := New(4)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 0); err == nil {
		t.Fatal("duplicate edge accepted")
	}
	if err := g.AddEdge(2, 2); err == nil {
		t.Fatal("self loop accepted")
	}
	if err := g.AddEdge(0, 9); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	if !g.HasEdge(1, 0) {
		t.Fatal("HasEdge symmetric lookup failed")
	}
	if g.EdgeIndex(0, 1) != 0 || g.EdgeIndex(2, 3) != -1 {
		t.Fatal("EdgeIndex wrong")
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := New(5)
	for _, v := range []NodeID{4, 2, 3, 1} {
		if err := g.AddEdge(0, v); err != nil {
			t.Fatal(err)
		}
	}
	nb := g.Neighbors(0)
	for i := 1; i < len(nb); i++ {
		if nb[i-1] >= nb[i] {
			t.Fatalf("neighbors not sorted: %v", nb)
		}
	}
}

func TestGeneratorsShape(t *testing.T) {
	cases := []struct {
		name     string
		g        *Graph
		wantN    int
		wantM    int
		wantDiam int
		wantConn int
	}{
		{"K6", Clique(6), 6, 15, 1, 5},
		{"C8", Cycle(8), 8, 8, 4, 2},
		{"Circ(10,2)", Circulant(10, 2), 10, 20, 3, 4},
		{"Grid3x3", Grid(3, 3), 9, 12, 4, 2},
		{"Torus3x4", Torus(3, 4), 12, 24, 3, 4},
		{"Q3", Hypercube(3), 8, 12, 3, 3},
		{"K23", CompleteBipartite(2, 3), 5, 6, 2, 2},
		{"Petersen", Petersen(), 10, 15, 2, 3},
		{"Path5", Path(5), 5, 4, 4, 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if c.g.N() != c.wantN {
				t.Errorf("N = %d, want %d", c.g.N(), c.wantN)
			}
			if c.g.M() != c.wantM {
				t.Errorf("M = %d, want %d", c.g.M(), c.wantM)
			}
			if d := c.g.Diameter(); d != c.wantDiam {
				t.Errorf("Diameter = %d, want %d", d, c.wantDiam)
			}
			if k := c.g.EdgeConnectivity(); k != c.wantConn {
				t.Errorf("EdgeConnectivity = %d, want %d", k, c.wantConn)
			}
		})
	}
}

func TestRandomRegularIsRegular(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := RandomRegular(30, 4, rng)
	for u := 0; u < g.N(); u++ {
		if g.Degree(NodeID(u)) != 4 {
			t.Fatalf("node %d has degree %d, want 4", u, g.Degree(NodeID(u)))
		}
	}
	if !g.IsConnected() {
		t.Fatal("random regular graph disconnected")
	}
}

func TestGNPConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := GNP(40, 0.25, rng)
	if !g.IsConnected() {
		t.Fatal("GNP returned disconnected graph")
	}
}

func TestBFSDistances(t *testing.T) {
	g := Path(6)
	dist, parent := g.BFS(0)
	for v := 0; v < 6; v++ {
		if dist[v] != v {
			t.Fatalf("dist[%d] = %d, want %d", v, dist[v], v)
		}
	}
	for v := 1; v < 6; v++ {
		if parent[v] != NodeID(v-1) {
			t.Fatalf("parent[%d] = %d, want %d", v, parent[v], v-1)
		}
	}
}

func TestEdgeDisjointPaths(t *testing.T) {
	// Circulant(12,2) is 4-edge-connected: expect 4 disjoint paths between
	// any pair.
	g := Circulant(12, 2)
	paths := g.EdgeDisjointPaths(0, 6, 4)
	if len(paths) != 4 {
		t.Fatalf("got %d paths, want 4", len(paths))
	}
	usedEdges := make(map[Edge]bool)
	for _, p := range paths {
		if p[0] != 0 || p[len(p)-1] != 6 {
			t.Fatalf("path endpoints wrong: %v", p)
		}
		for i := 0; i+1 < len(p); i++ {
			if !g.HasEdge(p[i], p[i+1]) {
				t.Fatalf("path uses non-edge (%d,%d)", p[i], p[i+1])
			}
			e := NewEdge(p[i], p[i+1])
			if usedEdges[e] {
				t.Fatalf("edge %v reused across paths", e)
			}
			usedEdges[e] = true
		}
	}
}

func TestEdgeDisjointPathsLimited(t *testing.T) {
	// On a cycle only 2 disjoint paths exist even if we ask for 5.
	g := Cycle(8)
	paths := g.EdgeDisjointPaths(0, 4, 5)
	if len(paths) != 2 {
		t.Fatalf("got %d paths on a cycle, want 2", len(paths))
	}
}

func TestConnectedAvoiding(t *testing.T) {
	g := Cycle(6)
	if !g.ConnectedAvoiding(0, 3, []Edge{NewEdge(0, 1)}) {
		t.Fatal("cycle should survive one edge removal")
	}
	if g.ConnectedAvoiding(0, 3, []Edge{NewEdge(0, 1), NewEdge(5, 0)}) {
		t.Fatal("removing both incident edges of node 0 must disconnect it")
	}
}

func TestConductanceClique(t *testing.T) {
	// K4: every cut (S, V\S) with |S|=1 has cut=3, vol S = 3 -> phi = 1;
	// |S|=2: cut=4, vol=6 -> 2/3. Exact conductance = 2/3.
	g := Clique(4)
	phi := g.Conductance()
	if phi < 0.66 || phi > 0.67 {
		t.Fatalf("K4 conductance = %f, want 2/3", phi)
	}
}

func TestConductanceCycleLow(t *testing.T) {
	g := Cycle(16)
	phi := g.Conductance()
	// Cycle conductance = 2/(vol of half) = 2/16 = 0.125.
	if phi > 0.2 {
		t.Fatalf("C16 conductance = %f, want <= 0.2", phi)
	}
}

func TestEdgeConnectivityQuick(t *testing.T) {
	// Property: circulant C(n,k) has edge connectivity exactly 2k.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(8)
		k := 1 + rng.Intn(2)
		if n <= 2*k {
			return true
		}
		return Circulant(n, k).EdgeConnectivity() == 2*k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestDirEdge(t *testing.T) {
	d := DirEdge{From: 3, To: 1}
	if d.Undirected() != (Edge{U: 1, V: 3}) {
		t.Fatal("Undirected wrong")
	}
	if d.Reverse() != (DirEdge{From: 1, To: 3}) {
		t.Fatal("Reverse wrong")
	}
	e := NewEdge(5, 2)
	if e.Other(2) != 5 || e.Other(5) != 2 {
		t.Fatal("Other wrong")
	}
}

func TestDisconnectedAnalyses(t *testing.T) {
	g := New(4)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if g.IsConnected() {
		t.Fatal("disconnected graph reported connected")
	}
	if g.Diameter() != -1 {
		t.Fatal("diameter of disconnected graph should be -1")
	}
	if g.Eccentricity(0) != -1 {
		t.Fatal("eccentricity of disconnected graph should be -1")
	}
	if g.EdgeConnectivity() != 0 {
		t.Fatal("edge connectivity of disconnected graph should be 0")
	}
}

func TestRemoveEdgesAndClone(t *testing.T) {
	g := Cycle(5)
	h := g.RemoveEdges([]Edge{NewEdge(0, 1)})
	if h.M() != 4 || g.M() != 5 {
		t.Fatal("RemoveEdges wrong or mutated original")
	}
	c := g.Clone()
	if c.M() != g.M() || c.N() != g.N() {
		t.Fatal("clone shape wrong")
	}
	if !c.HasEdge(0, 1) {
		t.Fatal("clone lost an edge")
	}
}

func TestBarbellShape(t *testing.T) {
	g := Barbell(5)
	if g.N() != 10 {
		t.Fatalf("N = %d", g.N())
	}
	if g.M() != 2*10+1 {
		t.Fatalf("M = %d, want 21", g.M())
	}
	if g.EdgeConnectivity() != 1 {
		t.Fatalf("barbell connectivity = %d, want 1 (the bridge)", g.EdgeConnectivity())
	}
	if phi := g.Conductance(); phi > 0.1 {
		t.Fatalf("barbell conductance %f should be tiny", phi)
	}
}
