// Package graph provides the undirected multigraph-free graph type used by
// the CONGEST simulator, together with generators for the graph families the
// paper's compilers target (cliques, circulants, expanders, grids,
// hypercubes) and the structural analyses the theorems are parameterized by
// (diameter, edge connectivity, conductance).
package graph

import (
	"fmt"
	"sort"
	"sync"
)

// NodeID identifies a node; IDs are 0..N-1 and double as the KT1 identifiers
// (so the "largest ID" root of Lemma 3.14 is node N-1).
type NodeID int32

// Edge is an undirected edge with U < V.
type Edge struct {
	U, V NodeID
}

// NewEdge normalizes the endpoint order.
func NewEdge(a, b NodeID) Edge {
	if a > b {
		a, b = b, a
	}
	return Edge{U: a, V: b}
}

// Other returns the endpoint of e that is not x.
func (e Edge) Other(x NodeID) NodeID {
	if e.U == x {
		return e.V
	}
	return e.U
}

// DirEdge is a directed edge (an ordered pair of adjacent nodes).
type DirEdge struct {
	From, To NodeID
}

// Undirected returns the underlying undirected edge.
func (d DirEdge) Undirected() Edge { return NewEdge(d.From, d.To) }

// Reverse returns the opposite direction.
func (d DirEdge) Reverse() DirEdge { return DirEdge{From: d.To, To: d.From} }

// Graph is a simple undirected graph on nodes 0..N-1.
type Graph struct {
	n       int
	adj     [][]NodeID
	edges   []Edge
	edgeIdx map[Edge]int

	// Metric memoization: Diameter and Eccentricity are O(n*m) BFS scans
	// that hot paths ask for repeatedly on shared, effectively-immutable
	// graphs (registry protocol builds recompute them on every Run of every
	// sweep cell). Guarded by mu — graphs are shared across sweep workers —
	// and invalidated by AddEdge.
	mu       sync.Mutex
	diameter int // memoized Diameter; metricUncached = not yet computed
	ecc      map[NodeID]int
}

// metricUncached marks a not-yet-memoized metric (valid values are >= -1).
const metricUncached = -2

// New returns an empty graph with n nodes.
func New(n int) *Graph {
	return &Graph{
		n:        n,
		adj:      make([][]NodeID, n),
		edgeIdx:  make(map[Edge]int),
		diameter: metricUncached,
	}
}

// N returns the number of nodes.
//
//mobilevet:hotpath
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
//
//mobilevet:hotpath
func (g *Graph) M() int { return len(g.edges) }

// Edges returns the edge list (do not mutate).
func (g *Graph) Edges() []Edge { return g.edges }

// Neighbors returns the adjacency list of u (do not mutate). The list is
// sorted by ID.
func (g *Graph) Neighbors(u NodeID) []NodeID { return g.adj[u] }

// Degree returns the degree of u.
func (g *Graph) Degree(u NodeID) int { return len(g.adj[u]) }

// HasEdge reports whether {u,v} is an edge.
func (g *Graph) HasEdge(u, v NodeID) bool {
	_, ok := g.edgeIdx[NewEdge(u, v)]
	return ok
}

// EdgeIndex returns the index of {u,v} in Edges(), or -1.
func (g *Graph) EdgeIndex(u, v NodeID) int {
	if i, ok := g.edgeIdx[NewEdge(u, v)]; ok {
		return i
	}
	return -1
}

// AddEdge inserts the undirected edge {u,v}; duplicate and self-loop
// insertions are rejected.
func (g *Graph) AddEdge(u, v NodeID) error {
	if u == v {
		return fmt.Errorf("graph: self loop at %d", u)
	}
	if int(u) < 0 || int(u) >= g.n || int(v) < 0 || int(v) >= g.n {
		return fmt.Errorf("graph: edge (%d,%d) out of range n=%d", u, v, g.n)
	}
	e := NewEdge(u, v)
	if _, dup := g.edgeIdx[e]; dup {
		return fmt.Errorf("graph: duplicate edge (%d,%d)", u, v)
	}
	g.edgeIdx[e] = len(g.edges)
	g.edges = append(g.edges, e)
	g.adj[u] = insertSorted(g.adj[u], v)
	g.adj[v] = insertSorted(g.adj[v], u)
	g.mu.Lock()
	g.diameter = metricUncached
	g.ecc = nil
	g.mu.Unlock()
	return nil
}

// mustAddEdge is used by generators whose construction cannot produce
// duplicates.
func (g *Graph) mustAddEdge(u, v NodeID) {
	if err := g.AddEdge(u, v); err != nil {
		panic(err)
	}
}

func insertSorted(s []NodeID, v NodeID) []NodeID {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// BFS returns distances from src (-1 for unreachable) and a parent array
// (parent[src] = src; parent[v] = -1 for unreachable v).
func (g *Graph) BFS(src NodeID) (dist []int, parent []NodeID) {
	dist = make([]int, g.n)
	parent = make([]NodeID, g.n)
	for i := range dist {
		dist[i] = -1
		parent[i] = -1
	}
	dist[src] = 0
	parent[src] = src
	queue := []NodeID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				parent[v] = u
				queue = append(queue, v)
			}
		}
	}
	return dist, parent
}

// IsConnected reports whether the graph is connected (true for n<=1).
func (g *Graph) IsConnected() bool {
	if g.n <= 1 {
		return true
	}
	dist, _ := g.BFS(0)
	for _, d := range dist {
		if d < 0 {
			return false
		}
	}
	return true
}

// Diameter returns the exact diameter via all-pairs BFS, or -1 if
// disconnected. The result is memoized (and safe to ask for concurrently):
// the first call on a graph pays the O(n*m) scan, repeats are a lock and a
// load.
func (g *Graph) Diameter() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.diameter != metricUncached {
		return g.diameter
	}
	diam := 0
	for u := 0; u < g.n; u++ {
		dist, _ := g.BFS(NodeID(u))
		for _, d := range dist {
			if d < 0 {
				diam = -1
				break
			}
			if d > diam {
				diam = d
			}
		}
		if diam < 0 {
			break
		}
	}
	g.diameter = diam
	return diam
}

// Eccentricity returns max distance from u, or -1 if some node is
// unreachable. Memoized per node, like Diameter.
func (g *Graph) Eccentricity(u NodeID) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if e, ok := g.ecc[u]; ok {
		return e
	}
	dist, _ := g.BFS(u)
	ecc := 0
	for _, d := range dist {
		if d < 0 {
			ecc = -1
			break
		}
		if d > ecc {
			ecc = d
		}
	}
	if g.ecc == nil {
		g.ecc = make(map[NodeID]int)
	}
	g.ecc[u] = ecc
	return ecc
}

// Clone returns a deep copy.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	for _, e := range g.edges {
		c.mustAddEdge(e.U, e.V)
	}
	return c
}

// RemoveEdges returns a copy of g with the given edges deleted.
func (g *Graph) RemoveEdges(remove []Edge) *Graph {
	drop := make(map[Edge]bool, len(remove))
	for _, e := range remove {
		drop[NewEdge(e.U, e.V)] = true
	}
	c := New(g.n)
	for _, e := range g.edges {
		if !drop[e] {
			c.mustAddEdge(e.U, e.V)
		}
	}
	return c
}

// ConnectedAvoiding reports whether s and t remain connected after deleting
// the given edge set — the condition of Jain's secure unicast (Lemma A.3).
func (g *Graph) ConnectedAvoiding(s, t NodeID, avoid []Edge) bool {
	h := g.RemoveEdges(avoid)
	dist, _ := h.BFS(s)
	return dist[t] >= 0
}
