package graph

import (
	"math/rand"
	"testing"
)

// RandomRegularForTest builds a random d-regular graph for tests, failing
// the test instead of panicking if generation cannot succeed.
func RandomRegularForTest(t *testing.T, n, d int, seed int64) *Graph {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("random regular generation failed: %v", r)
		}
	}()
	return RandomRegular(n, d, rand.New(rand.NewSource(seed)))
}
