package cyclecover

import (
	"testing"

	"mobilecongest/internal/graph"
)

func TestBuildCirculant(t *testing.T) {
	g := graph.Circulant(10, 2) // 4-edge-connected
	c, err := Build(g, 3)       // k = 2f+1 for f=1
	if err != nil {
		t.Fatal(err)
	}
	if c.K != 3 {
		t.Fatalf("K = %d", c.K)
	}
	for i, paths := range c.Paths {
		e := g.Edges()[i]
		if len(paths) != 3 {
			t.Fatalf("edge %v has %d paths", e, len(paths))
		}
		used := make(map[graph.Edge]bool)
		for _, p := range paths {
			if p[0] != e.U || p[len(p)-1] != e.V {
				t.Fatalf("edge %v path endpoints wrong: %v", e, p)
			}
			for j := 0; j+1 < len(p); j++ {
				if !g.HasEdge(p[j], p[j+1]) {
					t.Fatalf("path uses non-edge (%d,%d)", p[j], p[j+1])
				}
				pe := graph.NewEdge(p[j], p[j+1])
				if used[pe] {
					t.Fatalf("edge %v paths overlap on %v", e, pe)
				}
				used[pe] = true
			}
		}
	}
	if c.Dilation < 2 {
		t.Fatalf("dilation = %d, expected >= 2", c.Dilation)
	}
	if err := c.VerifyColoring(); err != nil {
		t.Fatal(err)
	}
	if c.NumColors < 1 {
		t.Fatal("no colours assigned")
	}
}

func TestBuildInsufficientConnectivity(t *testing.T) {
	g := graph.Cycle(8) // 2-edge-connected
	if _, err := Build(g, 3); err == nil {
		t.Fatal("k=3 cover built on a cycle")
	}
}

func TestBuildCliqueSmallDilation(t *testing.T) {
	g := graph.Clique(6)
	c, err := Build(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	// In a clique: the edge itself plus 2-hop detours: dilation 2.
	if c.Dilation != 2 {
		t.Fatalf("dilation = %d, want 2", c.Dilation)
	}
	if err := c.VerifyColoring(); err != nil {
		t.Fatal(err)
	}
}

func TestColoringBound(t *testing.T) {
	// Lemma 5.2: colours <= f*dilation*cong + 1 with k = 2f+1 -> use k.
	g := graph.Circulant(12, 2)
	c, err := Build(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	bound := c.K*c.Dilation*c.Cong + 1
	if c.NumColors > bound {
		t.Fatalf("colours %d exceed Lemma 5.2 bound %d", c.NumColors, bound)
	}
}
