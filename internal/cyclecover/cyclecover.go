// Package cyclecover implements the fault-tolerant cycle covers of
// Section 5 (Definition 8): for every graph edge (u,v), a collection of k
// edge-disjoint u-v paths (the edge itself being one of them), together with
// the good cycle colouring of Lemma 5.2 that partitions edges into classes
// whose path collections are pairwise edge-disjoint.
//
// Construction is centralized (Theorem 1.4 permits a trusted preprocessing
// phase): successive BFS augmentation on the unit-capacity residual graph
// yields the k disjoint paths per edge; greedy colouring of the path-conflict
// graph yields the schedule classes.
package cyclecover

import (
	"fmt"

	"mobilecongest/internal/graph"
)

// Cover is a k-FT (cong, dilation) cycle cover.
type Cover struct {
	// G is the underlying graph.
	G *graph.Graph
	// Paths[i] is the path collection of edge i (G.Edges()[i]); each path
	// runs from the edge's U endpoint to its V endpoint.
	Paths [][][]graph.NodeID
	// Color[i] is the schedule class of edge i under a good cycle
	// colouring.
	Color []int
	// NumColors is the number of classes.
	NumColors int
	// Dilation is the longest path length (edges).
	Dilation int
	// Cong is the largest number of paths any single edge appears on.
	Cong int
	// K is the number of paths per edge.
	K int
}

// Build computes a k-FT cycle cover of g. It fails if some edge does not
// admit k edge-disjoint paths (i.e., g is not k edge-connected).
func Build(g *graph.Graph, k int) (*Cover, error) {
	c := &Cover{G: g, K: k}
	c.Paths = make([][][]graph.NodeID, g.M())
	edgeLoad := make(map[graph.Edge]int)
	for i, e := range g.Edges() {
		// The edge itself is one path; the rest avoid it.
		paths := [][]graph.NodeID{{e.U, e.V}}
		rest := g.RemoveEdges([]graph.Edge{e}).EdgeDisjointPaths(e.U, e.V, k-1)
		if len(rest) < k-1 {
			return nil, fmt.Errorf("cyclecover: edge %v admits only %d+1 disjoint paths, want %d", e, len(rest), k)
		}
		paths = append(paths, rest...)
		c.Paths[i] = paths
		for _, p := range paths {
			if len(p)-1 > c.Dilation {
				c.Dilation = len(p) - 1
			}
			for j := 0; j+1 < len(p); j++ {
				edgeLoad[graph.NewEdge(p[j], p[j+1])]++
			}
		}
	}
	for _, l := range edgeLoad {
		if l > c.Cong {
			c.Cong = l
		}
	}
	c.colorize()
	return c, nil
}

// colorize greedily colours the path-conflict graph (Lemma 5.2): two edges
// conflict when their path collections share a graph edge.
func (c *Cover) colorize() {
	m := c.G.M()
	// usedBy[edge] = list of cover-edges whose paths use it.
	usedBy := make(map[graph.Edge][]int)
	for i, paths := range c.Paths {
		seen := make(map[graph.Edge]bool)
		for _, p := range paths {
			for j := 0; j+1 < len(p); j++ {
				e := graph.NewEdge(p[j], p[j+1])
				if !seen[e] {
					usedBy[e] = append(usedBy[e], i)
					seen[e] = true
				}
			}
		}
	}
	adj := make([]map[int]bool, m)
	for i := range adj {
		adj[i] = make(map[int]bool)
	}
	for _, group := range usedBy {
		for a := 0; a < len(group); a++ {
			for b := a + 1; b < len(group); b++ {
				adj[group[a]][group[b]] = true
				adj[group[b]][group[a]] = true
			}
		}
	}
	c.Color = make([]int, m)
	for i := range c.Color {
		c.Color[i] = -1
	}
	for i := 0; i < m; i++ {
		used := make(map[int]bool)
		for nb := range adj[i] {
			if c.Color[nb] >= 0 {
				used[c.Color[nb]] = true
			}
		}
		col := 0
		for used[col] {
			col++
		}
		c.Color[i] = col
		if col+1 > c.NumColors {
			c.NumColors = col + 1
		}
	}
}

// VerifyColoring checks the Lemma 5.2 property: same-coloured edges have
// edge-disjoint path collections.
func (c *Cover) VerifyColoring() error {
	owner := make(map[[2]int]int) // (color, edge-as-index) -> cover edge
	for i, paths := range c.Paths {
		col := c.Color[i]
		for _, p := range paths {
			for j := 0; j+1 < len(p); j++ {
				e := c.G.EdgeIndex(p[j], p[j+1])
				key := [2]int{col, e}
				if prev, clash := owner[key]; clash && prev != i {
					return fmt.Errorf("cyclecover: colour %d shared by edges %d and %d on edge %d", col, prev, i, e)
				}
				owner[key] = i
			}
		}
	}
	return nil
}
