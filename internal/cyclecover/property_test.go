package cyclecover

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mobilecongest/internal/graph"
)

// TestCoverInvariantsQuick: on random circulants, covers satisfy
// Definition 8 — k edge-disjoint u-v paths per edge including the edge
// itself — and the colouring is always good.
func TestCoverInvariantsQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(6)
		c := 2
		if n <= 2*c {
			return true
		}
		g := graph.Circulant(n, c)
		k := 3 // 2f+1 for f=1; connectivity 4 suffices
		cover, err := Build(g, k)
		if err != nil {
			return false
		}
		for i, e := range g.Edges() {
			paths := cover.Paths[i]
			if len(paths) != k {
				return false
			}
			hasDirect := false
			used := make(map[graph.Edge]bool)
			for _, p := range paths {
				if p[0] != e.U || p[len(p)-1] != e.V {
					return false
				}
				if len(p) == 2 {
					hasDirect = true
				}
				for j := 0; j+1 < len(p); j++ {
					pe := graph.NewEdge(p[j], p[j+1])
					if used[pe] || !g.HasEdge(p[j], p[j+1]) {
						return false
					}
					used[pe] = true
				}
			}
			if !hasDirect {
				return false
			}
		}
		return cover.VerifyColoring() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// TestDilationCongBounds: measured dilation and cong never exceed the
// structural worst cases on small cliques.
func TestDilationCongBounds(t *testing.T) {
	for _, n := range []int{5, 6, 8} {
		g := graph.Clique(n)
		cover, err := Build(g, n-1)
		if err != nil {
			t.Fatal(err)
		}
		if cover.Dilation > 3 {
			t.Fatalf("clique(%d) dilation %d, expected <= 3", n, cover.Dilation)
		}
		if cover.Cong > 2*(n-1) {
			t.Fatalf("clique(%d) cong %d too high", n, cover.Cong)
		}
	}
}
