package ccpath

import (
	"math/rand"
	"testing"

	"mobilecongest/internal/adversary"
	"mobilecongest/internal/algorithms"
	"mobilecongest/internal/congest"
	"mobilecongest/internal/cyclecover"
	"mobilecongest/internal/graph"
)

func buildShared(t *testing.T, g *graph.Graph, k int) *Shared {
	t.Helper()
	c, err := cyclecover.Build(g, k)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.VerifyColoring(); err != nil {
		t.Fatal(err)
	}
	return NewShared(c)
}

func TestCompileFaultFree(t *testing.T) {
	g := graph.Circulant(10, 2)
	sh := buildShared(t, g, 3)
	res, err := congest.Run(congest.Config{Graph: g, Seed: 1, Shared: sh, MaxRounds: 1 << 22},
		Compile(algorithms.FloodMax(g.Diameter()), 1))
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range res.Outputs {
		if o.(uint64) != uint64(g.N()-1) {
			t.Fatalf("node %d output %v", i, o)
		}
	}
	// Round envelope: r * NumColors * window.
	if want := g.Diameter() * sh.RoundsPerSimRound(1); res.Stats.Rounds != want {
		t.Fatalf("rounds = %d, want %d", res.Stats.Rounds, want)
	}
}

func TestCompileUnderMobileByzantine(t *testing.T) {
	g := graph.Circulant(10, 2)
	sh := buildShared(t, g, 3)
	for _, tc := range []struct {
		name string
		sel  adversary.Selector
		cor  adversary.Corruption
	}{
		{"random-flip", adversary.SelectRandom, adversary.CorruptFlip},
		{"busiest-randomize", adversary.SelectBusiest, adversary.CorruptRandomize},
		{"rotating-drop", adversary.SelectRotating, adversary.CorruptDrop},
	} {
		t.Run(tc.name, func(t *testing.T) {
			adv := adversary.NewMobileByzantine(g, 1, 5, tc.sel, tc.cor)
			res, err := congest.Run(congest.Config{Graph: g, Seed: 2, Shared: sh, Adversary: adv, MaxRounds: 1 << 22},
				Compile(algorithms.FloodMax(g.Diameter()), 1))
			if err != nil {
				t.Fatal(err)
			}
			for i, o := range res.Outputs {
				if o.(uint64) != uint64(g.N()-1) {
					t.Fatalf("node %d output %v", i, o)
				}
			}
		})
	}
}

func TestCompileF2(t *testing.T) {
	g := graph.Circulant(12, 3) // 6-edge-connected: k=5 paths
	sh := buildShared(t, g, 5)
	adv := adversary.NewMobileByzantine(g, 2, 7, adversary.SelectRandom, adversary.CorruptRandomize)
	res, err := congest.Run(congest.Config{Graph: g, Seed: 3, Shared: sh, Adversary: adv, MaxRounds: 1 << 23},
		Compile(algorithms.FloodMax(2), 2))
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range res.Outputs {
		if o.(uint64) != uint64(g.N()-1) {
			t.Fatalf("node %d output %v", i, o)
		}
	}
}

func TestCompileRejectsOverBudget(t *testing.T) {
	g := graph.Circulant(10, 2)
	sh := buildShared(t, g, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("f beyond cover capacity accepted")
		}
	}()
	Compile(algorithms.FloodMax(1), 5)(stub{sh: sh})
}

type stub struct{ sh *Shared }

func (s stub) ID() graph.NodeID          { return 0 }
func (s stub) N() int                    { return 10 }
func (s stub) Neighbors() []graph.NodeID { return nil }
func (s stub) Exchange(map[graph.NodeID]congest.Msg) map[graph.NodeID]congest.Msg {
	panic("unreachable")
}
func (s stub) Round() int       { return 0 }
func (s stub) Rand() *rand.Rand { return rand.New(rand.NewSource(1)) }
func (s stub) Input() []byte    { return nil }
func (s stub) SetOutput(any)    {}
func (s stub) Shared() any      { return s.sh }
