// Package ccpath implements the f-mobile-resilient compiler from FT cycle
// covers (Section 5, Theorem 5.5): every simulated round iterates the good
// colouring's classes; within a class, each edge's two directed messages are
// pipelined repeatedly over all k = 2f+1 disjoint paths, and the receiver
// takes the majority over all (path, arrival-time) copies (Lemma 5.6).
package ccpath

import (
	"fmt"

	"mobilecongest/internal/congest"
	"mobilecongest/internal/cyclecover"
	"mobilecongest/internal/graph"
	"mobilecongest/internal/vote"
)

// flow is one directed transmission: edge e's message from From to To,
// pipelined along Path (oriented From -> To).
type flow struct {
	edgeIdx int
	from    graph.NodeID
	path    []graph.NodeID
}

// hop is one node's role in a flow.
type hop struct {
	flowID int
	prev   graph.NodeID // -1 at the source
	next   graph.NodeID // -1 at the sink
}

// Shared is the compiler's preprocessing artifact: the cover plus per-node
// per-class routing tables.
type Shared struct {
	G     *graph.Graph
	Cover *cyclecover.Cover
	// hops[class][node] lists the node's roles in that class's flows.
	hops [][][]hop
	// flows[class] lists the class's flows.
	flows [][]flow
	// Payload is the payload protocol's own Shared artifact.
	Payload any
}

// NewShared builds routing tables from a cover.
func NewShared(c *cyclecover.Cover) *Shared {
	s := &Shared{G: c.G, Cover: c}
	s.hops = make([][][]hop, c.NumColors)
	s.flows = make([][]flow, c.NumColors)
	for cls := 0; cls < c.NumColors; cls++ {
		s.hops[cls] = make([][]hop, c.G.N())
	}
	for i, e := range c.G.Edges() {
		cls := c.Color[i]
		for _, p := range c.Paths[i] {
			// Two flows per path: U->V along p, V->U along the reverse.
			fwd := flow{edgeIdx: i, from: e.U, path: p}
			rev := make([]graph.NodeID, len(p))
			for j := range p {
				rev[j] = p[len(p)-1-j]
			}
			bwd := flow{edgeIdx: i, from: e.V, path: rev}
			for _, fl := range []flow{fwd, bwd} {
				id := len(s.flows[cls])
				s.flows[cls] = append(s.flows[cls], fl)
				for j, x := range fl.path {
					h := hop{flowID: id, prev: -1, next: -1}
					if j > 0 {
						h.prev = fl.path[j-1]
					}
					if j+1 < len(fl.path) {
						h.next = fl.path[j+1]
					}
					s.hops[cls][x] = append(s.hops[cls][x], h)
				}
			}
		}
	}
	return s
}

// WindowRounds is the per-class pipeline window (Lemma 5.6's
// 2f*dilation + dilation + 1).
func (s *Shared) WindowRounds(f int) int {
	return 2*f*s.Cover.Dilation + s.Cover.Dilation + 1
}

// RoundsPerSimRound is the physical cost of one simulated round.
func (s *Shared) RoundsPerSimRound(f int) int {
	return s.Cover.NumColors * s.WindowRounds(f)
}

// Compile wraps a payload protocol (messages <= 8 bytes) into an f-mobile-
// resilient protocol, for f <= (K-1)/2 of the cover. The run's Shared must
// be this package's *Shared.
func Compile(payload congest.Protocol, f int) congest.Protocol {
	return func(rt congest.Runtime) {
		sh, ok := rt.Shared().(*Shared)
		if !ok {
			panic("ccpath: run Config.Shared must be *ccpath.Shared")
		}
		if 2*f+1 > sh.Cover.K {
			panic(fmt.Sprintf("ccpath: cover has K=%d paths, cannot defend f=%d", sh.Cover.K, f))
		}
		sim := &simulator{rt: rt, pr: congest.Ports(rt), sh: sh, f: f}
		w := &congest.WrappedRuntime{Base: rt, ExchangeFn: sim.exchange, ShadowShared: sh.Payload}
		payload(w)
	}
}

type simulator struct {
	rt congest.Runtime
	pr congest.PortRuntime
	sh *Shared
	f  int
}

// exchange simulates one payload round (Theorem 5.5's per-round protocol).
// The pipelined window rounds run on the port boundary.
func (s *simulator) exchange(out map[graph.NodeID]congest.Msg) map[graph.NodeID]congest.Msg {
	pr := s.pr
	me := s.rt.ID()
	g := s.sh.G
	window := s.sh.WindowRounds(s.f)
	dilation := s.sh.Cover.Dilation
	result := make(map[graph.NodeID]congest.Msg)

	for cls := 0; cls < s.sh.Cover.NumColors; cls++ {
		myHops := s.sh.hops[cls][me]
		flows := s.sh.flows[cls]
		// relay[flowID] is the latest value received on the flow.
		relay := make(map[int]congest.Msg)
		// votes[flowID-of-incoming-edge][value] accumulates sink copies.
		votes := make(map[int]map[string]int)
		for t := 0; t < window; t++ {
			pout := pr.OutBuf()
			for _, h := range myHops {
				if h.next < 0 {
					continue
				}
				var m congest.Msg
				if h.prev < 0 {
					// Source: my payload message for this edge-direction
					// (explicit empty marker so silent edges still flood).
					fl := flows[h.flowID]
					e := g.Edges()[fl.edgeIdx]
					m = encodePayload(out[e.Other(me)])
				} else {
					m = relay[h.flowID]
				}
				if m == nil {
					continue
				}
				// One flow per directed edge within a class, so plain
				// concatenation order is stable: tag with flowID byte for
				// robustness against classes touching a node twice.
				p := pr.Port(h.next)
				pout[p] = appendFlowMsg(pout[p], h.flowID, m)
			}
			in := pr.ExchangePorts(pout)
			for _, h := range myHops {
				if h.prev < 0 {
					continue
				}
				p := pr.Port(h.prev)
				if p < 0 || in[p] == nil {
					continue
				}
				fm := extractFlowMsg(in[p], h.flowID)
				if fm == nil {
					continue
				}
				relay[h.flowID] = fm
				if h.next < 0 && t >= dilation-1 {
					if votes[h.flowID] == nil {
						votes[h.flowID] = make(map[string]int)
					}
					votes[h.flowID][string(fm)]++
				}
			}
		}
		// Majority over all copies across this class's incoming flows,
		// grouped per originating directed edge.
		perEdge := make(map[graph.NodeID]map[string]int)
		for flowID, vs := range votes {
			fl := flows[flowID]
			e := g.Edges()[fl.edgeIdx]
			if e.Other(fl.from) != me {
				continue
			}
			sender := fl.from
			if perEdge[sender] == nil {
				perEdge[sender] = make(map[string]int)
			}
			for val, c := range vs {
				perEdge[sender][val] += c
			}
		}
		for sender, vs := range perEdge {
			total := 0
			for _, c := range vs {
				total += c
			}
			best, bestCnt := vote.Winner(vs)
			if 2*bestCnt > total {
				if dec := decodePayload([]byte(best)); dec != nil {
					result[sender] = dec
				}
			}
		}
	}
	return result
}

// encodePayload marks presence so "no message" floods distinguishably.
func encodePayload(m congest.Msg) congest.Msg {
	if m == nil {
		return congest.Msg{0}
	}
	return append(congest.Msg{1}, m...)
}

// decodePayload returns nil for the explicit empty marker.
func decodePayload(b []byte) congest.Msg {
	if len(b) == 0 || b[0] == 0 {
		return nil
	}
	return congest.Msg(b[1:]).Clone()
}

// appendFlowMsg appends a (flowID, len, payload) section.
func appendFlowMsg(dst congest.Msg, flowID int, m congest.Msg) congest.Msg {
	dst = append(dst, byte(flowID>>8), byte(flowID), byte(len(m)))
	return append(dst, m...)
}

// extractFlowMsg finds the section for flowID (nil if absent/corrupt).
func extractFlowMsg(m congest.Msg, flowID int) congest.Msg {
	i := 0
	for i+3 <= len(m) {
		id := int(m[i])<<8 | int(m[i+1])
		l := int(m[i+2])
		i += 3
		if i+l > len(m) {
			return nil
		}
		if id == flowID {
			return congest.Msg(m[i : i+l]).Clone()
		}
		i += l
	}
	return nil
}
