package rewind

import (
	"mobilecongest/internal/congest"
	"mobilecongest/internal/graph"
	"mobilecongest/internal/resilient"
)

// Applications of Theorem 4.1 (Section 4.3).

// CliqueShared builds the Theorem 4.11 preprocessing: the congested clique's
// star packing, which needs no trusted computation. Any r-round clique
// algorithm compiled over it tolerates round-error rate Theta(n/log n).
func CliqueShared(n int) *resilient.Shared { return resilient.CliqueShared(n) }

// ExpanderShared builds the Theorem 4.12 preprocessing by running the
// padded-round distributed packing protocol under the round-error-rate
// adversary itself, exactly as Section 4.3 prescribes: each packing round is
// repeated pad times and receivers take majorities, so a bounded error rate
// cannot flip a colour that it does not dominate.
func ExpanderShared(g *graph.Graph, k, z, pad int, seed int64, adv congest.Adversary) (*resilient.Shared, int, error) {
	return resilient.ExpanderShared(g, k, z, pad, seed, adv)
}
