package rewind

import (
	"testing"

	"mobilecongest/internal/adversary"
	"mobilecongest/internal/algorithms"
	"mobilecongest/internal/congest"
	"mobilecongest/internal/graph"
	"mobilecongest/internal/resilient"
)

// TestTheorem411CliqueRoundErrorRate: the congested clique under a
// round-error-rate adversary, per Theorem 4.11.
func TestTheorem411CliqueRoundErrorRate(t *testing.T) {
	n := 10
	g := graph.Clique(n)
	sh := CliqueShared(n)
	inputs := algorithms.CliqueWeights(n, 3)
	want := algorithms.ReferenceMSTWeight(inputs)
	adv := adversary.NewRoundErrorRate(g, 3000, []int{2, 0, 1}, 7, adversary.SelectRandom, adversary.CorruptFlip)
	r := algorithms.MSTRounds(n)
	res, err := congest.Run(congest.Config{Graph: g, Seed: 2, Inputs: inputs, Shared: sh, Adversary: adv, MaxRounds: 1 << 24},
		Compile(algorithms.MSTClique(), Config{R: r, F: 1, Rep: 5}))
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range res.Outputs {
		if o.(Output).Payload.(uint64) != want {
			t.Fatalf("node %d MST weight %v, want %d", i, o.(Output).Payload, want)
		}
	}
}

// TestTheorem412ExpanderRoundErrorRate: the full Section 4.3 pipeline —
// padded packing computation under the round-error-rate adversary, then the
// rewind compiler on top.
func TestTheorem412ExpanderRoundErrorRate(t *testing.T) {
	g := resilient.RandomExpander(30, 16, 13)
	adv := adversary.NewRoundErrorRate(g, 500, []int{1}, 5, adversary.SelectRandom, adversary.CorruptFlip)
	sh, packRounds, err := ExpanderShared(g, 3, 10, 7, 5, adv)
	if err != nil {
		t.Fatal(err)
	}
	if packRounds <= 0 {
		t.Fatal("packing phase took no rounds")
	}
	stats := sh.Packing.Validate(g, 10)
	if stats.GoodTrees < 2 {
		t.Fatalf("only %d/3 good trees under round-error-rate packing", stats.GoodTrees)
	}
	r := 2
	adv2 := adversary.NewRoundErrorRate(g, 2000, []int{1}, 9, adversary.SelectRandom, adversary.CorruptRandomize)
	res, err := congest.Run(congest.Config{Graph: g, Seed: 6, Shared: sh, Adversary: adv2, MaxRounds: 1 << 24},
		Compile(algorithms.FloodMax(r), Config{R: r, F: 1, Rep: 5}))
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range res.Outputs {
		if o.(Output).Payload.(uint64) != uint64(g.N()-1) {
			t.Fatalf("node %d output %v", i, o.(Output).Payload)
		}
	}
}
