package rewind

import (
	"math/rand"
	"testing"

	"mobilecongest/internal/congest"
	"mobilecongest/internal/graph"
	"mobilecongest/internal/resilient"
	"mobilecongest/internal/treepack"
)

// stubRT is a Runtime whose Exchange must never be reached (replay serves
// all rounds from transcripts and aborts at the capture round).
type stubRT struct {
	id  graph.NodeID
	nbs []graph.NodeID
	sh  *resilient.Shared
}

func (s stubRT) ID() graph.NodeID          { return s.id }
func (s stubRT) N() int                    { return 3 }
func (s stubRT) Neighbors() []graph.NodeID { return s.nbs }
func (s stubRT) Exchange(map[graph.NodeID]congest.Msg) map[graph.NodeID]congest.Msg {
	panic("replay must not touch the network")
}
func (s stubRT) Round() int       { return 0 }
func (s stubRT) Rand() *rand.Rand { return rand.New(rand.NewSource(7)) }
func (s stubRT) Input() []byte    { return congest.PutU64(nil, 5) }
func (s stubRT) SetOutput(any)    {}
func (s stubRT) Shared() any      { return s.sh }

func newStubSim() *rewindSim {
	g := graph.Path(3)
	p := &treepack.Packing{Root: 0, Trees: []*treepack.Tree{treepack.NewTree(3, 0)}}
	sh := resilient.NewShared(g, p)
	rt := stubRT{id: 1, nbs: []graph.NodeID{0, 2}, sh: sh}
	return newRewindSim(rt, Config{R: 3, F: 1}.withDefaults(), sh)
}

// echoPayload sends (received-from-0 + own input) each round.
func echoPayload(rt congest.Runtime) {
	acc := congest.U64(rt.Input())
	for r := 0; r < 3; r++ {
		out := map[graph.NodeID]congest.Msg{}
		for _, v := range rt.Neighbors() {
			out[v] = congest.U64Msg(acc)
		}
		in := rt.Exchange(out)
		if m, ok := in[0]; ok {
			acc += congest.U64(m)
		}
	}
	rt.SetOutput(acc)
}

func TestReplayCapturesRoundOutbox(t *testing.T) {
	s := newStubSim()
	// Round 0: payload sends its input value (5) to both neighbours.
	out, _, done := s.replay(echoPayload, 0)
	if done {
		t.Fatal("payload reported done at round 0")
	}
	for _, v := range []graph.NodeID{0, 2} {
		e, ok := out[v]
		if !ok || !e.present || e.data != 5 || e.length != 8 {
			t.Fatalf("round-0 outbox to %d = %+v", v, e)
		}
	}
}

func TestReplayUsesCommittedTranscripts(t *testing.T) {
	s := newStubSim()
	// Commit round 0: received 10 from node 0, nothing from node 2.
	s.piIn[0] = []entry{{present: true, data: 10, length: 8}}
	s.piIn[2] = []entry{{present: false}}
	s.pi[0] = []entry{{present: true, data: 5, length: 8}}
	s.pi[2] = []entry{{present: true, data: 5, length: 8}}
	out, _, _ := s.replay(echoPayload, 1)
	// Round 1 output = 5 + 10.
	if e := out[0]; !e.present || e.data != 15 {
		t.Fatalf("round-1 outbox = %+v, want 15", e)
	}
}

func TestReplayDeterministic(t *testing.T) {
	s := newStubSim()
	s.piIn[0] = []entry{{present: true, data: 3, length: 8}}
	s.piIn[2] = []entry{{present: false}}
	s.pi[0] = []entry{{present: true, data: 5, length: 8}}
	s.pi[2] = []entry{{present: true, data: 5, length: 8}}
	a, _, _ := s.replay(echoPayload, 1)
	b, _, _ := s.replay(echoPayload, 1)
	for _, v := range []graph.NodeID{0, 2} {
		if a[v] != b[v] {
			t.Fatalf("replay not deterministic at %d: %+v vs %+v", v, a[v], b[v])
		}
	}
}

func TestReplayTerminationDetected(t *testing.T) {
	s := newStubSim()
	// Full 3-round transcript: replay to round 3 runs the payload to
	// completion.
	for r := 0; r < 3; r++ {
		s.piIn[0] = append(s.piIn[0], entry{present: true, data: 1, length: 8})
		s.piIn[2] = append(s.piIn[2], entry{present: false})
		s.pi[0] = append(s.pi[0], entry{present: true, data: 5, length: 8})
		s.pi[2] = append(s.pi[2], entry{present: true, data: 5, length: 8})
	}
	out, result, done := s.replay(echoPayload, 3)
	if !done {
		t.Fatal("payload not done after full transcript")
	}
	if len(out) != 0 {
		t.Fatalf("done payload still has outbox %v", out)
	}
	if result.(uint64) != 5+3 {
		t.Fatalf("payload output = %v, want 8", result)
	}
}

func TestEntryWordsRoundTrip(t *testing.T) {
	for _, e := range []entry{{present: true, data: 0xDEADBEEF, length: 8}, {present: false}} {
		m := unpackEntry(e)
		if e.present {
			back := packMsg(m)
			if back != e {
				t.Fatalf("entry round trip: %+v -> %+v", e, back)
			}
		} else if len(m) != 0 {
			t.Fatal("absent entry unpacked to non-empty message")
		}
	}
}
