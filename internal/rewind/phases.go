package rewind

import (
	"math/rand"
	"sort"

	"mobilecongest/internal/congest"
	"mobilecongest/internal/graph"
	"mobilecongest/internal/resilient"
	"mobilecongest/internal/rsim"
	"mobilecongest/internal/sketch"
	"mobilecongest/internal/vote"
)

// --- payload replay ---

// stopReplay unwinds the payload goroutine once the wanted round's outbox is
// captured.
type stopReplay struct{}

// replayRuntime feeds the payload its incoming transcripts and captures the
// outbox of round `stopAt`.
type replayRuntime struct {
	congest.Runtime
	sim      *rewindSim
	seed     int64
	round    int
	stopAt   int
	captured map[graph.NodeID]congest.Msg
	rng      *rand.Rand
	output   any
	done     bool
}

// Rand returns the replay-stable payload randomness.
func (r *replayRuntime) Rand() *rand.Rand { return r.rng }

// Round returns the simulated round.
func (r *replayRuntime) Round() int { return r.round }

// Shared exposes the payload's own artifact.
func (r *replayRuntime) Shared() any { return r.sim.sh.Payload }

// SetOutput captures the payload output.
func (r *replayRuntime) SetOutput(v any) { r.output = v }

// Exchange serves transcript rounds locally and captures the stop round.
func (r *replayRuntime) Exchange(out map[graph.NodeID]congest.Msg) map[graph.NodeID]congest.Msg {
	if r.round == r.stopAt {
		r.captured = out
		panic(stopReplay{})
	}
	in := make(map[graph.NodeID]congest.Msg)
	for _, v := range r.sim.rt.Neighbors() {
		t := r.sim.piIn[v]
		if r.round < len(t) && t[r.round].present {
			in[v] = unpackEntry(t[r.round])
		}
	}
	r.round++
	return in
}

func unpackEntry(e entry) congest.Msg {
	m := make(congest.Msg, e.length)
	v := e.data
	for i := e.length - 1; i >= 0; i-- {
		m[i] = byte(v)
		v >>= 8
	}
	return m
}

func packMsg(m congest.Msg) entry {
	var v uint64
	l := len(m)
	if l > 8 {
		l = 8
	}
	for i := 0; i < l; i++ {
		v = v<<8 | uint64(m[i])
	}
	return entry{present: true, data: v, length: l}
}

// replay re-runs the payload against the committed transcripts and returns
// the outbox it would send in round gamma (empty if the payload terminates
// first), plus its output and termination flag.
func (s *rewindSim) replay(payload congest.Protocol, gamma int) (map[graph.NodeID]entry, any, bool) {
	rr := &replayRuntime{
		Runtime: s.rt,
		sim:     s,
		stopAt:  gamma,
		rng:     rand.New(rand.NewSource(s.payloadSeed)),
	}
	func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(stopReplay); !ok {
					panic(r)
				}
			}
		}()
		payload(rr)
		rr.done = true
	}()
	out := make(map[graph.NodeID]entry, len(rr.captured))
	for v, m := range rr.captured {
		if len(m) > 8 {
			panic("rewind: payload message exceeds 8 bytes")
		}
		out[v] = packMsg(m)
	}
	return out, rr.output, rr.done
}

// --- round-initialization phase ---

// initMsg is the paper's M_i(u,v) tuple.
type initMsg struct {
	present bool
	data    uint64
	length  uint64
	seed    uint64
	hash    uint64
	gamma   uint64
}

const initWords = 4

func (m initMsg) encode() []uint64 {
	w3 := m.length & 0xF << 48
	if m.present {
		w3 |= 1 << 56
	}
	w3 |= m.gamma & 0xFFFFFFFF
	return []uint64{m.data, m.seed, m.hash, w3}
}

func decodeInitMsg(w []uint64) initMsg {
	var m initMsg
	if len(w) < initWords {
		return m
	}
	m.data = w[0]
	m.seed = w[1]
	m.hash = w[2]
	m.present = w[3]>>56&1 == 1
	m.length = w[3] >> 48 & 0xF
	m.gamma = w[3] & 0xFFFFFFFF
	return m
}

// roundInit repeats the init tuple InitRep times per neighbour and majority-
// votes per word position (per-word voting matches the word-level
// correction that follows).
func (s *rewindSim) roundInit(nextOut map[graph.NodeID]entry, seed uint64, myHash map[graph.NodeID]uint64, gamma int, done bool) map[graph.NodeID]initMsg {
	pr := congest.Ports(s.rt)
	nbs := s.rt.Neighbors()
	outMsgs := make([]congest.Msg, len(nbs)) // per port
	for p, v := range nbs {
		m := initMsg{seed: seed, hash: myHash[v], gamma: uint64(gamma)}
		if e, ok := nextOut[v]; ok && e.present && !done {
			m.present = true
			m.data = e.data
			m.length = uint64(e.length)
		}
		enc := m.encode()
		s.lastInitSent[v] = enc
		var buf congest.Msg
		for _, w := range enc {
			buf = congest.PutU64(buf, w)
		}
		outMsgs[p] = buf
	}
	votes := make([][initWords]map[uint64]int, len(nbs))
	for p := range votes {
		for i := range votes[p] {
			votes[p][i] = make(map[uint64]int)
		}
	}
	var ws []uint64
	for r := 0; r < s.cfg.InitRep; r++ {
		out := pr.OutBuf()
		for p, m := range outMsgs {
			out[p] = m.Clone()
		}
		in := pr.ExchangePorts(out)
		for p, m := range in {
			if m == nil {
				continue
			}
			ws = congest.AppendWords64(ws[:0], m)
			for i := 0; i < initWords && i < len(ws); i++ {
				votes[p][i][ws[i]]++
			}
		}
	}
	result := make(map[graph.NodeID]initMsg, len(nbs))
	for p, v := range nbs {
		var ws [initWords]uint64
		for i := 0; i < initWords; i++ {
			ws[i], _ = vote.Winner(votes[p][i])
		}
		result[v] = decodeInitMsg(ws[:])
	}
	return result
}

// --- message-correcting phase (Lemma 4.2) ---

// corrWord identifies one word of one directed init tuple.
func corrWordIndex(g *graph.Graph, from, to graph.NodeID, word int) uint32 {
	ei := g.EdgeIndex(from, to)
	d := uint32(0)
	if from > to {
		d = 1
	}
	return uint32(ei)<<5 | uint32(word&0xF)<<1 | d
}

// messageCorrect runs the d-message-correction procedure on the word-level
// view of the init tuples: sent words stream with +1, received (voted)
// words with -1; the sparse-recovery pipeline of Section 3 recovers and
// broadcasts the corrections.
func (s *rewindSim) messageCorrect(recv map[graph.NodeID]initMsg) map[graph.NodeID]initMsg {
	me := s.rt.ID()
	nbs := s.rt.Neighbors()
	k := len(s.trees)
	sparsity := 8*s.cfg.F + 8

	// Broadcast the iteration seed from the packing root.
	var seedMsg []byte
	if s.isRoot() {
		seedMsg = congest.PutU64(nil, s.rt.Rand().Uint64())
	}
	seedPlan := resilient.NewECCPlan(k, 8)
	seedBytes, seedOK := resilient.ECCSafeBroadcast(s.rt, s.trees, seedPlan, seedMsg, s.depth, s.cfg.Rep)
	seed := congest.U64(seedBytes)

	// The word stream: what I sent this phase (re-encoded) and what I
	// received after voting.
	stream := func(upd func(e sketch.Elem, f int64)) {
		for _, v := range nbs {
			sentWords := s.lastInitSent[v]
			for w, val := range sentWords {
				upd(sketch.Pack(corrWordIndex(s.sh.G, me, v, w), val), 1)
			}
			rw := recv[v].encode()
			for w, val := range rw {
				upd(sketch.Pack(corrWordIndex(s.sh.G, v, me, w), val), -1)
			}
		}
	}
	locals := make([][]byte, k)
	for j := 0; j < k; j++ {
		r := sketch.NewRecovery(sketch.XorFold(seed, uint64(j)+1), sparsity)
		stream(r.Update)
		locals[j] = r.Encode()
	}
	merge := func(j int, a, b []byte) []byte {
		ra := sketch.DecodeRecovery(sketch.XorFold(seed, uint64(j)+1), sparsity, a)
		rb := sketch.DecodeRecovery(sketch.XorFold(seed, uint64(j)+1), sparsity, b)
		ra.Merge(rb)
		return ra.Encode()
	}
	rootAggs := rsim.ConvergecastUp(s.rt, s.trees, locals, merge, s.depth, s.cfg.Rep)

	// Root: decode per tree, majority across trees, broadcast.
	type fix struct {
		idx  uint32
		data uint64
	}
	var corrMsg []byte
	if s.isRoot() && seedOK {
		votes := make(map[string]int)
		for j, agg := range rootAggs {
			if agg == nil {
				continue
			}
			r := sketch.DecodeRecovery(sketch.XorFold(seed, uint64(j)+1), sparsity, agg)
			items, ok := r.Decode()
			if !ok {
				continue
			}
			votes[string(encodeFixes(items))]++
		}
		best, bestCnt := vote.Winner(votes)
		if 2*bestCnt > k {
			corrMsg = []byte(best)
		} else {
			corrMsg = encodeFixes(nil)
		}
	} else if s.isRoot() {
		corrMsg = encodeFixes(nil)
	}
	plan := resilient.NewECCPlan(k, 2+12*(sparsity))
	got, ok := resilient.ECCSafeBroadcast(s.rt, s.trees, plan, corrMsg, s.depth, s.cfg.Rep)
	out := make(map[graph.NodeID]initMsg, len(nbs))
	for v, m := range recv {
		out[v] = m
	}
	if !ok {
		return out
	}
	// Apply plus-entries addressed to me: replace the voted word.
	words := make(map[graph.NodeID][initWords]uint64, len(nbs))
	for _, v := range nbs {
		var ws [initWords]uint64
		copy(ws[:], out[v].encode())
		words[v] = ws
	}
	for _, f := range decodeFixes(got) {
		ei := int(f.idx >> 5)
		word := int(f.idx >> 1 & 0xF)
		dirBit := int(f.idx & 1)
		if ei < 0 || ei >= s.sh.G.M() || word >= initWords {
			continue
		}
		edge := s.sh.G.Edges()[ei]
		from, to := edge.U, edge.V
		if dirBit == 1 {
			from, to = edge.V, edge.U
		}
		if to != me {
			continue
		}
		ws := words[from]
		ws[word] = f.data
		words[from] = ws
	}
	for _, v := range nbs {
		ws := words[v]
		out[v] = decodeInitMsg(ws[:])
	}
	return out
}

type fixItem struct {
	idx  uint32
	data uint64
}

func encodeFixes(items []sketch.Item) []byte {
	var fixes []fixItem
	for _, it := range items {
		if it.Freq <= 0 {
			continue // only the true (positive) words repair estimates
		}
		idx, payload := it.E.Unpack()
		fixes = append(fixes, fixItem{idx: idx, data: payload})
	}
	sort.Slice(fixes, func(i, j int) bool {
		if fixes[i].idx != fixes[j].idx {
			return fixes[i].idx < fixes[j].idx
		}
		return fixes[i].data < fixes[j].data
	})
	out := []byte{byte(len(fixes) >> 8), byte(len(fixes))}
	for _, f := range fixes {
		out = congest.PutU32(out, f.idx)
		out = congest.PutU64(out, f.data)
	}
	return out
}

func decodeFixes(b []byte) []fixItem {
	if len(b) < 2 {
		return nil
	}
	n := int(b[0])<<8 | int(b[1])
	var out []fixItem
	off := 2
	for i := 0; i < n && off+12 <= len(b); i++ {
		out = append(out, fixItem{idx: congest.U32(b[off:]), data: congest.U64(b[off+4:])})
		off += 12
	}
	return out
}

func (s *rewindSim) isRoot() bool {
	for _, tv := range s.trees {
		if tv.Depth == 0 {
			return true
		}
	}
	return false
}

// --- rewind-if-error phase ---

// aggregateState computes GoodState = AND over nodes and maxLen = max over
// nodes, via per-tree upcast+downcast with across-tree majority at every
// node (the Pi_j protocols of Section 4.1).
func (s *rewindSim) aggregateState(goodLocal, myLen uint64) (good uint64, maxLen uint64) {
	k := len(s.trees)
	locals := make([][]byte, k)
	enc := congest.PutU64(congest.PutU64(nil, goodLocal), myLen)
	for j := 0; j < k; j++ {
		locals[j] = enc
	}
	merge := func(_ int, a, b []byte) []byte {
		ga, la := congest.U64(a), congest.U64(a[8:])
		gb, lb := congest.U64(b), congest.U64(b[8:])
		g := ga
		if gb < g {
			g = gb
		}
		l := la
		if lb > l {
			l = lb
		}
		return congest.PutU64(congest.PutU64(nil, g), l)
	}
	rootAggs := rsim.ConvergecastUp(s.rt, s.trees, locals, merge, s.depth, s.cfg.Rep)
	got := rsim.BroadcastDown(s.rt, s.trees, rootAggs, s.depth, s.cfg.Rep)
	votes := make(map[[2]uint64]int)
	for _, m := range got {
		if len(m) >= 16 {
			votes[[2]uint64{congest.U64(m), congest.U64(m[8:])}]++
		}
	}
	best, bestCnt := vote.WinnerFunc(votes, func(a, b [2]uint64) bool {
		return a[0] < b[0] || (a[0] == b[0] && a[1] < b[1])
	})
	if 2*bestCnt <= k {
		// No majority: treat as a bad state (forces a conservative hold).
		return 0, myLen + 1
	}
	return best[0], best[1]
}
