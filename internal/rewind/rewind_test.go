package rewind

import (
	"testing"

	"mobilecongest/internal/adversary"
	"mobilecongest/internal/algorithms"
	"mobilecongest/internal/congest"
	"mobilecongest/internal/graph"
	"mobilecongest/internal/resilient"
)

func runRewind(t *testing.T, g *graph.Graph, sh *resilient.Shared, adv congest.Adversary, seed int64, inputs [][]byte, payload congest.Protocol, cfg Config) *congest.Result {
	t.Helper()
	res, err := congest.Run(congest.Config{
		Graph:     g,
		Seed:      seed,
		Adversary: adv,
		Inputs:    inputs,
		Shared:    sh,
		MaxRounds: 1 << 22,
	}, Compile(payload, cfg))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRewindFaultFree(t *testing.T) {
	n := 8
	g := graph.Clique(n)
	sh := resilient.CliqueShared(n)
	res := runRewind(t, g, sh, nil, 1, nil, algorithms.FloodMax(2), Config{R: 2, F: 1, Rep: 3})
	for i, o := range res.Outputs {
		out := o.(Output)
		if out.Payload.(uint64) != uint64(n-1) {
			t.Fatalf("node %d payload output %v", i, out.Payload)
		}
		if out.Trace.Rewinds != 0 {
			t.Fatalf("node %d rewound %d times in a fault-free run", i, out.Trace.Rewinds)
		}
	}
}

func TestRewindTranscriptGrowsMonotonically(t *testing.T) {
	n := 8
	g := graph.Clique(n)
	sh := resilient.CliqueShared(n)
	res := runRewind(t, g, sh, nil, 2, nil, algorithms.FloodMax(3), Config{R: 3, F: 1, Rep: 3})
	tr := res.Outputs[0].(Output).Trace
	for i := 1; i < len(tr.Lens); i++ {
		if tr.Lens[i] < tr.Lens[i-1] {
			t.Fatalf("fault-free transcript shrank at %d: %v", i, tr.Lens)
		}
	}
	if tr.Lens[len(tr.Lens)-1] < 3 {
		t.Fatalf("final transcript length %d < R", tr.Lens[len(tr.Lens)-1])
	}
}

func TestRewindUnderSteadyCorruption(t *testing.T) {
	n := 10
	g := graph.Clique(n)
	sh := resilient.CliqueShared(n)
	// Round-error-rate adversary: bursts of 2 every round within a total
	// budget sized to the run length.
	adv := adversary.NewRoundErrorRate(g, 1<<30, []int{1}, 7, adversary.SelectRandom, adversary.CorruptFlip)
	res := runRewind(t, g, sh, adv, 3, nil, algorithms.FloodMax(2), Config{R: 2, F: 1, Rep: 5})
	for i, o := range res.Outputs {
		if o.(Output).Payload.(uint64) != uint64(n-1) {
			t.Fatalf("node %d output %v under steady corruption", i, o.(Output).Payload)
		}
	}
}

func TestRewindUnderBursts(t *testing.T) {
	// The defining Section-4 scenario: quiet most rounds, then a burst far
	// above f — the compiler must rewind through it.
	n := 10
	g := graph.Clique(n)
	sh := resilient.CliqueShared(n)
	burst := []int{0, 0, 0, 0, 0, 0, 0, 12, 12, 0}
	adv := adversary.NewRoundErrorRate(g, 400, burst, 9, adversary.SelectRandom, adversary.CorruptRandomize)
	res := runRewind(t, g, sh, adv, 4, nil, algorithms.FloodMax(2), Config{R: 2, F: 2, Rep: 5})
	for i, o := range res.Outputs {
		if o.(Output).Payload.(uint64) != uint64(n-1) {
			t.Fatalf("node %d output %v under bursts", i, o.(Output).Payload)
		}
	}
}

func TestRewindTokenRingOrderSensitive(t *testing.T) {
	n := 8
	g := graph.Clique(n)
	sh := resilient.CliqueShared(n)
	clean, err := congest.Run(congest.Config{Graph: g, Seed: 5}, algorithms.TokenRing(3))
	if err != nil {
		t.Fatal(err)
	}
	adv := adversary.NewRoundErrorRate(g, 200, []int{1}, 11, adversary.SelectBusiest, adversary.CorruptFlip)
	res := runRewind(t, g, sh, adv, 5, nil, algorithms.TokenRing(3), Config{R: 3, F: 1, Rep: 5})
	for i := range res.Outputs {
		if res.Outputs[i].(Output).Payload != clean.Outputs[i] {
			t.Fatalf("node %d trace diverged", i)
		}
	}
}

func TestRewindPotentialBound(t *testing.T) {
	// Theorem 4.1's accounting: with 5R global rounds, at most R of them
	// bad, the final transcript must reach R. Verify on a run with
	// moderate corruption.
	n := 8
	g := graph.Clique(n)
	sh := resilient.CliqueShared(n)
	adv := adversary.NewRoundErrorRate(g, 300, []int{1, 0, 2}, 13, adversary.SelectRandom, adversary.CorruptFlip)
	r := 3
	res := runRewind(t, g, sh, adv, 6, nil, algorithms.FloodMax(r), Config{R: r, F: 1, Rep: 5})
	for i, o := range res.Outputs {
		tr := o.(Output).Trace
		final := tr.Lens[len(tr.Lens)-1]
		if final < r {
			t.Fatalf("node %d final transcript %d < R=%d (lens %v)", i, final, r, tr.Lens)
		}
	}
}
