// Package rewind implements Section 4 of the paper: resilience to a bounded
// round-error *rate*, where the adversary corrupts at most f edges per round
// on average and may burst far beyond f in single rounds. The compiler runs
// r' = 5r global rounds, each with three phases:
//
//   - Round-Initialization: every node repeats, 2t times, its next payload
//     message together with a fresh fingerprint seed, the fingerprint of its
//     received transcript, and the transcript length; receivers majority-vote.
//   - Message-Correcting: the d-message-correction procedure of Lemma 4.2
//     (sparse-recovery sketches over the tree packing) repairs up to d = O(f)
//     surviving mismatches.
//   - Rewind-If-Error: transcript fingerprints are compared; the global
//     AND of "my transcripts check out" and the global maximum transcript
//     length are aggregated over every tree (RS-compiled, majority across
//     trees), and nodes extend, hold, or rewind their transcripts.
//
// The potential Phi(i) = min prefix agreement - max transcript length gains
// at least 1 in good global rounds and loses at most 3 in bad ones
// (Lemmas 4.4/4.9), so 5r global rounds guarantee r correct simulated rounds.
package rewind

import (
	"mobilecongest/internal/congest"
	"mobilecongest/internal/graph"
	"mobilecongest/internal/hashfam"
	"mobilecongest/internal/resilient"
	"mobilecongest/internal/rsim"
)

// Config parameterizes the rewind compiler.
type Config struct {
	// R is the payload's exact round count.
	R int
	// F is the average per-round corruption budget to defend against.
	F int
	// Rep is the slot repetition for tree subprotocols (t_RS).
	Rep int
	// InitRep is the repetition count of the round-initialization phase
	// (the paper's 2t); defaults to a multiple of Rep.
	InitRep int
	// GlobalRounds overrides the 5R default (useful in experiments).
	GlobalRounds int
}

func (c Config) withDefaults() Config {
	if c.Rep <= 0 {
		c.Rep = 5
	}
	if c.InitRep <= 0 {
		c.InitRep = 2 * c.Rep
	}
	if c.GlobalRounds <= 0 {
		c.GlobalRounds = 5 * c.R
	}
	return c
}

// Trace records one node's potential-relevant state per global round, for
// the F4 experiment.
type Trace struct {
	// Lens[i] is the node's transcript length after global round i.
	Lens []int
	// Rewinds counts DeleteLast events.
	Rewinds int
}

// Output bundles the payload output with the trace.
type Output struct {
	Payload any
	Trace   Trace
}

// Compile turns a payload protocol (messages <= 8 bytes, exchanging exactly
// cfg.R times at every node) into a protocol resilient to round-error rate
// cfg.F over the shared tree packing (Theorem 4.1). The run's Shared must
// be a *resilient.Shared.
func Compile(payload congest.Protocol, cfg Config) congest.Protocol {
	cfg = cfg.withDefaults()
	return func(rt congest.Runtime) {
		sh, ok := rt.Shared().(*resilient.Shared)
		if !ok {
			panic("rewind: run Config.Shared must be *resilient.Shared")
		}
		sim := newRewindSim(rt, cfg, sh)
		sim.run(payload)
	}
}

// entry is one transcript symbol: a received or sent message (possibly
// absent) for one neighbour in one simulated round.
type entry struct {
	present bool
	data    uint64
	length  int
}

func (e entry) words() []uint64 {
	p := uint64(0)
	if e.present {
		p = 1
	}
	return []uint64{p, e.data, uint64(e.length)}
}

type rewindSim struct {
	rt    congest.Runtime
	cfg   Config
	sh    *resilient.Shared
	trees []rsim.TreeView
	depth int

	// pi[v] is the outgoing transcript to neighbour v; piIn[v] the incoming
	// transcript estimate from v (the paper's pi and pi~).
	pi   map[graph.NodeID][]entry
	piIn map[graph.NodeID][]entry

	// payloadSeed makes payload replays deterministic.
	payloadSeed int64
	// lastInitSent records the init words sent in the current phase, the
	// "+1 side" of the correction stream.
	lastInitSent map[graph.NodeID][]uint64

	trace Trace
}

func newRewindSim(rt congest.Runtime, cfg Config, sh *resilient.Shared) *rewindSim {
	s := &rewindSim{
		rt:           rt,
		cfg:          cfg,
		sh:           sh,
		trees:        sh.Views[rt.ID()],
		depth:        rsim.MaxDepth(sh.Views),
		pi:           make(map[graph.NodeID][]entry),
		piIn:         make(map[graph.NodeID][]entry),
		payloadSeed:  rt.Rand().Int63(),
		lastInitSent: make(map[graph.NodeID][]uint64),
	}
	return s
}

// gamma is the node's current transcript length (Invariant 1 keeps all of a
// node's transcripts equal length).
func (s *rewindSim) gamma() int {
	for _, v := range s.rt.Neighbors() {
		return len(s.pi[v])
	}
	return 0
}

// run drives the payload as a restartable pure function of the incoming
// transcripts: the payload's i-th outgoing messages depend only on rounds
// < i of its incoming transcripts, so re-running it against the current
// transcripts (with a fixed per-node randomness seed) yields the messages
// the paper's "m_i(u,v) according to A given pi~" denotes.
func (s *rewindSim) run(payload congest.Protocol) {
	nbs := s.rt.Neighbors()
	for g := 0; g < s.cfg.GlobalRounds; g++ {
		gamma := s.gamma()
		// Compute next messages by replaying the payload against the
		// current incoming transcripts.
		nextOut, outputs, done := s.replay(payload, gamma)
		_ = outputs
		// --- Round-Initialization phase ---
		seed := s.rt.Rand().Uint64()
		myHash := s.transcriptHash(seed)
		initMsgs := s.roundInit(nextOut, seed, myHash, gamma, done)
		// --- Message-Correcting phase ---
		corrected := s.messageCorrect(initMsgs)
		// --- Rewind-If-Error phase ---
		goodLocal := uint64(1)
		for _, v := range nbs {
			c, okc := corrected[v]
			if !okc {
				goodLocal = 0
				continue
			}
			// Verify the sender's view of my outgoing transcript... the
			// paper checks |pi~| == l' and hash agreement.
			if int(c.gamma) != gamma {
				goodLocal = 0
				continue
			}
			want := hashfam.NewFingerprint(c.seed).Hash64(transcriptWords(s.piIn[v]))
			if want != c.hash {
				goodLocal = 0
			}
		}
		goodState, maxLen := s.aggregateState(goodLocal, uint64(gamma))
		switch {
		case goodState == 1:
			for _, v := range nbs {
				c := corrected[v]
				s.piIn[v] = append(s.piIn[v], entry{present: c.present, data: c.data, length: int(c.length)})
				s.pi[v] = append(s.pi[v], nextOut[v])
			}
		case goodState == 0 && gamma == int(maxLen) && gamma > 0:
			for _, v := range nbs {
				s.piIn[v] = s.piIn[v][:len(s.piIn[v])-1]
				s.pi[v] = s.pi[v][:len(s.pi[v])-1]
			}
			s.trace.Rewinds++
		}
		s.trace.Lens = append(s.trace.Lens, s.gamma())
	}
	// Final output: replay the payload one last time against the final
	// transcripts.
	_, out, _ := s.replay(payload, s.gamma())
	s.rt.SetOutput(Output{Payload: out, Trace: s.trace})
}

// transcriptHash fingerprints all outgoing transcripts under seed. The
// paper fingerprints per-edge; hashing each edge's transcript separately and
// sending per-neighbour values is what roundInit transmits.
func (s *rewindSim) transcriptHash(seed uint64) map[graph.NodeID]uint64 {
	out := make(map[graph.NodeID]uint64, len(s.rt.Neighbors()))
	f := hashfam.NewFingerprint(seed)
	for _, v := range s.rt.Neighbors() {
		out[v] = f.Hash64(transcriptWords(s.pi[v]))
	}
	return out
}

func transcriptWords(t []entry) []uint64 {
	var w []uint64
	for _, e := range t {
		w = append(w, e.words()...)
	}
	return w
}
