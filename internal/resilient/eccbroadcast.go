// Package resilient implements Section 3 of the paper: f-mobile-resilient
// compilation of arbitrary CONGEST algorithms over a weak (k, D_TP, eta)
// tree packing. It contains ECCSafeBroadcast (Section 3.2.1), the
// sparse-recovery compiler of the technical overview (round overhead
// Õ(D_TP + f)) and the ℓ0-sampling compiler of Algorithm
// ImprovedMobileByzantineSim (Theorem 3.5), plus the clique, expander and
// general-graph applications (Theorems 1.6, 1.7, Corollary 3.9).
package resilient

import (
	"mobilecongest/internal/congest"
	"mobilecongest/internal/ecc"
	"mobilecongest/internal/gf"
	"mobilecongest/internal/rsim"
)

// eccField is the shared GF(2^16) instance for share encoding.
var eccField = gf.NewField16()

// ECCPlan fixes the parameters of one safe broadcast, known to all nodes in
// advance: the padded message size and the derived Reed-Solomon geometry.
// The root's message is padded to MsgBytes, split into ell = MsgBytes/2
// field symbols, encoded into k*w symbols, and tree j carries symbols
// [j*w, (j+1)*w). A tree corrupted anywhere destroys at most w consecutive
// symbols, so up to floor((k*w-ell)/(2w)) >= k/4 bad trees are tolerated.
type ECCPlan struct {
	K        int // number of trees
	MsgBytes int // padded message size (even)
	W        int // symbols per tree
}

// NewECCPlan derives the geometry for broadcasting messages up to maxBytes
// over a k-tree packing.
func NewECCPlan(k, maxBytes int) ECCPlan {
	if maxBytes%2 == 1 {
		maxBytes++
	}
	ell := maxBytes / 2
	if ell < 1 {
		ell = 1
	}
	w := (2*ell + k - 1) / k // ensures ell <= k*w/2
	return ECCPlan{K: k, MsgBytes: 2 * ell, W: w}
}

// Code instantiates the plan's Reed-Solomon code.
func (p ECCPlan) Code() (*ecc.Code, error) {
	return ecc.NewCode(eccField, p.K*p.W, p.MsgBytes/2)
}

// encodeShares pads msg to the plan size, RS-encodes it, and splits the
// codeword into per-tree shares of w symbols (2w bytes).
func (p ECCPlan) encodeShares(msg []byte) ([][]byte, error) {
	padded := make([]byte, p.MsgBytes)
	copy(padded, msg)
	symbols := make([]gf.Elem, p.MsgBytes/2)
	for i := range symbols {
		symbols[i] = gf.Elem(padded[2*i])<<8 | gf.Elem(padded[2*i+1])
	}
	code, err := p.Code()
	if err != nil {
		return nil, err
	}
	cw, err := code.Encode(symbols)
	if err != nil {
		return nil, err
	}
	shares := make([][]byte, p.K)
	for j := 0; j < p.K; j++ {
		sh := make([]byte, 2*p.W)
		for x := 0; x < p.W; x++ {
			s := cw[j*p.W+x]
			sh[2*x] = byte(s >> 8)
			sh[2*x+1] = byte(s)
		}
		shares[j] = sh
	}
	return shares, nil
}

// decodeShares reassembles the received per-tree shares (nil = missing) into
// the broadcast message; missing or corrupted trees appear as symbol errors
// for the RS decoder.
func (p ECCPlan) decodeShares(shares [][]byte) ([]byte, bool) {
	recv := make([]gf.Elem, p.K*p.W)
	for j := 0; j < p.K && j < len(shares); j++ {
		sh := shares[j]
		for x := 0; x < p.W; x++ {
			if 2*x+1 < len(sh) {
				recv[j*p.W+x] = gf.Elem(sh[2*x])<<8 | gf.Elem(sh[2*x+1])
			}
		}
	}
	code, err := p.Code()
	if err != nil {
		return nil, false
	}
	msgSyms, err := code.Decode(recv)
	if err != nil {
		return nil, false
	}
	out := make([]byte, p.MsgBytes)
	for i, s := range msgSyms {
		out[2*i] = byte(s >> 8)
		out[2*i+1] = byte(s)
	}
	return out, true
}

// ECCSafeBroadcast delivers the root's message to every node despite the
// mobile adversary: the root RS-encodes the (padded) message, each tree
// carries one share via the RS-compiled broadcast (rsim.BroadcastDown), and
// every node decodes the closest codeword (Lemma 3.6). Nodes other than the
// root pass msg=nil. Returns the decoded message and whether decoding
// succeeded. Must be invoked in lock-step by all nodes with identical plan,
// depthBound and rep.
func ECCSafeBroadcast(rt congest.Runtime, trees []rsim.TreeView, plan ECCPlan, msg []byte, depthBound, rep int) ([]byte, bool) {
	payloads := make([][]byte, len(trees))
	isRoot := false
	for _, tv := range trees {
		if tv.Depth == 0 {
			isRoot = true
			break
		}
	}
	if isRoot && msg != nil {
		shares, err := plan.encodeShares(msg)
		if err == nil {
			for j := range trees {
				if j < len(shares) {
					payloads[j] = shares[j]
				}
			}
		}
	}
	got := rsim.BroadcastDown(rt, trees, payloads, depthBound, rep)
	if isRoot && msg != nil {
		// The root already knows the message.
		padded := make([]byte, plan.MsgBytes)
		copy(padded, msg)
		return padded, true
	}
	return plan.decodeShares(got)
}
