package resilient

import (
	"math/rand"
	"testing"

	"mobilecongest/internal/adversary"
	"mobilecongest/internal/algorithms"
	"mobilecongest/internal/congest"
	"mobilecongest/internal/graph"
)

func TestECCPlanGeometry(t *testing.T) {
	p := NewECCPlan(16, 30)
	if p.MsgBytes != 30 {
		t.Fatalf("MsgBytes = %d, want 30", p.MsgBytes)
	}
	code, err := p.Code()
	if err != nil {
		t.Fatal(err)
	}
	// ell <= k*w/2 must hold so at least k/4 bad trees are tolerated.
	if 2*code.K() > code.N() {
		t.Fatalf("code rate too high: n=%d k=%d", code.N(), code.K())
	}
	if p.MsgBytes%2 != 0 {
		t.Fatal("MsgBytes must be even")
	}
	podd := NewECCPlan(8, 7)
	if podd.MsgBytes%2 != 0 {
		t.Fatal("odd maxBytes not rounded up")
	}
}

func TestECCShareRoundTrip(t *testing.T) {
	p := NewECCPlan(12, 26)
	msg := []byte("dominating-mismatch-list!!")
	shares, err := p.encodeShares(msg)
	if err != nil {
		t.Fatal(err)
	}
	if len(shares) != 12 {
		t.Fatalf("%d shares, want 12", len(shares))
	}
	// Clean decode.
	got, ok := p.decodeShares(shares)
	if !ok {
		t.Fatal("clean decode failed")
	}
	if string(got[:len(msg)]) != string(msg) {
		t.Fatalf("decoded %q", got)
	}
	// Corrupt up to k/4 = 3 whole shares.
	shares[1] = []byte{0xFF, 0xFF, 0xFF, 0xFF}
	shares[5] = nil
	shares[9] = []byte{1, 2, 3}
	got, ok = p.decodeShares(shares)
	if !ok {
		t.Fatal("decode with 3 bad shares failed")
	}
	if string(got[:len(msg)]) != string(msg) {
		t.Fatalf("decoded %q after corruption", got)
	}
}

// runCompiled runs a compiled payload on g and returns outputs.
func runCompiled(t *testing.T, g *graph.Graph, sh *Shared, adv congest.Adversary, seed int64, inputs [][]byte, payload congest.Protocol, cfg Config) *congest.Result {
	t.Helper()
	res, err := congest.Run(congest.Config{
		Graph:     g,
		Seed:      seed,
		Adversary: adv,
		Inputs:    inputs,
		Shared:    sh,
		MaxRounds: 1 << 22,
	}, Compile(payload, cfg))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSparseCompilerFaultFree(t *testing.T) {
	n := 8
	g := graph.Clique(n)
	sh := CliqueShared(n)
	res := runCompiled(t, g, sh, nil, 1, nil, algorithms.FloodMax(2), Config{Mode: SparseMode, F: 1, Rep: 3})
	for i, o := range res.Outputs {
		if o.(uint64) != uint64(n-1) {
			t.Fatalf("node %d output %v", i, o)
		}
	}
}

func TestSparseCompilerCliqueUnderMobileByzantine(t *testing.T) {
	n := 12
	g := graph.Clique(n)
	sh := CliqueShared(n)
	for _, tc := range []struct {
		name string
		sel  adversary.Selector
		cor  adversary.Corruption
	}{
		{"random-flip", adversary.SelectRandom, adversary.CorruptFlip},
		{"random-randomize", adversary.SelectRandom, adversary.CorruptRandomize},
		{"busiest-flip", adversary.SelectBusiest, adversary.CorruptFlip},
		{"rotating-drop", adversary.SelectRotating, adversary.CorruptDrop},
		{"incident-inject", adversary.SelectIncident(graph.NodeID(n - 1)), adversary.CorruptInject},
	} {
		t.Run(tc.name, func(t *testing.T) {
			adv := adversary.NewMobileByzantine(g, 2, 7, tc.sel, tc.cor)
			res := runCompiled(t, g, sh, adv, 2, nil, algorithms.FloodMax(2), Config{Mode: SparseMode, F: 2, Rep: 5})
			for i, o := range res.Outputs {
				if o.(uint64) != uint64(n-1) {
					t.Fatalf("node %d output %v under %s", i, o, tc.name)
				}
			}
		})
	}
}

func TestSparseCompilerTokenRing(t *testing.T) {
	// TokenRing is order-sensitive: any uncorrected corruption changes the
	// trace. Compare against the fault-free trace.
	n := 10
	g := graph.Clique(n)
	sh := CliqueShared(n)
	clean, err := congest.Run(congest.Config{Graph: g, Seed: 3}, algorithms.TokenRing(4))
	if err != nil {
		t.Fatal(err)
	}
	adv := adversary.NewMobileByzantine(g, 2, 11, adversary.SelectRandom, adversary.CorruptRandomize)
	res := runCompiled(t, g, sh, adv, 3, nil, algorithms.TokenRing(4), Config{Mode: SparseMode, F: 2, Rep: 5})
	for i := range res.Outputs {
		if res.Outputs[i] != clean.Outputs[i] {
			t.Fatalf("node %d trace diverged: %v vs %v", i, res.Outputs[i], clean.Outputs[i])
		}
	}
}

func TestSparseCompilerMSTClique(t *testing.T) {
	n := 8
	g := graph.Clique(n)
	sh := CliqueShared(n)
	inputs := algorithms.CliqueWeights(n, 5)
	want := algorithms.ReferenceMSTWeight(inputs)
	adv := adversary.NewMobileByzantine(g, 1, 13, adversary.SelectBusiest, adversary.CorruptFlip)
	res := runCompiled(t, g, sh, adv, 4, inputs, algorithms.MSTClique(), Config{Mode: SparseMode, F: 1, Rep: 5})
	for i, o := range res.Outputs {
		if o.(uint64) != want {
			t.Fatalf("node %d MST weight %v, want %d", i, o, want)
		}
	}
}

func TestSparseCompilerGeneralGraph(t *testing.T) {
	// Circulant(14,3): 6-edge-connected; pack 6 trees, defend f=1.
	g := graph.Circulant(14, 3)
	sh := GeneralShared(g, 6, 6)
	if sh.Packing.K() < 4 {
		t.Fatalf("packed only %d trees", sh.Packing.K())
	}
	adv := adversary.NewMobileByzantine(g, 1, 17, adversary.SelectRandom, adversary.CorruptRandomize)
	res := runCompiled(t, g, sh, adv, 5, nil, algorithms.FloodMax(g.Diameter()), Config{Mode: SparseMode, F: 1, Rep: 5})
	for i, o := range res.Outputs {
		if o.(uint64) != uint64(g.N()-1) {
			t.Fatalf("node %d output %v", i, o)
		}
	}
}

func TestL0CompilerFaultFree(t *testing.T) {
	n := 10
	g := graph.Clique(n)
	sh := CliqueShared(n)
	res := runCompiled(t, g, sh, nil, 6, nil, algorithms.FloodMax(2), Config{Mode: L0Mode, F: 1, Rep: 3, Samplers: 6, Iterations: 3})
	for i, o := range res.Outputs {
		if o.(uint64) != uint64(n-1) {
			t.Fatalf("node %d output %v", i, o)
		}
	}
}

func TestL0CompilerUnderMobileByzantine(t *testing.T) {
	n := 16
	g := graph.Clique(n)
	sh := CliqueShared(n)
	adv := adversary.NewMobileByzantine(g, 1, 23, adversary.SelectRandom, adversary.CorruptFlip)
	res := runCompiled(t, g, sh, adv, 7, nil, algorithms.FloodMax(2), Config{Mode: L0Mode, F: 1, Rep: 5, Samplers: 8, Iterations: 5})
	for i, o := range res.Outputs {
		if o.(uint64) != uint64(n-1) {
			t.Fatalf("node %d output %v", i, o)
		}
	}
}

func TestCompilerRejectsOversizedPayload(t *testing.T) {
	n := 6
	g := graph.Clique(n)
	sh := CliqueShared(n)
	big := func(rt congest.Runtime) {
		out := map[graph.NodeID]congest.Msg{rt.Neighbors()[0]: make(congest.Msg, 9)}
		rt.Exchange(out)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("oversized payload accepted")
		}
	}()
	// Run synchronously on one fake runtime by invoking the compiled
	// protocol via the engine; the panic propagates out of the node
	// goroutine and fails the run. Recover via engine? The engine does not
	// recover arbitrary panics, so call the protocol directly with a stub.
	_ = g
	Compile(big, Config{F: 1})(stubRuntime{sh: sh})
}

// stubRuntime is a minimal Runtime that panics on Exchange — enough to reach
// the payload-size check.
type stubRuntime struct{ sh *Shared }

func (s stubRuntime) ID() graph.NodeID          { return 0 }
func (s stubRuntime) N() int                    { return 6 }
func (s stubRuntime) Neighbors() []graph.NodeID { return []graph.NodeID{1, 2, 3, 4, 5} }
func (s stubRuntime) Exchange(map[graph.NodeID]congest.Msg) map[graph.NodeID]congest.Msg {
	panic("stub exchange")
}
func (s stubRuntime) Round() int       { return 0 }
func (s stubRuntime) Rand() *rand.Rand { return rand.New(rand.NewSource(1)) }
func (s stubRuntime) Input() []byte    { return nil }
func (s stubRuntime) SetOutput(any)    {}
func (s stubRuntime) Shared() any      { return s.sh }
