package resilient

import (
	"fmt"
	"sort"

	"mobilecongest/internal/congest"
	"mobilecongest/internal/graph"
	"mobilecongest/internal/rsim"
	"mobilecongest/internal/sketch"
	"mobilecongest/internal/treepack"
)

// Mode selects the mismatch-correction machinery.
type Mode int

const (
	// SparseMode is the Õ(D_TP + f) variant of Section 1.2.2: one
	// sparse-recovery sketch per tree recovers the full mismatch list and
	// the root takes a majority across trees.
	SparseMode Mode = iota + 1
	// L0Mode is Algorithm ImprovedMobileByzantineSim (Theorem 3.5):
	// O(log f) iterations of ℓ0-sampling with support thresholds.
	L0Mode
)

// MaxPayloadBytes is the largest payload message the compiler can protect:
// messages are packed with their directed-edge index into the sketch
// element space.
const MaxPayloadBytes = 8

// Shared is the trusted preprocessing artifact the compiled protocol needs
// (Theorem 3.5 assumes distributed knowledge of a weak tree packing; the
// graph itself covers the supported-CONGEST/KT1 edge indexing).
type Shared struct {
	// G is the communication graph (used only for consistent edge
	// indexing).
	G *graph.Graph
	// Packing is the weak (k, D_TP, eta) tree packing.
	Packing *treepack.Packing
	// Views is rsim.Views(Packing), precomputed once.
	Views [][]rsim.TreeView
	// Payload carries an inner Shared artifact for the payload protocol,
	// if it needs one.
	Payload any
}

// NewShared bundles a graph and packing.
func NewShared(g *graph.Graph, p *treepack.Packing) *Shared {
	return &Shared{G: g, Packing: p, Views: rsim.Views(p)}
}

// Config parameterizes the compiler.
type Config struct {
	// Mode selects sparse-recovery or ℓ0-sampling correction.
	Mode Mode
	// F is the mobile adversary bound the compilation defends against.
	F int
	// Rep is the per-slot repetition of the RS-compiled tree protocols
	// (t_RS); higher tolerates more per-slot corruption.
	Rep int
	// Samplers is t, the number of independent ℓ0 samplers per tree
	// (L0Mode only).
	Samplers int
	// Iterations is z, the number of correction iterations (L0Mode only;
	// 0 derives O(log f) + slack).
	Iterations int
	// TraceFn, when set, is called at every node after each correction
	// iteration with the simulated round, iteration index, and the number
	// of corrections broadcast — the observable proxy for the mismatch
	// count B_j of Lemma 3.8 (experiment F3).
	TraceFn func(simRound, iter, corrections int)
}

func (c Config) withDefaults() Config {
	if c.Rep <= 0 {
		c.Rep = 5
	}
	if c.Samplers <= 0 {
		c.Samplers = 8
	}
	if c.Iterations <= 0 {
		z := 1
		for v := 1; v < 4*c.F+1; v *= 2 {
			z++
		}
		c.Iterations = z + 2
	}
	if c.Mode == 0 {
		c.Mode = SparseMode
	}
	return c
}

// estimate is one received-message estimate: present or absent.
type estimate struct {
	present bool
	data    uint64 // payload bytes, big-endian packed
	length  int    // original message length (<= MaxPayloadBytes)
}

// packPayload encodes a payload message (<= 8 bytes) into the 64-bit
// element payload with its length in the edge-index tag bits.
func packPayload(m congest.Msg) (uint64, int) {
	var v uint64
	for i := 0; i < len(m) && i < MaxPayloadBytes; i++ {
		v = v<<8 | uint64(m[i])
	}
	l := len(m)
	if l > MaxPayloadBytes {
		l = MaxPayloadBytes
	}
	return v, l
}

// unpackPayload reverses packPayload.
func unpackPayload(v uint64, l int) congest.Msg {
	m := make(congest.Msg, l)
	for i := l - 1; i >= 0; i-- {
		m[i] = byte(v)
		v >>= 8
	}
	return m
}

// dirIndex gives the consistent stream index of a directed edge: edge index
// shifted, low bit for direction, next bits for payload length.
func dirIndex(g *graph.Graph, from, to graph.NodeID, payloadLen int) uint32 {
	ei := g.EdgeIndex(from, to)
	d := uint32(0)
	if from > to {
		d = 1
	}
	return uint32(ei)<<5 | uint32(payloadLen&0xF)<<1 | d
}

// splitDirIndex recovers (edge index, payload length, direction bit).
func splitDirIndex(idx uint32) (ei int, payloadLen int, dirBit int) {
	return int(idx >> 5), int(idx >> 1 & 0xF), int(idx & 1)
}

// correction is one entry of the broadcast mismatch list.
type correction struct {
	idx  uint32 // dirIndex
	data uint64
	plus bool // true: the correct sent message; false: a wrong received value
}

const correctionBytes = 13

func encodeCorrections(cs []correction) []byte {
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].idx != cs[j].idx {
			return cs[i].idx < cs[j].idx
		}
		if cs[i].plus != cs[j].plus {
			return cs[i].plus
		}
		return cs[i].data < cs[j].data
	})
	out := []byte{byte(len(cs) >> 8), byte(len(cs))}
	for _, c := range cs {
		out = congest.PutU32(out, c.idx)
		out = congest.PutU64(out, c.data)
		if c.plus {
			out = append(out, 1)
		} else {
			out = append(out, 0)
		}
	}
	return out
}

func decodeCorrections(b []byte) []correction {
	if len(b) < 2 {
		return nil
	}
	n := int(b[0])<<8 | int(b[1])
	var out []correction
	off := 2
	for i := 0; i < n && off+correctionBytes <= len(b); i++ {
		out = append(out, correction{
			idx:  congest.U32(b[off:]),
			data: congest.U64(b[off+4:]),
			plus: b[off+12] == 1,
		})
		off += correctionBytes
	}
	return out
}

// Compile turns any payload protocol whose messages fit MaxPayloadBytes into
// an f-mobile-resilient protocol over the shared tree packing (Theorem 3.5 /
// the sparse variant of Section 1.2.2). The run's Shared artifact must be a
// *Shared; the payload protocol sees Shared.Payload.
func Compile(payload congest.Protocol, cfg Config) congest.Protocol {
	cfg = cfg.withDefaults()
	return func(rt congest.Runtime) {
		sh, ok := rt.Shared().(*Shared)
		if !ok {
			panic("resilient: run Config.Shared must be *resilient.Shared")
		}
		sim := &simulator{
			rt:    rt,
			pr:    congest.Ports(rt),
			cfg:   cfg,
			sh:    sh,
			trees: sh.Views[rt.ID()],
			depth: rsim.MaxDepth(sh.Views),
		}
		w := &congest.WrappedRuntime{Base: rt, ExchangeFn: sim.exchange}
		w.ShadowShared = sh.Payload
		payload(w)
	}
}

// simulator holds one node's compiler state.
type simulator struct {
	rt    congest.Runtime
	pr    congest.PortRuntime
	cfg   Config
	sh    *Shared
	trees []rsim.TreeView
	depth int
	round int
}

// exchange simulates one payload round: raw exchange, then mismatch
// correction (Steps 1-3 of Section 3.2.2).
func (s *simulator) exchange(out map[graph.NodeID]congest.Msg) map[graph.NodeID]congest.Msg {
	badTo, badLen := graph.NodeID(0), -1
	for to, m := range out {
		if len(m) > MaxPayloadBytes && (badLen < 0 || to < badTo) {
			badTo, badLen = to, len(m)
		}
	}
	if badLen >= 0 {
		panic(fmt.Sprintf("resilient: payload message to %d has %d bytes, max %d", badTo, badLen, MaxPayloadBytes))
	}
	// Step 1: single-round message exchange, on the port boundary. A payload
	// send to a non-neighbor falls back to the map barrier, which aborts the
	// run with the canonical error.
	pout := s.pr.OutBuf()
	valid := true
	for to, m := range out {
		if m == nil {
			continue
		}
		p := s.pr.Port(to)
		if p < 0 {
			valid = false
			break
		}
		pout[p] = m
	}
	est := make(map[graph.NodeID]estimate, s.pr.Degree())
	if !valid {
		clear(pout)
		//lint:ignore portnative deliberate abort path: the map Exchange is the canonical way to trigger the engine's non-neighbor error
		s.rt.Exchange(out) // aborts: non-neighbor send
		panic("resilient: payload sent to non-neighbor")
	} else {
		in := s.pr.ExchangePorts(pout)
		for p, m := range in {
			if m != nil {
				v, l := packPayload(m)
				est[s.pr.Neighbor(p)] = estimate{present: true, data: v, length: l}
			}
		}
	}
	sent := make(map[graph.NodeID]estimate, len(out))
	for to, m := range out {
		v, l := packPayload(m)
		sent[to] = estimate{present: true, data: v, length: l}
	}

	// Steps 2+3: correction iterations.
	iters := 1
	if s.cfg.Mode == L0Mode {
		iters = s.cfg.Iterations
	}
	for j := 0; j < iters; j++ {
		var corr []correction
		var decoded bool
		if s.cfg.Mode == SparseMode {
			corr, decoded = s.sparseIteration(sent, est, j)
		} else {
			corr, decoded = s.l0Iteration(sent, est, j)
		}
		if decoded {
			s.applyCorrections(corr, est)
		}
		if s.cfg.TraceFn != nil {
			s.cfg.TraceFn(s.round, j, len(corr))
		}
	}
	s.round++

	// Materialize corrected inbox.
	fixed := make(map[graph.NodeID]congest.Msg, len(est))
	for u, e := range est {
		if e.present {
			fixed[u] = unpackPayload(e.data, e.length)
		}
	}
	return fixed
}

// localStream feeds this node's turnstile stream into upd: sent messages
// with +1, current estimates with -1 (Section 3.2.2 Step 2).
func (s *simulator) localStream(sent, est map[graph.NodeID]estimate, upd func(e sketch.Elem, f int64)) {
	me := s.rt.ID()
	for to, e := range sent {
		if !e.present {
			continue
		}
		idx := dirIndex(s.sh.G, me, to, e.length)
		upd(sketch.Pack(idx, e.data), 1)
	}
	for from, e := range est {
		if !e.present {
			continue
		}
		idx := dirIndex(s.sh.G, from, me, e.length)
		upd(sketch.Pack(idx, e.data), -1)
	}
}

// applyCorrections rewrites the estimates per the broadcast list: a plus
// entry for an incoming edge replaces the estimate with the true message; a
// minus entry matching the current (wrong) estimate deletes it unless a plus
// entry supersedes.
func (s *simulator) applyCorrections(corr []correction, est map[graph.NodeID]estimate) {
	me := s.rt.ID()
	plusFor := make(map[graph.NodeID]correction)
	minusFor := make(map[graph.NodeID]correction)
	for _, c := range corr {
		ei, l, dirBit := splitDirIndex(c.idx)
		if ei < 0 || ei >= s.sh.G.M() {
			continue
		}
		edge := s.sh.G.Edges()[ei]
		from, to := edge.U, edge.V
		if dirBit == 1 {
			from, to = edge.V, edge.U
		}
		if to != me {
			continue
		}
		_ = l
		if c.plus {
			plusFor[from] = c
		} else {
			minusFor[from] = c
		}
	}
	for from, c := range plusFor {
		_, l, _ := splitDirIndex(c.idx)
		est[from] = estimate{present: true, data: c.data, length: l}
	}
	for from, c := range minusFor {
		if _, hasPlus := plusFor[from]; hasPlus {
			continue
		}
		cur, ok := est[from]
		_, l, _ := splitDirIndex(c.idx)
		if ok && cur.present && cur.data == c.data && cur.length == l {
			delete(est, from)
		}
	}
}
