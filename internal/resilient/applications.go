package resilient

import (
	"math/rand"

	"mobilecongest/internal/congest"
	"mobilecongest/internal/graph"
	"mobilecongest/internal/treepack"
)

// Applications of Theorem 3.5 (Section 3.3): ready-made Shared artifacts
// for the three graph families the paper highlights.

// CliqueShared builds the Theorem 1.6 preprocessing for the congested
// clique: the star packing with k=n, D_TP=2, eta=2. No trusted computation
// is needed — the clique defines the packing syntactically.
func CliqueShared(n int) *Shared {
	return NewShared(graph.Clique(n), treepack.CliqueStars(n))
}

// HardenedClique compiles a congested-clique payload against an f-mobile
// byzantine adversary (Theorem 1.6) and returns the compiled protocol
// together with its trusted preprocessing artifact, at the harness's
// standard repetition factor. This is the registry-adapter form: one call
// yields both halves the root protocol registry hands to a Scenario.
func HardenedClique(payload congest.Protocol, n, f int) (congest.Protocol, *Shared) {
	return Compile(payload, Config{Mode: SparseMode, F: f, Rep: 5}), CliqueShared(n)
}

// GeneralShared builds the Corollary 3.9 preprocessing for a
// (k, D_TP)-connected graph: a greedy low-depth packing computed in a
// trusted (fault-free) preprocessing phase, as the corollary permits.
func GeneralShared(g *graph.Graph, k, depthBound int) *Shared {
	root := graph.NodeID(g.N() - 1)
	p := treepack.GreedyLowDepth(g, root, k, depthBound, 1)
	return NewShared(g, p)
}

// ExpanderShared builds the Theorem 1.7 preprocessing by *running the
// distributed packing protocol of Lemma 3.10 under the byzantine adversary
// itself* (padded variant) and assembling the resulting weak packing: the
// expander application needs no trusted preprocessing. It returns the
// Shared artifact plus the rounds spent. The inner simulation runs on the
// default (goroutine) engine; use ExpanderSharedOn to pick one.
func ExpanderShared(g *graph.Graph, k, z, pad int, seed int64, adv congest.Adversary) (*Shared, int, error) {
	return ExpanderSharedOn(congest.GoroutineEngine{}, g, k, z, pad, seed, adv)
}

// ExpanderSharedOn is ExpanderShared with the inner packing simulation run on
// an explicit engine, so callers that select an execution engine (the harness,
// sweeps) reach this simulation too.
func ExpanderSharedOn(e congest.Engine, g *graph.Graph, k, z, pad int, seed int64, adv congest.Adversary) (*Shared, int, error) {
	res, err := e.Run(congest.Config{
		Graph:     g,
		Seed:      seed,
		Adversary: adv,
	}, treepack.ExpanderPackingPadded(k, z, pad))
	if err != nil {
		return nil, 0, err
	}
	p := treepack.AssemblePacking(g.N(), k, res.Outputs)
	return NewShared(g, p), res.Stats.Rounds, nil
}

// RandomExpander draws the Theorem 1.7 graph family: a random d-regular
// graph (an expander w.h.p.).
func RandomExpander(n, d int, seed int64) *graph.Graph {
	return graph.RandomRegular(n, d, rand.New(rand.NewSource(seed)))
}
