package resilient

import (
	"math/rand"
	"testing"

	"mobilecongest/internal/adversary"
	"mobilecongest/internal/algorithms"
	"mobilecongest/internal/congest"
	"mobilecongest/internal/graph"
)

// selectTreeEdges is the worst-case-informed strategy: it knows the packing
// (as the paper's all-powerful adversary does) and rotates through tree
// edges only, maximizing the number of tree protocols it disturbs. The
// rotation cursor lives in the per-run SelectorState, not the closure, so
// the Selector value is reusable across runs.
func selectTreeEdges(sh *Shared) adversary.Selector {
	var treeEdges []graph.Edge
	seen := make(map[graph.Edge]bool)
	for _, t := range sh.Packing.Trees {
		for _, e := range t.Edges() {
			if !seen[e] {
				seen[e] = true
				treeEdges = append(treeEdges, e)
			}
		}
	}
	return func(st *adversary.SelectorState, _ *rand.Rand, _ int, _ *graph.Graph, _ *congest.RoundTraffic, f int) []graph.Edge {
		out := make([]graph.Edge, 0, f)
		for i := 0; i < f && i < len(treeEdges); i++ {
			out = append(out, treeEdges[(st.Rotation+i)%len(treeEdges)])
		}
		st.Rotation = (st.Rotation + f) % maxInt(1, len(treeEdges))
		return out
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestSparseCompilerAgainstTreeTargeting(t *testing.T) {
	n := 12
	g := graph.Clique(n)
	sh := CliqueShared(n)
	adv := adversary.NewMobileByzantine(g, 2, 31, selectTreeEdges(sh), adversary.CorruptRandomize)
	res := runCompiled(t, g, sh, adv, 8, nil, algorithms.FloodMax(2), Config{Mode: SparseMode, F: 2, Rep: 5})
	for i, o := range res.Outputs {
		if o.(uint64) != uint64(n-1) {
			t.Fatalf("node %d output %v under tree-targeting adversary", i, o)
		}
	}
}

func TestSparseCompilerAtFullBudgetSweep(t *testing.T) {
	// Failure-injection sweep: run the compiler exactly at several budgets
	// and verify outputs across seeds.
	n := 12
	g := graph.Clique(n)
	sh := CliqueShared(n)
	for _, f := range []int{1, 2, 3} {
		for seed := int64(0); seed < 3; seed++ {
			adv := adversary.NewMobileByzantine(g, f, 100+seed, adversary.SelectRandom, adversary.CorruptRandomize)
			res := runCompiled(t, g, sh, adv, seed, nil, algorithms.FloodMax(2), Config{Mode: SparseMode, F: f, Rep: 5})
			for i, o := range res.Outputs {
				if o.(uint64) != uint64(n-1) {
					t.Fatalf("f=%d seed=%d node %d output %v", f, seed, i, o)
				}
			}
		}
	}
}

func TestCompilerSilentPayloadRounds(t *testing.T) {
	// A payload that stays silent in some rounds must not confuse the
	// mismatch streams (absent messages are simply absent, and injections
	// on silent edges must be deleted by minus-corrections).
	n := 10
	g := graph.Clique(n)
	sh := CliqueShared(n)
	payload := func(rt congest.Runtime) {
		var got int
		for r := 0; r < 3; r++ {
			out := map[graph.NodeID]congest.Msg{}
			if r == 1 && rt.ID() == 0 {
				for _, v := range rt.Neighbors() {
					out[v] = congest.U64Msg(77)
				}
			}
			in := rt.Exchange(out)
			for from, m := range in {
				if from == 0 && congest.U64(m) == 77 {
					got++
				}
				if from != 0 && len(m) > 0 {
					got = -1000 // received a message nobody sent
				}
			}
		}
		rt.SetOutput(got)
	}
	adv := adversary.NewMobileByzantine(g, 1, 17, adversary.SelectRandom, adversary.CorruptInject)
	res := runCompiled(t, g, sh, adv, 9, nil, payload, Config{Mode: SparseMode, F: 1, Rep: 5})
	for i, o := range res.Outputs {
		want := 1
		if i == 0 {
			want = 0
		}
		if o.(int) != want {
			t.Fatalf("node %d saw %v real-message events, want %d (injections must be scrubbed)", i, o, want)
		}
	}
}
