package resilient

import (
	"sort"

	"mobilecongest/internal/congest"
	"mobilecongest/internal/graph"
	"mobilecongest/internal/rsim"
	"mobilecongest/internal/sketch"
	"mobilecongest/internal/vote"
)

// Correction iterations. Both variants share the same skeleton per
// iteration:
//
//  a. the root draws fresh randomness and ECC-safe-broadcasts it (so the
//     adversary cannot precompute sketch collisions);
//  b. every node folds its local turnstile stream into per-tree sketches,
//     which are merge-convergecast to the root over every tree in parallel
//     under the RS scheduler;
//  c. the root extracts the mismatch list (majority across trees for sparse
//     recovery, support thresholds for ℓ0 samples);
//  d. the list is ECC-safe-broadcast and everyone rewrites its estimates.

// seedPlan is the fixed ECC plan for broadcasting the 8-byte iteration seed.
func (s *simulator) seedPlan() ECCPlan { return NewECCPlan(len(s.trees), 8) }

// corrPlan is the fixed ECC plan for broadcasting correction lists.
func (s *simulator) corrPlan() ECCPlan {
	maxCorr := 4*s.cfg.F + 4
	return NewECCPlan(len(s.trees), 2+correctionBytes*maxCorr)
}

// broadcastSeed has the root draw and disseminate the iteration seed.
func (s *simulator) broadcastSeed() (uint64, bool) {
	var msg []byte
	isRoot := s.isRoot()
	if isRoot {
		msg = congest.PutU64(nil, s.rt.Rand().Uint64())
	}
	got, ok := ECCSafeBroadcast(s.rt, s.trees, s.seedPlan(), msg, s.depth, s.cfg.Rep)
	if !ok {
		return 0, false
	}
	return congest.U64(got), true
}

func (s *simulator) isRoot() bool {
	for _, tv := range s.trees {
		if tv.Depth == 0 {
			return true
		}
	}
	return false
}

// sparseIteration runs one sparse-recovery correction (the Õ(D_TP+f)
// compiler of Section 1.2.2). Returns the correction list decoded from the
// root's broadcast.
func (s *simulator) sparseIteration(sent, est map[graph.NodeID]estimate, _ int) ([]correction, bool) {
	seed, seedOK := s.broadcastSeed()
	sparsity := 4*s.cfg.F + 2

	// Local sketches per tree (independent randomness per tree).
	k := len(s.trees)
	locals := make([][]byte, k)
	for j := 0; j < k; j++ {
		r := sketch.NewRecovery(treeSeed(seed, j), sparsity)
		s.localStream(sent, est, r.Update)
		locals[j] = r.Encode()
	}
	merge := func(j int, a, b []byte) []byte {
		ra := sketch.DecodeRecovery(treeSeed(seed, j), sparsity, a)
		rb := sketch.DecodeRecovery(treeSeed(seed, j), sparsity, b)
		ra.Merge(rb)
		return ra.Encode()
	}
	rootAggs := rsim.ConvergecastUp(s.rt, s.trees, locals, merge, s.depth, s.cfg.Rep)

	// Root: decode each tree's aggregate and take the across-tree majority
	// of the canonical correction list.
	var corrMsg []byte
	if s.isRoot() && seedOK {
		votes := make(map[string]int)
		for j, agg := range rootAggs {
			if agg == nil {
				continue
			}
			r := sketch.DecodeRecovery(treeSeed(seed, j), sparsity, agg)
			items, ok := r.Decode()
			if !ok {
				continue
			}
			votes[string(encodeCorrections(itemsToCorrections(items)))]++
		}
		best, bestCnt := vote.Winner(votes)
		if 2*bestCnt > k {
			corrMsg = []byte(best)
		} else {
			corrMsg = encodeCorrections(nil)
		}
	} else if s.isRoot() {
		corrMsg = encodeCorrections(nil)
	}
	got, ok := ECCSafeBroadcast(s.rt, s.trees, s.corrPlan(), corrMsg, s.depth, s.cfg.Rep)
	if !ok {
		return nil, false
	}
	return decodeCorrections(got), true
}

// itemsToCorrections converts recovered sketch items into corrections.
func itemsToCorrections(items []sketch.Item) []correction {
	var out []correction
	for _, it := range items {
		idx, payload := it.E.Unpack()
		switch {
		case it.Freq > 0:
			out = append(out, correction{idx: idx, data: payload, plus: true})
		case it.Freq < 0:
			out = append(out, correction{idx: idx, data: payload, plus: false})
		}
	}
	return out
}

// l0Iteration runs one iteration of Algorithm ImprovedMobileByzantineSim:
// t independent ℓ0 samples per tree, support counting at the root, and a
// thresholded dominating-mismatch broadcast (Eq. 8).
func (s *simulator) l0Iteration(sent, est map[graph.NodeID]estimate, j int) ([]correction, bool) {
	seed, seedOK := s.broadcastSeed()
	k := len(s.trees)
	t := s.cfg.Samplers

	locals := make([][]byte, k)
	for ti := 0; ti < k; ti++ {
		buf := make([]byte, 0, t*sketch.EncodedL0Size)
		for h := 0; h < t; h++ {
			sm := sketch.NewL0Sampler(samplerSeed(seed, ti, j, h))
			s.localStream(sent, est, sm.Update)
			buf = append(buf, sm.Encode()...)
		}
		locals[ti] = buf
	}
	merge := func(ti int, a, b []byte) []byte {
		out := make([]byte, 0, t*sketch.EncodedL0Size)
		for h := 0; h < t; h++ {
			off := h * sketch.EncodedL0Size
			sa := sketch.DecodeL0Sampler(samplerSeed(seed, ti, j, h), sliceAt(a, off, sketch.EncodedL0Size))
			sb := sketch.DecodeL0Sampler(samplerSeed(seed, ti, j, h), sliceAt(b, off, sketch.EncodedL0Size))
			sa.Merge(sb)
			out = append(out, sa.Encode()...)
		}
		return out
	}
	rootAggs := rsim.ConvergecastUp(s.rt, s.trees, locals, merge, s.depth, s.cfg.Rep)

	var corrMsg []byte
	if s.isRoot() && seedOK {
		corrMsg = encodeCorrections(s.rootSelectDominating(rootAggs, seed, j))
	} else if s.isRoot() {
		corrMsg = encodeCorrections(nil)
	}
	got, ok := ECCSafeBroadcast(s.rt, s.trees, s.corrPlan(), corrMsg, s.depth, s.cfg.Rep)
	if !ok {
		return nil, false
	}
	return decodeCorrections(got), true
}

// rootSelectDominating implements the support threshold of Eq. (8): count
// how many (tree, sampler) pairs sampled each observed mismatch and keep
// those above Delta_j, capped to the broadcast capacity.
func (s *simulator) rootSelectDominating(rootAggs [][]byte, seed uint64, j int) []correction {
	k := len(s.trees)
	t := s.cfg.Samplers
	type obs struct {
		e    sketch.Elem
		freq int64
	}
	support := make(map[obs]int)
	emptyTrees := 0
	for ti, agg := range rootAggs {
		if agg == nil {
			continue
		}
		anyNonEmpty := false
		for h := 0; h < t; h++ {
			sm := sketch.DecodeL0Sampler(samplerSeed(seed, ti, j, h), sliceAt(agg, h*sketch.EncodedL0Size, sketch.EncodedL0Size))
			if sm.Empty() {
				continue
			}
			anyNonEmpty = true
			if e, f, ok := sm.Query(); ok && (f == 1 || f == -1) {
				support[obs{e: e, freq: f}]++
			}
		}
		if !anyNonEmpty {
			emptyTrees++
		}
	}
	// If a majority of trees report a fully empty stream, there is nothing
	// to fix this iteration.
	if 2*emptyTrees > k {
		return nil
	}
	// Threshold Delta_j grows as mismatches shrink (Eq. 8); the constant is
	// calibrated so a clean tree's sampler hitting one of <= 4f/2^j
	// mismatches clears it while a minority of hijacked trees cannot.
	shift := j
	if shift > 16 {
		shift = 16
	}
	deltaJ := (k * t << shift) / (32 * maxI(1, s.cfg.F))
	if deltaJ < 2 {
		deltaJ = 2
	}
	var picked []obs
	for o, c := range support {
		if c >= deltaJ {
			picked = append(picked, o)
		}
	}
	sort.Slice(picked, func(a, b int) bool {
		if support[picked[a]] != support[picked[b]] {
			return support[picked[a]] > support[picked[b]]
		}
		if picked[a].e.Hi != picked[b].e.Hi {
			return picked[a].e.Hi < picked[b].e.Hi
		}
		if picked[a].e.Lo != picked[b].e.Lo {
			return picked[a].e.Lo < picked[b].e.Lo
		}
		// Two observations can share an element but differ in sign; without
		// this the comparator is not a total order over obs values and the
		// truncation below keeps an order-dependent subset.
		return picked[a].freq > picked[b].freq
	})
	maxCorr := 4*s.cfg.F + 4
	if len(picked) > maxCorr {
		picked = picked[:maxCorr]
	}
	var out []correction
	for _, o := range picked {
		idx, payload := o.e.Unpack()
		out = append(out, correction{idx: idx, data: payload, plus: o.freq > 0})
	}
	return out
}

func sliceAt(b []byte, off, n int) []byte {
	if off >= len(b) {
		return nil
	}
	end := off + n
	if end > len(b) {
		end = len(b)
	}
	return b[off:end]
}

func treeSeed(seed uint64, tree int) uint64 {
	return sketch.XorFold(seed, uint64(tree)+1)
}

func samplerSeed(seed uint64, tree, iter, h int) uint64 {
	return sketch.XorFold(seed, uint64(tree)+1, uint64(iter)+1, uint64(h)+1)
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}
