// Package gf implements arithmetic over the finite fields GF(2^8) and
// GF(2^16), together with the small linear-algebra toolkit (Vandermonde
// matrices, Gaussian elimination, rank) that the paper's compilers rely on.
//
// Elements of GF(2^k) are represented as unsigned integers whose bits are the
// coefficients of a polynomial over GF(2); addition is XOR and multiplication
// is carried out modulo a fixed primitive polynomial via log/antilog tables.
package gf

import "fmt"

// Elem is a field element of GF(2^16). The subfield GF(2^8) is exposed via
// Field8 below; both share this representation.
type Elem uint16

// Order16 is the number of elements of GF(2^16).
const Order16 = 1 << 16

// Order8 is the number of elements of GF(2^8).
const Order8 = 1 << 8

// primPoly16 is a primitive polynomial for GF(2^16):
// x^16 + x^12 + x^3 + x + 1 (0x1100B), the CCSDS standard polynomial.
const primPoly16 = 0x1100B

// primPoly8 is a primitive polynomial for GF(2^8):
// x^8 + x^4 + x^3 + x^2 + 1 (0x11D), the AES-adjacent Reed-Solomon polynomial.
const primPoly8 = 0x11D

// Field holds the log/antilog tables for a GF(2^k) instance.
type Field struct {
	// k is the extension degree (8 or 16).
	k int
	// order is 2^k.
	order int
	// exp[i] = g^i for the generator g = x; doubled length to avoid a mod
	// in Mul.
	exp []Elem
	// log[e] = discrete log of e base g; log[0] is unused.
	log []int
}

// NewField16 constructs GF(2^16). Table construction costs ~128k entries and
// should be done once and shared.
func NewField16() *Field { return newField(16, primPoly16) }

// NewField8 constructs GF(2^8).
func NewField8() *Field { return newField(8, primPoly8) }

func newField(k, poly int) *Field {
	order := 1 << k
	f := &Field{
		k:     k,
		order: order,
		exp:   make([]Elem, 2*order),
		log:   make([]int, order),
	}
	x := 1
	for i := 0; i < order-1; i++ {
		f.exp[i] = Elem(x)
		f.log[x] = i
		x <<= 1
		if x&order != 0 {
			x ^= poly
		}
	}
	if x != 1 {
		// The polynomial is fixed and primitive; reaching this would mean a
		// programming error in the table construction.
		panic(fmt.Sprintf("gf: polynomial %#x is not primitive for k=%d", poly, k))
	}
	for i := order - 1; i < 2*order; i++ {
		f.exp[i] = f.exp[i-(order-1)]
	}
	return f
}

// K returns the extension degree k of GF(2^k).
func (f *Field) K() int { return f.k }

// Order returns the number of field elements, 2^k.
func (f *Field) Order() int { return f.order }

// Add returns a+b (= a-b) in GF(2^k).
func (f *Field) Add(a, b Elem) Elem { return a ^ b }

// Mul returns a*b in GF(2^k).
func (f *Field) Mul(a, b Elem) Elem {
	if a == 0 || b == 0 {
		return 0
	}
	return f.exp[f.log[a]+f.log[b]]
}

// Inv returns the multiplicative inverse of a. Inv(0) panics: division by
// zero is a programming error in all call sites (callers pivot on non-zero
// elements).
func (f *Field) Inv(a Elem) Elem {
	if a == 0 {
		panic("gf: inverse of zero")
	}
	return f.exp[(f.order-1)-f.log[a]]
}

// Div returns a/b.
func (f *Field) Div(a, b Elem) Elem { return f.Mul(a, f.Inv(b)) }

// Pow returns a^e for e >= 0.
func (f *Field) Pow(a Elem, e int) Elem {
	if e == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	le := (f.log[a] * e) % (f.order - 1)
	return f.exp[le]
}

// Exp returns g^i for the field generator g.
func (f *Field) Exp(i int) Elem {
	i %= f.order - 1
	if i < 0 {
		i += f.order - 1
	}
	return f.exp[i]
}

// EvalPoly evaluates the polynomial with coefficients coeffs (coeffs[i] is
// the coefficient of x^i) at point x.
func (f *Field) EvalPoly(coeffs []Elem, x Elem) Elem {
	var acc Elem
	for i := len(coeffs) - 1; i >= 0; i-- {
		acc = f.Add(f.Mul(acc, x), coeffs[i])
	}
	return acc
}
