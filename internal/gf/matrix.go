package gf

import "fmt"

// Matrix is a dense matrix over a GF(2^k) field. Rows are stored
// contiguously.
type Matrix struct {
	f     *Field
	rows  int
	cols  int
	cells []Elem
}

// NewMatrix returns a zero rows x cols matrix over field f.
func NewMatrix(f *Field, rows, cols int) *Matrix {
	return &Matrix{f: f, rows: rows, cols: cols, cells: make([]Elem, rows*cols)}
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) Elem { return m.cells[i*m.cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v Elem) { m.cells[i*m.cols+j] = v }

// Clone returns a deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.f, m.rows, m.cols)
	copy(c.cells, m.cells)
	return c
}

// Vandermonde returns the n x w Vandermonde matrix M with M[i][j] =
// alpha_i^j where alpha_i = g^(i+1) are distinct non-zero field elements
// (Definition 1 of the paper, 0-indexed exponents). It requires n < Order-1
// so the alpha_i are distinct.
func Vandermonde(f *Field, n, w int) *Matrix {
	if n >= f.order-1 {
		panic(fmt.Sprintf("gf: Vandermonde needs n < %d, got %d", f.order-1, n))
	}
	m := NewMatrix(f, n, w)
	for i := 0; i < n; i++ {
		alpha := f.Exp(i + 1)
		v := Elem(1)
		for j := 0; j < w; j++ {
			m.Set(i, j, v)
			v = f.Mul(v, alpha)
		}
	}
	return m
}

// MulVec returns M * x for a column vector x of length Cols.
func (m *Matrix) MulVec(x []Elem) []Elem {
	if len(x) != m.cols {
		panic(fmt.Sprintf("gf: MulVec dimension mismatch: %d != %d", len(x), m.cols))
	}
	out := make([]Elem, m.rows)
	for i := 0; i < m.rows; i++ {
		var acc Elem
		row := m.cells[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			if v != 0 && x[j] != 0 {
				acc ^= m.f.Mul(v, x[j])
			}
		}
		out[i] = acc
	}
	return out
}

// TransposeMulVec returns M^T * x for a column vector x of length Rows.
// This computes, for each output j, sum_i M[i][j]*x[i] — the combination the
// bit-extraction procedure applies to the exchanged random values.
func (m *Matrix) TransposeMulVec(x []Elem) []Elem {
	if len(x) != m.rows {
		panic(fmt.Sprintf("gf: TransposeMulVec dimension mismatch: %d != %d", len(x), m.rows))
	}
	out := make([]Elem, m.cols)
	for i := 0; i < m.rows; i++ {
		if x[i] == 0 {
			continue
		}
		row := m.cells[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			if v != 0 {
				out[j] ^= m.f.Mul(v, x[i])
			}
		}
	}
	return out
}

// Rank returns the rank of the matrix, computed by Gaussian elimination on a
// copy.
func (m *Matrix) Rank() int {
	w := m.Clone()
	rank := 0
	for col := 0; col < w.cols && rank < w.rows; col++ {
		pivot := -1
		for r := rank; r < w.rows; r++ {
			if w.At(r, col) != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			continue
		}
		w.swapRows(pivot, rank)
		inv := w.f.Inv(w.At(rank, col))
		w.scaleRow(rank, inv)
		for r := 0; r < w.rows; r++ {
			if r != rank && w.At(r, col) != 0 {
				w.addScaledRow(r, rank, w.At(r, col))
			}
		}
		rank++
	}
	return rank
}

// SolveLinear solves A x = b by Gaussian elimination where A is square.
// It returns an error if A is singular.
func SolveLinear(a *Matrix, b []Elem) ([]Elem, error) {
	if a.rows != a.cols || len(b) != a.rows {
		return nil, fmt.Errorf("gf: SolveLinear wants square system, got %dx%d with |b|=%d", a.rows, a.cols, len(b))
	}
	w := a.Clone()
	x := make([]Elem, len(b))
	copy(x, b)
	n := w.rows
	for col := 0; col < n; col++ {
		pivot := -1
		for r := col; r < n; r++ {
			if w.At(r, col) != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, fmt.Errorf("gf: singular matrix at column %d", col)
		}
		w.swapRows(pivot, col)
		x[pivot], x[col] = x[col], x[pivot]
		inv := w.f.Inv(w.At(col, col))
		w.scaleRow(col, inv)
		x[col] = w.f.Mul(x[col], inv)
		for r := 0; r < n; r++ {
			if r != col && w.At(r, col) != 0 {
				factor := w.At(r, col)
				w.addScaledRow(r, col, factor)
				x[r] ^= w.f.Mul(factor, x[col])
			}
		}
	}
	return x, nil
}

func (m *Matrix) swapRows(i, j int) {
	if i == j {
		return
	}
	ri := m.cells[i*m.cols : (i+1)*m.cols]
	rj := m.cells[j*m.cols : (j+1)*m.cols]
	for c := range ri {
		ri[c], rj[c] = rj[c], ri[c]
	}
}

func (m *Matrix) scaleRow(i int, v Elem) {
	row := m.cells[i*m.cols : (i+1)*m.cols]
	for c := range row {
		row[c] = m.f.Mul(row[c], v)
	}
}

// addScaledRow does row[i] += factor * row[j].
func (m *Matrix) addScaledRow(i, j int, factor Elem) {
	ri := m.cells[i*m.cols : (i+1)*m.cols]
	rj := m.cells[j*m.cols : (j+1)*m.cols]
	for c := range ri {
		ri[c] ^= m.f.Mul(factor, rj[c])
	}
}
