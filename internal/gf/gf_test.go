package gf

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFieldGeneratorOrder16(t *testing.T) {
	f := NewField16()
	seen := make(map[Elem]bool, Order16)
	for i := 0; i < Order16-1; i++ {
		e := f.Exp(i)
		if seen[e] {
			t.Fatalf("generator repeats at power %d", i)
		}
		seen[e] = true
	}
	if len(seen) != Order16-1 {
		t.Fatalf("generator cycle has %d elements, want %d", len(seen), Order16-1)
	}
}

func TestFieldGeneratorOrder8(t *testing.T) {
	f := NewField8()
	seen := make(map[Elem]bool, Order8)
	for i := 0; i < Order8-1; i++ {
		seen[f.Exp(i)] = true
	}
	if len(seen) != Order8-1 {
		t.Fatalf("GF(2^8) generator cycle has %d elements, want %d", len(seen), Order8-1)
	}
}

func TestFieldAxiomsQuick(t *testing.T) {
	f := NewField16()
	mulAssoc := func(a, b, c Elem) bool {
		return f.Mul(f.Mul(a, b), c) == f.Mul(a, f.Mul(b, c))
	}
	if err := quick.Check(mulAssoc, nil); err != nil {
		t.Errorf("multiplication not associative: %v", err)
	}
	distrib := func(a, b, c Elem) bool {
		return f.Mul(a, f.Add(b, c)) == f.Add(f.Mul(a, b), f.Mul(a, c))
	}
	if err := quick.Check(distrib, nil); err != nil {
		t.Errorf("multiplication not distributive: %v", err)
	}
	comm := func(a, b Elem) bool { return f.Mul(a, b) == f.Mul(b, a) }
	if err := quick.Check(comm, nil); err != nil {
		t.Errorf("multiplication not commutative: %v", err)
	}
	invOK := func(a Elem) bool {
		if a == 0 {
			return true
		}
		return f.Mul(a, f.Inv(a)) == 1
	}
	if err := quick.Check(invOK, nil); err != nil {
		t.Errorf("inverse broken: %v", err)
	}
}

func TestPow(t *testing.T) {
	f := NewField16()
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		a := Elem(rng.Intn(Order16))
		e := rng.Intn(50)
		want := Elem(1)
		for i := 0; i < e; i++ {
			want = f.Mul(want, a)
		}
		if got := f.Pow(a, e); got != want {
			t.Fatalf("Pow(%d,%d) = %d, want %d", a, e, got, want)
		}
	}
}

func TestEvalPoly(t *testing.T) {
	f := NewField16()
	// p(x) = 3 + 5x + x^2 at x=2: 3 ^ Mul(5,2) ^ Mul(2, 2)... compute manually.
	coeffs := []Elem{3, 5, 1}
	x := Elem(2)
	want := f.Add(f.Add(3, f.Mul(5, x)), f.Mul(x, x))
	if got := f.EvalPoly(coeffs, x); got != want {
		t.Fatalf("EvalPoly = %d, want %d", got, want)
	}
}

func TestVandermondeRank(t *testing.T) {
	f := NewField16()
	// Any w rows of an n x w Vandermonde matrix are independent; in
	// particular the full matrix has rank w.
	for _, dims := range [][2]int{{5, 3}, {10, 10}, {20, 7}, {64, 32}} {
		n, w := dims[0], dims[1]
		m := Vandermonde(f, n, w)
		if got := m.Rank(); got != w {
			t.Fatalf("Vandermonde(%d,%d) rank = %d, want %d", n, w, got, w)
		}
	}
}

func TestVandermondeSubmatrixInvertible(t *testing.T) {
	f := NewField16()
	rng := rand.New(rand.NewSource(7))
	n, w := 24, 8
	m := Vandermonde(f, n, w)
	for trial := 0; trial < 25; trial++ {
		rows := rng.Perm(n)[:w]
		sub := NewMatrix(f, w, w)
		for i, r := range rows {
			for j := 0; j < w; j++ {
				sub.Set(i, j, m.At(r, j))
			}
		}
		if got := sub.Rank(); got != w {
			t.Fatalf("submatrix of rows %v has rank %d, want %d", rows, got, w)
		}
	}
}

func TestSolveLinearRoundTrip(t *testing.T) {
	f := NewField16()
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(12)
		a := NewMatrix(f, n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, Elem(rng.Intn(Order16)))
			}
		}
		if a.Rank() != n {
			continue // skip singular draws
		}
		x := make([]Elem, n)
		for i := range x {
			x[i] = Elem(rng.Intn(Order16))
		}
		b := a.MulVec(x)
		got, err := SolveLinear(a, b)
		if err != nil {
			t.Fatalf("SolveLinear failed on full-rank matrix: %v", err)
		}
		for i := range x {
			if got[i] != x[i] {
				t.Fatalf("trial %d: solution mismatch at %d: got %d want %d", trial, i, got[i], x[i])
			}
		}
	}
}

func TestSolveLinearSingular(t *testing.T) {
	f := NewField16()
	a := NewMatrix(f, 2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 1)
	a.Set(1, 1, 2)
	if _, err := SolveLinear(a, []Elem{1, 2}); err == nil {
		t.Fatal("expected error on singular matrix")
	}
}

func TestTransposeMulVec(t *testing.T) {
	f := NewField16()
	m := Vandermonde(f, 4, 3)
	x := []Elem{1, 2, 3, 4}
	got := m.TransposeMulVec(x)
	for j := 0; j < 3; j++ {
		var want Elem
		for i := 0; i < 4; i++ {
			want ^= f.Mul(m.At(i, j), x[i])
		}
		if got[j] != want {
			t.Fatalf("TransposeMulVec[%d] = %d, want %d", j, got[j], want)
		}
	}
}

func BenchmarkMul16(b *testing.B) {
	f := NewField16()
	var acc Elem = 1
	for i := 0; i < b.N; i++ {
		acc = f.Mul(acc, Elem(i)|1)
	}
	_ = acc
}

func TestDivAndExpWrap(t *testing.T) {
	f := NewField16()
	for _, pair := range [][2]Elem{{6, 3}, {12345, 999}, {1, 65535}} {
		q := f.Div(pair[0], pair[1])
		if f.Mul(q, pair[1]) != pair[0] {
			t.Fatalf("Div(%d,%d) inconsistent", pair[0], pair[1])
		}
	}
	// Exp wraps negative and over-range exponents.
	if f.Exp(-1) != f.Exp(Order16-2) {
		t.Fatal("negative Exp wrap wrong")
	}
	if f.Exp(Order16-1) != f.Exp(0) {
		t.Fatal("Exp period wrong")
	}
}

func TestField8Arithmetic(t *testing.T) {
	f := NewField8()
	if f.Order() != Order8 || f.K() != 8 {
		t.Fatal("field parameters wrong")
	}
	for a := 1; a < Order8; a++ {
		if f.Mul(Elem(a), f.Inv(Elem(a))) != 1 {
			t.Fatalf("GF(2^8) inverse broken at %d", a)
		}
	}
}
