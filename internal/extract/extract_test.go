package extract

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mobilecongest/internal/gf"
)

var testField = gf.NewField16()

func TestResilienceRankAllSubsets(t *testing.T) {
	// Small enough to enumerate: n=6, m=3, t=3. Every observed set of size
	// <= 3 must leave the outputs uniform.
	ex, err := New(testField, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	var idx [6]int
	for i := range idx {
		idx[i] = i
	}
	for a := 0; a < 6; a++ {
		for b := a + 1; b < 6; b++ {
			for c := b + 1; c < 6; c++ {
				ok, err := ex.VerifyResilience([]int{a, b, c})
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					t.Fatalf("resilience fails for observed set {%d,%d,%d}", a, b, c)
				}
			}
		}
	}
}

func TestResilienceRandomSubsets(t *testing.T) {
	ex, err := New(testField, 40, 12)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		tObs := rng.Intn(ex.Resilience() + 1)
		obs := rng.Perm(40)[:tObs]
		ok, err := ex.VerifyResilience(obs)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("resilience fails for random observed set %v", obs)
		}
	}
}

func TestResilienceBudgetEnforced(t *testing.T) {
	ex, _ := New(testField, 10, 4)
	if _, err := ex.VerifyResilience([]int{0, 1, 2, 3, 4, 5, 6}); err == nil {
		t.Fatal("over-budget observed set accepted")
	}
	if _, err := ex.VerifyResilience([]int{99}); err == nil {
		t.Fatal("out-of-range index accepted")
	}
}

// TestOutputUniformityEmpirical fixes an observed set and checks the output
// distribution is uniform over random free inputs: every output bucket
// should be hit roughly equally.
func TestOutputUniformityEmpirical(t *testing.T) {
	ex, _ := New(testField, 8, 2)
	rng := rand.New(rand.NewSource(17))
	observedIdx := []int{1, 5, 6} // fixed, known-to-adversary positions
	obsVals := []gf.Elem{111, 222, 333}
	const trials = 20000
	const buckets = 8
	counts := make([]int, buckets)
	for trial := 0; trial < trials; trial++ {
		x := make([]gf.Elem, 8)
		for i := range x {
			x[i] = gf.Elem(rng.Intn(gf.Order16))
		}
		for i, oi := range observedIdx {
			x[oi] = obsVals[i]
		}
		y, err := ex.Extract(x)
		if err != nil {
			t.Fatal(err)
		}
		counts[int(y[0])*buckets/gf.Order16]++
	}
	want := float64(trials) / buckets
	for i, c := range counts {
		if float64(c) < want*0.9 || float64(c) > want*1.1 {
			t.Errorf("output bucket %d count %d far from uniform %f", i, c, want)
		}
	}
}

func TestExtractLinear(t *testing.T) {
	ex, _ := New(testField, 12, 5)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := make([]gf.Elem, 12)
		y := make([]gf.Elem, 12)
		for i := range x {
			x[i] = gf.Elem(rng.Intn(gf.Order16))
			y[i] = gf.Elem(rng.Intn(gf.Order16))
		}
		xy := make([]gf.Elem, 12)
		for i := range xy {
			xy[i] = x[i] ^ y[i]
		}
		ex1, _ := ex.Extract(x)
		ex2, _ := ex.Extract(y)
		ex3, _ := ex.Extract(xy)
		for i := range ex3 {
			if ex3[i] != ex1[i]^ex2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDeriveKeys(t *testing.T) {
	ex, _ := New(testField, 10, 4)
	rng := rand.New(rand.NewSource(23))
	fwd := make([]gf.Elem, 10)
	bwd := make([]gf.Elem, 10)
	for i := range fwd {
		fwd[i] = gf.Elem(rng.Intn(gf.Order16))
		bwd[i] = gf.Elem(rng.Intn(gf.Order16))
	}
	ks, err := ex.DeriveKeys(fwd, bwd)
	if err != nil {
		t.Fatal(err)
	}
	if len(ks.Fwd) != 4 || len(ks.Bwd) != 4 {
		t.Fatalf("key schedule lengths %d/%d, want 4/4", len(ks.Fwd), len(ks.Bwd))
	}
	// Both endpoints computing from the same exchanged values get identical
	// schedules — determinism check.
	ks2, _ := ex.DeriveKeys(fwd, bwd)
	for i := range ks.Fwd {
		if ks.Fwd[i] != ks2.Fwd[i] || ks.Bwd[i] != ks2.Bwd[i] {
			t.Fatal("key derivation is not deterministic")
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(testField, 4, 5); err == nil {
		t.Fatal("m > n accepted")
	}
	if _, err := New(testField, 4, 0); err == nil {
		t.Fatal("m = 0 accepted")
	}
	if _, err := New(testField, gf.Order16, 4); err == nil {
		t.Fatal("n >= order accepted")
	}
}
