// Package extract implements the bit-extraction problem of Chor et al.
// (Theorem 2.1 of the paper): (t,k)-resilient functions built from
// Vandermonde matrices over GF(2^16). Given n = r+t random field elements
// exchanged across an edge, of which an adversary has observed at most t, the
// extractor produces r output keys that remain uniform and independent in the
// adversary's view. This is the engine behind the static-to-mobile security
// compiler (Theorem 1.2) and the key-pool phases of Appendix A.
package extract

import (
	"fmt"

	"mobilecongest/internal/gf"
)

// Extractor derives m hidden keys from n partially-observed random values,
// where resilience holds as long as the adversary observed at most n-m of
// them.
type Extractor struct {
	f *gf.Field
	m *gf.Matrix // n x m Vandermonde
}

// New constructs an extractor mapping n input elements to m output keys,
// resilient against t = n-m observed inputs (Theorem 2.1: B_k(n,t) = n-t).
func New(f *gf.Field, n, m int) (*Extractor, error) {
	if m < 1 || m > n {
		return nil, fmt.Errorf("extract: need 1 <= m <= n, got m=%d n=%d", m, n)
	}
	if n >= f.Order()-1 {
		return nil, fmt.Errorf("extract: n=%d too large for field order %d", n, f.Order())
	}
	return &Extractor{f: f, m: gf.Vandermonde(f, n, m)}, nil
}

// N returns the number of input elements.
func (e *Extractor) N() int { return e.m.Rows() }

// M returns the number of output keys.
func (e *Extractor) M() int { return e.m.Cols() }

// Resilience returns t = n-m, the number of inputs the adversary may know
// without learning anything about the outputs.
func (e *Extractor) Resilience() int { return e.N() - e.M() }

// Extract computes the m keys y_j = sum_i M[i][j] * x_i. If at most
// Resilience() of the x_i are known to the adversary and the rest are
// uniform, the outputs are i.i.d. uniform in the adversary's view.
func (e *Extractor) Extract(x []gf.Elem) ([]gf.Elem, error) {
	if len(x) != e.N() {
		return nil, fmt.Errorf("extract: input length %d, want %d", len(x), e.N())
	}
	return e.m.TransposeMulVec(x), nil
}

// VerifyResilience checks algebraically that for the given set of observed
// input indices (|observed| <= t), the map from the unobserved inputs to the
// outputs is surjective — the linear-algebra condition equivalent to the
// outputs being uniform conditioned on the observed inputs. The experiment
// harness uses this as the "perfect security" certificate (experiment T2).
func (e *Extractor) VerifyResilience(observed []int) (bool, error) {
	if len(observed) > e.Resilience() {
		return false, fmt.Errorf("extract: %d observed indices exceeds resilience %d", len(observed), e.Resilience())
	}
	isObs := make(map[int]bool, len(observed))
	for _, i := range observed {
		if i < 0 || i >= e.N() {
			return false, fmt.Errorf("extract: observed index %d out of range", i)
		}
		isObs[i] = true
	}
	// Build the submatrix of M restricted to unobserved rows; outputs are
	// uniform iff this (n-|observed|) x m matrix has rank m.
	free := e.N() - len(isObs)
	sub := gf.NewMatrix(e.f, free, e.M())
	r := 0
	for i := 0; i < e.N(); i++ {
		if isObs[i] {
			continue
		}
		for j := 0; j < e.M(); j++ {
			sub.Set(r, j, e.m.At(i, j))
		}
		r++
	}
	return sub.Rank() == e.M(), nil
}

// KeySchedule is the per-edge key material computed in the first phase of
// the static-to-mobile compiler: r keys per direction.
type KeySchedule struct {
	// Fwd[i] encrypts the round-i message from the lower-ID endpoint to the
	// higher-ID endpoint; Bwd[i] the reverse direction.
	Fwd []gf.Elem
	Bwd []gf.Elem
}

// DeriveKeys runs the extractor on the two directed streams of exchanged
// random values (fwd[j] sent low->high in key round j, bwd[j] the reverse)
// and returns r keys per direction.
func (e *Extractor) DeriveKeys(fwd, bwd []gf.Elem) (*KeySchedule, error) {
	kf, err := e.Extract(fwd)
	if err != nil {
		return nil, err
	}
	kb, err := e.Extract(bwd)
	if err != nil {
		return nil, err
	}
	return &KeySchedule{Fwd: kf, Bwd: kb}, nil
}
