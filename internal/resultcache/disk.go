package resultcache

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// The disk tier: an append-only JSONL file, one entry per line. Appends are
// single write(2) calls on an O_APPEND descriptor, so a crash can tear at
// most the final line; load stops at the first line that fails to parse and
// ignores a trailing line with no newline, treating both as the torn tail.
// There is no in-place mutation and no compaction — entries from older code
// versions are skipped on load (counted in Stats.DiskSkipped) but left in
// the file, so a cache directory shared across versions keeps every
// version's results until the operator clears it.

// diskFileName is the JSONL file inside a cache directory.
const diskFileName = "results.jsonl"

// diskLine is the wire form of one persisted entry.
type diskLine struct {
	Version string          `json:"version"`
	Label   string          `json:"label"`
	Seed    int64           `json:"seed"`
	Engine  string          `json:"engine"`
	Value   json.RawMessage `json:"value"`
}

type diskTier struct {
	path string
	f    *os.File
}

// Open returns a cache backed by the JSONL disk tier at dir (created if
// missing): existing entries under the pinned version are loaded into the
// memory tier (newest line wins for duplicate keys, byte budget respected),
// and every subsequent Put appends one line. maxBytes, version, and codec
// are as in New; the file may hold entries from any number of versions.
func Open[V any](maxBytes int64, version string, codec Codec[V], dir string) (*Cache[V], error) {
	c := New(maxBytes, version, codec)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("resultcache: %w", err)
	}
	path := filepath.Join(dir, diskFileName)
	if err := c.loadDisk(path); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("resultcache: %w", err)
	}
	c.disk = &diskTier{path: path, f: f}
	return c, nil
}

// loadDisk replays the JSONL file into the memory tier. A missing file is
// an empty cache; a malformed or newline-less final line is a torn tail and
// is ignored along with anything after it.
func (c *Cache[V]) loadDisk(path string) error {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("resultcache: %w", err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<16)
	for {
		line, err := r.ReadBytes('\n')
		if err == io.EOF {
			// A final chunk without its newline is a torn append; drop it.
			return nil
		}
		if err != nil {
			return fmt.Errorf("resultcache: reading %s: %w", path, err)
		}
		var dl diskLine
		if json.Unmarshal(line, &dl) != nil {
			// Torn or corrupt line: everything from here on is untrusted.
			return nil
		}
		if dl.Version != c.version {
			c.diskSkipped++
			continue
		}
		v, err := c.codec.Decode(dl.Value)
		if err != nil {
			c.diskSkipped++
			continue
		}
		fk := fullKey{Key: Key{Label: dl.Label, Seed: dl.Seed, Engine: dl.Engine}, Version: dl.Version}
		c.insert(fk, v, entrySize(fk, len(dl.Value)))
		c.diskLoaded++
	}
}

// append writes one entry line. Callers hold the cache mutex, serializing
// appends from concurrent Puts.
func (d *diskTier) append(fk fullKey, data []byte) error {
	line, err := json.Marshal(diskLine{
		Version: fk.Version,
		Label:   fk.Label,
		Seed:    fk.Seed,
		Engine:  fk.Engine,
		Value:   data,
	})
	if err != nil {
		return err
	}
	// One Write call per line keeps tearing confined to the tail even when
	// several processes share the file through O_APPEND.
	if _, err := d.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("resultcache: appending %s: %w", d.path, err)
	}
	return nil
}

func (d *diskTier) close() error {
	return d.f.Close()
}
