package resultcache

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var stringCodec = Codec[string]{
	Encode: func(s string) ([]byte, error) { return json.Marshal(s) },
	Decode: func(b []byte) (string, error) {
		var s string
		err := json.Unmarshal(b, &s)
		return s, err
	},
}

func key(i int) Key { return Key{Label: fmt.Sprintf("cell-%d", i), Seed: int64(i), Engine: "step"} }

func TestGetPutCounters(t *testing.T) {
	c := New(0, "v1", stringCodec)
	if _, ok := c.Get(key(1)); ok {
		t.Fatal("hit on empty cache")
	}
	if err := c.Put(key(1), "one"); err != nil {
		t.Fatal(err)
	}
	v, ok := c.Get(key(1))
	if !ok || v != "one" {
		t.Fatalf("got %q, %v", v, ok)
	}
	// Same label, different seed and different engine are distinct addresses.
	if _, ok := c.Get(Key{Label: "cell-1", Seed: 2, Engine: "step"}); ok {
		t.Fatal("seed is not part of the address")
	}
	if _, ok := c.Get(Key{Label: "cell-1", Seed: 1, Engine: "goroutine"}); ok {
		t.Fatal("engine is not part of the address")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 3 || s.Puts != 1 || s.Entries != 1 || s.Version != "v1" {
		t.Fatalf("stats = %+v", s)
	}
	if s.Bytes <= 0 {
		t.Fatalf("bytes accounting missing: %+v", s)
	}
}

func TestLRUEviction(t *testing.T) {
	// Budget for roughly three entries; keys/values are same-sized so the
	// accounting is uniform.
	one := entrySize(fullKey{Key: key(0), Version: "v1"}, len(`"val-0"`))
	c := New(3*one, "v1", stringCodec)
	for i := 0; i < 3; i++ {
		if err := c.Put(key(i), fmt.Sprintf("val-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	// Touch 0 so 1 becomes the LRU victim.
	if _, ok := c.Get(key(0)); !ok {
		t.Fatal("warm entry missing")
	}
	if err := c.Put(key(3), "val-3"); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(key(1)); ok {
		t.Fatal("LRU entry survived past the budget")
	}
	for _, i := range []int{0, 2, 3} {
		if _, ok := c.Get(key(i)); !ok {
			t.Fatalf("entry %d evicted out of LRU order", i)
		}
	}
	if s := c.Stats(); s.Evictions != 1 || s.Entries != 3 || s.Bytes > s.MaxBytes {
		t.Fatalf("stats = %+v", s)
	}
}

func TestOversizeValueNotAdmitted(t *testing.T) {
	c := New(64, "v1", stringCodec)
	if err := c.Put(key(1), strings.Repeat("x", 1024)); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(key(1)); ok {
		t.Fatal("entry bigger than the whole budget was admitted")
	}
	if s := c.Stats(); s.Entries != 0 || s.Bytes != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestPutReplacesInPlace(t *testing.T) {
	c := New(0, "v1", stringCodec)
	if err := c.Put(key(1), "first"); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(key(1), "second"); err != nil {
		t.Fatal(err)
	}
	if v, _ := c.Get(key(1)); v != "second" {
		t.Fatalf("got %q", v)
	}
	if s := c.Stats(); s.Entries != 1 {
		t.Fatalf("replacement duplicated the entry: %+v", s)
	}
}

func TestSetVersionInvalidates(t *testing.T) {
	c := New(0, "v1", stringCodec)
	if err := c.Put(key(1), "one"); err != nil {
		t.Fatal(err)
	}
	c.SetVersion("v2")
	if _, ok := c.Get(key(1)); ok {
		t.Fatal("v1 entry served under v2")
	}
	if err := c.Put(key(1), "two"); err != nil {
		t.Fatal(err)
	}
	if v, _ := c.Get(key(1)); v != "two" {
		t.Fatalf("got %q", v)
	}
	c.SetVersion("v1")
	if v, ok := c.Get(key(1)); !ok || v != "one" {
		t.Fatalf("v1 entry lost after version round-trip: %q, %v", v, ok)
	}
}

func TestDiskTierRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(0, "v1", stringCodec, dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := c.Put(key(i), fmt.Sprintf("val-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	// Rewrite one key: the newest line must win on reload.
	if err := c.Put(key(2), "rewritten"); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	c2, err := Open(0, "v1", stringCodec, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	for i := 0; i < 4; i++ {
		want := fmt.Sprintf("val-%d", i)
		if i == 2 {
			want = "rewritten"
		}
		if v, ok := c2.Get(key(i)); !ok || v != want {
			t.Fatalf("entry %d: got %q, %v (want %q)", i, v, ok, want)
		}
	}
	if s := c2.Stats(); s.DiskLoaded != 5 || s.Entries != 4 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestDiskTierVersionSkipped(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(0, "old", stringCodec, dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(key(1), "stale"); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	c2, err := Open(0, "new", stringCodec, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, ok := c2.Get(key(1)); ok {
		t.Fatal("stale-version entry served by new code")
	}
	if s := c2.Stats(); s.DiskSkipped != 1 || s.DiskLoaded != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestDiskTierTornTailIgnored(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(0, "v1", stringCodec, dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := c.Put(key(i), fmt.Sprintf("val-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, diskFileName)
	for name, torn := range map[string]string{
		"no-newline":   `{"version":"v1","label":"cell-9","seed":9,"eng`,
		"corrupt-line": "{\"version\":\"v1\",不完整\n",
	} {
		t.Run(name, func(t *testing.T) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, append(append([]byte(nil), data...), torn...), 0o644); err != nil {
				t.Fatal(err)
			}
			c2, err := Open(0, "v1", stringCodec, dir)
			if err != nil {
				t.Fatal(err)
			}
			defer c2.Close()
			for i := 0; i < 3; i++ {
				if v, ok := c2.Get(key(i)); !ok || v != fmt.Sprintf("val-%d", i) {
					t.Fatalf("intact entry %d lost to torn tail: %q, %v", i, v, ok)
				}
			}
			if _, ok := c2.Get(key(9)); ok {
				t.Fatal("torn tail entry served")
			}
			// Restore the intact file for the next subtest.
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestDiskTierBudgetRespectedOnLoad(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(0, "v1", stringCodec, dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := c.Put(key(i), fmt.Sprintf("val-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	one := entrySize(fullKey{Key: key(0), Version: "v1"}, len(`"val-0"`))
	c2, err := Open(2*one, "v1", stringCodec, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	s := c2.Stats()
	if s.Entries != 2 || s.Bytes > s.MaxBytes {
		t.Fatalf("stats = %+v", s)
	}
	// The newest file lines survive the load-time eviction.
	for _, i := range []int{6, 7} {
		if _, ok := c2.Get(key(i)); !ok {
			t.Fatalf("newest entry %d not resident", i)
		}
	}
}

func TestConcurrentAccess(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(1<<20, "v1", stringCodec, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := key(i % 50)
				if v, ok := c.Get(k); ok {
					if want := fmt.Sprintf("val-%d", i%50); v != want {
						panic(fmt.Sprintf("got %q want %q", v, want))
					}
				} else if err := c.Put(k, fmt.Sprintf("val-%d", i%50)); err != nil {
					panic(err)
				}
			}
		}(g)
	}
	wg.Wait()
	s := c.Stats()
	if s.Hits+s.Misses != 8*200 {
		t.Fatalf("lost lookups: %+v", s)
	}
}

func TestBuildVersionStable(t *testing.T) {
	v1, v2 := BuildVersion(), BuildVersion()
	if v1 == "" || v1 != v2 {
		t.Fatalf("BuildVersion unstable: %q vs %q", v1, v2)
	}
}
