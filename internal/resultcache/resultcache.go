// Package resultcache is a content-addressed cache for deterministic
// simulation results. Every sweep cell is a pure function of its canonical
// label, derived seed, execution engine, and the code that ran it — so a
// result computed once never needs recomputing. The cache stores decoded
// values in a bounded in-memory LRU tier (byte budget accounted against the
// encoded size) and, optionally, in an append-only JSONL disk tier that
// survives restarts; every entry is keyed under a version string derived
// from the running build, so entries written by different code can never be
// served as current (they are skipped on disk load and unreachable in
// memory).
//
// The cache is safe for concurrent use by any number of goroutines.
package resultcache

import (
	"container/list"
	"sync"
)

// Key identifies one cached result within a version: the cell's canonical
// label (every axis "name=value" fragment plus rep and any run-shaping
// fields the label itself does not carry, e.g. a max-rounds bound), the
// cell's derived seed, and the engine that executed it. The cache composes
// the full content address by appending its pinned code version.
type Key struct {
	Label  string
	Seed   int64
	Engine string
}

// fullKey is the in-memory map key: a Key under one code version.
type fullKey struct {
	Key
	Version string
}

// Codec serializes values for the disk tier; the encoded size also feeds
// the memory tier's byte accounting, so the budget tracks what the entries
// would occupy at rest rather than Go heap shapes.
type Codec[V any] struct {
	Encode func(V) ([]byte, error)
	Decode func([]byte) (V, error)
}

// Stats is a point-in-time snapshot of the cache's counters.
type Stats struct {
	Version     string `json:"version"`
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	Puts        uint64 `json:"puts"`
	Evictions   uint64 `json:"evictions"`
	Entries     int    `json:"entries"`
	Bytes       int64  `json:"bytes"`
	MaxBytes    int64  `json:"max_bytes,omitempty"`
	DiskPath    string `json:"disk_path,omitempty"`
	DiskLoaded  int    `json:"disk_loaded,omitempty"`
	DiskSkipped int    `json:"disk_skipped,omitempty"`
	DiskError   string `json:"disk_error,omitempty"`
}

// entry is one resident cache entry.
type entry[V any] struct {
	key  fullKey
	val  V
	size int64
}

// entryOverhead is the fixed per-entry byte charge on top of the encoded
// value and key strings (list element, map bucket share, struct headers).
const entryOverhead = 96

// Cache is a content-addressed result cache: a bounded in-memory LRU over
// decoded values, optionally backed by an append-only JSONL disk tier.
// Construct with New or Open.
type Cache[V any] struct {
	codec    Codec[V]
	maxBytes int64

	mu          sync.Mutex
	version     string
	entries     map[fullKey]*list.Element
	lru         *list.List // front = most recently used
	bytes       int64
	hits        uint64
	misses      uint64
	puts        uint64
	evictions   uint64
	disk        *diskTier
	diskLoaded  int
	diskSkipped int
	diskErr     error
}

// New returns a memory-only cache. maxBytes bounds the sum of encoded entry
// sizes (plus a fixed per-entry overhead); <= 0 means unbounded. version ""
// pins the cache to BuildVersion().
func New[V any](maxBytes int64, version string, codec Codec[V]) *Cache[V] {
	if version == "" {
		version = BuildVersion()
	}
	return &Cache[V]{
		codec:    codec,
		maxBytes: maxBytes,
		version:  version,
		entries:  map[fullKey]*list.Element{},
		lru:      list.New(),
	}
}

// Version returns the code version the cache currently keys under.
func (c *Cache[V]) Version() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.version
}

// SetVersion re-pins the version all subsequent Gets and Puts key under —
// the test hook behind the "stale entries never leak across code changes"
// contract. Entries stored under other versions stay resident until evicted
// but can no longer be returned.
func (c *Cache[V]) SetVersion(version string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.version = version
}

// Get returns the cached value for k under the cache's pinned version.
func (c *Cache[V]) Get(k Key) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[fullKey{Key: k, Version: c.version}]; ok {
		c.lru.MoveToFront(el)
		c.hits++
		return el.Value.(*entry[V]).val, true
	}
	c.misses++
	var zero V
	return zero, false
}

// Put stores v under k and the cache's pinned version, in memory and (when
// a disk tier is attached) durably. Values larger than the whole byte
// budget are not admitted. The returned error reports codec or disk-append
// failures; the memory tier is updated regardless of disk failures, which
// are also remembered in Stats.DiskError.
func (c *Cache[V]) Put(k Key, v V) error {
	data, err := c.codec.Encode(v)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.puts++
	fk := fullKey{Key: k, Version: c.version}
	size := entrySize(fk, len(data))
	if c.maxBytes > 0 && size > c.maxBytes {
		return nil
	}
	c.insert(fk, v, size)
	if c.disk != nil {
		if err := c.disk.append(fk, data); err != nil {
			if c.diskErr == nil {
				c.diskErr = err
			}
			return err
		}
	}
	return nil
}

// insert adds or replaces one resident entry and evicts down to the budget.
// Callers hold c.mu.
func (c *Cache[V]) insert(fk fullKey, v V, size int64) {
	if el, ok := c.entries[fk]; ok {
		e := el.Value.(*entry[V])
		c.bytes += size - e.size
		e.val, e.size = v, size
		c.lru.MoveToFront(el)
	} else {
		c.entries[fk] = c.lru.PushFront(&entry[V]{key: fk, val: v, size: size})
		c.bytes += size
	}
	for c.maxBytes > 0 && c.bytes > c.maxBytes && c.lru.Len() > 0 {
		back := c.lru.Back()
		e := back.Value.(*entry[V])
		c.lru.Remove(back)
		delete(c.entries, e.key)
		c.bytes -= e.size
		c.evictions++
	}
}

func entrySize(fk fullKey, encoded int) int64 {
	return int64(encoded + len(fk.Label) + len(fk.Engine) + len(fk.Version) + entryOverhead)
}

// Stats snapshots the counters.
func (c *Cache[V]) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Stats{
		Version:     c.version,
		Hits:        c.hits,
		Misses:      c.misses,
		Puts:        c.puts,
		Evictions:   c.evictions,
		Entries:     c.lru.Len(),
		Bytes:       c.bytes,
		MaxBytes:    c.maxBytes,
		DiskLoaded:  c.diskLoaded,
		DiskSkipped: c.diskSkipped,
	}
	if c.disk != nil {
		s.DiskPath = c.disk.path
	}
	if c.diskErr != nil {
		s.DiskError = c.diskErr.Error()
	}
	return s
}

// Close releases the disk tier (a no-op for memory-only caches). The cache
// stays usable as a memory tier after Close.
func (c *Cache[V]) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.disk == nil {
		return nil
	}
	err := c.disk.close()
	c.disk = nil
	if err == nil {
		err = c.diskErr
	}
	return err
}
