package resultcache

import (
	"crypto/sha256"
	"fmt"
	"io"
	"os"
	"runtime/debug"
	"sync"
)

// BuildVersion derives the running build's cache version string, computed
// once per process. A clean VCS-stamped build is identified by its
// revision; anything else — dirty working trees, unstamped `go test` /
// `go run` binaries — falls back to a hash of the executable itself, so
// *any* code change rotates the version and stale cached results can never
// be served by newer (or older) code. Caches constructed with an explicit
// version string (tests, coordinated fleets) bypass this entirely.
var BuildVersion = sync.OnceValue(func() string {
	var mod, rev, dirty string
	if bi, ok := debug.ReadBuildInfo(); ok {
		mod = bi.Main.Version
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				if s.Value == "true" {
					dirty = "+dirty"
				}
			}
		}
	}
	if rev != "" && dirty == "" {
		return "vcs:" + rev
	}
	if sum, err := executableHash(); err == nil {
		return "bin:" + sum + dirty
	}
	if mod == "" {
		mod = "unknown"
	}
	return "mod:" + mod + dirty
})

// executableHash returns a short content hash of the running binary.
func executableHash() (string, error) {
	exe, err := os.Executable()
	if err != nil {
		return "", err
	}
	f, err := os.Open(exe)
	if err != nil {
		return "", err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", err
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:8]), nil
}
