package harness

import (
	mc "mobilecongest"

	"fmt"

	"mobilecongest/internal/adversary"
	"mobilecongest/internal/algorithms"
	"mobilecongest/internal/congest"
	"mobilecongest/internal/graph"
	"mobilecongest/internal/secure"
)

func init() {
	register(Experiment{ID: "T11", Title: "View indistinguishability (statistical, Theorem 1.2)", Run: runT11})
}

// runT11 is the statistical side of the security validation: run the
// compiled broadcast on two different inputs under *identical* eavesdropper
// schedules across many seeded trials and compare the view byte
// distributions with a chi-square test. The compiled algorithm must be
// indistinguishable; the *unprotected* payload (negative control) must be
// flagrantly distinguishable — proving the test has power.
func runT11(seed int64) (*Table, error) {
	tb := &Table{
		ID:      "T11",
		Title:   "View indistinguishability",
		Claim:   "compiled views pass chi-square indistinguishability; unprotected views fail it",
		Columns: []string{"system", "trials", "chi2", "dof", "indistinguishable"},
		Pass:    true,
	}
	g := graph.Petersen()
	r := g.Diameter() + 1
	tSlack := secure.SlackFor(r, 2) // f = 2 eavesdropper below
	inputs := [2]uint64{0x0101010101010101, 0xFEFEFEFEFEFEFEFE}
	const trials = 60

	collect := func(compiled bool) (*ByteHistogram, *ByteHistogram, error) {
		var hists [2]ByteHistogram
		for i := 0; i < trials; i++ {
			// Same schedule for both inputs: same eavesdropper seed.
			for which := 0; which < 2; which++ {
				eve := adversary.NewMobileEavesdropper(g, 2, seed+int64(i))
				in := make([][]byte, g.N())
				in[0] = congest.PutU64(nil, inputs[which])
				proto := algorithms.BroadcastInput(0, r)
				if compiled {
					proto = secure.StaticToMobile(proto, r, tSlack)
				}
				if _, err := runScenario(proto,
					mc.WithGraph(g), mc.WithSeed(seed+int64(i*2+which)), mc.WithInputs(in), mc.WithAdversary(eve)); err != nil {
					return nil, nil, err
				}
				// Only message payload bytes (positions after the 12-byte
				// observation header vary; ViewBytes interleaves headers,
				// which are input-independent, so the whole stream works).
				hists[which].AddView(eve.ViewBytes())
			}
		}
		return &hists[0], &hists[1], nil
	}

	h0, h1, err := collect(true)
	if err != nil {
		return nil, err
	}
	stat, dof := ChiSquare(h0, h1)
	okCompiled := Indistinguishable(stat, dof)
	if !okCompiled {
		tb.Pass = false
		tb.Notes = append(tb.Notes, "compiled views leaked")
	}
	tb.AddRow("compiled (Thm 1.2)", trials, fmt.Sprintf("%.0f", stat), dof, okCompiled)

	h0, h1, err = collect(false)
	if err != nil {
		return nil, err
	}
	stat, dof = ChiSquare(h0, h1)
	okPlain := Indistinguishable(stat, dof)
	if okPlain {
		tb.Pass = false
		tb.Notes = append(tb.Notes, "negative control: unprotected views passed — test has no power")
	}
	tb.AddRow("unprotected (control)", trials, fmt.Sprintf("%.0f", stat), dof, okPlain)
	return tb, nil
}
