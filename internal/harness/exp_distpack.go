package harness

import (
	mc "mobilecongest"

	"mobilecongest/internal/adversary"
	"mobilecongest/internal/algorithms"
	"mobilecongest/internal/graph"
	"mobilecongest/internal/resilient"
	"mobilecongest/internal/treepack"
)

func init() {
	register(Experiment{ID: "T10", Title: "Distributed tree-packing preprocessing (Appendix C / Corollary 3.9(ii))", Run: runT10})
}

// runT10 exercises the fully distributed preprocessing path for general
// graphs: the Appendix-C packing is computed by the CONGEST protocol
// (fault-free preprocessing, as Corollary 3.9(ii) permits), then the
// byzantine compiler runs on top of it under attack. The packing's load
// must stay Õ(1) (the multiplicative-weights guarantee) and the compiled
// payload must stay correct.
func runT10(seed int64) (*Table, error) {
	tb := &Table{
		ID:      "T10",
		Title:   "Distributed packing preprocessing",
		Claim:   "distributed packer: spanning trees with O~(1) load; compiled payload correct under attack",
		Columns: []string{"graph", "k", "good", "load", "pack-rounds", "compiled-correct"},
		Pass:    true,
	}
	for _, tc := range []struct {
		name string
		g    *graph.Graph
		k    int
		f    int
	}{
		{"circulant(12,3)", graph.Circulant(12, 3), 6, 1},
		{"clique(10)", graph.Clique(10), 6, 1},
	} {
		n := tc.g.N()
		packRes, err := runScenario(treepack.DistributedGreedyPacking(tc.k, n),
			mc.WithGraph(tc.g), mc.WithSeed(seed), mc.WithMaxRounds(1<<22))
		if err != nil {
			return nil, err
		}
		p := treepack.AssembleDistPacking(n, tc.k, packRes.Outputs)
		stats := p.Validate(tc.g, 0)
		sh := resilient.NewShared(tc.g, p)
		adv := adversary.NewMobileByzantine(tc.g, tc.f, seed, adversary.SelectRandom, adversary.CorruptFlip)
		res, err := runScenario(resilient.Compile(algorithms.FloodMax(tc.g.Diameter()), resilient.Config{Mode: resilient.SparseMode, F: tc.f, Rep: 5}),
			mc.WithGraph(tc.g), mc.WithSeed(seed+1), mc.WithShared(sh), mc.WithAdversary(adv), mc.WithMaxRounds(1<<23))
		if err != nil {
			return nil, err
		}
		correct := allEq(res.Outputs, uint64(n-1))
		if stats.GoodTrees != tc.k || stats.Load > 4 || !correct {
			tb.Pass = false
		}
		tb.AddRow(tc.name, tc.k, stats.GoodTrees, stats.Load, packRes.Stats.Rounds, correct)
	}
	return tb, nil
}
