package harness

import "testing"

// TestAllExperimentsPass runs the entire experiment suite; every table must
// report Pass — this is the repository's end-to-end reproduction check.
func TestAllExperimentsPass(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite is slow")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tb, err := e.Run(42)
			if err != nil {
				t.Fatalf("%s failed to run: %v", e.ID, err)
			}
			if !tb.Pass {
				t.Errorf("%s did not match its claim:\n%s", e.ID, tb.Render())
			}
		})
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"T1", "T2", "T3", "T4", "T5", "T6", "T7", "T8", "T9", "T10", "T11", "F1", "F2", "F3", "F4", "F5", "A1", "A2", "A3"}
	for _, id := range want {
		if _, ok := Get(id); !ok {
			t.Errorf("experiment %s missing from registry", id)
		}
	}
	if len(All()) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(All()), len(want))
	}
}

func TestTableRender(t *testing.T) {
	tb := &Table{ID: "X", Title: "t", Claim: "c", Columns: []string{"a", "b"}, Pass: true}
	tb.AddRow(1, "two")
	out := tb.Render()
	if out == "" || len(tb.Rows) != 1 {
		t.Fatal("render or AddRow broken")
	}
}
