package harness

import (
	mc "mobilecongest"

	"fmt"
	"sort"

	"mobilecongest/internal/adversary"
	"mobilecongest/internal/algorithms"
	"mobilecongest/internal/congest"
	"mobilecongest/internal/extract"
	"mobilecongest/internal/gf"
	"mobilecongest/internal/graph"
	"mobilecongest/internal/secure"
)

var expField = gf.NewField16()

func init() {
	register(Experiment{ID: "T1", Title: "Static-to-mobile security compiler (Theorem 1.2)", Run: runT1})
	register(Experiment{ID: "T2", Title: "Bit-extraction resilience certificate (Theorem 2.1)", Run: runT2})
	register(Experiment{ID: "T3", Title: "Mobile-secure unicast (Lemma A.3)", Run: runT3})
	register(Experiment{ID: "T4", Title: "Mobile-secure broadcast (Theorem A.4 variant)", Run: runT4})
	register(Experiment{ID: "T5", Title: "Congestion-sensitive secure compiler (Theorem 1.3)", Run: runT5})
}

// runT1 sweeps the key-phase slack t and reports (r', f') against the
// theorem's formulas, plus end-to-end correctness of the compiled payload.
func runT1(seed int64) (*Table, error) {
	tb := &Table{
		ID:      "T1",
		Title:   "Static-to-mobile security compiler",
		Claim:   "r' = 2r+t; f' = Theta(f*(t+1)/(r+t)); t >= 2fr gives f' = f; compiled run correct",
		Columns: []string{"r", "t", "f", "r'", "f'", "measured-rounds", "correct"},
		Pass:    true,
	}
	g := graph.Grid(3, 4)
	r := g.Diameter()
	f := 2
	for _, t := range []int{1, r, secure.SlackFor(r, f), 2 * secure.SlackFor(r, f)} {
		rp, fp := secure.MobileParams(r, t, f)
		res, err := runScenario(secure.StaticToMobile(algorithms.Broadcast(0, 31337, r), r, t),
			mc.WithGraph(g), mc.WithSeed(seed))
		if err != nil {
			return nil, err
		}
		correct := true
		for _, o := range res.Outputs {
			if o.(uint64) != 31337 {
				correct = false
			}
		}
		if !correct || res.Stats.Rounds != rp {
			tb.Pass = false
		}
		if t >= secure.SlackFor(r, f) && fp < f {
			tb.Pass = false
			tb.Notes = append(tb.Notes, fmt.Sprintf("t=%d >= 2fr but f'=%d < f=%d", t, fp, f))
		}
		tb.AddRow(r, t, f, rp, fp, res.Stats.Rounds, correct)
	}
	return tb, nil
}

// runT2 certifies perfect security algebraically: over random mobile
// schedules within budget f', every edge observed at most t times keeps a
// full-rank extractor, and at most f edges exceed t.
func runT2(seed int64) (*Table, error) {
	tb := &Table{
		ID:      "T2",
		Title:   "Bit-extraction resilience certificate",
		Claim:   "keys on edges observed <= t rounds stay uniform; at most f edges exceed t",
		Columns: []string{"graph", "f'", "trials", "rank-failures", "over-t-violations"},
		Pass:    true,
	}
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"petersen", graph.Petersen()},
		{"circulant(12,2)", graph.Circulant(12, 2)},
	} {
		r, tSlack, f := 6, 12, 2
		_, fPrime := secure.MobileParams(r, tSlack, f)
		ell := r + tSlack
		ex, err := extract.New(expField, ell, r)
		if err != nil {
			return nil, err
		}
		rankFail, overT := 0, 0
		const trials = 40
		for i := 0; i < trials; i++ {
			eve := adversary.NewMobileEavesdropper(tc.g, fPrime, seed+int64(i))
			obs := make(map[graph.Edge][]int)
			for round := 0; round < ell; round++ {
				for _, e := range eve.ControlledEdges(round) {
					obs[e] = append(obs[e], round)
				}
			}
			// Verify in sorted edge order so a verification error surfaces
			// the same edge on every run (map order is randomized).
			edges := make([]graph.Edge, 0, len(obs))
			for e := range obs {
				edges = append(edges, e)
			}
			sort.Slice(edges, func(a, b int) bool {
				if edges[a].U != edges[b].U {
					return edges[a].U < edges[b].U
				}
				return edges[a].V < edges[b].V
			})
			bad := 0
			for _, e := range edges {
				rounds := obs[e]
				if len(rounds) > tSlack {
					bad++
					continue
				}
				ok, err := ex.VerifyResilience(rounds)
				if err != nil {
					return nil, err
				}
				if !ok {
					rankFail++
				}
			}
			if bad > f {
				overT++
			}
		}
		if rankFail > 0 || overT > 0 {
			tb.Pass = false
		}
		tb.AddRow(tc.name, fPrime, trials, rankFail, overT)
	}
	return tb, nil
}

// runT3 measures unicast round complexity against the O(D) claim and checks
// the one-message-per-edge lightness plus correctness under mobile
// eavesdroppers.
func runT3(seed int64) (*Table, error) {
	tb := &Table{
		ID:      "T3",
		Title:   "Mobile-secure unicast",
		Claim:   "O(D) rounds, congestion 2, correct under f-mobile eavesdroppers",
		Columns: []string{"graph", "D", "rounds", "congestion", "correct"},
		Pass:    true,
	}
	for _, tc := range []struct {
		name string
		g    *graph.Graph
		s, d graph.NodeID
	}{
		{"cycle(16)", graph.Cycle(16), 0, 8},
		{"grid(4x4)", graph.Grid(4, 4), 0, 15},
		{"circulant(20,2)", graph.Circulant(20, 2), 1, 11},
		{"hypercube(4)", graph.Hypercube(4), 0, 15},
	} {
		sh := secure.NewUnicastShared(tc.g, tc.d)
		inputs := make([][]byte, tc.g.N())
		inputs[tc.s] = congest.PutU64(nil, 0xD00D)
		eve := adversary.NewMobileEavesdropper(tc.g, 2, seed)
		res, err := runScenario(secure.MobileSecureUnicast(tc.s),
			mc.WithGraph(tc.g), mc.WithSeed(seed), mc.WithInputs(inputs), mc.WithShared(sh), mc.WithAdversary(eve))
		if err != nil {
			return nil, err
		}
		got := res.Outputs[tc.d].(secure.UnicastResult).Secret
		correct := got == 0xD00D
		d := tc.g.Diameter()
		// O(D): rounds <= D+2 by construction.
		if !correct || res.Stats.Rounds > d+2 || res.Stats.MaxEdgeCongestion > 2 {
			tb.Pass = false
		}
		tb.AddRow(tc.name, d, res.Stats.Rounds, res.Stats.MaxEdgeCongestion, correct)
	}
	return tb, nil
}

// runT4 sweeps f for the mobile-secure broadcast and confirms the k > f*eta
// secrecy margin plus correctness.
func runT4(seed int64) (*Table, error) {
	tb := &Table{
		ID:      "T4",
		Title:   "Mobile-secure broadcast",
		Claim:   "correct delivery; share margin k > f*eta guarantees perfect secrecy",
		Columns: []string{"graph", "f", "k", "eta", "margin-ok", "rounds", "correct"},
		Pass:    true,
	}
	for _, f := range []int{1, 2} {
		g := graph.Circulant(14, 3)
		source := graph.NodeID(13)
		k := secure.MinSharesFor(f, 3) // provision for eta up to 3
		sh := secure.NewBroadcastShared(g, source, k, 8)
		eta := sh.Packing.Load()
		inputs := make([][]byte, g.N())
		inputs[source] = congest.PutU64(nil, 0xCAFE)
		eve := adversary.NewMobileEavesdropper(g, f, seed)
		res, err := runScenario(secure.MobileSecureBroadcast(f),
			mc.WithGraph(g), mc.WithSeed(seed), mc.WithInputs(inputs), mc.WithShared(sh), mc.WithAdversary(eve))
		if err != nil {
			return nil, err
		}
		correct := true
		for _, o := range res.Outputs {
			if o.(uint64) != 0xCAFE {
				correct = false
			}
		}
		marginOK := sh.Packing.K() > f*eta
		if !correct || !marginOK {
			tb.Pass = false
		}
		tb.AddRow("circulant(14,3)", f, sh.Packing.K(), eta, marginOK, res.Stats.Rounds, correct)
	}
	return tb, nil
}

// runT5 sweeps the payload congestion and confirms correctness plus the
// traffic-hiding property (every edge busy every Step-3 round).
func runT5(seed int64) (*Table, error) {
	tb := &Table{
		ID:      "T5",
		Title:   "Congestion-sensitive secure compiler",
		Claim:   "correct; all edges carry fixed-size ciphertext every round (pattern hiding)",
		Columns: []string{"r", "cong", "rounds", "msgs", "full-traffic", "correct"},
		Pass:    true,
	}
	g := graph.Circulant(10, 2)
	root := graph.NodeID(9)
	sh := secure.NewBroadcastShared(g, root, 4, 5)
	for _, r := range []int{3, 5} {
		rr := r
		payload := func(rt congest.Runtime) {
			pr := congest.Ports(rt)
			var have uint16
			if rt.ID() == 0 {
				have = 0xBEEF
			}
			for i := 0; i < rr; i++ {
				out := pr.OutBuf()
				if have != 0 {
					m := congest.Msg{byte(have >> 8), byte(have)}
					for p := range out {
						out[p] = m
					}
				}
				in := pr.ExchangePorts(out)
				for _, m := range in {
					if len(m) == 2 && have == 0 {
						have = uint16(m[0])<<8 | uint16(m[1])
					}
				}
			}
			rt.SetOutput(have)
		}
		res, err := runScenario(secure.CompileCongestionSensitive(payload, secure.CSConfig{R: rr, F: 1, Cong: rr}),
			mc.WithGraph(g), mc.WithSeed(seed), mc.WithShared(sh))
		if err != nil {
			return nil, err
		}
		correct := true
		for _, o := range res.Outputs {
			if o.(uint16) != 0xBEEF {
				correct = false
			}
		}
		fullTraffic := res.Stats.Messages >= rr*2*g.M()
		if !correct || !fullTraffic {
			tb.Pass = false
		}
		tb.AddRow(rr, rr, res.Stats.Rounds, res.Stats.Messages, fullTraffic, correct)
	}
	return tb, nil
}
