package harness

import (
	mc "mobilecongest"

	"fmt"
	"math/rand"

	"mobilecongest/internal/adversary"
	"mobilecongest/internal/algorithms"
	"mobilecongest/internal/ccpath"
	"mobilecongest/internal/congest"
	"mobilecongest/internal/cyclecover"
	"mobilecongest/internal/graph"
	"mobilecongest/internal/resilient"
	"mobilecongest/internal/rewind"
	"mobilecongest/internal/rsim"
	"mobilecongest/internal/sketch"
	"mobilecongest/internal/treepack"
)

func init() {
	register(Experiment{ID: "F4", Title: "Rewind compiler potential trace (Theorem 4.1)", Run: runF4})
	register(Experiment{ID: "F5", Title: "RS-substitute corruption threshold (Theorem 3.2)", Run: runF5})
	register(Experiment{ID: "T6", Title: "Cycle-cover compiler (Theorems 1.4/5.5)", Run: runT6})
	register(Experiment{ID: "T7", Title: "Tree packing quality (Lemma 3.10 / Theorem C.2)", Run: runT7})
	register(Experiment{ID: "T8", Title: "Sketch accuracy (Theorem 3.4)", Run: runT8})
	register(Experiment{ID: "A2", Title: "Ablation: rsim repetition factor", Run: runA2})
}

// runF4 traces the rewind compiler's transcript length under a bursty
// round-error-rate adversary; the potential argument demands the final
// transcript reach R within 5R global rounds, rewinding through bursts.
func runF4(seed int64) (*Table, error) {
	tb := &Table{
		ID:      "F4",
		Title:   "Rewind compiler under bursts",
		Claim:   "storms cost bounded progress (holds/rewinds, Phi loses <= 3 per bad round); transcripts still reach R in 5R global rounds",
		Columns: []string{"burst-pattern", "R", "global-rounds", "rewinds(max)", "lost-progress", "final-len", "correct"},
		Pass:    true,
	}
	n := 10
	g := graph.Clique(n)
	sh := resilient.CliqueShared(n)
	// Random corruption is absorbed by pluralities and commit thresholds;
	// the storm that genuinely stalls the compiler is *consistent*
	// corruption with sustained ownership: swap both directions of four
	// fixed edges for a stretch covering whole global rounds. Swapped
	// tuples fail the transcript hash check and owning 4 edges breaks 8 of
	// the 12 star trees, so the global rounds under the storm become bad
	// rounds. Our instantiation detects mismatches *before* appending, so
	// bad rounds usually surface as holds (bounded progress loss) and
	// rewinds only on asymmetric state decodes — either way the potential
	// accounting of Lemma 4.4 applies and the transcript still reaches R.
	storm := make([]int, 2000)
	for i := 0; i < 300; i++ {
		storm[i+170] = 4
	}
	ownedEdges := []graph.Edge{
		graph.NewEdge(0, 1), graph.NewEdge(2, 3), graph.NewEdge(4, 5), graph.NewEdge(6, 7),
	}
	for _, tc := range []struct {
		name        string
		burst       []int
		sel         adversary.Selector
		cor         adversary.Corruption
		wantRewinds bool // interpreted as "expect progress loss"
	}{
		{"steady-1", []int{1}, adversary.SelectRandom, adversary.CorruptRandomize, false},
		{"swap-storm", storm, adversary.SelectFixed(ownedEdges), adversary.CorruptSwap, true},
	} {
		r := 2
		adv := adversary.NewRoundErrorRate(g, 2200, tc.burst, seed, tc.sel, tc.cor)
		res, err := runScenario(rewind.Compile(algorithms.FloodMax(r), rewind.Config{R: r, F: 2, Rep: 5}),
			mc.WithGraph(g), mc.WithSeed(seed), mc.WithShared(sh), mc.WithAdversary(adv), mc.WithMaxRounds(1<<23))
		if err != nil {
			return nil, err
		}
		correct := true
		maxRewinds, finalLen := 0, 0
		for _, o := range res.Outputs {
			out := o.(rewind.Output)
			if out.Payload.(uint64) != uint64(n-1) {
				correct = false
			}
			if out.Trace.Rewinds > maxRewinds {
				maxRewinds = out.Trace.Rewinds
			}
			finalLen = out.Trace.Lens[len(out.Trace.Lens)-1]
		}
		lost := len(res.Outputs[0].(rewind.Output).Trace.Lens) - finalLen
		if !correct || finalLen < r {
			tb.Pass = false
		}
		if tc.wantRewinds && lost == 0 {
			tb.Pass = false
			tb.Notes = append(tb.Notes, "storm cost no progress — adversary accounting suspicious")
		}
		tb.AddRow(tc.name, r, 5*r, maxRewinds, lost, finalLen, correct)
	}
	return tb, nil
}

// runF5 sweeps the corrupted-round fraction on a single tree edge across
// the RS-substitute's threshold: bounded fractions only delay the commit
// (always delivered); owning the edge outright starves it (never
// delivered) — the Theorem 3.2 contract shape.
func runF5(seed int64) (*Table, error) {
	tb := &Table{
		ID:      "F5",
		Title:   "RS-substitute corruption threshold",
		Claim:   "corruption fraction <= 2/5 delivered; fraction 1 (owned edge) breaks",
		Columns: []string{"rep", "corrupt-frac", "delivered-frac"},
		Pass:    true,
	}
	n := 6
	g := graph.Path(n)
	tr := treepack.NewTree(n, 0)
	for v := 1; v < n; v++ {
		tr.Parent[v] = graph.NodeID(v - 1)
	}
	p := &treepack.Packing{Root: 0, Trees: []*treepack.Tree{tr}}
	views := rsim.Views(p)
	depth := n - 1
	rep := 5
	payload := []byte{0x5A}
	for _, corrupt := range []int{0, 1, 2, 3, 4, 5} {
		delivered := 0
		const trials = 8
		for trial := 0; trial < trials; trial++ {
			var sched [][]graph.Edge
			for r := 0; r < rsim.Rounds(depth, rep); r++ {
				if r%5 < corrupt {
					sched = append(sched, []graph.Edge{graph.NewEdge(2, 3)})
				} else {
					sched = append(sched, nil)
				}
			}
			proto := func(rt congest.Runtime) {
				tv := rt.Shared().([][]rsim.TreeView)[rt.ID()]
				payloads := make([][]byte, 1)
				if rt.ID() == 0 {
					payloads[0] = payload
				}
				got := rsim.BroadcastDown(rt, tv, payloads, depth, rep)
				rt.SetOutput(len(got[0]) == 1 && got[0][0] == 0x5A)
			}
			res, err := runScenario(proto,
				mc.WithGraph(g), mc.WithSeed(seed+int64(trial)), mc.WithShared(views), mc.WithAdversary(newFlipScheduled(sched)))
			if err != nil {
				return nil, err
			}
			ok := true
			for _, o := range res.Outputs {
				if o != true {
					ok = false
				}
			}
			if ok {
				delivered++
			}
		}
		frac := float64(delivered) / 8
		if corrupt <= 2 && frac < 1 {
			tb.Pass = false
			tb.Notes = append(tb.Notes, fmt.Sprintf("bounded corruption %d/5 broke delivery", corrupt))
		}
		if corrupt == 5 && frac > 0 {
			tb.Pass = false
			tb.Notes = append(tb.Notes, "owned edge still delivered")
		}
		tb.AddRow(rep, fmt.Sprintf("%d/5", corrupt), fmt.Sprintf("%.2f", frac))
	}
	return tb, nil
}

// flipScheduled XOR-corrupts both directions of scheduled edges. It is
// slot-native: each scheduled edge resolves to its two directed slots and
// only present messages are cloned and overridden, so corruption rounds
// allocate nothing beyond the corrupted payloads.
type flipScheduled struct {
	sched [][]graph.Edge
}

func newFlipScheduled(s [][]graph.Edge) *flipScheduled { return &flipScheduled{sched: s} }

// Intercept flips scheduled edges' traffic.
func (s *flipScheduled) Intercept(round int, tr *congest.RoundTraffic) {
	if round >= len(s.sched) {
		return
	}
	for _, e := range s.sched[round] {
		fwd, bwd := tr.EdgeSlots(e)
		for _, slot := range [2]int32{fwd, bwd} {
			if slot < 0 {
				continue
			}
			m := tr.Get(slot)
			if m == nil {
				continue
			}
			c := m.Clone()
			for i := range c {
				c[i] ^= 0xA5
			}
			tr.Set(slot, c)
		}
	}
}

// PerRoundEdges bounds the schedule width.
func (s *flipScheduled) PerRoundEdges() int {
	max := 0
	for _, r := range s.sched {
		if len(r) > max {
			max = len(r)
		}
	}
	return max
}

// runT6 validates the cycle-cover compiler's exact round formula and
// correctness for f in {1, 2}.
func runT6(seed int64) (*Table, error) {
	tb := &Table{
		ID:      "T6",
		Title:   "Cycle-cover compiler",
		Claim:   "r' = r * colors * (2f+1)*dilation rounds; correct at f <= (k-1)/2",
		Columns: []string{"graph", "f", "k", "dilation", "cong", "colors", "rounds", "predicted", "correct"},
		Pass:    true,
	}
	for _, tc := range []struct {
		name string
		g    *graph.Graph
		k, f int
	}{
		{"circulant(10,2)", graph.Circulant(10, 2), 3, 1},
		{"circulant(12,3)", graph.Circulant(12, 3), 5, 2},
	} {
		cover, err := cyclecover.Build(tc.g, tc.k)
		if err != nil {
			return nil, err
		}
		sh := ccpath.NewShared(cover)
		r := tc.g.Diameter()
		adv := adversary.NewMobileByzantine(tc.g, tc.f, seed, adversary.SelectRandom, adversary.CorruptRandomize)
		res, err := runScenario(ccpath.Compile(algorithms.FloodMax(r), tc.f),
			mc.WithGraph(tc.g), mc.WithSeed(seed), mc.WithShared(sh), mc.WithAdversary(adv), mc.WithMaxRounds(1<<23))
		if err != nil {
			return nil, err
		}
		correct := allEq(res.Outputs, uint64(tc.g.N()-1))
		predicted := r * sh.RoundsPerSimRound(tc.f)
		if !correct || res.Stats.Rounds != predicted {
			tb.Pass = false
		}
		tb.AddRow(tc.name, tc.f, tc.k, cover.Dilation, cover.Cong, cover.NumColors, res.Stats.Rounds, predicted, correct)
	}
	return tb, nil
}

// runT7 measures packing quality across families against the paper's
// bounds: clique stars (k=n, depth 2, load 2), greedy general packings
// (load O~(1) vs the Theorem C.2 envelope), expander packings (>= 90% good
// trees fault-free).
func runT7(seed int64) (*Table, error) {
	tb := &Table{
		ID:      "T7",
		Title:   "Tree packing quality",
		Claim:   "stars: (n,2,2); greedy: load O~(1); expander: >=2/3 good trees averaged over trials",
		Columns: []string{"family", "k", "good", "depth", "load", "ok"},
		Pass:    true,
	}
	// Clique stars.
	{
		n := 16
		p := treepack.CliqueStars(n)
		s := p.Validate(graph.Clique(n), 2)
		ok := s.GoodTrees == n && s.Load == 2
		if !ok {
			tb.Pass = false
		}
		tb.AddRow("clique-stars(16)", s.K, s.GoodTrees, s.MaxDepth, s.Load, ok)
	}
	// Greedy on circulant and hypercube.
	for _, tc := range []struct {
		name  string
		g     *graph.Graph
		k, d  int
		loadB int
	}{
		{"greedy-circ(16,4)", graph.Circulant(16, 4), 6, 8, 4},
		{"greedy-hypercube(4)", graph.Hypercube(4), 4, 8, 4},
	} {
		p := treepack.GreedyLowDepth(tc.g, graph.NodeID(tc.g.N()-1), tc.k, tc.d, 1)
		s := p.Validate(tc.g, 2*tc.d)
		ok := s.GoodTrees == tc.k && s.Load <= tc.loadB
		if !ok {
			tb.Pass = false
		}
		tb.AddRow(tc.name, s.K, s.GoodTrees, s.MaxDepth, s.Load, ok)
	}
	// Expander packing: the Lemma 3.13 guarantee is "w.h.p.", so a single
	// sample at this scale has real variance — average the good-tree count
	// over several independent graphs and randomness draws.
	{
		k, z := 3, 10
		const trials = 5
		goodSum, loadMax, depthMax := 0, 0, 0
		for i := int64(0); i < trials; i++ {
			g := resilient.RandomExpander(30, 16, seed+i)
			res, err := runScenario(treepack.ExpanderPacking(k, z),
				mc.WithGraph(g), mc.WithSeed(seed+i))
			if err != nil {
				return nil, err
			}
			p := treepack.AssemblePacking(g.N(), k, res.Outputs)
			s := p.Validate(g, z)
			goodSum += s.GoodTrees
			if s.Load > loadMax {
				loadMax = s.Load
			}
			if s.MaxDepth > depthMax {
				depthMax = s.MaxDepth
			}
		}
		// Mean good fraction must clear 2/3; load stays <= 2 always.
		ok := goodSum*3 >= 2*k*trials && loadMax <= 2
		if !ok {
			tb.Pass = false
		}
		tb.AddRow("expander(30,16)x5", k*trials, goodSum, depthMax, loadMax, ok)
	}
	return tb, nil
}

// runT8 quantifies sketch behaviour: l0-sampling uniformity over a known
// support and sparse-recovery success up to the sparsity budget.
func runT8(seed int64) (*Table, error) {
	tb := &Table{
		ID:      "T8",
		Title:   "Sketch accuracy",
		Claim:   "l0 samples near-uniform; s-sparse recovery exact at support <= s, detected beyond",
		Columns: []string{"test", "param", "result", "ok"},
		Pass:    true,
	}
	rng := rand.New(rand.NewSource(seed))
	// l0 uniformity: chi-square-like max deviation across 8 elements.
	{
		elems := make([]sketch.Elem, 8)
		for i := range elems {
			elems[i] = sketch.Pack(uint32(i+1), uint64(100+i))
		}
		counts := make(map[sketch.Elem]int)
		succ := 0
		const trials = 3000
		for i := 0; i < trials; i++ {
			s := sketch.NewL0Sampler(rng.Uint64())
			for _, e := range elems {
				s.Update(e, 1)
			}
			if e, _, ok := s.Query(); ok {
				counts[e]++
				succ++
			}
		}
		minC, maxC := trials, 0
		for _, e := range elems {
			c := counts[e]
			if c < minC {
				minC = c
			}
			if c > maxC {
				maxC = c
			}
		}
		ratio := float64(maxC) / float64(minC+1)
		ok := ratio < 2.0 && succ > trials/2
		if !ok {
			tb.Pass = false
		}
		tb.AddRow("l0-uniformity", "8 elems", fmt.Sprintf("max/min=%.2f succ=%.2f", ratio, float64(succ)/trials), ok)
	}
	// Sparse recovery success vs support size.
	for _, support := range []int{4, 8, 16} {
		s := 8
		okCount := 0
		const trials = 30
		for i := 0; i < trials; i++ {
			r := sketch.NewRecovery(rng.Uint64(), s)
			seen := make(map[sketch.Elem]bool)
			for j := 0; j < support; j++ {
				e := sketch.Pack(uint32(rng.Intn(100000)), rng.Uint64())
				if seen[e] {
					continue
				}
				seen[e] = true
				r.Update(e, 1)
			}
			items, ok := r.Decode()
			if ok && len(items) == len(seen) {
				okCount++
			}
		}
		frac := float64(okCount) / trials
		ok := (support <= s && frac == 1) || support > s
		if !ok {
			tb.Pass = false
		}
		tb.AddRow("sparse-recovery", fmt.Sprintf("support=%d s=%d", support, s), fmt.Sprintf("exact=%.2f", frac), ok)
	}
	return tb, nil
}

// runA2 measures how long an adversary must *own* a tree edge (corrupt it
// every round from the start) before the commit-threshold pipeline starves:
// the tolerated ownership duration must grow linearly with the repetition
// factor, because the window is 2*rep*(depth+1) and commits need rep clean
// copies per level.
func runA2(seed int64) (*Table, error) {
	tb := &Table{
		ID:      "A2",
		Title:   "rsim repetition factor ablation (edge-ownership tolerance)",
		Claim:   "delivery survives ownership of a prefix up to ~half the window; window scales with rep",
		Columns: []string{"rep", "window", "owned-prefix", "delivered"},
		Pass:    true,
	}
	n := 6
	g := graph.Path(n)
	tr := treepack.NewTree(n, 0)
	for v := 1; v < n; v++ {
		tr.Parent[v] = graph.NodeID(v - 1)
	}
	p := &treepack.Packing{Root: 0, Trees: []*treepack.Tree{tr}}
	views := rsim.Views(p)
	depth := n - 1
	payload := []byte{0x77}
	for _, rep := range []int{3, 5, 7} {
		repC := rep
		window := rsim.Rounds(depth, rep)
		for _, frac := range []float64{0.25, 1.0} {
			owned := int(frac * float64(window))
			var sched [][]graph.Edge
			for r := 0; r < window; r++ {
				if r < owned {
					sched = append(sched, []graph.Edge{graph.NewEdge(2, 3)})
				} else {
					sched = append(sched, nil)
				}
			}
			proto := func(rt congest.Runtime) {
				tv := rt.Shared().([][]rsim.TreeView)[rt.ID()]
				payloads := make([][]byte, 1)
				if rt.ID() == 0 {
					payloads[0] = payload
				}
				got := rsim.BroadcastDown(rt, tv, payloads, depth, repC)
				rt.SetOutput(len(got[0]) == 1 && got[0][0] == 0x77)
			}
			res, err := runScenario(proto,
				mc.WithGraph(g), mc.WithSeed(seed), mc.WithShared(views), mc.WithAdversary(newFlipScheduled(sched)))
			if err != nil {
				return nil, err
			}
			delivered := true
			for _, o := range res.Outputs {
				if o != true {
					delivered = false
				}
			}
			// Quarter-window ownership must be absorbed; full ownership
			// must starve.
			if frac <= 0.3 && !delivered {
				tb.Pass = false
				tb.Notes = append(tb.Notes, fmt.Sprintf("rep=%d: quarter-window ownership broke delivery", rep))
			}
			if frac >= 0.99 && delivered {
				tb.Pass = false
				tb.Notes = append(tb.Notes, fmt.Sprintf("rep=%d: full ownership still delivered", rep))
			}
			tb.AddRow(rep, window, owned, delivered)
		}
	}
	return tb, nil
}
