package harness

import (
	mc "mobilecongest"

	"fmt"
	"sync"

	"mobilecongest/internal/adversary"
	"mobilecongest/internal/algorithms"
	"mobilecongest/internal/congest"
	"mobilecongest/internal/graph"
	"mobilecongest/internal/resilient"
)

func init() {
	register(Experiment{ID: "F1", Title: "Congested-clique byzantine compiler (Theorem 1.6)", Run: runF1})
	register(Experiment{ID: "F2", Title: "Expander byzantine compiler (Theorem 1.7)", Run: runF2})
	register(Experiment{ID: "F3", Title: "Mismatch decay per iteration (Lemma 3.8)", Run: runF3})
	register(Experiment{ID: "T9", Title: "Byzantine compiler matrix (Theorem 3.5)", Run: runT9})
	register(Experiment{ID: "A1", Title: "Ablation: sparse-recovery vs l0-sampling correction", Run: runA1})
}

// runF1 sweeps clique sizes with f = n/4 mobile corruption: the round
// overhead per simulated round must stay polylogarithmic (flat in n up to
// log factors) and outputs must match the fault-free run.
func runF1(seed int64) (*Table, error) {
	tb := &Table{
		ID:      "F1",
		Title:   "Congested-clique compiler, f = n/4",
		Claim:   "Theta(n)-mobile resilience with O~(1) overhead per simulated round",
		Columns: []string{"n", "f", "payload-rounds", "phys-rounds", "overhead/round", "correct"},
		Pass:    true,
	}
	var overheads []float64
	for _, n := range []int{8, 12, 16} {
		g := graph.Clique(n)
		sh := resilient.CliqueShared(n)
		f := n / 4
		inputs := algorithms.CliqueWeights(n, seed)
		want := algorithms.ReferenceMSTWeight(inputs)
		adv := adversary.NewMobileByzantine(g, f, seed, adversary.SelectRandom, adversary.CorruptFlip)
		res, err := runScenario(resilient.Compile(algorithms.MSTClique(), resilient.Config{Mode: resilient.SparseMode, F: f, Rep: 5}),
			mc.WithGraph(g), mc.WithSeed(seed), mc.WithInputs(inputs), mc.WithShared(sh), mc.WithAdversary(adv), mc.WithMaxRounds(1<<23))
		if err != nil {
			return nil, err
		}
		correct := true
		for _, o := range res.Outputs {
			if o.(uint64) != want {
				correct = false
			}
		}
		pr := algorithms.MSTRounds(n)
		overhead := float64(res.Stats.Rounds) / float64(pr)
		overheads = append(overheads, overhead)
		if !correct {
			tb.Pass = false
		}
		tb.AddRow(n, f, pr, res.Stats.Rounds, fmt.Sprintf("%.1f", overhead), correct)
	}
	// Shape: overhead must not grow linearly in n (allow 2x drift across a
	// 2x n range for the log factors).
	if overheads[len(overheads)-1] > 3*overheads[0] {
		tb.Pass = false
		tb.Notes = append(tb.Notes, "overhead grows super-logarithmically with n")
	}
	return tb, nil
}

// runF2 runs the full Theorem 1.7 pipeline: distributed weak-packing
// computation under the byzantine adversary, then the compiled payload on
// top of it.
func runF2(seed int64) (*Table, error) {
	tb := &Table{
		ID:      "F2",
		Title:   "Expander compiler end-to-end",
		Claim:   "weak packing computed under attack; compiled payload correct",
		Columns: []string{"n", "deg", "k", "good-trees", "rounds", "correct"},
		Pass:    true,
	}
	for _, tc := range []struct{ n, d, k, f int }{
		{30, 16, 3, 1},
		{40, 20, 4, 1},
	} {
		g := resilient.RandomExpander(tc.n, tc.d, seed)
		adv := adversary.NewMobileByzantine(g, tc.f, seed, adversary.SelectRandom, adversary.CorruptFlip)
		sh, packRounds, err := resilient.ExpanderSharedOn(currentEngine(), g, tc.k, 12, 7, seed, adv)
		if err != nil {
			return nil, err
		}
		stats := sh.Packing.Validate(g, 12)
		adv2 := adversary.NewMobileByzantine(g, tc.f, seed+1, adversary.SelectRandom, adversary.CorruptRandomize)
		res, err := runScenario(resilient.Compile(algorithms.FloodMax(g.Diameter()), resilient.Config{Mode: resilient.SparseMode, F: tc.f, Rep: 5}),
			mc.WithGraph(g), mc.WithSeed(seed+1), mc.WithShared(sh), mc.WithAdversary(adv2), mc.WithMaxRounds(1<<23))
		if err != nil {
			return nil, err
		}
		correct := true
		for _, o := range res.Outputs {
			if o.(uint64) != uint64(tc.n-1) {
				correct = false
			}
		}
		// The weak-packing pipeline needs a usable majority of good trees.
		if stats.GoodTrees*2 <= tc.k || !correct {
			tb.Pass = false
		}
		tb.AddRow(tc.n, tc.d, tc.k, stats.GoodTrees, packRounds+res.Stats.Rounds, correct)
	}
	return tb, nil
}

// runF3 traces the L0 compiler's per-iteration correction counts: Lemma 3.8
// predicts a geometric decay B_j <= 2f/2^j.
func runF3(seed int64) (*Table, error) {
	tb := &Table{
		ID:      "F3",
		Title:   "Mismatch decay per iteration",
		Claim:   "corrections per iteration decay geometrically to zero",
		Columns: []string{"f", "iter0", "iter1", "iter2", "iter3", "final-zero"},
		Pass:    true,
	}
	for _, f := range []int{1, 2} {
		n := 16
		g := graph.Clique(n)
		sh := resilient.CliqueShared(n)
		var mu sync.Mutex
		iterCorr := make(map[int]int) // max corrections seen per iteration
		trace := func(_, iter, corrections int) {
			mu.Lock()
			if corrections > iterCorr[iter] {
				iterCorr[iter] = corrections
			}
			mu.Unlock()
		}
		adv := adversary.NewMobileByzantine(g, f, seed, adversary.SelectRandom, adversary.CorruptFlip)
		res, err := runScenario(resilient.Compile(algorithms.FloodMax(2), resilient.Config{
			Mode: resilient.L0Mode, F: f, Rep: 5, Samplers: 8, Iterations: 4, TraceFn: trace,
		}),
			mc.WithGraph(g), mc.WithSeed(seed), mc.WithShared(sh), mc.WithAdversary(adv), mc.WithMaxRounds(1<<23))
		if err != nil {
			return nil, err
		}
		correct := true
		for _, o := range res.Outputs {
			if o.(uint64) != uint64(n-1) {
				correct = false
			}
		}
		finalZero := iterCorr[3] == 0
		if !correct {
			tb.Pass = false
			tb.Notes = append(tb.Notes, fmt.Sprintf("f=%d: output wrong", f))
		}
		if !finalZero {
			tb.Pass = false
			tb.Notes = append(tb.Notes, fmt.Sprintf("f=%d: corrections did not reach zero", f))
		}
		tb.AddRow(f, iterCorr[0], iterCorr[1], iterCorr[2], iterCorr[3], finalZero)
	}
	return tb, nil
}

// runT9 is the compiler matrix: payloads x graphs x adversary strategies.
func runT9(seed int64) (*Table, error) {
	tb := &Table{
		ID:      "T9",
		Title:   "Byzantine compiler matrix",
		Claim:   "every payload on every topology survives every strategy at budget f",
		Columns: []string{"graph", "payload", "strategy", "f", "overhead/round", "correct"},
		Pass:    true,
	}
	type payloadCase struct {
		name   string
		rounds int
		proto  func(g *graph.Graph) congest.Protocol
		verify func(g *graph.Graph, outputs []any) bool
	}
	payloads := []payloadCase{
		{
			name: "floodmax", rounds: 0,
			proto:  func(g *graph.Graph) congest.Protocol { return algorithms.FloodMax(g.Diameter()) },
			verify: func(g *graph.Graph, outs []any) bool { return allEq(outs, uint64(g.N()-1)) },
		},
		{
			name: "tokenring", rounds: 3,
			proto: func(g *graph.Graph) congest.Protocol { return algorithms.TokenRing(3) },
			verify: func(g *graph.Graph, outs []any) bool {
				clean, err := runScenario(algorithms.TokenRing(3),
					mc.WithGraph(g), mc.WithSeed(1))
				if err != nil {
					return false
				}
				for i := range outs {
					if outs[i] != clean.Outputs[i] {
						return false
					}
				}
				return true
			},
		},
	}
	graphs := []struct {
		name string
		g    *graph.Graph
		sh   *resilient.Shared
	}{
		{"clique(10)", graph.Clique(10), resilient.CliqueShared(10)},
		// The general graph needs k >= 4*eta trees so a permanent
		// single-edge adversary (busiest strategy) cannot own a quarter of
		// the packing: circulant(16,5) is 10-edge-connected and packs 12
		// trees at load <= 3.
		{"circulant(16,5)", graph.Circulant(16, 5), resilient.GeneralShared(graph.Circulant(16, 5), 12, 8)},
	}
	strategies := []struct {
		name string
		sel  adversary.Selector
		cor  adversary.Corruption
	}{
		{"random-flip", adversary.SelectRandom, adversary.CorruptFlip},
		{"busiest-rand", adversary.SelectBusiest, adversary.CorruptRandomize},
		{"rotate-drop", adversary.SelectRotating, adversary.CorruptDrop},
	}
	for _, gc := range graphs {
		for _, pc := range payloads {
			for _, st := range strategies {
				f := 1
				adv := adversary.NewMobileByzantine(gc.g, f, seed, st.sel, st.cor)
				proto := pc.proto(gc.g)
				res, err := runScenario(resilient.Compile(proto, resilient.Config{Mode: resilient.SparseMode, F: f, Rep: 5}),
					mc.WithGraph(gc.g), mc.WithSeed(seed), mc.WithShared(gc.sh), mc.WithAdversary(adv), mc.WithMaxRounds(1<<23))
				if err != nil {
					return nil, err
				}
				correct := pc.verify(gc.g, res.Outputs)
				if !correct {
					tb.Pass = false
				}
				clean, err := runScenario(proto,
					mc.WithGraph(gc.g), mc.WithSeed(seed), mc.WithShared(gc.sh))
				if err != nil {
					return nil, err
				}
				overhead := float64(res.Stats.Rounds) / float64(clean.Stats.Rounds)
				tb.AddRow(gc.name, pc.name, st.name, f, fmt.Sprintf("%.1f", overhead), correct)
			}
		}
	}
	return tb, nil
}

// runA1 compares the two correction modes on the same workload.
func runA1(seed int64) (*Table, error) {
	tb := &Table{
		ID:      "A1",
		Title:   "Sparse-recovery vs l0-sampling correction",
		Claim:   "both correct; sparse costs one iteration, l0 costs O(log f) smaller sketches",
		Columns: []string{"mode", "f", "rounds", "MB-sent", "correct"},
		Pass:    true,
	}
	n := 12
	g := graph.Clique(n)
	sh := resilient.CliqueShared(n)
	for _, tc := range []struct {
		name string
		mode resilient.Mode
	}{
		{"sparse", resilient.SparseMode},
		{"l0", resilient.L0Mode},
	} {
		f := 1
		adv := adversary.NewMobileByzantine(g, f, seed, adversary.SelectRandom, adversary.CorruptFlip)
		res, err := runScenario(resilient.Compile(algorithms.FloodMax(2), resilient.Config{Mode: tc.mode, F: f, Rep: 5, Samplers: 8, Iterations: 4}),
			mc.WithGraph(g), mc.WithSeed(seed), mc.WithShared(sh), mc.WithAdversary(adv), mc.WithMaxRounds(1<<23))
		if err != nil {
			return nil, err
		}
		correct := allEq(res.Outputs, uint64(n-1))
		if !correct {
			tb.Pass = false
		}
		tb.AddRow(tc.name, f, res.Stats.Rounds, fmt.Sprintf("%.1f", float64(res.Stats.Bytes)/1e6), correct)
	}
	return tb, nil
}

func allEq(outs []any, want any) bool {
	for _, o := range outs {
		if o != want {
			return false
		}
	}
	return true
}

func init() {
	register(Experiment{ID: "A3", Title: "Ablation: compiler Rep factor (rounds vs safety)", Run: runA3})
}

// runA3 sweeps the byzantine compiler's repetition knob: physical rounds
// must scale linearly in Rep while correctness holds at every setting —
// the t_RS constant of Theorem 3.2 surfacing as a tunable.
func runA3(seed int64) (*Table, error) {
	tb := &Table{
		ID:      "A3",
		Title:   "Compiler Rep factor",
		Claim:   "rounds scale ~linearly in Rep; correctness holds at every setting",
		Columns: []string{"rep", "rounds", "correct"},
		Pass:    true,
	}
	n := 10
	g := graph.Clique(n)
	sh := resilient.CliqueShared(n)
	var rounds []int
	for _, rep := range []int{3, 5, 7} {
		adv := adversary.NewMobileByzantine(g, 1, seed, adversary.SelectRandom, adversary.CorruptFlip)
		res, err := runScenario(resilient.Compile(algorithms.FloodMax(2), resilient.Config{Mode: resilient.SparseMode, F: 1, Rep: rep}),
			mc.WithGraph(g), mc.WithSeed(seed), mc.WithShared(sh), mc.WithAdversary(adv), mc.WithMaxRounds(1<<23))
		if err != nil {
			return nil, err
		}
		correct := allEq(res.Outputs, uint64(n-1))
		if !correct {
			tb.Pass = false
		}
		rounds = append(rounds, res.Stats.Rounds)
		tb.AddRow(rep, res.Stats.Rounds, correct)
	}
	// Linear scaling check: rounds(7)/rounds(3) within [1.8, 2.8] of 7/3.
	ratio := float64(rounds[2]) / float64(rounds[0])
	if ratio < 1.5 || ratio > 3.0 {
		tb.Pass = false
		tb.Notes = append(tb.Notes, fmt.Sprintf("rounds ratio %0.2f not ~7/3", ratio))
	}
	return tb, nil
}
