package harness

import "math"

// Statistical utilities for the security experiments: a two-sample
// frequency comparison over byte histograms, used to assert that an
// eavesdropper's views under two different inputs are indistinguishable
// (and, in negative controls, that broken compilers are distinguishable).

// ByteHistogram counts byte values over a sample of views.
type ByteHistogram [256]float64

// AddView folds one observed view into the histogram.
func (h *ByteHistogram) AddView(view []byte) {
	for _, b := range view {
		h[b]++
	}
}

// Total returns the number of counted bytes.
func (h *ByteHistogram) Total() float64 {
	t := 0.0
	for _, c := range h {
		t += c
	}
	return t
}

// ChiSquare computes the chi-square statistic between two histograms
// (comparing proportions; buckets empty in both are skipped). Returns the
// statistic and the degrees of freedom.
func ChiSquare(a, b *ByteHistogram) (stat float64, dof int) {
	na, nb := a.Total(), b.Total()
	if na == 0 || nb == 0 {
		return 0, 0
	}
	for i := 0; i < 256; i++ {
		ca, cb := a[i], b[i]
		if ca+cb == 0 {
			continue
		}
		// Pooled expectation under H0 (same distribution).
		ea := (ca + cb) * na / (na + nb)
		eb := (ca + cb) * nb / (na + nb)
		if ea > 0 {
			stat += (ca - ea) * (ca - ea) / ea
		}
		if eb > 0 {
			stat += (cb - eb) * (cb - eb) / eb
		}
		dof++
	}
	if dof > 0 {
		dof--
	}
	return stat, dof
}

// Indistinguishable reports whether the chi-square statistic is within a
// generous acceptance region for the given degrees of freedom: mean dof,
// standard deviation sqrt(2*dof), accepted within 6 sigma. (We avoid a
// p-value table; the 6-sigma envelope keeps the false-alarm rate negligible
// while still catching gross leaks, which in these experiments shift entire
// byte distributions.)
func Indistinguishable(stat float64, dof int) bool {
	if dof <= 0 {
		return true
	}
	mean := float64(dof)
	sd := math.Sqrt(2 * float64(dof))
	return stat <= mean+6*sd
}
