// Package harness runs the experiment suite of EXPERIMENTS.md: one
// experiment per theorem of the paper, each producing a table (rows of
// measurements) whose shape must match the theorem's claim. cmd/mobilesim
// prints them; the root bench_test.go wraps each in a testing.B benchmark.
package harness

import (
	"fmt"
	"sort"
	"strings"

	mc "mobilecongest"
)

// engineName is the engine every experiment's simulations run on. The step
// engine is the default because the suite is simulation-bound and the two
// engines are result-equivalent by contract.
var engineName = mc.EngineStep.Name()

// UseEngine selects the execution engine (by registry name) for all
// experiments; cmd/mobilesim wires its -engine flag here. (The experiment
// benchmarks in bench_test.go run on this package default; BenchmarkRun
// selects engines on its own scenarios.)
func UseEngine(name string) error {
	if _, err := mc.NewEngine(name); err != nil {
		return err
	}
	engineName = name
	return nil
}

// currentEngine resolves the harness-wide engine instance; engineName is
// validated whenever it is set, so resolution cannot fail.
func currentEngine() mc.Engine {
	e, err := mc.NewEngine(engineName)
	if err != nil {
		panic(err)
	}
	return e
}

// observe, when non-nil, builds fresh observers for every simulation the
// harness runs; cmd/mobilesim wires its -trace flag here.
var observe func() []mc.Observer

// UseObservers installs a per-run observer factory for all experiments (nil
// disables). Observers are per-run state, so the factory is invoked once per
// simulation and its results attached to that run only.
func UseObservers(factory func() []mc.Observer) { observe = factory }

// runScenario executes one simulation on the harness-wide engine, with the
// harness-wide observers attached. It is the single funnel every
// experiment's runs go through.
func runScenario(proto mc.Protocol, opts ...mc.ScenarioOption) (*mc.Result, error) {
	opts = append(opts, mc.WithProtocol(proto), mc.WithEngineName(engineName))
	if observe != nil {
		opts = append(opts, mc.WithObserver(observe()...))
	}
	return mc.NewScenario(opts...).Run()
}

// Row is one measurement row: ordered label/value pairs.
type Row struct {
	Labels []string
	Values []string
}

// Table is one experiment's output.
type Table struct {
	ID      string
	Title   string
	Claim   string // the paper statement being validated
	Columns []string
	Rows    []Row
	// Pass reports whether the measured shape matches the claim.
	Pass bool
	// Notes carries failure details or context.
	Notes []string
}

// AddRow appends a row of stringified values.
func (t *Table) AddRow(vals ...any) {
	r := Row{}
	for _, v := range vals {
		r.Values = append(r.Values, fmt.Sprint(v))
	}
	t.Rows = append(t.Rows, r)
}

// Render formats the table for terminal output.
func (t *Table) Render() string {
	var b strings.Builder
	status := "PASS"
	if !t.Pass {
		status = "FAIL"
	}
	fmt.Fprintf(&b, "== %s: %s [%s]\n", t.ID, t.Title, status)
	fmt.Fprintf(&b, "   claim: %s\n", t.Claim)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, v := range r.Values {
			if i < len(widths) && len(v) > widths[i] {
				widths[i] = len(v)
			}
		}
	}
	line := func(vals []string) {
		b.WriteString("   ")
		for i, v := range vals {
			w := 8
			if i < len(widths) {
				w = widths[i]
			}
			fmt.Fprintf(&b, "%-*s  ", w, v)
		}
		b.WriteString("\n")
	}
	line(t.Columns)
	for _, r := range t.Rows {
		line(r.Values)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "   note: %s\n", n)
	}
	return b.String()
}

// Experiment is a runnable experiment.
type Experiment struct {
	ID    string
	Title string
	Run   func(seed int64) (*Table, error)
}

// registry holds all experiments keyed by ID.
var registry = map[string]Experiment{}

func register(e Experiment) {
	registry[e.ID] = e
}

// Get returns an experiment by ID.
func Get(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// All returns all experiments sorted by ID.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
