// Package adversary implements the adversarial settings of Section 1.4:
// static and mobile eavesdroppers (passive, view-recording) and static,
// mobile, and round-error-rate byzantine adversaries (active, message-
// corrupting), together with the edge-selection strategies the experiments
// exercise. All adversaries are deterministic given their seed and know the
// topology and the algorithm, but never the nodes' private randomness —
// exactly the oblivious-to-randomness model of the paper.
//
// Every adversary here is slot-native: it reads and corrupts the round
// through the engine's congest.RoundTraffic view, so adversarial rounds
// never materialize a traffic map. All adversaries also implement
// congest.RunResetter, so a single instance is reusable across repeated runs
// and sweep cells with per-run determinism.
package adversary

import (
	"math/rand"
	"sort"

	"mobilecongest/internal/congest"
	"mobilecongest/internal/graph"
)

// Observation is one eavesdropped directed message.
type Observation struct {
	Round int
	Edge  graph.DirEdge
	Data  congest.Msg
}

// Eavesdropper passively records the traffic on f edges per round. With a
// nil schedule it picks edges by strategy; with a fixed schedule it follows
// it (used to replay identical schedules across runs for the
// indistinguishability experiments).
type Eavesdropper struct {
	g        *graph.Graph
	f        int
	seed     int64
	rng      *rand.Rand
	schedule [][]graph.Edge // schedule[i] = edges controlled in round i (cycled)
	view     []Observation
	static   bool
	fixed    []graph.Edge // chosen lazily for static mode
}

var (
	_ congest.Adversary      = (*Eavesdropper)(nil)
	_ congest.PerRoundBudget = (*Eavesdropper)(nil)
	_ congest.RunResetter    = (*Eavesdropper)(nil)
)

// NewMobileEavesdropper listens on f fresh random edges every round.
func NewMobileEavesdropper(g *graph.Graph, f int, seed int64) *Eavesdropper {
	return &Eavesdropper{g: g, f: f, seed: seed, rng: rand.New(rand.NewSource(seed))}
}

// NewStaticEavesdropper listens on one fixed random set of f edges.
func NewStaticEavesdropper(g *graph.Graph, f int, seed int64) *Eavesdropper {
	e := NewMobileEavesdropper(g, f, seed)
	e.static = true
	return e
}

// NewScheduledEavesdropper follows an explicit per-round schedule (cycled if
// the run outlasts it).
func NewScheduledEavesdropper(g *graph.Graph, schedule [][]graph.Edge) *Eavesdropper {
	f := 0
	for _, s := range schedule {
		if len(s) > f {
			f = len(s)
		}
	}
	return &Eavesdropper{g: g, f: f, schedule: schedule}
}

// PerRoundEdges implements congest.PerRoundBudget. Eavesdroppers never
// modify traffic, so the budget is vacuous, but declaring it documents f.
func (a *Eavesdropper) PerRoundEdges() int { return a.f }

// ResetRun implements congest.RunResetter: it re-seeds the adversary's
// randomness and drops the previous run's view and static edge set, so runs
// from one instance are independent and identically distributed.
func (a *Eavesdropper) ResetRun() {
	if a.rng != nil {
		a.rng.Seed(a.seed)
	}
	a.view = nil
	a.fixed = nil
}

// ControlledEdges returns the edges the adversary listens on in the given
// round.
func (a *Eavesdropper) ControlledEdges(round int) []graph.Edge {
	switch {
	case a.schedule != nil:
		if len(a.schedule) == 0 {
			return nil
		}
		return a.schedule[round%len(a.schedule)]
	case a.static:
		if a.fixed == nil {
			a.fixed = randomEdges(a.g, a.f, a.rng)
		}
		return a.fixed
	default:
		return randomEdges(a.g, a.f, a.rng)
	}
}

// Intercept implements congest.Adversary: it records the messages on the
// controlled edges' slots and delivers the traffic unchanged.
func (a *Eavesdropper) Intercept(round int, tr *congest.RoundTraffic) {
	for _, e := range a.ControlledEdges(round) {
		fwd, bwd := tr.EdgeSlots(e)
		for _, s := range [2]int32{fwd, bwd} {
			if s < 0 {
				continue
			}
			if m := tr.Get(s); m != nil {
				a.view = append(a.view, Observation{Round: round, Edge: tr.DirEdge(s), Data: m.Clone()})
			}
		}
	}
}

// View returns everything the eavesdropper saw.
func (a *Eavesdropper) View() []Observation { return a.view }

// ViewBytes flattens the view into a canonical byte string for
// distribution-comparison tests.
func (a *Eavesdropper) ViewBytes() []byte {
	obs := make([]Observation, len(a.view))
	copy(obs, a.view)
	sort.Slice(obs, func(i, j int) bool {
		if obs[i].Round != obs[j].Round {
			return obs[i].Round < obs[j].Round
		}
		if obs[i].Edge.From != obs[j].Edge.From {
			return obs[i].Edge.From < obs[j].Edge.From
		}
		return obs[i].Edge.To < obs[j].Edge.To
	})
	var out []byte
	for _, o := range obs {
		out = congest.PutU32(out, uint32(o.Round))
		out = congest.PutU32(out, uint32(o.Edge.From))
		out = congest.PutU32(out, uint32(o.Edge.To))
		out = append(out, o.Data...)
	}
	return out
}

func randomEdges(g *graph.Graph, f int, rng *rand.Rand) []graph.Edge {
	edges := g.Edges()
	if f >= len(edges) {
		out := make([]graph.Edge, len(edges))
		copy(out, edges)
		return out
	}
	perm := rng.Perm(len(edges))[:f]
	out := make([]graph.Edge, f)
	for i, p := range perm {
		out[i] = edges[p]
	}
	return out
}
