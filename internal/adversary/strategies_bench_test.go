package adversary

import (
	"fmt"
	"sort"
	"testing"

	"mobilecongest/internal/congest"
	"mobilecongest/internal/graph"
)

// legacySelectBusiest is the pre-slot implementation — per-round
// map[graph.Edge]int plus a full sort — kept here as the benchmark baseline
// for the slot rewrite.
func legacySelectBusiest(tr congest.Traffic, f int) []graph.Edge {
	load := make(map[graph.Edge]int)
	for de, m := range tr {
		load[de.Undirected()] += len(m)
	}
	edges := make([]graph.Edge, 0, len(load))
	for e := range load {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		if load[edges[i]] != load[edges[j]] {
			return load[edges[i]] > load[edges[j]]
		}
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].V < edges[j].V
	})
	if len(edges) > f {
		edges = edges[:f]
	}
	return edges
}

// BenchmarkSelectBusiest contrasts the slot-native SelectBusiest (reusable
// per-undirected-edge load slice + bounded top-f insertion) against the
// legacy map+sort implementation on a fully loaded round. The slot path's
// only allocation is its f-edge result.
func BenchmarkSelectBusiest(b *testing.B) {
	for _, n := range []int{64, 256} {
		g := graph.Circulant(n, 4)
		tr := congest.Traffic{}
		for i, e := range g.Edges() {
			tr[graph.DirEdge{From: e.U, To: e.V}] = make(congest.Msg, 8+i%32)
			tr[graph.DirEdge{From: e.V, To: e.U}] = make(congest.Msg, 8+(i*7)%32)
		}
		rt, err := congest.NewRoundTraffic(g, tr)
		if err != nil {
			b.Fatal(err)
		}
		const f = 4
		b.Run(fmt.Sprintf("slot/n=%d", n), func(b *testing.B) {
			st := &SelectorState{}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if got := SelectBusiest(st, nil, i, g, rt, f); len(got) != f {
					b.Fatalf("selected %d edges", len(got))
				}
			}
		})
		b.Run(fmt.Sprintf("legacy-map/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if got := legacySelectBusiest(tr, f); len(got) != f {
					b.Fatalf("selected %d edges", len(got))
				}
			}
		})
	}
}
