package adversary

import (
	"math/rand"

	"mobilecongest/internal/congest"
	"mobilecongest/internal/graph"
)

// Corruption mutates the two directed messages crossing a controlled edge
// (either may be nil when nothing was sent) and returns their replacements.
// Returning the inputs unchanged wastes the edge. The inputs are shared with
// the engine's round buffer and must not be mutated in place — corrupt a
// clone (Msg.Clone) and return that. The strategy sees the whole round's
// traffic, matching the all-powerful byzantine adversary of the paper.
type Corruption func(rng *rand.Rand, round int, e graph.Edge, fwd, bwd congest.Msg) (congest.Msg, congest.Msg)

// Selector picks which undirected edges to control this round, given the
// slot-native view of the round's traffic. st is the per-run selector state
// the owning adversary provides (and resets at every run start); stateless
// strategies ignore it. Selector values themselves must stay stateless —
// rotation cursors, load scratch, and the like belong in st, which is what
// makes one Selector value safely shareable across adversaries, repeated
// runs, and sweep cells.
type Selector func(st *SelectorState, rng *rand.Rand, round int, g *graph.Graph, tr *congest.RoundTraffic, f int) []graph.Edge

// SelectorState is the per-run mutable state available to selection
// strategies. The owning Byzantine adversary zeroes it at every run start
// (ResetRun), so two runs with the same seed select identical edge
// sequences.
type SelectorState struct {
	// Rotation is the round-robin cursor used by rotating strategies
	// (SelectRotating and friends).
	Rotation int

	// SelectBusiest scratch: per-undirected-edge byte loads (-1 = edge not
	// seen this round) plus the indices touched, so clearing is O(touched).
	load        []int
	loadTouched []int32
	sel         []int32 // top-f candidate indices, best-first
}

// reset clears the per-run state, keeping the allocated scratch.
func (st *SelectorState) reset() {
	st.Rotation = 0
	// load entries are reset to -1 by SelectBusiest after every selection,
	// so only the cursor carries cross-round state.
}

// loadFor returns the per-undirected-edge load scratch for a graph with m
// edges, every entry -1 (untouched).
func (st *SelectorState) loadFor(m int) []int {
	if len(st.load) != m {
		st.load = make([]int, m)
		for i := range st.load {
			st.load[i] = -1
		}
	}
	return st.load
}

// Byzantine is an active adversary corrupting at most f edges per round
// (mobile), a fixed f-set (static), or a total budget (round-error rate).
type Byzantine struct {
	g       *graph.Graph
	f       int
	seed    int64
	rng     *rand.Rand
	corrupt Corruption
	select_ Selector
	st      SelectorState
	// static edge set, fixed after first selection when staticMode.
	staticMode bool
	fixed      []graph.Edge
	// totalBudget > 0 switches to round-error-rate accounting; perRound is
	// then only advisory for strategies (bursts may exceed it).
	totalBudget int
	spent       int
	burst       []int // burst[i] = edges to corrupt in round i (cycled), for bursty strategies
}

var (
	_ congest.Adversary   = (*Byzantine)(nil)
	_ congest.RunResetter = (*Byzantine)(nil)
)

// NewMobileByzantine corrupts f fresh edges every round using the given
// selector and corruption.
func NewMobileByzantine(g *graph.Graph, f int, seed int64, sel Selector, cor Corruption) *Byzantine {
	return &Byzantine{g: g, f: f, seed: seed, rng: rand.New(rand.NewSource(seed)), corrupt: cor, select_: sel}
}

// NewStaticByzantine corrupts one fixed set of f edges every round.
func NewStaticByzantine(g *graph.Graph, f int, seed int64, sel Selector, cor Corruption) *Byzantine {
	b := NewMobileByzantine(g, f, seed, sel, cor)
	b.staticMode = true
	return b
}

// NewRoundErrorRate corrupts at most total edge-rounds over the whole run,
// spending burst[i%len(burst)] edges in round i (Section 4's "f per round on
// average" adversary).
func NewRoundErrorRate(g *graph.Graph, total int, burst []int, seed int64, sel Selector, cor Corruption) *Byzantine {
	b := NewMobileByzantine(g, maxInt(burst), seed, sel, cor)
	b.totalBudget = total
	b.burst = burst
	return b
}

func maxInt(s []int) int {
	m := 0
	for _, v := range s {
		if v > m {
			m = v
		}
	}
	return m
}

// PerRoundEdges implements congest.PerRoundBudget for static/mobile modes.
func (b *Byzantine) PerRoundEdges() int {
	if b.totalBudget > 0 {
		// In total-budget mode the per-round bound is the largest burst.
		return maxInt(b.burst)
	}
	return b.f
}

// TotalEdgeRounds implements congest.TotalBudget when in round-error-rate
// mode (otherwise it returns a vacuous bound).
func (b *Byzantine) TotalEdgeRounds() int {
	if b.totalBudget > 0 {
		return b.totalBudget
	}
	return 1 << 40
}

// Spent reports how many edge-rounds have been corrupted so far.
func (b *Byzantine) Spent() int { return b.spent }

// ResetRun implements congest.RunResetter: it re-seeds the adversary's
// randomness and zeroes the spent budget, the static edge set, and the
// selector state (rotation cursors), so runs from one instance corrupt
// identical edge sequences for identical seeds.
func (b *Byzantine) ResetRun() {
	b.rng.Seed(b.seed)
	b.st.reset()
	b.spent = 0
	b.fixed = nil
}

// Intercept implements congest.Adversary: it corrupts the selected edges'
// messages by slot, within the round's budget.
func (b *Byzantine) Intercept(round int, tr *congest.RoundTraffic) {
	budget := b.f
	if b.totalBudget > 0 {
		budget = b.burst[round%len(b.burst)]
		if rem := b.totalBudget - b.spent; budget > rem {
			budget = rem
		}
	}
	if budget <= 0 {
		return
	}
	var edges []graph.Edge
	if b.staticMode {
		if b.fixed == nil {
			b.fixed = b.select_(&b.st, b.rng, round, b.g, tr, b.f)
		}
		edges = b.fixed
	} else {
		edges = b.select_(&b.st, b.rng, round, b.g, tr, budget)
	}
	if len(edges) > budget {
		edges = edges[:budget]
	}
	touched := 0
	for _, e := range edges {
		sf, sb := tr.EdgeSlots(e)
		fwd, bwd := tr.Get(sf), tr.Get(sb)
		nf, nb := b.corrupt(b.rng, round, e, fwd, bwd)
		changed := false
		// msgEq deliberately treats nil and empty alike, as the legacy map
		// path did: dropping a silent direction (or "injecting" an empty
		// message) is a no-op, not a budget spend. Writes on edges the
		// selector picked outside the graph (sf/sb == -1, possible with
		// SelectFixed's user-supplied lists) go through SetEdge, which turns
		// them into the run-aborting non-edge injection error rather than a
		// panic, exactly like the legacy map path.
		if !msgEq(nf, fwd) {
			changed = true
			if sf >= 0 {
				tr.Set(sf, nf)
			} else {
				tr.SetEdge(graph.DirEdge{From: e.U, To: e.V}, nf)
			}
		}
		if !msgEq(nb, bwd) {
			changed = true
			if sb >= 0 {
				tr.Set(sb, nb)
			} else {
				tr.SetEdge(graph.DirEdge{From: e.V, To: e.U}, nb)
			}
		}
		if changed {
			touched++
		}
	}
	b.spent += touched
}

func msgEq(a, b congest.Msg) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
