package adversary

import (
	"math/rand"

	"mobilecongest/internal/congest"
	"mobilecongest/internal/graph"
)

// Corruption mutates the two directed messages crossing a controlled edge
// (either may be nil when nothing was sent) and returns their replacements.
// Returning the inputs unchanged wastes the edge. The strategy sees the
// whole round's traffic, matching the all-powerful byzantine adversary of
// the paper.
type Corruption func(rng *rand.Rand, round int, e graph.Edge, fwd, bwd congest.Msg) (congest.Msg, congest.Msg)

// Selector picks which undirected edges to control this round, given the
// full traffic.
type Selector func(rng *rand.Rand, round int, g *graph.Graph, tr congest.Traffic, f int) []graph.Edge

// Byzantine is an active adversary corrupting at most f edges per round
// (mobile), a fixed f-set (static), or a total budget (round-error rate).
type Byzantine struct {
	g       *graph.Graph
	f       int
	rng     *rand.Rand
	corrupt Corruption
	select_ Selector
	// static edge set, fixed after first selection when staticMode.
	staticMode bool
	fixed      []graph.Edge
	// totalBudget > 0 switches to round-error-rate accounting; perRound is
	// then only advisory for strategies (bursts may exceed it).
	totalBudget int
	spent       int
	burst       []int // burst[i] = edges to corrupt in round i (cycled), for bursty strategies
}

var _ congest.Adversary = (*Byzantine)(nil)

// NewMobileByzantine corrupts f fresh edges every round using the given
// selector and corruption.
func NewMobileByzantine(g *graph.Graph, f int, seed int64, sel Selector, cor Corruption) *Byzantine {
	return &Byzantine{g: g, f: f, rng: rand.New(rand.NewSource(seed)), corrupt: cor, select_: sel}
}

// NewStaticByzantine corrupts one fixed set of f edges every round.
func NewStaticByzantine(g *graph.Graph, f int, seed int64, sel Selector, cor Corruption) *Byzantine {
	b := NewMobileByzantine(g, f, seed, sel, cor)
	b.staticMode = true
	return b
}

// NewRoundErrorRate corrupts at most total edge-rounds over the whole run,
// spending burst[i%len(burst)] edges in round i (Section 4's "f per round on
// average" adversary).
func NewRoundErrorRate(g *graph.Graph, total int, burst []int, seed int64, sel Selector, cor Corruption) *Byzantine {
	return &Byzantine{
		g: g, f: maxInt(burst), rng: rand.New(rand.NewSource(seed)),
		corrupt: cor, select_: sel, totalBudget: total, burst: burst,
	}
}

func maxInt(s []int) int {
	m := 0
	for _, v := range s {
		if v > m {
			m = v
		}
	}
	return m
}

// PerRoundEdges implements congest.PerRoundBudget for static/mobile modes.
func (b *Byzantine) PerRoundEdges() int {
	if b.totalBudget > 0 {
		// In total-budget mode the per-round bound is the largest burst.
		return maxInt(b.burst)
	}
	return b.f
}

// TotalEdgeRounds implements congest.TotalBudget when in round-error-rate
// mode (otherwise it returns a vacuous bound).
func (b *Byzantine) TotalEdgeRounds() int {
	if b.totalBudget > 0 {
		return b.totalBudget
	}
	return 1 << 40
}

// Spent reports how many edge-rounds have been corrupted so far.
func (b *Byzantine) Spent() int { return b.spent }

// Intercept corrupts the selected edges' messages.
func (b *Byzantine) Intercept(round int, tr congest.Traffic) congest.Traffic {
	budget := b.f
	if b.totalBudget > 0 {
		budget = b.burst[round%len(b.burst)]
		if rem := b.totalBudget - b.spent; budget > rem {
			budget = rem
		}
	}
	if budget <= 0 {
		return tr
	}
	var edges []graph.Edge
	if b.staticMode {
		if b.fixed == nil {
			b.fixed = b.select_(b.rng, round, b.g, tr, b.f)
		}
		edges = b.fixed
	} else {
		edges = b.select_(b.rng, round, b.g, tr, budget)
	}
	if len(edges) > budget {
		edges = edges[:budget]
	}
	out := tr.Clone()
	touched := 0
	for _, e := range edges {
		fwdKey := graph.DirEdge{From: e.U, To: e.V}
		bwdKey := graph.DirEdge{From: e.V, To: e.U}
		fwd, bwd := out[fwdKey], out[bwdKey]
		nf, nb := b.corrupt(b.rng, round, e, fwd, bwd)
		changed := false
		if !msgEq(nf, fwd) {
			changed = true
			if nf == nil {
				delete(out, fwdKey)
			} else {
				out[fwdKey] = nf
			}
		}
		if !msgEq(nb, bwd) {
			changed = true
			if nb == nil {
				delete(out, bwdKey)
			} else {
				out[bwdKey] = nb
			}
		}
		if changed {
			touched++
		}
	}
	b.spent += touched
	return out
}

func msgEq(a, b congest.Msg) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
