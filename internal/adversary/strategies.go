package adversary

import (
	"math/rand"

	"mobilecongest/internal/congest"
	"mobilecongest/internal/graph"
)

// Selection strategies. All consume the slot-native round view and are
// deterministic given their inputs, so runs are reproducible; per-run
// mutable state lives in the SelectorState, never in the Selector value.

// SelectRandom picks f uniformly random graph edges.
func SelectRandom(_ *SelectorState, rng *rand.Rand, _ int, g *graph.Graph, _ *congest.RoundTraffic, f int) []graph.Edge {
	return randomEdges(g, f, rng)
}

// SelectBusiest picks the f edges carrying the most payload bytes this
// round — a greedy "hit where it hurts" heuristic that tends to target the
// compiler's control traffic. Loads accumulate into the state's reusable
// per-undirected-edge slice via the layout's slot->edge index, and the top f
// are picked by bounded insertion instead of sorting the whole round, so a
// selection allocates nothing beyond its f-edge result.
func SelectBusiest(st *SelectorState, _ *rand.Rand, _ int, g *graph.Graph, tr *congest.RoundTraffic, f int) []graph.Edge {
	if f <= 0 {
		return nil
	}
	edges := g.Edges()
	load := st.loadFor(len(edges))
	touched := st.loadTouched[:0]
	for s, m := range tr.All() {
		u := tr.UndirIndex(s)
		if load[u] < 0 {
			load[u] = 0
			touched = append(touched, u)
		}
		load[u] += len(m)
	}
	st.loadTouched = touched

	// rank is the legacy total order: load descending, then edge ascending —
	// so the bounded insertion selects exactly what the full sort did.
	rank := func(a, b int32) bool {
		if load[a] != load[b] {
			return load[a] > load[b]
		}
		ea, eb := edges[a], edges[b]
		if ea.U != eb.U {
			return ea.U < eb.U
		}
		return ea.V < eb.V
	}
	sel := st.sel[:0]
	for _, u := range touched {
		if len(sel) == f && !rank(u, sel[f-1]) {
			continue
		}
		// Insertion position by linear scan from the back: f is small (the
		// adversary's edge budget), so this beats a general sort's constants
		// by a wide margin.
		if len(sel) < f {
			sel = append(sel, u)
		} else {
			sel[f-1] = u
		}
		for i := len(sel) - 1; i > 0 && rank(sel[i], sel[i-1]); i-- {
			sel[i], sel[i-1] = sel[i-1], sel[i]
		}
	}
	st.sel = sel

	out := make([]graph.Edge, len(sel))
	for i, u := range sel {
		out[i] = edges[u]
	}
	for _, u := range touched {
		load[u] = -1
	}
	return out
}

// SelectIncident concentrates all f corruptions on edges incident to one
// victim node (the paper's root-targeting worst case for tree protocols).
func SelectIncident(victim graph.NodeID) Selector {
	return func(_ *SelectorState, _ *rand.Rand, _ int, g *graph.Graph, _ *congest.RoundTraffic, f int) []graph.Edge {
		nbs := g.Neighbors(victim)
		edges := make([]graph.Edge, 0, f)
		for _, v := range nbs {
			if len(edges) == f {
				break
			}
			edges = append(edges, graph.NewEdge(victim, v))
		}
		return edges
	}
}

// SelectFixed always returns the given edges (truncated to budget).
func SelectFixed(edges []graph.Edge) Selector {
	return func(_ *SelectorState, _ *rand.Rand, _ int, _ *graph.Graph, _ *congest.RoundTraffic, f int) []graph.Edge {
		if len(edges) > f {
			return edges[:f]
		}
		return edges
	}
}

// SelectRotating sweeps the edge list round-robin, so over time every edge
// gets corrupted — the "virus spreading through the network" pattern that
// motivates the mobile model. The cursor lives in the per-run SelectorState
// (st.Rotation), which the owning adversary zeroes at every run start, so
// this value carries no state between runs or sweep cells.
func SelectRotating(st *SelectorState, _ *rand.Rand, _ int, g *graph.Graph, _ *congest.RoundTraffic, f int) []graph.Edge {
	all := g.Edges()
	if len(all) == 0 {
		return nil
	}
	out := make([]graph.Edge, 0, f)
	for i := 0; i < f && i < len(all); i++ {
		out = append(out, all[(st.Rotation+i)%len(all)])
	}
	st.Rotation = (st.Rotation + f) % len(all)
	return out
}

// Corruption strategies.

// CorruptFlip XORs a random non-zero pattern into each present message —
// guaranteed to change the payload.
func CorruptFlip(rng *rand.Rand, _ int, _ graph.Edge, fwd, bwd congest.Msg) (congest.Msg, congest.Msg) {
	return flip(rng, fwd), flip(rng, bwd)
}

func flip(rng *rand.Rand, m congest.Msg) congest.Msg {
	if len(m) == 0 {
		return m
	}
	out := m.Clone()
	i := rng.Intn(len(out))
	out[i] ^= byte(1 + rng.Intn(255))
	return out
}

// CorruptRandomize replaces each present message with uniform random bytes
// of the same length.
func CorruptRandomize(rng *rand.Rand, _ int, _ graph.Edge, fwd, bwd congest.Msg) (congest.Msg, congest.Msg) {
	return randomize(rng, fwd), randomize(rng, bwd)
}

func randomize(rng *rand.Rand, m congest.Msg) congest.Msg {
	if len(m) == 0 {
		return m
	}
	out := make(congest.Msg, len(m))
	rng.Read(out)
	return out
}

// CorruptDrop deletes both directions (message omission).
func CorruptDrop(_ *rand.Rand, _ int, _ graph.Edge, _, _ congest.Msg) (congest.Msg, congest.Msg) {
	return nil, nil
}

// CorruptSwap crosses the two directions, replaying each endpoint's message
// back at the other's peer.
func CorruptSwap(_ *rand.Rand, _ int, _ graph.Edge, fwd, bwd congest.Msg) (congest.Msg, congest.Msg) {
	return bwd.Clone(), fwd.Clone()
}

// CorruptInject forges fixed-pattern messages in both directions even when
// nothing was sent; length 9 avoids colliding with common word sizes.
func CorruptInject(rng *rand.Rand, _ int, _ graph.Edge, _, _ congest.Msg) (congest.Msg, congest.Msg) {
	forged := make(congest.Msg, 9)
	rng.Read(forged)
	return forged, forged.Clone()
}
