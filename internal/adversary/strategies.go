package adversary

import (
	"math/rand"
	"sort"

	"mobilecongest/internal/congest"
	"mobilecongest/internal/graph"
)

// Selection strategies. All iterate traffic deterministically (sorted) so
// runs are reproducible.

// SelectRandom picks f uniformly random graph edges.
func SelectRandom(rng *rand.Rand, _ int, g *graph.Graph, _ congest.Traffic, f int) []graph.Edge {
	return randomEdges(g, f, rng)
}

// SelectBusiest picks the f edges carrying the most payload bytes this
// round — a greedy "hit where it hurts" heuristic that tends to target the
// compiler's control traffic.
func SelectBusiest(_ *rand.Rand, _ int, _ *graph.Graph, tr congest.Traffic, f int) []graph.Edge {
	load := make(map[graph.Edge]int)
	for de, m := range tr {
		load[de.Undirected()] += len(m)
	}
	edges := make([]graph.Edge, 0, len(load))
	for e := range load {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		if load[edges[i]] != load[edges[j]] {
			return load[edges[i]] > load[edges[j]]
		}
		return lessEdge(edges[i], edges[j])
	})
	if len(edges) > f {
		edges = edges[:f]
	}
	return edges
}

// SelectIncident concentrates all f corruptions on edges incident to one
// victim node (the paper's root-targeting worst case for tree protocols).
func SelectIncident(victim graph.NodeID) Selector {
	return func(rng *rand.Rand, _ int, g *graph.Graph, _ congest.Traffic, f int) []graph.Edge {
		nbs := g.Neighbors(victim)
		edges := make([]graph.Edge, 0, f)
		for _, v := range nbs {
			if len(edges) == f {
				break
			}
			edges = append(edges, graph.NewEdge(victim, v))
		}
		return edges
	}
}

// SelectFixed always returns the given edges (truncated to budget).
func SelectFixed(edges []graph.Edge) Selector {
	return func(_ *rand.Rand, _ int, _ *graph.Graph, _ congest.Traffic, f int) []graph.Edge {
		if len(edges) > f {
			return edges[:f]
		}
		return edges
	}
}

// SelectRotating sweeps the edge list round-robin, so over time every edge
// gets corrupted — the "virus spreading through the network" pattern that
// motivates the mobile model.
func SelectRotating() Selector {
	offset := 0
	return func(_ *rand.Rand, _ int, g *graph.Graph, _ congest.Traffic, f int) []graph.Edge {
		all := g.Edges()
		if len(all) == 0 {
			return nil
		}
		out := make([]graph.Edge, 0, f)
		for i := 0; i < f && i < len(all); i++ {
			out = append(out, all[(offset+i)%len(all)])
		}
		offset = (offset + f) % len(all)
		return out
	}
}

func lessEdge(a, b graph.Edge) bool {
	if a.U != b.U {
		return a.U < b.U
	}
	return a.V < b.V
}

// Corruption strategies.

// CorruptFlip XORs a random non-zero pattern into each present message —
// guaranteed to change the payload.
func CorruptFlip(rng *rand.Rand, _ int, _ graph.Edge, fwd, bwd congest.Msg) (congest.Msg, congest.Msg) {
	return flip(rng, fwd), flip(rng, bwd)
}

func flip(rng *rand.Rand, m congest.Msg) congest.Msg {
	if len(m) == 0 {
		return m
	}
	out := m.Clone()
	i := rng.Intn(len(out))
	out[i] ^= byte(1 + rng.Intn(255))
	return out
}

// CorruptRandomize replaces each present message with uniform random bytes
// of the same length.
func CorruptRandomize(rng *rand.Rand, _ int, _ graph.Edge, fwd, bwd congest.Msg) (congest.Msg, congest.Msg) {
	return randomize(rng, fwd), randomize(rng, bwd)
}

func randomize(rng *rand.Rand, m congest.Msg) congest.Msg {
	if len(m) == 0 {
		return m
	}
	out := make(congest.Msg, len(m))
	rng.Read(out)
	return out
}

// CorruptDrop deletes both directions (message omission).
func CorruptDrop(_ *rand.Rand, _ int, _ graph.Edge, _, _ congest.Msg) (congest.Msg, congest.Msg) {
	return nil, nil
}

// CorruptSwap crosses the two directions, replaying each endpoint's message
// back at the other's peer.
func CorruptSwap(_ *rand.Rand, _ int, _ graph.Edge, fwd, bwd congest.Msg) (congest.Msg, congest.Msg) {
	return bwd.Clone(), fwd.Clone()
}

// CorruptInject forges fixed-pattern messages in both directions even when
// nothing was sent; length 9 avoids colliding with common word sizes.
func CorruptInject(rng *rand.Rand, _ int, _ graph.Edge, _, _ congest.Msg) (congest.Msg, congest.Msg) {
	forged := make(congest.Msg, 9)
	rng.Read(forged)
	return forged, forged.Clone()
}
