package adversary

import (
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"

	"mobilecongest/internal/congest"
	"mobilecongest/internal/graph"
)

// chatter makes every node send its ID to every neighbour each round.
func chatter(rounds int) congest.Protocol {
	return func(rt congest.Runtime) {
		var seen []uint64
		for r := 0; r < rounds; r++ {
			out := make(map[graph.NodeID]congest.Msg)
			for _, v := range rt.Neighbors() {
				out[v] = congest.U64Msg(uint64(rt.ID()))
			}
			in := rt.Exchange(out)
			for _, m := range in {
				seen = append(seen, congest.U64(m))
			}
		}
		rt.SetOutput(seen)
	}
}

func TestMobileEavesdropperRecordsWithinBudget(t *testing.T) {
	g := graph.Clique(6)
	eve := NewMobileEavesdropper(g, 2, 7)
	_, err := congest.Run(congest.Config{Graph: g, Seed: 1, Adversary: eve}, chatter(5))
	if err != nil {
		t.Fatal(err)
	}
	// 2 edges/round x 2 directions x 5 rounds = at most 20 observations.
	if len(eve.View()) > 20 {
		t.Fatalf("view has %d observations, budget allows 20", len(eve.View()))
	}
	if len(eve.View()) == 0 {
		t.Fatal("eavesdropper saw nothing on a chatty clique")
	}
	perRound := make(map[int]map[graph.Edge]bool)
	for _, o := range eve.View() {
		if perRound[o.Round] == nil {
			perRound[o.Round] = make(map[graph.Edge]bool)
		}
		perRound[o.Round][o.Edge.Undirected()] = true
	}
	for r, edges := range perRound {
		if len(edges) > 2 {
			t.Fatalf("round %d: eavesdropped %d edges, budget 2", r, len(edges))
		}
	}
}

func TestStaticEavesdropperFixedSet(t *testing.T) {
	g := graph.Clique(6)
	eve := NewStaticEavesdropper(g, 3, 7)
	e1 := eve.ControlledEdges(0)
	e5 := eve.ControlledEdges(5)
	if len(e1) != 3 {
		t.Fatalf("controlled %d edges, want 3", len(e1))
	}
	for i := range e1 {
		if e1[i] != e5[i] {
			t.Fatal("static eavesdropper changed its edge set")
		}
	}
}

func TestScheduledEavesdropper(t *testing.T) {
	g := graph.Path(3)
	sched := [][]graph.Edge{{graph.NewEdge(0, 1)}, {graph.NewEdge(1, 2)}}
	eve := NewScheduledEavesdropper(g, sched)
	if got := eve.ControlledEdges(0)[0]; got != graph.NewEdge(0, 1) {
		t.Fatalf("round 0 edge = %v", got)
	}
	if got := eve.ControlledEdges(3)[0]; got != graph.NewEdge(1, 2) {
		t.Fatalf("round 3 should cycle to schedule[1], got %v", got)
	}
}

func TestByzantineFlipStaysWithinBudget(t *testing.T) {
	g := graph.Clique(5)
	adv := NewMobileByzantine(g, 2, 3, SelectRandom, CorruptFlip)
	res, err := congest.Run(congest.Config{Graph: g, Seed: 1, Adversary: adv}, chatter(6))
	if err != nil {
		t.Fatal(err) // engine enforces budget; an error means we overspent
	}
	if res.Stats.CorruptedEdgeRounds == 0 {
		t.Fatal("flip adversary corrupted nothing")
	}
	if res.Stats.CorruptedEdgeRounds > 12 {
		t.Fatalf("corrupted %d edge-rounds, budget 12", res.Stats.CorruptedEdgeRounds)
	}
}

func TestByzantineCorruptionVisible(t *testing.T) {
	// With f = all edges of a 2-path and CorruptRandomize, node 1 should
	// receive something different from node 0's true ID with high
	// probability across rounds.
	g := graph.Path(2)
	adv := NewMobileByzantine(g, 1, 3, SelectRandom, CorruptRandomize)
	res, err := congest.Run(congest.Config{Graph: g, Seed: 5, Adversary: adv}, chatter(20))
	if err != nil {
		t.Fatal(err)
	}
	seen := res.Outputs[1].([]uint64)
	diff := 0
	for _, v := range seen {
		if v != 0 {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("randomizing adversary never changed node 0's messages")
	}
}

func TestRoundErrorRateBudget(t *testing.T) {
	g := graph.Clique(4)
	// Total budget 5, bursts of 3: spends 3, then 2, then nothing.
	adv := NewRoundErrorRate(g, 5, []int{3}, 9, SelectRandom, CorruptFlip)
	res, err := congest.Run(congest.Config{Graph: g, Seed: 2, Adversary: adv}, chatter(10))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CorruptedEdgeRounds > 5 {
		t.Fatalf("spent %d edge-rounds, budget 5", res.Stats.CorruptedEdgeRounds)
	}
	if adv.Spent() != res.Stats.CorruptedEdgeRounds {
		t.Fatalf("adversary accounting %d != engine accounting %d", adv.Spent(), res.Stats.CorruptedEdgeRounds)
	}
}

// mustRoundTraffic builds a free-standing slot view for direct adversary
// unit tests.
func mustRoundTraffic(t testing.TB, g *graph.Graph, tr congest.Traffic) *congest.RoundTraffic {
	t.Helper()
	rt, err := congest.NewRoundTraffic(g, tr)
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func TestSelectBusiest(t *testing.T) {
	g := graph.Path(3)
	rt := mustRoundTraffic(t, g, congest.Traffic{
		{From: 0, To: 1}: make(congest.Msg, 100),
		{From: 1, To: 2}: make(congest.Msg, 5),
	})
	st := &SelectorState{}
	edges := SelectBusiest(st, nil, 0, g, rt, 1)
	if len(edges) != 1 || edges[0] != graph.NewEdge(0, 1) {
		t.Fatalf("busiest = %v, want (0,1)", edges)
	}
	// The reusable load scratch must come back clean: a second selection on
	// different traffic must not see the first round's loads.
	rt2 := mustRoundTraffic(t, g, congest.Traffic{
		{From: 1, To: 2}: make(congest.Msg, 7),
	})
	edges = SelectBusiest(st, nil, 1, g, rt2, 1)
	if len(edges) != 1 || edges[0] != graph.NewEdge(1, 2) {
		t.Fatalf("busiest with reused state = %v, want (1,2)", edges)
	}
}

// TestSelectBusiestMatchesFullSort pins the bounded-insertion top-f against
// the definitional full sort (load descending, edge ascending) on random
// rounds.
func TestSelectBusiestMatchesFullSort(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := graph.Circulant(16, 3)
	st := &SelectorState{}
	for trial := 0; trial < 50; trial++ {
		tr := congest.Traffic{}
		load := make(map[graph.Edge]int)
		for _, e := range g.Edges() {
			for _, de := range []graph.DirEdge{{From: e.U, To: e.V}, {From: e.V, To: e.U}} {
				if rng.Intn(3) == 0 {
					m := make(congest.Msg, rng.Intn(16))
					tr[de] = m
					load[e] += len(m)
				}
			}
		}
		want := make([]graph.Edge, 0, len(load))
		for e := range load {
			want = append(want, e)
		}
		sort.Slice(want, func(i, j int) bool {
			if load[want[i]] != load[want[j]] {
				return load[want[i]] > load[want[j]]
			}
			if want[i].U != want[j].U {
				return want[i].U < want[j].U
			}
			return want[i].V < want[j].V
		})
		f := 1 + rng.Intn(5)
		if len(want) > f {
			want = want[:f]
		}
		got := SelectBusiest(st, nil, trial, g, mustRoundTraffic(t, g, tr), f)
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d edges, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: got %v, want %v", trial, got, want)
			}
		}
	}
}

func TestSelectIncident(t *testing.T) {
	g := graph.Clique(5)
	sel := SelectIncident(2)
	edges := sel(&SelectorState{}, nil, 0, g, nil, 3)
	if len(edges) != 3 {
		t.Fatalf("got %d edges, want 3", len(edges))
	}
	for _, e := range edges {
		if e.U != 2 && e.V != 2 {
			t.Fatalf("edge %v not incident to victim", e)
		}
	}
}

func TestSelectRotatingCoversAllEdges(t *testing.T) {
	g := graph.Cycle(6)
	st := &SelectorState{}
	seen := make(map[graph.Edge]bool)
	for r := 0; r < 6; r++ {
		for _, e := range SelectRotating(st, nil, r, g, nil, 1) {
			seen[e] = true
		}
	}
	if len(seen) != 6 {
		t.Fatalf("rotation covered %d/6 edges", len(seen))
	}
}

// TestRotatingSelectorReusableAcrossRuns is the regression test for the old
// closure-captured rotation offset: a rotating adversary reused across runs
// (as a Scenario run in a loop, or a Selector value shared by sweep cells)
// must corrupt the identical edge sequence in every same-seed run, because
// the rotation cursor now lives in per-run adversary state that the engine
// resets at run start.
func TestRotatingSelectorReusableAcrossRuns(t *testing.T) {
	g := graph.Cycle(8)
	adv := NewMobileByzantine(g, 2, 5, SelectRotating, CorruptFlip)
	runOnce := func() []congest.CorruptionEvent {
		cl := congest.NewCorruptionLog()
		if _, err := congest.Run(congest.Config{
			Graph: g, Seed: 3, Adversary: adv,
			Observers: []congest.Observer{cl},
		}, chatter(5)); err != nil {
			t.Fatal(err)
		}
		return cl.Events()
	}
	first := runOnce()
	second := runOnce()
	if len(first) == 0 {
		t.Fatal("rotating adversary corrupted nothing")
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("same seed, same adversary instance, different corruption sequences:\n run1 %+v\n run2 %+v", first, second)
	}
}

func TestCorruptDropAndInject(t *testing.T) {
	m := congest.U64Msg(7)
	f, b := CorruptDrop(nil, 0, graph.NewEdge(0, 1), m, m)
	if f != nil || b != nil {
		t.Fatal("drop did not drop")
	}
	fi, bi := CorruptInject(rand.New(rand.NewSource(1)), 0, graph.NewEdge(0, 1), nil, nil)
	if len(fi) == 0 || len(bi) == 0 {
		t.Fatal("inject returned nothing")
	}
}

func TestCorruptSwap(t *testing.T) {
	a, b := congest.U64Msg(1), congest.U64Msg(2)
	f, w := CorruptSwap(nil, 0, graph.NewEdge(0, 1), a, b)
	if congest.U64(f) != 2 || congest.U64(w) != 1 {
		t.Fatal("swap did not swap")
	}
}

func TestStaticByzantineFixedEdges(t *testing.T) {
	g := graph.Clique(5)
	adv := NewStaticByzantine(g, 2, 7, SelectRandom, CorruptFlip)
	// Run four rounds: the touched edge set must be identical across rounds.
	touched := make(map[graph.Edge]bool)
	tr := congest.Traffic{}
	for _, e := range g.Edges() {
		tr[graph.DirEdge{From: e.U, To: e.V}] = congest.U64Msg(1)
	}
	for round := 0; round < 4; round++ {
		rt := mustRoundTraffic(t, g, tr)
		adv.Intercept(round, rt)
		for de, m := range rt.Delivered() {
			if congest.U64(m) != 1 {
				touched[de.Undirected()] = true
			}
		}
	}
	if len(touched) > 2 {
		t.Fatalf("static adversary touched %d distinct edges, budget 2", len(touched))
	}
}

func TestViewBytesCanonical(t *testing.T) {
	g := graph.Path(3)
	eve := NewScheduledEavesdropper(g, [][]graph.Edge{{graph.NewEdge(0, 1), graph.NewEdge(1, 2)}})
	tr := congest.Traffic{
		{From: 0, To: 1}: congest.U64Msg(1),
		{From: 2, To: 1}: congest.U64Msg(2),
	}
	eve.Intercept(0, mustRoundTraffic(t, g, tr))
	b1 := eve.ViewBytes()
	// A second eavesdropper observing the same traffic in a different
	// schedule order yields identical canonical bytes.
	eve2 := NewScheduledEavesdropper(g, [][]graph.Edge{{graph.NewEdge(1, 2), graph.NewEdge(0, 1)}})
	eve2.Intercept(0, mustRoundTraffic(t, g, tr))
	b2 := eve2.ViewBytes()
	if string(b1) != string(b2) {
		t.Fatal("ViewBytes not canonical across observation orders")
	}
	if len(b1) == 0 {
		t.Fatal("empty view bytes despite observations")
	}
}

func TestSwapAdversaryInEngine(t *testing.T) {
	g := graph.Path(2)
	adv := NewMobileByzantine(g, 1, 3, SelectFixed([]graph.Edge{graph.NewEdge(0, 1)}), CorruptSwap)
	proto := func(rt congest.Runtime) {
		out := map[graph.NodeID]congest.Msg{}
		for _, v := range rt.Neighbors() {
			out[v] = congest.U64Msg(uint64(rt.ID()) + 10)
		}
		in := rt.Exchange(out)
		for _, m := range in {
			rt.SetOutput(congest.U64(m))
		}
	}
	res, err := congest.Run(congest.Config{Graph: g, Seed: 1, Adversary: adv}, proto)
	if err != nil {
		t.Fatal(err)
	}
	// Each node receives its own value back.
	if res.Outputs[0].(uint64) != 10 || res.Outputs[1].(uint64) != 11 {
		t.Fatalf("swap not applied: %v", res.Outputs)
	}
}

// TestNonEdgeSelectionAbortsCleanly: a Selector handing the byzantine an
// edge outside the graph (easy with SelectFixed's user-supplied lists) must
// abort the run with the non-edge injection error — never panic — matching
// the legacy map path.
func TestNonEdgeSelectionAbortsCleanly(t *testing.T) {
	g := graph.Cycle(6)
	// (0,3) is not an edge of the 6-cycle.
	adv := NewMobileByzantine(g, 1, 1, SelectFixed([]graph.Edge{graph.NewEdge(0, 3)}), CorruptInject)
	_, err := congest.Run(congest.Config{Graph: g, Seed: 1, Adversary: adv}, chatter(3))
	if err == nil || !strings.Contains(err.Error(), "injected on non-edge (0,3)") {
		t.Fatalf("err = %v, want the non-edge injection abort", err)
	}
	// Corruptions that leave a non-edge silent (drop) stay a no-op: nothing
	// was sent there, nothing changes, the run completes.
	adv = NewMobileByzantine(g, 1, 1, SelectFixed([]graph.Edge{graph.NewEdge(0, 3)}), CorruptDrop)
	if _, err := congest.Run(congest.Config{Graph: g, Seed: 1, Adversary: adv}, chatter(3)); err != nil {
		t.Fatalf("dropping a silent non-edge should be a no-op, got %v", err)
	}
}

func TestMaxIntHelper(t *testing.T) {
	if maxInt([]int{}) != 0 || maxInt([]int{3, 7, 2}) != 7 {
		t.Fatal("maxInt wrong")
	}
}
