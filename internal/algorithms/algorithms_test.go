package algorithms

import (
	"math/rand"
	"strings"
	"testing"

	"mobilecongest/internal/congest"
	"mobilecongest/internal/graph"
)

func mustRun(t *testing.T, g *graph.Graph, seed int64, inputs [][]byte, p congest.Protocol) *congest.Result {
	t.Helper()
	res, err := congest.Run(congest.Config{Graph: g, Seed: seed, Inputs: inputs}, p)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestFloodMax(t *testing.T) {
	for _, g := range []*graph.Graph{graph.Cycle(9), graph.Petersen(), graph.Grid(3, 4)} {
		res := mustRun(t, g, 1, nil, FloodMax(g.Diameter()))
		for i, o := range res.Outputs {
			if o.(uint64) != uint64(g.N()-1) {
				t.Fatalf("n=%d node %d got %v", g.N(), i, o)
			}
		}
	}
}

func TestBroadcastReachesAll(t *testing.T) {
	g := graph.Grid(4, 4)
	res := mustRun(t, g, 2, nil, Broadcast(0, 777, g.Diameter()))
	for i, o := range res.Outputs {
		if o.(uint64) != 777 {
			t.Fatalf("node %d got %v, want 777", i, o)
		}
	}
}

func TestBroadcastInput(t *testing.T) {
	g := graph.Cycle(7)
	inputs := make([][]byte, 7)
	inputs[3] = congest.U64Msg(4242)
	res := mustRun(t, g, 3, inputs, BroadcastInput(3, g.Diameter()))
	for i, o := range res.Outputs {
		if o.(uint64) != 4242 {
			t.Fatalf("node %d got %v, want 4242", i, o)
		}
	}
}

func TestBFSMatchesCentralized(t *testing.T) {
	for _, g := range []*graph.Graph{graph.Petersen(), graph.Grid(3, 5), graph.Circulant(11, 2)} {
		root := graph.NodeID(0)
		res := mustRun(t, g, 4, nil, BFS(root, g.Eccentricity(root)))
		wantDist, _ := g.BFS(root)
		for i, o := range res.Outputs {
			r := o.(BFSResult)
			if r.Dist != wantDist[i] {
				t.Fatalf("node %d dist = %d, want %d", i, r.Dist, wantDist[i])
			}
			if i != int(root) {
				// Parent must be a neighbour one step closer.
				if !g.HasEdge(graph.NodeID(i), r.Parent) {
					t.Fatalf("node %d parent %d is not a neighbour", i, r.Parent)
				}
				if wantDist[r.Parent] != r.Dist-1 {
					t.Fatalf("node %d parent %d at distance %d, want %d", i, r.Parent, wantDist[r.Parent], r.Dist-1)
				}
			}
		}
	}
}

func TestSumToRoot(t *testing.T) {
	g := graph.Grid(3, 3)
	inputs := make([][]byte, 9)
	var want uint64
	for i := range inputs {
		v := uint64(i + 1)
		want += v
		inputs[i] = congest.U64Msg(v)
	}
	res := mustRun(t, g, 5, inputs, SumToRoot(0, g.Eccentricity(0)))
	for i, o := range res.Outputs {
		if o.(uint64) != want {
			t.Fatalf("node %d total = %v, want %d", i, o, want)
		}
	}
}

func TestTokenRingDeterministic(t *testing.T) {
	g := graph.Cycle(6)
	r1 := mustRun(t, g, 6, nil, TokenRing(10))
	r2 := mustRun(t, g, 99, nil, TokenRing(10))
	for i := range r1.Outputs {
		if r1.Outputs[i] != r2.Outputs[i] {
			t.Fatal("token ring should be deterministic regardless of seed")
		}
	}
}

func TestMSTCliqueMatchesKruskal(t *testing.T) {
	for _, n := range []int{4, 8, 13} {
		g := graph.Clique(n)
		inputs := CliqueWeights(n, 42)
		res := mustRun(t, g, 7, inputs, MSTClique())
		want := ReferenceMSTWeight(inputs)
		for i, o := range res.Outputs {
			if o.(uint64) != want {
				t.Fatalf("n=%d node %d MST weight %v, want %d", n, i, o, want)
			}
		}
	}
}

func TestMSTCliqueRoundCount(t *testing.T) {
	n := 8
	g := graph.Clique(n)
	inputs := CliqueWeights(n, 1)
	res := mustRun(t, g, 8, inputs, MSTClique())
	if res.Stats.Rounds != MSTRounds(n) {
		t.Fatalf("rounds = %d, want %d", res.Stats.Rounds, MSTRounds(n))
	}
}

func TestCliqueWeightsSymmetricDistinct(t *testing.T) {
	n := 10
	inputs := CliqueWeights(n, 3)
	seen := make(map[uint64]bool)
	for u := 0; u < n; u++ {
		wu := decodeWeights(inputs[u], n)
		for v := 0; v < n; v++ {
			wv := decodeWeights(inputs[v], n)
			if wu[v] != wv[u] {
				t.Fatalf("weight asymmetry at (%d,%d)", u, v)
			}
			if u < v {
				if wu[v] == 0 {
					t.Fatalf("zero weight at (%d,%d)", u, v)
				}
				if seen[wu[v]] {
					t.Fatalf("duplicate weight at (%d,%d)", u, v)
				}
				seen[wu[v]] = true
			}
		}
	}
}

func TestPayloadsUnderRandomSeeds(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 5; trial++ {
		n := 6 + rng.Intn(6)
		g := graph.Circulant(n, 2)
		res := mustRun(t, g, rng.Int63(), nil, FloodMax(g.Diameter()))
		for _, o := range res.Outputs {
			if o.(uint64) != uint64(n-1) {
				t.Fatalf("flood max failed on circulant n=%d", n)
			}
		}
	}
}

// TestMSTCliqueNonCliqueAborts pins the failure mode of running the
// congested-clique MST on a topology where a component leader is not
// adjacent: the run must abort with the canonical non-neighbor error (as
// the legacy map outbox did), never panic on a -1 port.
func TestMSTCliqueNonCliqueAborts(t *testing.T) {
	g := graph.Cycle(8)
	inputs := CliqueWeights(8, 3)
	_, err := congest.Run(congest.Config{Graph: g, Seed: 1, Inputs: inputs}, MSTClique())
	if err == nil || !strings.Contains(err.Error(), "non-neighbor") {
		t.Fatalf("err = %v, want the canonical non-neighbor abort", err)
	}
}
