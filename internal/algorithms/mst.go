package algorithms

import (
	"math/rand"
	"sort"

	"mobilecongest/internal/congest"
	"mobilecongest/internal/graph"
)

// Borůvka MST in the CONGESTED CLIQUE (the Lotker et al. model the paper's
// Theorem 1.6 compiles). Each node initially knows only the weights of its
// incident edges (its Input); the protocol runs ceil(log2 n) Borůvka phases
// of 3 rounds each:
//
//  1. every node announces its component ID to everyone;
//  2. every node sends its lightest outgoing edge candidate to its
//     component leader (the smallest ID in the component);
//  3. every leader announces the component's chosen merge edge to everyone,
//     and all nodes merge components locally and identically.
//
// All nodes output the total weight of the resulting MST, so corrupted
// messages anywhere surface in the output.

// CliqueWeights generates consistent inputs for MSTClique: entry u is the
// encoded weight vector of node u, with weight(u,v) symmetric, distinct
// across edges, and non-zero.
func CliqueWeights(n int, seed int64) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	w := make([][]uint64, n)
	for u := range w {
		w[u] = make([]uint64, n)
	}
	next := uint64(1)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			// Random magnitude with a unique low-order tiebreaker keeps
			// weights distinct (and 32-bit, so candidates fit one 8-byte
			// message), and the MST unique.
			val := (uint64(rng.Intn(512)) << 13) | next
			next++
			w[u][v] = val
			w[v][u] = val
		}
	}
	inputs := make([][]byte, n)
	for u := 0; u < n; u++ {
		var buf []byte
		for v := 0; v < n; v++ {
			buf = congest.PutU64(buf, w[u][v])
		}
		inputs[u] = buf
	}
	return inputs
}

// decodeWeights recovers the weight vector from a node input.
func decodeWeights(input []byte, n int) []uint64 {
	w := make([]uint64, n)
	for v := 0; v < n; v++ {
		if 8*(v+1) <= len(input) {
			w[v] = congest.U64(input[8*v : 8*(v+1)])
		}
	}
	return w
}

// MSTClique runs Borůvka in the congested clique and outputs the MST total
// weight at every node.
func MSTClique() congest.Protocol {
	return func(rt congest.Runtime) {
		pr := congest.Ports(rt)
		n := rt.N()
		weights := decodeWeights(rt.Input(), n)
		comp := make([]graph.NodeID, n)
		for i := range comp {
			comp[i] = graph.NodeID(i)
		}
		phases := 1
		for s := 1; s < n; s *= 2 {
			phases++
		}
		chosen := make(map[graph.Edge]uint64)
		for p := 0; p < phases; p++ {
			// Round 1: announce component IDs.
			out := pr.OutBuf()
			announce := congest.U64Msg(uint64(comp[rt.ID()]))
			for i := range out {
				out[i] = announce
			}
			in := pr.ExchangePorts(out)
			for i, m := range in {
				if m == nil {
					continue
				}
				if c := congest.U64(m); c < uint64(n) {
					comp[pr.Neighbor(i)] = graph.NodeID(c)
				}
			}
			// Local: lightest incident edge leaving my component.
			bestW := uint64(0)
			bestV := graph.NodeID(-1)
			for v := 0; v < n; v++ {
				if graph.NodeID(v) == rt.ID() || comp[v] == comp[rt.ID()] || weights[v] == 0 {
					continue
				}
				if bestV < 0 || weights[v] < bestW {
					bestW = weights[v]
					bestV = graph.NodeID(v)
				}
			}
			// Round 2: send candidate (weight, me, other) to component
			// leader. Leaders collect; everyone else sends an empty slot to
			// nobody (silent).
			leader := comp[rt.ID()]
			out = pr.OutBuf()
			if bestV >= 0 && leader != rt.ID() {
				if lp := pr.Port(leader); lp >= 0 {
					out[lp] = packCandidate(bestW, rt.ID(), bestV)
				} else {
					// Non-clique topology: abort the run with the canonical
					// non-neighbor error, like the map outbox used to (and
					// never fall through desynced if a wrapper tolerates it).
					//lint:ignore portnative deliberate abort path: the map Exchange is the canonical way to trigger the engine's non-neighbor error
					rt.Exchange(map[graph.NodeID]congest.Msg{leader: packCandidate(bestW, rt.ID(), bestV)})
					panic("algorithms: MSTClique component leader is not adjacent")
				}
			}
			in = pr.ExchangePorts(out)
			// Leader picks the component minimum (including its own
			// candidate).
			type cand struct {
				w    uint64
				u, v graph.NodeID
			}
			var best *cand
			if leader == rt.ID() && bestV >= 0 {
				best = &cand{w: bestW, u: rt.ID(), v: bestV}
			}
			if leader == rt.ID() {
				for i, m := range in {
					if m == nil || comp[pr.Neighbor(i)] != leader || len(m) < 8 {
						continue
					}
					w, u, v := unpackCandidate(m)
					c := cand{w: w, u: u, v: v}
					if best == nil || c.w < best.w {
						best = &cand{w: c.w, u: c.u, v: c.v}
					}
				}
			}
			// Round 3: leaders announce merge edges to everyone.
			out = pr.OutBuf()
			if leader == rt.ID() && best != nil {
				msg := packCandidate(best.w, best.u, best.v)
				for i := range out {
					out[i] = msg
				}
			}
			in = pr.ExchangePorts(out)
			// Everyone (including leaders) collects all announced merge
			// edges and merges components identically.
			type merge struct {
				w    uint64
				u, v graph.NodeID
			}
			var merges []merge
			if leader == rt.ID() && best != nil {
				merges = append(merges, merge{w: best.w, u: best.u, v: best.v})
			}
			for _, m := range in {
				if m == nil || len(m) < 8 {
					continue
				}
				w, u, v := unpackCandidate(m)
				merges = append(merges, merge{w: w, u: u, v: v})
			}
			sort.Slice(merges, func(i, j int) bool { return merges[i].w < merges[j].w })
			for _, mg := range merges {
				if int(mg.u) >= n || int(mg.v) >= n || mg.u == mg.v {
					continue
				}
				cu, cv := find(comp, mg.u), find(comp, mg.v)
				if cu == cv {
					continue
				}
				chosen[graph.NewEdge(mg.u, mg.v)] = mg.w
				// Union by smaller leader ID.
				if cu < cv {
					comp[cv] = cu
				} else {
					comp[cu] = cv
				}
			}
			// Path-compress so component IDs are canonical leaders.
			for i := range comp {
				comp[i] = find(comp, graph.NodeID(i))
			}
		}
		var total uint64
		for _, w := range chosen {
			total += w
		}
		rt.SetOutput(total)
	}
}

// packCandidate encodes (weight, u, v) into exactly 8 bytes — the payload
// size the byzantine compiler's sketches support.
func packCandidate(w uint64, u, v graph.NodeID) congest.Msg {
	m := congest.PutU32(nil, uint32(w))
	m = append(m, byte(u>>8), byte(u), byte(v>>8), byte(v))
	return m
}

func unpackCandidate(m congest.Msg) (uint64, graph.NodeID, graph.NodeID) {
	w := uint64(congest.U32(m))
	var u, v graph.NodeID
	if len(m) >= 8 {
		u = graph.NodeID(int(m[4])<<8 | int(m[5]))
		v = graph.NodeID(int(m[6])<<8 | int(m[7]))
	}
	return w, u, v
}

func find(comp []graph.NodeID, u graph.NodeID) graph.NodeID {
	for comp[u] != u {
		u = comp[u]
	}
	return u
}

// MSTRounds returns the fixed round count of MSTClique for n nodes.
func MSTRounds(n int) int {
	phases := 1
	for s := 1; s < n; s *= 2 {
		phases++
	}
	return 3 * phases
}

// ReferenceMSTWeight computes the true MST weight of the clique weights
// centrally (Kruskal), for verifying protocol outputs.
func ReferenceMSTWeight(inputs [][]byte) uint64 {
	n := len(inputs)
	type we struct {
		w    uint64
		u, v int
	}
	var edges []we
	for u := 0; u < n; u++ {
		wu := decodeWeights(inputs[u], n)
		for v := u + 1; v < n; v++ {
			edges = append(edges, we{w: wu[v], u: u, v: v})
		}
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].w < edges[j].w })
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var findI func(int) int
	findI = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	var total uint64
	cnt := 0
	for _, e := range edges {
		ru, rv := findI(e.u), findI(e.v)
		if ru == rv {
			continue
		}
		parent[ru] = rv
		total += e.w
		cnt++
		if cnt == n-1 {
			break
		}
	}
	return total
}
