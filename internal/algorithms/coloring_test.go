package algorithms

import (
	"testing"

	"mobilecongest/internal/congest"
	"mobilecongest/internal/graph"
)

func TestColorRingProper(t *testing.T) {
	for _, n := range []int{4, 7, 12, 33} {
		g := graph.Cycle(n)
		res, err := congest.Run(congest.Config{Graph: g, Seed: 1}, ColorRing(ColorRingIterations(n)))
		if err != nil {
			t.Fatal(err)
		}
		if !VerifyRingColoring(g, res.Outputs) {
			colors := make([]int, n)
			for i, o := range res.Outputs {
				colors[i] = o.(ColorRingResult).Color
			}
			t.Fatalf("n=%d: improper colouring %v", n, colors)
		}
	}
}

func TestColorRingRoundCount(t *testing.T) {
	n := 9
	g := graph.Cycle(n)
	res, err := congest.Run(congest.Config{Graph: g, Seed: 2}, ColorRing(ColorRingIterations(n)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Rounds != ColorRingRounds(n) {
		t.Fatalf("rounds = %d, want %d", res.Stats.Rounds, ColorRingRounds(n))
	}
}

func TestColeVishkinStepShrinks(t *testing.T) {
	// After one step from 64-bit values, colours fit in 7 bits.
	for _, pair := range [][2]uint64{{0xDEAD, 0xBEEF}, {1, 2}, {1 << 63, 1}} {
		c := coleVishkinStep(pair[0], pair[1])
		if c >= 128 {
			t.Fatalf("step(%x,%x) = %d, not shrunk", pair[0], pair[1], c)
		}
	}
}
