package algorithms

import (
	"mobilecongest/internal/congest"
	"mobilecongest/internal/graph"
)

// Cole-Vishkin 3-coloring of a directed ring (here: a cycle graph where
// each node's successor is its higher-ID neighbour, wrapping at the top).
// Starting from colours = IDs, each iteration compares a node's colour bits
// with its predecessor's and shrinks the colour space from b bits to
// ~log2(b)+1 bits; O(log* n) iterations reach 6 colours, and three final
// shift-down rounds reduce to 3. A classic LOCAL/CONGEST payload whose
// correctness (proper colouring) is easy to verify and sensitive to any
// corrupted message.

// ColorRingResult is the per-node output.
type ColorRingResult struct {
	Color int
}

// ColorRing runs Cole-Vishkin on a cycle for the given iteration count
// (use ColorRingIterations(n)), then the 6-to-3 shift-down. All nodes run
// the same fixed schedule.
func ColorRing(iterations int) congest.Protocol {
	return func(rt congest.Runtime) {
		pr := congest.Ports(rt)
		pred, succ := ringNeighbors(rt)
		predPort, succPort := pr.Port(pred), pr.Port(succ)
		color := uint64(rt.ID())
		// Phase 1: Cole-Vishkin iterations. Each round: send my colour to
		// my successor; combine with predecessor's.
		for it := 0; it < iterations; it++ {
			out := pr.OutBuf()
			out[succPort] = congest.U64Msg(color)
			in := pr.ExchangePorts(out)
			pc := color // self-fallback keeps the protocol total under corruption
			if m := in[predPort]; m != nil {
				pc = congest.U64(m)
			}
			color = coleVishkinStep(pc, color)
		}
		// Phase 2: shift-down from 6 to 3 colours: for c = 5, 4, 3: nodes
		// with that colour re-colour to the smallest colour unused by both
		// ring neighbours. Each step needs both neighbours' colours.
		for c := uint64(5); c >= 3; c-- {
			out := pr.OutBuf()
			m := congest.U64Msg(color)
			out[succPort] = m
			out[predPort] = m
			in := pr.ExchangePorts(out)
			var nb []uint64
			if m := in[predPort]; m != nil {
				nb = append(nb, congest.U64(m))
			}
			if m := in[succPort]; m != nil && succPort != predPort {
				nb = append(nb, congest.U64(m))
			}
			if color == c {
				for cand := uint64(0); cand < 3; cand++ {
					used := false
					for _, x := range nb {
						if x == cand {
							used = true
						}
					}
					if !used {
						color = cand
						break
					}
				}
			}
		}
		rt.SetOutput(ColorRingResult{Color: int(color)})
	}
}

// coleVishkinStep computes the new colour from the predecessor's and own
// colour: the index of the lowest differing bit, shifted, plus that bit.
func coleVishkinStep(pred, own uint64) uint64 {
	diff := pred ^ own
	if diff == 0 {
		// Corrupted input made the chain improper; pick a deterministic
		// escape that keeps the protocol running.
		diff = 1
	}
	i := uint64(0)
	for diff&1 == 0 {
		diff >>= 1
		i++
	}
	bit := (own >> i) & 1
	return i<<1 | bit
}

// ColorRingIterations returns enough Cole-Vishkin iterations to reach 6
// colours from b-bit IDs (log* with slack; 4 suffices for any n < 2^64).
func ColorRingIterations(n int) int { return 4 }

// ColorRingRounds is the protocol's fixed round count.
func ColorRingRounds(n int) int { return ColorRingIterations(n) + 3 }

// ringNeighbors orients the cycle: successor = higher neighbour (wrapping),
// predecessor = the other one.
func ringNeighbors(rt congest.Runtime) (pred, succ graph.NodeID) {
	succ = successor(rt)
	for _, v := range rt.Neighbors() {
		if v != succ {
			pred = v
		}
	}
	if len(rt.Neighbors()) == 1 {
		pred = succ
	}
	return pred, succ
}

// VerifyRingColoring checks outputs form a proper <=3-colouring of g.
func VerifyRingColoring(g *graph.Graph, outputs []any) bool {
	colors := make([]int, g.N())
	for i, o := range outputs {
		r, ok := o.(ColorRingResult)
		if !ok || r.Color < 0 || r.Color > 2 {
			return false
		}
		colors[i] = r.Color
	}
	for _, e := range g.Edges() {
		if colors[e.U] == colors[e.V] {
			return false
		}
	}
	return true
}
