// Package algorithms provides the fault-free CONGEST payload algorithms the
// compilers are exercised on. Every protocol runs a fixed, globally known
// number of rounds (exchanging on every edge each round where needed), which
// is the synchrony discipline the paper's round-by-round simulations assume.
//
// All protocols here are port-native: they program against
// congest.PortRuntime (via congest.Ports), moving each round through the
// runtime's reusable port buffers instead of allocating outbox/inbox maps.
// One payload buffer is shared across all ports of a round — delivery is by
// reference and corruptors clone before mutating, so this is safe and drops
// the per-neighbour message allocation too.
package algorithms

import (
	"math/rand"

	"mobilecongest/internal/congest"
	"mobilecongest/internal/graph"
)

// SumInputs generates canonical SumToRoot inputs: node u holds one 8-byte
// uint64 in [1, 1000] drawn deterministically from seed. The second return
// value is the global sum — the protocol's expected output at every node —
// so callers (the protocol registry, tests) can verify end-to-end
// correctness without re-decoding the inputs.
func SumInputs(n int, seed int64) ([][]byte, uint64) {
	rng := rand.New(rand.NewSource(seed))
	inputs := make([][]byte, n)
	var total uint64
	for u := 0; u < n; u++ {
		v := 1 + uint64(rng.Intn(1000))
		total += v
		inputs[u] = congest.PutU64(nil, v)
	}
	return inputs, total
}

// FloodMax floods the maximum node ID for the given number of rounds; with
// rounds >= diameter every node outputs n-1. This is the leader-election
// payload.
func FloodMax(rounds int) congest.Protocol {
	return func(rt congest.Runtime) {
		pr := congest.Ports(rt)
		best := uint64(rt.ID())
		for r := 0; r < rounds; r++ {
			out := pr.OutBuf()
			m := congest.U64Msg(best)
			for p := range out {
				out[p] = m
			}
			in := pr.ExchangePorts(out)
			for _, mm := range in {
				if mm == nil {
					continue
				}
				if v := congest.U64(mm); v > best {
					best = v
				}
			}
		}
		rt.SetOutput(best)
	}
}

// Broadcast floods a value held by root to all nodes within the given number
// of rounds (>= diameter for full coverage). Nodes without the value yet
// send an explicit zero placeholder so traffic is input-independent in
// volume; value 0 is reserved as "none". A node hearing several distinct
// nonzero values in one round (possible only under corruption) adopts the
// smallest, so the protocol stays deterministic regardless of inbox order.
func Broadcast(root graph.NodeID, value uint64, rounds int) congest.Protocol {
	return func(rt congest.Runtime) {
		pr := congest.Ports(rt)
		var have uint64
		if rt.ID() == root {
			have = value
		}
		for r := 0; r < rounds; r++ {
			out := pr.OutBuf()
			m := congest.U64Msg(have)
			for p := range out {
				out[p] = m
			}
			in := pr.ExchangePorts(out)
			if have == 0 {
				for _, mm := range in {
					if mm == nil {
						continue
					}
					if v := congest.U64(mm); v != 0 && (have == 0 || v < have) {
						have = v
					}
				}
			}
		}
		rt.SetOutput(have)
	}
}

// BroadcastInput is Broadcast but the value comes from the root's Input()
// (first 8 bytes) — used by the secure compilers whose experiments vary the
// input to test indistinguishability. Like Broadcast, it folds each round's
// inbox order-insensitively (smallest nonzero wins) so corrupted runs stay
// deterministic.
func BroadcastInput(root graph.NodeID, rounds int) congest.Protocol {
	return func(rt congest.Runtime) {
		pr := congest.Ports(rt)
		var have uint64
		if rt.ID() == root {
			have = congest.U64(rt.Input())
		}
		for r := 0; r < rounds; r++ {
			out := pr.OutBuf()
			m := congest.U64Msg(have)
			for p := range out {
				out[p] = m
			}
			in := pr.ExchangePorts(out)
			if have == 0 {
				for _, mm := range in {
					if mm == nil {
						continue
					}
					if v := congest.U64(mm); v != 0 && (have == 0 || v < have) {
						have = v
					}
				}
			}
		}
		rt.SetOutput(have)
	}
}

// BFSResult is the per-node output of the BFS tree protocol.
type BFSResult struct {
	Dist   int
	Parent graph.NodeID
}

// BFS builds a breadth-first tree rooted at root in the given number of
// rounds (>= eccentricity of root). Each node outputs its distance and
// parent. Wire format: distance+1 (so 0 means "unreached").
func BFS(root graph.NodeID, rounds int) congest.Protocol {
	return func(rt congest.Runtime) {
		pr := congest.Ports(rt)
		dist := -1
		parent := graph.NodeID(-1)
		if rt.ID() == root {
			dist = 0
			parent = root
		}
		for r := 0; r < rounds; r++ {
			out := pr.OutBuf()
			m := congest.U64Msg(uint64(dist + 1))
			for p := range out {
				out[p] = m
			}
			in := pr.ExchangePorts(out)
			for p, mm := range in {
				if mm == nil {
					continue
				}
				from := pr.Neighbor(p)
				d := int(congest.U64(mm))
				if d > 0 && (dist < 0 || d < dist+1) { // neighbour at distance d-1
					if dist < 0 || d-1+1 < dist {
						dist = d
						parent = from
					}
				}
			}
		}
		rt.SetOutput(BFSResult{Dist: dist, Parent: parent})
	}
}

// SumToRoot aggregates the sum of all node inputs (first 8 bytes each) to
// the root over a BFS tree built on the fly, then broadcasts the total back;
// every node outputs the global sum. The protocol runs 3*radius rounds:
// radius to build the tree, radius for convergecast, radius for downcast —
// executed as a single fixed schedule so all nodes stay in lock-step.
func SumToRoot(root graph.NodeID, radius int) congest.Protocol {
	return func(rt congest.Runtime) {
		pr := congest.Ports(rt)
		myVal := congest.U64(rt.Input())
		// Phase 1: BFS layers.
		dist := -1
		parent := graph.NodeID(-1)
		if rt.ID() == root {
			dist = 0
			parent = root
		}
		for r := 0; r < radius; r++ {
			out := pr.OutBuf()
			m := congest.U64Msg(uint64(dist + 1))
			for p := range out {
				out[p] = m
			}
			in := pr.ExchangePorts(out)
			for p, mm := range in {
				if mm == nil {
					continue
				}
				d := int(congest.U64(mm))
				if d > 0 && (dist < 0 || d < dist) {
					dist = d
					parent = pr.Neighbor(p)
				}
			}
		}
		// Phase 2: convergecast. A node at distance d sends its subtree sum
		// at round radius-d; it accumulates child contributions first.
		acc := myVal
		for r := 0; r < radius; r++ {
			out := pr.OutBuf()
			if dist > 0 && r == radius-dist {
				if p := pr.Port(parent); p >= 0 {
					out[p] = congest.U64Msg(acc)
				}
			}
			in := pr.ExchangePorts(out)
			for p, mm := range in {
				if mm == nil {
					continue
				}
				if from := pr.Neighbor(p); from != parent || rt.ID() == root {
					acc += congest.U64(mm)
				}
				// Late BFS ties can make two nodes claim each other; parent
				// messages are ignored in convergecast.
			}
		}
		// Phase 3: downcast the total.
		var total uint64
		if rt.ID() == root {
			total = acc
		}
		for r := 0; r < radius; r++ {
			out := pr.OutBuf()
			m := congest.U64Msg(total)
			for p := range out {
				out[p] = m
			}
			in := pr.ExchangePorts(out)
			if total == 0 && parent >= 0 {
				if p := pr.Port(parent); p >= 0 && in[p] != nil {
					total = congest.U64(in[p])
				}
			}
		}
		rt.SetOutput(total)
	}
}

// TokenRing circulates a token around a cycle-structured neighbourhood: each
// node forwards the received token XOR its ID to its successor (the
// neighbour with the next-higher ID, wrapping). It is a deliberately
// order-sensitive payload: one corrupted round changes every subsequent
// value, making it a sharp correctness probe for the byzantine compilers.
func TokenRing(rounds int) congest.Protocol {
	return func(rt congest.Runtime) {
		pr := congest.Ports(rt)
		succPort := pr.Port(successor(rt))
		token := uint64(rt.ID()) + 1
		var trace uint64
		for r := 0; r < rounds; r++ {
			out := pr.OutBuf()
			out[succPort] = congest.U64Msg(token)
			in := pr.ExchangePorts(out)
			for _, mm := range in {
				if mm == nil {
					continue
				}
				token = congest.U64(mm) ^ (uint64(rt.ID()) + 1)
			}
			trace = trace*31 + token
		}
		rt.SetOutput(trace)
	}
}

func successor(rt congest.Runtime) graph.NodeID {
	nbs := rt.Neighbors()
	// Smallest neighbour ID greater than mine, else the smallest overall.
	best := graph.NodeID(-1)
	for _, v := range nbs {
		if v > rt.ID() && (best < 0 || v < best) {
			best = v
		}
	}
	if best >= 0 {
		return best
	}
	min := nbs[0]
	for _, v := range nbs {
		if v < min {
			min = v
		}
	}
	return min
}
