package mobilecongest

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"mobilecongest/internal/adversary"
	"mobilecongest/internal/algorithms"
	"mobilecongest/internal/congest"
	"mobilecongest/internal/graph"
)

// TestEngineEquivalenceProperty is the cross-engine determinism contract: for
// a randomized corpus of graphs, protocols, adversaries, and seeds, the
// goroutine and step engines must yield byte-identical outputs, equal Stats,
// byte-identical observer-visible traces (per-round delivered messages in
// canonical order, payloads, and corrupted edge sets), and (for
// eavesdroppers) byte-identical adversary views. Any scheduling leak in
// any engine — a reordered RNG draw, a miscounted round, an
// inbox-dependent branch — shows up here.
//
// Every trial additionally runs a shard-engine leg at shard counts 1, 2,
// GOMAXPROCS, and one larger than every corpus graph, each compared
// byte-for-byte against the goroutine baseline — the parallel engine's
// determinism contract across shard boundaries, empty shards, and the
// n < shards clamp. Trials that abort (budget violations, bad sends) require
// identical error text from the shard engine too.
//
// Every trial additionally runs a port-vs-map protocol leg: the same
// protocol logic written against the legacy map Exchange (exercising the
// engines' compat wrapper over ports) on both engines, which must be
// byte-identical to the port-native run in Results, traces, and
// eavesdropper views — the regression contract for the port-native node
// runtime and its compat wrapper.
//
// Every trial with an adversary additionally runs a further leg: the same
// parameters through a map-based mirror of the adversary (replicating the
// pre-slot Traffic implementation) behind the AdaptTraffic compat adapter.
// The slot-native and map paths must produce byte-identical Results,
// eavesdropper views, and observer traces — the regression contract for the
// slot port of internal/adversary and for the adapter itself.
func TestEngineEquivalenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(0xE9))
	const trials = 120

	graphFams := []func(r *rand.Rand) (string, *graph.Graph){
		func(r *rand.Rand) (string, *graph.Graph) {
			n := 4 + r.Intn(12)
			return fmt.Sprintf("clique(%d)", n), graph.Clique(n)
		},
		func(r *rand.Rand) (string, *graph.Graph) {
			n := 4 + r.Intn(28)
			return fmt.Sprintf("cycle(%d)", n), graph.Cycle(n)
		},
		func(r *rand.Rand) (string, *graph.Graph) {
			n, k := 8+r.Intn(16), 2+r.Intn(2)
			return fmt.Sprintf("circulant(%d,%d)", n, k), graph.Circulant(n, k)
		},
		func(r *rand.Rand) (string, *graph.Graph) {
			rows, cols := 2+r.Intn(3), 2+r.Intn(4)
			return fmt.Sprintf("grid(%d,%d)", rows, cols), graph.Grid(rows, cols)
		},
		func(r *rand.Rand) (string, *graph.Graph) {
			d := 2 + r.Intn(3)
			return fmt.Sprintf("hypercube(%d)", d), graph.Hypercube(d)
		},
		func(*rand.Rand) (string, *graph.Graph) {
			return "petersen", graph.Petersen()
		},
	}

	// randomLoad stresses everything at once: private randomness, variable
	// message sizes, silent rounds, and data-dependent early termination.
	// The map form is the historical implementation; the port form draws
	// randomness in the same ascending-neighbour order, so the two emit
	// byte-identical traffic — the port-vs-map protocol leg below pins that.
	randomLoad := func(rounds int) Protocol {
		return func(rt congest.Runtime) {
			acc := uint64(rt.ID())
			for r := 0; r < rounds; r++ {
				out := make(map[graph.NodeID]congest.Msg)
				for _, v := range rt.Neighbors() {
					if rt.Rand().Intn(3) == 0 {
						continue // silent edge this round
					}
					m := make(congest.Msg, 1+rt.Rand().Intn(24))
					rt.Rand().Read(m)
					out[v] = m
				}
				in := rt.Exchange(out)
				for _, m := range in {
					acc ^= congest.U64(m) + uint64(len(m))
				}
				if acc%13 == 0 {
					break // early, data-dependent termination
				}
			}
			rt.SetOutput(acc)
		}
	}
	portRandomLoad := func(rounds int) Protocol {
		return func(rt congest.Runtime) {
			pr := congest.Ports(rt)
			acc := uint64(rt.ID())
			for r := 0; r < rounds; r++ {
				out := pr.OutBuf()
				for p := range out {
					if rt.Rand().Intn(3) == 0 {
						continue // silent edge this round
					}
					m := make(congest.Msg, 1+rt.Rand().Intn(24))
					rt.Rand().Read(m)
					out[p] = m
				}
				in := pr.ExchangePorts(out)
				for _, m := range in {
					if m == nil {
						continue
					}
					acc ^= congest.U64(m) + uint64(len(m))
				}
				if acc%13 == 0 {
					break // early, data-dependent termination
				}
			}
			rt.SetOutput(acc)
		}
	}
	// mapFloodMax and mapBroadcast replicate the pre-port map
	// implementations of the algorithms package protocols verbatim.
	mapFloodMax := func(rounds int) Protocol {
		return func(rt congest.Runtime) {
			best := uint64(rt.ID())
			for r := 0; r < rounds; r++ {
				out := make(map[graph.NodeID]congest.Msg, len(rt.Neighbors()))
				for _, v := range rt.Neighbors() {
					out[v] = congest.U64Msg(best)
				}
				in := rt.Exchange(out)
				for _, m := range in {
					if v := congest.U64(m); v > best {
						best = v
					}
				}
			}
			rt.SetOutput(best)
		}
	}
	mapBroadcast := func(root graph.NodeID, value uint64, rounds int) Protocol {
		return func(rt congest.Runtime) {
			var have uint64
			if rt.ID() == root {
				have = value
			}
			for r := 0; r < rounds; r++ {
				out := make(map[graph.NodeID]congest.Msg, len(rt.Neighbors()))
				for _, v := range rt.Neighbors() {
					out[v] = congest.U64Msg(have)
				}
				in := rt.Exchange(out)
				if have == 0 {
					for _, m := range in {
						if v := congest.U64(m); v != 0 && (have == 0 || v < have) {
							have = v
						}
					}
				}
			}
			rt.SetOutput(have)
		}
	}

	// Each family yields the port-native protocol plus a map-Exchange mirror
	// of the same logic, for the port-vs-map compat leg.
	protoFams := []func(g *graph.Graph, r *rand.Rand) (string, Protocol, Protocol){
		func(g *graph.Graph, r *rand.Rand) (string, Protocol, Protocol) {
			rounds := g.Diameter() + 1 + r.Intn(3)
			return fmt.Sprintf("floodmax(%d)", rounds), algorithms.FloodMax(rounds), mapFloodMax(rounds)
		},
		func(g *graph.Graph, r *rand.Rand) (string, Protocol, Protocol) {
			rounds := g.Diameter() + 1
			val := r.Uint64() % 1000
			return fmt.Sprintf("broadcast(%d)", rounds), algorithms.Broadcast(0, val, rounds), mapBroadcast(0, val, rounds)
		},
		func(g *graph.Graph, r *rand.Rand) (string, Protocol, Protocol) {
			rounds := 3 + r.Intn(6)
			return fmt.Sprintf("randomload(%d)", rounds), portRandomLoad(rounds), randomLoad(rounds)
		},
	}

	// Each adversary family builds a FRESH instance per engine run (they are
	// stateful) from the same parameters, so both engines face an identical
	// opponent. mkMap builds the map-based mirror of the same adversary for
	// the compat-adapter leg (nil for the fault-free family).
	type advFamily struct {
		name  string
		mk    func() congest.Adversary
		mkMap func() congest.Adversary
	}
	advFams := []func(g *graph.Graph, f int, seed int64) advFamily{
		func(*graph.Graph, int, int64) advFamily {
			return advFamily{name: "none", mk: func() congest.Adversary { return nil }}
		},
		func(g *graph.Graph, f int, seed int64) advFamily {
			return advFamily{
				name: "eavesdrop",
				mk:   func() congest.Adversary { return adversary.NewMobileEavesdropper(g, f, seed) },
				mkMap: func() congest.Adversary {
					return congest.AdaptTraffic(&mapEavesdropper{g: g, f: f, rng: rand.New(rand.NewSource(seed))})
				},
			}
		},
		func(g *graph.Graph, f int, seed int64) advFamily {
			return advFamily{
				name: "flip",
				mk: func() congest.Adversary {
					return adversary.NewMobileByzantine(g, f, seed, adversary.SelectRandom, adversary.CorruptFlip)
				},
				mkMap: func() congest.Adversary {
					return congest.AdaptTraffic(newMapByzantine(g, f, seed, mapSelectRandom, adversary.CorruptFlip))
				},
			}
		},
		func(g *graph.Graph, f int, seed int64) advFamily {
			return advFamily{
				name: "drop",
				mk: func() congest.Adversary {
					return adversary.NewMobileByzantine(g, f, seed, adversary.SelectRandom, adversary.CorruptDrop)
				},
				mkMap: func() congest.Adversary {
					return congest.AdaptTraffic(newMapByzantine(g, f, seed, mapSelectRandom, adversary.CorruptDrop))
				},
			}
		},
		func(g *graph.Graph, f int, seed int64) advFamily {
			return advFamily{
				name: "swap-busiest",
				mk: func() congest.Adversary {
					return adversary.NewMobileByzantine(g, f, seed, adversary.SelectBusiest, adversary.CorruptSwap)
				},
				mkMap: func() congest.Adversary {
					return congest.AdaptTraffic(newMapByzantine(g, f, seed, mapSelectBusiest, adversary.CorruptSwap))
				},
			}
		},
		func(g *graph.Graph, f int, seed int64) advFamily {
			return advFamily{
				name: "inject-static",
				mk: func() congest.Adversary {
					return adversary.NewStaticByzantine(g, f, seed, adversary.SelectRandom, adversary.CorruptInject)
				},
				mkMap: func() congest.Adversary {
					b := newMapByzantine(g, f, seed, mapSelectRandom, adversary.CorruptInject)
					b.staticMode = true
					return congest.AdaptTraffic(b)
				},
			}
		},
		func(g *graph.Graph, f int, seed int64) advFamily {
			return advFamily{
				name: "error-rate",
				mk: func() congest.Adversary {
					return adversary.NewRoundErrorRate(g, 3*f, []int{0, f, 1}, seed, adversary.SelectRandom, adversary.CorruptRandomize)
				},
				mkMap: func() congest.Adversary {
					b := newMapByzantine(g, f, seed, mapSelectRandom, adversary.CorruptRandomize)
					b.totalBudget, b.burst = 3*f, []int{0, f, 1}
					return congest.AdaptTraffic(b)
				},
			}
		},
	}

	for trial := 0; trial < trials; trial++ {
		gname, g := graphFams[rng.Intn(len(graphFams))](rng)
		pname, proto, mapProto := protoFams[rng.Intn(len(protoFams))](g, rng)
		f := 1 + rng.Intn(3)
		advSeed := rng.Int63()
		fam := advFams[rng.Intn(len(advFams))](g, f, advSeed)
		seed := rng.Int63()
		label := fmt.Sprintf("trial %d: %s/%s/%s f=%d seed=%d", trial, gname, pname, fam.name, f, seed)

		run := func(e Engine, mk func() congest.Adversary, p Protocol) (*Result, congest.Adversary, *TraceObserver, error) {
			adv := mk()
			tr := NewTraceObserver()
			res, err := e.Run(congest.Config{
				Graph: g, Seed: seed, Adversary: adv, MaxRounds: 1 << 16,
				Observers: []congest.Observer{tr},
			}, p)
			return res, adv, tr, err
		}
		want, wantAdv, wantTr, err1 := run(EngineGoroutine, fam.mk, proto)
		got, gotAdv, gotTr, err2 := run(EngineStep, fam.mk, proto)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("%s: errors differ: goroutine=%v step=%v", label, err1, err2)
		}
		// Shard counts for the shard-engine leg: the degenerate single shard,
		// a boundary-heavy split, the GOMAXPROCS default, and one count
		// larger than every corpus graph (n <= 36 < 64), so empty shards and
		// the clamp to n are exercised on every machine.
		shardCounts := []int{1, 2, runtime.GOMAXPROCS(0), 64}

		if err1 != nil {
			if err1.Error() != err2.Error() {
				t.Fatalf("%s: error text differs: %q vs %q", label, err1, err2)
			}
			for _, sc := range shardCounts {
				_, _, _, serr := run(NewShardEngine(sc), fam.mk, proto)
				if serr == nil || serr.Error() != err1.Error() {
					t.Fatalf("%s: shard(%d) error %q, want %q", label, sc, serr, err1)
				}
			}
			continue
		}
		if want.Stats != got.Stats {
			t.Fatalf("%s: stats differ:\n goroutine %+v\n step      %+v", label, want.Stats, got.Stats)
		}
		// Byte-identical outputs: compare the canonical rendering.
		wout := fmt.Sprintf("%#v", want.Outputs)
		gout := fmt.Sprintf("%#v", got.Outputs)
		if wout != gout {
			t.Fatalf("%s: outputs differ:\n goroutine %s\n step      %s", label, wout, gout)
		}
		// Observer-visible traces must be byte-identical: same rounds, same
		// canonical message order, same payloads, same corrupted edges.
		wtr, err := json.Marshal(wantTr.Rounds())
		if err != nil {
			t.Fatal(err)
		}
		gtr, err := json.Marshal(gotTr.Rounds())
		if err != nil {
			t.Fatal(err)
		}
		if string(wtr) != string(gtr) {
			t.Fatalf("%s: traces differ across engines:\n goroutine %s\n step      %s", label, wtr, gtr)
		}
		if len(wantTr.Rounds()) != want.Stats.Rounds {
			t.Fatalf("%s: trace has %d rounds, stats say %d", label, len(wantTr.Rounds()), want.Stats.Rounds)
		}
		// Eavesdroppers must have seen byte-identical transcripts.
		if we, ok := wantAdv.(*adversary.Eavesdropper); ok {
			ge := gotAdv.(*adversary.Eavesdropper)
			if string(we.ViewBytes()) != string(ge.ViewBytes()) {
				t.Fatalf("%s: eavesdropper views differ across engines", label)
			}
		}

		// Shard-engine leg: the same trial on the shard engine at several
		// shard counts must be byte-identical to the baseline — Results,
		// traces, and eavesdropper views. This is the tentpole determinism
		// contract: sharding changes scheduling only.
		for _, sc := range shardCounts {
			sres, sadv, str, serr := run(NewShardEngine(sc), fam.mk, proto)
			if serr != nil {
				t.Fatalf("%s: shard(%d) leg failed: %v", label, sc, serr)
			}
			if sres.Stats != want.Stats {
				t.Fatalf("%s: stats differ shard(%d):\n goroutine %+v\n shard     %+v",
					label, sc, want.Stats, sres.Stats)
			}
			sout := fmt.Sprintf("%#v", sres.Outputs)
			if sout != wout {
				t.Fatalf("%s: outputs differ shard(%d):\n goroutine %s\n shard     %s",
					label, sc, wout, sout)
			}
			strb, err := json.Marshal(str.Rounds())
			if err != nil {
				t.Fatal(err)
			}
			if string(strb) != string(wtr) {
				t.Fatalf("%s: traces differ shard(%d):\n goroutine %s\n shard     %s",
					label, sc, wtr, strb)
			}
			if se, ok := sadv.(*adversary.Eavesdropper); ok {
				we := wantAdv.(*adversary.Eavesdropper)
				if string(se.ViewBytes()) != string(we.ViewBytes()) {
					t.Fatalf("%s: eavesdropper views differ shard(%d) vs goroutine", label, sc)
				}
			}
		}

		// Port-vs-map protocol leg: the same protocol written against the
		// legacy map Exchange (running through the engines' compat wrapper)
		// must be indistinguishable from the port-native run — identical
		// Results, traces, and eavesdropper views, on all engines.
		for _, eng := range []Engine{EngineGoroutine, EngineStep, EngineShard} {
			pres, padv, ptr, perr := run(eng, fam.mk, mapProto)
			if perr != nil {
				t.Fatalf("%s: map-protocol leg failed on %s: %v", label, eng.Name(), perr)
			}
			if pres.Stats != want.Stats {
				t.Fatalf("%s: stats differ port vs map protocol on %s:\n port %+v\n map  %+v",
					label, eng.Name(), want.Stats, pres.Stats)
			}
			pout := fmt.Sprintf("%#v", pres.Outputs)
			if pout != wout {
				t.Fatalf("%s: outputs differ port vs map protocol on %s:\n port %s\n map  %s",
					label, eng.Name(), wout, pout)
			}
			ptrb, err := json.Marshal(ptr.Rounds())
			if err != nil {
				t.Fatal(err)
			}
			if string(ptrb) != string(wtr) {
				t.Fatalf("%s: traces differ port vs map protocol on %s", label, eng.Name())
			}
			if pe, ok := padv.(*adversary.Eavesdropper); ok {
				ge := gotAdv.(*adversary.Eavesdropper)
				if string(pe.ViewBytes()) != string(ge.ViewBytes()) {
					t.Fatalf("%s: eavesdropper views differ port vs map protocol on %s", label, eng.Name())
				}
			}
		}

		// Slot-vs-map leg: the same trial through the map mirror behind the
		// compat adapter must be indistinguishable from the slot-native run.
		if fam.mkMap == nil {
			continue
		}
		mres, madv, mtr, merr := run(EngineStep, fam.mkMap, proto)
		if merr != nil {
			t.Fatalf("%s: map-adapter leg failed: %v", label, merr)
		}
		if mres.Stats != got.Stats {
			t.Fatalf("%s: stats differ slot vs map:\n slot %+v\n map  %+v", label, got.Stats, mres.Stats)
		}
		mout := fmt.Sprintf("%#v", mres.Outputs)
		if mout != gout {
			t.Fatalf("%s: outputs differ slot vs map:\n slot %s\n map  %s", label, gout, mout)
		}
		mtrb, err := json.Marshal(mtr.Rounds())
		if err != nil {
			t.Fatal(err)
		}
		if string(mtrb) != string(gtr) {
			t.Fatalf("%s: traces differ slot vs map:\n slot %s\n map  %s", label, gtr, mtrb)
		}
		if me, ok := unwrapAdv(madv).(*mapEavesdropper); ok {
			ge := gotAdv.(*adversary.Eavesdropper)
			if string(me.viewBytes()) != string(ge.ViewBytes()) {
				t.Fatalf("%s: eavesdropper views differ slot vs map", label)
			}
		}
	}
}

// TestEngineEquivalenceBandwidth is the bandwidth leg of the cross-engine
// contract: for random graphs, variable-size traffic, and random per-edge
// bit budgets straddling the message-size distribution, every engine must
// produce byte-identical Results and traces on passing trials and the
// identical deterministic congest.ErrBandwidthExceeded error — same
// smallest offender, same text — on violating ones. Any divergence in
// where the engines check the budget (collection order, shard boundaries,
// goroutine scheduling) shows up here.
func TestEngineEquivalenceBandwidth(t *testing.T) {
	rng := rand.New(rand.NewSource(0xBA))
	const trials = 60

	graphFams := []func(r *rand.Rand) (string, *graph.Graph){
		func(r *rand.Rand) (string, *graph.Graph) {
			n := 4 + r.Intn(12)
			return fmt.Sprintf("clique(%d)", n), graph.Clique(n)
		},
		func(r *rand.Rand) (string, *graph.Graph) {
			n, k := 8+r.Intn(16), 2+r.Intn(2)
			return fmt.Sprintf("circulant(%d,%d)", n, k), graph.Circulant(n, k)
		},
		func(r *rand.Rand) (string, *graph.Graph) {
			rows, cols := 2+r.Intn(3), 2+r.Intn(4)
			return fmt.Sprintf("grid(%d,%d)", rows, cols), graph.Grid(rows, cols)
		},
	}

	// Variable-size traffic: payloads of 1..24 bytes (8..192 bits), drawn
	// from each node's private RNG, so a budget in the low hundreds of bits
	// straddles the size distribution — some trials pass, some violate, and
	// which node violates first is seed-determined.
	sizedLoad := func(rounds int) Protocol {
		return func(rt congest.Runtime) {
			pr := congest.Ports(rt)
			acc := uint64(rt.ID())
			for r := 0; r < rounds; r++ {
				out := pr.OutBuf()
				for p := range out {
					m := make(congest.Msg, 1+rt.Rand().Intn(24))
					rt.Rand().Read(m)
					out[p] = m
				}
				in := pr.ExchangePorts(out)
				for _, m := range in {
					acc ^= congest.U64(m) + uint64(len(m))
				}
			}
			rt.SetOutput(acc)
		}
	}

	violations := 0
	for trial := 0; trial < trials; trial++ {
		gname, g := graphFams[rng.Intn(len(graphFams))](rng)
		rounds := 2 + rng.Intn(4)
		proto := sizedLoad(rounds)
		// Budget: mostly inside the 8..192-bit payload range (violating with
		// seed-dependent offenders), sometimes 0 (unlimited) or generous.
		var budget int
		switch rng.Intn(4) {
		case 0:
			budget = 0
		case 1:
			budget = 192 + rng.Intn(64)
		default:
			budget = 8 + rng.Intn(200)
		}
		seed := rng.Int63()
		label := fmt.Sprintf("trial %d: %s rounds=%d bw=%d seed=%d", trial, gname, rounds, budget, seed)

		run := func(e Engine) (*Result, *TraceObserver, error) {
			tr := NewTraceObserver()
			res, err := e.Run(congest.Config{
				Graph: g, Seed: seed, Bandwidth: budget, MaxRounds: 1 << 16,
				Observers: []congest.Observer{tr},
			}, proto)
			return res, tr, err
		}

		want, wantTr, err1 := run(EngineGoroutine)
		engines := []Engine{EngineStep, NewShardEngine(1), NewShardEngine(2),
			NewShardEngine(runtime.GOMAXPROCS(0)), NewShardEngine(64)}
		if err1 != nil {
			if !errors.Is(err1, congest.ErrBandwidthExceeded) {
				t.Fatalf("%s: unexpected error class: %v", label, err1)
			}
			violations++
			for _, e := range engines {
				_, _, err2 := run(e)
				if err2 == nil || err2.Error() != err1.Error() {
					t.Fatalf("%s: %s error %q, want %q", label, e.Name(), err2, err1)
				}
			}
			continue
		}
		wtr, err := json.Marshal(wantTr.Rounds())
		if err != nil {
			t.Fatal(err)
		}
		wout := fmt.Sprintf("%#v", want.Outputs)
		for _, e := range engines {
			res, tr, err2 := run(e)
			if err2 != nil {
				t.Fatalf("%s: %s failed where goroutine passed: %v", label, e.Name(), err2)
			}
			if res.Stats != want.Stats {
				t.Fatalf("%s: stats differ on %s:\n goroutine %+v\n engine    %+v",
					label, e.Name(), want.Stats, res.Stats)
			}
			if out := fmt.Sprintf("%#v", res.Outputs); out != wout {
				t.Fatalf("%s: outputs differ on %s:\n goroutine %s\n engine    %s",
					label, e.Name(), wout, out)
			}
			trb, err := json.Marshal(tr.Rounds())
			if err != nil {
				t.Fatal(err)
			}
			if string(trb) != string(wtr) {
				t.Fatalf("%s: traces differ on %s", label, e.Name())
			}
		}
	}
	if violations == 0 {
		t.Fatal("corpus produced no bandwidth violations; budgets no longer straddle the size distribution")
	}
}

// unwrapAdv reaches through the compat adapter to the wrapped map adversary.
func unwrapAdv(a congest.Adversary) any {
	if u, ok := a.(interface{ Unwrap() any }); ok {
		return u.Unwrap()
	}
	return a
}
