package mobilecongest

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"

	"mobilecongest/internal/adversary"
	"mobilecongest/internal/algorithms"
	"mobilecongest/internal/congest"
	"mobilecongest/internal/graph"
)

// TestEngineEquivalenceProperty is the cross-engine determinism contract: for
// a randomized corpus of graphs, protocols, adversaries, and seeds, the
// goroutine and step engines must yield byte-identical outputs, equal Stats,
// byte-identical observer-visible traces (per-round delivered messages in
// canonical order, payloads, and corrupted edge sets), and (for
// eavesdroppers) byte-identical adversary views. Any scheduling leak in
// either engine — a reordered RNG draw, a miscounted round, an
// inbox-dependent branch — shows up here.
func TestEngineEquivalenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(0xE9))
	const trials = 120

	graphFams := []func(r *rand.Rand) (string, *graph.Graph){
		func(r *rand.Rand) (string, *graph.Graph) {
			n := 4 + r.Intn(12)
			return fmt.Sprintf("clique(%d)", n), graph.Clique(n)
		},
		func(r *rand.Rand) (string, *graph.Graph) {
			n := 4 + r.Intn(28)
			return fmt.Sprintf("cycle(%d)", n), graph.Cycle(n)
		},
		func(r *rand.Rand) (string, *graph.Graph) {
			n, k := 8+r.Intn(16), 2+r.Intn(2)
			return fmt.Sprintf("circulant(%d,%d)", n, k), graph.Circulant(n, k)
		},
		func(r *rand.Rand) (string, *graph.Graph) {
			rows, cols := 2+r.Intn(3), 2+r.Intn(4)
			return fmt.Sprintf("grid(%d,%d)", rows, cols), graph.Grid(rows, cols)
		},
		func(r *rand.Rand) (string, *graph.Graph) {
			d := 2 + r.Intn(3)
			return fmt.Sprintf("hypercube(%d)", d), graph.Hypercube(d)
		},
		func(*rand.Rand) (string, *graph.Graph) {
			return "petersen", graph.Petersen()
		},
	}

	// randomLoad stresses everything at once: private randomness, variable
	// message sizes, silent rounds, and data-dependent early termination.
	randomLoad := func(rounds int) Protocol {
		return func(rt congest.Runtime) {
			acc := uint64(rt.ID())
			for r := 0; r < rounds; r++ {
				out := make(map[graph.NodeID]congest.Msg)
				for _, v := range rt.Neighbors() {
					if rt.Rand().Intn(3) == 0 {
						continue // silent edge this round
					}
					m := make(congest.Msg, 1+rt.Rand().Intn(24))
					rt.Rand().Read(m)
					out[v] = m
				}
				in := rt.Exchange(out)
				for _, m := range in {
					acc ^= congest.U64(m) + uint64(len(m))
				}
				if acc%13 == 0 {
					break // early, data-dependent termination
				}
			}
			rt.SetOutput(acc)
		}
	}

	protoFams := []func(g *graph.Graph, r *rand.Rand) (string, Protocol){
		func(g *graph.Graph, r *rand.Rand) (string, Protocol) {
			rounds := g.Diameter() + 1 + r.Intn(3)
			return fmt.Sprintf("floodmax(%d)", rounds), algorithms.FloodMax(rounds)
		},
		func(g *graph.Graph, r *rand.Rand) (string, Protocol) {
			rounds := g.Diameter() + 1
			return fmt.Sprintf("broadcast(%d)", rounds), algorithms.Broadcast(0, r.Uint64()%1000, rounds)
		},
		func(g *graph.Graph, r *rand.Rand) (string, Protocol) {
			rounds := 3 + r.Intn(6)
			return fmt.Sprintf("randomload(%d)", rounds), randomLoad(rounds)
		},
	}

	// Each adversary family builds a FRESH instance per engine run (they are
	// stateful) from the same parameters, so both engines face an identical
	// opponent.
	advFams := []func(g *graph.Graph, f int, seed int64) (string, func() congest.Adversary){
		func(*graph.Graph, int, int64) (string, func() congest.Adversary) {
			return "none", func() congest.Adversary { return nil }
		},
		func(g *graph.Graph, f int, seed int64) (string, func() congest.Adversary) {
			return "eavesdrop", func() congest.Adversary { return adversary.NewMobileEavesdropper(g, f, seed) }
		},
		func(g *graph.Graph, f int, seed int64) (string, func() congest.Adversary) {
			return "flip", func() congest.Adversary {
				return adversary.NewMobileByzantine(g, f, seed, adversary.SelectRandom, adversary.CorruptFlip)
			}
		},
		func(g *graph.Graph, f int, seed int64) (string, func() congest.Adversary) {
			return "drop", func() congest.Adversary {
				return adversary.NewMobileByzantine(g, f, seed, adversary.SelectRandom, adversary.CorruptDrop)
			}
		},
		func(g *graph.Graph, f int, seed int64) (string, func() congest.Adversary) {
			return "swap-busiest", func() congest.Adversary {
				return adversary.NewMobileByzantine(g, f, seed, adversary.SelectBusiest, adversary.CorruptSwap)
			}
		},
		func(g *graph.Graph, f int, seed int64) (string, func() congest.Adversary) {
			return "inject-static", func() congest.Adversary {
				return adversary.NewStaticByzantine(g, f, seed, adversary.SelectRandom, adversary.CorruptInject)
			}
		},
		func(g *graph.Graph, f int, seed int64) (string, func() congest.Adversary) {
			return "error-rate", func() congest.Adversary {
				return adversary.NewRoundErrorRate(g, 3*f, []int{0, f, 1}, seed, adversary.SelectRandom, adversary.CorruptRandomize)
			}
		},
	}

	for trial := 0; trial < trials; trial++ {
		gname, g := graphFams[rng.Intn(len(graphFams))](rng)
		pname, proto := protoFams[rng.Intn(len(protoFams))](g, rng)
		f := 1 + rng.Intn(3)
		advSeed := rng.Int63()
		aname, mkAdv := advFams[rng.Intn(len(advFams))](g, f, advSeed)
		seed := rng.Int63()
		label := fmt.Sprintf("trial %d: %s/%s/%s f=%d seed=%d", trial, gname, pname, aname, f, seed)

		run := func(e Engine) (*Result, congest.Adversary, *TraceObserver, error) {
			adv := mkAdv()
			tr := NewTraceObserver()
			res, err := e.Run(congest.Config{
				Graph: g, Seed: seed, Adversary: adv, MaxRounds: 1 << 16,
				Observers: []congest.Observer{tr},
			}, proto)
			return res, adv, tr, err
		}
		want, wantAdv, wantTr, err1 := run(EngineGoroutine)
		got, gotAdv, gotTr, err2 := run(EngineStep)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("%s: errors differ: goroutine=%v step=%v", label, err1, err2)
		}
		if err1 != nil {
			if err1.Error() != err2.Error() {
				t.Fatalf("%s: error text differs: %q vs %q", label, err1, err2)
			}
			continue
		}
		if want.Stats != got.Stats {
			t.Fatalf("%s: stats differ:\n goroutine %+v\n step      %+v", label, want.Stats, got.Stats)
		}
		// Byte-identical outputs: compare the canonical rendering.
		wout := fmt.Sprintf("%#v", want.Outputs)
		gout := fmt.Sprintf("%#v", got.Outputs)
		if wout != gout {
			t.Fatalf("%s: outputs differ:\n goroutine %s\n step      %s", label, wout, gout)
		}
		// Observer-visible traces must be byte-identical: same rounds, same
		// canonical message order, same payloads, same corrupted edges.
		wtr, err := json.Marshal(wantTr.Rounds())
		if err != nil {
			t.Fatal(err)
		}
		gtr, err := json.Marshal(gotTr.Rounds())
		if err != nil {
			t.Fatal(err)
		}
		if string(wtr) != string(gtr) {
			t.Fatalf("%s: traces differ across engines:\n goroutine %s\n step      %s", label, wtr, gtr)
		}
		if len(wantTr.Rounds()) != want.Stats.Rounds {
			t.Fatalf("%s: trace has %d rounds, stats say %d", label, len(wantTr.Rounds()), want.Stats.Rounds)
		}
		// Eavesdroppers must have seen byte-identical transcripts.
		if we, ok := wantAdv.(*adversary.Eavesdropper); ok {
			ge := gotAdv.(*adversary.Eavesdropper)
			if string(we.ViewBytes()) != string(ge.ViewBytes()) {
				t.Fatalf("%s: eavesdropper views differ across engines", label)
			}
		}
	}
}
