package mobilecongest

import (
	"context"
	"fmt"
	"iter"
	"runtime"
	"strings"
	"sync"
	"time"

	"mobilecongest/internal/algorithms"
	"mobilecongest/internal/congest"
)

// The experiment Plan API: the primary way to describe a parameter study.
// A Plan holds an ordered list of Axes — each axis is one swept dimension
// (topology family, node count, protocol name, adversary, engine, a
// user-defined knob via VaryFunc) — and executes their cross product with
// deterministic per-cell seeds, either streamed as cells finish
// (Plan.Stream) or collected in grid order (Plan.Run). The legacy Grid/Sweep
// surface is a thin compat wrapper that lowers onto a Plan, the same way
// AdaptTraffic lowers map adversaries onto the slot boundary.
//
// Seeds are canonical in the cell's coordinates: every seed-relevant axis
// value contributes a "name=value" fragment, in axis order, to the cell's
// label, and CellSeed hashes that label with the base seed and repetition
// index. The engine axis is an execution detail and deliberately excluded,
// so the same simulation cell draws the same randomness on every engine;
// adding a new axis to a plan reshapes labels (and therefore seeds) only
// for plans that use it — a Grid lowered onto a Plan produces byte-identical
// records to the pre-Plan implementation.

// cellSpec is the typed accumulation of one cell's axis values.
type cellSpec struct {
	topoName     string
	topoN, topoK int
	protoName    string
	protoP       int
	advName      string
	advF         int
	engName      string
	bandwidth    int
	rep          int
	custom       []customSetting
}

type customSetting struct {
	apply func(*Scenario, string)
	value string
}

// axisValue is one point on an axis: an optional label fragment (feeding
// the cell seed when seed is set) plus the typed application to the spec.
type axisValue struct {
	part string
	seed bool
	set  func(*cellSpec)
}

// axisKind identifies the built-in dimension an axis configures, so plan
// validation can reason about structure (duplicate built-ins, the p-axis
// pairing rule) without trusting display names, which user VaryFunc axes
// are free to reuse.
type axisKind int

const (
	axisCustom axisKind = iota
	axisTopology
	axisN
	axisK
	axisProtocol
	axisProtocolParam
	axisAdversary
	axisF
	axisEngine
	axisBandwidth
	axisReps
)

// Axis is one dimension of a Plan: a named, ordered list of values. Build
// axes with the typed constructors (TopologyAxis, NAxis, ProtocolAxis, ...)
// or VaryFunc for user-defined dimensions.
type Axis struct {
	name   string
	kind   axisKind
	values []axisValue
	// check validates the axis's registry names up front, so a bad plan
	// fails before any cell is built.
	check func() error
}

// Name returns the axis's dimension name.
func (a Axis) Name() string { return a.name }

// Len returns the number of values on the axis.
func (a Axis) Len() int { return len(a.values) }

// TopologyAxis sweeps the topology family by registry name.
func TopologyAxis(names ...string) Axis {
	vals := make([]axisValue, len(names))
	for i, name := range names {
		vals[i] = axisValue{part: "topo=" + name, seed: true, set: func(c *cellSpec) { c.topoName = name }}
	}
	return Axis{name: "topology", kind: axisTopology, values: vals}
}

// NAxis sweeps the node count.
func NAxis(ns ...int) Axis {
	vals := make([]axisValue, len(ns))
	for i, n := range ns {
		vals[i] = axisValue{part: fmt.Sprintf("n=%d", n), seed: true, set: func(c *cellSpec) { c.topoN = n }}
	}
	return Axis{name: "n", kind: axisN, values: vals}
}

// KAxis sweeps the topology's secondary parameter (0 = family default).
func KAxis(ks ...int) Axis {
	vals := make([]axisValue, len(ks))
	for i, k := range ks {
		vals[i] = axisValue{part: fmt.Sprintf("k=%d", k), seed: true, set: func(c *cellSpec) { c.topoK = k }}
	}
	return Axis{name: "k", kind: axisK, values: vals}
}

// ProtocolAxis sweeps the workload by protocol registry name. Cells carry
// the name in Record.Protocol; plans without a protocol axis run the default
// workload (FloodMax over diameter+1 rounds) and keep their pre-protocol
// labels and seeds.
func ProtocolAxis(names ...string) Axis {
	vals := make([]axisValue, len(names))
	for i, name := range names {
		vals[i] = axisValue{part: "proto=" + name, seed: true, set: func(c *cellSpec) { c.protoName = name }}
	}
	return Axis{name: "protocol", kind: axisProtocol, values: vals, check: func() error {
		for _, name := range names {
			if !HasProtocol(name) {
				return fmt.Errorf("mobilecongest: unknown protocol %q (have %v)", name, Protocols())
			}
		}
		return nil
	}}
}

// ProtocolParamAxis sweeps the registered protocol's schedule parameter
// (rounds/radius/iterations; 0 = family default), carried in Record.P.
func ProtocolParamAxis(ps ...int) Axis {
	vals := make([]axisValue, len(ps))
	for i, p := range ps {
		vals[i] = axisValue{part: fmt.Sprintf("p=%d", p), seed: true, set: func(c *cellSpec) { c.protoP = p }}
	}
	return Axis{name: "p", kind: axisProtocolParam, values: vals}
}

// AdversaryAxis sweeps the adversary by registry name.
func AdversaryAxis(names ...string) Axis {
	vals := make([]axisValue, len(names))
	for i, name := range names {
		vals[i] = axisValue{part: "adv=" + name, seed: true, set: func(c *cellSpec) { c.advName = name }}
	}
	return Axis{name: "adversary", kind: axisAdversary, values: vals, check: func() error {
		for _, name := range names {
			if !HasAdversary(name) {
				return fmt.Errorf("mobilecongest: unknown adversary %q (have %v)", name, Adversaries())
			}
		}
		return nil
	}}
}

// FAxis sweeps the adversary's per-round strength.
func FAxis(fs ...int) Axis {
	vals := make([]axisValue, len(fs))
	for i, f := range fs {
		vals[i] = axisValue{part: fmt.Sprintf("f=%d", f), seed: true, set: func(c *cellSpec) { c.advF = f }}
	}
	return Axis{name: "f", kind: axisF, values: vals}
}

// EngineAxis sweeps the execution engine by registry name. The engine is an
// execution detail: it is part of the record and the cell name, but
// deliberately NOT of the seed derivation, so the same simulation cell gets
// the same randomness on every engine.
func EngineAxis(names ...string) Axis {
	vals := make([]axisValue, len(names))
	for i, name := range names {
		vals[i] = axisValue{part: "engine=" + name, set: func(c *cellSpec) { c.engName = name }}
	}
	return Axis{name: "engine", kind: axisEngine, values: vals, check: func() error {
		for _, name := range names {
			if _, err := NewEngine(name); err != nil {
				return err
			}
		}
		return nil
	}}
}

// BandwidthAxis sweeps the enforced per-edge-per-round bit budget
// (WithBandwidth); 0 means unlimited. Like the engine, the budget is an
// enforcement detail: it is part of the record and the cell name, but
// deliberately NOT of the seed derivation, so the same simulation cell sends
// the same traffic under every budget — the axis varies only which cells
// abort with a bandwidth violation.
func BandwidthAxis(bits ...int) Axis {
	vals := make([]axisValue, len(bits))
	for i, b := range bits {
		vals[i] = axisValue{part: fmt.Sprintf("bw=%d", b), set: func(c *cellSpec) { c.bandwidth = b }}
	}
	return Axis{name: "bandwidth", kind: axisBandwidth, values: vals}
}

// RepsAxis repeats every cell reps times with distinct derived seeds
// (values below 1 mean 1). The repetition index feeds CellSeed directly and
// appears as the trailing ",rep=N" of the record name regardless of the
// axis's position; the position only controls how reps interleave with the
// other axes in cell order.
func RepsAxis(reps int) Axis {
	if reps < 1 {
		reps = 1
	}
	vals := make([]axisValue, reps)
	for r := range vals {
		vals[r] = axisValue{set: func(c *cellSpec) { c.rep = r }}
	}
	return Axis{name: "reps", kind: axisReps, values: vals}
}

// VaryFunc declares a user-defined axis: for each value, apply is invoked
// with the cell's assembled Scenario and the value, after the built-in
// options are set — mutate the scenario by invoking ScenarioOptions on it,
// e.g.
//
//	VaryFunc("maxrounds", []string{"4", "8"}, func(s *Scenario, v string) {
//	    n, _ := strconv.Atoi(v)
//	    WithMaxRounds(n)(s)
//	})
//
// Each value contributes a canonical seed-relevant "name=value" label
// fragment, exactly like the built-in simulation axes.
func VaryFunc(name string, values []string, apply func(s *Scenario, value string)) Axis {
	vals := make([]axisValue, len(values))
	for i, v := range values {
		vals[i] = axisValue{part: name + "=" + v, seed: true, set: func(c *cellSpec) {
			// Copy-on-append: sibling branches of the expansion share the
			// prefix slice and must never alias one growing backing array.
			c.custom = append(append([]customSetting(nil), c.custom...), customSetting{apply: apply, value: v})
		}}
	}
	return Axis{name: name, kind: axisCustom, values: vals}
}

// Plan is an experiment description: the ordered cross product of its axes,
// one Scenario per cell. The zero value of every field is usable; a Plan
// with no axes describes a single default cell.
type Plan struct {
	// Axes are the swept dimensions, in label (and iteration) order: the
	// first axis varies slowest. Axes a plan omits take the registry
	// defaults (clique topology, n=16, k=0, fault-free, f=1, step engine,
	// one rep, default workload).
	Axes []Axis
	// BaseSeed feeds the per-cell seed derivation (CellSeed).
	BaseSeed int64
	// MaxRounds bounds each run (0 = engine default).
	MaxRounds int
	// Workers is the number of concurrent cell runners for Stream/Run
	// (0 = GOMAXPROCS). Each worker owns one reusable congest.RunContext.
	Workers int
	// CaptureTrace attaches a TraceObserver to every cell and stores the
	// captured rounds in the cell's Record.Trace. Traces hold full
	// payloads; budget accordingly on large plans.
	CaptureTrace bool
	// Observers, when non-nil, builds extra per-cell observers; it is
	// called once per cell with the cell's Record.Name. Cells run
	// concurrently, so anything the returned observers share (e.g. a
	// writer) must tolerate that — see NewJSONLTrace.
	Observers func(cellName string) []Observer
	// DefaultProtocol overrides the default workload built for cells
	// without a protocol axis (the Grid.Protocol compat hook). It is called
	// once per cell with the cell's resolved graph. Nil defaults to
	// flooding the maximum ID for diameter+1 rounds.
	DefaultProtocol func(g *Graph) Protocol
	// Cache, when non-nil, memoizes cell records content-addressed by the
	// cell's canonical name (plus MaxRounds and trace capture), derived
	// seed, engine, and the build's code version. Cached cells are resolved
	// at expansion — no graph, Scenario, or RunContext is touched — and
	// yielded through the normal worker pipeline, preserving Run's
	// deterministic order and Stream's cancellation semantics; freshly
	// computed error-free records are inserted. Cells whose behavior the
	// content address cannot identify — per-cell Observers, VaryFunc custom
	// axes, a DefaultProtocol closure — always run. One cache may back any
	// number of concurrent Plans; see NewResultCache / OpenResultCache.
	Cache *ResultCache
}

// planCell is one expanded plan point. A nil scenario marks a cell resolved
// from the cache at expansion: its record is already final and the workers
// just deliver it. cacheKey is non-empty when the freshly computed record
// should be inserted after the run.
type planCell struct {
	rec      Record
	scenario *Scenario
	trace    *TraceObserver // non-nil when the plan captures traces
	cache    *ResultCache
	cacheKey string
}

// topoCache shares one built graph (and its lazily-computed default
// workload length) across every cell of the same (topology, n, k).
type topoCache struct {
	g         *Graph
	defRounds int
}

func (tc *topoCache) defaultRounds() int {
	if tc.defRounds == 0 {
		tc.defRounds = tc.g.Diameter() + 1
	}
	return tc.defRounds
}

// cells expands the plan's cross product, validating every registry name up
// front and building each distinct topology once.
func (p Plan) cells() ([]planCell, error) {
	seen := map[axisKind]bool{}
	for _, ax := range p.Axes {
		if len(ax.values) == 0 {
			return nil, fmt.Errorf("mobilecongest: plan axis %q has no values", ax.name)
		}
		if ax.check != nil {
			if err := ax.check(); err != nil {
				return nil, err
			}
		}
		// Duplicate built-in axes would stack label fragments for one
		// dimension ("n=16,n=32") while only the innermost value applies;
		// custom axes may reuse names freely (kinds, not display names,
		// decide — a VaryFunc axis called "p" is its own dimension).
		if ax.kind != axisCustom {
			if seen[ax.kind] {
				return nil, fmt.Errorf("mobilecongest: duplicate %s axis", ax.name)
			}
			seen[ax.kind] = true
		}
	}
	// A p axis without a protocol axis would perturb every cell's seed while
	// changing nothing about the run — a fabricated effect. Fail loudly.
	// (Plans that set the protocol through VaryFunc should vary its
	// parameter the same way.)
	if seen[axisProtocolParam] && !seen[axisProtocol] {
		return nil, fmt.Errorf("mobilecongest: ProtocolParamAxis requires a ProtocolAxis (the parameter only reaches registry protocols)")
	}

	graphs := map[string]*topoCache{}
	var cells []planCell
	var simParts, allParts []string

	var expand func(axis int, spec cellSpec) error
	assemble := func(spec cellSpec) error {
		simLabel := strings.Join(simParts, ",")
		label := strings.Join(allParts, ",")
		seed := CellSeed(p.BaseSeed, simLabel, spec.rep)
		name := fmt.Sprintf("%s,rep=%d", label, spec.rep)

		// Cache consult comes first: a hit resolves the cell from its record
		// alone — no topology build, no Scenario, and later no RunContext.
		// Only cells whose behavior the content address fully identifies are
		// eligible: per-cell Observers watch rounds a replay never executes,
		// and VaryFunc/DefaultProtocol closures are code the label cannot
		// name. The cell name carries every axis fragment plus the rep;
		// MaxRounds and trace capture shape the record without appearing in
		// it, so they extend the key, and the engine (absent from default
		// cells' names) is its own key component.
		var cacheKey string
		if p.Cache != nil && p.Observers == nil && len(spec.custom) == 0 &&
			(spec.protoName != "" || p.DefaultProtocol == nil) {
			cacheKey = name
			if p.MaxRounds != 0 {
				cacheKey = fmt.Sprintf("%s,maxrounds=%d", cacheKey, p.MaxRounds)
			}
			if p.CaptureTrace {
				cacheKey += ",trace"
			}
			if rec, ok := p.Cache.get(cacheKey, seed, spec.engName); ok {
				cells = append(cells, planCell{rec: rec})
				return nil
			}
		}

		key := fmt.Sprintf("%s/%d/%d", spec.topoName, spec.topoN, spec.topoK)
		tc := graphs[key]
		if tc == nil {
			g, err := BuildTopology(spec.topoName, spec.topoN, spec.topoK)
			if err != nil {
				return err
			}
			tc = &topoCache{g: g}
			graphs[key] = tc
		}

		// Observers are per-run state, so every cell gets its own instances.
		var obs []Observer
		if p.Observers != nil {
			obs = p.Observers(name)
		}
		var tr *TraceObserver
		if p.CaptureTrace {
			tr = NewTraceObserver()
			obs = append(obs, tr)
		}

		opts := []ScenarioOption{
			WithName(label),
			WithGraph(tc.g),
		}
		switch {
		case spec.protoName != "":
			opts = append(opts, WithProtocolName(spec.protoName), WithProtocolParam(spec.protoP))
		case p.DefaultProtocol != nil:
			// Invoked once per cell, so closure-captured state is private to
			// that cell's run.
			opts = append(opts, WithProtocol(p.DefaultProtocol(tc.g)))
		default:
			opts = append(opts, WithProtocol(algorithms.FloodMax(tc.defaultRounds())))
		}
		opts = append(opts,
			WithAdversaryName(spec.advName, spec.advF),
			WithEngineName(spec.engName),
			WithBandwidth(spec.bandwidth),
			WithSeed(seed),
			WithMaxRounds(p.MaxRounds),
			WithObserver(obs...),
		)
		s := NewScenario(opts...)
		for _, cs := range spec.custom {
			cs.apply(s, cs.value)
		}
		cells = append(cells, planCell{
			rec: Record{
				Name:      name,
				Topology:  spec.topoName,
				N:         spec.topoN,
				K:         spec.topoK,
				Protocol:  s.protoName, // after custom applies: VaryFunc may retarget it
				P:         s.protoP,
				Adversary: spec.advName,
				F:         spec.advF,
				Engine:    spec.engName,
				Bandwidth: spec.bandwidth,
				Rep:       spec.rep,
				Seed:      seed,
			},
			scenario: s,
			trace:    tr,
			cache:    p.Cache,
			cacheKey: cacheKey,
		})
		return nil
	}
	expand = func(axis int, spec cellSpec) error {
		if axis == len(p.Axes) {
			return assemble(spec)
		}
		for _, v := range p.Axes[axis].values {
			sp := spec
			if v.set != nil {
				v.set(&sp)
			}
			nSim, nAll := len(simParts), len(allParts)
			if v.part != "" {
				allParts = append(allParts, v.part)
				if v.seed {
					simParts = append(simParts, v.part)
				}
			}
			err := expand(axis+1, sp)
			simParts, allParts = simParts[:nSim], allParts[:nAll]
			if err != nil {
				return err
			}
		}
		return nil
	}
	root := cellSpec{
		topoName: "clique", topoN: 16, topoK: 0,
		advName: "none", advF: 1,
		engName: EngineStep.Name(),
	}
	if err := expand(0, root); err != nil {
		return nil, err
	}
	return cells, nil
}

// runPlanCell executes one cell inside the worker's reusable run context and
// folds the outcome into its record; failures are recorded, never fatal.
// Cells resolved from the cache at expansion (nil scenario) are already
// final — their record keeps the elapsed time of the run that filled the
// cache, so a warm replay is byte-identical to the cold sweep it mirrors.
func runPlanCell(c *planCell, rc *congest.RunContext) {
	if c.scenario == nil {
		return
	}
	start := time.Now()
	res, err := c.scenario.runIn(rc)
	c.rec.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	if err != nil {
		c.rec.Error = err.Error()
		return
	}
	c.rec.Rounds = res.Stats.Rounds
	c.rec.Messages = res.Stats.Messages
	c.rec.Bytes = res.Stats.Bytes
	c.rec.MaxMsgBytes = res.Stats.MaxMsgBytes
	c.rec.MaxEdgeCongestion = res.Stats.MaxEdgeCongestion
	c.rec.CorruptedEdgeRounds = res.Stats.CorruptedEdgeRounds
	if c.trace != nil {
		c.rec.Trace = c.trace.Rounds()
	}
	if c.cache != nil && c.cacheKey != "" {
		c.cache.put(c.cacheKey, c.rec.Seed, c.rec.Engine, c.rec)
	}
}

// runCells fans the cells out across workers and calls deliver (from the
// caller's goroutine) with each cell index as it finishes. deliver returning
// false, or ctx cancellation, stops dispatching new cells; in-flight cells
// still complete (and, on cancellation, are still delivered) before runCells
// returns with every worker goroutine exited.
func runCells(ctx context.Context, workers int, cells []planCell, deliver func(int) bool) {
	if len(cells) == 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cells) {
		workers = len(cells)
	}
	stop := make(chan struct{})
	var stopOnce sync.Once
	halt := func() { stopOnce.Do(func() { close(stop) }) }

	jobs := make(chan int)
	go func() {
		defer close(jobs)
		for i := range cells {
			select {
			case jobs <- i:
			case <-stop:
				return
			case <-ctx.Done():
				return
			}
		}
	}()

	results := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One reusable run context per worker: consecutive cells on the
			// same topology share the run's layout, buffers, and RNG
			// allocations instead of rebuilding them per cell. Shard-engine
			// cells divide the machine across the P workers instead of each
			// grabbing GOMAXPROCS shards (an explicit ShardEngine.Shards
			// still overrides); Close releases any parked shard pool when
			// the worker retires.
			rc := congest.NewRunContext()
			defer rc.Close()
			rc.LimitShards(max(1, runtime.GOMAXPROCS(0)/workers))
			for i := range jobs {
				runPlanCell(&cells[i], rc)
				select {
				case results <- i:
				case <-stop:
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// On early exit (deliver returned false), release every blocked worker
	// and drain the pipeline so no goroutine leaks.
	defer func() {
		halt()
		for range results {
		}
	}()
	for i := range results {
		if !deliver(i) {
			return
		}
	}
}

// Stream expands the plan and yields one (Record, nil) per cell as cells
// finish — completion order, not grid order; run with Workers set to 1 for
// in-order streaming. Per-cell failures are carried in Record.Error. The
// sequence ends after the last cell, or, when ctx is cancelled mid-stream,
// after the in-flight cells: dispatching stops promptly, every worker exits,
// and the final yield is (Record{}, ctx.Err()). A plan configuration error
// (unknown registry name, unbuildable topology, empty axis) is yielded as
// the only element.
func (p Plan) Stream(ctx context.Context) iter.Seq2[Record, error] {
	return func(yield func(Record, error) bool) {
		cells, err := p.cells()
		if err != nil {
			yield(Record{}, err)
			return
		}
		stopped := false
		runCells(ctx, p.Workers, cells, func(i int) bool {
			if !yield(cells[i].rec, nil) {
				stopped = true
				return false
			}
			return true
		})
		if stopped {
			return
		}
		if err := ctx.Err(); err != nil {
			yield(Record{}, err)
		}
	}
}

// Run executes the plan and returns every cell's record in grid order —
// the deterministic cross-product order of the axes, regardless of worker
// count or scheduling. Per-cell failures are recorded, not fatal; the error
// reports plan configuration problems, or ctx cancellation. On cancellation
// the full record set is still returned: completed cells carry their
// results, and cells that never ran carry their coordinates with
// Record.Error set to the cancellation cause — so feeding the records to
// Summarize can never silently average empty stats into the aggregates.
func (p Plan) Run(ctx context.Context) ([]Record, error) {
	cells, err := p.cells()
	if err != nil {
		return nil, err
	}
	done := make([]bool, len(cells))
	runCells(ctx, p.Workers, cells, func(i int) bool { done[i] = true; return true })
	records := make([]Record, len(cells))
	for i := range cells {
		records[i] = cells[i].rec
		if !done[i] && records[i].Error == "" {
			records[i].Error = fmt.Sprintf("mobilecongest: cell not run: %v", context.Cause(ctx))
		}
	}
	return records, ctx.Err()
}
