package mobilecongest

// Map-based mirrors of the slot-native adversaries, replicating the pre-slot
// Traffic implementations line for line. They exist only for the slot-vs-map
// leg of TestEngineEquivalenceProperty: running them through the AdaptTraffic
// compat adapter must be byte-indistinguishable from the slot-native
// originals, which pins both the port of internal/adversary and the adapter
// semantics. They draw from their RNGs in exactly the same order as the
// slot-native code, so any divergence is a real behavioral difference, not
// randomness skew.

import (
	"math/rand"
	"sort"

	"mobilecongest/internal/adversary"
	"mobilecongest/internal/congest"
	"mobilecongest/internal/graph"
)

// mapEavesdropper mirrors the pre-slot Eavesdropper (mobile mode).
type mapEavesdropper struct {
	g    *graph.Graph
	f    int
	rng  *rand.Rand
	view []adversary.Observation
}

func (a *mapEavesdropper) PerRoundEdges() int { return a.f }

func (a *mapEavesdropper) Intercept(round int, tr congest.Traffic) congest.Traffic {
	for _, e := range mapRandomEdges(a.g, a.f, a.rng) {
		for _, de := range []graph.DirEdge{{From: e.U, To: e.V}, {From: e.V, To: e.U}} {
			if m, ok := tr[de]; ok {
				a.view = append(a.view, adversary.Observation{Round: round, Edge: de, Data: m.Clone()})
			}
		}
	}
	return tr
}

func (a *mapEavesdropper) viewBytes() []byte {
	obs := make([]adversary.Observation, len(a.view))
	copy(obs, a.view)
	sort.Slice(obs, func(i, j int) bool {
		if obs[i].Round != obs[j].Round {
			return obs[i].Round < obs[j].Round
		}
		if obs[i].Edge.From != obs[j].Edge.From {
			return obs[i].Edge.From < obs[j].Edge.From
		}
		return obs[i].Edge.To < obs[j].Edge.To
	})
	var out []byte
	for _, o := range obs {
		out = congest.PutU32(out, uint32(o.Round))
		out = congest.PutU32(out, uint32(o.Edge.From))
		out = congest.PutU32(out, uint32(o.Edge.To))
		out = append(out, o.Data...)
	}
	return out
}

// mapSelector is the pre-slot Selector signature.
type mapSelector func(rng *rand.Rand, round int, g *graph.Graph, tr congest.Traffic, f int) []graph.Edge

func mapSelectRandom(rng *rand.Rand, _ int, g *graph.Graph, _ congest.Traffic, f int) []graph.Edge {
	return mapRandomEdges(g, f, rng)
}

func mapSelectBusiest(_ *rand.Rand, _ int, _ *graph.Graph, tr congest.Traffic, f int) []graph.Edge {
	load := make(map[graph.Edge]int)
	for de, m := range tr {
		load[de.Undirected()] += len(m)
	}
	edges := make([]graph.Edge, 0, len(load))
	for e := range load {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		if load[edges[i]] != load[edges[j]] {
			return load[edges[i]] > load[edges[j]]
		}
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].V < edges[j].V
	})
	if len(edges) > f {
		edges = edges[:f]
	}
	return edges
}

func mapRandomEdges(g *graph.Graph, f int, rng *rand.Rand) []graph.Edge {
	edges := g.Edges()
	if f >= len(edges) {
		out := make([]graph.Edge, len(edges))
		copy(out, edges)
		return out
	}
	perm := rng.Perm(len(edges))[:f]
	out := make([]graph.Edge, f)
	for i, p := range perm {
		out[i] = edges[p]
	}
	return out
}

// mapByzantine mirrors the pre-slot Byzantine, including static and
// round-error-rate modes.
type mapByzantine struct {
	g           *graph.Graph
	f           int
	rng         *rand.Rand
	corrupt     adversary.Corruption
	sel         mapSelector
	staticMode  bool
	fixed       []graph.Edge
	totalBudget int
	spent       int
	burst       []int
}

func newMapByzantine(g *graph.Graph, f int, seed int64, sel mapSelector, cor adversary.Corruption) *mapByzantine {
	return &mapByzantine{g: g, f: f, rng: rand.New(rand.NewSource(seed)), corrupt: cor, sel: sel}
}

func (b *mapByzantine) PerRoundEdges() int {
	if b.totalBudget > 0 {
		m := 0
		for _, v := range b.burst {
			if v > m {
				m = v
			}
		}
		return m
	}
	return b.f
}

func (b *mapByzantine) TotalEdgeRounds() int {
	if b.totalBudget > 0 {
		return b.totalBudget
	}
	return 1 << 40
}

func (b *mapByzantine) Intercept(round int, tr congest.Traffic) congest.Traffic {
	budget := b.f
	if b.totalBudget > 0 {
		budget = b.burst[round%len(b.burst)]
		if rem := b.totalBudget - b.spent; budget > rem {
			budget = rem
		}
	}
	if budget <= 0 {
		return tr
	}
	var edges []graph.Edge
	if b.staticMode {
		if b.fixed == nil {
			b.fixed = b.sel(b.rng, round, b.g, tr, b.f)
		}
		edges = b.fixed
	} else {
		edges = b.sel(b.rng, round, b.g, tr, budget)
	}
	if len(edges) > budget {
		edges = edges[:budget]
	}
	out := tr.Clone()
	touched := 0
	for _, e := range edges {
		fwdKey := graph.DirEdge{From: e.U, To: e.V}
		bwdKey := graph.DirEdge{From: e.V, To: e.U}
		fwd, bwd := out[fwdKey], out[bwdKey]
		nf, nb := b.corrupt(b.rng, round, e, fwd, bwd)
		changed := false
		if !mapMsgEq(nf, fwd) {
			changed = true
			if nf == nil {
				delete(out, fwdKey)
			} else {
				out[fwdKey] = nf
			}
		}
		if !mapMsgEq(nb, bwd) {
			changed = true
			if nb == nil {
				delete(out, bwdKey)
			} else {
				out[bwdKey] = nb
			}
		}
		if changed {
			touched++
		}
	}
	b.spent += touched
	return out
}

func mapMsgEq(a, b congest.Msg) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
