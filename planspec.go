package mobilecongest

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// PlanSpec is the declarative JSON mirror of the Plan axis constructors —
// the wire format cmd/mobilesimd accepts and a checked-in experiment
// artifact for reproduction pipelines. Each list field becomes one axis of
// the built Plan, in the canonical label order (topology, n, k, protocol,
// p, adversary, f, engine, bandwidth, reps), so a spec names exactly the
// cells — and therefore exactly the seeds — that the equivalent
// `mobilesim -sweep` invocation does.
//
// Omitted (or empty) topology/n/k/adversary/f/engine lists take the
// registry defaults, matching the CLI's flag defaults; omitted protocols
// means the default FloodMax workload with no protocol axis, and omitted
// bandwidths means no bandwidth axis. Ps requires Protocols, exactly like
// ProtocolParamAxis requires a ProtocolAxis.
type PlanSpec struct {
	Topologies  []string `json:"topologies,omitempty"`
	Ns          []int    `json:"ns,omitempty"`
	Ks          []int    `json:"ks,omitempty"`
	Protocols   []string `json:"protocols,omitempty"`
	Ps          []int    `json:"ps,omitempty"`
	Adversaries []string `json:"adversaries,omitempty"`
	Fs          []int    `json:"fs,omitempty"`
	Engines     []string `json:"engines,omitempty"`
	Bandwidths  []int    `json:"bandwidths,omitempty"`
	Reps        int      `json:"reps,omitempty"`
	BaseSeed    int64    `json:"base_seed,omitempty"`
	MaxRounds   int      `json:"max_rounds,omitempty"`
	Workers     int      `json:"workers,omitempty"`
}

// ParsePlanSpec decodes a spec strictly: unknown fields, mistyped values,
// and trailing garbage are errors, never panics — the decoder fronts a
// network server. The parsed spec is also validated (Validate), so a
// returned spec always builds a structurally well-formed Plan.
func ParsePlanSpec(data []byte) (PlanSpec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var sp PlanSpec
	if err := dec.Decode(&sp); err != nil {
		return PlanSpec{}, fmt.Errorf("mobilecongest: bad plan spec: %w", err)
	}
	if dec.More() {
		return PlanSpec{}, errors.New("mobilecongest: bad plan spec: trailing data after the spec object")
	}
	if err := sp.Validate(); err != nil {
		return PlanSpec{}, err
	}
	return sp, nil
}

// Validate checks the spec's structure and registry names without building
// any topology: value ranges, the p-axis pairing rule, and every
// topology/protocol/adversary/engine name. It mirrors the axis-constructor
// checks in Plan.cells (a PlanSpec cannot express the duplicate-axis error
// — each dimension is one field), plus the eager name checks the lazy
// constructors defer to build time.
func (sp PlanSpec) Validate() error {
	for _, name := range sp.Topologies {
		if !HasTopology(name) {
			return fmt.Errorf("mobilecongest: plan spec: unknown topology %q (have %v)", name, Topologies())
		}
	}
	for _, name := range sp.Protocols {
		if !HasProtocol(name) {
			return fmt.Errorf("mobilecongest: plan spec: unknown protocol %q (have %v)", name, Protocols())
		}
	}
	for _, name := range sp.Adversaries {
		if !HasAdversary(name) {
			return fmt.Errorf("mobilecongest: plan spec: unknown adversary %q (have %v)", name, Adversaries())
		}
	}
	for _, name := range sp.Engines {
		if _, err := NewEngine(name); err != nil {
			return fmt.Errorf("mobilecongest: plan spec: %w", err)
		}
	}
	if len(sp.Ps) > 0 && len(sp.Protocols) == 0 {
		return errors.New("mobilecongest: plan spec: ps requires protocols (the parameter only reaches registry protocols)")
	}
	for _, n := range sp.Ns {
		if n < 1 {
			return fmt.Errorf("mobilecongest: plan spec: n must be >= 1, got %d", n)
		}
	}
	for _, fv := range []struct {
		field string
		vals  []int
	}{{"ks", sp.Ks}, {"ps", sp.Ps}, {"fs", sp.Fs}, {"bandwidths", sp.Bandwidths}} {
		for _, v := range fv.vals {
			if v < 0 {
				return fmt.Errorf("mobilecongest: plan spec: %s values must be >= 0, got %d", fv.field, v)
			}
		}
	}
	if sp.Reps < 0 {
		return fmt.Errorf("mobilecongest: plan spec: reps must be >= 0, got %d", sp.Reps)
	}
	if sp.MaxRounds < 0 {
		return fmt.Errorf("mobilecongest: plan spec: max_rounds must be >= 0, got %d", sp.MaxRounds)
	}
	if sp.Workers < 0 {
		return fmt.Errorf("mobilecongest: plan spec: workers must be >= 0, got %d", sp.Workers)
	}
	return nil
}

// Cells returns the number of cells the spec expands to — the product of
// its axis lengths after defaulting — without building anything. Servers
// use it for admission control before committing to a sweep.
func (sp PlanSpec) Cells() int {
	reps := sp.Reps
	if reps < 1 {
		reps = 1
	}
	cells := reps
	for _, n := range []int{
		len(defaulted(sp.Topologies, "")),
		len(defaulted(sp.Ns, 0)),
		len(defaulted(sp.Ks, 0)),
		len(defaulted(sp.Adversaries, "")),
		len(defaulted(sp.Fs, 0)),
		len(defaulted(sp.Engines, "")),
	} {
		cells *= n
	}
	if len(sp.Protocols) > 0 {
		cells *= len(sp.Protocols)
		if len(sp.Ps) > 0 {
			cells *= len(sp.Ps)
		}
	}
	if len(sp.Bandwidths) > 0 {
		cells *= len(sp.Bandwidths)
	}
	return cells
}

// Plan validates the spec and builds the equivalent Plan, axes in the
// canonical label order — the same lowering `mobilesim -sweep` applies to
// its flags, so spec and flags name identical cells, labels, and seeds.
// Cache and Observers are execution-side concerns the caller installs on
// the returned Plan.
func (sp PlanSpec) Plan() (Plan, error) {
	if err := sp.Validate(); err != nil {
		return Plan{}, err
	}
	axes := []Axis{
		TopologyAxis(defaulted(sp.Topologies, "clique")...),
		NAxis(defaulted(sp.Ns, 16)...),
		KAxis(defaulted(sp.Ks, 0)...),
	}
	if len(sp.Protocols) > 0 {
		axes = append(axes, ProtocolAxis(sp.Protocols...))
		if len(sp.Ps) > 0 {
			axes = append(axes, ProtocolParamAxis(sp.Ps...))
		}
	}
	axes = append(axes,
		AdversaryAxis(defaulted(sp.Adversaries, "none")...),
		FAxis(defaulted(sp.Fs, 1)...),
		EngineAxis(defaulted(sp.Engines, EngineStep.Name())...),
	)
	if len(sp.Bandwidths) > 0 {
		axes = append(axes, BandwidthAxis(sp.Bandwidths...))
	}
	axes = append(axes, RepsAxis(sp.Reps))
	return Plan{
		Axes:      axes,
		BaseSeed:  sp.BaseSeed,
		MaxRounds: sp.MaxRounds,
		Workers:   sp.Workers,
	}, nil
}

// ReadPlanSpec reads and parses one spec from r (an HTTP body, a checked-in
// spec file).
func ReadPlanSpec(r io.Reader) (PlanSpec, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return PlanSpec{}, fmt.Errorf("mobilecongest: reading plan spec: %w", err)
	}
	return ParsePlanSpec(data)
}
