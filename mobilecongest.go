// Package mobilecongest is a Go reproduction of "Distributed CONGEST
// Algorithms against Mobile Adversaries" (Fischer and Parter, PODC 2023,
// arXiv:2305.14300): a synchronous CONGEST simulator with mobile
// eavesdropper and byzantine adversaries, plus every compiler the paper
// constructs.
//
// The five headline results and where they live:
//
//   - Theorem 1.2 — static-to-mobile security compiler:
//     secure.StaticToMobile / secure.MobileParams.
//   - Theorem 1.3 — congestion-sensitive compiler with perfect mobile
//     security: secure.CompileCongestionSensitive.
//   - Theorem 1.5/1.6/1.7 — f-mobile byzantine compilers over tree packings
//     (general graphs, the congested clique, expanders):
//     resilient.Compile with resilient.CliqueShared /
//     resilient.GeneralShared / resilient.ExpanderShared.
//   - Theorem 4.1 — resilience to bounded round-error rate via
//     rewind-if-error: rewind.Compile.
//   - Theorems 1.4/5.5 — compilation from fault-tolerant cycle covers:
//     ccpath.Compile over cyclecover.Build.
//
// This root package is the simulator's single entry surface. A simulation is
// described by a Scenario built from functional options and executed on a
// pluggable Engine:
//
//	res, err := mobilecongest.NewScenario(
//		mobilecongest.WithTopology("clique", 16, 0),
//		mobilecongest.WithProtocol(proto),
//		mobilecongest.WithAdversaryName("flip", 2),
//		mobilecongest.WithSeed(7),
//	).Run()
//
// Two engines are registered: "goroutine" (one goroutine per node, channel
// barriers — the faithful processors-as-goroutines reading) and "step" (nodes
// resumed as coroutine step functions on one scheduler goroutine — the fast
// default). Both produce identical Results for identical scenarios.
//
// The simulation pipeline is slot-native end to end. Protocols program
// against PortRuntime (via Ports): a node's ports are its neighbours in
// ascending order, and ExchangePorts moves each round through reusable
// port-indexed []Msg buffers that alias the run's flat round buffers — a
// fault-free round allocates no maps at all, and the legacy map Exchange
// survives as a compat wrapper. The adversary boundary is likewise
// slot-native: an Adversary reads and corrupts each round through a
// RoundTraffic view over the run's flat edge layout, so adversarial rounds
// materialize no traffic maps; legacy map-based adversaries keep working
// behind AdaptTraffic. Repeated Run calls on one Scenario, and every Sweep
// worker, reuse a RunContext that amortizes the run's layout, buffers, and
// RNG state across runs.
//
// Parameter studies are experiment Plans: an ordered list of Axis values
// (topology, n, k, protocol, adversary, f, engine, reps, plus user-defined
// axes via VaryFunc) whose cross product runs with deterministic per-cell
// seeds, streamed as cells finish or collected in grid order, and
// aggregated over repetitions with Summarize:
//
//	plan := mobilecongest.Plan{Axes: []mobilecongest.Axis{
//		mobilecongest.TopologyAxis("clique", "circulant"),
//		mobilecongest.NAxis(16, 32, 64),
//		mobilecongest.ProtocolAxis("bfs", "secure-broadcast"),
//		mobilecongest.AdversaryAxis("none", "flip"),
//		mobilecongest.FAxis(2),
//		mobilecongest.RepsAxis(3),
//	}}
//	for rec, err := range plan.Stream(ctx) { ... }
//
// Topology, adversary, AND protocol families are name-keyed registries (see
// RegisterTopology / RegisterAdversary / RegisterProtocol) so new families
// plug into scenarios, plans, and the mobilesim CLI without touching this
// package; a registered ProtocolFunc may return a trusted preprocessing
// artifact, which is how the paper's compilers (secure-broadcast,
// hardened-clique) are registered next to their payloads. The legacy
// Sweep(Grid) surface survives as a compat wrapper lowering onto a Plan
// (byte-identical records), and the legacy Run(RunConfig, proto) form
// remains as a deprecated thin wrapper; the full low-level API lives in the
// internal packages listed above (importable inside this module).
package mobilecongest

import (
	"mobilecongest/internal/adversary"
	"mobilecongest/internal/congest"
	"mobilecongest/internal/graph"
	"mobilecongest/internal/resilient"
)

// Re-exported core types: the simulator surface downstream code programs
// against.
type (
	// Graph is the communication topology.
	Graph = graph.Graph
	// NodeID identifies a node.
	NodeID = graph.NodeID
	// Edge is an undirected edge.
	Edge = graph.Edge
	// Msg is a round message.
	Msg = congest.Msg
	// Protocol is per-node protocol code.
	Protocol = congest.Protocol
	// Runtime is the map-level interface protocol code sees.
	Runtime = congest.Runtime
	// PortRuntime is the port-indexed (slot-native) runtime protocol code
	// should program against on hot paths; obtain one with Ports.
	PortRuntime = congest.PortRuntime
	// RunConfig parameterizes a simulation run.
	RunConfig = congest.Config
	// Result is a run outcome.
	Result = congest.Result
	// Adversary intercepts round traffic through the slot-native
	// RoundTraffic view.
	Adversary = congest.Adversary
	// RoundTraffic is the slot-indexed view of one round's traffic handed
	// to adversaries.
	RoundTraffic = congest.RoundTraffic
	// TrafficAdversary is the legacy map-based adversary interface; install
	// one with AdaptTraffic.
	TrafficAdversary = congest.TrafficAdversary
	// RunContext is the reusable per-graph run state Scenario and Sweep
	// amortize across repeated runs.
	RunContext = congest.RunContext
)

// AdaptTraffic wraps a legacy map-based adversary for use anywhere an
// Adversary is expected (WithAdversary, RunConfig.Adversary, registries).
// The wrapped adversary keeps its exact map semantics at the price of one
// traffic-map materialization per round; see the README's "Writing a custom
// adversary" section for migrating to the slot-native interface.
func AdaptTraffic(a TrafficAdversary) Adversary { return congest.AdaptTraffic(a) }

// Ports returns rt's port-native interface: rt itself when it is already
// port-aware (both engines' runtimes and WrappedRuntime are), otherwise a
// map-backed compat shim. Port-native protocols exchange through reusable
// port-indexed []Msg buffers and allocate no per-round maps; see the
// README's "Writing a protocol" section.
func Ports(rt Runtime) PortRuntime { return congest.Ports(rt) }

// Run executes a protocol on a graph with the goroutine engine; see
// congest.Run.
//
// Deprecated: build a Scenario instead — NewScenario(WithGraph(cfg.Graph),
// WithProtocol(proto), ...).Run() — which adds engine selection and feeds
// directly into Sweep. Run is kept as a thin wrapper for existing call sites.
func Run(cfg RunConfig, proto Protocol) (*Result, error) { return congest.Run(cfg, proto) }

// NewClique returns the complete graph K_n.
func NewClique(n int) *Graph { return graph.Clique(n) }

// NewCirculant returns the 2k-edge-connected circulant graph C_n(1..k).
func NewCirculant(n, k int) *Graph { return graph.Circulant(n, k) }

// NewMobileEavesdropper listens on f fresh edges per round.
func NewMobileEavesdropper(g *Graph, f int, seed int64) *adversary.Eavesdropper {
	return adversary.NewMobileEavesdropper(g, f, seed)
}

// NewMobileByzantine corrupts f fresh random edges per round with random
// bit flips — the default attack model of the experiments.
func NewMobileByzantine(g *Graph, f int, seed int64) *adversary.Byzantine {
	return adversary.NewMobileByzantine(g, f, seed, adversary.SelectRandom, adversary.CorruptFlip)
}

// HardenClique compiles a congested-clique protocol against an f-mobile
// byzantine adversary (Theorem 1.6). Pass the returned shared artifact in
// RunConfig.Shared.
func HardenClique(payload Protocol, n, f int) (Protocol, *resilient.Shared) {
	sh := resilient.CliqueShared(n)
	return resilient.Compile(payload, resilient.Config{Mode: resilient.SparseMode, F: f}), sh
}

// HardenGeneral compiles a protocol for a (k, D_TP)-connected graph against
// an f-mobile byzantine adversary using a trusted greedy tree-packing
// preprocessing (Corollary 3.9).
func HardenGeneral(payload Protocol, g *Graph, f, trees, depthBound int) (Protocol, *resilient.Shared) {
	sh := resilient.GeneralShared(g, trees, depthBound)
	return resilient.Compile(payload, resilient.Config{Mode: resilient.SparseMode, F: f}), sh
}
