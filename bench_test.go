// Benchmarks regenerating every experiment table of EXPERIMENTS.md — one
// testing.B benchmark per table/figure. Each iteration runs the complete
// experiment (all its simulation runs) and fails the benchmark if the
// measured shape stops matching the paper's claim, so
// `go test -bench=. -benchmem` doubles as the reproduction gate.
// The benchmarks live in the external test package: internal/harness imports
// the root package for the Scenario API, so an in-package test file would
// create an import cycle.
package mobilecongest_test

import (
	"context"
	"fmt"
	"testing"

	mc "mobilecongest"

	"mobilecongest/internal/algorithms"
	"mobilecongest/internal/harness"
	"mobilecongest/internal/resilient"
)

// BenchmarkRun races the execution engines head-to-head on raw simulation
// throughput: FloodMax (every node talks to every neighbour every round) over
// clique, circulant, and expander topologies, fault-free and under mobile
// adversaries (byzantine flip and eavesdropper). This isolates engine and
// adversary-boundary overhead — channel handoffs, scheduler wakeups, and
// per-round traffic materialization — from experiment logic. The large
// adversarial cases (circulant1024-flip, expander512-eavesdrop) stress the
// slot-native adversary path at scale.
func BenchmarkRun(b *testing.B) {
	cases := []struct {
		name   string
		g      *mc.Graph
		rounds int
		adv    string
	}{
		{"clique32", mc.NewClique(32), 8, "none"},
		{"clique64", mc.NewClique(64), 8, "none"},
		{"circulant128", mc.NewCirculant(128, 2), 32, "none"},
		{"circulant256", mc.NewCirculant(256, 4), 16, "none"},
		{"circulant1024", mc.NewCirculant(1024, 4), 16, "none"},
		{"expander512", resilient.RandomExpander(512, 8, 11), 16, "none"},
		// The large-n fault-free tier is where the shard engine's
		// parallel-for earns its keep (and the others pay goroutine-per-node
		// or single-scheduler costs); modest round counts keep -benchtime=1x
		// smoke runs fast. It is also the tier most sensitive to per-message
		// heap traffic: moving round slots onto packed arena slabs (plus lazy
		// per-node RNG construction) cut warmed step-engine B/op here by
		// 66-92% vs the per-Msg-slice baseline (circulant16384 121MB ->
		// 12.4MB, circulant65536 485MB -> 166MB, expander8192 60MB -> 5.0MB;
		// see the BENCH_*.json snapshots).
		{"circulant16384", mc.NewCirculant(16384, 4), 8, "none"},
		{"circulant65536", mc.NewCirculant(65536, 4), 8, "none"},
		{"expander8192", resilient.RandomExpander(8192, 8, 11), 8, "none"},
		{"clique32-flip", mc.NewClique(32), 8, "flip"},
		{"clique64-flip", mc.NewClique(64), 8, "flip"},
		{"circulant128-flip", mc.NewCirculant(128, 2), 32, "flip"},
		{"circulant256-flip", mc.NewCirculant(256, 4), 16, "flip"},
		{"circulant1024-flip", mc.NewCirculant(1024, 4), 16, "flip"},
		{"expander512-eavesdrop", resilient.RandomExpander(512, 8, 11), 16, "eavesdrop"},
	}
	for _, engine := range mc.EngineNames() {
		for _, c := range cases {
			b.Run(fmt.Sprintf("%s/%s", engine, c.name), func(b *testing.B) {
				sc := mc.NewScenario(
					mc.WithGraph(c.g),
					mc.WithProtocol(algorithms.FloodMax(c.rounds)),
					mc.WithAdversaryName(c.adv, 2),
					mc.WithSeed(1),
					mc.WithEngineName(engine),
				)
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := sc.Run(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkProtocol exercises the protocol-registry axis on the heavier
// payload fleet: BFS on circulant256 (a long-diameter flood with per-port
// state) and Borůvka MST on clique64 (MSTClique is a congested-clique
// protocol, so its cell runs on the clique family — n*n-weight inputs,
// all-to-all announcements every round). Protocols are resolved by registry
// name, so this also pins the WithProtocolName build path's overhead.
func BenchmarkProtocol(b *testing.B) {
	cases := []struct {
		proto, topo string
		n, k        int
	}{
		{"bfs", "circulant", 256, 4},
		{"mstclique", "clique", 64, 0},
	}
	for _, engine := range mc.EngineNames() {
		for _, c := range cases {
			b.Run(fmt.Sprintf("%s/%s-%s%d", engine, c.proto, c.topo, c.n), func(b *testing.B) {
				sc := mc.NewScenario(
					mc.WithTopology(c.topo, c.n, c.k),
					mc.WithProtocolName(c.proto),
					mc.WithSeed(1),
					mc.WithEngineName(engine),
				)
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := sc.Run(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkPlanOverhead pins the per-cell scheduling cost of the sweep
// substrate: 64 tiny cells (clique4, 2-round floodmax) so the scenario
// runs are nearly free and the expansion + dispatch + record plumbing
// dominates. "plan" is the new primary path; "sweep" is the legacy Grid
// wrapper lowering onto it — the delta is the wrapper's own cost, and the
// absolute numbers guard the per-cell overhead of the sweep machinery.
func BenchmarkPlanOverhead(b *testing.B) {
	const cells = 64
	b.Run("plan", func(b *testing.B) {
		plan := mc.Plan{
			Axes: []mc.Axis{
				mc.TopologyAxis("clique"),
				mc.NAxis(4),
				mc.RepsAxis(cells),
			},
			BaseSeed: 1,
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			recs, err := plan.Run(context.Background())
			if err != nil {
				b.Fatal(err)
			}
			if len(recs) != cells {
				b.Fatalf("got %d records", len(recs))
			}
		}
	})
	b.Run("sweep", func(b *testing.B) {
		grid := mc.Grid{Topologies: []string{"clique"}, Ns: []int{4}, Reps: cells, BaseSeed: 1}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			recs, err := mc.Sweep(grid)
			if err != nil {
				b.Fatal(err)
			}
			if len(recs) != cells {
				b.Fatalf("got %d records", len(recs))
			}
		}
	})
}

// BenchmarkPlanCached measures the result cache on the BenchmarkPlanOverhead
// grid: "cold" runs every iteration against a fresh cache (full compute plus
// insertion), "warm" replays a prefilled one — cache consult at expansion,
// no graph, Scenario, or RunContext per cell. The warm leg is the headline:
// it must be at least an order of magnitude under cold.
func BenchmarkPlanCached(b *testing.B) {
	const cells = 64
	mkPlan := func(cache *mc.ResultCache) mc.Plan {
		return mc.Plan{
			Axes: []mc.Axis{
				mc.TopologyAxis("clique"),
				mc.NAxis(4),
				mc.RepsAxis(cells),
			},
			BaseSeed: 1,
			Cache:    cache,
		}
	}
	run := func(b *testing.B, plan mc.Plan) {
		recs, err := plan.Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if len(recs) != cells {
			b.Fatalf("got %d records", len(recs))
		}
	}
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			run(b, mkPlan(mc.NewResultCache(0)))
		}
	})
	b.Run("warm", func(b *testing.B) {
		cache := mc.NewResultCache(0)
		run(b, mkPlan(cache)) // prefill
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			run(b, mkPlan(cache))
		}
	})
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := harness.Get(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	for i := 0; i < b.N; i++ {
		tb, err := e.Run(int64(42 + i))
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if !tb.Pass {
			b.Fatalf("%s failed its claim:\n%s", id, tb.Render())
		}
	}
}

// BenchmarkT1StaticToMobile regenerates Table T1 (Theorem 1.2): the
// static-to-mobile security compiler's (r', f') trade-off.
func BenchmarkT1StaticToMobile(b *testing.B) { benchExperiment(b, "T1") }

// BenchmarkT2Extraction regenerates Table T2 (Theorem 2.1): the algebraic
// perfect-security certificate of the key extractor.
func BenchmarkT2Extraction(b *testing.B) { benchExperiment(b, "T2") }

// BenchmarkT3Unicast regenerates Table T3 (Lemma A.3): mobile-secure
// unicast rounds and congestion.
func BenchmarkT3Unicast(b *testing.B) { benchExperiment(b, "T3") }

// BenchmarkT4Broadcast regenerates Table T4 (Theorem A.4 variant):
// mobile-secure broadcast with the k > f*eta share margin.
func BenchmarkT4Broadcast(b *testing.B) { benchExperiment(b, "T4") }

// BenchmarkT5CongestionSensitive regenerates Table T5 (Theorem 1.3): the
// congestion-sensitive compiler with traffic hiding.
func BenchmarkT5CongestionSensitive(b *testing.B) { benchExperiment(b, "T5") }

// BenchmarkT6CycleCover regenerates Table T6 (Theorems 1.4/5.5): the FT
// cycle-cover compiler's exact round formula.
func BenchmarkT6CycleCover(b *testing.B) { benchExperiment(b, "T6") }

// BenchmarkT7TreePacking regenerates Table T7 (Lemma 3.10 / Theorem C.2):
// tree packing quality across graph families.
func BenchmarkT7TreePacking(b *testing.B) { benchExperiment(b, "T7") }

// BenchmarkT8Sketches regenerates Table T8 (Theorem 3.4): l0-sampling
// uniformity and sparse-recovery exactness.
func BenchmarkT8Sketches(b *testing.B) { benchExperiment(b, "T8") }

// BenchmarkT9ByzantineCompiler regenerates Table T9 (Theorem 3.5): the
// compiler matrix over payloads, topologies, and adversary strategies.
func BenchmarkT9ByzantineCompiler(b *testing.B) { benchExperiment(b, "T9") }

// BenchmarkT10DistributedPacking regenerates Table T10 (Appendix C /
// Corollary 3.9(ii)): the distributed packing preprocessing pipeline.
func BenchmarkT10DistributedPacking(b *testing.B) { benchExperiment(b, "T10") }

// BenchmarkT11Indistinguishability regenerates Table T11 (Theorem 1.2,
// statistical side): chi-square view comparison with a negative control.
func BenchmarkT11Indistinguishability(b *testing.B) { benchExperiment(b, "T11") }

// BenchmarkF1Clique regenerates Figure F1 (Theorem 1.6): clique compiler
// overhead versus n at f = n/4.
func BenchmarkF1Clique(b *testing.B) { benchExperiment(b, "F1") }

// BenchmarkF2Expander regenerates Figure F2 (Theorem 1.7): the end-to-end
// expander pipeline.
func BenchmarkF2Expander(b *testing.B) { benchExperiment(b, "F2") }

// BenchmarkF3MismatchDecay regenerates Figure F3 (Lemma 3.8): geometric
// decay of per-iteration corrections.
func BenchmarkF3MismatchDecay(b *testing.B) { benchExperiment(b, "F3") }

// BenchmarkF4Rewind regenerates Figure F4 (Theorem 4.1): transcript growth
// and rewinds under bursty round-error-rate adversaries.
func BenchmarkF4Rewind(b *testing.B) { benchExperiment(b, "F4") }

// BenchmarkF5RSThreshold regenerates Figure F5 (Theorem 3.2 contract): the
// RS-substitute's corruption threshold.
func BenchmarkF5RSThreshold(b *testing.B) { benchExperiment(b, "F5") }

// BenchmarkA1SketchAblation regenerates Table A1: sparse-recovery versus
// l0-sampling correction cost.
func BenchmarkA1SketchAblation(b *testing.B) { benchExperiment(b, "A1") }

// BenchmarkA2Repetition regenerates Table A2: the rsim repetition factor's
// reliability/cost trade.
func BenchmarkA2Repetition(b *testing.B) { benchExperiment(b, "A2") }

// BenchmarkA3RepScaling regenerates Table A3: compiler rounds scale linearly
// in the Rep knob with correctness at every setting.
func BenchmarkA3RepScaling(b *testing.B) { benchExperiment(b, "A3") }
