package mobilecongest

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"mobilecongest/internal/algorithms"
	"mobilecongest/internal/congest"
)

// The root-API surface of the bandwidth budget: WithBandwidth on scenarios,
// the BandwidthAxis on plans (labels, records, and seed invariance), and the
// violation error surfacing in sweep records.

// TestScenarioWithBandwidth: a generous budget passes, a binding one fails
// with congest.ErrBandwidthExceeded, and the default enforces nothing.
func TestScenarioWithBandwidth(t *testing.T) {
	base := []ScenarioOption{
		WithTopology("cycle", 8, 0),
		WithProtocol(algorithms.FloodMax(3)), // 64-bit payloads
		WithSeed(1),
	}
	if _, err := NewScenario(append(base, WithBandwidth(64))...).Run(); err != nil {
		t.Fatalf("at-budget scenario failed: %v", err)
	}
	if _, err := NewScenario(base...).Run(); err != nil {
		t.Fatalf("default (unlimited) scenario failed: %v", err)
	}
	_, err := NewScenario(append(base, WithBandwidth(32))...).Run()
	if !errors.Is(err, congest.ErrBandwidthExceeded) {
		t.Fatalf("binding budget: err = %v, want congest.ErrBandwidthExceeded", err)
	}
}

// TestPlanBandwidthAxis: the axis labels cells "bw=N" without perturbing
// seeds (budgets change enforcement, never the randomness), fills
// Record.Bandwidth, and carries violations as per-cell record errors rather
// than aborting the sweep.
func TestPlanBandwidthAxis(t *testing.T) {
	proto := func(g *Graph) Protocol { return algorithms.FloodMax(2) } // 64-bit payloads
	mk := func(axes ...Axis) []Record {
		t.Helper()
		recs, err := Plan{Axes: axes, BaseSeed: 42, DefaultProtocol: proto}.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return recs
	}
	base := []Axis{
		TopologyAxis("cycle"), NAxis(8), KAxis(0),
		AdversaryAxis("none"), FAxis(1), EngineAxis("step"),
	}
	const reps = 2
	plain := mk(append(base, RepsAxis(reps))...)
	budgets := []int{0, 64, 32}
	swept := mk(append(base, BandwidthAxis(budgets...), RepsAxis(reps))...)

	if len(swept) != len(budgets)*len(plain) {
		t.Fatalf("bandwidth sweep produced %d records, want %d", len(swept), len(budgets)*len(plain))
	}
	for i, r := range swept {
		bw := budgets[i/reps] // reps iterate innermost
		twin := plain[i%reps] // the same cell without the bandwidth axis
		if r.Bandwidth != bw {
			t.Fatalf("record %d: Bandwidth = %d, want %d (name %s)", i, r.Bandwidth, bw, r.Name)
		}
		if want := fmt.Sprintf("bw=%d", bw); !strings.Contains(r.Name, want) {
			t.Fatalf("record %d: name %q missing %q label", i, r.Name, want)
		}
		// Seed invariance: the budget must not perturb the cell's randomness.
		if r.Seed != twin.Seed {
			t.Fatalf("record %d: seed %d != unswept seed %d — bandwidth leaked into seeding",
				i, r.Seed, twin.Seed)
		}
		if bw == 32 { // 64-bit payloads violate a 32-bit budget
			if !strings.Contains(r.Error, "bandwidth exceeded") {
				t.Fatalf("record %d (bw=32): error %q, want a bandwidth violation", i, r.Error)
			}
			continue
		}
		if r.Error != "" {
			t.Fatalf("record %d (bw=%d): unexpected error %q", i, bw, r.Error)
		}
		if r.Rounds != twin.Rounds || r.Messages != twin.Messages || r.Bytes != twin.Bytes {
			t.Fatalf("record %d (bw=%d): stats diverge from the unswept cell", i, bw)
		}
	}
}
