package mobilecongest

import (
	"encoding/json"

	"mobilecongest/internal/resultcache"
)

// The result cache: every sweep cell is deterministic by construction —
// CellSeed hashes the canonical axis label, and the cross-engine suite pins
// byte-identical Records — so a cell that has ever been computed never needs
// computing again. A ResultCache memoizes Records content-addressed by
// (canonical cell label, derived seed, engine, code version); install one on
// Plan.Cache and repeated or overlapping sweeps collapse into lookups.
// cmd/mobilesimd shares one across all clients, and mobilesim -cache reuses
// one across CLI invocations through the disk tier.

// CacheStats is a point-in-time snapshot of a ResultCache's counters.
type CacheStats = resultcache.Stats

// recordCodec serializes Records for the cache's disk tier and byte
// accounting. Records round-trip JSON exactly (the equivalence tests pin
// it), so a cached replay is byte-identical to the run that filled it.
var recordCodec = resultcache.Codec[Record]{
	Encode: func(r Record) ([]byte, error) { return json.Marshal(r) },
	Decode: func(b []byte) (Record, error) {
		var r Record
		err := json.Unmarshal(b, &r)
		return r, err
	},
}

// ResultCache memoizes sweep-cell Records, content-addressed by the cell's
// canonical label, derived seed, engine, and the running build's code
// version — so results can never leak across code changes (see
// CacheVersion). It holds a bounded in-memory LRU tier and, when opened
// with OpenResultCache, an append-only JSONL disk tier that survives
// restarts. Records that carry an Error are never cached: failures are
// recomputed, never replayed. Safe for concurrent use; one process-wide
// instance can back any number of concurrent Plans.
type ResultCache struct {
	c *resultcache.Cache[Record]
}

// NewResultCache returns a memory-only cache. maxBytes bounds the resident
// set by encoded record size (<= 0 means unbounded), evicting
// least-recently-used cells first.
func NewResultCache(maxBytes int64) *ResultCache {
	return &ResultCache{c: resultcache.New(maxBytes, "", recordCodec)}
}

// OpenResultCache returns a cache whose entries also persist to an
// append-only JSONL file under dir (created if missing): entries written by
// the same code version are loaded on open — newest wins, torn tail lines
// from a crash are ignored — and every insertion is appended durably.
func OpenResultCache(maxBytes int64, dir string) (*ResultCache, error) {
	c, err := resultcache.Open(maxBytes, "", recordCodec, dir)
	if err != nil {
		return nil, err
	}
	return &ResultCache{c: c}, nil
}

// CacheVersion returns the code-version string caches key under by default:
// the VCS revision for clean stamped builds, otherwise a content hash of
// the running executable, so any code change rotates the version.
func CacheVersion() string { return resultcache.BuildVersion() }

// Version returns the version this cache currently keys under.
func (rc *ResultCache) Version() string { return rc.c.Version() }

// SetVersion re-pins the version key — entries stored under other versions
// become unreachable (and un-loadable from disk). Intended for tests and
// coordinated fleets; the build-derived default is right for everything
// else.
func (rc *ResultCache) SetVersion(v string) { rc.c.SetVersion(v) }

// Stats snapshots hit/miss/eviction counters and tier sizes.
func (rc *ResultCache) Stats() CacheStats { return rc.c.Stats() }

// Close releases the disk tier, if any; the memory tier stays usable.
func (rc *ResultCache) Close() error { return rc.c.Close() }

// get returns the cached record for one cell address.
func (rc *ResultCache) get(label string, seed int64, engine string) (Record, bool) {
	return rc.c.Get(resultcache.Key{Label: label, Seed: seed, Engine: engine})
}

// put inserts a freshly computed record. Error records are never cached —
// a failure (cancellation, bandwidth violation, config drift) must not
// shadow a future successful run.
func (rc *ResultCache) put(label string, seed int64, engine string, rec Record) {
	if rec.Error != "" {
		return
	}
	// Insertion is best-effort: a full budget or failing disk only costs
	// future recomputation, never correctness. Disk failures are surfaced
	// through Stats().DiskError.
	_ = rc.c.Put(resultcache.Key{Label: label, Seed: seed, Engine: engine}, rec)
}
