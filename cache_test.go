package mobilecongest_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"

	mc "mobilecongest"
	"mobilecongest/internal/algorithms"
)

// threeAxisPlan is the shared fixture for the cache equivalence tests: a
// 3-axis grid (topology × n × adversary) with reps, mixing engines via the
// default plus an explicit engine cell set elsewhere in the suite.
func threeAxisPlan(cache *mc.ResultCache) mc.Plan {
	return mc.Plan{
		Axes: []mc.Axis{
			mc.TopologyAxis("clique", "circulant"),
			mc.NAxis(8, 12),
			mc.AdversaryAxis("none", "flip"),
			mc.FAxis(2),
			mc.RepsAxis(2),
		},
		BaseSeed: 7,
		Workers:  1,
		Cache:    cache,
	}
}

// TestPlanCachedReplayByteIdentical is the core memoization contract: a warm
// run of a 3-axis plan against the cache a cold run filled replays the cold
// run byte for byte — records (including the original timings), Run order,
// and Summarize output — without touching a RunContext.
func TestPlanCachedReplayByteIdentical(t *testing.T) {
	cache := mc.NewResultCache(0)
	cold, err := threeAxisPlan(cache).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	s := cache.Stats()
	if s.Hits != 0 || s.Misses != uint64(len(cold)) || s.Entries != len(cold) {
		t.Fatalf("cold stats = %+v for %d cells", s, len(cold))
	}

	warm, err := threeAxisPlan(cache).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	coldJSON, _ := json.Marshal(cold)
	warmJSON, _ := json.Marshal(warm)
	if !bytes.Equal(coldJSON, warmJSON) {
		t.Fatalf("warm replay differs:\ncold: %s\nwarm: %s", coldJSON, warmJSON)
	}
	coldSum, _ := json.Marshal(mc.Summarize(cold))
	warmSum, _ := json.Marshal(mc.Summarize(warm))
	if !bytes.Equal(coldSum, warmSum) {
		t.Fatalf("summaries differ:\ncold: %s\nwarm: %s", coldSum, warmSum)
	}
	s = cache.Stats()
	if s.Hits != uint64(len(cold)) || s.Misses != uint64(len(cold)) {
		t.Fatalf("warm stats = %+v, want %d hits", s, len(cold))
	}
}

// TestPlanCacheVersionKeying: rotating the cache's code version invalidates
// every entry; rotating back restores them. A rebuilt binary must never
// serve records computed by different code.
func TestPlanCacheVersionKeying(t *testing.T) {
	cache := mc.NewResultCache(0)
	plan := mc.Plan{
		Axes:     []mc.Axis{mc.NAxis(8), mc.RepsAxis(4)},
		BaseSeed: 3,
		Workers:  1,
		Cache:    cache,
	}
	if _, err := plan.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	base := cache.Stats()
	if base.Misses != 4 {
		t.Fatalf("cold misses = %d", base.Misses)
	}

	cache.SetVersion("test-v2")
	if _, err := plan.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	s := cache.Stats()
	if s.Hits != 0 || s.Misses != 8 {
		t.Fatalf("post-rotation stats = %+v, want all misses", s)
	}

	cache.SetVersion(base.Version)
	if _, err := plan.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if s := cache.Stats(); s.Hits != 4 {
		t.Fatalf("rotating back should restore the v1 entries: %+v", s)
	}
}

// TestPlanCacheErrorRecordsBypass: cells that abort (a 1-bit bandwidth
// budget trips ErrBandwidthExceeded on the first flood round) are never
// inserted, so every run recomputes them — an error must not become sticky.
func TestPlanCacheErrorRecordsBypass(t *testing.T) {
	cache := mc.NewResultCache(0)
	plan := mc.Plan{
		Axes: []mc.Axis{
			mc.NAxis(8),
			mc.BandwidthAxis(1),
			mc.RepsAxis(2),
		},
		BaseSeed: 3,
		Workers:  1,
		Cache:    cache,
	}
	first, err := plan.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range first {
		if r.Error == "" {
			t.Fatalf("cell %s should have tripped the bandwidth budget", r.Name)
		}
	}
	second, err := plan.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i := range first {
		f, s := first[i], second[i]
		f.ElapsedMS, s.ElapsedMS = 0, 0 // recomputed, so timings differ
		fj, _ := json.Marshal(f)
		sj, _ := json.Marshal(s)
		if !bytes.Equal(fj, sj) {
			t.Fatalf("recomputed error record %d drifted:\n%s\n%s", i, fj, sj)
		}
	}
	s := cache.Stats()
	if s.Entries != 0 || s.Puts != 0 || s.Hits != 0 {
		t.Fatalf("error records leaked into the cache: %+v", s)
	}
}

// TestPlanCacheIneligibleCells: plans whose behavior the content address
// cannot name — per-cell Observers, a DefaultProtocol closure, VaryFunc
// custom axes — never consult or fill the cache.
func TestPlanCacheIneligibleCells(t *testing.T) {
	cases := map[string]func(*mc.Plan){
		"observers": func(p *mc.Plan) {
			p.Observers = func(string) []mc.Observer { return nil }
		},
		"default-protocol": func(p *mc.Plan) {
			p.DefaultProtocol = func(g *mc.Graph) mc.Protocol { return algorithms.FloodMax(2) }
		},
		"varyfunc": func(p *mc.Plan) {
			p.Axes = append(p.Axes, mc.VaryFunc("mode", []string{"a"}, func(*mc.Scenario, string) {}))
		},
	}
	for name, mutate := range cases {
		t.Run(name, func(t *testing.T) {
			cache := mc.NewResultCache(0)
			plan := mc.Plan{
				Axes:     []mc.Axis{mc.NAxis(6), mc.RepsAxis(2)},
				BaseSeed: 1,
				Workers:  1,
				Cache:    cache,
			}
			mutate(&plan)
			if _, err := plan.Run(context.Background()); err != nil {
				t.Fatal(err)
			}
			s := cache.Stats()
			if s.Hits+s.Misses+s.Puts != 0 || s.Entries != 0 {
				t.Fatalf("ineligible cells touched the cache: %+v", s)
			}
		})
	}
}

// TestPlanCacheKeyedByMaxRoundsAndTrace: MaxRounds and CaptureTrace change
// what a cell computes, so they fold into the content address — a truncated
// or traced run must never satisfy a full one.
func TestPlanCacheKeyedByMaxRoundsAndTrace(t *testing.T) {
	cache := mc.NewResultCache(0)
	base := mc.Plan{
		Axes:     []mc.Axis{mc.NAxis(8)},
		BaseSeed: 3,
		Workers:  1,
		Cache:    cache,
	}
	run := func(p mc.Plan) mc.Record {
		t.Helper()
		recs, err := p.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return recs[0]
	}
	full := run(base)

	// A 1-round cap aborts the 2-round flood with ErrRoundLimit: its own
	// key (a miss), and as an error record it is never inserted.
	tight := base
	tight.MaxRounds = 1
	if got := run(tight); !strings.Contains(got.Error, "round limit") {
		t.Fatalf("tight cap should abort: %+v", got)
	}
	// A generous cap completes identically to the uncapped run but still
	// lives under its own content address.
	loose := base
	loose.MaxRounds = 64
	if got := run(loose); got.Error != "" || got.Rounds != full.Rounds {
		t.Fatalf("loose cap drifted: %+v vs %+v", got, full)
	}
	traced := base
	traced.CaptureTrace = true
	if got := run(traced); got.Trace == nil {
		t.Fatal("traced run served an untraced cached record")
	}
	if s := cache.Stats(); s.Hits != 0 || s.Misses != 4 || s.Entries != 3 {
		t.Fatalf("variants collided in the cache: %+v", s)
	}
	// And each variant replays from its own entry.
	if got := run(base); got.Rounds != full.Rounds || got.Trace != nil {
		t.Fatalf("full run no longer cached cleanly: %+v", got)
	}
	if s := cache.Stats(); s.Hits != 1 {
		t.Fatalf("full-run replay missed: %+v", s)
	}
}

// TestPlanCacheConcurrentPlans: 8 goroutines run overlapping plans against
// one shared cache — the library-level race leg (the server test covers the
// HTTP path). Every run must return the same records a private cold run
// would, regardless of which goroutine populated which entry.
func TestPlanCacheConcurrentPlans(t *testing.T) {
	want, err := threeAxisPlan(nil).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	wantByName := make(map[string]string, len(want))
	for _, r := range want {
		r.ElapsedMS = 0
		j, _ := json.Marshal(r)
		wantByName[r.Name] = string(j)
	}

	cache := mc.NewResultCache(0)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			plan := threeAxisPlan(cache)
			if g%2 == 1 {
				// Half the goroutines sweep a sub-grid, so entries are
				// shared across differently-shaped plans.
				plan.Axes[0] = mc.TopologyAxis("clique")
			}
			plan.Workers = 2
			recs, err := plan.Run(context.Background())
			if err != nil {
				errs <- err
				return
			}
			for _, r := range recs {
				r.ElapsedMS = 0
				j, _ := json.Marshal(r)
				if wantJ, ok := wantByName[r.Name]; !ok || wantJ != string(j) {
					errs <- fmt.Errorf("goroutine %d: cell %s drifted: %s", g, r.Name, j)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if s := cache.Stats(); s.Entries != len(want) {
		t.Fatalf("cache holds %d entries, want %d: %+v", s.Entries, len(want), s)
	}
}
