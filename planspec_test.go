package mobilecongest_test

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	mc "mobilecongest"
)

// TestPlanSpecEquivalentToGrid pins the lowering: a spec without protocol or
// bandwidth axes names exactly the cells of the equivalent Grid sweep —
// byte-identical names, seeds, and record order (the same contract the Grid
// wrapper itself is pinned to).
func TestPlanSpecEquivalentToGrid(t *testing.T) {
	sp := mc.PlanSpec{
		Topologies:  []string{"clique", "circulant"},
		Ns:          []int{8, 16},
		Adversaries: []string{"none", "flip"},
		Fs:          []int{2},
		Reps:        2,
		BaseSeed:    7,
		Workers:     1,
	}
	plan, err := sp.Plan()
	if err != nil {
		t.Fatal(err)
	}
	got, err := plan.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want, err := mc.Sweep(mc.Grid{
		Topologies:  []string{"clique", "circulant"},
		Ns:          []int{8, 16},
		Adversaries: []string{"none", "flip"},
		Fs:          []int{2},
		Reps:        2,
		BaseSeed:    7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		g.ElapsedMS, w.ElapsedMS = 0, 0
		gj, _ := json.Marshal(g)
		wj, _ := json.Marshal(w)
		if !bytes.Equal(gj, wj) {
			t.Fatalf("record %d differs:\nspec: %s\ngrid: %s", i, gj, wj)
		}
	}
	if n := sp.Cells(); n != len(got) {
		t.Fatalf("Cells() = %d, ran %d", n, len(got))
	}
}

// TestPlanSpecValidation mirrors the axis-constructor error cases of plan.go
// at the decoder: every rejected spec errors with a diagnostic, never
// panics, and never reaches topology building. (The duplicate-axis error is
// unexpressible here — each dimension is one spec field — which is itself
// the point of the wire format.)
func TestPlanSpecValidation(t *testing.T) {
	cases := []struct {
		name string
		json string
		want string // substring of the error
	}{
		{"not-json", `hello`, "bad plan spec"},
		{"wrong-shape", `[1,2,3]`, "bad plan spec"},
		{"unknown-field", `{"topolojees":["clique"]}`, "unknown field"},
		{"mistyped-field", `{"ns":"16"}`, "bad plan spec"},
		{"trailing-data", `{"ns":[8]} {"ns":[9]}`, "trailing data"},
		{"unknown-topology", `{"topologies":["moebius"]}`, `unknown topology "moebius"`},
		{"unknown-protocol", `{"protocols":["gossip"]}`, `unknown protocol "gossip"`},
		{"unknown-adversary", `{"adversaries":["omniscient"]}`, `unknown adversary "omniscient"`},
		{"unknown-engine", `{"engines":["quantum"]}`, "unknown engine"},
		{"p-without-protocol", `{"ps":[4]}`, "ps requires protocols"},
		{"zero-n", `{"ns":[16,0]}`, "n must be >= 1"},
		{"negative-n", `{"ns":[-4]}`, "n must be >= 1"},
		{"negative-k", `{"ks":[-1]}`, "ks values must be >= 0"},
		{"negative-p", `{"protocols":["bfs"],"ps":[-2]}`, "ps values must be >= 0"},
		{"negative-f", `{"fs":[-1]}`, "fs values must be >= 0"},
		{"negative-bandwidth", `{"bandwidths":[-8]}`, "bandwidths values must be >= 0"},
		{"negative-reps", `{"reps":-1}`, "reps must be >= 0"},
		{"negative-maxrounds", `{"max_rounds":-1}`, "max_rounds must be >= 0"},
		{"negative-workers", `{"workers":-1}`, "workers must be >= 0"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := mc.ParsePlanSpec([]byte(c.json))
			if err == nil {
				t.Fatalf("spec %s accepted", c.json)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

// TestPlanSpecDefaults pins the defaulting contract: the empty spec is one
// default cell, and each omitted axis matches the CLI flag default.
func TestPlanSpecDefaults(t *testing.T) {
	sp, err := mc.ParsePlanSpec([]byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if n := sp.Cells(); n != 1 {
		t.Fatalf("empty spec expands to %d cells", n)
	}
	plan, err := sp.Plan()
	if err != nil {
		t.Fatal(err)
	}
	recs, err := plan.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("got %d records", len(recs))
	}
	r := recs[0]
	if r.Topology != "clique" || r.N != 16 || r.Adversary != "none" || r.F != 1 ||
		r.Engine != mc.EngineStep.Name() || r.Rep != 0 || r.Error != "" {
		t.Fatalf("default cell = %+v", r)
	}
}

// TestPlanSpecCells pins the expansion arithmetic against a protocol+p+
// bandwidth spec actually run.
func TestPlanSpecCells(t *testing.T) {
	sp := mc.PlanSpec{
		Ns:         []int{8, 12},
		Protocols:  []string{"floodmax", "broadcast"},
		Ps:         []int{2, 3, 4},
		Engines:    []string{"step", "goroutine"},
		Bandwidths: []int{0, 4096},
		Reps:       2,
	}
	want := 2 * 2 * 3 * 2 * 2 * 2
	if n := sp.Cells(); n != want {
		t.Fatalf("Cells() = %d, want %d", n, want)
	}
	plan, err := sp.Plan()
	if err != nil {
		t.Fatal(err)
	}
	recs, err := plan.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != want {
		t.Fatalf("ran %d cells, want %d", len(recs), want)
	}
}

// FuzzPlanSpecCodec fuzzes the wire decoder: any input either errors or
// yields a spec that (a) survives an encode→decode round-trip unchanged and
// (b) builds a Plan without panicking. Plan construction is axis assembly
// only — no topologies are built — so hostile sizes cannot allocate.
func FuzzPlanSpecCodec(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"topologies":["clique","circulant"],"ns":[8,16],"ks":[0],"reps":3,"base_seed":-9}`))
	f.Add([]byte(`{"protocols":["bfs"],"ps":[2,4],"adversaries":["flip"],"fs":[1,2],"engines":["step"]}`))
	f.Add([]byte(`{"bandwidths":[0,64],"max_rounds":12,"workers":4}`))
	f.Add([]byte(`{"ns":[0]}`))
	f.Add([]byte(`{"ps":[1]}`))
	f.Add([]byte(`{"topologies":["nope"]}`))
	f.Add([]byte(`[{"ns":[8]}]`))
	f.Add([]byte(`{"ns":[8]}trailing`))
	f.Fuzz(func(t *testing.T, data []byte) {
		sp, err := mc.ParsePlanSpec(data)
		if err != nil {
			return
		}
		enc, err := json.Marshal(sp)
		if err != nil {
			t.Fatalf("accepted spec does not re-encode: %v", err)
		}
		sp2, err := mc.ParsePlanSpec(enc)
		if err != nil {
			t.Fatalf("re-encoded spec %s rejected: %v", enc, err)
		}
		enc2, err := json.Marshal(sp2)
		if err != nil {
			t.Fatal(err)
		}
		// Compare through the encoding: empty and omitted lists are the same
		// spec on the wire.
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("round-trip drift: %s vs %s", enc, enc2)
		}
		if _, err := sp.Plan(); err != nil {
			t.Fatalf("validated spec %s failed to build: %v", enc, err)
		}
	})
}
