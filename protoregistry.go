package mobilecongest

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"mobilecongest/internal/algorithms"
	"mobilecongest/internal/congest"
	"mobilecongest/internal/resilient"
	"mobilecongest/internal/secure"
)

// The name-keyed protocol registry, symmetric to the topology and adversary
// registries: it makes the protocol axis expressible by string, so scenarios,
// experiment plans, and the mobilesim CLI can name a workload without writing
// Go. Built-in entries cover the fault-free payload fleet plus two compiled
// protocols — the registry's ProtocolFunc returns the trusted preprocessing
// artifact alongside the protocol, which is exactly what makes the paper's
// compilers registrable.

// ProtoParams parameterizes a registered protocol build. Every field has a
// usable zero value, so ProtoParams{} asks each family for its defaults.
type ProtoParams struct {
	// Rounds is the protocol's schedule parameter — rounds, radius, or
	// iterations, family-dependent (see the table in the README). 0 derives
	// the family default from the graph (usually diameter+1).
	Rounds int
	// Root is the distinguished node of the rooted protocols (broadcast,
	// bfs, sumtoroot, secure-broadcast, hardened-clique); the zero value
	// roots at node 0.
	Root NodeID
	// Seed drives the deterministic generation of protocol inputs and
	// values (mstclique edge weights, broadcast payloads, sumtoroot
	// inputs). Scenario passes its own seed (decorrelated by a fixed mix),
	// so a sweep's reps vary the generated inputs along with everything
	// else.
	Seed int64
	// F is the adversary strength the compiled entries (secure-broadcast,
	// hardened-clique) defend against; values below 1 are treated as 1.
	// Scenario passes the f of WithAdversaryName.
	F int
}

func (p ProtoParams) withDefaults() ProtoParams {
	if p.F < 1 {
		p.F = 1
	}
	return p
}

// ProtocolFunc builds a named protocol over g. The second return value is
// the protocol's trusted preprocessing artifact, distributed to all nodes
// via RunConfig.Shared (nil for protocols that need none) — returning it
// here is what lets compiled protocols live in the registry next to their
// payloads.
type ProtocolFunc func(g *Graph, p ProtoParams) (Protocol, any, error)

var (
	protoMu   sync.RWMutex
	protocols = map[string]ProtocolFunc{}
)

// RegisterProtocol adds (or replaces) a named protocol family.
func RegisterProtocol(name string, fn ProtocolFunc) {
	protoMu.Lock()
	defer protoMu.Unlock()
	protocols[name] = fn
}

// HasProtocol reports whether a protocol family is registered under name.
func HasProtocol(name string) bool {
	protoMu.RLock()
	defer protoMu.RUnlock()
	_, ok := protocols[name]
	return ok
}

// BuildProtocol instantiates a registered protocol over g, returning the
// protocol and its trusted preprocessing artifact (nil if it needs none).
func BuildProtocol(name string, g *Graph, p ProtoParams) (Protocol, any, error) {
	protoMu.RLock()
	fn, ok := protocols[name]
	protoMu.RUnlock()
	if !ok {
		return nil, nil, fmt.Errorf("mobilecongest: unknown protocol %q (have %v)", name, Protocols())
	}
	p = p.withDefaults()
	if p.Root < 0 || int(p.Root) >= g.N() {
		return nil, nil, fmt.Errorf("mobilecongest: protocol %s: root %d out of range [0, %d)", name, p.Root, g.N())
	}
	proto, shared, err := fn(g, p)
	if err != nil {
		return nil, nil, fmt.Errorf("mobilecongest: protocol %s: %w", name, err)
	}
	return proto, shared, nil
}

// Protocols lists the registered protocol names, sorted.
func Protocols() []string {
	protoMu.RLock()
	defer protoMu.RUnlock()
	names := make([]string, 0, len(protocols))
	for n := range protocols {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// protoRounds resolves the family-default schedule length: the requested
// value if positive, else diameter+1 — enough rounds for any flood to cover
// the graph. A disconnected graph has no flood schedule; erroring here beats
// the zero-round "success" the -1 sentinel would silently produce.
func protoRounds(g *Graph, r int) (int, error) {
	if r > 0 {
		return r, nil
	}
	d := g.Diameter()
	if d < 0 {
		return 0, fmt.Errorf("graph is disconnected; no default round count (set a parameter explicitly)")
	}
	return d + 1, nil
}

// protoEcc is protoRounds' rooted twin: the requested value if positive,
// else the root's eccentricity, erroring on disconnected graphs.
func protoEcc(g *Graph, r int, root NodeID) (int, error) {
	if r > 0 {
		return r, nil
	}
	e := g.Eccentricity(root)
	if e < 0 {
		return 0, fmt.Errorf("graph is disconnected; no default round count (set a parameter explicitly)")
	}
	return e, nil
}

// protoValue derives the canonical nonzero payload value of a seed (the
// broadcast protocols reserve 0 as "none").
func protoValue(seed int64) uint64 {
	return 1 + uint64(rand.New(rand.NewSource(seed)).Int63n(1_000_000))
}

func isClique(g *Graph) bool {
	for u := 0; u < g.N(); u++ {
		if g.Degree(NodeID(u)) != g.N()-1 {
			return false
		}
	}
	return true
}

func isRing(g *Graph) bool {
	if g.N() < 3 || !g.IsConnected() {
		return false
	}
	for u := 0; u < g.N(); u++ {
		if g.Degree(NodeID(u)) != 2 {
			return false
		}
	}
	return true
}

// protoInputs runs proto with every node's Input() overridden by the
// registry-generated canonical inputs, leaving the run Config untouched: a
// named protocol's inputs are part of the protocol, derived from
// ProtoParams.Seed, so WithInputs does not reach registry protocols that
// generate their own. The wrapper is transparent on the wire — exchanges
// pass straight through to the underlying port runtime — so traces and
// stats are identical to running the inner protocol with Config.Inputs.
func protoInputs(proto Protocol, inputs [][]byte) Protocol {
	return func(rt Runtime) {
		w := &congest.WrappedRuntime{Base: rt}
		w.ExchangePortsFn = congest.Ports(rt).ExchangePorts
		w.InputFn = func() []byte { return inputs[rt.ID()] }
		proto(w)
	}
}

func init() {
	RegisterProtocol("floodmax", func(g *Graph, p ProtoParams) (Protocol, any, error) {
		r, err := protoRounds(g, p.Rounds)
		if err != nil {
			return nil, nil, err
		}
		return algorithms.FloodMax(r), nil, nil
	})
	RegisterProtocol("broadcast", func(g *Graph, p ProtoParams) (Protocol, any, error) {
		r, err := protoRounds(g, p.Rounds)
		if err != nil {
			return nil, nil, err
		}
		return algorithms.Broadcast(p.Root, protoValue(p.Seed), r), nil, nil
	})
	RegisterProtocol("bfs", func(g *Graph, p ProtoParams) (Protocol, any, error) {
		r, err := protoEcc(g, p.Rounds, p.Root)
		if err != nil {
			return nil, nil, err
		}
		return algorithms.BFS(p.Root, r), nil, nil
	})
	RegisterProtocol("sumtoroot", func(g *Graph, p ProtoParams) (Protocol, any, error) {
		radius, err := protoEcc(g, p.Rounds, p.Root)
		if err != nil {
			return nil, nil, err
		}
		if radius < 1 {
			radius = 1
		}
		inputs, _ := algorithms.SumInputs(g.N(), p.Seed)
		return protoInputs(algorithms.SumToRoot(p.Root, radius), inputs), nil, nil
	})
	RegisterProtocol("tokenring", func(g *Graph, p ProtoParams) (Protocol, any, error) {
		for u := 0; u < g.N(); u++ {
			if g.Degree(NodeID(u)) == 0 {
				return nil, nil, fmt.Errorf("tokenring needs minimum degree 1; node %d is isolated", u)
			}
		}
		r := p.Rounds
		if r <= 0 {
			r = g.N()
		}
		return algorithms.TokenRing(r), nil, nil
	})
	RegisterProtocol("colorring", func(g *Graph, p ProtoParams) (Protocol, any, error) {
		if !isRing(g) {
			return nil, nil, fmt.Errorf("colorring needs a cycle topology (n >= 3, all degrees 2, connected)")
		}
		it := p.Rounds
		if it <= 0 {
			it = algorithms.ColorRingIterations(g.N())
		}
		return algorithms.ColorRing(it), nil, nil
	})
	RegisterProtocol("mstclique", func(g *Graph, p ProtoParams) (Protocol, any, error) {
		if !isClique(g) {
			return nil, nil, fmt.Errorf("mstclique runs in the congested clique; topology is not a clique")
		}
		return protoInputs(algorithms.MSTClique(), algorithms.CliqueWeights(g.N(), p.Seed)), nil, nil
	})
	// Compiled entries: the registry's shared-artifact return is what makes
	// these expressible. secure-broadcast is the Theorem 1.2 static-to-mobile
	// compiler over an input-driven broadcast; hardened-clique is the
	// Theorem 1.6 congested-clique byzantine compiler over a broadcast
	// payload, with its star-packing artifact.
	RegisterProtocol("secure-broadcast", func(g *Graph, p ProtoParams) (Protocol, any, error) {
		r, err := protoRounds(g, p.Rounds)
		if err != nil {
			return nil, nil, err
		}
		t := secure.SlackFor(r, p.F) // keeps f' = p.F per Theorem 1.2
		inputs := make([][]byte, g.N())
		inputs[p.Root] = congest.PutU64(nil, protoValue(p.Seed))
		proto := secure.StaticToMobile(algorithms.BroadcastInput(p.Root, r), r, t)
		return protoInputs(proto, inputs), nil, nil
	})
	RegisterProtocol("hardened-clique", func(g *Graph, p ProtoParams) (Protocol, any, error) {
		if !isClique(g) {
			return nil, nil, fmt.Errorf("hardened-clique runs in the congested clique; topology is not a clique")
		}
		r := p.Rounds
		if r <= 0 {
			r = 2 // diameter+1 on a clique
		}
		proto, sh := resilient.HardenedClique(algorithms.Broadcast(p.Root, protoValue(p.Seed), r), g.N(), p.F)
		return proto, sh, nil
	})
}
