package mobilecongest

import (
	"context"
	"fmt"
	"reflect"
	"runtime"
	"sort"
	"strconv"
	"testing"
	"time"
)

// TestSweepLoweringPinnedByteIdentical pins the Grid→Plan compat lowering
// against the pre-Plan implementation's exact cell vocabulary: record names
// keep the "topo=T,n=N,k=K,adv=A,f=F,engine=E,rep=R" shape, seeds are
// CellSeed over the engine-free prefix, order is the grid's nesting order,
// and a hand-built Plan with the same axes reproduces Sweep byte for byte.
func TestSweepLoweringPinnedByteIdentical(t *testing.T) {
	grid := Grid{
		Topologies:  []string{"clique", "cycle"},
		Ns:          []int{6, 8},
		Adversaries: []string{"none", "flip"},
		Fs:          []int{2},
		Engines:     []string{"step", "goroutine"},
		Reps:        2,
		BaseSeed:    77,
	}
	recs, err := Sweep(grid)
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	for _, topo := range grid.Topologies {
		for _, n := range grid.Ns {
			for _, adv := range grid.Adversaries {
				for _, f := range grid.Fs {
					for _, eng := range grid.Engines {
						for rep := 0; rep < grid.Reps; rep++ {
							simLabel := fmt.Sprintf("topo=%s,n=%d,k=0,adv=%s,f=%d", topo, n, adv, f)
							wantName := fmt.Sprintf("%s,engine=%s,rep=%d", simLabel, eng, rep)
							wantSeed := CellSeed(grid.BaseSeed, simLabel, rep)
							r := recs[i]
							if r.Name != wantName {
								t.Fatalf("record %d name = %q, want %q", i, r.Name, wantName)
							}
							if r.Seed != wantSeed {
								t.Fatalf("record %d (%s) seed = %d, want %d", i, r.Name, r.Seed, wantSeed)
							}
							if r.Protocol != "" || r.P != 0 {
								t.Fatalf("grid record %d carries protocol coordinates: %+v", i, r)
							}
							i++
						}
					}
				}
			}
		}
	}
	if i != len(recs) {
		t.Fatalf("expected %d records, got %d", i, len(recs))
	}

	// The hand-lowered Plan is the same experiment: byte-identical records.
	plan := Plan{
		Axes: []Axis{
			TopologyAxis(grid.Topologies...),
			NAxis(grid.Ns...),
			KAxis(0),
			AdversaryAxis(grid.Adversaries...),
			FAxis(grid.Fs...),
			EngineAxis(grid.Engines...),
			RepsAxis(grid.Reps),
		},
		BaseSeed: grid.BaseSeed,
	}
	precs, err := plan.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(precs) != len(recs) {
		t.Fatalf("plan produced %d records, sweep %d", len(precs), len(recs))
	}
	for i := range recs {
		a, b := recs[i], precs[i]
		a.ElapsedMS, b.ElapsedMS = 0, 0
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("plan and sweep diverge at record %d:\n sweep %+v\n plan  %+v", i, a, b)
		}
	}
}

func planForStreamTests(workers int) Plan {
	return Plan{
		Axes: []Axis{
			TopologyAxis("clique", "cycle"),
			NAxis(6, 8),
			ProtocolAxis("floodmax", "broadcast"),
			AdversaryAxis("none", "flip"),
			FAxis(1),
			RepsAxis(2),
		},
		BaseSeed: 9,
		Workers:  workers,
	}
}

// TestPlanStreamMatchesRun: Stream yields exactly Run's record set (order
// aside — Stream yields in completion order), for several worker counts.
func TestPlanStreamMatchesRun(t *testing.T) {
	want, err := planForStreamTests(0).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3, 8} {
		var got []Record
		for rec, err := range planForStreamTests(workers).Stream(context.Background()) {
			if err != nil {
				t.Fatalf("workers=%d: stream error: %v", workers, err)
			}
			got = append(got, rec)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: stream yielded %d records, run %d", workers, len(got), len(want))
		}
		sortRecs := func(rs []Record) []Record {
			out := append([]Record(nil), rs...)
			sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
			for i := range out {
				out[i].ElapsedMS = 0
			}
			return out
		}
		w, g := sortRecs(want), sortRecs(got)
		for i := range w {
			if !reflect.DeepEqual(w[i], g[i]) {
				t.Fatalf("workers=%d: stream and run record sets differ at %s:\n run    %+v\n stream %+v",
					workers, w[i].Name, w[i], g[i])
			}
		}
	}
}

// TestPlanRunOrderDeterministic: Run returns records in the axes' cross
// product order regardless of worker count.
func TestPlanRunOrderDeterministic(t *testing.T) {
	var names []string
	for _, workers := range []int{1, 2, 7} {
		recs, err := planForStreamTests(workers).Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		cur := make([]string, len(recs))
		for i, r := range recs {
			cur[i] = r.Name
		}
		if names == nil {
			names = cur
			continue
		}
		if !reflect.DeepEqual(names, cur) {
			t.Fatalf("record order changed with workers=%d:\n %v\n %v", workers, names, cur)
		}
	}
}

// TestPlanStreamCancellation: cancelling mid-stream ends the sequence
// promptly with ctx.Err() as the final element, and leaks no workers.
func TestPlanStreamCancellation(t *testing.T) {
	before := runtime.NumGoroutine()
	plan := Plan{
		Axes: []Axis{
			TopologyAxis("circulant"),
			NAxis(32),
			RepsAxis(500),
		},
		BaseSeed: 3,
		Workers:  4,
	}
	ctx, cancel := context.WithCancel(context.Background())
	var yielded int
	var finalErr error
	start := time.Now()
	for rec, err := range plan.Stream(ctx) {
		if err != nil {
			finalErr = err
			break
		}
		_ = rec
		yielded++
		if yielded == 3 {
			cancel()
		}
	}
	cancel()
	if finalErr != context.Canceled {
		t.Fatalf("stream ended with %v, want context.Canceled", finalErr)
	}
	if yielded >= 500 {
		t.Fatal("cancellation did not stop the stream")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancelled stream took %v to return", elapsed)
	}
	// Workers must all have exited; allow the runtime a moment to reap them.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("leaked goroutines: before=%d after=%d", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Run under a cancelled context returns the full record set with every
	// never-run cell explicitly marked failed, so downstream aggregation
	// (Summarize) can never mistake them for zero-stat successes.
	cancelledCtx, cancel2 := context.WithCancel(context.Background())
	cancel2()
	recs, err := plan.Run(cancelledCtx)
	if err != context.Canceled {
		t.Fatalf("cancelled Run returned err %v", err)
	}
	if len(recs) != 500 {
		t.Fatalf("cancelled Run returned %d records, want all 500", len(recs))
	}
	marked := 0
	for _, r := range recs {
		if r.Rounds == 0 && r.Error == "" {
			t.Fatalf("cancelled Run left an unrun cell looking successful: %+v", r)
		}
		if r.Error != "" {
			marked++
		}
	}
	if marked == 0 {
		t.Fatal("cancelled Run marked no cells as not run")
	}

	// Breaking out of the stream early (no cancellation) must not leak
	// either.
	for rec, err := range plan.Stream(context.Background()) {
		_, _ = rec, err
		break
	}
	for {
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline.Add(5 * time.Second)) {
			t.Fatalf("early break leaked goroutines: before=%d after=%d", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestPlanProtocolAxis: the protocol axis runs registry protocols by name,
// stamps Record.Protocol/P, and extends the seed label canonically — cells
// differing only in protocol draw different seeds, while a plan without the
// axis keeps the engine-free grid labels.
func TestPlanProtocolAxis(t *testing.T) {
	plan := Plan{
		Axes: []Axis{
			TopologyAxis("circulant"),
			NAxis(10),
			KAxis(2),
			ProtocolAxis("floodmax", "bfs"),
			AdversaryAxis("none"),
			FAxis(1),
			RepsAxis(1),
		},
		BaseSeed: 21,
	}
	recs, err := plan.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	for i, wantProto := range []string{"floodmax", "bfs"} {
		r := recs[i]
		if r.Error != "" {
			t.Fatalf("cell %s failed: %s", r.Name, r.Error)
		}
		if r.Protocol != wantProto {
			t.Fatalf("record %d protocol = %q, want %q", i, r.Protocol, wantProto)
		}
		simLabel := fmt.Sprintf("topo=circulant,n=10,k=2,proto=%s,adv=none,f=1", wantProto)
		if want := CellSeed(21, simLabel, 0); r.Seed != want {
			t.Fatalf("record %d seed = %d, want CellSeed over %q = %d", i, r.Seed, simLabel, want)
		}
	}
	if recs[0].Seed == recs[1].Seed {
		t.Fatal("protocol axis did not extend the seed derivation")
	}
}

// TestPlanVaryFuncAxis: user-defined axes apply their setting per cell and
// contribute canonical seed-relevant label fragments.
func TestPlanVaryFuncAxis(t *testing.T) {
	plan := Plan{
		Axes: []Axis{
			TopologyAxis("cycle"),
			NAxis(10),
			VaryFunc("maxrounds", []string{"2", "4"}, func(s *Scenario, v string) {
				n, err := strconv.Atoi(v)
				if err != nil {
					t.Fatal(err)
				}
				WithMaxRounds(n)(s)
			}),
		},
		BaseSeed: 2,
	}
	recs, err := plan.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	// FloodMax on cycle(10) wants diameter+1 = 6 rounds; the axis caps the
	// run, so the engine aborts with its round-limit error at 2 and 4.
	for i, wantRounds := range []int{2, 4} {
		r := recs[i]
		wantPart := fmt.Sprintf("maxrounds=%d", wantRounds)
		simLabel := fmt.Sprintf("topo=cycle,n=10,%s", wantPart)
		if want := CellSeed(2, simLabel, 0); r.Seed != want {
			t.Fatalf("record %d seed = %d, want CellSeed over %q = %d", i, r.Seed, simLabel, want)
		}
		if r.Error == "" {
			t.Fatalf("record %d: expected the capped run to surface the round-limit error, got none", i)
		}
	}
	if recs[0].Seed == recs[1].Seed {
		t.Fatal("custom axis did not extend the seed derivation")
	}
}

func TestPlanEmptyAxisRejected(t *testing.T) {
	if _, err := (Plan{Axes: []Axis{TopologyAxis()}}).Run(context.Background()); err == nil {
		t.Fatal("empty axis accepted")
	}
	if _, err := (Plan{Axes: []Axis{ProtocolAxis("nosuch")}}).Run(context.Background()); err == nil {
		t.Fatal("unknown protocol name accepted")
	}
	// A p axis without a protocol axis would perturb seeds without changing
	// the runs — rejected up front.
	if _, err := (Plan{Axes: []Axis{ProtocolParamAxis(4, 8)}}).Run(context.Background()); err == nil {
		t.Fatal("ProtocolParamAxis without ProtocolAxis accepted")
	}
	if _, err := (Plan{Axes: []Axis{ProtocolAxis("floodmax"), ProtocolParamAxis(4)}}).Run(context.Background()); err != nil {
		t.Fatalf("p axis with protocol axis rejected: %v", err)
	}
	// The pairing rule is keyed on axis kind, not display name: a VaryFunc
	// axis that happens to be called "protocol" does not satisfy it, and one
	// called "p" is not subject to it.
	if _, err := (Plan{Axes: []Axis{
		VaryFunc("protocol", []string{"x"}, func(*Scenario, string) {}),
		ProtocolParamAxis(4),
	}}).Run(context.Background()); err == nil {
		t.Fatal("VaryFunc named \"protocol\" satisfied the ProtocolParamAxis pairing rule")
	}
	if _, err := (Plan{Axes: []Axis{
		TopologyAxis("clique"),
		VaryFunc("p", []string{"x"}, func(*Scenario, string) {}),
	}}).Run(context.Background()); err != nil {
		t.Fatalf("VaryFunc named \"p\" wrongly subjected to the pairing rule: %v", err)
	}
	// Duplicate built-in axes are rejected; duplicate custom names are fine
	// (each VaryFunc is its own dimension).
	if _, err := (Plan{Axes: []Axis{NAxis(8), NAxis(16)}}).Run(context.Background()); err == nil {
		t.Fatal("duplicate built-in axis accepted")
	}
	// A configuration error surfaces as the stream's only element.
	n := 0
	for _, err := range (Plan{Axes: []Axis{AdversaryAxis("nosuch")}}).Stream(context.Background()) {
		n++
		if err == nil {
			t.Fatal("stream yielded a record for a misconfigured plan")
		}
	}
	if n != 1 {
		t.Fatalf("misconfigured stream yielded %d elements, want 1", n)
	}
}

func TestSummarize(t *testing.T) {
	plan := Plan{
		Axes: []Axis{
			TopologyAxis("clique", "cycle"),
			NAxis(8),
			AdversaryAxis("flip"),
			FAxis(1),
			RepsAxis(3),
		},
		BaseSeed: 13,
	}
	recs, err := plan.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sums := Summarize(recs)
	if len(sums) != 2 {
		t.Fatalf("got %d summaries, want 2 (one per topology)", len(sums))
	}
	for _, s := range sums {
		if s.Reps != 3 || s.Errors != 0 {
			t.Fatalf("summary %s: reps=%d errors=%d, want 3/0", s.Name, s.Reps, s.Errors)
		}
		if s.Rounds.Min > s.Rounds.Mean || s.Rounds.Mean > s.Rounds.Max {
			t.Fatalf("summary %s: inconsistent rounds aggregate %+v", s.Name, s.Rounds)
		}
		if s.Messages.Mean <= 0 {
			t.Fatalf("summary %s: empty messages aggregate", s.Name)
		}
	}
	// Aggregation is exact: recompute one group's mean by hand.
	var rounds []float64
	for _, r := range recs {
		if r.Topology == "clique" {
			rounds = append(rounds, float64(r.Rounds))
		}
	}
	var mean float64
	for _, v := range rounds {
		mean += v
	}
	mean /= float64(len(rounds))
	if sums[0].Topology != "clique" || sums[0].Rounds.Mean != mean {
		t.Fatalf("summary mean %v != hand-computed %v", sums[0].Rounds.Mean, mean)
	}

	// Failed reps are counted, not aggregated.
	fail := recs[0]
	fail.Error = "boom"
	fail.Rounds = 1 << 20
	sums = Summarize([]Record{fail, recs[1], recs[2]})
	if sums[0].Errors != 1 || sums[0].Reps != 2 {
		t.Fatalf("error accounting: %+v", sums[0])
	}
	if sums[0].Rounds.Max == float64(1<<20) {
		t.Fatal("failed record leaked into the aggregates")
	}
}
