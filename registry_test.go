package mobilecongest

import (
	"reflect"
	"sort"
	"testing"
)

// TestRegistryListingsSortedAndDeterministic locks the listing contract the
// CLI's -list output builds on: every name listing is sorted and repeated
// calls return identical slices — map-iteration order must never leak.
func TestRegistryListingsSortedAndDeterministic(t *testing.T) {
	listings := map[string]func() []string{
		"engines":     EngineNames,
		"topologies":  Topologies,
		"adversaries": Adversaries,
	}
	for name, list := range listings {
		got := list()
		if len(got) == 0 {
			t.Errorf("%s listing is empty", name)
		}
		if !sort.StringsAreSorted(got) {
			t.Errorf("%s listing not sorted: %v", name, got)
		}
		if again := list(); !reflect.DeepEqual(got, again) {
			t.Errorf("%s listing not deterministic: %v vs %v", name, got, again)
		}
	}
}
