package mobilecongest

import (
	"math"
	"strings"
)

// Aggregate is one metric's distribution over a cell's repetitions.
type Aggregate struct {
	Mean   float64 `json:"mean"`
	Stddev float64 `json:"stddev"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
}

// Summary aggregates the repetitions of one plan cell: records sharing every
// cell coordinate except the repetition index (and its derived seed) are
// grouped, and each simulation metric is reduced to mean/stddev/min/max.
// Stddev is the population standard deviation over the successful reps.
type Summary struct {
	// Name is the cell label: the record name with its ",rep=N" suffix
	// stripped.
	Name      string `json:"name"`
	Topology  string `json:"topology"`
	N         int    `json:"n"`
	K         int    `json:"k"`
	Protocol  string `json:"protocol,omitempty"`
	P         int    `json:"p,omitempty"`
	Adversary string `json:"adversary"`
	F         int    `json:"f"`
	Engine    string `json:"engine"`
	// Reps is the number of successful repetitions aggregated; Errors
	// counts failed ones (excluded from the aggregates).
	Reps   int `json:"reps"`
	Errors int `json:"errors,omitempty"`

	Rounds              Aggregate `json:"rounds"`
	Messages            Aggregate `json:"messages"`
	Bytes               Aggregate `json:"bytes"`
	MaxMsgBytes         Aggregate `json:"max_msg_bytes"`
	MaxEdgeCongestion   Aggregate `json:"max_edge_congestion"`
	CorruptedEdgeRounds Aggregate `json:"corrupted_edge_rounds"`
	ElapsedMS           Aggregate `json:"elapsed_ms"`
}

// cellKey strips the repetition suffix off a record name, so reps of one
// cell share a grouping key even under custom axes the typed fields cannot
// see.
func cellKey(name string) string {
	if i := strings.LastIndex(name, ",rep="); i >= 0 {
		return name[:i]
	}
	return name
}

// summaryAcc accumulates one cell group before reduction.
type summaryAcc struct {
	s       *Summary
	metrics [7][]float64
}

// Summarize groups records by cell coordinates (everything but the
// repetition index) and reduces each group's metrics over its reps, in
// first-seen record order. It is the aggregation half of a Plan with a
// RepsAxis: run the plan, then Summarize the records.
func Summarize(recs []Record) []Summary {
	groups := map[string]*summaryAcc{}
	var order []string
	for _, r := range recs {
		key := cellKey(r.Name)
		acc := groups[key]
		if acc == nil {
			acc = &summaryAcc{s: &Summary{
				Name:     key,
				Topology: r.Topology, N: r.N, K: r.K,
				Protocol: r.Protocol, P: r.P,
				Adversary: r.Adversary, F: r.F,
				Engine: r.Engine,
			}}
			groups[key] = acc
			order = append(order, key)
		}
		if r.Error != "" {
			acc.s.Errors++
			continue
		}
		acc.s.Reps++
		for i, v := range [7]float64{
			float64(r.Rounds), float64(r.Messages), float64(r.Bytes),
			float64(r.MaxMsgBytes), float64(r.MaxEdgeCongestion),
			float64(r.CorruptedEdgeRounds), r.ElapsedMS,
		} {
			acc.metrics[i] = append(acc.metrics[i], v)
		}
	}
	out := make([]Summary, 0, len(order))
	for _, key := range order {
		acc := groups[key]
		dst := [7]*Aggregate{
			&acc.s.Rounds, &acc.s.Messages, &acc.s.Bytes,
			&acc.s.MaxMsgBytes, &acc.s.MaxEdgeCongestion,
			&acc.s.CorruptedEdgeRounds, &acc.s.ElapsedMS,
		}
		for i, vals := range acc.metrics {
			*dst[i] = aggregate(vals)
		}
		out = append(out, *acc.s)
	}
	return out
}

func aggregate(vals []float64) Aggregate {
	if len(vals) == 0 {
		return Aggregate{}
	}
	a := Aggregate{Min: vals[0], Max: vals[0]}
	for _, v := range vals {
		a.Mean += v
		a.Min = math.Min(a.Min, v)
		a.Max = math.Max(a.Max, v)
	}
	a.Mean /= float64(len(vals))
	var ss float64
	for _, v := range vals {
		d := v - a.Mean
		ss += d * d
	}
	a.Stddev = math.Sqrt(ss / float64(len(vals)))
	return a
}
