// secureaggregate runs a sensor-style aggregation under the
// congestion-sensitive compiler of Theorem 1.3: nodes hold private 2-byte
// readings and flood the maximum; a mobile eavesdropper watches f fresh
// edges every round but sees only uniform ciphertext — it cannot even tell
// which edges carried real messages (traffic-pattern hiding).
package main

import (
	"fmt"
	"os"

	mc "mobilecongest"

	"mobilecongest/internal/adversary"
	"mobilecongest/internal/congest"
	"mobilecongest/internal/graph"
	"mobilecongest/internal/secure"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "secureaggregate:", err)
		os.Exit(1)
	}
}

// maxFlood floods the maximum 2-byte reading for r rounds, sending only
// when the local maximum improves — a low-congestion payload, exactly what
// Theorem 1.3 optimizes for. Written against the port-native runtime: the
// outbox is the runtime's reusable port buffer and one message is shared
// across all ports.
func maxFlood(r int) congest.Protocol {
	return func(rt congest.Runtime) {
		pr := congest.Ports(rt)
		reading := uint16(congest.U64(rt.Input()))
		best := reading
		improved := true
		for i := 0; i < r; i++ {
			out := pr.OutBuf()
			if improved {
				m := congest.Msg{byte(best >> 8), byte(best)}
				for p := range out {
					out[p] = m
				}
			}
			in := pr.ExchangePorts(out)
			improved = false
			for _, m := range in {
				if len(m) == 2 {
					v := uint16(m[0])<<8 | uint16(m[1])
					if v > best {
						best = v
						improved = true
					}
				}
			}
		}
		rt.SetOutput(best)
	}
}

func run() error {
	g := graph.Circulant(12, 2)
	r := g.Diameter() + 1
	root := graph.NodeID(11)
	sh := secure.NewBroadcastShared(g, root, 4, 6)

	inputs := make([][]byte, g.N())
	want := uint16(0)
	for i := range inputs {
		v := uint16(1000 + 137*i%4096)
		if v > want {
			want = v
		}
		inputs[i] = congest.PutU64(nil, uint64(v))
	}
	fmt.Printf("readings on %d nodes; true max %d\n", g.N(), want)

	eve := adversary.NewMobileEavesdropper(g, 2, 17)
	res, err := mc.NewScenario(
		mc.WithGraph(g),
		mc.WithSeed(17),
		mc.WithInputs(inputs),
		mc.WithShared(sh),
		mc.WithAdversary(eve),
		mc.WithProtocol(secure.CompileCongestionSensitive(maxFlood(r), secure.CSConfig{R: r, F: 2, Cong: r})),
	).Run()
	if err != nil {
		return err
	}
	for i, o := range res.Outputs {
		if o.(uint16) != want {
			return fmt.Errorf("node %d aggregated %v, want %d", i, o, want)
		}
	}
	fmt.Printf("compiled aggregation: %d rounds, all nodes got %d\n", res.Stats.Rounds, want)
	fmt.Printf("eavesdropper observed %d ciphertexts; every edge carried equal-size traffic each round,\n", len(eve.View()))
	fmt.Println("so neither contents nor the traffic pattern leaked (Theorem 1.3's perfect security)")
	return nil
}
