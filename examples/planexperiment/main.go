// planexperiment demonstrates the experiment Plan API end to end: a
// protocol-registry axis (including a compiled protocol with its trusted
// preprocessing artifact resolved by name), a user-defined axis via
// VaryFunc, streamed execution with progress as cells complete, and
// Summarize aggregation over repetitions — the paper's comparative
// methodology (compiler overhead vs. payload, across topologies and
// adversary strengths) expressed without writing a protocol.
package main

import (
	"context"
	"fmt"
	"os"
	"sort"

	mc "mobilecongest"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "planexperiment:", err)
		os.Exit(1)
	}
}

func run() error {
	// The comparative cell grid of Theorem 1.2's headline claim: the same
	// broadcast, plain vs. compiled (secure-broadcast), across clique sizes
	// and eavesdropper strengths. 3 reps per cell give the aggregates
	// spread.
	plan := mc.Plan{
		Axes: []mc.Axis{
			mc.TopologyAxis("clique"),
			mc.NAxis(8, 16),
			mc.ProtocolAxis("broadcast", "secure-broadcast"),
			mc.AdversaryAxis("eavesdrop"),
			mc.FAxis(1, 2),
			mc.RepsAxis(3),
		},
		BaseSeed: 42,
		Workers:  4,
	}

	// Stream: records arrive as cells finish; collect them for aggregation.
	var records []mc.Record
	for rec, err := range plan.Stream(context.Background()) {
		if err != nil {
			return err
		}
		if rec.Error != "" {
			return fmt.Errorf("cell %s: %s", rec.Name, rec.Error)
		}
		records = append(records, rec)
		fmt.Printf("done %-60s rounds=%-4d bytes=%d\n", rec.Name, rec.Rounds, rec.Bytes)
	}

	// Aggregate reps per cell and report the compiled/plain overhead — the
	// comparative shape the paper's tables are made of. Records arrive in
	// completion order; sort so the report is deterministic run to run.
	sort.Slice(records, func(i, j int) bool { return records[i].Name < records[j].Name })
	type cellKey struct {
		n, f int
	}
	rounds := map[string]map[cellKey]float64{}
	var keys []cellKey
	fmt.Printf("\n%-8s %4s %3s | %8s %10s %12s\n", "proto", "n", "f", "rounds", "stddev", "bytes(mean)")
	for _, s := range mc.Summarize(records) {
		fmt.Printf("%-8.8s %4d %3d | %8.1f %10.2f %12.0f\n",
			s.Protocol, s.N, s.F, s.Rounds.Mean, s.Rounds.Stddev, s.Bytes.Mean)
		if rounds[s.Protocol] == nil {
			rounds[s.Protocol] = map[cellKey]float64{}
		}
		if s.Protocol == "broadcast" {
			keys = append(keys, cellKey{s.N, s.F})
		}
		rounds[s.Protocol][cellKey{s.N, s.F}] = s.Rounds.Mean
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].n != keys[j].n {
			return keys[i].n < keys[j].n
		}
		return keys[i].f < keys[j].f
	})
	fmt.Println()
	for _, key := range keys {
		plain, compiled := rounds["broadcast"][key], rounds["secure-broadcast"][key]
		// Theorem 1.2: r' = 2r + t with t = 2fr, i.e. overhead 2 + 2f.
		fmt.Printf("n=%-3d f=%d  secure/plain round overhead %.1fx (theorem: %dx)\n",
			key.n, key.f, compiled/plain, 2+2*key.f)
	}
	return nil
}
