// expanderbfs demonstrates Theorem 1.7 end-to-end on a random regular
// expander: the weak tree packing is computed *by the distributed protocol
// of Lemma 3.10 while the byzantine adversary is attacking*, then a BFS
// payload runs compiled on top of it — no trusted preprocessing anywhere.
package main

import (
	"fmt"
	"os"

	mc "mobilecongest"

	"mobilecongest/internal/adversary"
	"mobilecongest/internal/algorithms"
	"mobilecongest/internal/resilient"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "expanderbfs:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		n = 40
		d = 20 // min degree Omega~(1/phi^2)
		k = 4  // colours = trees
		f = 1
	)
	g := resilient.RandomExpander(n, d, 11)
	phi := g.Conductance()
	fmt.Printf("expander: n=%d, %d-regular, conductance(sweep-est) %.3f, diameter %d\n", n, d, phi, g.Diameter())

	// Phase 1: compute the weak packing under attack (padded rounds).
	adv := adversary.NewMobileByzantine(g, f, 3, adversary.SelectRandom, adversary.CorruptFlip)
	sh, packRounds, err := resilient.ExpanderShared(g, k, 12, 7, 3, adv)
	if err != nil {
		return err
	}
	stats := sh.Packing.Validate(g, 12)
	fmt.Printf("weak packing computed under attack in %d rounds: %d/%d good trees, load %d\n",
		packRounds, stats.GoodTrees, k, stats.Load)

	// Phase 2: compiled BFS under a fresh mobile adversary.
	root := int32(0)
	adv2 := adversary.NewMobileByzantine(g, f, 5, adversary.SelectRandom, adversary.CorruptRandomize)
	res, err := mc.NewScenario(
		mc.WithGraph(g),
		mc.WithSeed(5),
		mc.WithShared(sh),
		mc.WithAdversary(adv2),
		mc.WithMaxRounds(1<<23),
		mc.WithProtocol(resilient.Compile(algorithms.BFS(0, g.Eccentricity(0)), resilient.Config{Mode: resilient.SparseMode, F: f, Rep: 5})),
	).Run()
	if err != nil {
		return err
	}
	wantDist, _ := g.BFS(0)
	for i, o := range res.Outputs {
		r := o.(algorithms.BFSResult)
		if r.Dist != wantDist[i] {
			return fmt.Errorf("node %d BFS distance %d, want %d", i, r.Dist, wantDist[i])
		}
	}
	fmt.Printf("compiled BFS from node %d: %d rounds, every distance matches the centralized BFS\n", root, res.Stats.Rounds)
	return nil
}
