// cliquemst runs Borůvka MST in the CONGESTED CLIQUE while a mobile
// byzantine adversary corrupts Theta(n) edges every round — the flagship
// application of Theorem 1.6. The adversary here uses the "busiest edge"
// strategy, which concentrates corruption on the compiler's own control
// traffic.
package main

import (
	"fmt"
	"os"

	mc "mobilecongest"

	"mobilecongest/internal/adversary"
	"mobilecongest/internal/algorithms"
	"mobilecongest/internal/graph"
	"mobilecongest/internal/resilient"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cliquemst:", err)
		os.Exit(1)
	}
}

func run() error {
	const n = 16
	f := n / 4 // Theta(n) mobile corruption
	g := graph.Clique(n)
	inputs := algorithms.CliqueWeights(n, 2026)
	want := algorithms.ReferenceMSTWeight(inputs)
	fmt.Printf("clique n=%d, f=%d mobile byzantine edges per round\n", n, f)
	fmt.Printf("true MST weight (centralized Kruskal): %d\n", want)

	// Fault-free baseline.
	base := []mc.ScenarioOption{mc.WithGraph(g), mc.WithSeed(7), mc.WithInputs(inputs)}
	clean, err := mc.NewScenario(append(base, mc.WithProtocol(algorithms.MSTClique()))...).Run()
	if err != nil {
		return err
	}
	fmt.Printf("fault-free Borůvka: %d rounds, output %d\n", clean.Stats.Rounds, clean.Outputs[0])

	// Unprotected run under attack: expect garbage.
	adv := adversary.NewMobileByzantine(g, f, 9, adversary.SelectBusiest, adversary.CorruptFlip)
	broken, err := mc.NewScenario(append(base,
		mc.WithAdversary(adv), mc.WithProtocol(algorithms.MSTClique()))...).Run()
	if err != nil {
		return err
	}
	wrong := 0
	for _, o := range broken.Outputs {
		if o.(uint64) != want {
			wrong++
		}
	}
	fmt.Printf("unprotected under attack: %d/%d nodes computed a wrong MST\n", wrong, n)

	// Compiled run: the Theorem 1.6 compiler over the star packing.
	sh := resilient.CliqueShared(n)
	adv2 := adversary.NewMobileByzantine(g, f, 9, adversary.SelectBusiest, adversary.CorruptFlip)
	res, err := mc.NewScenario(append(base,
		mc.WithAdversary(adv2), mc.WithShared(sh), mc.WithMaxRounds(1<<23),
		mc.WithProtocol(resilient.Compile(algorithms.MSTClique(), resilient.Config{Mode: resilient.SparseMode, F: f, Rep: 5})),
	)...).Run()
	if err != nil {
		return err
	}
	for i, o := range res.Outputs {
		if o.(uint64) != want {
			return fmt.Errorf("node %d computed %v, want %d", i, o, want)
		}
	}
	fmt.Printf("compiled under attack: %d rounds (%.0fx overhead), %d edge-rounds corrupted, all %d nodes correct\n",
		res.Stats.Rounds, float64(res.Stats.Rounds)/float64(clean.Stats.Rounds), res.Stats.CorruptedEdgeRounds, n)
	return nil
}
