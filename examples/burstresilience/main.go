// burstresilience demonstrates Theorem 4.1: resilience to a bounded
// round-error *rate*, where the adversary stays quiet for long stretches and
// then owns several edges outright for hundreds of consecutive rounds with
// consistent (swap) corruption — far beyond any fixed per-round budget. The
// rewind-if-error compiler holds its transcripts through the storm and
// finishes the simulation correctly within its 5R global rounds.
package main

import (
	"fmt"
	"os"

	mc "mobilecongest"

	"mobilecongest/internal/adversary"
	"mobilecongest/internal/algorithms"
	"mobilecongest/internal/graph"
	"mobilecongest/internal/rewind"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "burstresilience:", err)
		os.Exit(1)
	}
}

func run() error {
	const n = 10
	g := graph.Clique(n)
	sh := rewind.CliqueShared(n)
	r := 3 // payload rounds

	// Storm: silence, then 4 owned edges with consistent corruption for 300
	// consecutive physical rounds (covering ~2 of the compiler's global
	// rounds), then silence again.
	storm := make([]int, 2500)
	for i := 0; i < 300; i++ {
		storm[i+200] = 4
	}
	owned := []graph.Edge{
		graph.NewEdge(0, 1), graph.NewEdge(2, 3), graph.NewEdge(4, 5), graph.NewEdge(6, 7),
	}
	adv := adversary.NewRoundErrorRate(g, 1300, storm, 21, adversary.SelectFixed(owned), adversary.CorruptSwap)

	res, err := mc.NewScenario(
		mc.WithGraph(g),
		mc.WithSeed(21),
		mc.WithShared(sh),
		mc.WithAdversary(adv),
		mc.WithMaxRounds(1<<24),
		mc.WithProtocol(rewind.Compile(algorithms.FloodMax(r), rewind.Config{R: r, F: 1, Rep: 5})),
	).Run()
	if err != nil {
		return err
	}

	fmt.Printf("clique n=%d, storm: 4 owned edges x 300 rounds (%d edge-rounds corrupted)\n",
		n, res.Stats.CorruptedEdgeRounds)
	for i, o := range res.Outputs {
		out := o.(rewind.Output)
		if out.Payload.(uint64) != uint64(n-1) {
			return fmt.Errorf("node %d finished with %v", i, out.Payload)
		}
		if i == 0 {
			fmt.Printf("node 0 transcript lengths per global round: %v (rewinds: %d)\n",
				out.Trace.Lens, out.Trace.Rewinds)
		}
	}
	fmt.Printf("all %d nodes computed the correct result through the storm in %d rounds\n", n, res.Stats.Rounds)
	fmt.Println("(the flat stretch in the transcript trace is the storm: progress holds, then resumes)")
	return nil
}
