// Quickstart: compile a plain broadcast against a mobile eavesdropper with
// the Theorem 1.2 static-to-mobile compiler, and against a mobile byzantine
// adversary with the Theorem 1.6 clique compiler — the two headline
// workflows in one file.
package main

import (
	"fmt"
	"os"

	"mobilecongest"

	"mobilecongest/internal/algorithms"
	"mobilecongest/internal/secure"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	const n = 12
	g := mobilecongest.NewClique(n)
	r := 2 // broadcast rounds on a diameter-1 graph, with slack

	// 1. Security: one-time-pad the broadcast with extracted keys so an
	//    f-mobile eavesdropper learns nothing (Theorem 1.2).
	payload := algorithms.Broadcast(0, 0xC0FFEE, r)
	t := secure.SlackFor(r, 2) // t >= 2fr keeps f' = f = 2
	eve := mobilecongest.NewMobileEavesdropper(g, 2, 1)
	res, err := mobilecongest.NewScenario(
		mobilecongest.WithGraph(g),
		mobilecongest.WithSeed(1),
		mobilecongest.WithAdversary(eve),
		mobilecongest.WithProtocol(secure.StaticToMobile(payload, r, t)),
	).Run()
	if err != nil {
		return err
	}
	fmt.Printf("secure broadcast: %d rounds, eavesdropper saw %d messages, node 5 got %#x\n",
		res.Stats.Rounds, len(eve.View()), res.Outputs[5])

	// 2. Resilience: the same broadcast survives a byzantine adversary
	//    corrupting f=2 edges every round (Theorem 1.6). The adversary comes
	//    from the name registry this time, and the run uses the fast
	//    single-goroutine step engine explicitly.
	hardened, shared := mobilecongest.HardenClique(algorithms.Broadcast(0, 0xC0FFEE, r), n, 2)
	res, err = mobilecongest.NewScenario(
		mobilecongest.WithGraph(g),
		mobilecongest.WithSeed(2),
		mobilecongest.WithAdversaryName("flip", 2),
		mobilecongest.WithShared(shared),
		mobilecongest.WithMaxRounds(1<<22),
		mobilecongest.WithEngine(mobilecongest.EngineStep),
		mobilecongest.WithProtocol(hardened),
	).Run()
	if err != nil {
		return err
	}
	fmt.Printf("byzantine-hardened broadcast: %d rounds, %d edge-rounds corrupted, node 5 got %#x\n",
		res.Stats.Rounds, res.Stats.CorruptedEdgeRounds, res.Outputs[5])

	for i, o := range res.Outputs {
		if o.(uint64) != 0xC0FFEE {
			return fmt.Errorf("node %d ended with %v", i, o)
		}
	}
	fmt.Println("all nodes agree despite the mobile adversary")
	return nil
}
