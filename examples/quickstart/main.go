// Quickstart: compile a plain broadcast against a mobile eavesdropper with
// the Theorem 1.2 static-to-mobile compiler, and against a mobile byzantine
// adversary with the Theorem 1.6 clique compiler — the two headline
// workflows in one file.
package main

import (
	"fmt"
	"os"

	"mobilecongest"

	"mobilecongest/internal/algorithms"
	"mobilecongest/internal/secure"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	const n = 12
	g := mobilecongest.NewClique(n)
	r := 2 // broadcast rounds on a diameter-1 graph, with slack

	// 1. Security: one-time-pad the broadcast with extracted keys so an
	//    f-mobile eavesdropper learns nothing (Theorem 1.2).
	payload := algorithms.Broadcast(0, 0xC0FFEE, r)
	t := 2 * 2 * r // t >= 2fr keeps f' = f = 2
	eve := mobilecongest.NewMobileEavesdropper(g, 2, 1)
	res, err := mobilecongest.Run(mobilecongest.RunConfig{
		Graph: g, Seed: 1, Adversary: eve,
	}, secure.StaticToMobile(payload, r, t))
	if err != nil {
		return err
	}
	fmt.Printf("secure broadcast: %d rounds, eavesdropper saw %d messages, node 5 got %#x\n",
		res.Stats.Rounds, len(eve.View()), res.Outputs[5])

	// 2. Resilience: the same broadcast survives a byzantine adversary
	//    corrupting f=2 edges every round (Theorem 1.6).
	hardened, shared := mobilecongest.HardenClique(algorithms.Broadcast(0, 0xC0FFEE, r), n, 2)
	adv := mobilecongest.NewMobileByzantine(g, 2, 2)
	res, err = mobilecongest.Run(mobilecongest.RunConfig{
		Graph: g, Seed: 2, Adversary: adv, Shared: shared, MaxRounds: 1 << 22,
	}, hardened)
	if err != nil {
		return err
	}
	fmt.Printf("byzantine-hardened broadcast: %d rounds, %d edge-rounds corrupted, node 5 got %#x\n",
		res.Stats.Rounds, res.Stats.CorruptedEdgeRounds, res.Outputs[5])

	for i, o := range res.Outputs {
		if o.(uint64) != 0xC0FFEE {
			return fmt.Errorf("node %d ended with %v", i, o)
		}
	}
	fmt.Println("all nodes agree despite the mobile adversary")
	return nil
}
