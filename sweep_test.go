package mobilecongest

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func TestSweepGridShapeAndDeterminism(t *testing.T) {
	grid := Grid{
		Topologies:  []string{"clique", "cycle"},
		Ns:          []int{6, 8},
		Adversaries: []string{"none", "flip"},
		Fs:          []int{1},
		Engines:     []string{"step"},
		Reps:        2,
		BaseSeed:    5,
	}
	recs, err := Sweep(grid)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * 2 * 2 * 1 * 1 * 2; len(recs) != want {
		t.Fatalf("got %d records, want %d", len(recs), want)
	}
	for _, r := range recs {
		if r.Error != "" {
			t.Fatalf("cell %s failed: %s", r.Name, r.Error)
		}
		if r.Rounds <= 0 || r.Messages <= 0 {
			t.Fatalf("cell %s has empty stats: %+v", r.Name, r)
		}
		if r.Adversary == "none" && r.CorruptedEdgeRounds != 0 {
			t.Fatalf("fault-free cell %s reports corruption", r.Name)
		}
	}
	// Per-cell seeds are deterministic and distinct across reps.
	if recs[0].Seed == recs[1].Seed {
		t.Fatal("reps of one cell share a seed")
	}
	again, err := Sweep(grid)
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		a, b := recs[i], again[i]
		a.ElapsedMS, b.ElapsedMS = 0, 0
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("sweep not deterministic at cell %d:\n %+v\n %+v", i, a, b)
		}
	}
}

func TestSweepSeedsIndependentOfGridShape(t *testing.T) {
	wide := Grid{Topologies: []string{"clique", "cycle"}, Ns: []int{6}, BaseSeed: 3}
	narrow := Grid{Topologies: []string{"cycle"}, Ns: []int{6}, BaseSeed: 3}
	w, err := Sweep(wide)
	if err != nil {
		t.Fatal(err)
	}
	n, err := Sweep(narrow)
	if err != nil {
		t.Fatal(err)
	}
	var wCycle *Record
	for i := range w {
		if w[i].Topology == "cycle" {
			wCycle = &w[i]
		}
	}
	if wCycle == nil || wCycle.Seed != n[0].Seed {
		t.Fatal("cell seed changed when the grid was reshaped")
	}
}

func TestSweepRecordsAreJSON(t *testing.T) {
	recs, err := Sweep(Grid{Ns: []int{5}, BaseSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(recs)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"topology":"clique"`) {
		t.Fatalf("unexpected JSON: %s", b)
	}
}

func TestSweepUnknownNamesRejectedUpfront(t *testing.T) {
	if _, err := Sweep(Grid{Topologies: []string{"nosuch"}}); err == nil {
		t.Fatal("unknown topology accepted")
	}
	if _, err := Sweep(Grid{Adversaries: []string{"nosuch"}}); err == nil {
		t.Fatal("unknown adversary accepted")
	}
	if _, err := Sweep(Grid{Engines: []string{"warp"}}); err == nil {
		t.Fatal("unknown engine accepted")
	}
}

func TestSweepEngineEquivalenceOnGrid(t *testing.T) {
	// The same grid swept under both engines must produce identical
	// simulation statistics cell-for-cell — and, with trace capture on,
	// identical per-round delivered-traffic traces (message order, payloads,
	// corrupted edge sets).
	mk := func(engine string) Grid {
		return Grid{
			Topologies:   []string{"circulant"},
			Ns:           []int{10, 14},
			Adversaries:  []string{"flip", "drop"},
			Fs:           []int{1, 2},
			Engines:      []string{engine},
			BaseSeed:     11,
			CaptureTrace: true,
		}
	}
	a, err := Sweep(mk("goroutine"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sweep(mk("step"))
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("record counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		// Engine name and elapsed time legitimately differ; the seed, every
		// simulation statistic, and the full trace must not.
		x, y := a[i], b[i]
		if len(x.Trace) == 0 || len(x.Trace) != x.Rounds {
			t.Fatalf("cell %s: trace has %d rounds, stats say %d", x.Name, len(x.Trace), x.Rounds)
		}
		x.Engine, y.Engine = "", ""
		x.Name, y.Name = "", ""
		x.ElapsedMS, y.ElapsedMS = 0, 0
		if !reflect.DeepEqual(x, y) {
			t.Fatalf("cell %d differs across engines:\n goroutine %+v\n step      %+v", i, a[i], b[i])
		}
	}
}
