package mobilecongest

import (
	"testing"

	"mobilecongest/internal/algorithms"
)

func TestFacadeHardenClique(t *testing.T) {
	n := 8
	g := NewClique(n)
	hardened, shared := HardenClique(algorithms.FloodMax(2), n, 1)
	adv := NewMobileByzantine(g, 1, 3)
	res, err := Run(RunConfig{Graph: g, Seed: 1, Adversary: adv, Shared: shared, MaxRounds: 1 << 22}, hardened)
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range res.Outputs {
		if o.(uint64) != uint64(n-1) {
			t.Fatalf("node %d output %v", i, o)
		}
	}
}

func TestFacadeHardenGeneral(t *testing.T) {
	g := NewCirculant(12, 3)
	hardened, shared := HardenGeneral(algorithms.FloodMax(g.Diameter()), g, 1, 6, 6)
	adv := NewMobileByzantine(g, 1, 5)
	res, err := Run(RunConfig{Graph: g, Seed: 2, Adversary: adv, Shared: shared, MaxRounds: 1 << 22}, hardened)
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range res.Outputs {
		if o.(uint64) != uint64(g.N()-1) {
			t.Fatalf("node %d output %v", i, o)
		}
	}
}

func TestFacadeEavesdropper(t *testing.T) {
	g := NewCirculant(10, 2)
	eve := NewMobileEavesdropper(g, 2, 7)
	res, err := Run(RunConfig{Graph: g, Seed: 3, Adversary: eve}, algorithms.FloodMax(g.Diameter()))
	if err != nil {
		t.Fatal(err)
	}
	if len(eve.View()) == 0 {
		t.Fatal("eavesdropper saw nothing")
	}
	for _, o := range res.Outputs {
		if o.(uint64) != uint64(g.N()-1) {
			t.Fatal("payload broken by passive adversary")
		}
	}
}
